// Benchmarks regenerating every table and figure of the paper's evaluation
// at the Small scale, plus ablation benches for the design choices called
// out in DESIGN.md. Run with:
//
//	go test -bench=. -benchmem
//
// Each Benchmark* reports the headline metric of its artifact via
// b.ReportMetric so the shape comparison against the paper is visible in
// bench output (see EXPERIMENTS.md for the recorded values).
package groupfel_test

import (
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/experiments"
	"repro/internal/grouping"
	"repro/internal/hfl"
	"repro/internal/sampling"
	"repro/internal/stats"
	"repro/internal/trace"
)

const benchSeed = 7331

func benchScale() experiments.Scale {
	sc := experiments.Small()
	sc.GlobalRounds = 10
	return sc
}

// finalAccuracy reports each series' last accuracy as a bench metric.
func reportFinals(b *testing.B, f *trace.Figure) {
	b.Helper()
	for _, s := range f.Series {
		b.ReportMetric(s.FinalY(), "final_acc_"+sanitizeMetric(s.Name))
	}
}

func sanitizeMetric(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

// BenchmarkTrainSmall times the training engine end to end at the Small
// scale: "serial" pins MaxParallel=1 (the reference schedule), "parallel"
// uses GOMAXPROCS workers. Both schedules produce bit-identical parameters
// (see core's replay tests); the interesting delta here is ns/op and
// allocs/op. `felbench -bench` measures the full GOMAXPROCS × MaxParallel
// grid the same way and records it as BENCH_grid.json.
func BenchmarkTrainSmall(b *testing.B) {
	for _, mode := range []struct {
		name        string
		maxParallel int
	}{
		{"serial", 1},
		{"parallel", 0},
	} {
		b.Run(mode.name, func(b *testing.B) {
			sc := benchScale()
			sys := sc.NewSystem(experiments.CIFAR, 0.2, benchSeed)
			cfg := sc.BaseConfig(experiments.CIFAR, benchSeed)
			cfg.Grouping = grouping.CoVGrouping{Config: grouping.Config{MinGS: sc.MinGS, MaxCoV: sc.MaxCoV, MergeLeftover: true}}
			cfg.Sampling = sampling.ESRCoV
			cfg.Weights = sampling.Biased
			cfg.MaxParallel = mode.maxParallel
			cfg.EvalEvery = cfg.GlobalRounds // time training, not evaluation
			for _, c := range sys.Clients {
				sys.ClientBatch(c) // warm the batch cache outside the timer
			}
			b.ReportAllocs()
			b.ResetTimer()
			var res *core.Result
			for i := 0; i < b.N; i++ {
				res = core.Train(sys, cfg)
			}
			b.ReportMetric(res.FinalAccuracy, "final_acc")
			b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
		})
	}
}

// BenchmarkFig2a regenerates Fig. 2(a): group overheads vs size.
func BenchmarkFig2a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := experiments.Fig2a()
		if i == b.N-1 {
			b.ReportMetric(f.Get("Secure Aggregation").FinalY(), "secagg_s_at_50")
			b.ReportMetric(f.Get("Training").FinalY(), "training_s_at_50")
		}
	}
}

// BenchmarkFig2b regenerates Fig. 2(b): accuracy over cost per group size.
func BenchmarkFig2b(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		f := experiments.Fig2b(sc, benchSeed)
		if i == b.N-1 {
			reportFinals(b, f)
		}
	}
}

// BenchmarkGroupingRG/CDG/KLDG/CoVG regenerate Fig. 5's per-algorithm
// running time directly as Go benchmarks over a 200-client population.
func benchGrouping(b *testing.B, alg grouping.Algorithm) {
	gen := data.NewGenerator(data.FlatConfig(10, 4, benchSeed))
	ds := gen.Sample(200*60, 0)
	clients := data.DirichletPartition(ds, data.PartitionConfig{
		NumClients: 200, Alpha: 0.3,
		MinSamples: 10, MaxSamples: 50, MeanSamples: 30, StdSamples: 10,
		Seed: benchSeed,
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		alg.Form(clients, 10, 0, 0, stats.NewRNG(uint64(i)))
	}
}

// BenchmarkGroupingRG times random grouping (Fig. 5).
func BenchmarkGroupingRG(b *testing.B) {
	benchGrouping(b, grouping.RandomGrouping{Config: grouping.Config{MinGS: 5}, TargetGS: 5})
}

// BenchmarkGroupingCDG times OUEA's cluster-then-distribute (Fig. 5).
func BenchmarkGroupingCDG(b *testing.B) {
	benchGrouping(b, grouping.CDGrouping{Config: grouping.Config{MinGS: 5}, TargetGS: 5})
}

// BenchmarkGroupingKLDG times SHARE's KLD grouping (Fig. 5).
func BenchmarkGroupingKLDG(b *testing.B) {
	benchGrouping(b, grouping.KLDGrouping{Config: grouping.Config{MinGS: 5, MergeLeftover: true}, TargetGS: 5})
}

// BenchmarkGroupingCoVG times the paper's Algorithm 2 (Fig. 5).
func BenchmarkGroupingCoVG(b *testing.B) {
	benchGrouping(b, grouping.CoVGrouping{Config: grouping.Config{MinGS: 5, MaxCoV: 0.5, MergeLeftover: true}})
}

// BenchmarkFig6 regenerates Fig. 6: CoV vs group overhead per algorithm.
func BenchmarkFig6(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		f := experiments.Fig6(sc, benchSeed)
		if i == b.N-1 {
			for _, s := range f.Series {
				if s.Len() > 0 {
					b.ReportMetric(s.X[0], "cov_at_gs5_"+sanitizeMetric(s.Name))
				}
			}
		}
	}
}

// BenchmarkFig7 regenerates Fig. 7: the four sampling methods.
func BenchmarkFig7(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		f := experiments.Fig7(sc, benchSeed)
		if i == b.N-1 {
			reportFinals(b, f)
		}
	}
}

// BenchmarkFig8 regenerates Fig. 8: overhead model + measured op counts.
func BenchmarkFig8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := experiments.Fig8()
		if i == b.N-1 {
			b.ReportMetric(f.Get("SecAgg (measured ops, scaled)").FinalY(), "measured_secagg_s_at_40")
			b.ReportMetric(f.Get("CIFAR SecAgg").YAtX(40), "model_secagg_s_at_40")
		}
	}
}

// BenchmarkFig9 regenerates Fig. 9: all methods, accuracy vs round, CIFAR.
func BenchmarkFig9(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		f := experiments.Fig9(sc, benchSeed)
		if i == b.N-1 {
			reportFinals(b, f)
		}
	}
}

// BenchmarkFig10 regenerates Fig. 10: all methods, accuracy vs cost, CIFAR.
func BenchmarkFig10(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		f := experiments.Fig10(sc, benchSeed)
		if i == b.N-1 {
			// Report accuracy at the shared cost horizon (the smallest
			// final cost across methods) — the paper's headline comparison.
			horizon := 0.0
			for _, s := range f.Series {
				//lint:ignore float-eq test asserts exact deterministic output
				if x := s.X[len(s.X)-1]; horizon == 0 || x < horizon {
					horizon = x
				}
			}
			for _, s := range f.Series {
				b.ReportMetric(s.YAtX(horizon), "acc_at_budget_"+sanitizeMetric(s.Name))
			}
		}
	}
}

// BenchmarkFig11 regenerates Fig. 11: accuracy vs cost, SC, extreme skew.
func BenchmarkFig11(b *testing.B) {
	sc := benchScale()
	sc.GlobalRounds = 8
	for i := 0; i < b.N; i++ {
		f := experiments.Fig11(sc, benchSeed)
		if i == b.N-1 {
			reportFinals(b, f)
		}
	}
}

// BenchmarkFig12 regenerates Fig. 12: grouping × sampling ablation.
func BenchmarkFig12(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		f := experiments.Fig12(sc, benchSeed)
		if i == b.N-1 {
			reportFinals(b, f)
		}
	}
}

// BenchmarkTable1 regenerates Table 1: α × MaxCoV sweep.
func BenchmarkTable1(b *testing.B) {
	sc := benchScale()
	sc.GlobalRounds = 6
	for i := 0; i < b.N; i++ {
		t := experiments.Table1(sc, benchSeed)
		if i == b.N-1 {
			b.ReportMetric(float64(len(t.Rows)), "rows")
		}
	}
}

// BenchmarkAblationVarianceCriterion compares CoV vs raw-variance grouping
// (DESIGN.md ablation 1).
func BenchmarkAblationVarianceCriterion(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		f := experiments.AblationVariance(sc, benchSeed)
		if i == b.N-1 {
			reportFinals(b, f)
		}
	}
}

// BenchmarkAblationAggregation compares biased/unbiased/stabilized weights
// (DESIGN.md ablation 2).
func BenchmarkAblationAggregation(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		f := experiments.AblationAggregation(sc, benchSeed)
		if i == b.N-1 {
			reportFinals(b, f)
		}
	}
}

// BenchmarkAblationRegroup compares static vs periodic regrouping
// (DESIGN.md ablation 3).
func BenchmarkAblationRegroup(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		f := experiments.AblationRegroup(sc, benchSeed)
		if i == b.N-1 {
			reportFinals(b, f)
		}
	}
}

// BenchmarkAblationGamma compares plain vs γ-aware formation (DESIGN.md
// ablation 4, the paper's future work).
func BenchmarkAblationGamma(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		f := experiments.AblationGamma(sc, benchSeed)
		if i == b.N-1 {
			reportFinals(b, f)
		}
	}
}

// BenchmarkTheoryBound regenerates the Theorem 1 bound comparison (extra
// experiment "theory").
func BenchmarkTheoryBound(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		f := experiments.TheoryFigure(sc, benchSeed)
		if i == b.N-1 {
			for _, s := range f.Series {
				b.ReportMetric(s.FinalY(), "bound_T800_"+sanitizeMetric(s.Name))
			}
		}
	}
}

// BenchmarkCostBreakdown regenerates the training/group-op split table.
func BenchmarkCostBreakdown(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		t := experiments.CostBreakdown(sc, benchSeed)
		if i == b.N-1 {
			b.ReportMetric(float64(len(t.Rows)), "rows")
		}
	}
}

// BenchmarkDropoutRobustness regenerates the client-dropout sweep.
func BenchmarkDropoutRobustness(b *testing.B) {
	sc := benchScale()
	sc.GlobalRounds = 6
	for i := 0; i < b.N; i++ {
		f := experiments.DropoutRobustness(sc, benchSeed)
		if i == b.N-1 {
			reportFinals(b, f)
		}
	}
}

// BenchmarkSecureDistributedRound times one protocol-faithful global round
// (simnet + secagg) to quantify the overhead of the secure path relative
// to the in-process trainer.
func BenchmarkSecureDistributedRound(b *testing.B) {
	sc := benchScale()
	sys := sc.NewSystem(experiments.CIFAR, 0.2, benchSeed)
	groups := grouping.FormAll(
		grouping.CoVGrouping{Config: grouping.Config{MinGS: sc.MinGS, MaxCoV: sc.MaxCoV, MergeLeftover: true}},
		sys.Edges, sys.Classes, stats.NewRNG(benchSeed))
	params := sys.NewModel(sys.ModelSeed).ParamVector()
	cfg := hfl.RoundConfig{GroupRounds: 2, LocalEpochs: 1, BatchSize: 16, LR: 0.05, Seed: benchSeed}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := hfl.RunGlobalRound(sys, groups, []int{0, 1}, params, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(res.WallClock, "sim_wallclock_s")
			b.ReportMetric(float64(res.MaskStreams), "mask_streams")
		}
	}
}

// BenchmarkFairness regenerates the participation-fairness table (extra
// experiment "fairness").
func BenchmarkFairness(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		t := experiments.FairnessTable(sc, benchSeed)
		if i == b.N-1 {
			b.ReportMetric(float64(len(t.Rows)), "rows")
		}
	}
}

// BenchmarkCompression regenerates the accuracy-vs-uplink-bytes comparison
// (extra experiment "compression").
func BenchmarkCompression(b *testing.B) {
	sc := benchScale()
	sc.GlobalRounds = 6
	for i := 0; i < b.N; i++ {
		t := experiments.CompressionTable(sc, benchSeed)
		if i == b.N-1 {
			b.ReportMetric(float64(len(t.Rows)), "rows")
		}
	}
}

// BenchmarkMultiModel regenerates the multi-model scheduler comparison
// (extra experiment "multimodel", the paper's reference [23] scenario).
func BenchmarkMultiModel(b *testing.B) {
	sc := benchScale()
	sc.GlobalRounds = 6
	for i := 0; i < b.N; i++ {
		t := experiments.MultiModelTable(sc, benchSeed)
		if i == b.N-1 {
			b.ReportMetric(float64(len(t.Rows)), "rows")
		}
	}
}
