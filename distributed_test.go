package groupfel_test

import (
	"path/filepath"
	"testing"

	groupfel "repro"
)

func TestPublicAPIDistributedRound(t *testing.T) {
	sys := newSystem(21)
	groups := groupfel.FormGroups(
		groupfel.CoVGrouping{Config: groupfel.GroupingConfig{MinGS: 3, MaxCoV: 0.6, MergeLeftover: true}},
		sys.Edges, sys.Classes, 4)
	if len(groups) == 0 {
		t.Fatal("no groups")
	}
	params := sys.NewModel(sys.ModelSeed).ParamVector()
	res, err := groupfel.RunDistributedRound(sys, groups, []int{0}, params,
		groupfel.DistributedRoundConfig{
			GroupRounds: 2, LocalEpochs: 1, BatchSize: 8, LR: 0.05, Seed: 1,
			Topology: groupfel.DefaultTopology(),
		})
	if err != nil {
		t.Fatal(err)
	}
	if res.WallClock <= 0 || len(res.Params) != len(params) {
		t.Fatalf("bad result: wall=%v params=%d", res.WallClock, len(res.Params))
	}
	if res.MaskStreams == 0 {
		t.Fatal("secure aggregation did not run")
	}
}

func TestPublicAPICheckpoint(t *testing.T) {
	sys := newSystem(22)
	cfg := baseConfig()
	cfg.GlobalRounds = 3
	res := groupfel.Train(sys, cfg)
	ck := groupfel.CheckpointOf(res)
	path := filepath.Join(t.TempDir(), "ck.gob")
	if err := ck.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := groupfel.LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.RoundsDone != 3 {
		t.Fatalf("rounds done %d", loaded.RoundsDone)
	}
	// Resume and finish.
	full := baseConfig()
	full.GlobalRounds = 5
	resumed := groupfel.Train(sys, loaded.Resume(full))
	if resumed.RoundsRun != 2 {
		t.Fatalf("resumed %d rounds, want 2", resumed.RoundsRun)
	}
}

func TestPublicAPIDropoutSimulation(t *testing.T) {
	sys := newSystem(23)
	cfg := baseConfig()
	cfg.GlobalRounds = 5
	cfg.DropoutProb = 0.3
	res := groupfel.Train(sys, cfg)
	if res.Dropouts == 0 {
		t.Fatal("no dropouts simulated")
	}
}
