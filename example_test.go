package groupfel_test

import (
	"fmt"

	groupfel "repro"
)

// ExampleTrain shows a minimal Group-FEL run: build a population, form
// CoV groups, train with ESRCoV sampling under the Eq. 5 cost meter.
func ExampleTrain() {
	sys := groupfel.NewSystem(groupfel.SystemConfig{
		Generator: groupfel.FlatTask(4, 10, 1),
		Partition: groupfel.PartitionConfig{
			NumClients: 12, Alpha: 0.3,
			MinSamples: 10, MaxSamples: 30, MeanSamples: 20, StdSamples: 5,
			Seed: 2,
		},
		NumEdges: 2,
		TestSize: 200,
		NewModel: func(seed uint64) *groupfel.Model {
			return groupfel.NewMLP(10, []int{16}, 4, seed)
		},
		ModelSeed: 7,
	})
	res := groupfel.Train(sys, groupfel.Config{
		GlobalRounds: 5, GroupRounds: 2, LocalEpochs: 1,
		BatchSize: 16, LR: 0.05, SampleGroups: 2,
		Grouping: groupfel.CoVGrouping{Config: groupfel.GroupingConfig{
			MinGS: 3, MaxCoV: 0.5, MergeLeftover: true}},
		Sampling:    groupfel.ESRCoV,
		Seed:        42,
		CostProfile: groupfel.CIFARProfile(),
		CostOps:     groupfel.DefaultCostOps(),
	})
	fmt.Println(res.RoundsRun)
	// Output: 5
}

// ExampleFormGroups demonstrates standalone CoV group formation and
// sampling-probability computation on client label histograms.
func ExampleFormGroups() {
	sys := groupfel.NewSystem(groupfel.SystemConfig{
		Generator: groupfel.FlatTask(3, 6, 9),
		Partition: groupfel.PartitionConfig{
			NumClients: 8, Alpha: 0.5,
			MinSamples: 10, MaxSamples: 20, MeanSamples: 15, StdSamples: 3,
			Seed: 10,
		},
		NumEdges: 1,
		TestSize: 50,
		NewModel: func(seed uint64) *groupfel.Model {
			return groupfel.NewLogistic(6, 3, seed)
		},
		ModelSeed: 7,
	})
	groups := groupfel.FormGroups(
		groupfel.CoVGrouping{Config: groupfel.GroupingConfig{MinGS: 4, MergeLeftover: true}},
		sys.Edges, sys.Classes, 3)
	probs := groupfel.SamplingProbabilities(groups, groupfel.RCoV)
	fmt.Println(len(groups) == len(probs))
	// Output: true
}

// ExampleDetectBackdoors shows the FLAME-style filter flagging a poisoned
// update among benign ones.
func ExampleDetectBackdoors() {
	updates := [][]float64{
		{1, 1, 1}, {1.1, 0.9, 1}, {0.9, 1, 1.1}, {1, 1.05, 0.95},
		{-9, -9, -9}, // the attacker
	}
	res := groupfel.DetectBackdoors(updates, groupfel.DefaultBackdoorConfig())
	fmt.Println(res.Flagged)
	// Output: [4]
}
