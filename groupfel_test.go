package groupfel_test

import (
	"math"
	"testing"

	groupfel "repro"
)

// newSystem builds a small population through the public API only.
func newSystem(seed uint64) *groupfel.System {
	gen := groupfel.FlatTask(4, 10, seed)
	gen.Noise = 0.8
	return groupfel.NewSystem(groupfel.SystemConfig{
		Generator: gen,
		Partition: groupfel.PartitionConfig{
			NumClients: 16, Alpha: 0.3,
			MinSamples: 10, MaxSamples: 40, MeanSamples: 25, StdSamples: 8,
			Seed: seed + 1,
		},
		NumEdges: 2,
		TestSize: 300,
		NewModel: func(s uint64) *groupfel.Model {
			return groupfel.NewMLP(10, []int{16}, 4, s)
		},
		ModelSeed: 7,
	})
}

func baseConfig() groupfel.Config {
	return groupfel.Config{
		GlobalRounds: 10, GroupRounds: 2, LocalEpochs: 1,
		BatchSize: 16, LR: 0.05, SampleGroups: 3,
		Grouping: groupfel.CoVGrouping{Config: groupfel.GroupingConfig{
			MinGS: 3, MaxCoV: 0.5, MergeLeftover: true}},
		Sampling:    groupfel.ESRCoV,
		Weights:     groupfel.BiasedWeights,
		Seed:        42,
		CostProfile: groupfel.CIFARProfile(),
		CostOps:     groupfel.DefaultCostOps(),
	}
}

func TestPublicAPIEndToEnd(t *testing.T) {
	sys := newSystem(1)
	res := groupfel.Train(sys, baseConfig())
	if res.FinalAccuracy <= 0.35 {
		t.Fatalf("accuracy %.3f (chance 0.25)", res.FinalAccuracy)
	}
	if res.TotalCost <= 0 {
		t.Fatal("no cost recorded")
	}
	if len(res.Groups) == 0 || len(res.Probs) != len(res.Groups) {
		t.Fatal("groups/probs missing")
	}
}

func TestPublicAPIFormationAndSampling(t *testing.T) {
	sys := newSystem(2)
	groups := groupfel.FormGroups(
		groupfel.CoVGrouping{Config: groupfel.GroupingConfig{MinGS: 3, MaxCoV: 0.5, MergeLeftover: true}},
		sys.Edges, sys.Classes, 9)
	if len(groups) == 0 {
		t.Fatal("no groups formed")
	}
	p := groupfel.SamplingProbabilities(groups, groupfel.ESRCoV)
	sum := 0.0
	for _, v := range p {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("probabilities sum to %v", sum)
	}
	// CoV accessor agrees with the helper.
	for _, g := range groups {
		//lint:ignore float-eq test asserts exact deterministic output
		if g.CoV() != groupfel.GroupCoV(g.Counts) {
			t.Fatal("CoV helper mismatch")
		}
	}
}

func TestPublicAPIBaselines(t *testing.T) {
	opts := groupfel.DefaultBaselineOptions(16, 3)
	for _, m := range groupfel.AllBaselines() {
		sys := newSystem(3)
		cfg := baseConfig()
		cfg.GlobalRounds = 6
		res := groupfel.RunBaseline(m, sys, cfg, opts)
		if len(res.Records) == 0 {
			t.Fatalf("%s: no records", m)
		}
	}
}

func TestPublicAPISecureAggregation(t *testing.T) {
	const n, dim = 5, 20
	q := groupfel.DefaultQuantizer()
	sess := groupfel.NewSecAggSession(n, dim, 3, 7, q)
	masked := make([][]uint64, n)
	want := make([]float64, dim)
	for i := 0; i < n; i++ {
		update := make([]float64, dim)
		for d := range update {
			update[d] = float64(i) * 0.01
			want[d] += update[d]
		}
		masked[i] = sess.MaskedUpdate(i, update)
	}
	got, err := sess.Aggregate(masked, nil)
	if err != nil {
		t.Fatal(err)
	}
	for d := range want {
		if math.Abs(got[d]-want[d]) > 1e-4 {
			t.Fatalf("secure sum[%d] = %v, want %v", d, got[d], want[d])
		}
	}
}

func TestPublicAPIBackdoorDetection(t *testing.T) {
	updates := make([][]float64, 8)
	for i := range updates {
		updates[i] = make([]float64, 10)
		for d := range updates[i] {
			updates[i][d] = 1 + 0.01*float64(i)
		}
	}
	// Flip the last one.
	for d := range updates[7] {
		updates[7][d] = -5
	}
	res := groupfel.DetectBackdoors(updates, groupfel.DefaultBackdoorConfig())
	found := false
	for _, f := range res.Flagged {
		if f == 7 {
			found = true
		}
	}
	if !found {
		t.Fatalf("poisoned update not flagged: %v", res.Flagged)
	}
}

func TestPublicAPITheory(t *testing.T) {
	sys := newSystem(4)
	groups := groupfel.FormGroups(
		groupfel.CoVGrouping{Config: groupfel.GroupingConfig{MinGS: 3, MergeLeftover: true}},
		sys.Edges, sys.Classes, 5)
	p := groupfel.SamplingProbabilities(groups, groupfel.RCoV)
	params := groupfel.TheoryFromSystem(groups, p, groupfel.TheoryParams{
		Eta: 0.01, T: 100, K: 5, E: 2, L: 1,
		Sigma2: 1, Zeta2: 1, F0MinusFStar: 10, S: 3,
	})
	b := groupfel.ConvergenceBound(params)
	if b <= 0 || math.IsNaN(b) {
		t.Fatalf("bound = %v", b)
	}
}

func TestPublicAPIEvaluate(t *testing.T) {
	sys := newSystem(5)
	m := sys.NewModel(sys.ModelSeed)
	acc, loss := groupfel.Evaluate(m, sys.Test, 0)
	if acc < 0 || acc > 1 || loss <= 0 {
		t.Fatalf("acc=%v loss=%v", acc, loss)
	}
}
