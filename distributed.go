package groupfel

import (
	"repro/internal/core"
	"repro/internal/hfl"
	"repro/internal/simnet"
)

// Distributed execution: Group-FEL rounds as real message exchanges over
// the simulated edge network with secure aggregation inside groups
// (internal/hfl). The in-process Train is the fast path; this is the
// protocol-faithful path.
type (
	// DistributedRoundConfig parameterizes one distributed global round.
	DistributedRoundConfig = hfl.RoundConfig
	// DistributedRoundResult reports the outcome and wall-clock time.
	DistributedRoundResult = hfl.RoundResult
	// NetworkTopology models client–edge and edge–cloud links.
	NetworkTopology = simnet.Topology
	// NetworkLink is one latency/bandwidth link.
	NetworkLink = simnet.Link
)

// RunDistributedRound executes one global round of Alg. 1 for the selected
// groups as a message exchange over the simulated network, with
// secure-aggregation-masked group aggregation.
func RunDistributedRound(sys *System, groups []*Group, selected []int, globalParams []float64, cfg DistributedRoundConfig) (*DistributedRoundResult, error) {
	return hfl.RunGlobalRound(sys, groups, selected, globalParams, cfg)
}

// DefaultTopology returns edge-computing-typical link parameters.
func DefaultTopology() NetworkTopology { return simnet.Default() }

// Checkpointing: resumable training snapshots.
type (
	// Checkpoint is a resumable training snapshot.
	Checkpoint = core.Checkpoint
)

// CheckpointOf snapshots a finished (or budget-stopped) run.
func CheckpointOf(res *Result) Checkpoint { return core.FromResult(res) }

// LoadCheckpoint reads a checkpoint written by Checkpoint.Save.
func LoadCheckpoint(path string) (Checkpoint, error) { return core.LoadCheckpoint(path) }
