package groupfel

import (
	"net"

	"repro/internal/core"
	"repro/internal/fednode"
	"repro/internal/hfl"
	"repro/internal/simnet"
)

// Distributed execution: Group-FEL rounds as real message exchanges over
// the simulated edge network with secure aggregation inside groups
// (internal/hfl). The in-process Train is the fast path; this is the
// protocol-faithful path.
type (
	// DistributedRoundConfig parameterizes one distributed global round.
	DistributedRoundConfig = hfl.RoundConfig
	// DistributedRoundResult reports the outcome and wall-clock time.
	DistributedRoundResult = hfl.RoundResult
	// NetworkTopology models client–edge and edge–cloud links.
	NetworkTopology = simnet.Topology
	// NetworkLink is one latency/bandwidth link.
	NetworkLink = simnet.Link
)

// RunDistributedRound executes one global round of Alg. 1 for the selected
// groups as a message exchange over the simulated network, with
// secure-aggregation-masked group aggregation.
func RunDistributedRound(sys *System, groups []*Group, selected []int, globalParams []float64, cfg DistributedRoundConfig) (*DistributedRoundResult, error) {
	return hfl.RunGlobalRound(sys, groups, selected, globalParams, cfg)
}

// DefaultTopology returns edge-computing-typical link parameters.
func DefaultTopology() NetworkTopology { return simnet.Default() }

// Networked execution: Group-FEL over real net.Conn transports — TCP
// sockets between processes, or in-memory pipes inside one — with the wire
// codec of internal/wire and straggler/dropout handling mapped onto secure
// aggregation (internal/fednode). Where RunDistributedRound *models* link
// times, this path *measures* wall-clock and bytes on the wire.
type (
	// NetworkedJobConfig parameterizes a multi-round networked job.
	NetworkedJobConfig = fednode.JobConfig
	// NetworkedReport is the cloud's view of a finished networked job.
	NetworkedReport = fednode.Report
	// NetworkTransport abstracts the byte transport (TCP or in-memory).
	NetworkTransport = fednode.Network
	// TCPTransport is the real-socket transport.
	TCPTransport = fednode.TCPNetwork
	// NetworkedDrop injects one mid-round client disconnect (fault demo).
	NetworkedDrop = fednode.ForcedDrop
)

// NewMemTransport returns an in-process transport over net.Pipe pairs.
func NewMemTransport() NetworkTransport { return fednode.NewMemNetwork() }

// RunNetworkedJob runs a complete multi-round job — cloud, edges, clients —
// in this process over nw. listenAddr seeds every listener ("127.0.0.1:0"
// for TCP, "" for a memory transport).
func RunNetworkedJob(nw NetworkTransport, sys *System, cfg NetworkedJobConfig, listenAddr string) (*NetworkedReport, error) {
	return fednode.RunJob(nw, sys, cfg, listenAddr)
}

// RunNetworkedRound executes one global round over real connections for
// pre-formed groups and an explicit selection — the measured counterpart of
// RunDistributedRound.
func RunNetworkedRound(nw NetworkTransport, sys *System, groups []*Group, selected []int, globalParams []float64, cfg NetworkedJobConfig, listenAddr string) ([]float64, *NetworkedReport, error) {
	return fednode.RunRound(nw, sys, groups, selected, globalParams, cfg, listenAddr)
}

// ServeCloud runs the cloud coordinator of a networked job on ln, blocking
// until the job drains; edge servers are expected to dial in and register.
func ServeCloud(ln net.Listener, sys *System, cfg NetworkedJobConfig) (*NetworkedReport, error) {
	return fednode.NewCloud(sys, cfg, nil).Run(ln)
}

// Checkpointing: resumable training snapshots.
type (
	// Checkpoint is a resumable training snapshot.
	Checkpoint = core.Checkpoint
)

// CheckpointOf snapshots a finished (or budget-stopped) run.
func CheckpointOf(res *Result) Checkpoint { return core.FromResult(res) }

// LoadCheckpoint reads a checkpoint written by Checkpoint.Save.
func LoadCheckpoint(path string) (Checkpoint, error) { return core.LoadCheckpoint(path) }
