// Distributed: Group-FEL executed as an actual protocol — every round is a
// message exchange over the simulated cloud–edge–client network, and every
// group aggregation runs the real secure-aggregation substrate (pairwise
// masks, Shamir shares), so the edge never sees an individual client's
// update. Compares the learned model and wall-clock profile against the
// in-process trainer.
package main

import (
	"fmt"

	groupfel "repro"
)

func main() {
	const seed = 21
	gen := groupfel.FlatTask(6, 12, seed)
	sys := groupfel.NewSystem(groupfel.SystemConfig{
		Generator: gen,
		Partition: groupfel.PartitionConfig{
			NumClients: 24, Alpha: 0.2,
			MinSamples: 10, MaxSamples: 30, MeanSamples: 20, StdSamples: 6,
			Seed: seed + 1,
		},
		NumEdges: 2,
		TestSize: 500,
		NewModel: func(s uint64) *groupfel.Model {
			return groupfel.NewMLP(12, []int{16}, 6, s)
		},
		ModelSeed: 7,
	})

	groups := groupfel.FormGroups(
		groupfel.CoVGrouping{Config: groupfel.GroupingConfig{MinGS: 4, MaxCoV: 0.5, MergeLeftover: true}},
		sys.Edges, sys.Classes, seed)
	probs := groupfel.SamplingProbabilities(groups, groupfel.ESRCoV)
	fmt.Printf("formed %d groups; sampling probabilities:", len(groups))
	for _, p := range probs {
		fmt.Printf(" %.3f", p)
	}
	fmt.Println()

	model := sys.NewModel(sys.ModelSeed)
	params := model.ParamVector()
	before, _ := groupfel.Evaluate(model, sys.Test, 0)

	cfg := groupfel.DistributedRoundConfig{
		GroupRounds: 3, LocalEpochs: 1, BatchSize: 16, LR: 0.08, Seed: seed,
		Topology: groupfel.DefaultTopology(),
	}
	fmt.Println("\nround  wall-clock(s)  messages  mask-streams  quant-err      accuracy")
	totalWall := 0.0
	for r := 0; r < 8; r++ {
		cfg.Seed = uint64(seed + r)
		// Select the top two groups by probability (ESRCoV is near top-k).
		sel := topK(probs, 2)
		res, err := groupfel.RunDistributedRound(sys, groups, sel, params, cfg)
		if err != nil {
			panic(err)
		}
		params = res.Params
		totalWall += res.WallClock
		model.SetParamVector(params)
		acc, _ := groupfel.Evaluate(model, sys.Test, 0)
		fmt.Printf("%5d  %12.2f  %8d  %12d  %9.2e  %10.4f\n",
			r, res.WallClock, res.Messages, res.MaskStreams, res.QuantError, acc)
	}
	after, _ := groupfel.Evaluate(model, sys.Test, 0)
	fmt.Printf("\naccuracy %.4f → %.4f over %.1f simulated seconds of protocol time\n",
		before, after, totalWall)
	fmt.Println("every group aggregate was computed under secure aggregation: the")
	fmt.Println("edge reconstructed only the masked sum, never a client's update.")
}

// topK returns the indices of the k largest probabilities.
func topK(p []float64, k int) []int {
	idx := make([]int, len(p))
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < k && i < len(idx); i++ {
		for j := i + 1; j < len(idx); j++ {
			if p[idx[j]] > p[idx[i]] {
				idx[i], idx[j] = idx[j], idx[i]
			}
		}
	}
	if k > len(idx) {
		k = len(idx)
	}
	return idx[:k]
}
