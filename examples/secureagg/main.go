// Secureagg: the group operations whose quadratic cost motivates the whole
// paper, run for real — a secure aggregation session with a dropout, then
// backdoor detection catching a poisoned update, and the message-flow
// timing of one hierarchical round from the network simulator.
package main

import (
	"fmt"

	groupfel "repro"
	"repro/internal/simnet"
	"repro/internal/stats"
)

func main() {
	const (
		groupSize = 8
		dim       = 64
		threshold = 5
	)
	rng := stats.NewRNG(99)

	// --- Secure aggregation with a dropout -------------------------------
	fmt.Printf("secure aggregation: %d clients, %d-dim updates, threshold %d\n",
		groupSize, dim, threshold)
	q := groupfel.DefaultQuantizer()
	sess := groupfel.NewSecAggSession(groupSize, dim, threshold, 2024, q)

	updates := make([][]float64, groupSize)
	masked := make([][]uint64, groupSize)
	plainSum := make([]float64, dim)
	dropped := []int{3} // client 3 goes offline before submitting
	for i := 0; i < groupSize; i++ {
		updates[i] = make([]float64, dim)
		for d := range updates[i] {
			updates[i][d] = rng.Normal(0, 0.5)
		}
		if i == 3 {
			continue
		}
		masked[i] = sess.MaskedUpdate(i, updates[i])
		for d := range updates[i] {
			plainSum[d] += updates[i][d]
		}
	}
	sum, err := sess.Aggregate(masked, dropped)
	if err != nil {
		panic(err)
	}
	maxErr := 0.0
	for d := range sum {
		if e := abs(sum[d] - plainSum[d]); e > maxErr {
			maxErr = e
		}
	}
	ops := sess.Ops()
	fmt.Printf("  aggregated despite dropout of client 3; max error vs plaintext sum: %.2e\n", maxErr)
	fmt.Printf("  work: %d PRG mask streams, %d shares dealt, %d shares used\n",
		ops.MaskStreams, ops.SharesDealt, ops.SharesUsed)
	fmt.Printf("  (mask streams ~ n(n-1)+2n = %d: this quadratic growth is Fig. 8's SecAgg curve)\n",
		groupSize*(groupSize-1)+2*groupSize)

	// --- Backdoor detection ----------------------------------------------
	fmt.Println("\nbackdoor detection over the group's raw updates:")
	poisoned := make([][]float64, groupSize)
	base := make([]float64, dim)
	for d := range base {
		base[d] = rng.Normal(0, 1)
	}
	for i := range poisoned {
		poisoned[i] = make([]float64, dim)
		for d := range poisoned[i] {
			poisoned[i][d] = base[d] + rng.Normal(0, 0.2)
		}
	}
	for d := range poisoned[6] {
		poisoned[6][d] = -8 * base[d] // the attacker
	}
	res := groupfel.DetectBackdoors(poisoned, groupfel.DefaultBackdoorConfig())
	fmt.Printf("  flagged clients: %v (injected attacker: 6)\n", res.Flagged)
	fmt.Printf("  accepted %d updates, clipped to norm %.3f, %d pairwise similarity ops\n",
		len(res.Accepted), res.ClipNorm, res.PairwiseOps)

	// --- One hierarchical round over the simulated edge network ----------
	fmt.Println("\nmessage flow of one cloud→edge→clients→edge→cloud round:")
	topo := simnet.Default()
	const modelBytes = 200_000
	compute := []float64{2.1, 3.4, 2.8, 3.0, 2.5}
	group := topo.GroupRoundTime(modelBytes, compute)
	total := topo.GlobalRoundTime(modelBytes, 3, [][]float64{{group}})
	fmt.Printf("  group round (5 clients, %d-byte model): %.3f s\n", modelBytes, group)
	fmt.Printf("  global round (K=3 group rounds + WAN hops): %.3f s\n", total)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
