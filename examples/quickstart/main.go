// Quickstart: train Group-FEL (CoV grouping + ESRCoV sampling) on a small
// synthetic non-IID population and watch accuracy rise against the Eq. 5
// cost meter.
package main

import (
	"fmt"

	groupfel "repro"
)

func main() {
	// A 10-class task split across 40 clients on 2 edge servers with
	// Dirichlet(0.2) label skew — each client sees only a few labels.
	gen := groupfel.FlatTask(10, 24, 1)
	sys := groupfel.NewSystem(groupfel.SystemConfig{
		Generator: gen,
		Partition: groupfel.DefaultPartition(40, 0.2, 2),
		NumEdges:  2,
		TestSize:  1000,
		NewModel: func(seed uint64) *groupfel.Model {
			return groupfel.NewMLP(24, []int{32}, 10, seed)
		},
		ModelSeed: 7,
	})

	cfg := groupfel.Config{
		GlobalRounds: 25, GroupRounds: 2, LocalEpochs: 1,
		BatchSize: 32, LR: 0.05, SampleGroups: 4,
		Grouping: groupfel.CoVGrouping{Config: groupfel.GroupingConfig{
			MinGS: 5, MaxCoV: 0.5, MergeLeftover: true}},
		Sampling:    groupfel.ESRCoV,
		Weights:     groupfel.BiasedWeights,
		Seed:        42,
		CostProfile: groupfel.CIFARProfile(),
		CostOps:     groupfel.DefaultCostOps(),
	}

	res := groupfel.Train(sys, cfg)

	fmt.Printf("formed %d groups from %d clients\n", len(res.Groups), len(sys.Clients))
	for _, g := range res.Groups {
		fmt.Printf("  group %d (edge %d): %2d clients, %4d samples, CoV %.3f\n",
			g.ID, g.Edge, g.Size(), g.NumSamples(), g.CoV())
	}
	fmt.Println("\nround  accuracy   cost")
	for _, r := range res.Records {
		if r.Round%5 == 0 || r.Round == len(res.Records)-1 {
			fmt.Printf("%5d  %7.4f  %9.1f\n", r.Round, r.Accuracy, r.Cost)
		}
	}
	fmt.Printf("\nfinal accuracy %.4f at total cost %.1f\n", res.FinalAccuracy, res.TotalCost)
}
