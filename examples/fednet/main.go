// Fednet: Group-FEL over a real network transport. The whole federation —
// cloud coordinator, edge servers, clients — runs as concurrent servers
// exchanging length-prefixed binary frames over TCP on 127.0.0.1, with
// secure aggregation inside every group and a mid-round client disconnect
// recovered from Shamir shares. Unlike examples/distributed (which *models*
// link times), every byte and millisecond here is measured.
package main

import (
	"fmt"

	groupfel "repro"
)

func main() {
	const seed = 33
	gen := groupfel.FlatTask(4, 10, seed)
	gen.Noise = 0.8
	sys := groupfel.NewSystem(groupfel.SystemConfig{
		Generator: gen,
		Partition: groupfel.PartitionConfig{
			NumClients: 20, Alpha: 0.5,
			MinSamples: 10, MaxSamples: 40, MeanSamples: 25, StdSamples: 8,
			Seed: seed + 1,
		},
		NumEdges: 2,
		TestSize: 400,
		NewModel: func(s uint64) *groupfel.Model {
			return groupfel.NewMLP(10, []int{16}, 4, s)
		},
		ModelSeed: 7,
	})

	cfg := groupfel.NetworkedJobConfig{
		GlobalRounds: 3, GroupRounds: 2, LocalEpochs: 1,
		BatchSize: 16, LR: 0.05, SampleGroups: 2,
		Grouping: groupfel.CoVGrouping{Config: groupfel.GroupingConfig{MinGS: 3, MaxCoV: 0.5, MergeLeftover: true}},
		Sampling: groupfel.ESRCoV,
		Weights:  groupfel.BiasedWeights,
		Seed:     seed,
	}

	fmt.Println("== clean networked job over 127.0.0.1 ==")
	rep, err := groupfel.RunNetworkedJob(groupfel.TCPTransport{}, sys, cfg, "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	for _, r := range rep.Rounds {
		fmt.Printf("round %d: acc=%.4f groups=%d bytes=%d\n", r.Round, r.Accuracy, r.Selected, r.WireBytes)
	}
	fmt.Printf("final acc=%.4f, %d frames, %d bytes on the wire, wall %s\n",
		rep.FinalAccuracy, rep.Frames, rep.WireWritten, rep.WallClock.Round(0))
	fmt.Printf("codec accounting matches transport: %v\n", rep.AccountedBytes == rep.WireWritten)

	// Same job, but one client vanishes after training in round 0 — a real
	// closed connection, detected by the edge and recovered via the secagg
	// share-reveal exchange. Pin formation + selection so the faulty client
	// is deterministically in play.
	groups := groupfel.FormGroups(cfg.Grouping, sys.Edges, sys.Classes, seed)
	var victim int
	for _, g := range groups {
		if g.Size() >= 3 {
			victim = g.Clients[0].ID
			break
		}
	}
	sel := make([]int, len(groups))
	for i := range sel {
		sel[i] = i
	}
	cfg.Groups = groups
	cfg.FixedSelection = [][]int{sel, sel, sel}
	cfg.ForceDrop = &groupfel.NetworkedDrop{Client: victim, Round: 0, GroupRound: 0}

	fmt.Printf("\n== same job with client %d disconnecting mid-round ==\n", victim)
	rep2, err := groupfel.RunNetworkedJob(groupfel.NewMemTransport(), sys, cfg, "")
	if err != nil {
		panic(err)
	}
	fmt.Printf("dropouts=%d, recovered group rounds=%d, final acc=%.4f (clean: %.4f)\n",
		rep2.Dropouts, rep2.Recoveries, rep2.FinalAccuracy, rep.FinalAccuracy)
}
