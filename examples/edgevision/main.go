// Edgevision: the paper's CIFAR-10 scenario in miniature — an image-like
// 10-class task on an edge fleet with skewed data, comparing Group-FEL
// against FedAvg, FedProx, and SCAFFOLD at a fixed cost budget, then
// relating the outcome to the Theorem 1 convergence factors.
package main

import (
	"fmt"

	groupfel "repro"
)

func main() {
	const (
		clients = 60
		alpha   = 0.1 // heavy label skew
		seed    = 11
		budget  = 30000.0
	)

	build := func() *groupfel.System {
		gen := groupfel.SynthCIFAR(seed) // 3×8×8 image-like samples
		return groupfel.NewSystem(groupfel.SystemConfig{
			Generator: gen,
			Partition: groupfel.PartitionConfig{
				NumClients: clients, Alpha: alpha,
				MinSamples: 15, MaxSamples: 60, MeanSamples: 35, StdSamples: 12,
				Seed: seed + 1,
			},
			NumEdges: 3,
			TestSize: 600,
			NewModel: func(s uint64) *groupfel.Model {
				return groupfel.NewResNetLite(3, 8, 8, 10, s)
			},
			ModelSeed: 7,
		})
	}

	base := groupfel.Config{
		GlobalRounds: 40, GroupRounds: 2, LocalEpochs: 1,
		BatchSize: 32, LR: 0.05, SampleGroups: 4,
		Seed:        seed,
		CostProfile: groupfel.CIFARProfile(),
		CostBudget:  budget,
		EvalEvery:   4,
	}
	opts := groupfel.DefaultBaselineOptions(clients, 5)

	fmt.Printf("CIFAR-like workload: %d clients, alpha=%.2f, budget=%.0f\n\n", clients, alpha, budget)
	fmt.Println("method      rounds  final-acc  total-cost")
	for _, m := range []groupfel.BaselineName{groupfel.FedAvg, groupfel.FedProx, groupfel.Scaffold, groupfel.GroupFEL} {
		res := groupfel.RunBaseline(m, build(), base, opts)
		fmt.Printf("%-10s  %6d  %9.4f  %10.1f\n", m, res.RoundsRun, res.FinalAccuracy, res.TotalCost)
		if m == groupfel.GroupFEL {
			// Relate the run to the convergence bound's structural factors.
			params := groupfel.TheoryFromSystem(res.Groups, res.Probs, groupfel.TheoryParams{
				Eta: base.LR, T: res.RoundsRun, K: base.GroupRounds, E: base.LocalEpochs,
				L: 1, Sigma2: 1, Zeta2: 1, F0MinusFStar: 5, S: base.SampleGroups,
			})
			fmt.Printf("            theory factors: gamma=%.3f Gamma=%.3f GammaP=%.1f zetaG2~%.3f groupsize=%.1f\n",
				params.Gamma, params.GammaBig, params.GammaP, params.ZetaG2, params.GroupSize)
		}
	}
	fmt.Println("\nGroup-FEL's smaller, better-balanced groups pay less quadratic")
	fmt.Println("overhead per round and its sampling favors low-CoV groups, so at a")
	fmt.Println("fixed budget it completes more useful rounds (paper Figs. 9–10).")
}
