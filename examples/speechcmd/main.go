// Speechcmd: the paper's SpeechCommands scenario (Fig. 11) — 35 command
// classes under extreme label skew (alpha = 0.01, so each client holds
// fewer than ~5 command types), larger minimum group size, no MaxCoV
// constraint. Convergence is noisy by design; Group-FEL still leads on
// accuracy-per-cost.
package main

import (
	"fmt"

	groupfel "repro"
)

func main() {
	const (
		clients = 120
		alpha   = 0.01
		seed    = 5
	)

	build := func() *groupfel.System {
		gen := groupfel.SynthSpeech(seed) // 35 classes, 1×12×12 samples
		return groupfel.NewSystem(groupfel.SystemConfig{
			Generator: gen,
			Partition: groupfel.PartitionConfig{
				NumClients: clients, Alpha: alpha,
				MinSamples: 20, MaxSamples: 80, MeanSamples: 45, StdSamples: 15,
				Seed: seed + 1,
			},
			NumEdges: 3,
			TestSize: 700,
			NewModel: func(s uint64) *groupfel.Model {
				return groupfel.NewCNN5(1, 12, 12, 35, s)
			},
			ModelSeed: 7,
		})
	}

	base := groupfel.Config{
		GlobalRounds: 20, GroupRounds: 2, LocalEpochs: 1,
		BatchSize: 32, LR: 0.05, SampleGroups: 3,
		Seed:        seed,
		CostProfile: groupfel.SCProfile(),
		EvalEvery:   4,
	}
	// Fig. 11 setup: MinGS=15 for every method, no MaxCoV cap.
	opts := groupfel.DefaultBaselineOptions(clients, 15)
	opts.MinGS = 15
	opts.MaxCoV = 0

	fmt.Printf("SpeechCommands-like workload: %d clients, %d classes, alpha=%.2f\n",
		clients, 35, alpha)
	fmt.Println("(each client is dominated by <5 command types; convergence is unstable)")
	fmt.Println()
	fmt.Println("method      final-acc  total-cost   acc/10k-cost")
	for _, m := range []groupfel.BaselineName{groupfel.FedAvg, groupfel.GroupFEL} {
		res := groupfel.RunBaseline(m, build(), base, opts)
		fmt.Printf("%-10s  %9.4f  %10.1f  %12.4f\n",
			m, res.FinalAccuracy, res.TotalCost, res.FinalAccuracy/(res.TotalCost/1e4))
	}
	fmt.Println("\nchance accuracy is 1/35 ≈ 0.029. At this extreme skew single runs are")
	fmt.Println("noisy (the paper's Fig. 11 curves cross repeatedly); the ordering that")
	fmt.Println("holds on average emerges over seeds — see the fig11 bench and")
	fmt.Println("EXPERIMENTS.md for the aggregate comparison.")
}
