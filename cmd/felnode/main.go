// Command felnode runs Group-FEL as a real networked federation over TCP:
// a cloud coordinator, edge servers (each hosting its clients), and the
// wire protocol of internal/wire between them.
//
// Every process builds the same synthetic federation from the shared flags
// and seed, so only model parameters, masked updates, and recovery shares
// cross the wire.
//
// Usage:
//
//	felnode -role loopback                     # whole federation in-process over 127.0.0.1
//	felnode -role loopback -dropclient 3       # inject a mid-round disconnect
//
//	felnode -role cloud -listen :9000
//	felnode -role edge -edge 0 -cloud host:9000 -listen :9100
//	felnode -role edge -edge 1 -cloud host:9000 -listen :9101
//
// With -chaos the process instead runs a deterministic chaos scenario
// against a full in-process federation behind a fault-injecting transport:
// a named scenario from the built-in suite, or a plan.json written by hand.
// The fault event log and the timing-masked metrics snapshot are printed so
// two invocations with the same seed can be diffed byte for byte:
//
//	felnode -chaos list                        # show the named suite
//	felnode -chaos corrupt-frames
//	felnode -chaos plan.json -seed 7
//
// With -serve the process becomes a long-running multi-job federation
// service (internal/felserve): -jobs concurrent jobs train on one cloud,
// subscribers follow the model-version stream over the -listen address, and
// -ckpt makes every job durable — killing the process and rerunning the
// same command resumes every job from its checkpoint with final weights
// bit-identical to an uninterrupted run (the `-chaos kill-cloud` scenario
// asserts exactly this end to end):
//
//	felnode -serve -jobs 2 -ckpt /tmp/fel-ckpt -listen 127.0.0.1:9400
//	felnode -chaos kill-cloud
//
// With -metrics addr the process additionally serves live introspection
// over HTTP while the job runs: the deterministic text snapshot on
// /metrics, expvar on /debug/vars, and the pprof profiles on /debug/pprof.
// -hold keeps the endpoint up after the job completes so the final
// counters can still be scraped:
//
//	felnode -role loopback -metrics 127.0.0.1:9090 -hold 30s
package main

import (
	"errors"
	"flag"
	"fmt"
	"math"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/data"
	"repro/internal/faultnet"
	"repro/internal/faultnet/scenarios"
	"repro/internal/fednode"
	"repro/internal/felserve"
	"repro/internal/grouping"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/sampling"
	"repro/internal/stats"
)

func main() {
	var (
		role    = flag.String("role", "loopback", "cloud, edge, or loopback")
		listen  = flag.String("listen", "127.0.0.1:0", "listen address (cloud: for edges; edge: for its clients)")
		cloud   = flag.String("cloud", "127.0.0.1:9000", "cloud address an edge dials")
		edgeID  = flag.Int("edge", 0, "edge id (role=edge)")
		clients = flag.Int("clients", 24, "total clients in the federation")
		edges   = flag.Int("edges", 2, "edge servers in the federation")
		rounds  = flag.Int("rounds", 3, "global rounds T")
		krounds = flag.Int("krounds", 2, "group rounds K")
		epochs  = flag.Int("epochs", 1, "local epochs E")
		batch   = flag.Int("batch", 16, "local SGD batch size")
		lr      = flag.Float64("lr", 0.05, "local SGD learning rate")
		sample  = flag.Int("sample", 2, "groups sampled per round S")
		seed    = flag.Uint64("seed", 42, "shared seed: every process derives the same federation from it")
		dropc   = flag.Int("dropclient", -1, "inject a disconnect: this client vanishes mid-round in round 0")
		chaos   = flag.String("chaos", "", "run a chaos scenario: a name from the built-in suite, a plan.json path, or 'list'")
		serve   = flag.Bool("serve", false, "run as a long-lived multi-job federation service (see -jobs, -ckpt)")
		ckpt    = flag.String("ckpt", "", "service mode: checkpoint directory for durable resume (empty: in-memory only)")
		jobs    = flag.Int("jobs", 2, "service mode: concurrent federation jobs to run")
		maddr   = flag.String("metrics", "", "serve /metrics, /debug/vars, and /debug/pprof on this address (e.g. 127.0.0.1:9090)")
		hold    = flag.Duration("hold", 0, "keep the -metrics endpoint up this long after the job completes")
		verbose = flag.Bool("v", false, "trace protocol progress")
	)
	flag.Parse()

	if *chaos != "" {
		seedSet := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "seed" {
				seedSet = true
			}
		})
		if err := runChaos(*chaos, *seed, seedSet, *verbose); err != nil {
			fmt.Fprintln(os.Stderr, "felnode:", err)
			os.Exit(1)
		}
		return
	}

	if *serve {
		tmpl := felserve.JobSpec{
			Clients: *clients, Edges: *edges,
			SystemSeed: *seed, Seed: *seed,
			Rounds: *rounds, GroupRounds: *krounds, LocalEpochs: *epochs,
			BatchSize: *batch, LR: *lr, SampleGroups: *sample,
		}
		if err := runServe(*listen, *ckpt, *jobs, tmpl, *maddr, *hold, *verbose); err != nil {
			fmt.Fprintln(os.Stderr, "felnode:", err)
			os.Exit(1)
		}
		return
	}

	sys := buildSystem(*clients, *edges, *seed)
	cfg := fednode.JobConfig{
		GlobalRounds: *rounds, GroupRounds: *krounds, LocalEpochs: *epochs,
		BatchSize: *batch, LR: *lr, SampleGroups: *sample,
		Grouping: grouping.CoVGrouping{Config: grouping.Config{MinGS: 3, MaxCoV: 0.5, MergeLeftover: true}},
		Sampling: sampling.ESRCoV,
		Weights:  sampling.Biased,
		Seed:     *seed,
	}
	if *dropc >= 0 {
		cfg.ForceDrop = &fednode.ForcedDrop{Client: *dropc, Round: 0, GroupRound: 0}
		if err := pinDropSelection(sys, &cfg); err != nil {
			fmt.Fprintln(os.Stderr, "felnode:", err)
			os.Exit(1)
		}
	}
	if *verbose {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "felnode: "+format+"\n", args...)
		}
	}

	var reg *metrics.Registry
	var msrv *metricsServer
	if *maddr != "" {
		reg = metrics.New()
		cfg.Meter = fednode.NewMeter(reg)
		metrics.PublishExpvar("felnode", reg)
		var merr error
		if msrv, merr = startMetrics(*maddr, reg); merr != nil {
			fmt.Fprintln(os.Stderr, "felnode:", merr)
			os.Exit(1)
		}
	}

	var err error
	switch *role {
	case "loopback":
		err = runLoopback(sys, cfg, *dropc >= 0)
	case "cloud":
		err = runCloud(sys, cfg, *listen)
	case "edge":
		err = runEdge(sys, cfg, *edgeID, *listen, *cloud)
	default:
		err = fmt.Errorf("unknown role %q (want cloud, edge, or loopback)", *role)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "felnode:", err)
		os.Exit(1)
	}
	if msrv != nil {
		fmt.Println()
		fmt.Print(reg.Table("felnode_metrics", "felnode metrics").Markdown())
		if *hold > 0 {
			fmt.Printf("metrics: holding endpoint http://%s for %s\n", msrv.addr, *hold)
			time.Sleep(*hold)
		}
		msrv.close()
	}
}

// runChaos executes one chaos scenario — named or loaded from a plan file —
// and prints the replay artifacts: the sorted fault event log and the
// timing-masked metrics snapshot. Both are deterministic for a given seed,
// so `felnode -chaos plan.json -seed 7` twice must print identical output.
func runChaos(arg string, seed uint64, seedSet, verbose bool) error {
	if arg == "list" {
		for _, sc := range scenarios.All() {
			fmt.Printf("%-22s %s\n", sc.Name, sc.About)
		}
		fmt.Printf("%-22s %s\n", "kill-cloud", "crash a two-job felserve cloud past its last checkpoint, restart, require bit-identical weights")
		return nil
	}
	if arg == "kill-cloud" {
		return runKillCloud(seed, verbose)
	}
	var sc scenarios.Scenario
	if st, err := os.Stat(arg); err == nil && !st.IsDir() {
		plan, err := faultnet.LoadPlan(arg)
		if err != nil {
			return err
		}
		if seedSet {
			plan.Seed = seed
		}
		sc = scenarios.FromPlan(plan)
	} else if named, ok := scenarios.ByName(arg); ok {
		sc = named
		// Harness-driven scenarios (RunFunc) own their seeds; only
		// plan-based ones expose the override hook.
		if seedSet && sc.Plan != nil {
			orig := sc.Plan
			sc.Plan = func(ctx *scenarios.Context) *faultnet.Plan {
				p := orig(ctx)
				p.Seed = seed
				return p
			}
		}
	} else {
		return fmt.Errorf("-chaos %q is neither a plan file nor a named scenario (try -chaos list)", arg)
	}

	var logf func(string, ...any)
	if verbose {
		logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "felnode: "+format+"\n", args...)
		}
	}
	r, err := scenarios.Run(sc, logf)
	if err != nil {
		return err
	}
	fmt.Printf("chaos %s: %d rounds, final acc=%.4f, dropouts=%d, recoveries=%d, casualties=%d, restarts=%d\n",
		r.Name, r.Report.RoundsRun, r.Report.FinalAccuracy, r.Report.Dropouts, r.Report.Recoveries,
		len(r.Casualties), r.Restarts)
	counts := r.Log.Counts()
	actions := make([]string, 0, len(counts))
	for a := range counts {
		actions = append(actions, string(a))
	}
	sort.Strings(actions)
	for _, a := range actions {
		fmt.Printf("  injected %s: %d\n", a, counts[faultnet.Action(a)])
	}
	if r.FaultFreeParams != nil {
		fmt.Println("  delay-only plan: final weights bit-identical to the fault-free baseline")
	}
	fmt.Println("--- fault event log ---")
	fmt.Print(r.Log.String())
	fmt.Println("--- metrics (timings masked) ---")
	fmt.Print(metrics.MaskTimings(r.Registry.Snapshot()))
	return nil
}

// metricsServer is the optional -metrics HTTP endpoint; done carries the
// Serve goroutine's exit so close can join it.
type metricsServer struct {
	addr string
	srv  *http.Server
	done chan error
}

// startMetrics serves reg's introspection handler on addr. It waits briefly
// for an immediate Serve failure (bad address classes surface through
// Listen, so this catches in-process races only) before declaring the
// endpoint up.
func startMetrics(addr string, reg *metrics.Registry) (*metricsServer, error) {
	ln, err := fednode.TCPNetwork{}.Listen(addr)
	if err != nil {
		return nil, fmt.Errorf("metrics listen on %s: %w", addr, err)
	}
	s := &metricsServer{
		addr: ln.Addr().String(),
		srv:  &http.Server{Handler: metrics.Handler(reg)},
		done: make(chan error, 1),
	}
	go func() { s.done <- s.srv.Serve(ln) }()
	select {
	case err := <-s.done:
		return nil, fmt.Errorf("metrics serve on %s: %w", addr, err)
	case <-time.After(10 * time.Millisecond):
	}
	fmt.Printf("metrics: serving /metrics, /debug/vars, /debug/pprof on http://%s\n", s.addr)
	return s, nil
}

// close shuts the endpoint down and joins the Serve goroutine.
func (s *metricsServer) close() {
	if err := s.srv.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "felnode: metrics close:", err)
	}
	if err := <-s.done; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "felnode: metrics server:", err)
	}
}

// buildSystem derives the shared synthetic federation: every process calls
// this with identical flags, so cloud, edges, and clients agree on data,
// partition, and model without exchanging any of it.
func buildSystem(numClients, numEdges int, seed uint64) *core.System {
	gen := data.FlatConfig(4, 10, seed)
	gen.Noise = 0.8
	return core.NewSystem(core.SystemConfig{
		Generator: gen,
		Partition: data.PartitionConfig{
			NumClients: numClients, Alpha: 0.5,
			MinSamples: 10, MaxSamples: 40, MeanSamples: 25, StdSamples: 8,
			Seed: seed + 1,
		},
		NumEdges: numEdges,
		TestSize: 400,
		NewModel: func(s uint64) *nn.Sequential {
			return nn.NewMLP(10, []int{16}, 4, s)
		},
		ModelSeed: 7,
	})
}

// pinDropSelection pins group formation (the same derivation the cloud
// would use) and selects every group each round, so an injected disconnect
// is deterministically in play and the recovery path demonstrably runs.
// Every process derives the same pin from the shared flags.
func pinDropSelection(sys *core.System, cfg *fednode.JobConfig) error {
	groups := grouping.FormAll(cfg.Grouping, sys.Edges, sys.Classes, stats.NewRNG(cfg.Seed).Split(1))
	var target *grouping.Group
	for _, g := range groups {
		for _, c := range g.Clients {
			if c.ID == cfg.ForceDrop.Client {
				target = g
			}
		}
	}
	if target == nil {
		return fmt.Errorf("dropclient %d is not a client of this federation", cfg.ForceDrop.Client)
	}
	if target.Size() < 3 {
		return fmt.Errorf("dropclient %d is in a group of %d: dropping it would break the Shamir threshold; pick a client in a larger group",
			cfg.ForceDrop.Client, target.Size())
	}
	sel := make([]int, len(groups))
	for i := range groups {
		sel[i] = i
	}
	cfg.Groups = groups
	cfg.FixedSelection = make([][]int, cfg.GlobalRounds)
	for t := range cfg.FixedSelection {
		cfg.FixedSelection[t] = sel
	}
	return nil
}

// runLoopback runs the full federation over real localhost TCP sockets and
// cross-checks the result against the in-process trainer: same seed, same
// config, so the final accuracies must agree within tolerance and — on a
// clean run — the transport byte count must equal the codec's accounting.
func runLoopback(sys *core.System, cfg fednode.JobConfig, injected bool) error {
	rep, err := fednode.RunJob(fednode.TCPNetwork{}, sys, cfg, "127.0.0.1:0")
	if err != nil {
		return err
	}
	fmt.Printf("loopback job: %d edges, %d clients, T=%d K=%d E=%d over 127.0.0.1\n",
		len(sys.Edges), len(sys.Clients), cfg.GlobalRounds, cfg.GroupRounds, cfg.LocalEpochs)
	for _, r := range rep.Rounds {
		fmt.Printf("  round %d: acc=%.4f loss=%.4f groups=%d dropouts=%d recoveries=%d bytes=%d\n",
			r.Round, r.Accuracy, r.Loss, r.Selected, r.Dropouts, r.Recoveries, r.WireBytes)
	}
	fmt.Printf("final: acc=%.4f loss=%.4f wall=%s frames=%d wire=%dB\n",
		rep.FinalAccuracy, rep.FinalLoss, rep.WallClock.Round(0), rep.Frames, rep.WireWritten)

	if injected {
		fmt.Printf("fault injection: %d dropouts, %d recovered group rounds\n", rep.Dropouts, rep.Recoveries)
		if rep.Recoveries == 0 {
			return fmt.Errorf("injected disconnect was never recovered")
		}
		// Partial writes on a torn connection can leave unaccounted bytes;
		// the byte cross-check only holds on clean runs.
		return nil
	}
	if rep.WireWritten != rep.AccountedBytes {
		return fmt.Errorf("byte accounting mismatch: transport wrote %d, codec accounted %d",
			rep.WireWritten, rep.AccountedBytes)
	}
	fmt.Printf("byte cross-check: transport bytes == codec-accounted bytes (%d)\n", rep.WireWritten)

	res := core.Train(sys, core.Config{
		GlobalRounds: cfg.GlobalRounds, GroupRounds: cfg.GroupRounds, LocalEpochs: cfg.LocalEpochs,
		BatchSize: cfg.BatchSize, LR: cfg.LR, SampleGroups: cfg.SampleGroups,
		Grouping: cfg.Grouping, Sampling: cfg.Sampling, Weights: cfg.Weights,
		Seed:        cfg.Seed,
		CostProfile: cost.CIFARProfile(), CostOps: cost.DefaultOps(),
	})
	gap := math.Abs(rep.FinalAccuracy - res.FinalAccuracy)
	fmt.Printf("in-process Train on same seed: acc=%.4f (gap %.4f)\n", res.FinalAccuracy, gap)
	if gap > 0.05 {
		return fmt.Errorf("networked accuracy %.4f diverges from in-process %.4f by %.4f (> 0.05)",
			rep.FinalAccuracy, res.FinalAccuracy, gap)
	}
	return nil
}

// runCloud serves the coordinator on listen and prints the report.
func runCloud(sys *core.System, cfg fednode.JobConfig, listen string) error {
	ln, err := fednode.TCPNetwork{}.Listen(listen)
	if err != nil {
		return err
	}
	defer func() {
		//lint:ignore dropped-error shutdown-path close of a drained listener
		ln.Close()
	}()
	fmt.Printf("cloud: listening on %s for %d edges\n", ln.Addr(), len(sys.Edges))
	rep, err := fednode.NewCloud(sys, cfg, nil).Run(ln)
	if err != nil {
		return err
	}
	for _, r := range rep.Rounds {
		fmt.Printf("  round %d: acc=%.4f dropouts=%d recoveries=%d\n", r.Round, r.Accuracy, r.Dropouts, r.Recoveries)
	}
	fmt.Printf("final: acc=%.4f loss=%.4f wall=%s\n", rep.FinalAccuracy, rep.FinalLoss, rep.WallClock.Round(0))
	return nil
}

// runEdge serves edge id on listen, dialing the cloud — and hosts the
// edge's clients as goroutines dialing back over real TCP, so one process
// per edge covers its whole subtree.
func runEdge(sys *core.System, cfg fednode.JobConfig, id int, listen, cloudAddr string) error {
	if id < 0 || id >= len(sys.Edges) {
		return fmt.Errorf("edge id %d out of range [0,%d)", id, len(sys.Edges))
	}
	nw := fednode.TCPNetwork{}
	ln, err := nw.Listen(listen)
	if err != nil {
		return err
	}
	defer func() {
		//lint:ignore dropped-error shutdown-path close of a drained listener
		ln.Close()
	}()
	addr := ln.Addr().String()
	fmt.Printf("edge %d: listening on %s, cloud at %s, hosting %d clients\n", id, addr, cloudAddr, len(sys.Edges[id]))

	errs := make(chan error, len(sys.Edges[id]))
	var wg sync.WaitGroup
	for _, cl := range sys.Edges[id] {
		wg.Add(1)
		go func(cid int) {
			defer wg.Done()
			if _, err := fednode.NewClient(cid, sys, cfg, nil).Run(nw, addr); err != nil {
				errs <- fmt.Errorf("client %d: %w", cid, err)
			}
		}(cl.ID)
	}
	edgeErr := fednode.NewEdge(id, sys, cfg, nil).Run(nw, ln, cloudAddr)
	wg.Wait()
	close(errs)
	if edgeErr != nil {
		return edgeErr
	}
	for err := range errs {
		if err != nil {
			return err
		}
	}
	fmt.Printf("edge %d: job complete\n", id)
	return nil
}
