package main

import (
	"fmt"
	"os"
	"time"

	"repro/internal/fednode"
	"repro/internal/felserve"
	"repro/internal/metrics"
)

// runServe is felnode's service mode: a long-running multi-job federation
// cloud. It recovers every job the checkpoint directory holds, tops the
// tenant set up to -jobs fresh jobs derived from the shared flags, serves
// subscriber connections on the TCP listener, and runs until every job
// completes. A process killed mid-run leaves its checkpoints behind;
// rerunning the same command resumes them bit-identically.
func runServe(listen, ckptDir string, jobs int, tmpl felserve.JobSpec, maddr string, hold time.Duration, verbose bool) error {
	if jobs <= 0 {
		return fmt.Errorf("-serve needs -jobs >= 1, got %d", jobs)
	}
	cfg := felserve.Config{Dir: ckptDir, CheckpointEvery: 2, StartHeld: true}
	if verbose {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "felnode: "+format+"\n", args...)
		}
	}
	var msrv *metricsServer
	if maddr != "" {
		cfg.Registry = metrics.New()
		metrics.PublishExpvar("felnode", cfg.Registry)
		var err error
		if msrv, err = startMetrics(maddr, cfg.Registry); err != nil {
			return err
		}
	}
	svc := felserve.New(cfg)

	recovered, err := svc.Recover()
	if err != nil {
		return err
	}
	for _, j := range recovered {
		fmt.Printf("serve: recovered job %s at round %d/%d\n", j.Name(), j.Round(), j.Spec.Rounds)
	}
	var all []*felserve.Job
	all = append(all, recovered...)
	for i := 0; i < jobs; i++ {
		spec := tmpl
		spec.Name = fmt.Sprintf("job-%d", i)
		spec.SystemSeed = tmpl.SystemSeed + uint64(i)
		spec.Seed = tmpl.Seed + 100*uint64(i+1)
		spec.Scaffold = i%2 == 1
		if svc.Job(spec.Name) != nil {
			continue // already recovered from a checkpoint
		}
		j, err := svc.Submit(spec)
		if err != nil {
			return err
		}
		fmt.Printf("serve: submitted job %s (%d clients, %d rounds%s)\n",
			spec.Name, spec.Clients, spec.Rounds, map[bool]string{true: ", scaffold"}[spec.Scaffold])
		all = append(all, j)
	}

	ln, err := fednode.TCPNetwork{}.Listen(listen)
	if err != nil {
		return err
	}
	fmt.Printf("serve: %d jobs, subscribers welcome on %s (ckpt dir %q)\n", len(all), ln.Addr(), ckptDir)
	svc.Serve(ln)
	svc.Start()
	svc.Wait()

	for _, j := range all {
		res, err := j.Wait()
		if err != nil {
			return fmt.Errorf("job %s: %w", j.Name(), err)
		}
		fmt.Printf("serve: job %s done after %d rounds, acc=%.4f cost=%.1f\n",
			j.Name(), res.RoundsRun, res.FinalAccuracy, res.TotalCost)
	}
	if err := svc.Close(); err != nil {
		return err
	}
	if msrv != nil {
		fmt.Println()
		fmt.Print(cfg.Registry.Table("felnode_metrics", "felnode serve metrics").Markdown())
		if hold > 0 {
			fmt.Printf("metrics: holding endpoint http://%s for %s\n", msrv.addr, hold)
			time.Sleep(hold)
		}
		msrv.close()
	}
	return nil
}

// runKillCloud executes the kill-cloud chaos exercise: crash a two-tenant
// cloud past its last checkpoint, restart it, and require bit-identical
// final weights. Output is deterministic for a given seed.
func runKillCloud(seed uint64, verbose bool) error {
	dir, err := os.MkdirTemp("", "felnode-killcloud-*")
	if err != nil {
		return err
	}
	defer func() {
		//lint:ignore dropped-error best-effort cleanup of a temp directory
		os.RemoveAll(dir)
	}()
	var logf func(string, ...any)
	if verbose {
		logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "felnode: "+format+"\n", args...)
		}
	}
	rep, err := felserve.KillCloudDemo(dir, seed, logf)
	if err != nil {
		return err
	}
	fmt.Printf("chaos kill-cloud: %d jobs crashed and recovered, bit-identical=%v\n", len(rep.Jobs), rep.BitIdentical)
	for _, name := range rep.Jobs {
		fmt.Printf("  job %-10s killed at round %d, resumed from checkpoint round %d, final acc=%.4f\n",
			name, rep.KilledAtRound[name], rep.ResumedFromRound[name], rep.FinalAccuracy[name])
	}
	return nil
}
