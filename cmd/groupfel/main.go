// Command groupfel runs one federated training job — Group-FEL or any of
// the paper's baselines — and prints the per-round accuracy/cost trajectory
// and the final summary.
//
// Usage:
//
//	groupfel -method Group-FEL -task cifar -scale small -rounds 20 -alpha 0.1
//	groupfel -method FedAvg -task sc -alpha 0.01
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/baselines"
	"repro/internal/experiments"
	"repro/internal/simnet"
)

func main() {
	var (
		method  = flag.String("method", "Group-FEL", "method: FedAvg, FedProx, SCAFFOLD, Group-FEL, OUEA, SHARE, FedCLAR")
		task    = flag.String("task", "cifar", "task: cifar or sc")
		scale   = flag.String("scale", "small", "scale: small, medium, or paper")
		rounds  = flag.Int("rounds", 0, "override global rounds (0 = scale default)")
		alpha   = flag.Float64("alpha", 0.5, "Dirichlet concentration (smaller = more skew)")
		seed    = flag.Uint64("seed", 1, "random seed")
		budget  = flag.Float64("budget", 0, "cost budget (0 = scale default)")
		dropout = flag.Float64("dropout", 0, "client dropout probability")
	)
	flag.Parse()

	sc, err := experiments.ScaleByName(*scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, "groupfel:", err)
		os.Exit(2)
	}
	if *rounds > 0 {
		sc.GlobalRounds = *rounds
	}
	if *budget > 0 {
		sc.CostBudget = *budget
	}
	var tk experiments.Task
	switch strings.ToLower(*task) {
	case "cifar":
		tk = experiments.CIFAR
	case "sc":
		tk = experiments.SC
	default:
		fmt.Fprintf(os.Stderr, "groupfel: unknown task %q (want cifar or sc)\n", *task)
		os.Exit(2)
	}
	var name baselines.Name
	for _, m := range baselines.All() {
		if strings.EqualFold(string(m), *method) {
			name = m
		}
	}
	if name == "" {
		fmt.Fprintf(os.Stderr, "groupfel: unknown method %q\n", *method)
		os.Exit(2)
	}

	fmt.Printf("method=%s task=%s scale=%s clients=%d edges=%d T=%d K=%d E=%d S=%d alpha=%g seed=%d\n",
		name, tk, sc.Name, sc.Clients, sc.Edges, sc.GlobalRounds, sc.GroupRounds,
		sc.LocalEpochs, sc.SampleGroups, *alpha, *seed)

	sys := sc.NewSystem(tk, *alpha, *seed)
	opts := baselines.DefaultOptions(sc.Clients, sc.TargetGS)
	opts.MinGS = sc.MinGS
	opts.MaxCoV = sc.MaxCoV
	base := sc.BaseConfig(tk, *seed)
	base.DropoutProb = *dropout
	topo := simnet.Default()
	base.Topology = &topo
	res := baselines.Run(name, sys, base, opts)

	fmt.Println("\nround  accuracy   loss     cost        selCoV")
	for _, r := range res.Records {
		if r.Accuracy < 0 {
			continue
		}
		fmt.Printf("%5d  %7.4f  %7.4f  %10.1f  %6.3f\n", r.Round, r.Accuracy, r.Loss, r.Cost, r.AvgSelectedCoV)
	}
	fmt.Printf("\ngroups=%d  rounds run=%d  dropped updates=%d\n", len(res.Groups), res.RoundsRun, res.Dropouts)
	fmt.Printf("final accuracy=%.4f  loss=%.4f  total cost=%.1f\n",
		res.FinalAccuracy, res.FinalLoss, res.TotalCost)
	fmt.Printf("participation: %d/%d clients, Jain fairness %.3f; simulated wall clock %.0f s\n",
		res.UniqueParticipants(), len(sys.Clients), res.FairnessIndex(sys), res.WallClock)
}
