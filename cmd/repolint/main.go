// Command repolint runs the repository's custom static-analysis suite
// (internal/lint) over every package of the module and reports violations
// with file:line:col positions, so it can gate CI (see ci.sh).
//
// Usage:
//
//	repolint [-dir .] [-analyzers name1,name2] [-json] [-list]
//
// Exit codes:
//
//	0 — the tree is clean (no diagnostics)
//	1 — one or more violations were reported
//	2 — the run itself failed (unknown analyzer name, module load or
//	    type-check error)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	dir := flag.String("dir", ".", "directory inside the module to lint (the whole module is loaded)")
	names := flag.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
	rules := flag.String("rules", "", "alias for -analyzers (kept for older scripts)")
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array on stdout")
	list := flag.Bool("list", false, "list available analyzers and exit")
	flag.Parse()
	if *names == "" {
		names = rules
	}

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := lint.All()
	if *names != "" {
		analyzers = analyzers[:0:0]
		for _, name := range strings.Split(*names, ",") {
			a, err := lint.ByName(strings.TrimSpace(name))
			if err != nil {
				fatal(err)
			}
			analyzers = append(analyzers, a)
		}
	}

	root, err := lint.FindModuleRoot(*dir)
	if err != nil {
		fatal(err)
	}
	pkgs, err := lint.LoadModule(root)
	if err != nil {
		fatal(err)
	}
	diags := lint.Check(pkgs, analyzers)

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "repolint: %d violation(s) in %d package(s) checked\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "repolint:", err)
	os.Exit(2)
}
