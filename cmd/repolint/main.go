// Command repolint runs the repository's custom static-analysis suite
// (internal/lint) over every package of the module and reports violations
// with file:line:col positions. It exits non-zero when any violation is
// found, so it can gate CI (see ci.sh).
//
// Usage:
//
//	repolint [-dir .] [-rules rule1,rule2] [-json] [-list]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	dir := flag.String("dir", ".", "directory inside the module to lint (the whole module is loaded)")
	rules := flag.String("rules", "", "comma-separated subset of rules to run (default: all)")
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array on stdout")
	list := flag.Bool("list", false, "list available rules and exit")
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := lint.All()
	if *rules != "" {
		analyzers = analyzers[:0:0]
		for _, name := range strings.Split(*rules, ",") {
			a, err := lint.ByName(strings.TrimSpace(name))
			if err != nil {
				fatal(err)
			}
			analyzers = append(analyzers, a)
		}
	}

	root, err := lint.FindModuleRoot(*dir)
	if err != nil {
		fatal(err)
	}
	pkgs, err := lint.LoadModule(root)
	if err != nil {
		fatal(err)
	}
	diags := lint.Check(pkgs, analyzers)

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "repolint: %d violation(s) in %d package(s) checked\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "repolint:", err)
	os.Exit(1)
}
