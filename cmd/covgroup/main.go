// Command covgroup runs the paper's group formation and sampling on real
// client label histograms: feed it a JSON document of per-client label
// counts, get back the formed groups with their CoV, γ, and sampling
// probabilities. This is the edge-server component of Group-FEL as a
// standalone tool.
//
// Usage:
//
//	covgroup -alg covg -mings 5 -maxcov 0.5 -sampling esrcov < clients.json
//
// Input format:
//
//	{"classes": 3,
//	 "clients": [
//	   {"id": 0, "counts": [12, 0, 3], "edge": 0},
//	   {"id": 1, "counts": [0, 9, 8]} ]}
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/grouping"
	"repro/internal/groupio"
)

func main() {
	var (
		alg      = flag.String("alg", "covg", "formation algorithm: covg, rg, cdg, kldg, varg")
		minGS    = flag.Int("mings", 5, "minimum group size (anonymity constraint)")
		targetGS = flag.Int("targetgs", 0, "target group size for rg/cdg/kldg (0 = mings)")
		maxCoV   = flag.Float64("maxcov", 0.5, "CoV target for covg (0 disables)")
		method   = flag.String("sampling", "esrcov", "sampling method: random, rcov, srcov, esrcov")
		seed     = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()

	in, err := groupio.Parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "covgroup:", err)
		os.Exit(2)
	}
	cfg := grouping.Config{MinGS: *minGS, MaxCoV: *maxCoV, MergeLeftover: true}
	a, err := groupio.AlgorithmByName(*alg, cfg, *targetGS)
	if err != nil {
		fmt.Fprintln(os.Stderr, "covgroup:", err)
		os.Exit(2)
	}
	m, err := groupio.SamplingByName(*method)
	if err != nil {
		fmt.Fprintln(os.Stderr, "covgroup:", err)
		os.Exit(2)
	}
	out, err := groupio.Run(in, a, m, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "covgroup:", err)
		os.Exit(1)
	}
	if err := out.Write(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "covgroup:", err)
		os.Exit(1)
	}
}
