// Command felbench regenerates the paper's evaluation artifacts (figures
// 2a–12 and Table 1, plus the ablation studies) and prints them as
// summaries and CSV.
//
// Usage:
//
//	felbench -list
//	felbench -exp fig9 -scale small -seed 7
//	felbench -exp all -scale medium -out results/
//	felbench -bench all -out results/
//	felbench -bench medium -benchprocs 4 -benchpar 8 -out results/
//	felbench -scalebench all -out results/
//	felbench -load -jobs 4 -subs 250 -out results/
//
// -bench runs the engine benchmark grid: every GOMAXPROCS × MaxParallel
// combination of the requested workload scales (comma list of small, medium,
// large, or "all"), each cell measured end to end and compared bit-for-bit
// against that scale's naive-serial baseline, written as BENCH_grid.json.
// -benchprocs and -benchpar override the default {1,4,8} × {1,2,8} axes;
// -benchrepeats sets the per-cell repeat count (minima are reported).
//
// -scalebench runs the population-scaling grid over virtual (flyweight)
// client populations — up to a million clients across hundreds of edges —
// timing population build, CoV-Grouping formation, and steady-state round
// cost/allocations, and writes BENCH_scale.json. Takes a comma list of row
// ids ("10k", "100k", "1m") or "all".
//
// -load is the serving-layer load harness: one felserve cloud trains -jobs
// concurrent federation jobs while -subs loopback subscribers per job follow
// the model-version stream; it asserts every subscriber lands on the correct
// final aggregate and that shutdown leaks no goroutines, then writes the
// measured round throughput as BENCH_serve.json.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/experiments"
	"repro/internal/metrics"
)

// idList renders the experiment id list, shared by -list and the
// unknown-id error path so both always show the same valid set.
func idList() string {
	var b strings.Builder
	b.WriteString("experiments:\n")
	for _, id := range experiments.IDs() {
		b.WriteString("  " + id + "\n")
	}
	return b.String()
}

// parseIntList parses a comma list of positive ints ("1,4,8") for the grid
// axis flags.
func parseIntList(flagName, spec string) []int {
	var out []int
	for _, f := range strings.Split(spec, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "felbench: -%s wants a comma list of positive ints, got %q\n", flagName, spec)
			os.Exit(2)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		fmt.Fprintf(os.Stderr, "felbench: -%s is empty\n", flagName)
		os.Exit(2)
	}
	return out
}

// runBenchGrid runs the engine benchmark grid and writes BENCH_grid.json
// into dir (current directory when empty). Any cell that fails the
// bit-identical check against its scale's baseline exits 1.
func runBenchGrid(spec, procsSpec, parSpec string, repeats int, seed uint64, dir string) {
	var names []string
	for _, n := range strings.Split(spec, ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	scales, err := experiments.BenchScalesByNames(names)
	if err != nil {
		fmt.Fprintln(os.Stderr, "felbench:", err)
		os.Exit(2)
	}
	procsAxis := parseIntList("benchprocs", procsSpec)
	parAxis := parseIntList("benchpar", parSpec)
	fmt.Printf("=== engine bench grid (scales=%s procs=%v par=%v repeats=%d seed=%d) ===\n",
		spec, procsAxis, parAxis, repeats, seed)
	res := experiments.BenchGrid(scales, procsAxis, parAxis, repeats, seed, func(line string) { fmt.Println(line) })
	broken := false
	for _, c := range res.Cells {
		if !c.BitIdentical {
			broken = true
			fmt.Fprintf(os.Stderr, "felbench: cell scale=%s procs=%d par=%d diverged from the serial baseline — determinism contract broken\n",
				c.Scale, c.GoMaxProcs, c.MaxParallel)
		}
	}
	writeJSON(dir, "BENCH_grid.json", res)
	if broken {
		os.Exit(1)
	}
}

// writeJSON writes v as indented JSON into dir/name, creating the results
// directory if it does not exist yet (a clean checkout has none).
func writeJSON(dir, name string, v any) {
	if dir == "" {
		dir = "."
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "felbench:", err)
		os.Exit(1)
	}
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "felbench:", err)
		os.Exit(1)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "felbench:", err)
		os.Exit(1)
	}
	fmt.Println("wrote", path)
}

// runAsyncBench runs the async-vs-sync aggregation grid under the
// straggler-storm delay model and writes BENCH_async.json into dir
// (current directory when empty). Exits 1 if any gate fails: the α=0
// full-buffer cell must be bit-identical to sync, both async modes must
// finish in strictly fewer logical ticks, and the best async cell must
// match or beat the synchronous final accuracy.
func runAsyncBench(sc experiments.Scale, seed uint64, dir string) {
	fmt.Printf("=== async-vs-sync (scale=%s seed=%d) ===\n", sc.Name, seed)
	res := experiments.AsyncVsSync(sc, seed, func(line string) { fmt.Println(line) })
	fmt.Printf("gates: alpha0-bit-identical=%v buffered-fewer-ticks=%v semisync-fewer-ticks=%v equal-or-better-accuracy=%v\n",
		res.Alpha0BitIdentical, res.BufferedFewerTicks, res.SemiSyncFewerTicks, res.EqualOrBetterAccuracy)
	writeJSON(dir, "BENCH_async.json", res)
	if !res.Pass {
		fmt.Fprintln(os.Stderr, "felbench: async-vs-sync gates failed")
		os.Exit(1)
	}
}

// runScaleBench runs the population-scaling grid and writes
// BENCH_scale.json into dir (current directory when empty).
func runScaleBench(spec string, seed uint64, dir string) {
	var ids []string
	for _, id := range strings.Split(spec, ",") {
		if id = strings.TrimSpace(id); id != "" {
			ids = append(ids, id)
		}
	}
	scales, err := experiments.PopScaleByIDs(ids)
	if err != nil {
		fmt.Fprintln(os.Stderr, "felbench:", err)
		os.Exit(2)
	}
	fmt.Printf("=== population scaling bench (rows=%s seed=%d) ===\n", spec, seed)
	res := experiments.PopScaleGrid(scales, seed, func(line string) { fmt.Println(line) })
	writeJSON(dir, "BENCH_scale.json", res)
}

// runServeBench runs the felserve load harness and writes BENCH_serve.json
// into dir (current directory when empty).
func runServeBench(jobs, subs int, seed uint64, dir string) {
	const rounds, clients = 8, 12
	fmt.Printf("=== felserve load harness (%d jobs × %d subscribers, %d rounds each, seed=%d) ===\n",
		jobs, subs, rounds, seed)
	res, err := experiments.ServeBench(jobs, subs, rounds, clients, seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "felbench:", err)
		os.Exit(1)
	}
	fmt.Printf("rounds:   %d total in %.2fs → %.1f rounds/s\n", res.TotalRounds, res.WallSeconds, res.RoundsPerSec)
	fmt.Printf("fan-out:  %d subscribers admitted, %d version frames delivered\n", res.Admitted, res.VersionsSent)
	fmt.Printf("finals:   bit-correct aggregates on every subscriber: %v\n", res.FinalsCorrect)
	fmt.Printf("teardown: %d leaked goroutines\n", res.LeakedGoroutines)
	if !res.FinalsCorrect || res.LeakedGoroutines > 0 {
		fmt.Fprintln(os.Stderr, "felbench: load harness contract violated")
		os.Exit(1)
	}
	writeJSON(dir, "BENCH_serve.json", res)
}

func main() {
	var (
		exp   = flag.String("exp", "", "experiment id (see -list), comma list, or 'all'")
		scale = flag.String("scale", "small", "scale: small, medium, or paper")
		seed  = flag.Uint64("seed", 2024, "random seed")
		out   = flag.String("out", "", "directory to write per-experiment CSV files (optional)")
		list  = flag.Bool("list", false, "list experiment ids and exit")
		bench   = flag.String("bench", "", "engine bench grid: comma list of workload scales (small, medium, large) or 'all'; writes BENCH_grid.json")
		bprocs  = flag.String("benchprocs", "1,4,8", "GOMAXPROCS axis for -bench (comma list)")
		bpar    = flag.String("benchpar", "1,2,8", "MaxParallel axis for -bench (comma list)")
		brepeat = flag.Int("benchrepeats", 3, "repeats per -bench cell; minima are reported")
		scb     = flag.String("scalebench", "", "population-scaling bench: comma list of row ids (10k, 100k, 1m) or 'all'; writes BENCH_scale.json")
		load  = flag.Bool("load", false, "run the felserve load harness and write BENCH_serve.json")
		jobs  = flag.Int("jobs", 4, "concurrent jobs for -load")
		subs  = flag.Int("subs", 250, "loopback subscribers per job for -load")
	)
	flag.Parse()

	if *list {
		fmt.Print(idList())
		return
	}
	if *load {
		runServeBench(*jobs, *subs, *seed, *out)
		return
	}
	if *scb != "" {
		runScaleBench(*scb, *seed, *out)
		return
	}
	if *bench != "" {
		runBenchGrid(*bench, *bprocs, *bpar, *brepeat, *seed, *out)
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "felbench: -exp is required (or -list)")
		os.Exit(2)
	}
	sc, err := experiments.ScaleByName(*scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, "felbench:", err)
		os.Exit(2)
	}
	// async-vs-sync writes a gated JSON artifact rather than a CSV figure,
	// so it routes around the registry loop.
	if *exp == "async-vs-sync" {
		runAsyncBench(sc, *seed, *out)
		return
	}
	reg := experiments.Registry()
	var ids []string
	if *exp == "all" {
		ids = experiments.IDs()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			id = strings.TrimSpace(id)
			if _, ok := reg[id]; !ok {
				fmt.Fprintf(os.Stderr, "felbench: unknown experiment %q\n", id)
				fmt.Fprint(os.Stderr, idList())
				os.Exit(2)
			}
			ids = append(ids, id)
		}
	}
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "felbench:", err)
			os.Exit(1)
		}
	}
	for _, id := range ids {
		fmt.Printf("=== %s (scale=%s seed=%d) ===\n", id, sc.Name, *seed)
		// Each experiment gets its own registry, so the JSON dump isolates
		// that run's counters and spans.
		mreg := metrics.New()
		scRun := sc
		scRun.Metrics = mreg
		a := reg[id](scRun, *seed)
		fmt.Println(a.Pretty)
		if *out != "" {
			path := filepath.Join(*out, id+".csv")
			if err := os.WriteFile(path, []byte(a.CSV), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "felbench:", err)
				os.Exit(1)
			}
			fmt.Println("wrote", path)
			mjson, err := mreg.JSON()
			if err != nil {
				fmt.Fprintln(os.Stderr, "felbench:", err)
				os.Exit(1)
			}
			mpath := filepath.Join(*out, id+".metrics.json")
			if err := os.WriteFile(mpath, mjson, 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "felbench:", err)
				os.Exit(1)
			}
			fmt.Println("wrote", mpath)
		}
		fmt.Println()
	}
}
