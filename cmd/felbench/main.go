// Command felbench regenerates the paper's evaluation artifacts (figures
// 2a–12 and Table 1, plus the ablation studies) and prints them as
// summaries and CSV.
//
// Usage:
//
//	felbench -list
//	felbench -exp fig9 -scale small -seed 7
//	felbench -exp all -scale medium -out results/
//	felbench -bench -out results/
//
// -bench times the training engine serial (MaxParallel=1) vs parallel
// (GOMAXPROCS workers) on the selected scale, checks the two schedules
// produce bit-identical parameters, and writes BENCH_core.json.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/experiments"
	"repro/internal/metrics"
)

// idList renders the experiment id list, shared by -list and the
// unknown-id error path so both always show the same valid set.
func idList() string {
	var b strings.Builder
	b.WriteString("experiments:\n")
	for _, id := range experiments.IDs() {
		b.WriteString("  " + id + "\n")
	}
	return b.String()
}

// runCoreBench runs the serial-vs-parallel engine benchmark and writes
// BENCH_core.json into dir (current directory when empty).
func runCoreBench(sc experiments.Scale, seed uint64, dir string) {
	fmt.Printf("=== core engine bench (scale=%s seed=%d) ===\n", sc.Name, seed)
	res := experiments.CoreBench(sc, seed)
	fmt.Printf("serial:   %.0f ns/round, %.0f allocs/round\n", res.SerialNsPerRound, res.SerialAllocsPerRound)
	fmt.Printf("parallel: %.0f ns/round, %.0f allocs/round (GOMAXPROCS=%d)\n",
		res.ParallelNsPerRound, res.ParallelAllocsPerRound, res.GoMaxProcs)
	fmt.Printf("speedup:  %.2fx, bit-identical: %v\n", res.Speedup, res.BitIdentical)
	if !res.BitIdentical {
		fmt.Fprintln(os.Stderr, "felbench: serial and parallel runs diverged — determinism contract broken")
		os.Exit(1)
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "felbench:", err)
			os.Exit(1)
		}
	} else {
		dir = "."
	}
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "felbench:", err)
		os.Exit(1)
	}
	path := filepath.Join(dir, "BENCH_core.json")
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "felbench:", err)
		os.Exit(1)
	}
	fmt.Println("wrote", path)
}

func main() {
	var (
		exp   = flag.String("exp", "", "experiment id (see -list), comma list, or 'all'")
		scale = flag.String("scale", "small", "scale: small, medium, or paper")
		seed  = flag.Uint64("seed", 2024, "random seed")
		out   = flag.String("out", "", "directory to write per-experiment CSV files (optional)")
		list  = flag.Bool("list", false, "list experiment ids and exit")
		bench = flag.Bool("bench", false, "benchmark the training engine (serial vs parallel) and write BENCH_core.json")
	)
	flag.Parse()

	if *list {
		fmt.Print(idList())
		return
	}
	if *bench {
		sc, err := experiments.ScaleByName(*scale)
		if err != nil {
			fmt.Fprintln(os.Stderr, "felbench:", err)
			os.Exit(2)
		}
		runCoreBench(sc, *seed, *out)
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "felbench: -exp is required (or -list)")
		os.Exit(2)
	}
	sc, err := experiments.ScaleByName(*scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, "felbench:", err)
		os.Exit(2)
	}
	reg := experiments.Registry()
	var ids []string
	if *exp == "all" {
		ids = experiments.IDs()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			id = strings.TrimSpace(id)
			if _, ok := reg[id]; !ok {
				fmt.Fprintf(os.Stderr, "felbench: unknown experiment %q\n", id)
				fmt.Fprint(os.Stderr, idList())
				os.Exit(2)
			}
			ids = append(ids, id)
		}
	}
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "felbench:", err)
			os.Exit(1)
		}
	}
	for _, id := range ids {
		fmt.Printf("=== %s (scale=%s seed=%d) ===\n", id, sc.Name, *seed)
		// Each experiment gets its own registry, so the JSON dump isolates
		// that run's counters and spans.
		mreg := metrics.New()
		scRun := sc
		scRun.Metrics = mreg
		a := reg[id](scRun, *seed)
		fmt.Println(a.Pretty)
		if *out != "" {
			path := filepath.Join(*out, id+".csv")
			if err := os.WriteFile(path, []byte(a.CSV), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "felbench:", err)
				os.Exit(1)
			}
			fmt.Println("wrote", path)
			mjson, err := mreg.JSON()
			if err != nil {
				fmt.Fprintln(os.Stderr, "felbench:", err)
				os.Exit(1)
			}
			mpath := filepath.Join(*out, id+".metrics.json")
			if err := os.WriteFile(mpath, mjson, 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "felbench:", err)
				os.Exit(1)
			}
			fmt.Println("wrote", mpath)
		}
		fmt.Println()
	}
}
