// Package groupfel is a Go implementation of Group-based Hierarchical
// Federated Learning (Group-FEL) as described in "Group-based Hierarchical
// Federated Learning: Convergence, Group Formation, and Sampling"
// (Liu, Wei, Liu, Gao, Wang — ICPP 2023).
//
// The library covers the full system of the paper:
//
//   - the cloud–edge–client training loop of Algorithm 1 (Train),
//   - CoV-based group formation (CoVGrouping, Algorithm 2) and the
//     comparator policies (RandomGrouping, CDGrouping, KLDGrouping),
//   - CoV-prioritized group sampling (RCoV / SRCoV / ESRCoV) with biased,
//     unbiased (Eq. 4), and stabilized (Eq. 35) aggregation,
//   - the quadratic group-operation cost model of Eq. 5 (CostProfile,
//     Accountant) calibrated to the paper's Fig. 8,
//   - executable group-operation substrates: Bonawitz-style secure
//     aggregation (SecAggSession) and FLAME-style backdoor detection
//     (DetectBackdoors),
//   - the baseline methods of the evaluation (FedAvg, FedProx, SCAFFOLD,
//     OUEA, SHARE, FedCLAR) and the Theorem 1 bound calculator.
//
// Quick start:
//
//	sys := groupfel.NewSystem(groupfel.SystemConfig{ ... })
//	cfg := groupfel.Config{
//		GlobalRounds: 50, GroupRounds: 5, LocalEpochs: 2,
//		LR: 0.05, SampleGroups: 12,
//		Grouping: groupfel.CoVGrouping{Config: groupfel.GroupingConfig{MinGS: 5, MaxCoV: 0.5, MergeLeftover: true}},
//		Sampling: groupfel.ESRCoV,
//		CostProfile: groupfel.CIFARProfile(),
//	}
//	res := groupfel.Train(sys, cfg)
//
// See examples/ for runnable programs and EXPERIMENTS.md for the
// reproduction of every table and figure in the paper.
package groupfel

import (
	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// Core training types (Algorithm 1).
type (
	// System is a federated population: datasets, clients, edges, model.
	System = core.System
	// SystemConfig describes how to build a System.
	SystemConfig = core.SystemConfig
	// Config parameterizes one training run.
	Config = core.Config
	// Result is a training outcome with per-round records.
	Result = core.Result
	// RoundRecord is the state after one global round.
	RoundRecord = core.RoundRecord
	// LocalUpdater is the pluggable client update rule.
	LocalUpdater = core.LocalUpdater
	// LocalContext is the per-client training context.
	LocalContext = core.LocalContext
	// SGDUpdater is plain local SGD (Group-FEL, FedAvg).
	SGDUpdater = core.SGDUpdater
	// ProxUpdater is the FedProx proximal update.
	ProxUpdater = core.ProxUpdater
	// ScaffoldUpdater is the SCAFFOLD control-variate update.
	ScaffoldUpdater = core.ScaffoldUpdater
)

// Dataset and model types.
type (
	// Dataset is an in-memory labelled dataset.
	Dataset = data.Dataset
	// Client is one federated participant.
	Client = data.Client
	// GeneratorConfig parameterizes a synthetic task.
	GeneratorConfig = data.GeneratorConfig
	// Generator produces synthetic datasets.
	Generator = data.Generator
	// PartitionConfig controls the Dirichlet non-IID partition.
	PartitionConfig = data.PartitionConfig
	// Model is a feed-forward network.
	Model = nn.Sequential
	// Tensor is a dense numeric array.
	Tensor = tensor.Tensor
)

// NewSystem builds a federated population from a system config,
// materializing every client's samples up front.
func NewSystem(cfg SystemConfig) *System { return core.NewSystem(cfg) }

// NewVirtualSystem builds a flyweight federated population: clients carry
// only label histograms and sample counts, and a client's samples are
// synthesized deterministically from (seed, client id) only while a round
// trains it. Training results are bit-identical to NewSystem with the same
// config, but a round's memory is O(selected clients) instead of
// O(population) — the form that scales to millions of clients (see
// README "Population scaling").
func NewVirtualSystem(cfg SystemConfig) *System { return core.NewVirtualSystem(cfg) }

// VirtualPartition is the lazy client-state synthesizer behind
// NewVirtualSystem, usable directly for histogram-only workloads such as
// group formation studies at population scale.
type VirtualPartition = data.VirtualPartition

// NewVirtualPartition builds a VirtualPartition over a generator config.
func NewVirtualPartition(gen GeneratorConfig, cfg PartitionConfig) *VirtualPartition {
	return data.NewVirtualPartition(gen, cfg)
}

// Train runs Algorithm 1 and returns the result.
func Train(sys *System, cfg Config) *Result { return core.Train(sys, cfg) }

// Evaluate computes accuracy and mean loss of a model on a dataset.
func Evaluate(m *Model, ds *Dataset, batch int) (acc, loss float64) {
	return core.Evaluate(m, ds, batch)
}

// NewGenerator creates a synthetic data generator.
func NewGenerator(cfg GeneratorConfig) *Generator { return data.NewGenerator(cfg) }

// SynthCIFAR returns the CIFAR-10 stand-in generator config.
func SynthCIFAR(seed uint64) GeneratorConfig { return data.SynthCIFARConfig(seed) }

// SynthSpeech returns the SpeechCommands stand-in generator config.
func SynthSpeech(seed uint64) GeneratorConfig { return data.SynthSpeechConfig(seed) }

// FlatTask returns a fast flat-feature task config.
func FlatTask(classes, dim int, seed uint64) GeneratorConfig {
	return data.FlatConfig(classes, dim, seed)
}

// DirichletPartition splits a dataset across clients with Dirichlet label
// skew.
func DirichletPartition(ds *Dataset, cfg PartitionConfig) []*Client {
	return data.DirichletPartition(ds, cfg)
}

// DefaultPartition mirrors the paper's per-client sample distribution.
func DefaultPartition(numClients int, alpha float64, seed uint64) PartitionConfig {
	return data.DefaultPartitionConfig(numClients, alpha, seed)
}

// Model constructors.
var (
	// NewMLP builds a multi-layer perceptron.
	NewMLP = nn.NewMLP
	// NewCNN5 builds the paper's lightweight 5-layer CNN.
	NewCNN5 = nn.NewCNN5
	// NewResNetLite builds the paper's 3-block ResNet.
	NewResNetLite = nn.NewResNetLite
	// NewLogistic builds a linear softmax classifier.
	NewLogistic = nn.NewLogistic
)

// Baseline methods of the paper's evaluation (Sec. 7.3).
type (
	// BaselineName identifies a comparison method.
	BaselineName = baselines.Name
	// BaselineOptions tunes method-specific knobs.
	BaselineOptions = baselines.Options
)

// The evaluated methods.
const (
	FedAvg   = baselines.FedAvg
	FedProx  = baselines.FedProx
	Scaffold = baselines.Scaffold
	GroupFEL = baselines.GroupFEL
	OUEA     = baselines.OUEA
	SHARE    = baselines.SHARE
	FedCLAR  = baselines.FedCLAR
)

// AllBaselines lists the methods in the paper's legend order.
func AllBaselines() []BaselineName { return baselines.All() }

// RunBaseline trains the named method (FedCLAR uses its two-phase loop).
func RunBaseline(m BaselineName, sys *System, base Config, opts BaselineOptions) *Result {
	return baselines.Run(m, sys, base, opts)
}

// DefaultBaselineOptions mirrors the paper's setup at the given scale.
func DefaultBaselineOptions(numClients, targetGS int) BaselineOptions {
	return baselines.DefaultOptions(numClients, targetGS)
}
