package groupio

import (
	"strings"
	"testing"
)

// FuzzParse ensures arbitrary input never panics the parser — it must
// either produce a valid Input or an error.
func FuzzParse(f *testing.F) {
	f.Add(`{"classes": 2, "clients": [{"id": 0, "counts": [1, 2]}]}`)
	f.Add(`{"clients": [{"id": 1, "counts": [5, 0, 5], "edge": 1}]}`)
	f.Add(`{}`)
	f.Add(`not json`)
	f.Add(`{"classes": -1, "clients": []}`)
	f.Fuzz(func(t *testing.T, doc string) {
		in, err := Parse(strings.NewReader(doc))
		if err != nil {
			return
		}
		// A successful parse must be internally consistent.
		if in.Classes <= 0 || len(in.Clients) == 0 {
			t.Fatalf("invalid Input accepted: %+v", in)
		}
		for _, c := range in.Clients {
			if len(c.Counts) != in.Classes || c.Edge < 0 {
				t.Fatalf("inconsistent client accepted: %+v", c)
			}
		}
	})
}
