// Package groupio provides the JSON interface of the covgroup tool: it
// parses client label histograms (the only information CoV grouping needs —
// no features, models, or gradients), runs a formation algorithm and a
// sampling-probability computation, and serializes the resulting groups.
// This is the deployable face of the paper's edge-side component.
package groupio

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"repro/internal/data"
	"repro/internal/grouping"
	"repro/internal/sampling"
	"repro/internal/stats"
)

// InputClient is one client's label histogram.
type InputClient struct {
	// ID is the caller's client identifier.
	ID int `json:"id"`
	// Counts[j] is the number of samples with label j.
	Counts []float64 `json:"counts"`
	// Edge optionally assigns the client to an edge server (default 0).
	Edge int `json:"edge,omitempty"`
}

// Input is the covgroup request document.
type Input struct {
	// Classes is the number of labels; inferred from the first client's
	// histogram when zero.
	Classes int `json:"classes,omitempty"`
	// Clients lists the population.
	Clients []InputClient `json:"clients"`
}

// OutputGroup is one formed group.
type OutputGroup struct {
	ID          int       `json:"id"`
	Edge        int       `json:"edge"`
	ClientIDs   []int     `json:"client_ids"`
	Counts      []float64 `json:"counts"`
	CoV         float64   `json:"cov"`
	Gamma       float64   `json:"gamma"`
	Samples     int       `json:"samples"`
	Probability float64   `json:"probability"`
}

// Output is the covgroup response document.
type Output struct {
	Algorithm string        `json:"algorithm"`
	Sampling  string        `json:"sampling"`
	Groups    []OutputGroup `json:"groups"`
}

// Parse reads and validates an Input document.
func Parse(r io.Reader) (*Input, error) {
	var in Input
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("groupio: parse: %w", err)
	}
	if len(in.Clients) == 0 {
		return nil, fmt.Errorf("groupio: no clients")
	}
	if in.Classes == 0 {
		in.Classes = len(in.Clients[0].Counts)
	}
	if in.Classes == 0 {
		return nil, fmt.Errorf("groupio: cannot infer class count")
	}
	seen := map[int]bool{}
	for i, c := range in.Clients {
		if len(c.Counts) != in.Classes {
			return nil, fmt.Errorf("groupio: client %d has %d counts, want %d", c.ID, len(c.Counts), in.Classes)
		}
		for _, v := range c.Counts {
			if v < 0 {
				return nil, fmt.Errorf("groupio: client %d has a negative count", c.ID)
			}
		}
		if seen[c.ID] {
			return nil, fmt.Errorf("groupio: duplicate client id %d", c.ID)
		}
		seen[c.ID] = true
		if c.Edge < 0 {
			return nil, fmt.Errorf("groupio: client %d has negative edge", c.ID)
		}
		_ = i
	}
	return &in, nil
}

// AlgorithmByName resolves a formation algorithm name (covg, rg, cdg, kldg,
// varg — case-insensitive).
func AlgorithmByName(name string, cfg grouping.Config, targetGS int) (grouping.Algorithm, error) {
	switch strings.ToLower(name) {
	case "covg", "cov":
		return grouping.CoVGrouping{Config: cfg}, nil
	case "rg", "random":
		return grouping.RandomGrouping{Config: cfg, TargetGS: targetGS}, nil
	case "cdg":
		return grouping.CDGrouping{Config: cfg, TargetGS: targetGS}, nil
	case "kldg", "kld":
		return grouping.KLDGrouping{Config: cfg, TargetGS: targetGS}, nil
	case "varg", "variance":
		return grouping.VarianceGrouping{Config: cfg}, nil
	}
	return nil, fmt.Errorf("groupio: unknown algorithm %q", name)
}

// SamplingByName resolves a sampling method name.
func SamplingByName(name string) (sampling.Method, error) {
	switch strings.ToLower(name) {
	case "random", "rs":
		return sampling.Random, nil
	case "rcov":
		return sampling.RCoV, nil
	case "srcov":
		return sampling.SRCoV, nil
	case "esrcov", "covs":
		return sampling.ESRCoV, nil
	}
	return 0, fmt.Errorf("groupio: unknown sampling method %q", name)
}

// Run forms groups per edge and computes sampling probabilities.
func Run(in *Input, alg grouping.Algorithm, method sampling.Method, seed uint64) (*Output, error) {
	// Build flyweight data.Client views: N carries the histogram total, no
	// indices or samples exist behind them.
	maxEdge := 0
	for _, c := range in.Clients {
		if c.Edge > maxEdge {
			maxEdge = c.Edge
		}
	}
	edges := make([][]*data.Client, maxEdge+1)
	for _, c := range in.Clients {
		total := 0.0
		for _, v := range c.Counts {
			total += v
		}
		dc := &data.Client{
			ID:     c.ID,
			N:      int(total),
			Counts: append([]float64(nil), c.Counts...),
		}
		edges[c.Edge] = append(edges[c.Edge], dc)
	}
	groups := grouping.FormAll(alg, edges, in.Classes, stats.NewRNG(seed))
	probs := sampling.Probabilities(groups, method)

	out := &Output{Algorithm: alg.Name(), Sampling: method.String()}
	for i, g := range groups {
		og := OutputGroup{
			ID: g.ID, Edge: g.Edge,
			Counts:      append([]float64(nil), g.Counts...),
			CoV:         g.CoV(),
			Gamma:       g.Gamma(),
			Samples:     g.NumSamples(),
			Probability: probs[i],
		}
		for _, c := range g.Clients {
			og.ClientIDs = append(og.ClientIDs, c.ID)
		}
		out.Groups = append(out.Groups, og)
	}
	return out, nil
}

// Write serializes the output as indented JSON.
func (o *Output) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(o); err != nil {
		return fmt.Errorf("groupio: write: %w", err)
	}
	return nil
}
