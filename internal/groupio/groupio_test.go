package groupio

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/grouping"
	"repro/internal/sampling"
)

func sampleInput(n, classes int) string {
	var b strings.Builder
	fmt.Fprintf(&b, `{"classes": %d, "clients": [`, classes)
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		counts := make([]int, classes)
		counts[i%classes] = 10
		counts[(i+1)%classes] = 5
		//lint:ignore dropped-error json.Marshal of an int slice cannot fail
		data, _ := json.Marshal(counts)
		fmt.Fprintf(&b, `{"id": %d, "counts": %s, "edge": %d}`, i, data, i%2)
	}
	b.WriteString("]}")
	return b.String()
}

func TestParseValid(t *testing.T) {
	in, err := Parse(strings.NewReader(sampleInput(6, 3)))
	if err != nil {
		t.Fatal(err)
	}
	if in.Classes != 3 || len(in.Clients) != 6 {
		t.Fatalf("parsed %+v", in)
	}
}

func TestParseInfersClasses(t *testing.T) {
	doc := `{"clients": [{"id": 1, "counts": [1, 2, 3, 4]}]}`
	in, err := Parse(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if in.Classes != 4 {
		t.Fatalf("inferred %d classes", in.Classes)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"empty clients":   `{"classes": 2, "clients": []}`,
		"no counts":       `{"clients": [{"id": 1, "counts": []}]}`,
		"count mismatch":  `{"classes": 3, "clients": [{"id": 1, "counts": [1, 2]}]}`,
		"negative count":  `{"classes": 2, "clients": [{"id": 1, "counts": [1, -2]}]}`,
		"duplicate id":    `{"classes": 2, "clients": [{"id": 1, "counts": [1, 2]}, {"id": 1, "counts": [3, 4]}]}`,
		"negative edge":   `{"classes": 2, "clients": [{"id": 1, "counts": [1, 2], "edge": -1}]}`,
		"unknown field":   `{"classes": 2, "clientz": []}`,
		"not json at all": `hello`,
	}
	for name, doc := range cases {
		if _, err := Parse(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestAlgorithmByName(t *testing.T) {
	cfg := grouping.Config{MinGS: 3}
	for name, want := range map[string]string{
		"covg": "CoVG", "COV": "CoVG",
		"rg": "RG", "random": "RG",
		"cdg": "CDG", "kldg": "KLDG", "kld": "KLDG",
		"varg": "VarG", "variance": "VarG",
	} {
		a, err := AlgorithmByName(name, cfg, 3)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if a.Name() != want {
			t.Errorf("%s resolved to %s, want %s", name, a.Name(), want)
		}
	}
	if _, err := AlgorithmByName("bogus", cfg, 3); err == nil {
		t.Error("expected error for unknown algorithm")
	}
}

func TestSamplingByName(t *testing.T) {
	for name, want := range map[string]sampling.Method{
		"random": sampling.Random, "rs": sampling.Random,
		"rcov": sampling.RCoV, "srcov": sampling.SRCoV,
		"esrcov": sampling.ESRCoV, "covs": sampling.ESRCoV,
	} {
		m, err := SamplingByName(name)
		if err != nil || m != want {
			t.Errorf("%s: got %v, %v", name, m, err)
		}
	}
	if _, err := SamplingByName("bogus"); err == nil {
		t.Error("expected error")
	}
}

func TestRunEndToEnd(t *testing.T) {
	in, err := Parse(strings.NewReader(sampleInput(12, 3)))
	if err != nil {
		t.Fatal(err)
	}
	alg, err := AlgorithmByName("covg", grouping.Config{MinGS: 3, MaxCoV: 0.5, MergeLeftover: true}, 0)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Run(in, alg, sampling.ESRCoV, 7)
	if err != nil {
		t.Fatal(err)
	}
	if out.Algorithm != "CoVG" || out.Sampling != "ESRCoV" {
		t.Fatalf("metadata %+v", out)
	}
	// Every client appears exactly once; probabilities sum to 1; groups
	// never span edges.
	seen := map[int]bool{}
	psum := 0.0
	for _, g := range out.Groups {
		psum += g.Probability
		for _, id := range g.ClientIDs {
			if seen[id] {
				t.Fatalf("client %d in two groups", id)
			}
			seen[id] = true
			if id%2 != g.Edge {
				t.Fatalf("client %d (edge %d) grouped under edge %d", id, id%2, g.Edge)
			}
		}
		if g.Samples != 15*len(g.ClientIDs) {
			t.Fatalf("group %d samples %d for %d clients", g.ID, g.Samples, len(g.ClientIDs))
		}
		if g.CoV < 0 || g.Gamma < 1 {
			t.Fatalf("group %d stats CoV=%v gamma=%v", g.ID, g.CoV, g.Gamma)
		}
	}
	if len(seen) != 12 {
		t.Fatalf("covered %d of 12 clients", len(seen))
	}
	if math.Abs(psum-1) > 1e-9 {
		t.Fatalf("probabilities sum to %v", psum)
	}
}

func TestOutputWriteRoundTrip(t *testing.T) {
	in, err := Parse(strings.NewReader(sampleInput(6, 3)))
	if err != nil {
		t.Fatal(err)
	}
	alg, err := AlgorithmByName("rg", grouping.Config{MinGS: 3}, 3)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Run(in, alg, sampling.Random, 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := out.Write(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded Output
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Algorithm != "RG" || len(decoded.Groups) != len(out.Groups) {
		t.Fatalf("round trip lost data: %+v", decoded)
	}
}
