package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatEq forbids == and != between floating-point operands, test files
// included. Accumulated losses, accuracies, and weights differ in the last
// ulp across algebraically equivalent reductions, so exact comparison is
// almost always a bug; use stats.ApproxEqual / stats.NearZero instead.
// Intentional exact comparisons (sparsity fast paths, resampling loops on
// exact zeros, tests asserting bit-identical replay) must be annotated with
// //lint:ignore float-eq <reason>.
var FloatEq = &Analyzer{
	Name: "float-eq",
	Doc:  "forbid ==/!= on floating-point operands (tests included)",
	Run: func(pass *Pass) {
		for _, f := range pass.Pkg.AllFiles() {
			ast.Inspect(f, func(n ast.Node) bool {
				be, ok := n.(*ast.BinaryExpr)
				if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
					return true
				}
				if isFloat(pass.TypeOf(be.X)) || isFloat(pass.TypeOf(be.Y)) {
					pass.Reportf(be.OpPos,
						"floating-point %s comparison: use stats.ApproxEqual/stats.NearZero, or annotate an intentional exact compare with //lint:ignore float-eq <reason>", be.Op)
				}
				return true
			})
		}
	},
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
