package lint

import (
	"strings"
)

// Wallclock forbids wall-clock reads (time.Now, time.Since, time.Sleep,
// timers, tickers) in any function reachable — through the module call
// graph, interface calls resolved by class-hierarchy analysis — from a
// function annotated //lint:deterministic. Replayable training runs must
// derive every quantity from the seeded RNG and the simulated topology
// clock; a stray time.Now deep in a helper silently breaks bit-identical
// replay. Legitimate wall-clock uses on a deterministic path (e.g. the
// metrics span layer measuring real elapsed time without feeding it back
// into results) carry //lint:ignore wallclock directives at the use site.
var Wallclock = &Analyzer{
	Name: "wallclock",
	Doc:  "time.Now/Since/Sleep/... must not be reachable from //lint:deterministic roots",
	Run:  runWallclock,
}

func runWallclock(pass *Pass) {
	if pass.Mod == nil {
		return
	}
	for _, fi := range pass.Mod.Funcs() {
		if fi.Pkg != pass.Pkg || len(fi.TimeUses) == 0 {
			continue
		}
		path := pass.Mod.DeterministicPath(fi.Obj)
		if path == nil {
			continue
		}
		chain := make([]string, 0, len(path))
		for _, fn := range path {
			chain = append(chain, fn.Name())
		}
		for _, use := range fi.TimeUses {
			pass.Reportf(use.Pos, "time.%s inside %s, reachable from //lint:deterministic root %s (via %s); wall-clock reads break replayable runs",
				use.Name, fi.Obj.Name(), path[0].Name(), strings.Join(chain, " -> "))
		}
	}
}
