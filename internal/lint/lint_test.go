package lint

import "testing"

// TestRepoIsLintClean is the tier-1 gate: it loads every package of the
// module and runs the full analyzer suite. Any violation anywhere in the
// tree fails `go test ./...`, so lint regressions cannot land.
func TestRepoIsLintClean(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatalf("locating module root: %v", err)
	}
	pkgs, err := LoadModule(root)
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages; the module walker is missing code", len(pkgs))
	}
	for _, d := range Check(pkgs, All()) {
		t.Errorf("%s", d)
	}
}

func TestByName(t *testing.T) {
	for _, a := range All() {
		got, err := ByName(a.Name)
		if err != nil || got != a {
			t.Errorf("ByName(%q) = %v, %v", a.Name, got, err)
		}
	}
	if _, err := ByName("no-such-rule"); err == nil {
		t.Error("ByName should reject unknown rules")
	}
}
