package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotpathAlloc verifies that functions annotated //lint:hotpath are
// statically free of allocation at the sites the analyzer can detect:
// make/new/append, composite literals, fmt.Sprintf-family calls, variadic
// calls that materialize an argument slice, interface boxing of concrete
// values, string concatenation and string<->[]byte conversions, capturing
// closures, and go/defer statements. It also closes the property over the
// call graph: a hotpath function may only call module functions that are
// themselves //lint:hotpath (stdlib and dynamic calls are outside the
// check's scope).
//
// Two escape hatches keep real zero-alloc code annotatable:
//
//   - Cold-path guards: an allocation inside an `if` whose condition tests
//     capacity (cap(...)/len(...)) or nil-ness is amortized setup — the
//     steady-state iteration never takes the branch. This matches the
//     arena/memoization idiom used throughout internal/core and internal/nn.
//   - Panic arguments: allocating while building a panic message is fine;
//     the hot path is already dead when it runs.
//
// This turns TestSGDEpochsSteadyStateAllocs' single dynamic probe into a
// whole-codebase static guarantee.
var HotpathAlloc = &Analyzer{
	Name: "hotpath-alloc",
	Doc:  "//lint:hotpath functions must be allocation-free outside cold-path guards and may only call hotpath functions",
	Run:  runHotpathAlloc,
}

// sprintfFuncs are fmt functions that allocate their result.
var sprintfFuncs = map[string]bool{
	"Sprintf": true, "Sprint": true, "Sprintln": true, "Errorf": true,
}

func runHotpathAlloc(pass *Pass) {
	if pass.Mod == nil {
		return
	}
	for _, fi := range pass.Mod.Funcs() {
		if fi.Pkg != pass.Pkg || !fi.Hotpath {
			continue
		}
		checkHotpathBody(pass, fi)
	}
}

type hotpathChecker struct {
	pass *Pass
	fi   *FuncInfo
	// cold marks subtree roots (statements/expressions) exempt from the
	// allocation check: bodies of capacity-guarded ifs and panic arguments.
	cold map[ast.Node]bool
}

func checkHotpathBody(pass *Pass, fi *FuncInfo) {
	c := &hotpathChecker{pass: pass, fi: fi, cold: make(map[ast.Node]bool)}
	c.markColdRegions(fi.Decl.Body)
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		if n == nil || c.cold[n] {
			return false // cold subtrees are exempt from all hotpath checks
		}
		return c.visit(n)
	})
}

// markColdRegions records the bodies of cold-path guards and panic call
// arguments so the main walk can skip them.
func (c *hotpathChecker) markColdRegions(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IfStmt:
			// Only the guarded body is cold; an else branch runs in steady
			// state and stays checked.
			if isColdGuard(c.pass, n.Cond) {
				c.cold[n.Body] = true
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "panic" {
				if b, ok := c.pass.UseOf(id).(*types.Builtin); ok && b.Name() == "panic" {
					for _, arg := range n.Args {
						c.cold[arg] = true
					}
				}
			}
		}
		return true
	})
}

// isColdGuard reports whether cond is a capacity/nil test: it contains a
// cap() or len() call, or a comparison against nil.
func isColdGuard(pass *Pass, cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && (id.Name == "cap" || id.Name == "len") {
				if b, ok := pass.UseOf(id).(*types.Builtin); ok && (b.Name() == "cap" || b.Name() == "len") {
					found = true
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.EQL || n.Op == token.NEQ {
				if isNilIdent(pass, n.X) || isNilIdent(pass, n.Y) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

func isNilIdent(pass *Pass, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok || id.Name != "nil" {
		return false
	}
	_, isNil := pass.UseOf(id).(*types.Nil)
	return isNil
}

// visit applies the allocation checks to one node. Returns whether to
// recurse.
func (c *hotpathChecker) visit(n ast.Node) bool {
	pass := c.pass
	switch n := n.(type) {
	case *ast.GoStmt:
		pass.Reportf(n.Pos(), "go statement in //lint:hotpath %s: spawning a goroutine allocates and schedules; hoist it out of the hot path", c.fi.Obj.Name())
	case *ast.DeferStmt:
		pass.Reportf(n.Pos(), "defer in //lint:hotpath %s: defer records allocate per call; use explicit cleanup", c.fi.Obj.Name())
	case *ast.FuncLit:
		if !c.litIsDirectStaticArg(n) {
			if capturesOuter(pass, n) {
				pass.Reportf(n.Pos(), "capturing closure in //lint:hotpath %s allocates its environment; pass state explicitly or hoist the closure", c.fi.Obj.Name())
			}
		}
		return false // literal body belongs to the closure, checked via its own annotation if any
	case *ast.CompositeLit:
		pass.Reportf(n.Pos(), "composite literal in //lint:hotpath %s allocates; reuse a preallocated value", c.fi.Obj.Name())
		return false
	case *ast.UnaryExpr:
		if n.Op == token.AND {
			if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
				pass.Reportf(n.Pos(), "&composite literal in //lint:hotpath %s allocates; reuse a preallocated value", c.fi.Obj.Name())
				return false
			}
		}
	case *ast.BinaryExpr:
		if n.Op == token.ADD {
			if t := pass.TypeOf(n.X); t != nil {
				if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
					pass.Reportf(n.Pos(), "string concatenation in //lint:hotpath %s allocates; build strings outside the hot path", c.fi.Obj.Name())
				}
			}
		}
	case *ast.CallExpr:
		c.visitCall(n)
	}
	return true
}

// litIsDirectStaticArg reports whether lit appears directly as an argument
// to a statically resolved call with a func-typed parameter — the callee may
// be able to inline or stack-allocate it (e.g. rng.Shuffle's swap callback).
func (c *hotpathChecker) litIsDirectStaticArg(lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(c.fi.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return !found
		}
		if calleeOf(c.pass.Pkg, call) == nil {
			return !found
		}
		for _, arg := range call.Args {
			if ast.Unparen(arg) == lit {
				found = true
			}
		}
		return !found
	})
	return found
}

// capturesOuter reports whether lit references any variable declared outside
// its own body.
func capturesOuter(pass *Pass, lit *ast.FuncLit) bool {
	captures := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captures {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.UseOf(id).(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Parent() != nil && v.Parent().Parent() == types.Universe {
			return true // package-level: not a capture
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			captures = true
		}
		return !captures
	})
	return captures
}

func (c *hotpathChecker) visitCall(call *ast.CallExpr) {
	pass := c.pass
	name := c.fi.Obj.Name()

	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := pass.UseOf(id).(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				pass.Reportf(call.Pos(), "make in //lint:hotpath %s allocates; preallocate outside the hot path or guard with a capacity check", name)
			case "new":
				pass.Reportf(call.Pos(), "new in //lint:hotpath %s allocates; reuse a preallocated value", name)
			case "append":
				pass.Reportf(call.Pos(), "append in //lint:hotpath %s can grow its backing array; preallocate capacity and guard growth with a cap() check", name)
			}
			return
		}
	}

	// Explicit conversions: string([]byte) / []byte(string) allocate.
	if tv, ok := pass.constTypeAndValue(call.Fun); ok && tv.IsType() && len(call.Args) == 1 {
		dst, src := tv.Type, pass.TypeOf(call.Args[0])
		if src != nil && stringBytesConversion(dst, src) {
			pass.Reportf(call.Pos(), "string<->[]byte conversion in //lint:hotpath %s copies and allocates", name)
		}
		if src != nil && types.IsInterface(dst) && !types.IsInterface(src) && !isPointerLike(src) {
			pass.Reportf(call.Pos(), "conversion to interface in //lint:hotpath %s boxes the value on the heap", name)
		}
		return
	}

	callee := calleeOf(pass.Pkg, call)
	if callee != nil {
		// fmt.Sprintf family.
		if p := callee.Pkg(); p != nil && p.Path() == "fmt" && sprintfFuncs[callee.Name()] {
			pass.Reportf(call.Pos(), "fmt.%s in //lint:hotpath %s allocates its result; format outside the hot path", callee.Name(), name)
			return
		}
		// Transitive discipline: module callees must be hotpath too.
		if fi := pass.Mod.FuncInfoOf(callee); fi != nil && !fi.Hotpath {
			pass.Reportf(call.Pos(), "//lint:hotpath %s calls %s, which is not annotated //lint:hotpath; annotate it (and make it comply) or hoist the call", name, callee.Name())
		}
	}

	// Variadic call materializing an argument slice, and interface boxing of
	// concrete arguments.
	sig, _ := callSignature(pass, call)
	if sig == nil {
		return
	}
	if sig.Variadic() && !call.Ellipsis.IsValid() && len(call.Args) >= sig.Params().Len() {
		// At least one argument lands in the variadic slot.
		if len(call.Args) > sig.Params().Len()-1 {
			pass.Reportf(call.Pos(), "variadic call in //lint:hotpath %s materializes an argument slice per call; use a fixed-arity helper or pass an existing slice with ...", name)
		}
	}
	np := sig.Params().Len()
	for i, arg := range call.Args {
		var pt types.Type
		if i < np-1 || (i < np && !sig.Variadic()) {
			pt = sig.Params().At(i).Type()
		} else if sig.Variadic() && np > 0 {
			if sl, ok := sig.Params().At(np - 1).Type().(*types.Slice); ok && !call.Ellipsis.IsValid() {
				pt = sl.Elem()
			}
		}
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		at := pass.TypeOf(arg)
		if at == nil || types.IsInterface(at) || isPointerLike(at) {
			continue
		}
		if tv, ok := pass.constTypeAndValue(arg); ok && tv.Value != nil {
			continue // untyped constants box to static data, not per-call heap
		}
		pass.Reportf(arg.Pos(), "passing concrete %s to interface parameter in //lint:hotpath %s boxes the value on the heap", at.String(), name)
	}
}

// callSignature resolves the signature of the called expression.
func callSignature(pass *Pass, call *ast.CallExpr) (*types.Signature, bool) {
	t := pass.TypeOf(call.Fun)
	if t == nil {
		return nil, false
	}
	sig, ok := t.Underlying().(*types.Signature)
	return sig, ok
}

// stringBytesConversion reports whether the conversion dst(src) is between
// string and []byte (either direction).
func stringBytesConversion(dst, src types.Type) bool {
	return (isString(dst) && isByteSlice(src)) || (isByteSlice(dst) && isString(src))
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// isPointerLike reports whether values of t already live behind a pointer or
// header and thus convert to interfaces without boxing the payload. (The
// interface word still stores the pointer; only non-pointer payloads force a
// heap copy.)
func isPointerLike(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	}
	return false
}
