package lint

import (
	"go/ast"
	"go/types"
)

// DroppedError flags silently discarded errors, test files included: calls
// used as bare statements (or deferred) whose results include an error, and
// assignments that send an error to the blank identifier. A small allowlist
// covers calls that cannot meaningfully fail: fmt printing to stdout/stderr
// and writes to strings.Builder / bytes.Buffer, which are documented to
// never return an error. Anything else must be handled, returned, or
// annotated with //lint:ignore dropped-error <reason>.
var DroppedError = &Analyzer{
	Name: "dropped-error",
	Doc:  "flag discarded error returns (tests included)",
	Run:  runDroppedError,
}

func runDroppedError(pass *Pass) {
	for _, f := range pass.Pkg.AllFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					checkCallDiscard(pass, call, "call discards an error result")
				}
			case *ast.DeferStmt:
				checkCallDiscard(pass, n.Call, "deferred call discards an error result")
			case *ast.AssignStmt:
				checkBlankErrorAssign(pass, n)
			}
			return true
		})
	}
}

// checkCallDiscard reports call if its result signature includes an error
// and the callee is not allowlisted.
func checkCallDiscard(pass *Pass, call *ast.CallExpr, what string) {
	if !resultHasError(pass, call) || allowedUnchecked(pass, call) {
		return
	}
	pass.Reportf(call.Pos(), "%s: %s returns an error that is never checked", what, calleeName(pass, call))
}

// checkBlankErrorAssign reports assignments of an error value to _.
func checkBlankErrorAssign(pass *Pass, as *ast.AssignStmt) {
	// x, _ := f() with a single multi-value call on the right.
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return
		}
		tuple, ok := pass.TypeOf(call).(*types.Tuple)
		if !ok {
			return
		}
		for i, lhs := range as.Lhs {
			if isBlank(lhs) && i < tuple.Len() && isErrorType(tuple.At(i).Type()) && !allowedUnchecked(pass, call) {
				pass.Reportf(lhs.Pos(), "error from %s discarded with _; handle it or annotate with //lint:ignore dropped-error <reason>", calleeName(pass, call))
			}
		}
		return
	}
	// _ = f() pairwise assignments.
	for i, lhs := range as.Lhs {
		if !isBlank(lhs) || i >= len(as.Rhs) {
			continue
		}
		if isErrorType(pass.TypeOf(as.Rhs[i])) {
			call, ok := as.Rhs[i].(*ast.CallExpr)
			if ok && allowedUnchecked(pass, call) {
				continue
			}
			pass.Reportf(lhs.Pos(), "error value discarded with _; handle it or annotate with //lint:ignore dropped-error <reason>")
		}
	}
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// resultHasError reports whether the call's result type is or contains error.
func resultHasError(pass *Pass, call *ast.CallExpr) bool {
	t := pass.TypeOf(call)
	if t == nil {
		return false
	}
	if tuple, ok := t.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if isErrorType(tuple.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isErrorType(t)
}

// calleeFunc resolves the called function object, if statically known.
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.UseOf(id).(*types.Func)
	return fn
}

func calleeName(pass *Pass, call *ast.CallExpr) string {
	if fn := calleeFunc(pass, call); fn != nil {
		return fn.FullName()
	}
	return "call"
}

// stdoutPrinters never have an actionable error: stdout/stderr write
// failures leave a CLI with nothing better to do.
var stdoutPrinters = map[string]bool{
	"fmt.Print":   true,
	"fmt.Printf":  true,
	"fmt.Println": true,
}

var fprinters = map[string]bool{
	"fmt.Fprint":   true,
	"fmt.Fprintf":  true,
	"fmt.Fprintln": true,
}

// allowedUnchecked reports whether the call's error is conventionally
// ignorable: fmt printing to stdout/stderr, fmt.Fprint* into an in-memory
// builder/buffer, or any method on strings.Builder / bytes.Buffer (both
// documented to never return a non-nil error).
func allowedUnchecked(pass *Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(pass, call)
	if fn == nil {
		return false
	}
	name := fn.FullName()
	if stdoutPrinters[name] {
		return true
	}
	if fprinters[name] && len(call.Args) > 0 {
		if isInMemoryWriter(pass.TypeOf(call.Args[0])) || isStdStream(pass, call.Args[0]) {
			return true
		}
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if isInMemoryWriter(sig.Recv().Type()) {
			return true
		}
	}
	return false
}

func isInMemoryWriter(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	switch obj.Pkg().Path() + "." + obj.Name() {
	case "strings.Builder", "bytes.Buffer":
		return true
	}
	return false
}

func isStdStream(pass *Pass, e ast.Expr) bool {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	v, ok := pass.UseOf(sel.Sel).(*types.Var)
	if !ok || v.Pkg() == nil || v.Pkg().Path() != "os" {
		return false
	}
	return v.Name() == "Stdout" || v.Name() == "Stderr"
}
