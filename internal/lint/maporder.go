package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder flags `range` statements over maps whose bodies feed order-
// sensitive sinks: floating-point accumulation (a += v and friends — FP
// addition is not associative, so iteration order leaks into the result),
// appends to slices declared outside the range (the slice ends up in map
// order) unless the slice is sorted afterwards in the same function, and
// byte/wire encoding calls (the encoded stream becomes nondeterministic).
// This is the static form of the repo's bit-identical-replay invariant:
// aggregation in internal/core and snapshot encoding in internal/metrics
// must never depend on Go's randomized map iteration order.
var MapOrder = &Analyzer{
	Name: "map-order",
	Doc:  "range over a map must not feed float accumulation, unsorted slice appends, or byte/wire encoding",
	Run:  runMapOrder,
}

// encodingMethods are method (or function) names whose invocation inside a
// map range writes bytes in iteration order.
var encodingMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Encode": true, "Marshal": true, "Sum": true,
	"Fprintf": true, "Fprint": true, "Fprintln": true,
}

func runMapOrder(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rng, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				t := pass.TypeOf(rng.X)
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					return true
				}
				checkMapRangeBody(pass, fd, rng)
				return true
			})
		}
	}
}

func checkMapRangeBody(pass *Pass, fd *ast.FuncDecl, rng *ast.RangeStmt) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			checkFloatAccum(pass, rng, n)
			checkAppendSink(pass, fd, rng, n)
		case *ast.CallExpr:
			checkEncodingSink(pass, rng, n)
		}
		return true
	})
}

// checkFloatAccum flags compound float accumulation into a target that
// outlives the range body. Indexed targets (m[k] += v) are exempt: each
// element accumulates independently of sibling iterations.
func checkFloatAccum(pass *Pass, rng *ast.RangeStmt, as *ast.AssignStmt) {
	accum := false
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		accum = true
	case token.ASSIGN:
		// x = x + v (or x - v, ...) spelled out.
		if len(as.Lhs) == 1 && len(as.Rhs) == 1 {
			if bin, ok := as.Rhs[0].(*ast.BinaryExpr); ok {
				switch bin.Op {
				case token.ADD, token.SUB, token.MUL, token.QUO:
					accum = sameRef(pass, as.Lhs[0], bin.X) || sameRef(pass, as.Lhs[0], bin.Y)
				}
			}
		}
	}
	if !accum || len(as.Lhs) != 1 {
		return
	}
	lhs := ast.Unparen(as.Lhs[0])
	switch lhs.(type) {
	case *ast.Ident, *ast.SelectorExpr:
	default:
		return // indexed or dereferenced element: per-key accumulation
	}
	t := pass.TypeOf(lhs)
	if t == nil || !isFloat(t) {
		return
	}
	if obj := rootObject(pass.Pkg, lhs); obj != nil && obj.Pos() >= rng.Pos() && obj.Pos() <= rng.End() {
		return // accumulator local to one iteration
	}
	pass.Reportf(as.Pos(), "floating-point accumulation inside a map range: addition order follows map iteration order and is nondeterministic; iterate sorted keys instead")
}

// sameRef reports whether two expressions resolve to the same object.
func sameRef(pass *Pass, a, b ast.Expr) bool {
	oa := rootObject(pass.Pkg, a)
	return oa != nil && oa == rootObject(pass.Pkg, b)
}

// checkAppendSink flags x = append(x, ...) where x is declared outside the
// range, unless a sort.*/slices.* call mentioning x follows the range in the
// same function body — the standard collect-then-sort mitigation.
func checkAppendSink(pass *Pass, fd *ast.FuncDecl, rng *ast.RangeStmt, as *ast.AssignStmt) {
	for i, rhs := range as.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || i >= len(as.Lhs) {
			continue
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || id.Name != "append" {
			continue
		}
		if b, ok := pass.UseOf(id).(*types.Builtin); !ok || b.Name() != "append" {
			continue
		}
		target := rootObject(pass.Pkg, as.Lhs[i])
		if target == nil {
			continue
		}
		if target.Pos() >= rng.Pos() && target.Pos() <= rng.End() {
			continue // slice local to the iteration
		}
		if sortedAfter(pass, fd, rng, target) {
			continue
		}
		pass.Reportf(as.Pos(), "append to %s inside a map range leaves it in nondeterministic map order; sort the keys first or sort %s after the range", target.Name(), target.Name())
	}
}

// sortedAfter reports whether a sort.* or slices.* call that mentions target
// appears after the range in fd's body.
func sortedAfter(pass *Pass, fd *ast.FuncDecl, rng *ast.RangeStmt, target types.Object) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.UseOf(sel.Sel).(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && pass.UseOf(id) == target {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}

// checkEncodingSink flags byte/wire-encoding calls inside a map range: the
// produced byte stream follows iteration order.
func checkEncodingSink(pass *Pass, rng *ast.RangeStmt, call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	name := sel.Sel.Name
	fn, _ := pass.UseOf(sel.Sel).(*types.Func)
	if fn == nil {
		return
	}
	isBinary := fn.Pkg() != nil && fn.Pkg().Path() == "encoding/binary"
	if !encodingMethods[name] && !isBinary {
		return
	}
	// Only flag encoders whose receiver/stream outlives the iteration: a
	// method on an object declared inside the body encodes per-key data.
	if recvObj := rootObject(pass.Pkg, sel.X); recvObj != nil &&
		recvObj.Pos() >= rng.Pos() && recvObj.Pos() <= rng.End() {
		return
	}
	// Skip encoders writing to per-iteration destinations via first arg
	// (binary.Write(buf, ...) with buf local to the body).
	if isBinary && len(call.Args) > 0 {
		if dst := rootObject(pass.Pkg, call.Args[0]); dst != nil &&
			dst.Pos() >= rng.Pos() && dst.Pos() <= rng.End() {
			return
		}
	}
	verb := name
	if isBinary {
		verb = "binary." + name
	}
	pass.Reportf(call.Pos(), "%s inside a map range encodes bytes in nondeterministic map iteration order; iterate sorted keys instead", verb)
}
