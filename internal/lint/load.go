package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// Package is one loaded and type-checked package.
type Package struct {
	Path string // import path, e.g. "repro/internal/core"
	Name string // package name from the package clause
	Dir  string // absolute directory
	Root string // module root for relative file paths ("" = report absolute)

	Fset *token.FileSet
	// Files are the non-test files, fully type-checked.
	Files []*ast.File
	// TestFiles are _test.go files (internal and external packages alike).
	// They are type-checked in a second phase, after every package of the
	// module has loaded, into TestInfo.
	TestFiles []*ast.File

	Types *types.Package
	Info  *types.Info
	// TestInfo holds type information for the test units: the in-package
	// test files checked together with Files, and the external _test
	// package checked on its own. Pass.TypeOf consults it after Info.
	TestInfo *types.Info

	ignores        map[string][]*ignoreEntry   // filename -> directives
	annots         map[string]map[int][]string // filename -> line -> annotations
	directiveDiags []Diagnostic
}

// ignoreEntry is one //lint:ignore directive. used flips when the directive
// actually suppresses a diagnostic, so the ignore-audit pass can flag stale
// suppressions that no longer cover anything.
type ignoreEntry struct {
	rule string
	line int
	pos  token.Position
	used bool
}

// AllFiles returns the type-checked files followed by the parse-only test
// files, for syntactic rules that apply to both.
func (p *Package) AllFiles() []*ast.File {
	out := make([]*ast.File, 0, len(p.Files)+len(p.TestFiles))
	out = append(out, p.Files...)
	out = append(out, p.TestFiles...)
	return out
}

// IsTestFile reports whether the file containing pos is a _test.go file.
func (p *Package) IsTestFile(f *ast.File) bool {
	return strings.HasSuffix(p.Fset.Position(f.Pos()).Filename, "_test.go")
}

func (p *Package) relFile(filename string) string {
	if p.Root == "" {
		return filename
	}
	if rel, err := filepath.Rel(p.Root, filename); err == nil {
		return filepath.ToSlash(rel)
	}
	return filename
}

var ignoreRe = regexp.MustCompile(`^//lint:ignore(?:\s+(\S+))?(?:\s+(\S.*))?$`)

// annotationRe matches the function-level annotation vocabulary:
// //lint:hotpath and //lint:deterministic, each with an optional trailing
// rationale.
var annotationRe = regexp.MustCompile(`^//lint:(hotpath|deterministic)(?:\s+\S.*)?$`)

// collectDirectives scans a parsed file for //lint: comments. A well-formed
// ignore names a rule and gives a non-empty reason; hotpath/deterministic
// annotations mark the function they precede. Anything else starting with
// //lint: is itself reported so directives cannot silently rot.
func (p *Package) collectDirectives(f *ast.File) {
	if p.ignores == nil {
		p.ignores = make(map[string][]*ignoreEntry)
		p.annots = make(map[string]map[int][]string)
	}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, "//lint:") {
				continue
			}
			pos := p.Fset.Position(c.Pos())
			if m := annotationRe.FindStringSubmatch(c.Text); m != nil {
				byLine := p.annots[pos.Filename]
				if byLine == nil {
					byLine = make(map[int][]string)
					p.annots[pos.Filename] = byLine
				}
				byLine[pos.Line] = append(byLine[pos.Line], m[1])
				continue
			}
			if !strings.HasPrefix(c.Text, "//lint:ignore") {
				p.directiveDiags = append(p.directiveDiags, Diagnostic{
					Rule:    "lint-directive",
					File:    p.relFile(pos.Filename),
					Line:    pos.Line,
					Col:     pos.Column,
					Message: "unknown directive: want //lint:ignore <rule> <reason>, //lint:hotpath, or //lint:deterministic",
				})
				continue
			}
			m := ignoreRe.FindStringSubmatch(c.Text)
			if m == nil || m[1] == "" || m[2] == "" {
				p.directiveDiags = append(p.directiveDiags, Diagnostic{
					Rule:    "lint-directive",
					File:    p.relFile(pos.Filename),
					Line:    pos.Line,
					Col:     pos.Column,
					Message: "malformed directive: want //lint:ignore <rule> <reason>",
				})
				continue
			}
			p.ignores[pos.Filename] = append(p.ignores[pos.Filename],
				&ignoreEntry{rule: m[1], line: pos.Line, pos: pos})
		}
	}
}

// ignoreFiles returns the filenames that carry //lint:ignore directives in
// sorted order, so audit diagnostics come out deterministically.
func (p *Package) ignoreFiles() []string {
	files := make([]string, 0, len(p.ignores))
	for f := range p.ignores {
		files = append(files, f)
	}
	sort.Strings(files)
	return files
}

// suppressed reports whether a directive for rule covers the given position:
// the directive must sit on the same line or the line directly above. The
// covering directive is marked used for the ignore-audit pass; a directive
// may legitimately suppress several diagnostics (e.g. two float comparisons
// on one line).
func (p *Package) suppressed(rule string, pos token.Position) bool {
	found := false
	for _, e := range p.ignores[pos.Filename] {
		if e.rule == rule && (e.line == pos.Line || e.line == pos.Line-1) {
			e.used = true
			found = true
		}
	}
	return found
}

// FuncAnnotations returns the //lint: annotations (hotpath, deterministic)
// attached to fd: any annotation line inside fd's doc comment or on the line
// directly above the declaration.
func (p *Package) FuncAnnotations(fd *ast.FuncDecl) []string {
	pos := p.Fset.Position(fd.Pos())
	byLine := p.annots[pos.Filename]
	if byLine == nil {
		return nil
	}
	start := pos.Line - 1
	if fd.Doc != nil {
		start = p.Fset.Position(fd.Doc.Pos()).Line
	}
	var out []string
	for l := start; l <= pos.Line; l++ {
		out = append(out, byLine[l]...)
	}
	return out
}

// HasAnnotation reports whether fd carries the named //lint: annotation.
func (p *Package) HasAnnotation(fd *ast.FuncDecl, name string) bool {
	for _, a := range p.FuncAnnotations(fd) {
		if a == name {
			return true
		}
	}
	return false
}

// FindModuleRoot walks upward from dir until it finds a go.mod.
func FindModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("lint: no go.mod found above %s", abs)
		}
		d = parent
	}
}

var moduleRe = regexp.MustCompile(`(?m)^module\s+(\S+)`)

func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	m := moduleRe.FindSubmatch(data)
	if m == nil {
		return "", fmt.Errorf("lint: no module line in %s/go.mod", root)
	}
	return string(m[1]), nil
}

// loader type-checks module packages on demand. Stdlib imports are resolved
// by the source importer; module-internal imports recurse into the loader
// itself, so packages are checked in dependency order with shared results.
type loader struct {
	root    string
	module  string
	fset    *token.FileSet
	std     types.ImporterFrom
	pkgs    map[string]*Package // by import path
	loading map[string]bool
}

func newLoader(root, module string) *loader {
	fset := token.NewFileSet()
	return &loader{
		root:    root,
		module:  module,
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}
}

// Import implements types.Importer over both module and stdlib packages.
func (l *loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.root, 0)
}

// ImportFrom implements types.ImporterFrom.
func (l *loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == l.module || strings.HasPrefix(path, l.module+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.module), "/")
		pkg, err := l.load(filepath.Join(l.root, filepath.FromSlash(rel)), path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, dir, mode)
}

// load parses and type-checks the package in dir. Non-test files form the
// typed unit; _test.go files are parsed alongside for syntactic rules.
func (l *loader) load(dir, importPath string) (*Package, error) {
	if pkg, ok := l.pkgs[importPath]; ok {
		return pkg, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("lint: import cycle through %s", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	names, err := goFilesIn(dir)
	if err != nil {
		return nil, err
	}
	pkg := &Package{Path: importPath, Dir: dir, Root: l.root, Fset: l.fset}
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %w", filepath.Join(dir, name), err)
		}
		pkg.collectDirectives(f)
		if strings.HasSuffix(name, "_test.go") {
			pkg.TestFiles = append(pkg.TestFiles, f)
		} else {
			pkg.Files = append(pkg.Files, f)
			pkg.Name = f.Name.Name
		}
	}
	if len(pkg.Files) > 0 {
		pkg.Info = &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
		var typeErrs []error
		conf := types.Config{
			Importer: l,
			Error:    func(err error) { typeErrs = append(typeErrs, err) },
		}
		//lint:ignore dropped-error type errors are accumulated via conf.Error and reported below
		pkg.Types, _ = conf.Check(importPath, l.fset, pkg.Files, pkg.Info)
		if len(typeErrs) > 0 {
			return nil, fmt.Errorf("lint: type-check %s: %v", importPath, typeErrs[0])
		}
	}
	l.pkgs[importPath] = pkg
	return pkg, nil
}

// newInfo returns an empty types.Info with every map the analyzers read.
func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
}

// checkTests type-checks pkg's _test.go files into pkg.TestInfo. It runs as
// a second phase, after every package of the module has loaded, because
// external test packages (package foo_test) may import module packages that
// themselves import foo — a cycle the phase-one loader would reject.
//
// In-package test files are checked together with the non-test files as an
// augmented unit (test code sees unexported identifiers); the resulting
// *types.Package is discarded — pkg.Types stays the clean non-test unit that
// other packages import.
func (l *loader) checkTests(pkg *Package) error {
	var inPkg, ext []*ast.File
	for _, f := range pkg.TestFiles {
		if pkg.Name == "" || f.Name.Name == pkg.Name {
			inPkg = append(inPkg, f)
		} else {
			ext = append(ext, f)
		}
	}
	if len(inPkg)+len(ext) == 0 {
		return nil
	}
	pkg.TestInfo = newInfo()
	check := func(path string, files []*ast.File) error {
		var typeErrs []error
		conf := types.Config{
			Importer: l,
			Error:    func(err error) { typeErrs = append(typeErrs, err) },
		}
		//lint:ignore dropped-error type errors are accumulated via conf.Error and reported below
		_, _ = conf.Check(path, l.fset, files, pkg.TestInfo)
		if len(typeErrs) > 0 {
			return fmt.Errorf("lint: type-check %s: %v", path, typeErrs[0])
		}
		return nil
	}
	if len(inPkg) > 0 {
		files := make([]*ast.File, 0, len(pkg.Files)+len(inPkg))
		files = append(files, pkg.Files...)
		files = append(files, inPkg...)
		if err := check(pkg.Path+" [test]", files); err != nil {
			return err
		}
	}
	if len(ext) > 0 {
		if err := check(pkg.Path+"_test", ext); err != nil {
			return err
		}
	}
	return nil
}

// goFilesIn lists the .go files of dir in sorted order.
func goFilesIn(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasPrefix(e.Name(), ".") {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names, nil
}

// LoadModule loads every package of the module rooted at root, skipping
// testdata, hidden, and underscore-prefixed directories. Packages are
// returned sorted by import path.
func LoadModule(root string) ([]*Package, error) {
	module, err := modulePath(root)
	if err != nil {
		return nil, err
	}
	var dirs []string
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		files, err := goFilesIn(path)
		if err != nil {
			return err
		}
		if len(files) > 0 {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)

	l := newLoader(root, module)
	var pkgs []*Package
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		importPath := module
		if rel != "." {
			importPath = module + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.load(dir, importPath)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	for _, pkg := range pkgs {
		if err := l.checkTests(pkg); err != nil {
			return nil, err
		}
	}
	return pkgs, nil
}

// LoadDir loads a single directory as a standalone package under the given
// synthetic import path. Used by the golden-file fixture tests; fixture
// packages may import only the standard library.
func LoadDir(dir, importPath string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	l := newLoader(abs, importPath)
	pkg, err := l.load(abs, importPath)
	if err != nil {
		return nil, err
	}
	if err := l.checkTests(pkg); err != nil {
		return nil, err
	}
	return pkg, nil
}
