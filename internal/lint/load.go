package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// Package is one loaded and (for its non-test files) type-checked package.
type Package struct {
	Path string // import path, e.g. "repro/internal/core"
	Name string // package name from the package clause
	Dir  string // absolute directory
	Root string // module root for relative file paths ("" = report absolute)

	Fset *token.FileSet
	// Files are the non-test files, fully type-checked.
	Files []*ast.File
	// TestFiles are _test.go files (internal and external packages alike).
	// They are parsed with comments but not type-checked, so only purely
	// syntactic rules apply to them.
	TestFiles []*ast.File

	Types *types.Package
	Info  *types.Info

	ignores        map[string]map[int][]string // filename -> line -> rules
	directiveDiags []Diagnostic
}

// AllFiles returns the type-checked files followed by the parse-only test
// files, for syntactic rules that apply to both.
func (p *Package) AllFiles() []*ast.File {
	out := make([]*ast.File, 0, len(p.Files)+len(p.TestFiles))
	out = append(out, p.Files...)
	out = append(out, p.TestFiles...)
	return out
}

// IsTestFile reports whether the file containing pos is a _test.go file.
func (p *Package) IsTestFile(f *ast.File) bool {
	return strings.HasSuffix(p.Fset.Position(f.Pos()).Filename, "_test.go")
}

func (p *Package) relFile(filename string) string {
	if p.Root == "" {
		return filename
	}
	if rel, err := filepath.Rel(p.Root, filename); err == nil {
		return filepath.ToSlash(rel)
	}
	return filename
}

var ignoreRe = regexp.MustCompile(`^//lint:ignore(?:\s+(\S+))?(?:\s+(\S.*))?$`)

// collectDirectives scans a parsed file for //lint:ignore comments. A
// well-formed directive names a rule and gives a non-empty reason; anything
// else is itself reported so suppressions cannot silently rot.
func (p *Package) collectDirectives(f *ast.File) {
	if p.ignores == nil {
		p.ignores = make(map[string]map[int][]string)
	}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, "//lint:ignore") {
				continue
			}
			pos := p.Fset.Position(c.Pos())
			m := ignoreRe.FindStringSubmatch(c.Text)
			if m == nil || m[1] == "" || m[2] == "" {
				p.directiveDiags = append(p.directiveDiags, Diagnostic{
					Rule:    "lint-directive",
					File:    p.relFile(pos.Filename),
					Line:    pos.Line,
					Col:     pos.Column,
					Message: "malformed directive: want //lint:ignore <rule> <reason>",
				})
				continue
			}
			byLine := p.ignores[pos.Filename]
			if byLine == nil {
				byLine = make(map[int][]string)
				p.ignores[pos.Filename] = byLine
			}
			byLine[pos.Line] = append(byLine[pos.Line], m[1])
		}
	}
}

// suppressed reports whether a directive for rule covers the given position:
// the directive must sit on the same line or the line directly above.
func (p *Package) suppressed(rule string, pos token.Position) bool {
	byLine := p.ignores[pos.Filename]
	if byLine == nil {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, r := range byLine[line] {
			if r == rule {
				return true
			}
		}
	}
	return false
}

// FindModuleRoot walks upward from dir until it finds a go.mod.
func FindModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("lint: no go.mod found above %s", abs)
		}
		d = parent
	}
}

var moduleRe = regexp.MustCompile(`(?m)^module\s+(\S+)`)

func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	m := moduleRe.FindSubmatch(data)
	if m == nil {
		return "", fmt.Errorf("lint: no module line in %s/go.mod", root)
	}
	return string(m[1]), nil
}

// loader type-checks module packages on demand. Stdlib imports are resolved
// by the source importer; module-internal imports recurse into the loader
// itself, so packages are checked in dependency order with shared results.
type loader struct {
	root    string
	module  string
	fset    *token.FileSet
	std     types.ImporterFrom
	pkgs    map[string]*Package // by import path
	loading map[string]bool
}

func newLoader(root, module string) *loader {
	fset := token.NewFileSet()
	return &loader{
		root:    root,
		module:  module,
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}
}

// Import implements types.Importer over both module and stdlib packages.
func (l *loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.root, 0)
}

// ImportFrom implements types.ImporterFrom.
func (l *loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == l.module || strings.HasPrefix(path, l.module+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.module), "/")
		pkg, err := l.load(filepath.Join(l.root, filepath.FromSlash(rel)), path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, dir, mode)
}

// load parses and type-checks the package in dir. Non-test files form the
// typed unit; _test.go files are parsed alongside for syntactic rules.
func (l *loader) load(dir, importPath string) (*Package, error) {
	if pkg, ok := l.pkgs[importPath]; ok {
		return pkg, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("lint: import cycle through %s", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	names, err := goFilesIn(dir)
	if err != nil {
		return nil, err
	}
	pkg := &Package{Path: importPath, Dir: dir, Root: l.root, Fset: l.fset}
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %w", filepath.Join(dir, name), err)
		}
		pkg.collectDirectives(f)
		if strings.HasSuffix(name, "_test.go") {
			pkg.TestFiles = append(pkg.TestFiles, f)
		} else {
			pkg.Files = append(pkg.Files, f)
			pkg.Name = f.Name.Name
		}
	}
	if len(pkg.Files) > 0 {
		pkg.Info = &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
		var typeErrs []error
		conf := types.Config{
			Importer: l,
			Error:    func(err error) { typeErrs = append(typeErrs, err) },
		}
		//lint:ignore dropped-error type errors are accumulated via conf.Error and reported below
		pkg.Types, _ = conf.Check(importPath, l.fset, pkg.Files, pkg.Info)
		if len(typeErrs) > 0 {
			return nil, fmt.Errorf("lint: type-check %s: %v", importPath, typeErrs[0])
		}
	}
	l.pkgs[importPath] = pkg
	return pkg, nil
}

// goFilesIn lists the .go files of dir in sorted order.
func goFilesIn(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasPrefix(e.Name(), ".") {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names, nil
}

// LoadModule loads every package of the module rooted at root, skipping
// testdata, hidden, and underscore-prefixed directories. Packages are
// returned sorted by import path.
func LoadModule(root string) ([]*Package, error) {
	module, err := modulePath(root)
	if err != nil {
		return nil, err
	}
	var dirs []string
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		files, err := goFilesIn(path)
		if err != nil {
			return err
		}
		if len(files) > 0 {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)

	l := newLoader(root, module)
	var pkgs []*Package
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		importPath := module
		if rel != "." {
			importPath = module + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.load(dir, importPath)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadDir loads a single directory as a standalone package under the given
// synthetic import path. Used by the golden-file fixture tests; fixture
// packages may import only the standard library.
func LoadDir(dir, importPath string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	l := newLoader(abs, importPath)
	return l.load(abs, importPath)
}
