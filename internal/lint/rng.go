package lint

import (
	"strconv"
	"strings"
)

// rngPackages are the imports that bypass the seeded RNG discipline.
var rngPackages = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
	"crypto/rand":  true,
}

// RNGDiscipline forbids direct math/rand and crypto/rand imports outside
// internal/stats. Group sampling is only unbiased — and the Eq. (35)
// stabilized normalization only reproducible — if every random draw comes
// from the seeded stats.RNG streams, so experiment runs replay bit-for-bit.
// The rule is purely syntactic and therefore also covers _test.go files.
var RNGDiscipline = &Analyzer{
	Name: "rng-discipline",
	Doc:  "forbid math/rand and crypto/rand imports outside internal/stats",
	Run: func(pass *Pass) {
		if strings.HasSuffix(pass.Pkg.Path, "internal/stats") {
			return
		}
		for _, f := range pass.Pkg.AllFiles() {
			for _, imp := range f.Imports {
				path, err := strconv.Unquote(imp.Path.Value)
				if err != nil || !rngPackages[path] {
					continue
				}
				pass.Reportf(imp.Pos(),
					"import %q outside internal/stats: draw randomness from the seeded stats.RNG so runs stay replayable", path)
			}
		}
	},
}
