package lint

// IgnoreAudit flags //lint:ignore directives that have gone stale: the named
// rule ran over the package and the directive suppressed nothing. Stale
// ignores are how suppression lists rot — the offending code gets fixed or
// deleted, the directive lingers, and one day it silently swallows a brand
// new violation on the same line. The audit also rejects directives naming
// rules that do not exist at all (a typo would otherwise suppress nothing
// forever without complaint).
//
// Check runs this analyzer last, after every other analyzer has had the
// chance to mark the directives it used, regardless of its position in the
// analyzer list. When invoked with a filtered rule set (repolint
// -analyzers), only directives naming rules that actually ran are audited
// for staleness, so a partial run never mislabels a live directive.
var IgnoreAudit = &Analyzer{
	Name: "ignore-audit",
	Doc:  "//lint:ignore directives must suppress at least one live diagnostic of a rule that ran",
}

// Run is assigned in init to break the initialization cycle through All().
func init() { IgnoreAudit.Run = runIgnoreAudit }

func runIgnoreAudit(pass *Pass) {
	known := make(map[string]bool)
	for _, a := range All() {
		known[a.Name] = true
	}
	for _, file := range pass.Pkg.ignoreFiles() {
		for _, ent := range pass.Pkg.ignores[file] {
			switch {
			case !known[ent.rule]:
				pass.reportAt(ent.pos, "//lint:ignore names unknown rule %q; it suppresses nothing (see repolint -list for valid rules)", ent.rule)
			case ent.used:
				// Live directive: it suppressed at least one diagnostic.
			case pass.ranRules[ent.rule]:
				pass.reportAt(ent.pos, "stale //lint:ignore %s: the rule ran and this directive suppressed nothing; delete it", ent.rule)
			}
		}
	}
}
