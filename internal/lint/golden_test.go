package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestGoldenFixtures runs each analyzer over its intentionally-good and
// intentionally-bad fixture packages under testdata/src and asserts exact
// diagnostic positions against the fixtures' `// want "substring"`
// annotations. A want comment sits on the offending line, or alone on the
// following line when the offending line is itself a comment (malformed
// directives).
func TestGoldenFixtures(t *testing.T) {
	cases := []struct {
		analyzer *Analyzer
		dir      string
	}{
		{RNGDiscipline, "rngdiscipline/bad"},
		{RNGDiscipline, "rngdiscipline/good"},
		{RNGDiscipline, "rngdiscipline/internal/stats"},
		{GoroutineJoin, "goroutinejoin/bad"},
		{GoroutineJoin, "goroutinejoin/good"},
		{FloatEq, "floateq/bad"},
		{FloatEq, "floateq/good"},
		{DroppedError, "droppederr/bad"},
		{DroppedError, "droppederr/good"},
		{PanicMessage, "panicmsg/bad"},
		{PanicMessage, "panicmsg/good"},
		{MapOrder, "maporder/bad"},
		{MapOrder, "maporder/good"},
		{Wallclock, "wallclock/bad"},
		{Wallclock, "wallclock/good"},
		{HotpathAlloc, "hotpathalloc/bad"},
		{HotpathAlloc, "hotpathalloc/good"},
		{MetricSchema, "metricschema/bad"},
		{MetricSchema, "metricschema/good"},
		{FloatEq, "suppress/bad"},
	}
	for _, c := range cases {
		t.Run(c.dir+"/"+c.analyzer.Name, func(t *testing.T) {
			runFixture(t, []*Analyzer{c.analyzer}, c.dir)
		})
	}
}

// TestIgnoreAuditFixture exercises the ignore-audit analyzer, which only
// makes sense alongside at least one rule that can mark directives as used.
func TestIgnoreAuditFixture(t *testing.T) {
	for _, dir := range []string{"ignoreaudit/bad", "ignoreaudit/good"} {
		t.Run(dir, func(t *testing.T) {
			runFixture(t, []*Analyzer{FloatEq, IgnoreAudit}, dir)
		})
	}
}

var wantRe = regexp.MustCompile(`// want ("[^"]*"(?:\s+"[^"]*")*)`)
var wantArgRe = regexp.MustCompile(`"([^"]*)"`)

func runFixture(t *testing.T, analyzers []*Analyzer, rel string) {
	dir := filepath.Join("testdata", "src", filepath.FromSlash(rel))
	pkg, err := LoadDir(dir, rel)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	diags := Check([]*Package{pkg}, analyzers)
	wants := parseWants(t, dir)

	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", filepath.Base(d.File), d.Line)
		matched := false
		for i, w := range wants[key] {
			if strings.Contains(d.Message, w) {
				wants[key] = append(wants[key][:i], wants[key][i+1:]...)
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			t.Errorf("%s: expected diagnostic matching %q, got none", key, w)
		}
	}
}

// parseWants scans fixture files for want annotations and returns them
// keyed by "file.go:line". A line that consists solely of a want comment
// annotates the line above it.
func parseWants(t *testing.T, dir string) map[string][]string {
	wants := make(map[string][]string)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			target := i + 1
			if strings.HasPrefix(strings.TrimSpace(line), "// want") {
				target = i // annotates the previous line
			}
			key := fmt.Sprintf("%s:%d", e.Name(), target)
			for _, arg := range wantArgRe.FindAllStringSubmatch(m[1], -1) {
				wants[key] = append(wants[key], arg[1])
			}
		}
	}
	return wants
}
