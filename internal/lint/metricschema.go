package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// MetricSchema validates every literal metric name handed to the
// internal/metrics registry against the schema PR 3 enforces at runtime:
// names match fel_<layer>_<name> with a layer from the known set, use only
// [a-z0-9_], never end in '_', counters end in _total, and Start spans end
// in _seconds. Labels built in-line with metrics.L must be passed in
// canonical (sorted-by-key) order so series identity never depends on call
// sites. Catching these statically means a misspelled layer or a drifting
// suffix fails repolint instead of panicking the first process that happens
// to register the metric.
var MetricSchema = &Analyzer{
	Name: "metric-schema",
	Doc:  "literal metric names must match fel_<layer>_<name> with a known layer, canonical suffixes, and sorted labels",
	Run:  runMetricSchema,
}

// metricLayers are the architectural layers allowed in metric names,
// mirroring the package structure: core training, wire codec, simulated
// network, federation node, secure aggregation, fault injection, the
// felserve serving layer (fel_serve_* covers both the service-level schema
// and the per-job fel_serve_job_* streams), and the buffered-async
// aggregation layer (fel_async_* staleness/buffer/clock instrumentation).
var metricLayers = map[string]bool{
	"core": true, "wire": true, "net": true,
	"fednode": true, "secagg": true, "faultnet": true,
	"serve": true, "async": true,
}

// registryMethods maps internal/metrics Registry methods to the suffix rule
// class they imply for the name argument.
var registryMethods = map[string]string{
	"Counter":      "counter",
	"CounterValue": "counter",
	"Gauge":        "gauge",
	"Histogram":    "histogram",
	"Start":        "span",
	"GaugeValue":   "gauge",
}

func runMetricSchema(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			kind, isRegistryMethod := registryMethods[sel.Sel.Name]
			if !isRegistryMethod {
				return true
			}
			fn, ok := pass.UseOf(sel.Sel).(*types.Func)
			if !ok || !declaredInMetrics(fn) {
				return true
			}
			name, ok := constStringValue(pass, call.Args[0])
			if !ok {
				return true // dynamic names are the registry's runtime problem
			}
			checkMetricName(pass, call.Args[0].Pos(), name, kind)
			checkLabelOrder(pass, call.Args[1:])
			return true
		})
	}
}

// declaredInMetrics reports whether fn belongs to the module's
// internal/metrics package.
func declaredInMetrics(fn *types.Func) bool {
	p := fn.Pkg()
	return p != nil && strings.HasSuffix(p.Path(), "internal/metrics")
}

func checkMetricName(pass *Pass, pos token.Pos, name, kind string) {
	if !strings.HasPrefix(name, "fel_") {
		pass.Reportf(pos, "metric name %q must start with fel_ (schema: fel_<layer>_<name>)", name)
		return
	}
	for _, r := range name {
		if (r < 'a' || r > 'z') && (r < '0' || r > '9') && r != '_' {
			pass.Reportf(pos, "metric name %q contains %q; only [a-z0-9_] is allowed", name, string(r))
			return
		}
	}
	if strings.HasSuffix(name, "_") {
		pass.Reportf(pos, "metric name %q must not end with '_'", name)
		return
	}
	rest := strings.TrimPrefix(name, "fel_")
	layer, _, ok := strings.Cut(rest, "_")
	if !ok || !metricLayers[layer] {
		layers := make([]string, 0, len(metricLayers))
		for l := range metricLayers {
			layers = append(layers, l)
		}
		sort.Strings(layers)
		pass.Reportf(pos, "metric name %q has unknown layer %q; known layers: %s (schema: fel_<layer>_<name>)", name, layer, strings.Join(layers, ", "))
		return
	}
	switch kind {
	case "counter":
		if !strings.HasSuffix(name, "_total") {
			pass.Reportf(pos, "counter metric %q must end in _total", name)
		}
	case "span":
		if !strings.HasSuffix(name, "_seconds") {
			pass.Reportf(pos, "span metric %q must end in _seconds (Start measures durations)", name)
		}
	case "gauge", "histogram":
		if strings.HasSuffix(name, "_total") {
			pass.Reportf(pos, "%s metric %q must not end in _total (reserved for counters)", kind, name)
		}
	}
}

// checkLabelOrder flags in-line metrics.L(key, value) label arguments whose
// constant keys are not in strictly increasing order: label order determines
// series identity, so call sites must agree on the canonical (sorted) form.
func checkLabelOrder(pass *Pass, args []ast.Expr) {
	prevKey := ""
	havePrev := false
	for _, arg := range args {
		call, ok := ast.Unparen(arg).(*ast.CallExpr)
		if !ok || len(call.Args) < 1 {
			return
		}
		sel := ast.Unparen(call.Fun)
		var fnIdent *ast.Ident
		switch fun := sel.(type) {
		case *ast.Ident:
			fnIdent = fun
		case *ast.SelectorExpr:
			fnIdent = fun.Sel
		default:
			return
		}
		fn, ok := pass.UseOf(fnIdent).(*types.Func)
		if !ok || fn.Name() != "L" || !declaredInMetrics(fn) {
			return // not an in-line label list; nothing to order-check
		}
		key, ok := constStringValue(pass, call.Args[0])
		if !ok {
			return
		}
		if havePrev && key <= prevKey {
			pass.Reportf(call.Args[0].Pos(), "label key %q is out of canonical order (previous key %q); pass metrics.L labels sorted by key", key, prevKey)
			return
		}
		prevKey, havePrev = key, true
	}
}
