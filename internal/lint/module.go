package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Module is the whole-program view shared by the flow-sensitive analyzers:
// an index of every function declaration, an intra-module call graph whose
// interface-method calls are resolved to every module implementation (class
// hierarchy analysis over go/types), the //lint:hotpath and
// //lint:deterministic annotation sets, and a file → package index so
// diagnostics reported across package boundaries find the right
// //lint:ignore scope.
//
// The graph covers non-test code only: test functions are neither roots nor
// edges, so a test calling time.Now never taints a deterministic path.
type Module struct {
	Pkgs []*Package

	byFile map[string]*Package
	funcs  map[*types.Func]*FuncInfo
	order  []*FuncInfo // declaration order: packages sorted, files sorted, decls top-down

	named []*types.Named // every named (non-alias) type declared in the module

	implCache map[implKey][]*types.Func

	detDone bool
	detVia  map[*types.Func]reachEdge
}

// FuncInfo is one function or method declaration in the module.
type FuncInfo struct {
	Obj  *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package

	// Hotpath and Deterministic mirror the //lint: annotations on the decl.
	Hotpath       bool
	Deterministic bool

	// Callees are the statically resolved outgoing edges: direct calls to
	// module functions plus, for interface-method calls, every module method
	// that implements the interface (CHA). Dynamic calls through plain func
	// values stay invisible — the analyzers that need soundness there say so
	// in their docs.
	Callees []*types.Func

	// TimeUses are direct uses (calls or value references) of the wall-clock
	// functions in package time.
	TimeUses []TimeUse
}

// TimeUse is one direct use of a package time wall-clock function.
type TimeUse struct {
	Pos  token.Pos
	Name string // e.g. "Now", "Sleep"
}

type implKey struct {
	iface  *types.Interface
	method string
}

type reachEdge struct {
	root, from *types.Func
}

// wallclockFuncs are the package time functions that read or depend on the
// wall clock. Referencing one (even without calling it) inside a
// deterministic path is a violation: the reference is how clocks get
// injected into places that later tick.
var wallclockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// NewModule indexes pkgs and builds the call graph. pkgs must come from one
// loader invocation (LoadModule, or LoadDir for fixtures) so that
// cross-package object identities agree.
func NewModule(pkgs []*Package) *Module {
	m := &Module{
		Pkgs:      pkgs,
		byFile:    make(map[string]*Package),
		funcs:     make(map[*types.Func]*FuncInfo),
		implCache: make(map[implKey][]*types.Func),
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.AllFiles() {
			m.byFile[pkg.Fset.Position(f.Pos()).Filename] = pkg
		}
		if pkg.Types != nil {
			scope := pkg.Types.Scope()
			for _, name := range scope.Names() { // Names() is sorted
				if tn, ok := scope.Lookup(name).(*types.TypeName); ok && !tn.IsAlias() {
					if named, ok := tn.Type().(*types.Named); ok {
						m.named = append(m.named, named)
					}
				}
			}
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || pkg.Info == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				fi := &FuncInfo{
					Obj:           obj,
					Decl:          fd,
					Pkg:           pkg,
					Hotpath:       pkg.HasAnnotation(fd, "hotpath"),
					Deterministic: pkg.HasAnnotation(fd, "deterministic"),
				}
				m.funcs[obj] = fi
				m.order = append(m.order, fi)
			}
		}
	}
	for _, fi := range m.order {
		m.buildEdges(fi)
	}
	return m
}

// ownerOf returns the package whose file set contains filename, or nil.
func (m *Module) ownerOf(filename string) *Package { return m.byFile[filename] }

// FuncInfoOf returns the module's record for obj, or nil for functions
// declared outside the module (stdlib, test files).
func (m *Module) FuncInfoOf(obj *types.Func) *FuncInfo { return m.funcs[obj] }

// Funcs returns every module function in deterministic declaration order.
func (m *Module) Funcs() []*FuncInfo { return m.order }

// buildEdges walks fi's body once, collecting call edges and time uses.
// Function literals nested in the body are attributed to fi: the literal
// runs on behalf of the declaring function.
func (m *Module) buildEdges(fi *FuncInfo) {
	pkg := fi.Pkg
	seen := make(map[*types.Func]bool)
	addEdge := func(callee *types.Func) {
		if callee == nil || seen[callee] {
			return
		}
		if _, inModule := m.funcs[callee]; !inModule {
			return
		}
		seen[callee] = true
		fi.Callees = append(fi.Callees, callee)
	}
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			if fn, ok := pkg.useOf(n).(*types.Func); ok {
				if p := fn.Pkg(); p != nil && p.Path() == "time" && wallclockFuncs[fn.Name()] {
					fi.TimeUses = append(fi.TimeUses, TimeUse{Pos: n.Pos(), Name: fn.Name()})
				}
			}
		case *ast.CallExpr:
			callee := calleeOf(pkg, n)
			if callee == nil {
				return true
			}
			sig, ok := callee.Type().(*types.Signature)
			if ok && sig.Recv() != nil && types.IsInterface(sig.Recv().Type()) {
				if iface, ok := sig.Recv().Type().Underlying().(*types.Interface); ok {
					for _, impl := range m.implementations(iface, callee.Name()) {
						addEdge(impl)
					}
					return true
				}
			}
			addEdge(callee)
		}
		return true
	})
}

// calleeOf resolves the called function object of call, if statically known.
func calleeOf(pkg *Package, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pkg.useOf(id).(*types.Func)
	return fn
}

// implementations returns every module method named method whose receiver
// type (value or pointer) implements iface — the class-hierarchy edges for
// one interface-method call.
func (m *Module) implementations(iface *types.Interface, method string) []*types.Func {
	key := implKey{iface: iface, method: method}
	if impls, ok := m.implCache[key]; ok {
		return impls
	}
	impls := []*types.Func{}
	for _, named := range m.named {
		ptr := types.NewPointer(named)
		if !types.Implements(named, iface) && !types.Implements(ptr, iface) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(ptr, true, named.Obj().Pkg(), method)
		fn, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		if _, inModule := m.funcs[fn]; inModule {
			impls = append(impls, fn)
		}
	}
	m.implCache[key] = impls
	return impls
}

// DeterministicPath returns the call chain from a //lint:deterministic root
// to f (root first, f last), or nil when no root reaches f. Roots reach
// themselves with a single-element chain.
func (m *Module) DeterministicPath(f *types.Func) []*types.Func {
	if !m.detDone {
		m.detDone = true
		m.detVia = make(map[*types.Func]reachEdge)
		var queue []*types.Func
		for _, fi := range m.order {
			if fi.Deterministic {
				m.detVia[fi.Obj] = reachEdge{root: fi.Obj}
				queue = append(queue, fi.Obj)
			}
		}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			root := m.detVia[cur].root
			fi := m.funcs[cur]
			if fi == nil {
				continue
			}
			for _, callee := range fi.Callees {
				if _, seen := m.detVia[callee]; seen {
					continue
				}
				m.detVia[callee] = reachEdge{root: root, from: cur}
				queue = append(queue, callee)
			}
		}
	}
	if _, ok := m.detVia[f]; !ok {
		return nil
	}
	var rev []*types.Func
	for cur := f; cur != nil; cur = m.detVia[cur].from {
		rev = append(rev, cur)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}
