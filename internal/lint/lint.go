// Package lint implements repolint, the repository's own static-analysis
// pass. It is built entirely on the standard library (go/ast, go/parser,
// go/types) so the module stays dependency-free, and it encodes project
// invariants that ordinary go vet does not know about:
//
//   - rng-discipline: all stochasticity flows through the seeded
//     repro/internal/stats.RNG, so experiment runs are replayable and the
//     paper's sampling-variance results are the ones actually measured.
//   - naked-goroutine: every spawned goroutine signals completion and is
//     joined by its spawner, so parallel aggregation code cannot leak.
//   - float-eq: no ==/!= on floating-point operands outside test files;
//     numeric comparisons go through the epsilon helpers in internal/stats.
//   - dropped-error: no silently discarded error returns in non-test code.
//   - panic-message: panics in library packages carry a "pkg: " prefix.
//
// Legitimate exceptions are declared in-source with an auditable
//
//	//lint:ignore <rule> <reason>
//
// comment on the offending line or the line directly above it.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Diagnostic is one reported violation. File is relative to the module root
// when the package was loaded with LoadModule.
type Diagnostic struct {
	Rule    string `json:"rule"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Rule, d.Message)
}

// Analyzer is one lint rule: a name (used in diagnostics and in
// //lint:ignore directives), a short doc string, and a Run function that
// inspects a single package and reports violations through the pass.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// All returns every analyzer in the suite, in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		RNGDiscipline,
		NakedGoroutine,
		FloatEq,
		DroppedError,
		PanicMessage,
	}
}

// ByName resolves analyzer names (comma-separated lists are handled by the
// caller) to analyzers. Unknown names return an error listing valid rules.
func ByName(name string) (*Analyzer, error) {
	for _, a := range All() {
		if a.Name == name {
			return a, nil
		}
	}
	valid := make([]string, 0, len(All()))
	for _, a := range All() {
		valid = append(valid, a.Name)
	}
	return nil, fmt.Errorf("lint: unknown rule %q (valid: %v)", name, valid)
}

// Pass is the per-(package, analyzer) context handed to Analyzer.Run.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	diags    *[]Diagnostic
}

// TypeOf returns the type of expr in the checked package, or nil for
// expressions outside the type-checked file set (e.g. in test files, which
// are parsed but not type-checked).
func (p *Pass) TypeOf(expr ast.Expr) types.Type {
	if p.Pkg.Info == nil {
		return nil
	}
	return p.Pkg.Info.TypeOf(expr)
}

// Reportf records a violation at pos unless an in-scope //lint:ignore
// directive suppresses it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	if p.Pkg.suppressed(p.Analyzer.Name, position) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Rule:    p.Analyzer.Name,
		File:    p.Pkg.relFile(position.Filename),
		Line:    position.Line,
		Col:     position.Column,
		Message: fmt.Sprintf(format, args...),
	})
}

// Check runs the given analyzers over the given packages and returns all
// diagnostics sorted by file, line, column, and rule. Malformed
// //lint:ignore directives are reported as diagnostics too (rule
// "lint-directive"), so suppressions stay auditable.
func Check(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		diags = append(diags, pkg.directiveDiags...)
		for _, a := range analyzers {
			a.Run(&Pass{Analyzer: a, Pkg: pkg, diags: &diags})
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Rule < b.Rule
	})
	return diags
}
