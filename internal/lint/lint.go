// Package lint implements repolint, the repository's own static-analysis
// pass. It is built entirely on the standard library (go/ast, go/parser,
// go/types) so the module stays dependency-free, and it encodes project
// invariants that ordinary go vet does not know about:
//
//   - rng-discipline: all stochasticity flows through the seeded
//     repro/internal/stats.RNG, so experiment runs are replayable and the
//     paper's sampling-variance results are the ones actually measured.
//   - goroutine-join: every go statement's completion token (WaitGroup or
//     channel, resolved through go/types) is actually waited on by the
//     spawner or escapes as a join handle, so parallel code cannot leak.
//   - float-eq: no ==/!= on floating-point operands (test files included);
//     numeric comparisons go through the epsilon helpers in internal/stats.
//   - dropped-error: no silently discarded error returns, in tests either.
//   - panic-message: panics in library packages carry a "pkg: " prefix.
//   - map-order: a range over a map whose body feeds floating-point
//     accumulation, an unsorted slice append, or byte/wire encoding is a
//     determinism violation — iteration order would leak into results.
//   - wallclock: time.Now/Since/Sleep/... must not be reachable, through
//     the module call graph, from functions marked //lint:deterministic.
//   - hotpath-alloc: functions marked //lint:hotpath must be statically
//     free of allocation at detectable sites and may only call module
//     functions that are themselves hotpath-annotated.
//   - metric-schema: literal metric names handed to internal/metrics follow
//     fel_<layer>_<name> with a known layer and canonical label order.
//   - ignore-audit: every //lint:ignore directive still suppresses at
//     least one diagnostic of a rule that ran; stale ignores are flagged.
//
// Legitimate exceptions are declared in-source with an auditable
//
//	//lint:ignore <rule> <reason>
//
// comment on the offending line or the line directly above it. Function
// roles are declared with //lint:hotpath and //lint:deterministic on the
// declaration (doc comment or the line above).
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Diagnostic is one reported violation. File is relative to the module root
// when the package was loaded with LoadModule.
type Diagnostic struct {
	Rule    string `json:"rule"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Rule, d.Message)
}

// Analyzer is one lint rule: a name (used in diagnostics and in
// //lint:ignore directives), a short doc string, and a Run function that
// inspects a single package and reports violations through the pass.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// All returns every analyzer in the suite, in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		RNGDiscipline,
		GoroutineJoin,
		FloatEq,
		DroppedError,
		PanicMessage,
		MapOrder,
		Wallclock,
		HotpathAlloc,
		MetricSchema,
		IgnoreAudit,
	}
}

// ByName resolves analyzer names (comma-separated lists are handled by the
// caller) to analyzers. Unknown names return an error listing valid rules.
func ByName(name string) (*Analyzer, error) {
	for _, a := range All() {
		if a.Name == name {
			return a, nil
		}
	}
	valid := make([]string, 0, len(All()))
	for _, a := range All() {
		valid = append(valid, a.Name)
	}
	return nil, fmt.Errorf("lint: unknown rule %q (valid: %v)", name, valid)
}

// Pass is the per-(package, analyzer) context handed to Analyzer.Run. Mod
// gives flow-sensitive analyzers the whole-module view (call graph,
// annotations, cross-package suppression).
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	Mod      *Module
	diags    *[]Diagnostic
	ranRules map[string]bool // rules the surrounding Check invocation runs
}

// TypeOf returns the type of expr, consulting the non-test type information
// first and the test-unit information second, or nil when expr lies outside
// both checked file sets.
func (p *Pass) TypeOf(expr ast.Expr) types.Type {
	return p.Pkg.typeOf(expr)
}

func (p *Package) typeOf(expr ast.Expr) types.Type {
	if p.Info != nil {
		if t := p.Info.TypeOf(expr); t != nil {
			return t
		}
	}
	if p.TestInfo != nil {
		return p.TestInfo.TypeOf(expr)
	}
	return nil
}

// UseOf resolves an identifier use to its object, consulting the non-test
// and then the test-unit information.
func (p *Pass) UseOf(id *ast.Ident) types.Object {
	return p.Pkg.useOf(id)
}

func (p *Package) useOf(id *ast.Ident) types.Object {
	if p.Info != nil {
		if o := p.Info.Uses[id]; o != nil {
			return o
		}
	}
	if p.TestInfo != nil {
		return p.TestInfo.Uses[id]
	}
	return nil
}

// ObjectOf resolves an identifier (definition or use) to its object across
// both type-checked units.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if p.Pkg.Info != nil {
		if o := p.Pkg.Info.ObjectOf(id); o != nil {
			return o
		}
	}
	if p.Pkg.TestInfo != nil {
		return p.Pkg.TestInfo.ObjectOf(id)
	}
	return nil
}

// ConstValue resolves expr's compile-time constant value, if any.
func (p *Pass) constTypeAndValue(expr ast.Expr) (types.TypeAndValue, bool) {
	if p.Pkg.Info != nil {
		if tv, ok := p.Pkg.Info.Types[expr]; ok {
			return tv, true
		}
	}
	if p.Pkg.TestInfo != nil {
		if tv, ok := p.Pkg.TestInfo.Types[expr]; ok {
			return tv, true
		}
	}
	return types.TypeAndValue{}, false
}

// Reportf records a violation at pos unless an in-scope //lint:ignore
// directive suppresses it. The directive is looked up in the package that
// owns the position's file — flow-sensitive analyzers may report positions
// outside the package currently under analysis.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.reportAt(p.Pkg.Fset.Position(pos), format, args...)
}

// reportAt is Reportf for positions already resolved against the fileset
// (the ignore-audit pass stores directive positions resolved).
func (p *Pass) reportAt(position token.Position, format string, args ...any) {
	owner := p.Pkg
	if p.Mod != nil {
		if o := p.Mod.ownerOf(position.Filename); o != nil {
			owner = o
		}
	}
	if owner.suppressed(p.Analyzer.Name, position) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Rule:    p.Analyzer.Name,
		File:    owner.relFile(position.Filename),
		Line:    position.Line,
		Col:     position.Column,
		Message: fmt.Sprintf(format, args...),
	})
}

// Check runs the given analyzers over the given packages and returns all
// diagnostics sorted by file, line, column, and rule. Malformed //lint:
// directives are reported as diagnostics too (rule "lint-directive"), so
// suppressions stay auditable. The ignore-audit analyzer, when included,
// runs last — after every other analyzer has had the chance to mark the
// directives it used — regardless of its position in analyzers.
func Check(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	mod := NewModule(pkgs)
	var diags []Diagnostic
	ranRules := make(map[string]bool, len(analyzers))
	audit := false
	for _, a := range analyzers {
		if a.Name == IgnoreAudit.Name {
			audit = true
			continue
		}
		ranRules[a.Name] = true
	}
	for _, pkg := range pkgs {
		diags = append(diags, pkg.directiveDiags...)
	}
	for _, a := range analyzers {
		if a.Name == IgnoreAudit.Name {
			continue
		}
		for _, pkg := range pkgs {
			a.Run(&Pass{Analyzer: a, Pkg: pkg, Mod: mod, diags: &diags})
		}
	}
	if audit {
		for _, pkg := range pkgs {
			IgnoreAudit.Run(&Pass{Analyzer: IgnoreAudit, Pkg: pkg, Mod: mod, diags: &diags, ranRules: ranRules})
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Rule < b.Rule
	})
	return diags
}
