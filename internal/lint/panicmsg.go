package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
)

// panicPrefixRe matches the repository's panic convention: a lowercase
// package tag followed by ": " ("tensor: MatMul inner dims 3 vs 4").
var panicPrefixRe = regexp.MustCompile(`^[a-z][a-zA-Z0-9_/-]*: `)

// PanicMessage requires panics in library packages (everything that is not
// package main and not a test) to carry a "pkg: "-prefixed string message,
// the existing "tensor:"/"stats:"/"fel:" convention. A bare panic(err) tells
// the operator nothing about which subsystem gave up; the prefix does.
var PanicMessage = &Analyzer{
	Name: "panic-message",
	Doc:  `library panics must carry a "pkg: "-prefixed message`,
	Run: func(pass *Pass) {
		if pass.Pkg.Name == "main" {
			return
		}
		for _, f := range pass.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) != 1 {
					return true
				}
				id, ok := call.Fun.(*ast.Ident)
				if !ok || id.Name != "panic" {
					return true
				}
				if b, ok := pass.UseOf(id).(*types.Builtin); !ok || b.Name() != "panic" {
					return true
				}
				if !panicHasPrefix(pass, call.Args[0]) {
					pass.Reportf(call.Pos(),
						`panic message must be a string starting with a lowercase "pkg: " prefix (e.g. "tensor: shape mismatch")`)
				}
				return true
			})
		}
	},
}

// panicHasPrefix reports whether the panic argument demonstrably starts
// with a "pkg: " tag: a constant string, a fmt.Sprintf/fmt.Errorf whose
// format literal is prefixed, or a string concatenation whose leftmost
// operand is.
func panicHasPrefix(pass *Pass, arg ast.Expr) bool {
	if s, ok := constStringValue(pass, arg); ok {
		return panicPrefixRe.MatchString(s)
	}
	switch arg := arg.(type) {
	case *ast.BinaryExpr:
		if arg.Op == token.ADD {
			return panicHasPrefix(pass, arg.X)
		}
	case *ast.CallExpr:
		if fn := calleeFunc(pass, arg); fn != nil {
			switch fn.FullName() {
			case "fmt.Sprintf", "fmt.Errorf":
				if len(arg.Args) > 0 {
					return panicHasPrefix(pass, arg.Args[0])
				}
			}
		}
	}
	return false
}

// constStringValue resolves arg to a compile-time string constant, through
// named constants and folded concatenations alike.
func constStringValue(pass *Pass, arg ast.Expr) (string, bool) {
	tv, ok := pass.constTypeAndValue(arg)
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
