package lint

import (
	"go/ast"
	"go/types"
)

// GoroutineJoin requires every `go` statement to be part of a join protocol
// the type checker can certify: the spawned body must signal completion
// through a concrete token — a sync.WaitGroup (Done/Add) or a channel (send
// or close) — and that same token object must be waited on by the spawner
// (WaitGroup.Wait, a receive, a range, a select case) or escape as a join
// handle (struct field, argument to another function, return value). It
// supersedes the purely syntactic naked-goroutine rule: "there is a Wait
// somewhere in this function" no longer counts unless it waits on the
// goroutine's own token. Genuinely fire-and-forget goroutines must carry a
// //lint:ignore goroutine-join <reason> directive.
var GoroutineJoin = &Analyzer{
	Name: "goroutine-join",
	Doc:  "every go statement's WaitGroup or channel token must be joined by its spawner or escape as a join handle",
	Run:  runGoroutineJoin,
}

func runGoroutineJoin(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Body != nil {
				checkGoroutines(pass, fd.Body)
			}
		}
	}
}

// checkGoroutines inspects one function body: it gathers the `go` statements
// whose innermost enclosing function is this body (recursing into nested
// function literals for their own checks) and verifies the join protocol for
// each against the full body.
func checkGoroutines(pass *Pass, body *ast.BlockStmt) {
	var goStmts []*ast.GoStmt
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			goStmts = append(goStmts, n)
			// The spawned literal's body belongs to the goroutine; it gets
			// its own check as a spawner in its own right.
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				checkGoroutines(pass, lit.Body)
			}
			return false
		case *ast.FuncLit:
			checkGoroutines(pass, n.Body)
			return false
		}
		return true
	})
	for _, g := range goStmts {
		checkOneGoroutine(pass, g, body)
	}
}

// signalToken is one completion signal found in a spawned body, resolved to
// the object it signals through. A nil obj means the signal exists but its
// token could not be resolved statically.
type signalToken struct {
	obj       types.Object
	waitGroup bool // true: WaitGroup Done/Add; false: channel send/close
}

// escapingSentinel marks tokens that are, by construction, join handles
// owned elsewhere (receiver fields or package state of a named callee).
var escapingSentinel types.Object = types.NewVar(0, nil, "<escaping>", nil)

func checkOneGoroutine(pass *Pass, g *ast.GoStmt, spawner *ast.BlockStmt) {
	tokens, known := spawnSignals(pass, g)
	if !known {
		// The spawned callee's body lies outside the module (or the call is
		// dynamically dispatched): fall back to requiring any join evidence
		// at all in the spawner.
		if !hasAnyJoin(pass, spawner) {
			pass.Reportf(g.Pos(), "goroutine runs an unresolvable callee and the spawner shows no join (WaitGroup.Wait, receive, range, or select); it can outlive its spawner")
		}
		return
	}
	if len(tokens) == 0 {
		pass.Reportf(g.Pos(), "goroutine never signals completion (no WaitGroup.Done, channel send, or close in its body); it cannot be joined and can leak")
		return
	}
	for _, tok := range tokens {
		if tok.obj == nil {
			if !hasAnyJoin(pass, spawner) {
				pass.Reportf(g.Pos(), "goroutine signals completion through an expression the analyzer cannot resolve and the spawner shows no join; it can outlive its spawner")
			}
			return
		}
		if isEscapingToken(tok.obj) || tokenJoined(pass, spawner, g, tok) {
			return
		}
	}
	tok := tokens[0]
	what := "channel " + tok.obj.Name()
	join := "receives from, ranges over, or selects on it"
	if tok.waitGroup {
		what = "WaitGroup " + tok.obj.Name()
		join = "calls " + tok.obj.Name() + ".Wait()"
	}
	pass.Reportf(g.Pos(), "goroutine signals completion on %s but the spawner never %s and the token does not escape as a join handle; the goroutine can leak", what, join)
}

// spawnSignals resolves the completion signals of the spawned computation.
// known reports whether a body was available to inspect.
func spawnSignals(pass *Pass, g *ast.GoStmt) (tokens []signalToken, known bool) {
	if fun, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		raw := bodySignals(pass.Pkg, fun.Body)
		return substituteParams(pass.Pkg, pass.Pkg, raw, fun.Type, g.Call.Args), true
	}
	callee := calleeOf(pass.Pkg, g.Call)
	if callee == nil || pass.Mod == nil {
		return nil, false
	}
	fi := pass.Mod.FuncInfoOf(callee)
	if fi == nil || fi.Decl.Body == nil {
		return nil, false
	}
	raw := bodySignals(fi.Pkg, fi.Decl.Body)
	// Signals on the callee's own parameters map back to the spawner's
	// argument objects; signals on anything else the callee owns (receiver
	// fields, locals, package state) mean the callee manages its own join
	// protocol — treat those as escaping handles.
	mapped := substituteParams(fi.Pkg, pass.Pkg, raw, fi.Decl.Type, g.Call.Args)
	for i := range mapped {
		if mapped[i].obj != nil && mapped[i].obj == raw[i].obj {
			mapped[i].obj = escapingSentinel
		}
	}
	return mapped, true
}

// substituteParams rewrites signal tokens that are parameters of fnType into
// the root objects of the corresponding call arguments, so the join check
// runs against the spawner's own variables. Parameter idents resolve in the
// declaring package, argument expressions in the calling package.
func substituteParams(declPkg, callPkg *Package, tokens []signalToken, fnType *ast.FuncType, args []ast.Expr) []signalToken {
	if fnType == nil || fnType.Params == nil {
		return tokens
	}
	paramIdx := make(map[types.Object]int)
	i := 0
	for _, field := range fnType.Params.List {
		for _, name := range field.Names {
			if obj := declPkg.objectOf(name); obj != nil {
				paramIdx[obj] = i
			}
			i++
		}
	}
	out := make([]signalToken, len(tokens))
	copy(out, tokens)
	for i, tok := range out {
		if tok.obj == nil {
			continue
		}
		if idx, ok := paramIdx[tok.obj]; ok && idx < len(args) {
			out[i].obj = rootObject(callPkg, args[idx])
		}
	}
	return out
}

// objectOf resolves an ident (definition or use) across both type-checked
// units of the package.
func (p *Package) objectOf(id *ast.Ident) types.Object {
	if p.Info != nil {
		if o := p.Info.ObjectOf(id); o != nil {
			return o
		}
	}
	if p.TestInfo != nil {
		return p.TestInfo.ObjectOf(id)
	}
	return nil
}

// bodySignals scans a spawned body for completion signals: WaitGroup
// Done/Add calls, channel sends, and close calls.
func bodySignals(pkg *Package, body *ast.BlockStmt) []signalToken {
	var out []signalToken
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			out = append(out, signalToken{obj: rootObject(pkg, n.Chan)})
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if (sel.Sel.Name == "Done" || sel.Sel.Name == "Add") && isWaitGroupRecv(pkg, sel.X) {
					out = append(out, signalToken{obj: rootObject(pkg, sel.X), waitGroup: true})
				}
			}
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "close" && len(n.Args) == 1 {
				if b, ok := pkg.useOf(id).(*types.Builtin); ok && b.Name() == "close" {
					out = append(out, signalToken{obj: rootObject(pkg, n.Args[0])})
				}
			}
		}
		return true
	})
	return out
}

// rootObject resolves the object a token expression names: the variable of
// an identifier, the field of a selector, the indexed collection of an index
// expression. Returns nil for anything else (call results, literals).
func rootObject(pkg *Package, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return pkg.objectOf(e)
	case *ast.SelectorExpr:
		return pkg.objectOf(e.Sel)
	case *ast.IndexExpr:
		return rootObject(pkg, e.X)
	case *ast.UnaryExpr:
		return rootObject(pkg, e.X)
	}
	return nil
}

// isEscapingToken reports whether the token object is by nature a join
// handle owned beyond the spawning function: struct fields and package-level
// variables outlive the call.
func isEscapingToken(obj types.Object) bool {
	if obj == escapingSentinel {
		return true
	}
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	if v.IsField() {
		return true
	}
	return v.Parent() != nil && v.Parent().Parent() == types.Universe
}

// tokenJoined reports whether the spawner body joins on the specific token —
// Wait() on the WaitGroup object, or a receive/range/select on the channel
// object — or lets the token escape (argument to a call, return value,
// composite literal element, assignment into a field or index), which hands
// the join duty to someone who can still perform it. The scan covers the
// whole spawning function including sibling goroutine bodies: a dedicated
// collector goroutine draining the channel is a legitimate consumer.
func tokenJoined(pass *Pass, body *ast.BlockStmt, g *ast.GoStmt, tok signalToken) bool {
	found := false
	sameObj := func(e ast.Expr) bool {
		return rootObject(pass.Pkg, e) == tok.obj
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.GoStmt:
			if n == g {
				// The goroutine cannot join itself; its own statement (call
				// arguments included — they were already resolved through
				// spawnSignals) contributes no join evidence.
				return false
			}
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" && !tok.waitGroup && sameObj(n.X) {
				found = true
			}
		case *ast.RangeStmt:
			if !tok.waitGroup && sameObj(n.X) {
				found = true
			}
		case *ast.SelectStmt:
			if !tok.waitGroup {
				for _, cl := range n.Body.List {
					if comm, ok := cl.(*ast.CommClause); ok && comm.Comm != nil {
						ast.Inspect(comm.Comm, func(m ast.Node) bool {
							if e, ok := m.(ast.Expr); ok && sameObj(e) {
								found = true
							}
							return !found
						})
					}
				}
			}
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if tok.waitGroup && sel.Sel.Name == "Wait" && sameObj(sel.X) {
					found = true
					return false
				}
			}
			// Token passed to another function: escaping join handle.
			for _, arg := range n.Args {
				if sameObj(arg) {
					found = true
				}
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if sameObj(r) {
					found = true
				}
			}
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				e := el
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					e = kv.Value
				}
				if sameObj(e) {
					found = true
				}
			}
		case *ast.AssignStmt:
			// Storing the token into a field, index, or dereference hands it
			// to a longer-lived owner.
			for i, rhs := range n.Rhs {
				if !sameObj(rhs) || i >= len(n.Lhs) {
					continue
				}
				switch ast.Unparen(n.Lhs[i]).(type) {
				case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
					found = true
				}
			}
		case *ast.SendStmt:
			if sameObj(n.Value) {
				found = true
			}
		}
		return !found
	})
	return found
}

// hasAnyJoin is the syntactic fallback for goroutines whose signal tokens
// cannot be resolved: any WaitGroup.Wait, receive, channel range, or select
// in the spawning body counts.
func hasAnyJoin(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				found = true
			}
		case *ast.SelectStmt:
			found = true
		case *ast.RangeStmt:
			if t := pass.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = true
				}
			}
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" && isWaitGroupRecv(pass.Pkg, sel.X) {
				found = true
			}
		}
		return !found
	})
	return found
}

// isWaitGroupRecv reports whether e's type is sync.WaitGroup or a pointer to
// it.
func isWaitGroupRecv(pkg *Package, e ast.Expr) bool {
	t := pkg.typeOf(e)
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}
