// Package good keeps wall-clock reads off deterministic paths.
package good

import "time"

// Train is the replayable entry point; everything it reaches is clock-free.
//
//lint:deterministic
func Train() float64 {
	return compute(3)
}

func compute(n int) float64 {
	total := 0.0
	for i := 0; i < n; i++ {
		total += float64(i)
	}
	return total
}

// Measure times real execution outside any deterministic path.
func Measure() time.Duration {
	start := time.Now()
	compute(10)
	return time.Since(start)
}

// SpanTrain reaches a wall-clock read that is declared an intentional
// observability-only exception.
//
//lint:deterministic
func SpanTrain() float64 {
	span()
	return compute(3)
}

func span() {
	//lint:ignore wallclock span timing is observability-only and never feeds results
	_ = time.Now()
}
