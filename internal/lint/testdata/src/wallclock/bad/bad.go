// Package bad reads the wall clock on a deterministic path.
package bad

import "time"

// Train is the replayable entry point.
//
//lint:deterministic
func Train() float64 {
	return step()
}

func step() float64 {
	start := time.Now() // want "time.Now inside step, reachable from //lint:deterministic root Train"
	work()
	return time.Since(start).Seconds() // want "time.Since inside step"
}

func work() {
	time.Sleep(time.Millisecond) // want "time.Sleep inside work"
}
