// Package good shows the accepted goroutine join protocols.
package good

import "sync"

// WaitGrouped pairs Done with a Wait on the same WaitGroup object.
func WaitGrouped(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			println("work")
		}()
	}
	wg.Wait()
}

// ChannelSend pairs a send with a receive on the same channel object.
func ChannelSend() int {
	out := make(chan int, 1)
	go func() {
		out <- 42
	}()
	return <-out
}

// Closer pairs close with a receive.
func Closer() {
	done := make(chan struct{})
	go func() {
		defer close(done)
		println("work")
	}()
	<-done
}

// Named spawns a named module function; the rule resolves its body, maps the
// signalled parameter back to ch, and finds the range join.
func Named() int {
	ch := make(chan int)
	go produce(ch)
	total := 0
	for v := range ch {
		total += v
	}
	return total
}

func produce(ch chan int) {
	ch <- 1
	close(ch)
}

// Selected joins through a select case on the signalled channel.
func Selected() {
	done := make(chan struct{})
	go func() {
		close(done)
	}()
	select {
	case <-done:
	}
}

// Handle returns the completion channel: the caller inherits the join duty.
func Handle() <-chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
		println("work")
	}()
	return done
}

// FieldToken signals on a struct field: the owning value outlives the
// spawner and carries the join handle with it.
type Worker struct {
	done chan struct{}
}

func (w *Worker) Start() {
	go func() {
		defer close(w.done)
		println("work")
	}()
}

// MethodState spawns a named method whose completion token is receiver
// state; the callee owns its join protocol.
func (w *Worker) run() {
	close(w.done)
}

func (w *Worker) StartNamed() {
	go w.run()
}

// Daemon is a deliberate fire-and-forget, declared as such.
func Daemon() {
	//lint:ignore goroutine-join metrics flusher runs for the process lifetime by design
	go func() {
		println("background")
	}()
}
