// Package bad spawns goroutines that violate the token join protocol.
package bad

import "sync"

// Leak fires and forgets: no signal, no join.
func Leak() {
	go func() { // want "never signals completion"
		println("orphan")
	}()
}

// NoJoin signals through the WaitGroup but the spawner never waits on it.
func NoJoin() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // want "spawner never calls wg.Wait()"
		defer wg.Done()
		println("work")
	}()
}

// NoSignal joins a channel the goroutine never touches: the goroutine body
// has no signal, so the receive below proves nothing about it.
func NoSignal() {
	done := make(chan struct{})
	go func() { // want "never signals completion"
		println("work")
	}()
	<-done
}

// WrongToken signals on one channel and waits on another; per-token
// resolution catches what a "some receive exists" heuristic would miss.
func WrongToken() {
	done := make(chan struct{})
	other := make(chan struct{}, 1)
	go func() { // want "spawner never receives from, ranges over, or selects on it"
		close(done)
	}()
	other <- struct{}{}
	<-other
}

// NamedNoConsumer spawns a named producer but never drains the channel.
func NamedNoConsumer() {
	ch := make(chan int)
	go produce(ch) // want "the goroutine can leak"
	println("not consuming")
}

func produce(ch chan int) {
	ch <- 1
	close(ch)
}
