package good

import "testing"

// Test files are covered too; intentional exact comparisons — bit-for-bit
// determinism assertions — carry an explicit directive.
func TestExactCompareNeedsDirective(t *testing.T) {
	a, b := 0.5, 0.5
	//lint:ignore float-eq replay assertions compare bit-identical values on purpose
	if a != b {
		t.Fatal("identical literals must be bit-identical")
	}
}
