package good

import "testing"

// Test files may compare floats exactly: bit-for-bit determinism tests
// depend on it.
func TestExactCompareAllowedInTests(t *testing.T) {
	a, b := 0.5, 0.5
	if a != b {
		t.Fatal("identical literals must be bit-identical")
	}
}
