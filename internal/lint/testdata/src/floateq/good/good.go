// Package good compares floats with tolerances, or declares exact
// comparisons explicitly.
package good

import "math"

// SameLoss uses an epsilon, the way stats.ApproxEqual does.
func SameLoss(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9
}

// CountMatches compares integers; not a float rule concern.
func CountMatches(a, b int) bool {
	return a == b
}

// SkipZero declares its sparsity fast path.
func SkipZero(xs []float64) float64 {
	sum := 0.0
	for _, x := range xs {
		//lint:ignore float-eq sparsity fast path over exact zeros
		if x == 0 {
			continue
		}
		sum += x
	}
	return sum
}

// Ordering comparisons are fine.
func Better(a, b float64) bool {
	return a < b
}
