// Package bad compares floats exactly.
package bad

// SameLoss compares two accumulated metrics bit-for-bit.
func SameLoss(a, b float64) bool {
	return a == b // want "floating-point == comparison"
}

// Nonzero tests a float32 against a literal.
func Nonzero(x float32) bool {
	return x != 0 // want "floating-point != comparison"
}

const target = 0.3

// Converged compares against a named constant; 0.1+0.2 != 0.3.
func Converged(loss float64) bool {
	return loss == target // want "floating-point == comparison"
}
