// Package stats stands in for repro/internal/stats: the one package that is
// allowed to touch math/rand directly, because it wraps it behind seeded
// streams. No diagnostics expected.
package stats

import "math/rand/v2"

// NewSource returns a seeded PCG source.
func NewSource(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed))
}
