// Package bad imports raw RNG packages outside internal/stats.
package bad

import (
	"math/rand"       // want "outside internal/stats"
	v2 "math/rand/v2" // want "outside internal/stats"
)

// X draws from the global, unseeded source: not replayable.
var X = rand.Int()

// Y does the same through v2.
var Y = v2.Int()
