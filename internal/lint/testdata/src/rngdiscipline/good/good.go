// Package good draws no randomness of its own; a real package would take a
// *stats.RNG argument and let the caller own the seed.
package good

// Mix is a deterministic hash-style mixer, not a random draw.
func Mix(seed uint64) uint64 {
	seed ^= seed >> 33
	seed *= 0xff51afd7ed558ccd
	seed ^= seed >> 33
	return seed
}
