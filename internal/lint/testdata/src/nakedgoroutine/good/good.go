// Package good shows the accepted goroutine join protocols.
package good

import "sync"

// WaitGrouped pairs Done with Wait.
func WaitGrouped(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			println("work")
		}()
	}
	wg.Wait()
}

// ChannelSend pairs a send with a receive.
func ChannelSend() int {
	out := make(chan int, 1)
	go func() {
		out <- 42
	}()
	return <-out
}

// Closer pairs close with a receive.
func Closer() {
	done := make(chan struct{})
	go func() {
		defer close(done)
		println("work")
	}()
	<-done
}

// Named spawns a named function (body unknown to the rule) and ranges over
// the channel it feeds.
func Named() int {
	ch := make(chan int)
	go produce(ch)
	total := 0
	for v := range ch {
		total += v
	}
	return total
}

func produce(ch chan int) {
	ch <- 1
	close(ch)
}

// Selected joins through a select.
func Selected() {
	done := make(chan struct{})
	go func() {
		close(done)
	}()
	select {
	case <-done:
	}
}

// Daemon is a deliberate fire-and-forget, declared as such.
func Daemon() {
	//lint:ignore naked-goroutine metrics flusher runs for the process lifetime by design
	go func() {
		println("background")
	}()
}
