// Package bad spawns goroutines that violate the signal/join protocol.
package bad

import "sync"

// Leak fires and forgets: no signal, no join.
func Leak() {
	go func() { // want "neither signals completion"
		println("orphan")
	}()
}

// NoJoin signals through the WaitGroup but the spawner never waits.
func NoJoin() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // want "never joins"
		defer wg.Done()
		println("work")
	}()
}

// NoSignal joins a channel the goroutine never touches.
func NoSignal() {
	done := make(chan struct{})
	go func() { // want "never signals completion"
		println("work")
	}()
	<-done
}
