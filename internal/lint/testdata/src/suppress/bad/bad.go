// Package bad exercises the //lint:ignore directive machinery itself.
package bad

//lint:ignore float-eq
// want "malformed directive"

//lint:ignore
// want "malformed directive"

// Suppressed is exempted with a well-formed, reasoned directive.
func Suppressed(a, b float64) bool {
	//lint:ignore float-eq testing that a reasoned directive suppresses the diagnostic
	return a == b
}

// WrongRule names a different rule, so the float-eq diagnostic survives.
func WrongRule(a, b float64) bool {
	//lint:ignore dropped-error wrong rule name does not suppress float-eq
	return a == b // want "floating-point == comparison"
}

// Unsuppressed has no directive at all.
func Unsuppressed(a, b float64) bool {
	return a != b // want "floating-point != comparison"
}
