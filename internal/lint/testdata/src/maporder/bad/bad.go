// Package bad lets map iteration order leak into results.
package bad

import "strings"

// FloatAccum sums in map order: FP addition is not associative, so the total
// differs run to run.
func FloatAccum(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v // want "floating-point accumulation inside a map range"
	}
	return total
}

// SpelledOut is the same accumulation written without the compound operator.
func SpelledOut(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total = total + v // want "floating-point accumulation inside a map range"
	}
	return total
}

// AppendUnsorted collects keys and never sorts them.
func AppendUnsorted(m map[int]string) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k) // want "append to keys inside a map range"
	}
	return keys
}

// Encode writes bytes in map iteration order.
func Encode(m map[string]int) string {
	var sb strings.Builder
	for k := range m {
		sb.WriteString(k) // want "WriteString inside a map range"
	}
	return sb.String()
}
