// Package good iterates maps without letting their order leak out.
package good

import (
	"sort"
	"strings"
)

// SortedKeys collects keys, sorts them, then accumulates in sorted order.
// The append inside the range is mitigated by the sort that follows it.
func SortedKeys(m map[string]float64) float64 {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	total := 0.0
	for _, k := range keys {
		total += m[k]
	}
	return total
}

// PerKey accumulates into map elements: each key is independent of its
// siblings, so iteration order cannot change any element's value.
func PerKey(src, dst map[string]float64) {
	for k, v := range src {
		dst[k] += v
	}
}

// IterationLocal resets its accumulator each iteration; order across keys
// never mixes into one float.
func IterationLocal(m map[string][]float64) map[string]float64 {
	out := make(map[string]float64, len(m))
	for k, vs := range m {
		sum := 0.0
		for _, v := range vs {
			sum += v
		}
		out[k] = sum
	}
	return out
}

// LocalEncode builds a fresh per-iteration string; nothing order-sensitive
// survives the iteration.
func LocalEncode(m map[string]int, emit func(string)) {
	for k := range m {
		var sb strings.Builder
		sb.WriteString(k)
		emit(sb.String())
	}
}
