// Package bad allocates inside //lint:hotpath functions.
package bad

import "fmt"

//lint:hotpath
func MakeSlice(n int) []float64 {
	return make([]float64, n) // want "make in //lint:hotpath MakeSlice allocates"
}

//lint:hotpath
func Grow(dst []int, v int) []int {
	return append(dst, v) // want "append in //lint:hotpath Grow can grow its backing array"
}

//lint:hotpath
func Format(x float64) string {
	return fmt.Sprintf("%v", x) // want "fmt.Sprintf in //lint:hotpath Format allocates its result"
}

type vec struct{ x, y float64 }

//lint:hotpath
func NewVec(x, y float64) *vec {
	return &vec{x: x, y: y} // want "composite literal in //lint:hotpath NewVec allocates"
}

//lint:hotpath
func Concat(a, b string) string {
	return a + b // want "string concatenation in //lint:hotpath Concat allocates"
}

//lint:hotpath
func ToBytes(s string) []byte {
	return []byte(s) // want "conversion in //lint:hotpath ToBytes copies and allocates"
}

//lint:hotpath
func Spawn(f func()) {
	go f() // want "go statement in //lint:hotpath Spawn"
}

//lint:hotpath
func Deferred(f func()) {
	defer f() // want "defer in //lint:hotpath Deferred"
}

//lint:hotpath
func Capture(xs []float64) func() float64 {
	i := 0
	return func() float64 { // want "capturing closure in //lint:hotpath Capture"
		i++
		return xs[i-1]
	}
}

//lint:hotpath
func CallsCold(x float64) float64 {
	return cold(x) // want "calls cold, which is not annotated //lint:hotpath"
}

func cold(x float64) float64 { return x * 2 }

//lint:hotpath
func CallVariadic() int {
	return sum(1, 2, 3) // want "materializes an argument slice per call"
}

//lint:hotpath
func sum(xs ...int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}
