// Package good shows zero-alloc idioms that hotpath-alloc accepts.
package good

import "fmt"

// Axpy is a fused kernel: pure index arithmetic.
//
//lint:hotpath
func Axpy(alpha float64, x, y []float64) {
	for i := range x {
		y[i] += alpha * x[i]
	}
}

// Scale and Fused show hotpath functions composing freely.
//
//lint:hotpath
func Scale(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

//lint:hotpath
func Fused(alpha float64, x, y []float64) {
	Scale(alpha, x)
	Axpy(alpha, x, y)
}

// Ensure grows its buffer only behind a capacity guard: the steady state
// never takes the branch, so the make is amortized cold-path setup.
//
//lint:hotpath
func Ensure(buf []float64, n int) []float64 {
	if cap(buf) < n {
		buf = make([]float64, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

// Lazy memoizes behind a nil guard.
type state struct{ buf []float64 }

//lint:hotpath
func (s *state) Get(n int) []float64 {
	if s.buf == nil {
		s.buf = make([]float64, n)
	}
	return s.buf
}

// Checked allocates only while building a panic message: the hot path is
// already dead when the argument is evaluated.
//
//lint:hotpath
func Checked(n, m int) {
	if n != m {
		panic(fmt.Sprintf("good: length mismatch %d vs %d", n, m))
	}
}

// Visit makes dynamic calls through a func parameter; those are outside the
// transitive-annotation check by design.
//
//lint:hotpath
func Visit(xs []float64, each func(int, float64)) {
	for i, x := range xs {
		each(i, x)
	}
}

// UseClosure passes its literal directly to a statically resolved call; the
// callee can keep it on the stack.
//
//lint:hotpath
func UseClosure(xs []float64) {
	Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}

//lint:hotpath
func Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, 0)
	}
}
