// Package bad registers metrics that violate the fel_<layer>_<name> schema.
package bad

import "metricschema/bad/internal/metrics"

func Register(r *metrics.Registry) {
	r.Counter("requests_total")        // want "must start with fel_"
	r.Counter("fel_core_steps")        // want "must end in _total"
	r.Gauge("fel_mystery_depth", 1)    // want "unknown layer"
	r.Gauge("fel_core_queue_total", 1) // want "must not end in _total"
	r.Histogram("fel_core_Loss", 0.5)  // want "only [a-z0-9_] is allowed"
	r.Counter("fel_core_rounds_")      // want "must not end with '_'"
	stop := r.Start("fel_core_train_total") // want "must end in _seconds"
	stop()
	r.Counter("fel_core_steps_total", metrics.L("group", "g1"), metrics.L("client", "c1")) // want "out of canonical order"
	r.Counter("fel_async_folds")       // want "must end in _total"
	r.Histogram("fel_async_late_total", 1) // want "must not end in _total"
}
