// Package metrics stubs the real registry API so the fixture type-checks.
package metrics

// Label is one metric label pair.
type Label struct{ Key, Value string }

// L builds a label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Registry mirrors the real registry's method set.
type Registry struct{}

func (r *Registry) Counter(name string, labels ...Label)              {}
func (r *Registry) Gauge(name string, v float64, labels ...Label)     {}
func (r *Registry) Histogram(name string, v float64, labels ...Label) {}
func (r *Registry) Start(name string, labels ...Label) func()         { return func() {} }
func (r *Registry) CounterValue(name string, labels ...Label) float64 { return 0 }
func (r *Registry) GaugeValue(name string, labels ...Label) float64   { return 0 }
