// Package good registers metrics that follow the fel_<layer>_<name> schema.
package good

import "metricschema/good/internal/metrics"

func Register(r *metrics.Registry) float64 {
	r.Counter("fel_core_rounds_total")
	r.Counter("fel_fednode_uploads_total", metrics.L("client", "c1"), metrics.L("group", "g1"))
	r.Gauge("fel_net_queue_depth", 1)
	r.Counter("fel_serve_rounds_total")
	r.Counter("fel_serve_subscribers_rejected_total", metrics.L("reason", "busy"))
	r.Gauge("fel_serve_active_jobs", 1)
	r.Histogram("fel_secagg_share_bytes", 32)
	r.Histogram("fel_async_staleness", 1)
	r.Counter("fel_async_carryover_total")
	r.Gauge("fel_async_round_ticks", 12)
	stop := r.Start("fel_core_round_seconds")
	stop()
	// Dynamic names are the registry's runtime problem, not the linter's.
	r.Gauge(dynamicName(), 1)
	return r.CounterValue("fel_core_rounds_total")
}

func dynamicName() string { return "fel_faultnet_active_faults" }
