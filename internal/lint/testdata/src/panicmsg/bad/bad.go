// Package bad panics without the repository's "pkg: " message convention.
package bad

import (
	"errors"
	"fmt"
)

// NoPrefix gives the operator no subsystem to blame.
func NoPrefix() {
	panic("something went wrong") // want "pkg"
}

// RawError re-panics a bare error value.
func RawError() {
	err := errors.New("disk full")
	panic(err) // want "pkg"
}

// FormatNoPrefix formats, but the format string has no tag.
func FormatNoPrefix(n int) {
	panic(fmt.Sprintf("bad value %d", n)) // want "pkg"
}

// NotAString panics a number.
func NotAString() {
	panic(42) // want "pkg"
}

// UpperPrefix uses an exported-style tag; the convention is lowercase.
func UpperPrefix() {
	panic("Bad: value") // want "pkg"
}
