// Package good panics with the "pkg: " convention in every shape the rule
// understands.
package good

import "fmt"

const prefix = "good: named constant"

// Literal uses a plain prefixed string.
func Literal() {
	panic("good: literal message")
}

// Formatted carries the prefix in the format string.
func Formatted(n int) {
	panic(fmt.Sprintf("good: bad value %d", n))
}

// Concatenated keeps the prefix as the leftmost operand.
func Concatenated(detail string) {
	panic("good: " + detail)
}

// NamedConst panics a prefixed named constant.
func NamedConst() {
	panic(prefix)
}

// WrappedError formats an error with the prefix via fmt.Errorf.
func WrappedError(err error) {
	panic(fmt.Errorf("good: wrapped: %w", err))
}
