// Package good handles, returns, allowlists, or audits every error.
package good

import (
	"bytes"
	"fmt"
	"os"
	"strings"
)

// Checked propagates the error.
func Checked(path string) error {
	if err := os.Remove(path); err != nil {
		return fmt.Errorf("good: remove: %w", err)
	}
	return nil
}

// Printing to stdout/stderr is allowlisted: the failure is unactionable.
func Printing(msg string) {
	fmt.Println(msg)
	fmt.Fprintf(os.Stderr, "good: %s\n", msg)
}

// InMemory writers are documented to never fail.
func InMemory(parts []string) string {
	var b strings.Builder
	var buf bytes.Buffer
	for _, p := range parts {
		b.WriteString(p)
		fmt.Fprintf(&buf, "%s,", p)
	}
	return b.String() + buf.String()
}

// Audited declares why the read-path close error is ignorable.
func Audited(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	//lint:ignore dropped-error read-path close failures cannot corrupt already-read data
	defer f.Close()
	buf := make([]byte, 16)
	n, err := f.Read(buf)
	return buf[:n], err
}
