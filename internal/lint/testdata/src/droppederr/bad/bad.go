// Package bad discards errors silently.
package bad

import (
	"os"
	"strconv"
)

// Cleanup ignores the removal result entirely.
func Cleanup(path string) {
	os.Remove(path) // want "never checked"
}

// BlankSingle discards through the blank identifier.
func BlankSingle(path string) {
	_ = os.Remove(path) // want "discarded with _"
}

// BlankTuple drops the error half of a tuple.
func BlankTuple(s string) int {
	n, _ := strconv.Atoi(s) // want "discarded with _"
	return n
}

// DeferredClose leaks the close error of a written file.
func DeferredClose(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close() // want "deferred call discards"
	_, err = f.WriteString("data")
	return err
}
