// Package bad carries suppression directives that no longer earn their keep.
package bad

// Stale: the integer comparison below never trips float-eq, so the
// directive suppresses nothing.
func Stale(a, b int) bool {
	//lint:ignore float-eq integers compare exactly
	// want "stale //lint:ignore float-eq"
	return a == b
}

// Typo names a rule that does not exist; the real diagnostic fires anyway.
func Typo(a, b float64) bool {
	//lint:ignore floateq misspelled rule name
	// want "unknown rule"
	return a == b // want "floating-point"
}

// Live suppresses a real diagnostic and stays unflagged.
func Live(a, b float64) bool {
	//lint:ignore float-eq exact comparison asserts bit-identical replay
	return a == b
}
