// Package good carries only live suppression directives.
package good

// Exact asserts bit-identical replay; the directive suppresses the real
// float-eq diagnostic on the comparison line.
func Exact(a, b float64) bool {
	//lint:ignore float-eq bit-identical replay check
	return a == b
}
