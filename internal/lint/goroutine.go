package lint

import (
	"go/ast"
	"go/types"
)

// NakedGoroutine requires every `go` statement to be part of a visible
// join protocol: the spawned body must signal completion (WaitGroup.Done, a
// channel send, or close) and the spawning function must join (WaitGroup.Wait,
// a channel receive, range over a channel, or select). This keeps the
// parallel aggregation paths (tensor.parallelRows, core.parallelEach and
// whatever comes next) leak-free by construction. The check is a heuristic
// over the enclosing function body; genuinely fire-and-forget goroutines
// must carry a //lint:ignore naked-goroutine <reason> directive.
var NakedGoroutine = &Analyzer{
	Name: "naked-goroutine",
	Doc:  "every go statement must signal completion and be joined by its spawner",
	Run:  runNakedGoroutine,
}

func runNakedGoroutine(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		if pass.Pkg.IsTestFile(f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Body != nil {
				checkFuncForGoroutines(pass, fd.Body)
			}
		}
	}
}

// checkFuncForGoroutines inspects one function body: it gathers the `go`
// statements whose innermost enclosing function is this body (recursing
// into nested function literals for their own checks) and verifies the
// signal/join protocol for each.
func checkFuncForGoroutines(pass *Pass, body *ast.BlockStmt) {
	var goStmts []*ast.GoStmt
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			goStmts = append(goStmts, n)
			// The spawned body belongs to the goroutine, not this
			// function; it gets its own recursive check.
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				checkFuncForGoroutines(pass, lit.Body)
			}
			for _, arg := range n.Call.Args {
				ast.Inspect(arg, walk)
			}
			return false
		case *ast.FuncLit:
			checkFuncForGoroutines(pass, n.Body)
			return false
		}
		return true
	}
	ast.Inspect(body, walk)
	if len(goStmts) == 0 {
		return
	}

	joins := hasJoin(pass, body)
	for _, g := range goStmts {
		signals := true
		if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
			signals = hasSignal(pass, lit.Body)
		}
		switch {
		case !signals && !joins:
			pass.Reportf(g.Pos(), "goroutine neither signals completion (WaitGroup.Done, channel send, close) nor is joined by its spawner (WaitGroup.Wait, channel receive, select); it can leak")
		case !signals:
			pass.Reportf(g.Pos(), "goroutine body never signals completion (WaitGroup.Done, channel send, or close); the spawner's join cannot cover it")
		case !joins:
			pass.Reportf(g.Pos(), "function spawns a goroutine but never joins (no WaitGroup.Wait, channel receive, range over channel, or select); the goroutine can outlive its spawner")
		}
	}
}

// hasJoin reports whether the function body contains join evidence on the
// spawning side. Spawned goroutine bodies are excluded: a receive loop
// inside the worker itself does not join the worker.
func hasJoin(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.GoStmt:
			for _, arg := range n.Call.Args {
				if hasJoinExpr(pass, arg) {
					found = true
				}
			}
			return false
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				found = true
			}
		case *ast.SelectStmt:
			found = true
		case *ast.RangeStmt:
			if t := pass.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = true
				}
			}
		case *ast.CallExpr:
			if isWaitGroupCall(pass, n, "Wait") {
				found = true
			}
		}
		return !found
	})
	return found
}

func hasJoinExpr(pass *Pass, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if u, ok := n.(*ast.UnaryExpr); ok && u.Op.String() == "<-" {
			found = true
		}
		return !found
	})
	return found
}

// hasSignal reports whether a spawned function-literal body contains
// completion-signal evidence: WaitGroup.Done (possibly deferred), a channel
// send, or close.
func hasSignal(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			found = true
		case *ast.CallExpr:
			if isWaitGroupCall(pass, n, "Done") {
				found = true
			}
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "close" {
				if b, ok := pass.Pkg.Info.Uses[id].(*types.Builtin); ok && b.Name() == "close" {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// isWaitGroupCall reports whether call is method on a sync.WaitGroup value
// or pointer.
func isWaitGroupCall(pass *Pass, call *ast.CallExpr, method string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return false
	}
	t := pass.TypeOf(sel.X)
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}
