// Package hfl runs Group-FEL rounds as an actual distributed protocol over
// the simulated edge network: the cloud pushes the global model to edge
// servers, edges broadcast to their group's clients, clients train locally
// and submit *secure-aggregation-masked* updates, edges unmask the group
// sum and (after K group rounds) return group models to the cloud. It ties
// together the simnet, secagg, nn, and grouping substrates into the
// end-to-end system of the paper's Fig. 1, and reports the wall-clock time
// the message flow would take on the modelled links.
//
// The in-process trainer (internal/core) is the fast path used by the
// experiment harness; this package exists to demonstrate and test that the
// same round semantics survive a real message-passing, privacy-preserving
// execution.
package hfl

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/grouping"
	"repro/internal/secagg"
	"repro/internal/simnet"
	"repro/internal/stats"
)

// RoundConfig parameterizes one distributed global round.
type RoundConfig struct {
	// GroupRounds (K) and LocalEpochs (E) as in Alg. 1.
	GroupRounds, LocalEpochs int
	// BatchSize and LR for local SGD.
	BatchSize int
	LR        float64
	// Seed drives local shuffling and the secure aggregation sessions.
	Seed uint64
	// Topology models the links; zero value uses simnet.Default().
	Topology simnet.Topology
	// Profile supplies per-client compute times; zero value uses the CIFAR
	// profile.
	Profile cost.Profile
	// Quantizer for the masked updates; zero value uses the default.
	Quantizer secagg.Quantizer
	// ThresholdFrac is the Shamir threshold as a fraction of group size
	// (minimum 2 clients); zero means 2/3.
	ThresholdFrac float64
	// DropoutProb makes each client fail to submit its masked update with
	// this probability; the session's Shamir-based recovery removes the
	// dropped clients' masks and the edge renormalizes the surviving
	// weights. Dropouts are capped so the threshold always holds.
	DropoutProb float64
}

// RoundResult reports a distributed round's outcome.
type RoundResult struct {
	// Params is the new global parameter vector.
	Params []float64
	// WallClock is the simulated time until the last group model reached
	// the cloud.
	WallClock float64
	// Messages is the number of network messages delivered.
	Messages int
	// MaskStreams totals the PRG expansions across all secure
	// aggregations (quadratic in group sizes).
	MaskStreams int
	// QuantError is the max absolute difference between the secure group
	// aggregates and their plaintext counterparts, a fixed-point fidelity
	// check.
	QuantError float64
}

// RunGlobalRound executes one global round of Alg. 1 for the selected
// groups as a message exchange. Group weights at the cloud are the biased
// n_g/n_t of Alg. 1 line 15.
func RunGlobalRound(sys *core.System, groups []*grouping.Group, selected []int, globalParams []float64, cfg RoundConfig) (*RoundResult, error) {
	if len(selected) == 0 {
		return nil, fmt.Errorf("hfl: no groups selected")
	}
	if cfg.Topology == (simnet.Topology{}) {
		cfg.Topology = simnet.Default()
	}
	if err := cfg.Topology.Validate(); err != nil {
		return nil, fmt.Errorf("hfl: %w", err)
	}
	if cfg.Profile.Name == "" {
		cfg.Profile = cost.CIFARProfile()
	}
	if cfg.Quantizer == (secagg.Quantizer{}) {
		cfg.Quantizer = secagg.DefaultQuantizer()
	}
	if cfg.GroupRounds <= 0 || cfg.LocalEpochs <= 0 || cfg.LR <= 0 {
		return nil, fmt.Errorf("hfl: K, E, LR must be positive")
	}

	dim := len(globalParams)
	modelBytes := dim * 8
	res := &RoundResult{}

	// The heavy lifting (local SGD, masking, unmasking) happens inline in
	// the node handlers; simnet sequences the message flow and yields the
	// wall-clock time. Group g's flow:
	//   cloud --model--> edge --model--> clients (parallel)
	//   clients train (compute delay), submit masked updates
	//   edge unmasks the sum, repeats K times, then --group model--> cloud.
	nt := 0
	for _, gi := range selected {
		nt += groups[gi].NumSamples()
	}
	next := make([]float64, dim)
	arrived := 0

	sim2 := simnet.New()
	type groupUpdate struct {
		gi     int
		params []float64
	}
	sim2.AddNode("cloud", func(s *simnet.Simulator, at float64, msg simnet.Message) {
		up := msg.Payload.(groupUpdate)
		w := float64(groups[up.gi].NumSamples()) / float64(nt)
		for j, v := range up.params {
			next[j] += w * v
		}
		arrived++
	})

	var firstErr error
	for _, gi := range selected {
		g := groups[gi]
		edgeName := fmt.Sprintf("edge-%d", g.ID)
		gi := gi
		g2 := g
		sim2.AddNode(edgeName, func(s *simnet.Simulator, at float64, msg simnet.Message) {
			params := msg.Payload.([]float64)
			// Run K group rounds. Each round's client compute happens
			// conceptually in parallel; the slowest client gates the round.
			// We execute the training inline and advance time via the send
			// timestamps.
			groupParams := append([]float64(nil), params...)
			now := at
			for k := 0; k < cfg.GroupRounds; k++ {
				newParams, roundTime, masks, qerr, err := secureGroupRound(sys, g2, groupParams, cfg, uint64(k))
				if err != nil {
					if firstErr == nil {
						firstErr = err
					}
					return
				}
				res.MaskStreams += masks
				if qerr > res.QuantError {
					res.QuantError = qerr
				}
				// Broadcast + compute + upload per group round over the
				// client-edge link.
				now += 2*cfg.Topology.ClientEdge.TransferTime(modelBytes) + roundTime
				groupParams = newParams
			}
			s.Send(now, simnet.Message{
				From: edgeName, To: "cloud", Kind: "group-update",
				Bytes: modelBytes, Payload: groupUpdate{gi: gi, params: groupParams},
			}, cfg.Topology.EdgeCloud)
		})
	}

	// Kick off: cloud pushes the global model to every selected edge.
	for _, gi := range selected {
		sim2.Send(0, simnet.Message{
			From: "cloud", To: fmt.Sprintf("edge-%d", groups[gi].ID), Kind: "global-model",
			Bytes: modelBytes, Payload: globalParams,
		}, cfg.Topology.EdgeCloud)
	}
	res.WallClock = sim2.Run()
	res.Messages = sim2.Delivered
	if firstErr != nil {
		return nil, firstErr
	}
	if arrived != len(selected) {
		return nil, fmt.Errorf("hfl: %d of %d group updates arrived", arrived, len(selected))
	}
	res.Params = next
	return res, nil
}

// secureGroupRound trains every client of g from groupParams and securely
// aggregates the weighted updates: client i submits (n_i/n_g)·params masked;
// the unmasked sum is exactly the group aggregation of Alg. 1 line 14.
// Returns the new group params, the compute time of the slowest client, the
// PRG mask stream count, and the worst quantization error.
func secureGroupRound(sys *core.System, g *grouping.Group, groupParams []float64, cfg RoundConfig, tag uint64) ([]float64, float64, int, float64, error) {
	n := g.Size()
	dim := len(groupParams)
	if n < 2 {
		// Secure aggregation needs at least two parties; a singleton group
		// trains in the clear (nothing to hide from itself).
		c := g.Clients[0]
		model := sys.NewModel(sys.ModelSeed)
		model.SetParamVector(groupParams)
		x, y := sys.ClientBatch(c)
		core.SGDUpdater{}.LocalTrain(model, x, y, core.LocalContext{
			ClientID: c.ID, Anchor: groupParams,
			Epochs: cfg.LocalEpochs, BatchSize: cfg.BatchSize, LR: cfg.LR,
			Rng: stats.NewRNG(cfg.Seed ^ tag ^ uint64(c.ID+1)),
		})
		return model.ParamVector(), float64(cfg.LocalEpochs) * cfg.Profile.Training(c.NumSamples()), 0, 0, nil
	}

	threshFrac := cfg.ThresholdFrac
	if threshFrac <= 0 {
		threshFrac = 2.0 / 3
	}
	threshold := int(math.Ceil(threshFrac * float64(n)))
	if threshold < 2 {
		threshold = 2
	}
	if threshold > n {
		threshold = n
	}
	sess := secagg.NewSession(n, dim, threshold, cfg.Seed^(tag*0x9e3779b97f4a7c15)^uint64(g.ID), cfg.Quantizer)

	ng := float64(g.NumSamples())
	masked := make([][]uint64, n)
	plain := make([]float64, dim)
	slowest := 0.0
	var dropped []int
	survivedSamples := 0
	dropRng := stats.NewRNG(cfg.Seed ^ 0xd20b ^ tag ^ uint64(g.ID+1)*0xff51afd7ed558ccd)
	model := sys.NewModel(sys.ModelSeed)
	for i, c := range g.Clients {
		model.SetParamVector(groupParams)
		x, y := sys.ClientBatch(c)
		core.SGDUpdater{}.LocalTrain(model, x, y, core.LocalContext{
			ClientID: c.ID, Anchor: groupParams,
			Epochs: cfg.LocalEpochs, BatchSize: cfg.BatchSize, LR: cfg.LR,
			Rng: stats.NewRNG(cfg.Seed ^ tag ^ uint64(c.ID+1)*0x165667b19e3779f9),
		})
		if t := float64(cfg.LocalEpochs) * cfg.Profile.Training(c.NumSamples()); t > slowest {
			slowest = t
		}
		// Simulated mid-round dropout: the client trained but never
		// submits. We cap dropouts so the Shamir threshold always holds —
		// beyond that the real protocol would abort the round.
		if cfg.DropoutProb > 0 && dropRng.Float64() < cfg.DropoutProb && n-len(dropped)-1 >= threshold {
			dropped = append(dropped, i)
			continue
		}
		w := float64(c.NumSamples()) / ng
		contrib := model.ParamVector()
		for j := range contrib {
			contrib[j] *= w
			plain[j] += contrib[j]
		}
		masked[i] = sess.MaskedUpdate(i, contrib)
		survivedSamples += c.NumSamples()
	}
	sum, err := sess.Aggregate(masked, dropped)
	if err != nil {
		return nil, 0, 0, 0, fmt.Errorf("hfl: group %d secure aggregation: %w", g.ID, err)
	}
	// Dropout renormalization: the unmasked sum is Σ_surv (n_i/n_g)x_i;
	// rescale so the surviving clients' weights sum to one.
	if len(dropped) > 0 && survivedSamples > 0 {
		scale := ng / float64(survivedSamples)
		for j := range sum {
			sum[j] *= scale
		}
		for j := range plain {
			plain[j] *= scale
		}
	}
	qerr := 0.0
	for j := range sum {
		if e := math.Abs(sum[j] - plain[j]); e > qerr {
			qerr = e
		}
	}
	return sum, slowest, sess.Ops().MaskStreams, qerr, nil
}
