package hfl

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/data"
	"repro/internal/grouping"
	"repro/internal/nn"
	"repro/internal/stats"
)

func testSystem(numClients int, seed uint64) *core.System {
	gen := data.FlatConfig(4, 8, seed)
	gen.Noise = 0.8
	return core.NewSystem(core.SystemConfig{
		Generator: gen,
		Partition: data.PartitionConfig{
			NumClients: numClients, Alpha: 0.4,
			MinSamples: 8, MaxSamples: 24, MeanSamples: 15, StdSamples: 5,
			Seed: seed + 1,
		},
		NumEdges:  2,
		TestSize:  200,
		NewModel:  func(s uint64) *nn.Sequential { return nn.NewMLP(8, []int{10}, 4, s) },
		ModelSeed: 7,
	})
}

func formGroups(sys *core.System) []*grouping.Group {
	alg := grouping.CoVGrouping{Config: grouping.Config{MinGS: 3, MaxCoV: 0.6, MergeLeftover: true}}
	return grouping.FormAll(alg, sys.Edges, sys.Classes, stats.NewRNG(3))
}

func roundConfig() RoundConfig {
	return RoundConfig{
		GroupRounds: 2, LocalEpochs: 1, BatchSize: 8, LR: 0.05, Seed: 9,
	}
}

func TestRunGlobalRoundBasic(t *testing.T) {
	sys := testSystem(12, 1)
	groups := formGroups(sys)
	if len(groups) < 2 {
		t.Fatalf("need >= 2 groups, got %d", len(groups))
	}
	global := sys.NewModel(sys.ModelSeed).ParamVector()
	res, err := RunGlobalRound(sys, groups, []int{0, 1}, global, roundConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Params) != len(global) {
		t.Fatalf("params length %d", len(res.Params))
	}
	if res.WallClock <= 0 {
		t.Fatal("no wall-clock time recorded")
	}
	// cloud→edge, edge→cloud for each of 2 groups = 4 messages minimum.
	if res.Messages < 4 {
		t.Fatalf("only %d messages delivered", res.Messages)
	}
	if res.MaskStreams == 0 {
		t.Fatal("secure aggregation never ran")
	}
	// Fixed-point fidelity: the secure sums must match plaintext sums to
	// quantizer resolution.
	if res.QuantError > 1e-3 {
		t.Fatalf("quantization error %v too large", res.QuantError)
	}
}

func TestDistributedMatchesInProcessAggregation(t *testing.T) {
	// The distributed round must produce (numerically) the same parameters
	// as the in-process trainer's group logic for identical inputs: same
	// K, E, LR, same client RNG... the RNG derivations differ, so instead
	// verify against a *directly computed* plaintext reference using the
	// same helper.
	sys := testSystem(10, 2)
	groups := formGroups(sys)
	global := sys.NewModel(sys.ModelSeed).ParamVector()
	cfg := roundConfig()

	res, err := RunGlobalRound(sys, groups, []int{0}, global, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Plaintext reference: run the same secureGroupRound math without
	// masking by recomputing client updates with the same seeds.
	g := groups[0]
	ref := append([]float64(nil), global...)
	for k := 0; k < cfg.GroupRounds; k++ {
		sum := make([]float64, len(ref))
		ng := float64(g.NumSamples())
		model := sys.NewModel(sys.ModelSeed)
		for _, c := range g.Clients {
			model.SetParamVector(ref)
			x, y := sys.ClientBatch(c)
			core.SGDUpdater{}.LocalTrain(model, x, y, core.LocalContext{
				ClientID: c.ID, Anchor: ref,
				Epochs: cfg.LocalEpochs, BatchSize: cfg.BatchSize, LR: cfg.LR,
				Rng: stats.NewRNG(cfg.Seed ^ uint64(k) ^ uint64(c.ID+1)*0x165667b19e3779f9),
			})
			w := float64(c.NumSamples()) / ng
			for j, v := range model.ParamVector() {
				sum[j] += w * v
			}
		}
		ref = sum
	}
	// Single selected group ⇒ cloud weight 1; distributed params ≈ ref up
	// to quantization.
	maxDiff := 0.0
	for j := range ref {
		if d := math.Abs(res.Params[j] - ref[j]); d > maxDiff {
			maxDiff = d
		}
	}
	if maxDiff > 1e-3 {
		t.Fatalf("distributed round diverges from plaintext reference by %v", maxDiff)
	}
}

func TestDistributedRoundImprovesModel(t *testing.T) {
	sys := testSystem(12, 3)
	groups := formGroups(sys)
	model := sys.NewModel(sys.ModelSeed)
	before, _ := core.Evaluate(model, sys.Test, 0)
	params := model.ParamVector()
	cfg := roundConfig()
	sel := []int{0}
	if len(groups) > 1 {
		sel = append(sel, 1)
	}
	// A few distributed global rounds.
	for r := 0; r < 5; r++ {
		cfg.Seed = uint64(100 + r)
		res, err := RunGlobalRound(sys, groups, sel, params, cfg)
		if err != nil {
			t.Fatal(err)
		}
		params = res.Params
	}
	model.SetParamVector(params)
	after, _ := core.Evaluate(model, sys.Test, 0)
	if after <= before {
		t.Fatalf("distributed training did not improve: %.3f -> %.3f", before, after)
	}
}

func TestWallClockScalesWithGroupRounds(t *testing.T) {
	sys := testSystem(10, 4)
	groups := formGroups(sys)
	global := sys.NewModel(sys.ModelSeed).ParamVector()
	cfg := roundConfig()
	cfg.GroupRounds = 1
	r1, err := RunGlobalRound(sys, groups, []int{0}, global, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.GroupRounds = 4
	r4, err := RunGlobalRound(sys, groups, []int{0}, global, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r4.WallClock <= r1.WallClock {
		t.Fatalf("K=4 wall clock %v should exceed K=1 %v", r4.WallClock, r1.WallClock)
	}
}

func TestMaskStreamsQuadraticInGroupSize(t *testing.T) {
	// Compare a small and a large single group.
	build := func(minGS int) (*core.System, []*grouping.Group) {
		sys := testSystem(2*minGS, 5)
		alg := grouping.CoVGrouping{Config: grouping.Config{MinGS: minGS, MergeLeftover: true}}
		return sys, grouping.FormAll(alg, [][]*data.Client{sys.Clients}, sys.Classes, stats.NewRNG(1))
	}
	cfg := roundConfig()
	cfg.GroupRounds = 1
	sysS, gS := build(4)
	resS, err := RunGlobalRound(sysS, gS, []int{0}, sysS.NewModel(7).ParamVector(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	sysL, gL := build(12)
	resL, err := RunGlobalRound(sysL, gL, []int{0}, sysL.NewModel(7).ParamVector(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	sizeRatio := float64(gL[0].Size()) / float64(gS[0].Size())
	opsRatio := float64(resL.MaskStreams) / float64(resS.MaskStreams)
	if opsRatio < sizeRatio*1.5 {
		t.Fatalf("mask streams not superlinear: size x%.1f but ops x%.1f", sizeRatio, opsRatio)
	}
}

func TestRunGlobalRoundErrors(t *testing.T) {
	sys := testSystem(8, 6)
	groups := formGroups(sys)
	global := sys.NewModel(sys.ModelSeed).ParamVector()
	if _, err := RunGlobalRound(sys, groups, nil, global, roundConfig()); err == nil {
		t.Fatal("expected error for empty selection")
	}
	bad := roundConfig()
	bad.LR = 0
	if _, err := RunGlobalRound(sys, groups, []int{0}, global, bad); err == nil {
		t.Fatal("expected error for zero LR")
	}
}

func TestCostProfileDrivesComputeTime(t *testing.T) {
	sys := testSystem(8, 7)
	groups := formGroups(sys)
	global := sys.NewModel(sys.ModelSeed).ParamVector()
	slow := roundConfig()
	slow.Profile = cost.Profile{Name: "slow", TrainPerSample: 100, TrainBase: 10,
		SecAggQuad: 0.01, SecAggLin: 0.01, BackdoorQuad: 0.01, BackdoorLin: 0.01, ScaffoldFactor: 2}
	fastRes, err := RunGlobalRound(sys, groups, []int{0}, global, roundConfig())
	if err != nil {
		t.Fatal(err)
	}
	slowRes, err := RunGlobalRound(sys, groups, []int{0}, global, slow)
	if err != nil {
		t.Fatal(err)
	}
	if slowRes.WallClock <= fastRes.WallClock {
		t.Fatalf("slower profile should take longer: %v vs %v", slowRes.WallClock, fastRes.WallClock)
	}
}

func TestDistributedRoundWithDropout(t *testing.T) {
	sys := testSystem(14, 8)
	alg := grouping.CoVGrouping{Config: grouping.Config{MinGS: 6, MergeLeftover: true}}
	groups := grouping.FormAll(alg, [][]*data.Client{sys.Clients}, sys.Classes, stats.NewRNG(1))
	global := sys.NewModel(sys.ModelSeed).ParamVector()
	cfg := roundConfig()
	cfg.DropoutProb = 0.3
	cfg.ThresholdFrac = 0.5
	res, err := RunGlobalRound(sys, groups, []int{0}, global, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Quantization fidelity must survive the dropout-recovery path.
	if res.QuantError > 1e-3 {
		t.Fatalf("quantization error %v after dropout recovery", res.QuantError)
	}
	// The round still moved the model.
	moved := false
	for j := range global {
		//lint:ignore float-eq test asserts exact deterministic output
		if res.Params[j] != global[j] {
			moved = true
			break
		}
	}
	if !moved {
		t.Fatal("round produced no update despite survivors")
	}
}

func TestDistributedRoundDropoutDeterministic(t *testing.T) {
	sys := testSystem(12, 9)
	groups := formGroups(sys)
	global := sys.NewModel(sys.ModelSeed).ParamVector()
	cfg := roundConfig()
	cfg.DropoutProb = 0.4
	a, err := RunGlobalRound(sys, groups, []int{0}, global, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunGlobalRound(sys, groups, []int{0}, global, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for j := range a.Params {
		//lint:ignore float-eq test asserts exact deterministic output
		if a.Params[j] != b.Params[j] {
			t.Fatal("dropout path not deterministic")
		}
	}
}
