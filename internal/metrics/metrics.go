package metrics

import (
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one key=value dimension attached to a metric. Label sets are
// canonicalized (sorted by key), so two call sites naming the same labels
// in different orders share one series.
type Label struct {
	Key, Value string
}

// L builds a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// kind discriminates the three instrument families of a registry.
type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	}
	return "histogram"
}

// Registry is a race-safe collection of named instruments. Use New; the
// zero value is not usable. A nil *Registry is a valid no-op sink: every
// lookup returns a shared discard instrument, so instrumented code never
// branches on whether metrics are enabled.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	now      func() time.Time
}

// family holds every series of one metric name; exactly one of the three
// maps is populated, matching kind.
type family struct {
	kind     kind
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// New returns an empty registry whose spans read wall-clock time.
func New() *Registry { return NewWithClock(time.Now) }

// NewWithClock returns a registry whose spans read time from now — tests
// inject a fake clock to make span histograms deterministic.
func NewWithClock(now func() time.Time) *Registry {
	if now == nil {
		panic("metrics: nil clock")
	}
	return &Registry{families: make(map[string]*family), now: now}
}

// Discard instruments back every nil-registry lookup: writes land in
// shared sinks nobody reads, so instrumentation sites stay branch-free.
var (
	discardCounter Counter
	discardGauge   Gauge
	discardHist    = newHistogram()
)

// Counter returns (registering on first use) the counter name{labels}.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return &discardCounter
	}
	checkName(name)
	key := labelKey(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, kindCounter)
	c := f.counters[key]
	if c == nil {
		c = &Counter{}
		f.counters[key] = c
	}
	return c
}

// Gauge returns (registering on first use) the gauge name{labels}.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return &discardGauge
	}
	checkName(name)
	key := labelKey(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, kindGauge)
	g := f.gauges[key]
	if g == nil {
		g = &Gauge{}
		f.gauges[key] = g
	}
	return g
}

// Histogram returns (registering on first use) the histogram name{labels}.
func (r *Registry) Histogram(name string, labels ...Label) *Histogram {
	if r == nil {
		return discardHist
	}
	checkName(name)
	key := labelKey(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, kindHistogram)
	h := f.hists[key]
	if h == nil {
		h = newHistogram()
		f.hists[key] = h
	}
	return h
}

// Start opens a timed phase span that records elapsed seconds into the
// histogram name{labels} when End is called; name must end in "_seconds"
// so MaskTimings can identify timing-valued series:
//
//	span := reg.Start("fel_fednode_round_seconds", metrics.L("role", "cloud"))
//	... the phase ...
//	span.End()
func (r *Registry) Start(name string, labels ...Label) Span {
	if r == nil {
		return Span{}
	}
	if !strings.HasSuffix(name, "_seconds") {
		panic("metrics: span name " + strconv.Quote(name) + " must end in _seconds")
	}
	return Span{h: r.Histogram(name, labels...), now: r.now, start: r.now()}
}

// CounterValue reads a counter without registering it; absent series read
// as 0. Intended for tests and report plumbing.
func (r *Registry) CounterValue(name string, labels ...Label) int64 {
	if r == nil {
		return 0
	}
	key := labelKey(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil || f.kind != kindCounter || f.counters[key] == nil {
		return 0
	}
	return f.counters[key].Value()
}

// GaugeValue reads a gauge without registering it; absent series read as 0.
func (r *Registry) GaugeValue(name string, labels ...Label) float64 {
	if r == nil {
		return 0
	}
	key := labelKey(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil || f.kind != kindGauge || f.gauges[key] == nil {
		return 0
	}
	return f.gauges[key].Value()
}

// family finds or creates the family for name, enforcing kind stability.
// Callers hold r.mu.
func (r *Registry) family(name string, k kind) *family {
	f := r.families[name]
	if f == nil {
		f = &family{kind: k}
		switch k {
		case kindCounter:
			f.counters = make(map[string]*Counter)
		case kindGauge:
			f.gauges = make(map[string]*Gauge)
		default:
			f.hists = make(map[string]*Histogram)
		}
		r.families[name] = f
		return f
	}
	if f.kind != k {
		panic("metrics: " + name + " already registered as a " + f.kind.String() + ", requested as a " + k.String())
	}
	return f
}

// Counter is a monotonically non-decreasing integer; increments are
// lock-free and safe for concurrent use.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by delta, which must be non-negative.
func (c *Counter) Add(delta int64) {
	if delta < 0 {
		panic("metrics: counter decremented by " + strconv.FormatInt(delta, 10))
	}
	c.v.Add(delta)
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous float value; Set is last-writer-wins.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by delta (CAS loop, safe under contention).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// bucketBounds returns the fixed log-spaced bucket upper bounds shared by
// every histogram: {1, 2.5, 5}×10^e for e in [−7, 2] — observing seconds,
// that spans 100ns to 500s. Bounds are never derived from data, so
// snapshot *shape* is identical across runs and machines; only the
// per-bucket counts depend on what was observed.
func bucketBounds() []float64 {
	bounds := make([]float64, 0, 30)
	for e := -7; e <= 2; e++ {
		p := math.Pow(10, float64(e))
		bounds = append(bounds, p, 2.5*p, 5*p)
	}
	return bounds
}

var defaultBounds = bucketBounds()

// Histogram accumulates observations into the fixed log-spaced buckets,
// tracking the exact sum and count alongside.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []int64 // len(bounds)+1; the final bucket is +Inf
	sum    float64
	n      int64
}

func newHistogram() *Histogram {
	return &Histogram{bounds: defaultBounds, counts: make([]int64, len(defaultBounds)+1)}
}

// Observe records one value into the bucket whose upper bound is the
// smallest bound >= v (Prometheus le semantics).
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.mu.Lock()
	h.counts[i]++
	h.sum += v
	h.n++
	h.mu.Unlock()
}

// read returns a consistent copy of the histogram state.
func (h *Histogram) read() (counts []int64, sum float64, n int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]int64(nil), h.counts...), h.sum, h.n
}

// Span is one timed phase opened by Registry.Start; End records the
// elapsed seconds. The zero Span (from a nil registry) is a no-op.
type Span struct {
	h     *Histogram
	now   func() time.Time
	start time.Time
}

// End closes the span, observing its duration in seconds.
func (s Span) End() {
	if s.h == nil {
		return
	}
	s.h.Observe(s.now().Sub(s.start).Seconds())
}

// checkName enforces the repo-wide schema fel_<layer>_<name>: a "fel_"
// prefix and [a-z0-9_] throughout, so snapshots sort and diff cleanly
// under one namespace.
func checkName(name string) {
	if !validName(name) {
		panic("metrics: invalid metric name " + strconv.Quote(name) + " (want fel_<layer>_<name>, chars [a-z0-9_])")
	}
}

func validName(name string) bool {
	if !strings.HasPrefix(name, "fel_") || strings.HasSuffix(name, "_") {
		return false
	}
	for _, c := range name {
		if (c < 'a' || c > 'z') && (c < '0' || c > '9') && c != '_' {
			return false
		}
	}
	return true
}

func checkLabelKey(key string) {
	if key == "" {
		panic("metrics: empty label key")
	}
	for _, c := range key {
		if (c < 'a' || c > 'z') && (c < '0' || c > '9') && c != '_' {
			panic("metrics: invalid label key " + strconv.Quote(key) + " (chars [a-z0-9_])")
		}
	}
}

// labelKey renders labels as the canonical `{k="v",...}` series suffix:
// keys sorted, values escaped, the empty set rendered as "".
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool {
		if ls[i].Key != ls[j].Key {
			return ls[i].Key < ls[j].Key
		}
		return ls[i].Value < ls[j].Value
	})
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		checkLabelKey(l.Key)
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}
