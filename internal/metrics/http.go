package metrics

import (
	"encoding/json"
	"expvar"
	"io"
	"net/http"
	"net/http/pprof"
	"sync"
)

// Handler serves a registry's live introspection surface:
//
//	/metrics      the deterministic text snapshot (Prometheus exposition)
//	/debug/vars   expvar JSON (Go runtime memstats plus published vars)
//	/debug/pprof  the standard pprof index (CPU, heap, goroutines, ...)
//
// cmd/felnode mounts this behind its -metrics flag.
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if _, err := io.WriteString(w, r.Snapshot()); err != nil {
			return // client hung up mid-response; nothing to clean up
		}
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		if _, err := io.WriteString(w, indexPage); err != nil {
			return // client hung up; nothing to clean up
		}
	})
	return mux
}

const indexPage = `<html><body><h1>felnode observability</h1><ul>
<li><a href="/metrics">/metrics</a> &mdash; deterministic text snapshot</li>
<li><a href="/debug/vars">/debug/vars</a> &mdash; expvar JSON</li>
<li><a href="/debug/pprof/">/debug/pprof/</a> &mdash; profiles</li>
</ul></body></html>
`

// publishMu serializes PublishExpvar against itself: expvar.Publish panics
// on duplicate names, so the existence check must be atomic with the
// publish.
var publishMu sync.Mutex

// PublishExpvar exposes the registry's JSON document as the expvar
// variable name (visible under /debug/vars). Publishing the same name
// twice is a no-op, so repeated setup inside one process is safe.
func PublishExpvar(name string, r *Registry) {
	publishMu.Lock()
	defer publishMu.Unlock()
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any {
		data, err := r.JSON()
		if err != nil {
			return map[string]string{"error": err.Error()}
		}
		var v any
		if err := json.Unmarshal(data, &v); err != nil {
			return map[string]string{"error": err.Error()}
		}
		return v
	}))
}
