package metrics

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/trace"
)

// Snapshot renders every instrument in the Prometheus text exposition
// format with fully deterministic ordering: families sorted by name,
// series sorted by canonical label key. Histograms emit cumulative le
// buckets plus _sum and _count. Under a fixed seed, everything except the
// timing-valued histogram lines is a pure function of the run; see
// MaskTimings. A nil registry snapshots to "".
func (r *Registry) Snapshot() string {
	if r == nil {
		return ""
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var b strings.Builder
	for _, name := range sortedKeys(r.families) {
		f := r.families[name]
		fmt.Fprintf(&b, "# TYPE %s %s\n", name, f.kind)
		switch f.kind {
		case kindCounter:
			for _, key := range sortedKeys(f.counters) {
				fmt.Fprintf(&b, "%s%s %d\n", name, key, f.counters[key].Value())
			}
		case kindGauge:
			for _, key := range sortedKeys(f.gauges) {
				fmt.Fprintf(&b, "%s%s %s\n", name, key, formatFloat(f.gauges[key].Value()))
			}
		default:
			for _, key := range sortedKeys(f.hists) {
				writeHistogram(&b, name, key, f.hists[key])
			}
		}
	}
	return b.String()
}

// MaskTimings removes the timing-dependent lines of a snapshot — the
// _seconds histograms' bucket and sum series — while keeping their _count
// series: how many spans ran is seed-deterministic, how long they took is
// not. Two runs with the same seed must produce byte-identical masked
// snapshots; internal/core and internal/fednode tests assert exactly that.
func MaskTimings(snapshot string) string {
	var b strings.Builder
	for _, line := range strings.SplitAfter(snapshot, "\n") {
		if timingLine(line) {
			continue
		}
		b.WriteString(line)
	}
	return b.String()
}

// timingLine reports whether a snapshot line carries a wall-clock-valued
// sample of a _seconds histogram.
func timingLine(line string) bool {
	name := line
	if i := strings.IndexAny(name, "{ "); i >= 0 {
		name = name[:i]
	}
	return strings.HasSuffix(name, "_seconds_bucket") || strings.HasSuffix(name, "_seconds_sum")
}

// histogramJSON is the JSON shape of one histogram series; Buckets maps
// each non-empty le bound to its cumulative count.
type histogramJSON struct {
	Count   int64            `json:"count"`
	Sum     float64          `json:"sum"`
	Buckets map[string]int64 `json:"buckets,omitempty"`
}

// JSON renders the registry as an indented JSON document with three
// top-level sections (counters, gauges, histograms) keyed by the same
// name{labels} series identifiers as Snapshot. encoding/json sorts map
// keys, so the document is deterministic given deterministic values.
// cmd/felbench writes this next to each experiment's CSV artifact.
func (r *Registry) JSON() ([]byte, error) {
	if r == nil {
		return []byte("{}"), nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	counters := map[string]int64{}
	gauges := map[string]float64{}
	hists := map[string]histogramJSON{}
	for name, f := range r.families {
		switch f.kind {
		case kindCounter:
			for key, c := range f.counters {
				counters[name+key] = c.Value()
			}
		case kindGauge:
			for key, g := range f.gauges {
				gauges[name+key] = g.Value()
			}
		default:
			for key, h := range f.hists {
				counts, sum, n := h.read()
				buckets := map[string]int64{}
				cum := int64(0)
				for i, bound := range h.bounds {
					cum += counts[i]
					if counts[i] != 0 {
						buckets[formatFloat(bound)] = cum
					}
				}
				if counts[len(counts)-1] != 0 {
					buckets["+Inf"] = n
				}
				hists[name+key] = histogramJSON{Count: n, Sum: sum, Buckets: buckets}
			}
		}
	}
	return json.MarshalIndent(map[string]any{
		"counters":   counters,
		"gauges":     gauges,
		"histograms": hists,
	}, "", "  ")
}

// Table renders the scalar view of the registry as a trace.Table: one row
// per counter and gauge series, histograms reduced to their _count and
// _sum. Rows follow snapshot order, so the table is deterministic too.
func (r *Registry) Table(id, title string) *trace.Table {
	t := &trace.Table{ID: id, Title: title, Header: []string{"metric", "value"}}
	if r == nil {
		return t
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, name := range sortedKeys(r.families) {
		f := r.families[name]
		switch f.kind {
		case kindCounter:
			for _, key := range sortedKeys(f.counters) {
				t.AddRow(name+key, strconv.FormatInt(f.counters[key].Value(), 10))
			}
		case kindGauge:
			for _, key := range sortedKeys(f.gauges) {
				t.AddRow(name+key, formatFloat(f.gauges[key].Value()))
			}
		default:
			for _, key := range sortedKeys(f.hists) {
				_, sum, n := f.hists[key].read()
				t.AddRow(name+"_count"+key, strconv.FormatInt(n, 10))
				t.AddRow(name+"_sum"+key, formatFloat(sum))
			}
		}
	}
	return t
}

// writeHistogram emits one histogram series in exposition format.
func writeHistogram(b *strings.Builder, name, key string, h *Histogram) {
	counts, sum, n := h.read()
	cum := int64(0)
	for i, bound := range h.bounds {
		cum += counts[i]
		fmt.Fprintf(b, "%s_bucket%s %d\n", name, withLE(key, formatFloat(bound)), cum)
	}
	fmt.Fprintf(b, "%s_bucket%s %d\n", name, withLE(key, "+Inf"), n)
	fmt.Fprintf(b, "%s_sum%s %s\n", name, key, formatFloat(sum))
	fmt.Fprintf(b, "%s_count%s %d\n", name, key, n)
}

// withLE appends the le label to a rendered label key.
func withLE(key, le string) string {
	if key == "" {
		return `{le="` + le + `"}`
	}
	return key[:len(key)-1] + `,le="` + le + `"}`
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
