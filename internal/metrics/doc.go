// Package metrics is the repository's observability substrate: a
// stdlib-only, race-safe registry of counters, gauges, and fixed-bucket
// histograms, plus timed phase spans layered on the histograms. It exists
// so every evaluation claim that is really a cost claim — bytes on the
// wire, secure-aggregation work, per-phase wall time, sampling frequency —
// can be read off a live run instead of reconstructed after the fact.
//
// # Instruments
//
// Counter is a monotone integer (Add/Inc), Gauge an instantaneous float
// (Set/Add), Histogram a distribution over fixed log-spaced buckets
// ({1, 2.5, 5}×10^e for e in [−7, 2]). A Span is a histogram observation
// of elapsed seconds:
//
//	span := reg.Start("fel_core_eval_seconds")
//	... the phase ...
//	span.End()
//
// Every instrument is addressed by a name plus an optional label set:
//
//	reg.Counter("fel_core_group_selected_total", metrics.L("group", "3")).Inc()
//
// Names follow the repo-wide schema fel_<layer>_<name>{label=...} (layers:
// core, net, wire, fednode, secagg); the registry panics on names outside
// it. Labels are sorted into a canonical order, so the argument order at a
// call site never creates a second series.
//
// # Determinism contract
//
// Snapshot renders the whole registry in the Prometheus text exposition
// format with fully sorted keys. Under a fixed seed, every counter and
// gauge — and every histogram's observation *count* — is a pure function
// of the run, so two seeded runs produce byte-identical snapshots once
// MaskTimings strips the timing-valued lines (_seconds bucket and sum
// series). Tests in internal/core and internal/fednode assert exactly
// that; keep new metrics on the deterministic side of the mask (counts,
// not durations) unless they end in _seconds.
//
// # Exposure
//
// Three surfaces, all fed by the same registry: Snapshot/Table for text
// artifacts (internal/trace), JSON for cmd/felbench result files, and
// Handler — /metrics, /debug/vars (expvar), /debug/pprof — mounted by
// cmd/felnode behind its -metrics flag.
//
// A nil *Registry is a valid no-op sink: every method returns a shared
// discard instrument, so instrumented code paths (core.Train, the fednode
// protocol loops) carry no "is metrics enabled" branches.
package metrics
