package metrics

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock yields a deterministic, strictly advancing time source.
func fakeClock() func() time.Time {
	t := time.Unix(0, 0)
	return func() time.Time {
		t = t.Add(3 * time.Millisecond)
		return t
	}
}

func TestCounterGaugeHistogram(t *testing.T) {
	r := New()
	c := r.Counter("fel_test_events_total", L("kind", "a"))
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if got := r.CounterValue("fel_test_events_total", L("kind", "a")); got != 5 {
		t.Fatalf("CounterValue = %d, want 5", got)
	}
	if got := r.CounterValue("fel_test_events_total", L("kind", "b")); got != 0 {
		t.Fatalf("absent CounterValue = %d, want 0", got)
	}

	g := r.Gauge("fel_test_level")
	g.Set(2.5)
	g.Add(-0.5)
	if got := g.Value(); got < 1.99 || got > 2.01 {
		t.Fatalf("gauge = %v, want 2", got)
	}

	h := r.Histogram("fel_test_latency_seconds")
	h.Observe(0.0012) // lands in the le=0.0025 bucket
	h.Observe(42)     // lands in le=50
	h.Observe(9999)   // overflow bucket
	counts, sum, n := h.read()
	if n != 3 {
		t.Fatalf("histogram count = %d, want 3", n)
	}
	if sum < 10041 || sum > 10042 {
		t.Fatalf("histogram sum = %v", sum)
	}
	if counts[len(counts)-1] != 1 {
		t.Fatalf("overflow bucket = %d, want 1", counts[len(counts)-1])
	}
}

func TestLabelOrderCanonicalized(t *testing.T) {
	r := New()
	r.Counter("fel_test_x_total", L("a", "1"), L("b", "2")).Inc()
	r.Counter("fel_test_x_total", L("b", "2"), L("a", "1")).Inc()
	if got := r.CounterValue("fel_test_x_total", L("b", "2"), L("a", "1")); got != 2 {
		t.Fatalf("label order created a second series: got %d, want 2", got)
	}
}

func TestInvalidNamesPanic(t *testing.T) {
	r := New()
	for _, name := range []string{"events_total", "fel_Upper", "fel_bad-char", "fel_trailing_", ""} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q: no panic", name)
				}
			}()
			r.Counter(name)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("span without _seconds suffix: no panic")
			}
		}()
		r.Start("fel_test_phase")
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("kind clash: no panic")
			}
		}()
		r.Counter("fel_test_clash")
		r.Gauge("fel_test_clash")
	}()
}

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	r.Counter("fel_test_total").Inc()
	r.Gauge("fel_test_g").Set(1)
	r.Histogram("fel_test_h_seconds").Observe(1)
	span := r.Start("fel_test_h_seconds")
	span.End()
	if got := r.Snapshot(); got != "" {
		t.Fatalf("nil snapshot = %q", got)
	}
	if got := r.CounterValue("fel_test_total"); got != 0 {
		t.Fatalf("nil CounterValue = %d", got)
	}
	data, err := r.JSON()
	if err != nil || string(data) != "{}" {
		t.Fatalf("nil JSON = %q, %v", data, err)
	}
	if tbl := r.Table("id", "t"); len(tbl.Rows) != 0 {
		t.Fatalf("nil Table has %d rows", len(tbl.Rows))
	}
}

// TestSnapshotDeterministic registers the same instruments in two
// different orders and demands byte-identical snapshots.
func TestSnapshotDeterministic(t *testing.T) {
	build := func(reversed bool) *Registry {
		r := NewWithClock(fakeClock())
		ops := []func(){
			func() { r.Counter("fel_test_b_total", L("g", "1")).Add(3) },
			func() { r.Counter("fel_test_b_total", L("g", "0")).Add(2) },
			func() { r.Counter("fel_test_a_total").Inc() },
			func() { r.Gauge("fel_test_level", L("edge", "0")).Set(0.25) },
			func() {
				s := r.Start("fel_test_phase_seconds")
				s.End()
			},
		}
		if reversed {
			for i := len(ops) - 1; i >= 0; i-- {
				ops[i]()
			}
		} else {
			for _, op := range ops {
				op()
			}
		}
		return r
	}
	a, b := build(false).Snapshot(), build(true).Snapshot()
	if a != b {
		t.Fatalf("snapshots differ:\n--- a ---\n%s\n--- b ---\n%s", a, b)
	}
	for _, want := range []string{
		"# TYPE fel_test_a_total counter",
		`fel_test_b_total{g="0"} 2`,
		`fel_test_level{edge="0"} 0.25`,
		"fel_test_phase_seconds_count 1",
	} {
		if !strings.Contains(a, want) {
			t.Errorf("snapshot missing %q:\n%s", want, a)
		}
	}
}

// TestMaskTimings runs real-clock spans twice; the raw snapshots may
// differ, the masked ones must not — and must keep the span counts.
func TestMaskTimings(t *testing.T) {
	run := func() string {
		r := New()
		for i := 0; i < 3; i++ {
			s := r.Start("fel_test_phase_seconds", L("role", "edge"))
			s.End()
		}
		r.Counter("fel_test_rounds_total").Inc()
		return r.Snapshot()
	}
	a, b := MaskTimings(run()), MaskTimings(run())
	if a != b {
		t.Fatalf("masked snapshots differ:\n--- a ---\n%s\n--- b ---\n%s", a, b)
	}
	if !strings.Contains(a, `fel_test_phase_seconds_count{role="edge"} 3`) {
		t.Fatalf("masked snapshot lost the span count:\n%s", a)
	}
	if strings.Contains(a, "_seconds_bucket") || strings.Contains(a, "_seconds_sum") {
		t.Fatalf("masked snapshot still has timing lines:\n%s", a)
	}
	if !strings.Contains(a, "fel_test_rounds_total 1") {
		t.Fatalf("masked snapshot lost a counter:\n%s", a)
	}
}

// TestConcurrentUpdates hammers one registry from many goroutines — the
// race detector run in ci.sh covers counter, gauge, histogram, span, and
// snapshot concurrency here.
func TestConcurrentUpdates(t *testing.T) {
	r := New()
	const workers, perWorker = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Counter("fel_test_hits_total", L("worker", "shared")).Inc()
				r.Gauge("fel_test_level").Add(1)
				s := r.Start("fel_test_span_seconds")
				s.End()
				if i%100 == 0 {
					_ = r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.CounterValue("fel_test_hits_total", L("worker", "shared")); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.GaugeValue("fel_test_level"); got < workers*perWorker-0.5 || got > workers*perWorker+0.5 {
		t.Fatalf("gauge = %v, want %d", got, workers*perWorker)
	}
	if !strings.Contains(r.Snapshot(), "fel_test_span_seconds_count 4000") {
		t.Fatalf("span count missing from snapshot")
	}
}

func TestJSONAndTable(t *testing.T) {
	r := NewWithClock(fakeClock())
	r.Counter("fel_test_frames_total", L("type", "GlobalModel")).Add(7)
	r.Gauge("fel_test_prob", L("group", "0")).Set(0.5)
	s := r.Start("fel_test_phase_seconds")
	s.End()

	data, err := r.JSON()
	if err != nil {
		t.Fatalf("JSON: %v", err)
	}
	var doc struct {
		Counters   map[string]int64 `json:"counters"`
		Gauges     map[string]float64
		Histograms map[string]struct {
			Count int64 `json:"count"`
		}
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if doc.Counters[`fel_test_frames_total{type="GlobalModel"}`] != 7 {
		t.Fatalf("JSON counters = %v", doc.Counters)
	}
	if doc.Histograms["fel_test_phase_seconds"].Count != 1 {
		t.Fatalf("JSON histograms = %v", doc.Histograms)
	}

	tbl := r.Table("metrics", "test")
	md := tbl.Markdown()
	for _, want := range []string{"fel_test_frames_total", "fel_test_phase_seconds_count", "0.5"} {
		if !strings.Contains(md, want) {
			t.Errorf("table missing %q:\n%s", want, md)
		}
	}
}

func TestHandlerServes(t *testing.T) {
	r := New()
	r.Counter("fel_test_served_total").Inc()
	PublishExpvar("fel_test_handler", r)
	PublishExpvar("fel_test_handler", r) // duplicate publish must not panic
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer func() {
			if err := resp.Body.Close(); err != nil {
				t.Errorf("close body: %v", err)
			}
		}()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("read %s: %v", path, err)
		}
		return resp.StatusCode, string(body)
	}

	code, body := get("/metrics")
	if code != http.StatusOK || !strings.Contains(body, "fel_test_served_total 1") {
		t.Fatalf("/metrics = %d:\n%s", code, body)
	}
	code, body = get("/debug/vars")
	if code != http.StatusOK || !strings.Contains(body, "fel_test_handler") {
		t.Fatalf("/debug/vars = %d:\n%s", code, body)
	}
	code, _ = get("/debug/pprof/")
	if code != http.StatusOK {
		t.Fatalf("/debug/pprof/ = %d", code)
	}
	code, body = get("/")
	if code != http.StatusOK || !strings.Contains(body, "/metrics") {
		t.Fatalf("/ = %d:\n%s", code, body)
	}
	code, _ = get("/no-such-page")
	if code != http.StatusNotFound {
		t.Fatalf("/no-such-page = %d, want 404", code)
	}
}
