package grouping

import (
	"testing"
	"testing/quick"

	"repro/internal/data"
	"repro/internal/stats"
)

// makeClients builds a Dirichlet-partitioned client population for tests.
func makeClients(t *testing.T, n int, alpha float64, seed uint64) ([]*data.Client, int) {
	t.Helper()
	g := data.NewGenerator(data.FlatConfig(10, 4, seed))
	ds := g.Sample(n*150, 0)
	cfg := data.DefaultPartitionConfig(n, alpha, seed)
	return data.DirichletPartition(ds, cfg), ds.Classes
}

// checkPartition verifies that groups exactly partition the client set.
func checkPartition(t *testing.T, clients []*data.Client, groups []*Group) {
	t.Helper()
	seen := make(map[int]bool)
	for _, g := range groups {
		for _, c := range g.Clients {
			if seen[c.ID] {
				t.Fatalf("client %d in two groups", c.ID)
			}
			seen[c.ID] = true
		}
	}
	if len(seen) != len(clients) {
		t.Fatalf("groups cover %d of %d clients", len(seen), len(clients))
	}
}

func avgCoV(groups []*Group) float64 {
	s := 0.0
	for _, g := range groups {
		s += g.CoV()
	}
	return s / float64(len(groups))
}

func avgSize(groups []*Group) float64 {
	s := 0
	for _, g := range groups {
		s += g.Size()
	}
	return float64(s) / float64(len(groups))
}

func TestGroupAccessors(t *testing.T) {
	clients := []*data.Client{
		{ID: 0, N: 4, Counts: []float64{2, 2}},
		{ID: 1, N: 6, Counts: []float64{1, 5}},
	}
	g := NewGroup(3, 1, clients, 2)
	if g.Size() != 2 || g.NumSamples() != 10 {
		t.Fatalf("Size=%d NumSamples=%d", g.Size(), g.NumSamples())
	}
	//lint:ignore float-eq test asserts exact deterministic output
	if g.Counts[0] != 3 || g.Counts[1] != 7 {
		t.Fatalf("Counts=%v", g.Counts)
	}
	//lint:ignore float-eq test asserts exact deterministic output
	if g.CoV() != stats.CoVOfCounts([]float64{3, 7}) {
		t.Fatal("CoV mismatch")
	}
	//lint:ignore float-eq test asserts exact deterministic output
	if g.Gamma() != stats.GammaFactor([]float64{4, 6}) {
		t.Fatal("Gamma mismatch")
	}
}

func TestCoVGroupingPartitionAndMinGS(t *testing.T) {
	clients, classes := makeClients(t, 40, 0.3, 1)
	alg := CoVGrouping{Config: Config{MinGS: 5, MaxCoV: 0.5, MergeLeftover: true}}
	groups := alg.Form(clients, classes, 0, 0, stats.NewRNG(2))
	checkPartition(t, clients, groups)
	for _, g := range groups {
		if g.Size() < 5 {
			t.Errorf("group %d size %d < MinGS", g.ID, g.Size())
		}
	}
}

func TestCoVGroupingBeatsRandomOnCoV(t *testing.T) {
	clients, classes := makeClients(t, 60, 0.2, 3)
	cov := CoVGrouping{Config: Config{MinGS: 5, MaxCoV: 0.3, MergeLeftover: true}}
	rg := RandomGrouping{Config: Config{MinGS: 5}}
	covGroups := cov.Form(clients, classes, 0, 0, stats.NewRNG(4))
	rgGroups := rg.Form(clients, classes, 0, 0, stats.NewRNG(4))
	if avgCoV(covGroups) >= avgCoV(rgGroups) {
		t.Fatalf("CoVG avg CoV %.3f should beat RG %.3f", avgCoV(covGroups), avgCoV(rgGroups))
	}
}

func TestCoVGroupingMaxCoVControlsSize(t *testing.T) {
	// Table 1 shape: larger MaxCoV allows smaller groups with larger CoV.
	clients, classes := makeClients(t, 80, 0.3, 5)
	strict := CoVGrouping{Config: Config{MinGS: 5, MaxCoV: 0.1, MergeLeftover: true}}
	loose := CoVGrouping{Config: Config{MinGS: 5, MaxCoV: 1.0, MergeLeftover: true}}
	sg := strict.Form(clients, classes, 0, 0, stats.NewRNG(6))
	lg := loose.Form(clients, classes, 0, 0, stats.NewRNG(6))
	if avgSize(sg) < avgSize(lg) {
		t.Fatalf("strict MaxCoV avg size %.2f should be >= loose %.2f", avgSize(sg), avgSize(lg))
	}
	if avgCoV(sg) > avgCoV(lg) {
		t.Fatalf("strict MaxCoV avg CoV %.3f should be <= loose %.3f", avgCoV(sg), avgCoV(lg))
	}
}

func TestCoVGroupingDeterministic(t *testing.T) {
	clients, classes := makeClients(t, 30, 0.5, 7)
	alg := CoVGrouping{Config: Config{MinGS: 4, MaxCoV: 0.5, MergeLeftover: true}}
	a := alg.Form(clients, classes, 0, 0, stats.NewRNG(9))
	b := alg.Form(clients, classes, 0, 0, stats.NewRNG(9))
	if len(a) != len(b) {
		t.Fatal("formation not deterministic")
	}
	for i := range a {
		if a[i].Size() != b[i].Size() {
			t.Fatal("formation not deterministic")
		}
		for j := range a[i].Clients {
			if a[i].Clients[j].ID != b[i].Clients[j].ID {
				t.Fatal("formation not deterministic")
			}
		}
	}
}

func TestCoVGroupingNoMaxCoV(t *testing.T) {
	clients, classes := makeClients(t, 30, 0.5, 8)
	alg := CoVGrouping{Config: Config{MinGS: 15, MergeLeftover: true}} // MaxCoV disabled
	groups := alg.Form(clients, classes, 0, 0, stats.NewRNG(1))
	checkPartition(t, clients, groups)
	for _, g := range groups {
		if g.Size() < 15 {
			t.Errorf("group size %d < 15", g.Size())
		}
	}
}

func TestCoVGroupingLeftoverKeptWhenDisabled(t *testing.T) {
	clients, classes := makeClients(t, 23, 0.5, 9)
	alg := CoVGrouping{Config: Config{MinGS: 5, MaxCoV: 0.3, MergeLeftover: false}}
	groups := alg.Form(clients, classes, 0, 0, stats.NewRNG(2))
	checkPartition(t, clients, groups)
	// With 23 clients and MinGS 5 the tail group may be undersized; all we
	// require is faithfulness: no client lost, order of groups preserved.
	small := 0
	for _, g := range groups[:len(groups)-1] {
		if g.Size() < 5 {
			small++
		}
	}
	if small > 0 {
		t.Fatalf("%d non-final groups below MinGS", small)
	}
}

func TestCoVGroupingGammaWeight(t *testing.T) {
	clients, classes := makeClients(t, 40, 0.5, 10)
	plain := CoVGrouping{Config: Config{MinGS: 5, MergeLeftover: true}}
	gamma := CoVGrouping{Config: Config{MinGS: 5, MergeLeftover: true}, GammaWeight: 1.0}
	pg := plain.Form(clients, classes, 0, 0, stats.NewRNG(3))
	gg := gamma.Form(clients, classes, 0, 0, stats.NewRNG(3))
	checkPartition(t, clients, gg)
	avgGamma := func(groups []*Group) float64 {
		s := 0.0
		for _, g := range groups {
			s += g.Gamma()
		}
		return s / float64(len(groups))
	}
	// γ-aware formation should not produce *worse* sample-count balance.
	if avgGamma(gg) > avgGamma(pg)*1.15 {
		t.Fatalf("gamma-aware grouping γ=%.3f much worse than plain γ=%.3f", avgGamma(gg), avgGamma(pg))
	}
}

func TestRandomGroupingSizes(t *testing.T) {
	clients, classes := makeClients(t, 23, 0.5, 11)
	alg := RandomGrouping{Config: Config{MinGS: 5}}
	groups := alg.Form(clients, classes, 0, 0, stats.NewRNG(1))
	checkPartition(t, clients, groups)
	for _, g := range groups {
		if g.Size() < 5 {
			t.Errorf("RG group size %d < MinGS", g.Size())
		}
	}
}

func TestCDGroupingPartition(t *testing.T) {
	clients, classes := makeClients(t, 50, 0.2, 12)
	alg := CDGrouping{Config: Config{MinGS: 5}}
	groups := alg.Form(clients, classes, 0, 0, stats.NewRNG(1))
	checkPartition(t, clients, groups)
}

func TestCDGroupingBeatsRandomOnCoV(t *testing.T) {
	clients, classes := makeClients(t, 60, 0.1, 13)
	cdg := CDGrouping{Config: Config{MinGS: 6}}
	rg := RandomGrouping{Config: Config{MinGS: 6}}
	// Average over seeds to damp variance.
	cd, r := 0.0, 0.0
	for s := uint64(0); s < 5; s++ {
		cd += avgCoV(cdg.Form(clients, classes, 0, 0, stats.NewRNG(s)))
		r += avgCoV(rg.Form(clients, classes, 0, 0, stats.NewRNG(s)))
	}
	if cd > r*1.1 {
		t.Fatalf("CDG avg CoV %.3f clearly worse than RG %.3f", cd/5, r/5)
	}
}

func TestKLDGroupingPartitionAndQuality(t *testing.T) {
	clients, classes := makeClients(t, 40, 0.2, 14)
	kld := KLDGrouping{Config: Config{MinGS: 5, MergeLeftover: true}}
	rg := RandomGrouping{Config: Config{MinGS: 5}}
	kg := kld.Form(clients, classes, 0, 0, stats.NewRNG(2))
	checkPartition(t, clients, kg)
	global := stats.Normalize(data.GlobalCounts(clients, classes))
	avgKLD := func(groups []*Group) float64 {
		s := 0.0
		for _, g := range groups {
			s += stats.KLDivergence(stats.Normalize(g.Counts), global)
		}
		return s / float64(len(groups))
	}
	rgroups := rg.Form(clients, classes, 0, 0, stats.NewRNG(2))
	if avgKLD(kg) >= avgKLD(rgroups) {
		t.Fatalf("KLDG avg KLD %.4f should beat RG %.4f", avgKLD(kg), avgKLD(rgroups))
	}
}

func TestVarianceGroupingPartition(t *testing.T) {
	clients, classes := makeClients(t, 30, 0.3, 15)
	alg := VarianceGrouping{Config: Config{MinGS: 5, MergeLeftover: true}}
	groups := alg.Form(clients, classes, 0, 0, stats.NewRNG(3))
	checkPartition(t, clients, groups)
	for _, g := range groups {
		if g.Size() < 5 {
			t.Errorf("VarG group size %d < MinGS", g.Size())
		}
	}
}

func TestFormAllAcrossEdges(t *testing.T) {
	clients, classes := makeClients(t, 45, 0.3, 16)
	edges := data.SplitAcrossEdges(clients, 3)
	alg := CoVGrouping{Config: Config{MinGS: 5, MaxCoV: 0.5, MergeLeftover: true}}
	groups := FormAll(alg, edges, classes, stats.NewRNG(4))
	checkPartition(t, clients, groups)
	// IDs dense and unique; edges tagged.
	for i, g := range groups {
		if g.ID != i {
			t.Fatalf("group IDs not dense: %d at position %d", g.ID, i)
		}
		if g.Edge < 0 || g.Edge > 2 {
			t.Fatalf("bad edge tag %d", g.Edge)
		}
	}
	// No group spans two edges.
	for _, g := range groups {
		edge := g.Edge
		for _, c := range g.Clients {
			if c.ID%3 != edge {
				t.Fatalf("client %d on edge %d appears in group of edge %d", c.ID, c.ID%3, edge)
			}
		}
	}
}

func TestCoVGroupingPropertyInvariants(t *testing.T) {
	// Property over random populations and seeds: CoVG always produces a
	// partition, honours MinGS (with merging), and never exceeds the pool.
	err := quick.Check(func(seed uint64) bool {
		n := 10 + int(seed%30)
		g := data.NewGenerator(data.FlatConfig(6, 4, seed))
		ds := g.Sample(n*60, 0)
		clients := data.DirichletPartition(ds, data.PartitionConfig{
			NumClients: n, Alpha: 0.3,
			MinSamples: 10, MaxSamples: 50, MeanSamples: 30, StdSamples: 10,
			Seed: seed,
		})
		alg := CoVGrouping{Config: Config{MinGS: 3, MaxCoV: 0.5, MergeLeftover: true}}
		groups := alg.Form(clients, ds.Classes, 0, 0, stats.NewRNG(seed))
		seen := map[int]bool{}
		for _, gr := range groups {
			if gr.Size() < 3 {
				return false
			}
			for _, c := range gr.Clients {
				if seen[c.ID] {
					return false
				}
				seen[c.ID] = true
			}
		}
		return len(seen) == n
	}, &quick.Config{MaxCount: 25})
	if err != nil {
		t.Fatal(err)
	}
}
