package grouping

import (
	"testing"

	"repro/internal/data"
	"repro/internal/stats"
)

// This file pins Alg. 2's structural guarantees as properties over
// randomized seeded populations, complementing grouping_test.go's
// example-based cases.
//
// A note on the merge property: the tempting invariant "merging any two
// formed groups never lowers the achieved max CoV" is FALSE for Alg. 2 —
// empirically ~25% of pairwise merges involving a stuck high-CoV group
// lower the max, because the greedy grows groups one client at a time and
// never reconsiders whole-group unions. What the greedy actually
// guarantees, and what TestCoVGroupingGreedyLocalOptimum pins, is
// single-client local optimality: a non-final group finalized above MaxCoV
// stopped because no remaining pool client improved its CoV, and every
// member of every later-formed group was in that pool at the time.

// randomClients builds a seeded population of synthetic clients with
// skewed label histograms — one to three dominant classes plus a thin
// uniform tail, the non-IID regime CoV grouping exists for.
func randomClients(n, classes int, rng *stats.RNG) []*data.Client {
	clients := make([]*data.Client, n)
	for i := 0; i < n; i++ {
		counts := make([]float64, classes)
		total := 0
		dom := 1 + rng.IntN(3)
		for d := 0; d < dom; d++ {
			c := rng.IntN(classes)
			k := 5 + rng.IntN(30)
			counts[c] += float64(k)
			total += k
		}
		for c := 0; c < classes; c++ {
			if rng.Float64() < 0.3 {
				counts[c]++
				total++
			}
		}
		clients[i] = &data.Client{ID: i, N: total, Counts: counts}
	}
	return clients
}

// propCases enumerates the randomized configurations the properties run
// over: varied population sizes, class counts, and both leftover policies.
func propCases(f func(t *testing.T, seed uint64, clients []*data.Client, classes int, alg CoVGrouping)) func(*testing.T) {
	return func(t *testing.T) {
		for seed := uint64(0); seed < 120; seed++ {
			rng := stats.NewRNG(seed)
			classes := 4 + int(seed%7)
			n := 12 + int(seed%49)
			clients := randomClients(n, classes, rng)
			alg := CoVGrouping{Config: Config{
				MinGS:         2 + int(seed%3),
				MaxCoV:        0.3 + 0.1*float64(seed%4),
				MergeLeftover: seed%2 == 0,
			}}
			f(t, seed, clients, classes, alg)
		}
	}
}

// TestCoVGroupingPartitionProperty: every client appears in exactly one
// group — no drops, no duplicates — and group IDs are densely renumbered
// from firstID, including after a leftover merge.
func TestCoVGroupingPartitionProperty(t *testing.T) {
	propCases(func(t *testing.T, seed uint64, clients []*data.Client, classes int, alg CoVGrouping) {
		const firstID = 5
		groups := alg.Form(clients, classes, 0, firstID, stats.NewRNG(seed+1000))
		seen := make(map[int]int)
		for i, g := range groups {
			if g.ID != firstID+i {
				t.Fatalf("seed %d: group %d has ID %d, want dense renumbering from %d", seed, i, g.ID, firstID)
			}
			for _, c := range g.Clients {
				seen[c.ID]++
			}
		}
		if len(seen) != len(clients) {
			t.Fatalf("seed %d: %d clients assigned, population has %d", seed, len(seen), len(clients))
		}
		for id, n := range seen {
			if n != 1 {
				t.Fatalf("seed %d: client %d assigned %d times", seed, id, n)
			}
		}
	})(t)
}

// TestCoVGroupingSizeFloor: with MergeLeftover every group satisfies
// |g| >= MinGS whenever more than one group exists (a lone group may be
// smaller than MinGS only when the whole population is); without it, only
// the last-formed group may be undersized.
func TestCoVGroupingSizeFloor(t *testing.T) {
	propCases(func(t *testing.T, seed uint64, clients []*data.Client, classes int, alg CoVGrouping) {
		groups := alg.Form(clients, classes, 0, 0, stats.NewRNG(seed+2000))
		for i, g := range groups {
			if g.Size() >= alg.MinGS {
				continue
			}
			if len(groups) == 1 && len(clients) < alg.MinGS {
				continue // population itself is below the floor
			}
			if !alg.MergeLeftover && i == len(groups)-1 {
				continue // documented leftover: only the final group may be short
			}
			t.Fatalf("seed %d (merge=%v): group %d has %d clients, floor is %d",
				seed, alg.MergeLeftover, i, g.Size(), alg.MinGS)
		}
	})(t)
}

// TestCoVGroupingGreedyLocalOptimum pins the adapted merge property (see
// the file comment): for every non-final group finalized above the MaxCoV
// bound, no single client of any later-formed group would have lowered its
// CoV — those clients were all still in the pool when the greedy chose to
// stop, so an improvement would contradict Alg. 2 line 6. MergeLeftover is
// off here: redistribution mutates earlier groups after finalization, which
// (correctly) voids the formation-time invariant.
func TestCoVGroupingGreedyLocalOptimum(t *testing.T) {
	checks := 0
	for seed := uint64(0); seed < 120; seed++ {
		rng := stats.NewRNG(seed)
		classes := 4 + int(seed%7)
		clients := randomClients(16+int(seed%40), classes, rng)
		alg := CoVGrouping{Config: Config{MinGS: 3, MaxCoV: 0.3 + 0.1*float64(seed%4), MergeLeftover: false}}
		groups := alg.Form(clients, classes, 0, 0, rng)
		trial := make([]float64, classes)
		for i, g := range groups[:max(len(groups)-1, 0)] {
			cur := g.CoV()
			if cur <= alg.MaxCoV {
				continue // finalized by meeting the requirement, not by giving up
			}
			for _, h := range groups[i+1:] {
				for _, c := range h.Clients {
					checks++
					copy(trial, g.Counts)
					for y, n := range c.Counts {
						trial[y] += n
					}
					if got := stats.CoVOfCounts(trial); got < cur-1e-12 {
						t.Fatalf("seed %d: group %d stuck at CoV %.6f, but adding later client %d improves it to %.6f — greedy stop was not locally optimal",
							seed, i, cur, c.ID, got)
					}
				}
			}
		}
	}
	if checks == 0 {
		t.Fatal("no stuck groups across all seeds: property was never exercised")
	}
}
