package grouping

import (
	"math"

	"repro/internal/data"
	"repro/internal/stats"
)

// RandomGrouping (RG) shuffles the clients and chunks them into groups of
// TargetGS (falling back to MinGS when TargetGS is zero). This is what the
// FedAvg / FedProx / SCAFFOLD baselines use in the paper's experiments.
type RandomGrouping struct {
	Config
	// TargetGS is the desired group size; 0 means MinGS.
	TargetGS int
}

// Name returns "RG".
func (RandomGrouping) Name() string { return "RG" }

// Form chunks a shuffled client list.
func (a RandomGrouping) Form(clients []*data.Client, classes, edge, firstID int, rng *stats.RNG) []*Group {
	size := a.TargetGS
	if size <= 0 {
		size = a.MinGS
	}
	if size <= 0 {
		panic("grouping: RandomGrouping needs TargetGS or MinGS")
	}
	pool := append([]*data.Client(nil), clients...)
	rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	var groups []*Group
	for lo := 0; lo < len(pool); lo += size {
		hi := lo + size
		if hi > len(pool) {
			hi = len(pool)
		}
		groups = append(groups, NewGroup(firstID+len(groups), edge, pool[lo:hi], classes))
	}
	// A trailing chunk below MinGS merges into the previous group so the
	// anonymity constraint holds for every group.
	if len(groups) > 1 {
		last := groups[len(groups)-1]
		if last.Size() < a.MinGS {
			prev := groups[len(groups)-2]
			for _, c := range last.Clients {
				prev.add(c)
			}
			groups = groups[:len(groups)-1]
		}
	}
	return groups
}

// CDGrouping (CDG) ports OUEA's cluster-then-distribute client assignment to
// group formation: clients are first clustered by their normalized label
// distribution (k-means), then cluster members are dealt round-robin across
// the groups so each group receives a diverse mix.
type CDGrouping struct {
	Config
	// TargetGS is the desired group size; 0 means MinGS.
	TargetGS int
	// NumClusters is the k of the label-distribution k-means; 0 means the
	// number of classes.
	NumClusters int
	// Iters bounds the k-means refinement steps.
	Iters int
}

// Name returns "CDG".
func (CDGrouping) Name() string { return "CDG" }

// Form clusters then distributes.
func (a CDGrouping) Form(clients []*data.Client, classes, edge, firstID int, rng *stats.RNG) []*Group {
	size := a.TargetGS
	if size <= 0 {
		size = a.MinGS
	}
	if size <= 0 {
		panic("grouping: CDGrouping needs TargetGS or MinGS")
	}
	if len(clients) == 0 {
		return nil
	}
	k := a.NumClusters
	if k <= 0 {
		k = classes
	}
	if k > len(clients) {
		k = len(clients)
	}
	iters := a.Iters
	if iters <= 0 {
		iters = 10
	}

	// Normalized label distributions.
	dists := make([][]float64, len(clients))
	for i, c := range clients {
		dists[i] = stats.Normalize(c.Counts)
	}

	// k-means with random initial centroids.
	centroids := make([][]float64, k)
	perm := rng.Perm(len(clients))
	for i := 0; i < k; i++ {
		centroids[i] = append([]float64(nil), dists[perm[i]]...)
	}
	assign := make([]int, len(clients))
	for it := 0; it < iters; it++ {
		changed := false
		for i, d := range dists {
			best, bestD := 0, math.Inf(1)
			for ci, cen := range centroids {
				if dd := stats.L2Distance(d, cen); dd < bestD {
					best, bestD = ci, dd
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed && it > 0 {
			break
		}
		for ci := range centroids {
			for j := range centroids[ci] {
				centroids[ci][j] = 0
			}
		}
		counts := make([]int, k)
		for i, d := range dists {
			ci := assign[i]
			counts[ci]++
			for j, v := range d {
				centroids[ci][j] += v
			}
		}
		for ci := range centroids {
			if counts[ci] == 0 {
				continue
			}
			for j := range centroids[ci] {
				centroids[ci][j] /= float64(counts[ci])
			}
		}
	}

	// Distribution: deal members of each cluster round-robin across groups
	// so similar clients land in different groups.
	numGroups := len(clients) / size
	if numGroups == 0 {
		numGroups = 1
	}
	buckets := make([][]*data.Client, numGroups)
	next := 0
	for ci := 0; ci < k; ci++ {
		for i, c := range clients {
			if assign[i] == ci {
				buckets[next%numGroups] = append(buckets[next%numGroups], c)
				next++
			}
		}
	}
	groups := make([]*Group, 0, numGroups)
	for _, b := range buckets {
		if len(b) == 0 {
			continue
		}
		groups = append(groups, NewGroup(firstID+len(groups), edge, b, classes))
	}
	return groups
}

// KLDGrouping (KLDG) ports SHARE's KL-divergence edge assignment to group
// formation: groups grow greedily, each step adding the client that
// minimizes KL(group distribution ‖ global distribution). Faithful to the
// paper's complexity discussion (Sec. 5.4), the criterion is recomputed from
// scratch over all group members at every candidate evaluation, making the
// formation O(|K|⁴·|Y|)-flavoured and log-heavy — which is exactly why
// Fig. 5 shows KLDG far slower than CoVG.
type KLDGrouping struct {
	Config
	// TargetGS is the size at which a group stops growing once the KLD no
	// longer improves; 0 means MinGS.
	TargetGS int
}

// Name returns "KLDG".
func (KLDGrouping) Name() string { return "KLDG" }

// Form greedily minimizes group-to-global KL divergence.
func (a KLDGrouping) Form(clients []*data.Client, classes, edge, firstID int, rng *stats.RNG) []*Group {
	size := a.TargetGS
	if size <= 0 {
		size = a.MinGS
	}
	if size <= 0 {
		panic("grouping: KLDGrouping needs TargetGS or MinGS")
	}
	global := stats.Normalize(data.GlobalCounts(clients, classes))
	pool := append([]*data.Client(nil), clients...)
	var groups []*Group

	// kldOf recomputes the group KLD from scratch (deliberately; see type
	// comment), including the trial candidate at index extra (or none if -1).
	kldOf := func(members []*data.Client, extra *data.Client) float64 {
		counts := make([]float64, classes)
		for _, c := range members {
			for y, n := range c.Counts {
				counts[y] += n
			}
		}
		if extra != nil {
			for y, n := range extra.Counts {
				counts[y] += n
			}
		}
		return stats.KLDivergence(stats.Normalize(counts), global)
	}

	for len(pool) > 0 {
		pick := rng.IntN(len(pool))
		g := NewGroup(firstID+len(groups), edge, nil, classes)
		g.add(pool[pick])
		pool[pick] = pool[len(pool)-1]
		pool = pool[:len(pool)-1]

		for len(pool) > 0 {
			cur := kldOf(g.Clients, nil)
			best, bestScore := -1, math.Inf(1)
			for ci, c := range pool {
				if s := kldOf(g.Clients, c); s < bestScore {
					best, bestScore = ci, s
				}
			}
			if bestScore < cur || g.Size() < size {
				c := pool[best]
				g.add(c)
				pool[best] = pool[len(pool)-1]
				pool = pool[:len(pool)-1]
			} else {
				break
			}
		}
		groups = append(groups, g)
	}

	if a.MergeLeftover && len(groups) > 1 {
		last := groups[len(groups)-1]
		if last.Size() < a.MinGS {
			groups = groups[:len(groups)-1]
			mergeLeftover(groups, last, func(counts []float64) float64 {
				return stats.KLDivergence(stats.Normalize(counts), global)
			})
			for i, g := range groups {
				g.ID = firstID + i
			}
		}
	}
	return groups
}
