// Package grouping implements the group formation half of the paper's core
// contribution: the CoV-Grouping greedy algorithm (Alg. 2) plus the three
// comparator formation policies used in the evaluation — random grouping
// (RG), the clustering-then-distribution grouping of OUEA (CDG), and the
// KL-divergence grouping of SHARE (KLDG).
//
// Formation operates purely on client label histograms; no features, models,
// or gradients are inspected (paper Sec. 5.1).
package grouping

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/data"
	"repro/internal/stats"
)

// Group is a set of clients formed at one edge server, together with the
// aggregate label histogram used to score it.
type Group struct {
	ID      int
	Edge    int
	Clients []*data.Client
	Counts  []float64

	// samples caches the member sample total so NumSamples is O(1) — the
	// aggregation weights read it for every selected group every round.
	samples int
}

// NewGroup builds a group over the given clients, summing their histograms.
func NewGroup(id, edge int, clients []*data.Client, classes int) *Group {
	g := &Group{ID: id, Edge: edge, Counts: make([]float64, classes)}
	for _, c := range clients {
		g.add(c)
	}
	return g
}

func (g *Group) add(c *data.Client) {
	g.Clients = append(g.Clients, c)
	for y, n := range c.Counts {
		g.Counts[y] += n
	}
	g.samples += c.NumSamples()
}

// Size returns the number of clients |g|.
func (g *Group) Size() int { return len(g.Clients) }

// NumSamples returns the total data count n_g.
func (g *Group) NumSamples() int { return g.samples }

// CoV returns the coefficient of variation of the group's label histogram
// (Eq. 27), the paper's grouping criterion.
func (g *Group) CoV() float64 { return stats.CoVOfCounts(g.Counts) }

// Gamma returns the paper's γ factor (Eq. 11) for this group: 1 + CoV² of
// the per-client sample counts. Smaller is better for convergence.
func (g *Group) Gamma() float64 {
	counts := make([]float64, len(g.Clients))
	for i, c := range g.Clients {
		counts[i] = float64(c.NumSamples())
	}
	return stats.GammaFactor(counts)
}

// Config carries the constraints shared by all formation algorithms.
type Config struct {
	// MinGS is the anonymity constraint: every group needs at least this
	// many clients so secure aggregation can hide individual updates
	// (constraint 31).
	MinGS int
	// MaxCoV is the soft quality target of Alg. 2: the greedy loop keeps
	// adding clients until the group CoV drops below it (or no client
	// helps). Zero or negative disables the constraint (any CoV accepted
	// once MinGS is met).
	MaxCoV float64
	// MergeLeftover controls what happens when the client pool runs out
	// mid-group and the final group is below MinGS: when true its members
	// are redistributed to the existing groups that their addition hurts
	// least; when false the undersized group is kept verbatim, exactly as
	// Alg. 2 is written.
	MergeLeftover bool
}

// Algorithm forms groups from the clients of one edge server.
type Algorithm interface {
	// Name is a short identifier used in experiment output (e.g. "CoVG").
	Name() string
	// Form partitions clients into groups. edge tags the produced groups;
	// rng drives any randomized choices. IDs are assigned densely from
	// firstID.
	Form(clients []*data.Client, classes, edge, firstID int, rng *stats.RNG) []*Group
}

// FormAll runs alg independently on every edge server's client set,
// mirroring Alg. 1 lines 2–3, and returns the union of all groups with
// globally unique IDs.
//
// Edges form in parallel across GOMAXPROCS goroutines. The result is
// bit-identical to forming them serially: each edge's RNG is split from the
// parent serially up front (preserving the parent's consumption order), the
// per-edge formations are independent, and every Algorithm assigns IDs
// densely from firstID — so forming with firstID 0 and renumbering after
// concatenation reproduces exactly the serial numbering.
//
//lint:deterministic
func FormAll(alg Algorithm, edges [][]*data.Client, classes int, rng *stats.RNG) []*Group {
	rngs := make([]*stats.RNG, len(edges))
	for e := range edges {
		rngs[e] = rng.Split(uint64(e))
	}
	perEdge := make([][]*Group, len(edges))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(edges) {
		workers = len(edges)
	}
	if workers <= 1 {
		for e, clients := range edges {
			perEdge[e] = alg.Form(clients, classes, e, 0, rngs[e])
		}
	} else {
		var wg sync.WaitGroup
		var mu sync.Mutex
		var firstPanic any
		next := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for e := range next {
					func() {
						defer func() {
							if r := recover(); r != nil {
								mu.Lock()
								if firstPanic == nil {
									firstPanic = r
								}
								mu.Unlock()
							}
						}()
						perEdge[e] = alg.Form(edges[e], classes, e, 0, rngs[e])
					}()
				}
			}()
		}
		for e := range edges {
			next <- e
		}
		close(next)
		wg.Wait()
		if firstPanic != nil {
			panic(fmt.Sprintf("grouping: edge formation panic: %v", firstPanic))
		}
	}
	var all []*Group
	for _, groups := range perEdge {
		base := len(all)
		for _, g := range groups {
			g.ID += base
		}
		all = append(all, groups...)
	}
	return all
}

// mergeLeftover redistributes the members of an undersized group into the
// existing groups, each client going to the group whose criterion the
// addition degrades least.
func mergeLeftover(groups []*Group, leftover *Group, criterion func(counts []float64) float64) {
	var trial []float64
	for _, c := range leftover.Clients {
		best, bestScore := -1, 0.0
		for gi, g := range groups {
			if cap(trial) < len(g.Counts) {
				trial = make([]float64, len(g.Counts))
			}
			trial = trial[:len(g.Counts)]
			copy(trial, g.Counts)
			for y, n := range c.Counts {
				trial[y] += n
			}
			score := criterion(trial)
			if best == -1 || score < bestScore {
				best, bestScore = gi, score
			}
		}
		groups[best].add(c)
	}
}
