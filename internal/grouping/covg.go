package grouping

import (
	"math"

	"repro/internal/data"
	"repro/internal/stats"
)

// CoVGrouping is the paper's greedy group formation (Alg. 2). Groups are
// built one at a time: a random seed client starts the group, then the
// client whose addition minimizes the group CoV is added until both the
// MinGS and MaxCoV requirements hold (or no addition improves the CoV and
// the size constraint is already met).
//
// GammaWeight optionally mixes the γ criterion of the paper's future-work
// section into the score: score = CoV(labels) + GammaWeight·CoV(sample
// counts), so groups are also balanced in per-client data volume. Zero
// (the default) reproduces Alg. 2 exactly.
type CoVGrouping struct {
	Config
	GammaWeight float64
}

// Name returns "CoVG".
func (CoVGrouping) Name() string { return "CoVG" }

// poolClient is a pool entry with the candidate-invariant scalars
// precomputed once per Form call: the histogram total Σ_y c_y, the
// histogram self-product Σ_y c_y², and the sample count n_i as a float.
// The histogram itself lives in the pool's contiguous row matrix (see
// Form), not behind the client pointer, so the greedy scan streams
// sequential memory instead of chasing a pointer per candidate.
type poolClient struct {
	c         *data.Client
	cSum, cSq float64
	n         float64
}

// covAccum carries the running sums that let one candidate addition be
// scored in O(|Y|) flops with no histogram copies: for the group label
// histogram it tracks Σ_y g_y and Σ_y g_y², and for the per-client sample
// counts Σ n_i and Σ n_i². The post-addition sums follow algebraically —
// Σ (g_y+c_y)² = Σ g_y² + 2·(g·c) + Σ c_y² — so only the dot product g·c
// touches the histogram; everything else about the candidate is a
// precomputed poolClient scalar. This is what gets Alg. 2 over a million
// clients in seconds: scoring a candidate costs one length-|Y| dot product
// plus a handful of scalar ops, where the naive form copies the histogram
// and rescans it three times.
type covAccum struct {
	sum, sumSq   float64 // over the group's label histogram
	nSum, nSumSq float64 // over the members' sample counts
	size         float64
}

// admit folds pool client pc (histogram row) into the accumulator. Must be
// called before g.add(pc.c) mutates the histogram the cross term is
// computed against.
func (ac *covAccum) admit(g *Group, pc poolClient, row []float64) {
	cross := 0.0
	for y, n := range row {
		cross += g.Counts[y] * n
	}
	ac.sum += pc.cSum
	ac.sumSq += 2*cross + pc.cSq
	ac.nSum += pc.n
	ac.nSumSq += pc.n * pc.n
	ac.size++
}

// covSquared converts running sums into the squared coefficient of
// variation sigma²/mu² of a y-bin histogram, with the CoVOfCounts edge
// semantics: an empty or zero-total histogram scores +Inf. The E[x²]−mu²
// variance form can go fractionally negative from rounding, so it is
// clamped at zero.
func covSquared(sum, sumSq float64, y int) float64 {
	if y == 0 || sum <= 0 {
		return math.Inf(1)
	}
	mu := sum / float64(y)
	v := sumSq/float64(y) - mu*mu
	if v < 0 {
		v = 0
	}
	return v / (mu * mu)
}

// scoreCurrent evaluates the criterion for the group as it stands. With
// GammaWeight zero (Alg. 2 exactly) the returned value is the *squared*
// CoV — monotone in the CoV, so argmin candidates and threshold checks
// against the squared bound are unchanged while every evaluation skips a
// sqrt. With GammaWeight set the criterion mixes two CoVs additively and
// squaring would not commute, so both terms take their sqrt.
func (a CoVGrouping) scoreCurrent(ac covAccum, classes int) float64 {
	s := covSquared(ac.sum, ac.sumSq, classes)
	if a.GammaWeight <= 0 {
		return s
	}
	return math.Sqrt(s) + a.GammaWeight*covOfSums(ac.nSum, ac.nSumSq, ac.size)
}

// scoreWith evaluates the criterion with pool client pc (histogram row)
// tentatively added.
func (a CoVGrouping) scoreWith(ac covAccum, gc []float64, pc poolClient, row []float64, classes int) float64 {
	cross := 0.0
	for y, n := range row {
		cross += gc[y] * n
	}
	sum := ac.sum + pc.cSum
	sumSq := ac.sumSq + 2*cross + pc.cSq
	s := covSquared(sum, sumSq, classes)
	if a.GammaWeight <= 0 {
		return s
	}
	return math.Sqrt(s) +
		a.GammaWeight*covOfSums(ac.nSum+pc.n, ac.nSumSq+pc.n*pc.n, ac.size+1)
}

// covOfSums is the CoV of a count list given its running sums, matching
// stats.CoV semantics: an all-zero list has CoV 0 (nonnegative counts sum
// to zero only when every count is zero).
func covOfSums(sum, sumSq, n float64) float64 {
	if sum <= 0 {
		return 0
	}
	mu := sum / n
	v := sumSq/n - mu*mu
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v) / mu
}

// Form implements Algorithm 2. The candidate evaluation is incremental
// (running sums plus one dot product per candidate, see covAccum), so the
// whole formation costs O(|K|² · |Y|) instead of the paper's stated
// O(|K|³ · |Y|) — the greedy decisions are identical up to floating-point
// rounding of the criterion. Candidate histograms are packed into one
// contiguous row matrix so the argmin scan is a sequential stream (the
// pool is consumed by swap-delete, which moves one row per removal); at a
// million clients this memory layout, not the flop count, is what keeps
// formation in seconds.
func (a CoVGrouping) Form(clients []*data.Client, classes, edge, firstID int, rng *stats.RNG) []*Group {
	if a.MinGS <= 0 {
		panic("grouping: MinGS must be positive")
	}
	pool := make([]poolClient, len(clients))
	hists := make([]float64, len(clients)*classes)
	for i, c := range clients {
		pc := poolClient{c: c, n: float64(c.NumSamples())}
		row := hists[i*classes : (i+1)*classes]
		for y, n := range c.Counts {
			row[y] = n
			pc.cSum += n
			pc.cSq += n * n
		}
		pool[i] = pc
	}
	// remove swap-deletes pool entry i, keeping the row matrix dense.
	remove := func(i int) {
		last := len(pool) - 1
		pool[i] = pool[last]
		copy(hists[i*classes:(i+1)*classes], hists[last*classes:(last+1)*classes])
		pool = pool[:last]
	}
	var groups []*Group

	maxCoV := a.MaxCoV
	if maxCoV <= 0 {
		maxCoV = math.Inf(1)
	}
	// The threshold the (possibly squared) score is compared against.
	maxScore := maxCoV
	if a.GammaWeight <= 0 {
		maxScore = maxCoV * maxCoV
	}

	for len(pool) > 0 {
		// Line 3: seed the new group with a random client.
		pick := rng.IntN(len(pool))
		g := NewGroup(firstID+len(groups), edge, nil, classes)
		var ac covAccum
		ac.admit(g, pool[pick], hists[pick*classes:(pick+1)*classes])
		g.add(pool[pick].c)
		remove(pick)

		// Line 4: grow while the requirement is unmet and clients remain.
		for (a.scoreCurrent(ac, classes) > maxScore || g.Size() < a.MinGS) && len(pool) > 0 {
			cur := a.scoreCurrent(ac, classes)
			// Line 5: the candidate minimizing the post-addition criterion.
			best, bestScore := -1, math.Inf(1)
			gc := g.Counts[:classes]
			if a.GammaWeight <= 0 {
				// Alg. 2 hot path. The squared CoV is y·sumSq/sum² − 1, a
				// monotone function of sumSq/sum², so the argmin is found by
				// cross-multiplied comparison — no division and no call in
				// the scan, just the dot product against the packed rows.
				// (A zero-total candidate scores +Inf either way: it never
				// beats a positive-total one because its cross product is
				// zero, and ties keep the earlier candidate.)
				bestSum, bestSumSq := 0.0, math.Inf(1)
				for ci := range pool {
					row := hists[ci*classes : (ci+1)*classes]
					cross := 0.0
					for y, n := range row {
						cross += gc[y] * n
					}
					sum := ac.sum + pool[ci].cSum
					sumSq := ac.sumSq + 2*cross + pool[ci].cSq
					if best == -1 || sumSq*bestSum*bestSum < bestSumSq*sum*sum {
						best, bestSum, bestSumSq = ci, sum, sumSq
					}
				}
				bestScore = covSquared(bestSum, bestSumSq, classes)
			} else {
				for ci := range pool {
					s := a.scoreWith(ac, gc, pool[ci], hists[ci*classes:(ci+1)*classes], classes)
					if s < bestScore {
						best, bestScore = ci, s
					}
				}
			}
			// Line 6: accept if it improves the criterion or the group is
			// still too small.
			if bestScore < cur || g.Size() < a.MinGS {
				ac.admit(g, pool[best], hists[best*classes:(best+1)*classes])
				g.add(pool[best].c)
				remove(best)
			} else {
				break // Line 9: finalize.
			}
		}
		groups = append(groups, g)
	}

	// Optional leftover handling (see Config.MergeLeftover).
	if a.MergeLeftover && len(groups) > 1 {
		last := groups[len(groups)-1]
		if last.Size() < a.MinGS {
			groups = groups[:len(groups)-1]
			mergeLeftover(groups, last, stats.CoVOfCounts)
			// Re-number densely.
			for i, g := range groups {
				g.ID = firstID + i
			}
		}
	}
	return groups
}

// VarianceGrouping is the ablation variant that greedily minimizes the raw
// histogram variance instead of the CoV — the criterion the paper argues
// against in Sec. 5.1 because it is scale-sensitive. Structure is otherwise
// identical to CoVGrouping with no MaxCoV constraint (variance has no
// natural scale to threshold).
type VarianceGrouping struct {
	Config
}

// Name returns "VarG".
func (VarianceGrouping) Name() string { return "VarG" }

// Form greedily minimizes the post-addition histogram variance.
func (a VarianceGrouping) Form(clients []*data.Client, classes, edge, firstID int, rng *stats.RNG) []*Group {
	if a.MinGS <= 0 {
		panic("grouping: MinGS must be positive")
	}
	pool := append([]*data.Client(nil), clients...)
	var groups []*Group
	for len(pool) > 0 {
		pick := rng.IntN(len(pool))
		g := NewGroup(firstID+len(groups), edge, nil, classes)
		g.add(pool[pick])
		pool[pick] = pool[len(pool)-1]
		pool = pool[:len(pool)-1]

		for g.Size() < a.MinGS && len(pool) > 0 {
			best, bestScore := -1, math.Inf(1)
			trial := make([]float64, classes)
			for ci, c := range pool {
				copy(trial, g.Counts)
				for y, n := range c.Counts {
					trial[y] += n
				}
				if s := stats.VarianceOfCounts(trial); s < bestScore {
					best, bestScore = ci, s
				}
			}
			c := pool[best]
			g.add(c)
			pool[best] = pool[len(pool)-1]
			pool = pool[:len(pool)-1]
		}
		groups = append(groups, g)
	}
	if a.MergeLeftover && len(groups) > 1 {
		last := groups[len(groups)-1]
		if last.Size() < a.MinGS {
			groups = groups[:len(groups)-1]
			mergeLeftover(groups, last, stats.VarianceOfCounts)
			for i, g := range groups {
				g.ID = firstID + i
			}
		}
	}
	return groups
}
