package grouping

import (
	"math"

	"repro/internal/data"
	"repro/internal/stats"
)

// CoVGrouping is the paper's greedy group formation (Alg. 2). Groups are
// built one at a time: a random seed client starts the group, then the
// client whose addition minimizes the group CoV is added until both the
// MinGS and MaxCoV requirements hold (or no addition improves the CoV and
// the size constraint is already met).
//
// GammaWeight optionally mixes the γ criterion of the paper's future-work
// section into the score: score = CoV(labels) + GammaWeight·CoV(sample
// counts), so groups are also balanced in per-client data volume. Zero
// (the default) reproduces Alg. 2 exactly.
type CoVGrouping struct {
	Config
	GammaWeight float64
}

// Name returns "CoVG".
func (CoVGrouping) Name() string { return "CoVG" }

// score evaluates the (possibly γ-augmented) criterion for a candidate
// group histogram and client sample-count list.
func (a CoVGrouping) score(counts []float64, sampleCounts []float64) float64 {
	s := stats.CoVOfCounts(counts)
	if a.GammaWeight > 0 {
		s += a.GammaWeight * stats.CoV(sampleCounts)
	}
	return s
}

// Form implements Algorithm 2. The candidate evaluation is incremental
// (running histogram plus candidate), so the whole formation costs
// O(|K|² · |Y|) instead of the paper's stated O(|K|³ · |Y|) — the greedy
// decisions are identical.
func (a CoVGrouping) Form(clients []*data.Client, classes, edge, firstID int, rng *stats.RNG) []*Group {
	if a.MinGS <= 0 {
		panic("grouping: MinGS must be positive")
	}
	pool := append([]*data.Client(nil), clients...)
	var groups []*Group

	for len(pool) > 0 {
		// Line 3: seed the new group with a random client.
		pick := rng.IntN(len(pool))
		g := NewGroup(firstID+len(groups), edge, nil, classes)
		g.add(pool[pick])
		pool[pick] = pool[len(pool)-1]
		pool = pool[:len(pool)-1]
		sampleCounts := []float64{float64(g.Clients[len(g.Clients)-1].NumSamples())}

		maxCoV := a.MaxCoV
		if maxCoV <= 0 {
			maxCoV = math.Inf(1)
		}
		// Line 4: grow while the requirement is unmet and clients remain.
		for (a.score(g.Counts, sampleCounts) > maxCoV || g.Size() < a.MinGS) && len(pool) > 0 {
			cur := a.score(g.Counts, sampleCounts)
			// Line 5: the candidate minimizing the post-addition criterion.
			best, bestScore := -1, math.Inf(1)
			trial := make([]float64, classes)
			for ci, c := range pool {
				copy(trial, g.Counts)
				for y, n := range c.Counts {
					trial[y] += n
				}
				s := a.score(trial, append(sampleCounts, float64(c.NumSamples())))
				if s < bestScore {
					best, bestScore = ci, s
				}
			}
			// Line 6: accept if it improves the criterion or the group is
			// still too small.
			if bestScore < cur || g.Size() < a.MinGS {
				c := pool[best]
				g.add(c)
				sampleCounts = append(sampleCounts, float64(c.NumSamples()))
				pool[best] = pool[len(pool)-1]
				pool = pool[:len(pool)-1]
			} else {
				break // Line 9: finalize.
			}
		}
		groups = append(groups, g)
	}

	// Optional leftover handling (see Config.MergeLeftover).
	if a.MergeLeftover && len(groups) > 1 {
		last := groups[len(groups)-1]
		if last.Size() < a.MinGS {
			groups = groups[:len(groups)-1]
			mergeLeftover(groups, last, stats.CoVOfCounts)
			// Re-number densely.
			for i, g := range groups {
				g.ID = firstID + i
			}
		}
	}
	return groups
}

// VarianceGrouping is the ablation variant that greedily minimizes the raw
// histogram variance instead of the CoV — the criterion the paper argues
// against in Sec. 5.1 because it is scale-sensitive. Structure is otherwise
// identical to CoVGrouping with no MaxCoV constraint (variance has no
// natural scale to threshold).
type VarianceGrouping struct {
	Config
}

// Name returns "VarG".
func (VarianceGrouping) Name() string { return "VarG" }

// Form greedily minimizes the post-addition histogram variance.
func (a VarianceGrouping) Form(clients []*data.Client, classes, edge, firstID int, rng *stats.RNG) []*Group {
	if a.MinGS <= 0 {
		panic("grouping: MinGS must be positive")
	}
	pool := append([]*data.Client(nil), clients...)
	var groups []*Group
	for len(pool) > 0 {
		pick := rng.IntN(len(pool))
		g := NewGroup(firstID+len(groups), edge, nil, classes)
		g.add(pool[pick])
		pool[pick] = pool[len(pool)-1]
		pool = pool[:len(pool)-1]

		for g.Size() < a.MinGS && len(pool) > 0 {
			best, bestScore := -1, math.Inf(1)
			trial := make([]float64, classes)
			for ci, c := range pool {
				copy(trial, g.Counts)
				for y, n := range c.Counts {
					trial[y] += n
				}
				if s := stats.VarianceOfCounts(trial); s < bestScore {
					best, bestScore = ci, s
				}
			}
			c := pool[best]
			g.add(c)
			pool[best] = pool[len(pool)-1]
			pool = pool[:len(pool)-1]
		}
		groups = append(groups, g)
	}
	if a.MergeLeftover && len(groups) > 1 {
		last := groups[len(groups)-1]
		if last.Size() < a.MinGS {
			groups = groups[:len(groups)-1]
			mergeLeftover(groups, last, stats.VarianceOfCounts)
			for i, g := range groups {
				g.ID = firstID + i
			}
		}
	}
	return groups
}
