package backdoor

import (
	"math"
	"testing"

	"repro/internal/stats"
)

// benignUpdates returns n updates drawn around a common direction.
func benignUpdates(n, dim int, seed uint64) [][]float64 {
	rng := stats.NewRNG(seed)
	base := make([]float64, dim)
	for d := range base {
		base[d] = rng.Normal(0, 1)
	}
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, dim)
		for d := range out[i] {
			out[i][d] = base[d] + rng.Normal(0, 0.25)
		}
	}
	return out
}

func TestDetectAllBenign(t *testing.T) {
	updates := benignUpdates(8, 50, 1)
	res := Detect(updates, DefaultConfig())
	if len(res.Flagged) != 0 {
		t.Fatalf("flagged %v among benign updates", res.Flagged)
	}
	if len(res.Accepted) != 8 {
		t.Fatalf("accepted %d of 8", len(res.Accepted))
	}
}

func TestDetectFlagsPoisonedUpdate(t *testing.T) {
	updates := benignUpdates(9, 50, 2)
	// The attacker submits a large update pointing the opposite way.
	poison := make([]float64, 50)
	for d := range poison {
		poison[d] = -10 * updates[0][d]
	}
	updates = append(updates, poison)
	res := Detect(updates, DefaultConfig())
	found := false
	for _, f := range res.Flagged {
		if f == 9 {
			found = true
		}
	}
	if !found {
		t.Fatalf("poisoned update not flagged: flagged=%v scores=%v", res.Flagged, res.Scores)
	}
	for _, f := range res.Flagged {
		if f != 9 {
			t.Errorf("benign update %d flagged", f)
		}
	}
}

func TestDetectFlagsMultipleAttackers(t *testing.T) {
	updates := benignUpdates(10, 40, 3)
	rng := stats.NewRNG(4)
	for k := 0; k < 3; k++ {
		poison := make([]float64, 40)
		for d := range poison {
			poison[d] = -5*updates[0][d] + rng.Normal(0, 0.2)
		}
		updates = append(updates, poison)
	}
	res := Detect(updates, DefaultConfig())
	flaggedAttackers := 0
	for _, f := range res.Flagged {
		if f >= 10 {
			flaggedAttackers++
		} else {
			t.Errorf("benign update %d flagged", f)
		}
	}
	if flaggedAttackers < 3 {
		t.Fatalf("only %d/3 attackers flagged (scores %v)", flaggedAttackers, res.Scores)
	}
}

func TestDetectNeverFlagsMajority(t *testing.T) {
	// Two disjoint camps of equal size: no consensus → accept everyone
	// rather than guessing.
	a := benignUpdates(4, 30, 5)
	b := benignUpdates(4, 30, 6)
	for i := range b {
		for d := range b[i] {
			b[i][d] = -b[i][d]
		}
	}
	updates := append(a, b...)
	res := Detect(updates, DefaultConfig())
	if len(res.Flagged) != 0 {
		t.Fatalf("flagged %v in a 50/50 split", res.Flagged)
	}
}

func TestDetectClipsToMedianNorm(t *testing.T) {
	updates := benignUpdates(7, 20, 7)
	// Inflate one benign update's magnitude (same direction → not flagged).
	for d := range updates[3] {
		updates[3][d] *= 50
	}
	res := Detect(updates, DefaultConfig())
	if res.ClipNorm <= 0 {
		t.Fatal("expected a clip norm")
	}
	for _, i := range res.Accepted {
		if n := l2(updates[i]); n > res.ClipNorm*1.0001 {
			t.Fatalf("accepted update %d norm %v exceeds bound %v", i, n, res.ClipNorm)
		}
	}
}

func TestDetectNoClipWhenDisabled(t *testing.T) {
	updates := benignUpdates(5, 20, 8)
	for d := range updates[2] {
		updates[2][d] *= 50
	}
	want := l2(updates[2])
	cfg := DefaultConfig()
	cfg.ClipToMedianNorm = false
	res := Detect(updates, cfg)
	//lint:ignore float-eq test asserts exact deterministic output
	if res.ClipNorm != 0 {
		t.Fatal("ClipNorm should be 0 when disabled")
	}
	if math.Abs(l2(updates[2])-want) > 1e-9 {
		t.Fatal("update mutated despite clipping disabled")
	}
}

func TestDetectDegenerateSizes(t *testing.T) {
	if res := Detect(nil, DefaultConfig()); len(res.Accepted) != 0 || len(res.Flagged) != 0 {
		t.Fatal("empty input should produce empty result")
	}
	one := [][]float64{{1, 2, 3}}
	res := Detect(one, DefaultConfig())
	if len(res.Accepted) != 1 || len(res.Flagged) != 0 {
		t.Fatal("single update must be accepted")
	}
}

func TestDetectIdenticalUpdatesNoFalsePositive(t *testing.T) {
	updates := make([][]float64, 6)
	for i := range updates {
		updates[i] = []float64{1, 2, 3, 4}
	}
	res := Detect(updates, DefaultConfig())
	if len(res.Flagged) != 0 {
		t.Fatalf("identical updates flagged: %v", res.Flagged)
	}
}

func TestPairwiseOpsQuadratic(t *testing.T) {
	ops := func(n int) int {
		return Detect(benignUpdates(n, 10, 9), DefaultConfig()).PairwiseOps
	}
	if o10, o20 := ops(10), ops(20); float64(o20)/float64(o10) < 3.5 {
		t.Fatalf("pairwise ops not quadratic: %d vs %d", o10, o20)
	}
}

func TestMedianHelpers(t *testing.T) {
	//lint:ignore float-eq test asserts exact deterministic output
	if median([]float64{3, 1, 2}) != 2 {
		t.Fatal("odd median")
	}
	//lint:ignore float-eq test asserts exact deterministic output
	if median([]float64{1, 2, 3, 4}) != 2.5 {
		t.Fatal("even median")
	}
	//lint:ignore float-eq test asserts exact deterministic output
	if median(nil) != 0 {
		t.Fatal("empty median")
	}
	//lint:ignore float-eq test asserts exact deterministic output
	if medianAbsDev([]float64{1, 1, 1}, 1) != 0 {
		t.Fatal("MAD of constants")
	}
}
