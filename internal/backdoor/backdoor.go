// Package backdoor implements the backdoor (model poisoning) detection
// group operation whose cost the paper measures in Fig. 8: a FLAME-style
// filter that clusters client updates by pairwise cosine similarity, flags
// the minority that disagrees with the group consensus, and clips the
// surviving updates to the median norm to bound residual poison.
//
// The pairwise similarity matrix is Θ(s²·d) work for a group of s clients —
// the empirical grounding for the quadratic O_g(|g|) overhead model.
package backdoor

import (
	"math"
	"sort"

	"repro/internal/stats"
)

// Config tunes the detector.
type Config struct {
	// MADFactor flags a client when its consensus score falls more than
	// MADFactor median-absolute-deviations below the median score.
	MADFactor float64
	// MinFlagGap is the minimum absolute score shortfall before anything is
	// flagged; it prevents false positives when all updates are essentially
	// identical (MAD ≈ 0).
	MinFlagGap float64
	// ClipToMedianNorm additionally rescales accepted updates to at most
	// the median update norm.
	ClipToMedianNorm bool
}

// DefaultConfig mirrors FLAME's posture: cluster on cosine similarity, clip
// to the median norm.
func DefaultConfig() Config {
	return Config{MADFactor: 3, MinFlagGap: 0.05, ClipToMedianNorm: true}
}

// Result reports the detector's decision.
type Result struct {
	// Accepted and Flagged index into the input update slice.
	Accepted, Flagged []int
	// Scores holds each client's consensus score (median cosine similarity
	// to the other updates).
	Scores []float64
	// ClipNorm is the applied norm bound (0 when clipping was disabled).
	ClipNorm float64
	// PairwiseOps counts the cosine evaluations performed, for the cost
	// harness.
	PairwiseOps int
}

// Detect runs the filter over the group's update vectors. Updates flagged
// as anomalous are excluded from Accepted; when clipping is enabled the
// accepted updates are rescaled in place.
func Detect(updates [][]float64, cfg Config) Result {
	n := len(updates)
	res := Result{Scores: make([]float64, n)}
	if n == 0 {
		return res
	}
	if n == 1 {
		res.Accepted = []int{0}
		res.Scores[0] = 1
		return res
	}

	// Pairwise cosine similarity matrix (symmetric, Θ(n²·d)).
	sim := make([][]float64, n)
	for i := range sim {
		sim[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			c := stats.CosineSimilarity(updates[i], updates[j])
			sim[i][j], sim[j][i] = c, c
			res.PairwiseOps++
		}
	}

	// Consensus score: median similarity to the other members.
	for i := 0; i < n; i++ {
		others := make([]float64, 0, n-1)
		for j := 0; j < n; j++ {
			if j != i {
				others = append(others, sim[i][j])
			}
		}
		res.Scores[i] = median(others)
	}

	med := median(append([]float64(nil), res.Scores...))
	mad := medianAbsDev(res.Scores, med)
	threshold := med - cfg.MADFactor*mad - cfg.MinFlagGap

	for i := 0; i < n; i++ {
		if res.Scores[i] < threshold {
			res.Flagged = append(res.Flagged, i)
		} else {
			res.Accepted = append(res.Accepted, i)
		}
	}
	// Never flag a majority: if the "anomalous" side is at least half the
	// group, consensus is meaningless and everything is accepted.
	if len(res.Flagged)*2 >= n {
		res.Accepted = res.Accepted[:0]
		for i := 0; i < n; i++ {
			res.Accepted = append(res.Accepted, i)
		}
		res.Flagged = nil
	}

	if cfg.ClipToMedianNorm && len(res.Accepted) > 0 {
		norms := make([]float64, 0, len(res.Accepted))
		for _, i := range res.Accepted {
			norms = append(norms, l2(updates[i]))
		}
		bound := median(norms)
		res.ClipNorm = bound
		for _, i := range res.Accepted {
			if nrm := l2(updates[i]); nrm > bound && nrm > 0 {
				scale := bound / nrm
				for d := range updates[i] {
					updates[i][d] *= scale
				}
			}
		}
	}
	return res
}

func l2(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sort.Float64s(xs)
	n := len(xs)
	if n%2 == 1 {
		return xs[n/2]
	}
	return 0.5 * (xs[n/2-1] + xs[n/2])
}

func medianAbsDev(xs []float64, med float64) float64 {
	devs := make([]float64, len(xs))
	for i, x := range xs {
		devs[i] = math.Abs(x - med)
	}
	return median(devs)
}
