package trace

import (
	"strings"
	"testing"
)

func TestSeriesAddAndFinal(t *testing.T) {
	s := &Series{Name: "a"}
	s.Add(1, 10)
	s.Add(2, 20)
	//lint:ignore float-eq test asserts exact deterministic output
	if s.Len() != 2 || s.FinalY() != 20 {
		t.Fatalf("Len=%d FinalY=%v", s.Len(), s.FinalY())
	}
	empty := &Series{}
	//lint:ignore float-eq test asserts exact deterministic output
	if empty.FinalY() != 0 {
		t.Fatal("empty FinalY should be 0")
	}
}

func TestSeriesYAtX(t *testing.T) {
	s := &Series{}
	s.Add(1, 0.2)
	s.Add(3, 0.5)
	s.Add(5, 0.6)
	cases := []struct{ x, want float64 }{
		{0, 0}, {1, 0.2}, {2, 0.2}, {3, 0.5}, {4.9, 0.5}, {5, 0.6}, {100, 0.6},
	}
	for _, c := range cases {
		//lint:ignore float-eq test asserts exact deterministic output
		if got := s.YAtX(c.x); got != c.want {
			t.Errorf("YAtX(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestFigureSeriesAndCSV(t *testing.T) {
	f := &Figure{ID: "fig9", Title: "Accuracy vs round", XLabel: "round", YLabel: "accuracy"}
	a := f.AddSeries("FedAvg")
	a.Add(0, 0.3)
	a.Add(1, 0.4)
	b := f.AddSeries("Group-FEL")
	b.Add(0, 0.35)
	if f.Get("FedAvg") != a || f.Get("missing") != nil {
		t.Fatal("Get broken")
	}
	csv := f.CSV()
	for _, want := range []string{"fig9", "series,round,accuracy", "FedAvg,0,0.3", "Group-FEL,0,0.35"} {
		if !strings.Contains(csv, want) {
			t.Errorf("CSV missing %q:\n%s", want, csv)
		}
	}
	if !strings.Contains(f.Summary(), "FedAvg") {
		t.Error("Summary missing series")
	}
}

func TestTableCSVAndMarkdown(t *testing.T) {
	tb := &Table{ID: "table1", Title: "Group-FEL performance", Header: []string{"alpha", "acc"}}
	tb.AddRow("0.1", "56.7%")
	csv := tb.CSV()
	if !strings.Contains(csv, "alpha,acc") || !strings.Contains(csv, "0.1,56.7%") {
		t.Fatalf("bad CSV:\n%s", csv)
	}
	md := tb.Markdown()
	if !strings.Contains(md, "| alpha | acc |") || !strings.Contains(md, "| 0.1 | 56.7% |") {
		t.Fatalf("bad markdown:\n%s", md)
	}
}

func TestTableMarkdownSanitizesCells(t *testing.T) {
	tb := &Table{ID: "t|2", Title: "with\nnewline", Header: []string{"a|b", "c"}}
	tb.AddRow("x|y", "line1\nline2")
	md := tb.Markdown()
	if !strings.Contains(md, `**t\|2 — with newline**`) {
		t.Fatalf("title not sanitized:\n%s", md)
	}
	if !strings.Contains(md, `| a\|b | c |`) {
		t.Fatalf("header not sanitized:\n%s", md)
	}
	if !strings.Contains(md, `| x\|y | line1 line2 |`) {
		t.Fatalf("cells not sanitized:\n%s", md)
	}
	// Every rendered line must still have the same number of columns.
	for _, line := range strings.Split(strings.TrimSpace(md), "\n") {
		if !strings.HasPrefix(line, "|") {
			continue
		}
		if n := strings.Count(strings.ReplaceAll(line, `\|`, ""), "|"); n != 3 {
			t.Fatalf("line %q has %d unescaped pipes, want 3", line, n)
		}
	}
}

func TestFigureMarkdown(t *testing.T) {
	f := &Figure{ID: "fig9", Title: "acc | cost", XLabel: "cost", YLabel: "acc"}
	s := f.AddSeries("CoV|G")
	s.Add(1, 0.5)
	s.Add(2, 0.75)
	md := f.Markdown()
	if !strings.Contains(md, `**fig9 — acc \| cost**`) {
		t.Fatalf("title not sanitized:\n%s", md)
	}
	if !strings.Contains(md, "| series | cost | acc |") {
		t.Fatalf("missing header:\n%s", md)
	}
	if !strings.Contains(md, `| CoV\|G | 2 | 0.75 |`) {
		t.Fatalf("missing sanitized data row:\n%s", md)
	}
}

func TestTableRowMismatchPanics(t *testing.T) {
	tb := &Table{Header: []string{"a", "b"}}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tb.AddRow("only-one")
}

func TestSanitize(t *testing.T) {
	if sanitize("a,b\nc") != "a;b c" {
		t.Fatalf("sanitize = %q", sanitize("a,b\nc"))
	}
}

func TestSparkline(t *testing.T) {
	s := &Series{}
	for i, y := range []float64{0, 0.25, 0.5, 0.75, 1} {
		s.Add(float64(i), y)
	}
	spark := s.Sparkline()
	runes := []rune(spark)
	if len(runes) != 5 {
		t.Fatalf("sparkline length %d", len(runes))
	}
	if runes[0] != '▁' || runes[4] != '█' {
		t.Fatalf("sparkline endpoints wrong: %s", spark)
	}
	// Monotone input ⇒ non-decreasing glyphs.
	for i := 1; i < len(runes); i++ {
		if runes[i] < runes[i-1] {
			t.Fatalf("sparkline not monotone: %s", spark)
		}
	}
	flat := &Series{}
	flat.Add(0, 0.5)
	flat.Add(1, 0.5)
	if []rune(flat.Sparkline())[0] != '▄' {
		t.Fatalf("flat sparkline: %s", flat.Sparkline())
	}
	if (&Series{}).Sparkline() != "" {
		t.Fatal("empty sparkline should be empty")
	}
}

func TestFigureSparklines(t *testing.T) {
	f := &Figure{ID: "fig", Title: "demo"}
	s := f.AddSeries("acc")
	s.Add(0, 0.1)
	s.Add(1, 0.9)
	out := f.Sparklines()
	if !strings.Contains(out, "acc") || !strings.Contains(out, "0.100 → 0.900") {
		t.Fatalf("sparklines output:\n%s", out)
	}
}
