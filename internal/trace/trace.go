// Package trace provides the small result-recording vocabulary of the
// experiment harness: named (x, y) series grouped into figures, and string
// tables — both renderable as CSV and markdown so every paper artifact can
// be regenerated as text.
package trace

import (
	"fmt"
	"strings"
)

// Series is one named curve of (x, y) points.
type Series struct {
	Name string
	X, Y []float64
}

// Add appends a point.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.X) }

// FinalY returns the last y value (NaN-free series assumed); 0 when empty.
func (s *Series) FinalY() float64 {
	if len(s.Y) == 0 {
		return 0
	}
	return s.Y[len(s.Y)-1]
}

// YAtX returns the y of the last point whose x does not exceed the query,
// i.e. the step-function read-off used for "accuracy at cost C"
// comparisons. Returns 0 before the first point.
func (s *Series) YAtX(x float64) float64 {
	y := 0.0
	for i := range s.X {
		if s.X[i] <= x {
			y = s.Y[i]
		} else {
			break
		}
	}
	return y
}

// Figure is a collection of series with axis metadata, mirroring one figure
// of the paper.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []*Series
}

// AddSeries appends and returns a new named series.
func (f *Figure) AddSeries(name string) *Series {
	s := &Series{Name: name}
	f.Series = append(f.Series, s)
	return s
}

// Get returns the series with the given name, or nil.
func (f *Figure) Get(name string) *Series {
	for _, s := range f.Series {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// CSV renders the figure as long-form CSV: series,x,y.
func (f *Figure) CSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s: %s\n", f.ID, f.Title)
	fmt.Fprintf(&b, "series,%s,%s\n", sanitize(f.XLabel), sanitize(f.YLabel))
	for _, s := range f.Series {
		for i := range s.X {
			fmt.Fprintf(&b, "%s,%g,%g\n", sanitize(s.Name), s.X[i], s.Y[i])
		}
	}
	return b.String()
}

// Summary renders one line per series: name, points, final y.
func (f *Figure) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s (%s vs %s)\n", f.ID, f.Title, f.YLabel, f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, "  %-16s %3d pts   final %s = %.4f\n", s.Name, s.Len(), f.YLabel, s.FinalY())
	}
	return b.String()
}

func sanitize(s string) string {
	return strings.NewReplacer(",", ";", "\n", " ").Replace(s)
}

// sanitizeMD neutralizes the characters that would break a markdown table
// cell: pipes become escaped pipes and newlines collapse to spaces.
func sanitizeMD(s string) string {
	return strings.NewReplacer("|", "\\|", "\r\n", " ", "\n", " ", "\r", " ").Replace(s)
}

// Markdown renders the figure as a long-form markdown table (series, x, y),
// the same shape as CSV but paste-able into a README or PR description.
func (f *Figure) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "**%s — %s**\n\n", sanitizeMD(f.ID), sanitizeMD(f.Title))
	fmt.Fprintf(&b, "| series | %s | %s |\n", sanitizeMD(f.XLabel), sanitizeMD(f.YLabel))
	b.WriteString("|" + strings.Repeat(" --- |", 3) + "\n")
	for _, s := range f.Series {
		for i := range s.X {
			fmt.Fprintf(&b, "| %s | %g | %g |\n", sanitizeMD(s.Name), s.X[i], s.Y[i])
		}
	}
	return b.String()
}

// Table mirrors one table of the paper.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row; the cell count must match the header.
func (t *Table) AddRow(cells ...string) {
	if len(t.Header) != 0 && len(cells) != len(t.Header) {
		panic(fmt.Sprintf("trace: row has %d cells, header has %d", len(cells), len(t.Header)))
	}
	t.Rows = append(t.Rows, cells)
}

// CSV renders the table as CSV.
func (t *Table) CSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s: %s\n", t.ID, t.Title)
	b.WriteString(strings.Join(mapSlice(t.Header, sanitize), ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(mapSlice(row, sanitize), ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// Markdown renders the table as a GitHub-flavoured markdown table. Cells
// and headers are sanitized like the CSV path: a literal | or newline in a
// cell must not change the table's shape.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "**%s — %s**\n\n", sanitizeMD(t.ID), sanitizeMD(t.Title))
	b.WriteString("| " + strings.Join(mapSlice(t.Header, sanitizeMD), " | ") + " |\n")
	b.WriteString("|" + strings.Repeat(" --- |", len(t.Header)) + "\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(mapSlice(row, sanitizeMD), " | ") + " |\n")
	}
	return b.String()
}

func mapSlice(xs []string, f func(string) string) []string {
	out := make([]string, len(xs))
	for i, x := range xs {
		out[i] = f(x)
	}
	return out
}

// sparkRunes are the eight block heights used by Sparkline.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders a series' y-values as a unicode block strip, scaled to
// the series' own [min, max]. A flat series renders as mid-height blocks.
func (s *Series) Sparkline() string {
	if s.Len() == 0 {
		return ""
	}
	lo, hi := s.Y[0], s.Y[0]
	for _, y := range s.Y[1:] {
		if y < lo {
			lo = y
		}
		if y > hi {
			hi = y
		}
	}
	out := make([]rune, s.Len())
	for i, y := range s.Y {
		level := 3 // flat series: mid height
		if hi > lo {
			level = int((y - lo) / (hi - lo) * float64(len(sparkRunes)-1))
		}
		out[i] = sparkRunes[level]
	}
	return string(out)
}

// Sparklines renders every series of the figure as name-prefixed sparkline
// rows — a terminal-friendly glance at the curves.
func (f *Figure) Sparklines() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", f.ID, f.Title)
	for _, s := range f.Series {
		fmt.Fprintf(&b, "  %-16s %s  (%.3f → %.3f)\n", s.Name, s.Sparkline(), firstY(s), s.FinalY())
	}
	return b.String()
}

func firstY(s *Series) float64 {
	if len(s.Y) == 0 {
		return 0
	}
	return s.Y[0]
}
