// Package cost implements the paper's learning cost model (Sec. 3.2):
// every client in a running group pays a training cost H_i(n_i), linear in
// its sample count, plus a group-operation overhead O_g(|g|), quadratic in
// the group size (secure aggregation and backdoor detection both scale with
// the number of pairwise interactions). The total cost of a training run is
// Eq. 5:
//
//	O = Σ_t Σ_{g∈S_t} K · Σ_{c_i∈g} ( O_g(|g|) + E·H_i(n_i) ).
//
// The paper measured these costs on Raspberry Pi 4 devices (Fig. 8); that
// hardware is unavailable here, so the coefficients below are calibrated to
// the published curves (see DESIGN.md substitution table) and the secagg /
// backdoor packages provide executable substrates whose operation counts
// confirm the quadratic shape.
package cost

import "fmt"

// Profile holds the per-task cost coefficients, in seconds. Training costs
// are per-sample per-epoch; group operation costs are per client and
// quadratic in group size.
type Profile struct {
	Name string
	// TrainPerSample is the H_i slope: seconds per sample per local epoch.
	TrainPerSample float64
	// TrainBase is the fixed per-epoch overhead of H_i.
	TrainBase float64
	// SecAggQuad and SecAggLin parameterize the secure aggregation
	// overhead per client: SecAggQuad·s² + SecAggLin·s.
	SecAggQuad, SecAggLin float64
	// BackdoorQuad and BackdoorLin parameterize backdoor detection.
	BackdoorQuad, BackdoorLin float64
	// ScaffoldFactor multiplies the SecAgg cost when the method ships
	// control variates alongside the model (double payload; Fig. 8's
	// "SCAFFOLD SecAgg" curve).
	ScaffoldFactor float64
}

// CIFARProfile is calibrated to the paper's Fig. 8 CIFAR curves: training
// ≈ 0.5 s/sample on an RPi4, SecAgg reaching ≈ 45 s at group size 50.
func CIFARProfile() Profile {
	return Profile{
		Name:           "CIFAR",
		TrainPerSample: 0.50,
		TrainBase:      0.5,
		SecAggQuad:     0.018,
		SecAggLin:      0.05,
		BackdoorQuad:   0.008,
		BackdoorLin:    0.04,
		ScaffoldFactor: 1.9,
	}
}

// SCProfile is calibrated to the lighter SpeechCommands task: cheaper
// training, slightly cheaper group operations (smaller model payload).
func SCProfile() Profile {
	return Profile{
		Name:           "SC",
		TrainPerSample: 0.20,
		TrainBase:      0.3,
		SecAggQuad:     0.012,
		SecAggLin:      0.04,
		BackdoorQuad:   0.006,
		BackdoorLin:    0.03,
		ScaffoldFactor: 1.9,
	}
}

// Training returns H_i(n) for one local epoch over n samples.
func (p Profile) Training(n int) float64 {
	return p.TrainBase + p.TrainPerSample*float64(n)
}

// SecAgg returns the per-client secure aggregation overhead for a group of
// size gs.
func (p Profile) SecAgg(gs int) float64 {
	s := float64(gs)
	return p.SecAggQuad*s*s + p.SecAggLin*s
}

// ScaffoldSecAgg returns the secure aggregation overhead when control
// variates double the payload.
func (p Profile) ScaffoldSecAgg(gs int) float64 {
	return p.ScaffoldFactor * p.SecAgg(gs)
}

// Backdoor returns the per-client backdoor detection overhead.
func (p Profile) Backdoor(gs int) float64 {
	s := float64(gs)
	return p.BackdoorQuad*s*s + p.BackdoorLin*s
}

// OpSet selects which group operations run during group aggregation.
type OpSet struct {
	// SecAgg enables secure aggregation.
	SecAgg bool
	// Backdoor enables backdoor detection.
	Backdoor bool
	// Scaffold marks the double-payload SecAgg variant used when the
	// training method ships control variates (SCAFFOLD).
	Scaffold bool
}

// DefaultOps is the paper's setting: secure aggregation plus backdoor
// detection at every group aggregation.
func DefaultOps() OpSet { return OpSet{SecAgg: true, Backdoor: true} }

// GroupOverhead returns O_g(|g|): the per-client overhead of the enabled
// group operations for a group of size gs.
func (p Profile) GroupOverhead(gs int, ops OpSet) float64 {
	o := 0.0
	if ops.SecAgg {
		if ops.Scaffold {
			o += p.ScaffoldSecAgg(gs)
		} else {
			o += p.SecAgg(gs)
		}
	}
	if ops.Backdoor {
		o += p.Backdoor(gs)
	}
	return o
}

// Accountant accumulates total cost per Eq. 5 across a training run.
// The zero value is unusable; construct with NewAccountant.
type Accountant struct {
	profile Profile
	ops     OpSet
	total   float64
	// byCategory tracks training vs group operation spend for reporting.
	training, groupOps float64
}

// NewAccountant creates an accountant for the given task profile and
// enabled group operations.
func NewAccountant(profile Profile, ops OpSet) *Accountant {
	return &Accountant{profile: profile, ops: ops}
}

// GroupRound charges one group round: every client in the group pays the
// group operation overhead once plus E local training epochs over its own
// samples. Call this K times per global round for each selected group
// (or use GlobalRound).
func (a *Accountant) GroupRound(groupSize int, clientSamples []int, localEpochs int) {
	if groupSize != len(clientSamples) {
		panic(fmt.Sprintf("cost: group size %d but %d client sample counts", groupSize, len(clientSamples)))
	}
	overhead := a.profile.GroupOverhead(groupSize, a.ops)
	for _, n := range clientSamples {
		a.groupOps += overhead
		a.training += float64(localEpochs) * a.profile.Training(n)
	}
	a.total = a.training + a.groupOps
}

// GlobalRound charges K group rounds for each selected group, where
// groups[i] lists the per-client sample counts of the i-th selected group.
func (a *Accountant) GlobalRound(groups [][]int, groupRounds, localEpochs int) {
	for k := 0; k < groupRounds; k++ {
		for _, g := range groups {
			a.GroupRound(len(g), g, localEpochs)
		}
	}
}

// Total returns the accumulated cost (Eq. 5).
func (a *Accountant) Total() float64 { return a.total }

// Training returns the training component of the total.
func (a *Accountant) Training() float64 { return a.training }

// GroupOps returns the group-operation component of the total.
func (a *Accountant) GroupOps() float64 { return a.groupOps }

// Reset clears the accumulated cost.
func (a *Accountant) Reset() { a.total, a.training, a.groupOps = 0, 0, 0 }

// Restore sets the accumulated components to previously captured values,
// so a checkpointed training run resumes cost accounting exactly where it
// stopped. The total is recomputed as their sum, matching GroupRound.
func (a *Accountant) Restore(training, groupOps float64) {
	a.training, a.groupOps = training, groupOps
	a.total = training + groupOps
}
