package cost

import (
	"math"
	"testing"
)

func TestTrainingLinear(t *testing.T) {
	p := CIFARProfile()
	// H(2n) - H(n) must equal H(3n) - H(2n): constant slope.
	d1 := p.Training(20) - p.Training(10)
	d2 := p.Training(30) - p.Training(20)
	if math.Abs(d1-d2) > 1e-12 {
		t.Fatalf("training cost not linear: %v vs %v", d1, d2)
	}
	if p.Training(10) <= p.Training(5) {
		t.Fatal("training cost must increase with data")
	}
}

func TestGroupOpsQuadratic(t *testing.T) {
	for _, p := range []Profile{CIFARProfile(), SCProfile()} {
		// Quadratic growth: doubling group size should more than double
		// the overhead once the quadratic term dominates.
		if p.SecAgg(40) < 3*p.SecAgg(20) {
			t.Errorf("%s SecAgg not superlinear: %v vs %v", p.Name, p.SecAgg(40), p.SecAgg(20))
		}
		if p.Backdoor(40) < 3*p.Backdoor(20) {
			t.Errorf("%s Backdoor not superlinear", p.Name)
		}
		// Second difference of a quadratic is constant.
		d2a := p.SecAgg(12) - 2*p.SecAgg(11) + p.SecAgg(10)
		d2b := p.SecAgg(22) - 2*p.SecAgg(21) + p.SecAgg(20)
		if math.Abs(d2a-d2b) > 1e-9 {
			t.Errorf("%s SecAgg not quadratic", p.Name)
		}
	}
}

func TestScaffoldCostsMore(t *testing.T) {
	p := CIFARProfile()
	for _, gs := range []int{5, 10, 20, 50} {
		if p.ScaffoldSecAgg(gs) <= p.SecAgg(gs) {
			t.Fatalf("SCAFFOLD SecAgg must exceed plain SecAgg at gs=%d", gs)
		}
	}
}

func TestFig8Shape(t *testing.T) {
	// The paper's Fig. 8 ordering at group size 50: SCAFFOLD SecAgg >
	// SecAgg > backdoor detection; and training at 50 samples is comparable
	// to SecAgg at group size ~35-50 (overheads dominate for large groups).
	p := CIFARProfile()
	if !(p.ScaffoldSecAgg(50) > p.SecAgg(50) && p.SecAgg(50) > p.Backdoor(50)) {
		t.Fatal("Fig. 8 overhead ordering violated")
	}
	if p.SecAgg(50) < p.Training(50)*0.8 {
		t.Fatalf("SecAgg at gs=50 (%v) should be comparable to training 50 samples (%v)",
			p.SecAgg(50), p.Training(50))
	}
}

func TestGroupOverheadComposition(t *testing.T) {
	p := CIFARProfile()
	ops := DefaultOps()
	want := p.SecAgg(10) + p.Backdoor(10)
	if got := p.GroupOverhead(10, ops); math.Abs(got-want) > 1e-12 {
		t.Fatalf("GroupOverhead = %v, want %v", got, want)
	}
	sc := OpSet{SecAgg: true, Backdoor: true, Scaffold: true}
	want = p.ScaffoldSecAgg(10) + p.Backdoor(10)
	if got := p.GroupOverhead(10, sc); math.Abs(got-want) > 1e-12 {
		t.Fatalf("scaffold GroupOverhead = %v, want %v", got, want)
	}
	//lint:ignore float-eq test asserts exact deterministic output
	if got := p.GroupOverhead(10, OpSet{}); got != 0 {
		t.Fatalf("no-op overhead = %v, want 0", got)
	}
}

func TestAccountantEq5(t *testing.T) {
	p := CIFARProfile()
	a := NewAccountant(p, DefaultOps())
	clientSamples := []int{10, 20, 30}
	const E = 2
	a.GroupRound(3, clientSamples, E)
	want := 0.0
	overhead := p.GroupOverhead(3, DefaultOps())
	for _, n := range clientSamples {
		want += overhead + E*p.Training(n)
	}
	if math.Abs(a.Total()-want) > 1e-9 {
		t.Fatalf("Total = %v, want %v", a.Total(), want)
	}
	if math.Abs(a.Training()+a.GroupOps()-a.Total()) > 1e-9 {
		t.Fatal("components do not sum to total")
	}
}

func TestAccountantGlobalRound(t *testing.T) {
	p := SCProfile()
	a := NewAccountant(p, DefaultOps())
	groups := [][]int{{10, 10}, {20, 20, 20}}
	const K, E = 5, 2
	a.GlobalRound(groups, K, E)

	b := NewAccountant(p, DefaultOps())
	for k := 0; k < K; k++ {
		b.GroupRound(2, groups[0], E)
		b.GroupRound(3, groups[1], E)
	}
	if math.Abs(a.Total()-b.Total()) > 1e-9 {
		t.Fatalf("GlobalRound %v != manual %v", a.Total(), b.Total())
	}
}

func TestAccountantReset(t *testing.T) {
	a := NewAccountant(CIFARProfile(), DefaultOps())
	a.GroupRound(2, []int{5, 5}, 1)
	//lint:ignore float-eq test asserts exact deterministic output
	if a.Total() == 0 {
		t.Fatal("expected nonzero total")
	}
	a.Reset()
	//lint:ignore float-eq test asserts exact deterministic output
	if a.Total() != 0 || a.Training() != 0 || a.GroupOps() != 0 {
		t.Fatal("Reset incomplete")
	}
}

func TestAccountantPanicsOnMismatch(t *testing.T) {
	a := NewAccountant(CIFARProfile(), DefaultOps())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a.GroupRound(3, []int{1, 2}, 1)
}

func TestSmallGroupsCheaperPerRound(t *testing.T) {
	// The motivation of the whole paper (Fig. 2): with quadratic group
	// operations, one group of 20 costs more than four groups of 5 covering
	// the same clients.
	p := CIFARProfile()
	samples := make([]int, 20)
	for i := range samples {
		samples[i] = 30
	}
	big := NewAccountant(p, DefaultOps())
	big.GroupRound(20, samples, 2)
	small := NewAccountant(p, DefaultOps())
	for i := 0; i < 4; i++ {
		small.GroupRound(5, samples[i*5:(i+1)*5], 2)
	}
	if small.Total() >= big.Total() {
		t.Fatalf("4×5 groups (%v) should cost less than 1×20 (%v)", small.Total(), big.Total())
	}
	// Training spend identical; only overhead differs.
	if math.Abs(small.Training()-big.Training()) > 1e-9 {
		t.Fatal("training spend should not depend on grouping")
	}
}

func TestRestoreResumesAccounting(t *testing.T) {
	p := CIFARProfile()
	samples := [][]int{{30, 40}, {25, 25, 25}}
	full := NewAccountant(p, DefaultOps())
	full.GlobalRound(samples, 2, 3)
	full.GlobalRound(samples, 2, 3)

	half := NewAccountant(p, DefaultOps())
	half.GlobalRound(samples, 2, 3)
	resumed := NewAccountant(p, DefaultOps())
	resumed.Restore(half.Training(), half.GroupOps())
	resumed.GlobalRound(samples, 2, 3)
	//lint:ignore float-eq resume must reproduce the uninterrupted sums exactly
	if resumed.Total() != full.Total() || resumed.Training() != full.Training() || resumed.GroupOps() != full.GroupOps() {
		t.Fatalf("resumed accountant diverged: %v vs %v", resumed.Total(), full.Total())
	}
}
