package felserve

import (
	"fmt"
	"math"

	"repro/internal/core"
)

// KillCloudReport summarizes one kill-the-cloud-mid-run exercise.
type KillCloudReport struct {
	// Jobs lists the job names, sorted.
	Jobs []string
	// KilledAtRound maps job name to the round the crashed cloud had
	// published when it died; ResumedFromRound to the round its checkpoint
	// held (the gap is the recomputed work).
	KilledAtRound    map[string]int
	ResumedFromRound map[string]int
	// FinalAccuracy maps job name to the recovered run's final accuracy.
	FinalAccuracy map[string]float64
	// BitIdentical is true when every recovered job's final weights match
	// the uninterrupted reference bit for bit.
	BitIdentical bool
}

// demoSpecs is the two-tenant workload of the kill-cloud exercise: a plain
// SGD job and a SCAFFOLD job with client dropout, sized so several waves
// fit between checkpoint and crash.
func demoSpecs(seed uint64) []JobSpec {
	return []JobSpec{
		{
			Name: "tenant-a", Clients: 12, Edges: 2,
			SystemSeed: seed, Seed: seed + 100,
			Rounds: 12, GroupRounds: 2, LocalEpochs: 1,
			BatchSize: 16, LR: 0.05, SampleGroups: 2,
		},
		{
			Name: "tenant-b", Clients: 10, Edges: 2,
			SystemSeed: seed + 1, Seed: seed + 200,
			Rounds: 12, GroupRounds: 2, LocalEpochs: 1,
			BatchSize: 16, LR: 0.05, SampleGroups: 2,
			Scaffold: true, DropoutProb: 0.2,
		},
	}
}

// KillCloudDemo is the chaos scenario behind `felnode -chaos kill-cloud`:
// a cloud serving two concurrent jobs is crashed abruptly after a fixed
// number of scheduling waves — past the last checkpoint, so in-memory
// rounds are lost — then a fresh cloud process recovers both jobs from
// their checkpoint files and runs them to completion. The recovered final
// weights must be bit-identical (math.Float64bits) to an uninterrupted
// reference run of the same specs.
func KillCloudDemo(dir string, seed uint64, logf func(format string, args ...any)) (*KillCloudReport, error) {
	specs := demoSpecs(seed)

	// Uninterrupted reference: same specs, no durability, run to the end.
	ref := map[string]*core.Result{}
	refSvc := New(Config{StartHeld: true, Logf: logf})
	for _, spec := range specs {
		if _, err := refSvc.Submit(spec); err != nil {
			return nil, err
		}
	}
	refSvc.Start()
	refSvc.Wait()
	for _, spec := range specs {
		res, err := refSvc.Job(spec.Name).Wait()
		if err != nil {
			return nil, err
		}
		ref[spec.Name] = res
	}
	if err := refSvc.Close(); err != nil {
		return nil, err
	}

	// Crash run: checkpoint every 2 rounds, hard-halt after 5 waves — the
	// jobs are at round 5 in memory but round 4 on disk, so the recovery
	// must recompute the lost round identically.
	crashed := New(Config{Dir: dir, CheckpointEvery: 2, HaltAfterWaves: 5, StartHeld: true, Logf: logf})
	killedAt := map[string]int{}
	for _, spec := range specs {
		if _, err := crashed.Submit(spec); err != nil {
			return nil, err
		}
	}
	crashed.Start()
	<-crashed.Halted()
	for _, spec := range specs {
		killedAt[spec.Name] = crashed.Job(spec.Name).Round()
	}
	crashed.Kill()

	// Restarted cloud: recover everything the checkpoint directory holds.
	recoveredSvc := New(Config{Dir: dir, CheckpointEvery: 2, Logf: logf})
	jobs, err := recoveredSvc.Recover()
	if err != nil {
		return nil, err
	}
	if len(jobs) != len(specs) {
		return nil, fmt.Errorf("felserve: recovered %d jobs, want %d", len(jobs), len(specs))
	}
	rep := &KillCloudReport{
		KilledAtRound:    killedAt,
		ResumedFromRound: map[string]int{},
		FinalAccuracy:    map[string]float64{},
		BitIdentical:     true,
	}
	for _, j := range jobs {
		rep.Jobs = append(rep.Jobs, j.Name())
		rep.ResumedFromRound[j.Name()] = j.Round()
	}
	recoveredSvc.Wait()
	for _, j := range jobs {
		res, err := j.Wait()
		if err != nil {
			return nil, err
		}
		rep.FinalAccuracy[j.Name()] = res.FinalAccuracy
		want := ref[j.Name()]
		if len(res.Params) != len(want.Params) {
			rep.BitIdentical = false
			continue
		}
		for i := range res.Params {
			if math.Float64bits(res.Params[i]) != math.Float64bits(want.Params[i]) {
				rep.BitIdentical = false
				break
			}
		}
	}
	if err := recoveredSvc.Close(); err != nil {
		return nil, err
	}
	if !rep.BitIdentical {
		return rep, fmt.Errorf("felserve: recovered weights are not bit-identical to the uninterrupted run")
	}
	return rep, nil
}
