package felserve

import (
	"bytes"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenSpec is the fixed job whose checkpoint bytes the golden file pins:
// SCAFFOLD with dropout, so every frame kind — spec, trainer, records,
// participation, server variate, per-client variates — appears.
func goldenSpec() JobSpec {
	return JobSpec{
		Name: "golden", Clients: 8, Edges: 2,
		SystemSeed: 11, Seed: 13,
		Rounds: 6, GroupRounds: 2, LocalEpochs: 1,
		BatchSize: 16, LR: 0.05, SampleGroups: 2,
		Scaffold: true, DropoutProb: 0.2,
	}
}

// goldenState steps the golden job's trainer to round 3 and exports.
func goldenState(t *testing.T, spec JobSpec) *core.TrainerState {
	t.Helper()
	tr := core.NewTrainer(spec.System(), spec.TrainConfig(nil))
	for tr.Round() < 3 {
		tr.Step()
	}
	st, err := tr.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestCheckpointGolden pins the checkpoint encoding byte for byte.
// Regenerate with `go test ./internal/felserve -run Golden -update` — after
// a format change (which must also bump ckptFormat) or after an intentional
// change to the trainer's canonical numerics (the golden embeds round-3
// weights, so e.g. reshaping the aggregation order moves its bytes without
// any format change).
func TestCheckpointGolden(t *testing.T) {
	spec := goldenSpec()
	st := goldenState(t, spec)
	var buf bytes.Buffer
	n, err := EncodeCheckpoint(&buf, spec, st)
	if err != nil {
		t.Fatal(err)
	}
	if n != buf.Len() {
		t.Fatalf("EncodeCheckpoint reported %d bytes, wrote %d", n, buf.Len())
	}
	golden := filepath.Join("testdata", "checkpoint.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("checkpoint encoding changed: %d bytes, golden %d — a format change must bump ckptFormat and regenerate",
			buf.Len(), len(want))
	}
}

// TestCheckpointRoundTrip: decode(encode(x)) == x, field for field and bit
// for bit, through the actual file path (atomic save + load).
func TestCheckpointRoundTrip(t *testing.T) {
	spec := goldenSpec()
	st := goldenState(t, spec)
	dir := t.TempDir()
	if _, err := SaveCheckpoint(dir, spec, st); err != nil {
		t.Fatal(err)
	}
	gotSpec, gotSt, err := LoadCheckpoint(checkpointPath(dir, spec.Name))
	if err != nil {
		t.Fatal(err)
	}
	if gotSpec != spec {
		t.Fatalf("spec round trip: got %+v, want %+v", gotSpec, spec)
	}
	if gotSt.Round != st.Round || gotSt.SampleHi != st.SampleHi || gotSt.SampleLo != st.SampleLo {
		t.Fatal("round or sampling stream corrupted")
	}
	if math.Float64bits(gotSt.CostTraining) != math.Float64bits(st.CostTraining) ||
		math.Float64bits(gotSt.CostGroupOps) != math.Float64bits(st.CostGroupOps) ||
		math.Float64bits(gotSt.WallClock) != math.Float64bits(st.WallClock) {
		t.Fatal("cost components corrupted")
	}
	if gotSt.Dropouts != st.Dropouts || gotSt.UplinkBytes != st.UplinkBytes {
		t.Fatal("dropout/uplink accounting corrupted")
	}
	bitEq := func(what string, a, b []float64) {
		t.Helper()
		if len(a) != len(b) {
			t.Fatalf("%s: length %d vs %d", what, len(a), len(b))
		}
		for i := range a {
			if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
				t.Fatalf("%s: element %d differs", what, i)
			}
		}
	}
	bitEq("params", gotSt.Params, st.Params)
	if len(gotSt.Records) != len(st.Records) {
		t.Fatalf("%d records, want %d", len(gotSt.Records), len(st.Records))
	}
	for i := range st.Records {
		if gotSt.Records[i] != st.Records[i] {
			t.Fatalf("record %d: %+v vs %+v", i, gotSt.Records[i], st.Records[i])
		}
	}
	if len(gotSt.Participation) != len(st.Participation) {
		t.Fatal("participation size differs")
	}
	for id, n := range st.Participation {
		if gotSt.Participation[id] != n {
			t.Fatalf("participation[%d] = %d, want %d", id, gotSt.Participation[id], n)
		}
	}
	if (gotSt.Scaffold == nil) != (st.Scaffold == nil) {
		t.Fatal("scaffold presence differs")
	}
	bitEq("scaffold c", gotSt.Scaffold.C, st.Scaffold.C)
	if len(gotSt.Scaffold.ClientIDs) != len(st.Scaffold.ClientIDs) {
		t.Fatal("scaffold client count differs")
	}
	for i, id := range st.Scaffold.ClientIDs {
		if gotSt.Scaffold.ClientIDs[i] != id {
			t.Fatalf("scaffold client %d: id %d, want %d", i, gotSt.Scaffold.ClientIDs[i], id)
		}
		bitEq("scaffold ci", gotSt.Scaffold.CI[i], st.Scaffold.CI[i])
	}
}

// TestCheckpointRejectsCorruption: a flipped byte anywhere must fail the
// decode (the wire codec's CRC does the heavy lifting), and a truncated
// file must be rejected rather than half-loaded.
func TestCheckpointRejectsCorruption(t *testing.T) {
	spec := goldenSpec()
	st := goldenState(t, spec)
	var buf bytes.Buffer
	if _, err := EncodeCheckpoint(&buf, spec, st); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for _, off := range []int{3, len(raw) / 2, len(raw) - 1} {
		mut := append([]byte(nil), raw...)
		mut[off] ^= 0x40
		if _, _, err := DecodeCheckpoint(bytes.NewReader(mut)); err == nil {
			t.Fatalf("decode accepted a corrupted byte at offset %d", off)
		}
	}
	if _, _, err := DecodeCheckpoint(bytes.NewReader(raw[:len(raw)-7])); err == nil {
		t.Fatal("decode accepted a truncated checkpoint")
	}
	if _, _, err := DecodeCheckpoint(bytes.NewReader(raw[:40])); err == nil {
		t.Fatal("decode accepted a checkpoint missing mandatory frames")
	}
}
