package felserve

import (
	"errors"
	"fmt"
	"net"
	"time"

	"repro/internal/fednode"
	"repro/internal/metrics"
	"repro/internal/wire"
)

// Admission control: one listener multiplexes subscribers for every job on
// the service. A subscriber opens a connection, sends a JobControl hello
// naming its job, and receives an admit or reject verdict. Admitted
// subscribers immediately get the job's current model version — a late
// joiner adopts the live model, the serving-layer generalization of
// fednode's crash-rejoin adoption — and then a GlobalModel frame per
// published round, coalesced latest-wins: a subscriber that cannot keep up
// skips intermediate versions instead of buffering them, so no consumer can
// apply backpressure to training or grow an unbounded queue. When the job
// finishes, the final model arrives as GlobalAggregate and the connection
// closes.

// JobControl opcodes, carried in the frame's Seq field.
const (
	opHello uint32 = 1 + iota
	opAdmit
	opRejectUnknown
	opRejectBusy
)

// Subscription errors a client can match with errors.Is.
var (
	ErrUnknownJob = errors.New("felserve: unknown job")
	ErrJobBusy    = errors.New("felserve: job at subscriber capacity")
)

// subscriber is the service-side state of one admitted connection: a
// one-slot latest-version mailbox plus a level-triggered notify channel.
type subscriber struct {
	id     int
	notify chan struct{}

	// Guarded by the owning job's mu (offer runs under it); the handler
	// reads through take, which re-locks.
	version int
	params  []float64
	final   bool
}

// offer replaces the mailbox contents with a newer version. Callers hold
// the job's mu. Non-blocking by construction.
func (sub *subscriber) offer(version int, params []float64, final bool) {
	sub.version = version
	sub.params = params
	sub.final = sub.final || final
	select {
	case sub.notify <- struct{}{}:
	default:
	}
}

// take reads the mailbox under the job lock.
func (j *Job) take(sub *subscriber) (version int, params []float64, final bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return sub.version, sub.params, sub.final
}

// addSub admits a subscriber unless the job is at capacity.
func (j *Job) addSub(maxSubs int) (*subscriber, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if len(j.subs) >= maxSubs {
		return nil, false
	}
	j.nextSub++
	sub := &subscriber{id: j.nextSub, notify: make(chan struct{}, 1)}
	j.subs[sub.id] = sub
	// Seed the mailbox with the current version so the handler's first
	// wait returns immediately — the late-joiner adoption path.
	sub.offer(j.version, j.params, j.result != nil || j.err != nil)
	return sub, true
}

// removeSub forgets a departed subscriber.
func (j *Job) removeSub(id int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	delete(j.subs, id)
}

// Serve accepts subscriber connections on ln until the service stops. It
// returns immediately; accept and handler goroutines are joined by
// Close/Kill. Multiple listeners may serve one service.
func (s *Service) Serve(ln net.Listener) {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		closeQuiet(ln)
		return
	}
	s.listeners = append(s.listeners, ln)
	s.connWG.Add(1)
	s.mu.Unlock()
	go func() {
		defer s.connWG.Done()
		for {
			// Transient (timeout-class) accept failures — fd exhaustion
			// under a subscriber storm — back off and retry instead of
			// killing the front door; anything else means the listener is
			// closed (stop) or broken, and the loop drains.
			conn, err := fednode.AcceptRetry(ln, 5, 10*time.Millisecond, nil)
			if err != nil {
				return
			}
			if !s.track(conn) {
				closeQuiet(conn)
				return
			}
			s.connWG.Add(1)
			go func(conn net.Conn) {
				defer s.connWG.Done()
				defer s.untrack(conn)
				s.handle(conn)
			}(conn)
		}
	}()
}

// track registers a live connection for shutdown teardown.
func (s *Service) track(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopped {
		return false
	}
	s.conns[conn] = struct{}{}
	return true
}

func (s *Service) untrack(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
	closeQuiet(conn)
}

// handle runs one subscriber session: hello, verdict, then the version
// stream until the job completes, the peer leaves, or the service stops.
func (s *Service) handle(conn net.Conn) {
	hello, err := wire.Decode(conn, 0)
	if err != nil || hello.Type != wire.JobControl || hello.Seq != opHello {
		return // malformed or torn hello: drop silently
	}
	name := make([]byte, 0, len(hello.Ints))
	for _, b := range hello.Ints {
		name = append(name, byte(b))
	}
	j := s.Job(string(name))
	if j == nil {
		s.reject(conn, opRejectUnknown, "unknown_job")
		return
	}
	maxSubs := s.cfg.MaxSubscribersPerJob
	if maxSubs <= 0 {
		maxSubs = 4096
	}
	sub, ok := j.addSub(maxSubs)
	if !ok {
		s.reject(conn, opRejectBusy, "busy")
		return
	}
	defer j.removeSub(sub.id)
	s.subAdmitted.Inc()
	s.subActive.Add(1)
	defer s.subActive.Add(-1)
	if _, err := wire.Encode(conn, &wire.Message{Type: wire.JobControl, Seq: opAdmit, From: int32(sub.id)}); err != nil {
		return
	}

	sent := -1
	for {
		select {
		case <-s.closing:
			return
		case <-sub.notify:
		}
		version, params, final := j.take(sub)
		if version > sent || (sent < 0 && params != nil) {
			typ := wire.GlobalModel
			if final {
				typ = wire.GlobalAggregate
			}
			m := &wire.Message{Type: typ, Round: uint32(version), Floats: params}
			if _, err := wire.Encode(conn, m); err != nil {
				return
			}
			sent = version
			s.versionsCtr.Inc()
		} else if final {
			// Already sent this version as GlobalModel; reannounce it as
			// the final aggregate so the subscriber knows the job is over.
			m := &wire.Message{Type: wire.GlobalAggregate, Round: uint32(version), Floats: params}
			//lint:ignore dropped-error the session ends here either way; the peer detects loss via its read
			wire.Encode(conn, m)
			return
		}
		if final {
			return
		}
	}
}

// reject answers a hello with a verdict frame and counts it.
func (s *Service) reject(conn net.Conn, op uint32, reason string) {
	s.reg.Counter("fel_serve_subscribers_rejected_total", metrics.L("reason", reason)).Inc()
	//lint:ignore dropped-error the connection is being refused; the peer sees the close either way
	wire.Encode(conn, &wire.Message{Type: wire.JobControl, Seq: op})
}

// closeQuiet closes c where the close error changes nothing for the caller.
func closeQuiet(c interface{ Close() error }) {
	//lint:ignore dropped-error shutdown-path close; the connection is being abandoned either way
	c.Close()
}

// Subscription is the client side of one admitted connection — what the
// load harness and felnode's serve-mode clients use to follow a job.
type Subscription struct {
	conn net.Conn
	// ID is the service-assigned subscriber id.
	ID int
}

// Subscribe performs the hello/verdict handshake for job on conn. On
// rejection the returned error matches ErrUnknownJob or ErrJobBusy and the
// caller still owns (and should close) conn.
func Subscribe(conn net.Conn, job string) (*Subscription, error) {
	ints := make([]int32, len(job))
	for i := 0; i < len(job); i++ {
		ints[i] = int32(job[i])
	}
	if _, err := wire.Encode(conn, &wire.Message{Type: wire.JobControl, Seq: opHello, Ints: ints}); err != nil {
		return nil, fmt.Errorf("felserve: hello: %w", err)
	}
	verdict, err := wire.Decode(conn, 0)
	if err != nil {
		return nil, fmt.Errorf("felserve: verdict: %w", err)
	}
	if verdict.Type != wire.JobControl {
		return nil, fmt.Errorf("felserve: verdict frame is %s, want JobControl", verdict.Type)
	}
	switch verdict.Seq {
	case opAdmit:
		return &Subscription{conn: conn, ID: int(verdict.From)}, nil
	case opRejectUnknown:
		return nil, fmt.Errorf("%w: %q", ErrUnknownJob, job)
	case opRejectBusy:
		return nil, fmt.Errorf("%w: %q", ErrJobBusy, job)
	}
	return nil, fmt.Errorf("felserve: unknown verdict opcode %d", verdict.Seq)
}

// Next blocks for the next model version. final is true when the frame is
// the job's closing GlobalAggregate; the connection is done after it.
func (sub *Subscription) Next() (version int, params []float64, final bool, err error) {
	m, err := wire.Decode(sub.conn, 0)
	if err != nil {
		return 0, nil, false, err
	}
	switch m.Type {
	case wire.GlobalModel:
		return int(m.Round), m.Floats, false, nil
	case wire.GlobalAggregate:
		return int(m.Round), m.Floats, true, nil
	}
	return 0, nil, false, fmt.Errorf("felserve: unexpected %s frame in version stream", m.Type)
}

// Close releases the subscription's connection.
func (sub *Subscription) Close() error { return sub.conn.Close() }
