package felserve

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"repro/internal/fednode"
)

// TestServeLoadSmoke is the in-tree slice of the load harness (the felbench
// `-load` scenario drives the same path harder): hundreds of loopback
// subscribers fan in over one listener while two jobs train concurrently.
// Every subscriber must end on the correct final aggregate, the service
// counters must balance, and — the leak contract — the goroutine count must
// settle back once the service closes. ci.sh runs this under -race.
func TestServeLoadSmoke(t *testing.T) {
	before := runtime.NumGoroutine()
	const subsPerJob = 150

	nw := fednode.NewMemNetwork()
	ln, err := nw.Listen("cloud")
	if err != nil {
		t.Fatal(err)
	}
	svc := New(Config{StartHeld: true})
	svc.Serve(ln)
	specs := demoSpecs(21)
	for i := range specs {
		specs[i].Rounds = 6
		if _, err := svc.Submit(specs[i]); err != nil {
			t.Fatal(err)
		}
	}

	// Half the fleet connects before the first round, half joins mid-run
	// (after Start) to exercise the late-joiner path under contention.
	var wg sync.WaitGroup
	errs := make(chan error, 2*subsPerJob)
	finals := make(chan []float64, 2*subsPerJob)
	follow := func(job string) {
		defer wg.Done()
		conn, err := nw.Dial("cloud")
		if err != nil {
			errs <- err
			return
		}
		defer closeQuiet(conn)
		sub, err := Subscribe(conn, job)
		if err != nil {
			errs <- fmt.Errorf("subscribe %s: %w", job, err)
			return
		}
		last := -1
		for {
			version, params, final, err := sub.Next()
			if err != nil {
				errs <- fmt.Errorf("next %s: %w", job, err)
				return
			}
			if version < last {
				errs <- fmt.Errorf("job %s: version stream rewound %d -> %d", job, last, version)
				return
			}
			last = version
			if final {
				finals <- params
				return
			}
		}
	}
	for _, spec := range specs {
		for i := 0; i < subsPerJob/2; i++ {
			wg.Add(1)
			go follow(spec.Name)
		}
	}
	svc.Start()
	for _, spec := range specs {
		for i := 0; i < subsPerJob-subsPerJob/2; i++ {
			wg.Add(1)
			go follow(spec.Name)
		}
	}
	svc.Wait()
	wg.Wait()
	close(errs)
	close(finals)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	want := map[string][]float64{}
	for _, spec := range specs {
		res, err := svc.Job(spec.Name).Wait()
		if err != nil {
			t.Fatal(err)
		}
		want[spec.Name] = res.Params
	}
	got := 0
	for params := range finals {
		got++
		matched := false
		for _, w := range want {
			if sameBits(params, w) {
				matched = true
				break
			}
		}
		if !matched {
			t.Fatal("a subscriber's final aggregate matches no job's result")
		}
	}
	if got != 2*subsPerJob {
		t.Fatalf("%d subscribers reached the final aggregate, want %d", got, 2*subsPerJob)
	}

	// Round throughput and admission accounting must balance exactly.
	wantRounds := int64(0)
	for _, spec := range specs {
		wantRounds += int64(spec.Rounds)
	}
	if v := svc.roundsCtr.Value(); v != wantRounds {
		t.Fatalf("fel_serve_rounds_total = %d, want %d", v, wantRounds)
	}
	if v := svc.subAdmitted.Value(); v != 2*subsPerJob {
		t.Fatalf("fel_serve_subscribers_admitted_total = %d, want %d", v, 2*subsPerJob)
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	//lint:ignore float-eq gauge must land on exactly zero
	if v := svc.subActive.Value(); v != 0 {
		t.Fatalf("fel_serve_subscribers_active = %g after Close, want 0", v)
	}
	waitGoroutines(t, before)
}
