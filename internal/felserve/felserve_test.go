package felserve

import (
	"errors"
	"math"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fednode"
	"repro/internal/metrics"
)

// waitGoroutines fails the test if the goroutine count does not settle back
// to (near) its pre-run level — a leaked accept loop, subscriber handler, or
// scheduler would hold it up.
func waitGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= before+3 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: %d before run, %d after\n%s", before, n, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(25 * time.Millisecond)
	}
}

func sameBits(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// TestKillCloudResume is the tentpole acceptance check: a cloud serving two
// concurrent jobs is crashed past its last checkpoint, restarted, and must
// finish every job with weights bit-identical to an uninterrupted run — with
// no goroutines left behind by any of the three service instances.
func TestKillCloudResume(t *testing.T) {
	before := runtime.NumGoroutine()
	rep, err := KillCloudDemo(t.TempDir(), 42, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.BitIdentical {
		t.Fatal("recovered weights differ from the uninterrupted reference")
	}
	if len(rep.Jobs) != 2 {
		t.Fatalf("recovered %d jobs, want 2", len(rep.Jobs))
	}
	for _, name := range rep.Jobs {
		killed, resumed := rep.KilledAtRound[name], rep.ResumedFromRound[name]
		if resumed >= killed {
			t.Fatalf("job %s: resumed from round %d >= killed at round %d — the crash lost no work, so the test proved nothing", name, resumed, killed)
		}
		if resumed <= 0 {
			t.Fatalf("job %s: resumed from round %d — checkpoint never captured progress", name, resumed)
		}
	}
	waitGoroutines(t, before)
}

// TestTwoJobIsolation runs the same two specs once concurrently on a single
// service and once serially on dedicated services. Tenant isolation means
// the mode of execution must be unobservable per job: final weights
// bit-identical and the per-job metric registries byte-identical after
// timing masking.
func TestTwoJobIsolation(t *testing.T) {
	before := runtime.NumGoroutine()
	specs := demoSpecs(7)

	type out struct {
		res  *core.Result
		snap string
	}
	concurrent := map[string]out{}
	svc := New(Config{StartHeld: true})
	for _, spec := range specs {
		if _, err := svc.Submit(spec); err != nil {
			t.Fatal(err)
		}
	}
	svc.Start()
	svc.Wait()
	for _, spec := range specs {
		j := svc.Job(spec.Name)
		res, err := j.Wait()
		if err != nil {
			t.Fatal(err)
		}
		concurrent[spec.Name] = out{res: res, snap: metrics.MaskTimings(j.Registry().Snapshot())}
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}

	for _, spec := range specs {
		solo := New(Config{})
		j, err := solo.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		res, err := j.Wait()
		if err != nil {
			t.Fatal(err)
		}
		want := concurrent[spec.Name]
		if !sameBits(res.Params, want.res.Params) {
			t.Errorf("job %s: final weights differ between concurrent and serial execution", spec.Name)
		}
		if math.Float64bits(res.TotalCost) != math.Float64bits(want.res.TotalCost) {
			t.Errorf("job %s: TotalCost differs between concurrent and serial execution", spec.Name)
		}
		if snap := metrics.MaskTimings(j.Registry().Snapshot()); snap != want.snap {
			t.Errorf("job %s: masked metric snapshots differ between concurrent and serial execution:\n--- concurrent ---\n%s\n--- serial ---\n%s",
				spec.Name, want.snap, snap)
		}
		if err := solo.Close(); err != nil {
			t.Fatal(err)
		}
	}

	// The cross-tenant seams must also hold: different specs, different
	// weights (otherwise "isolation" is vacuous).
	if sameBits(concurrent[specs[0].Name].res.Params, concurrent[specs[1].Name].res.Params) {
		t.Fatal("the two tenants produced identical weights; specs are not exercising isolation")
	}
	waitGoroutines(t, before)
}

// TestSubmitValidation pins the Submit-side guard rails: bad specs and
// duplicate names fail with errors instead of reaching the scheduler.
func TestSubmitValidation(t *testing.T) {
	svc := New(Config{StartHeld: true})
	defer svc.Kill()
	good := demoSpecs(1)[0]
	if _, err := svc.Submit(good); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Submit(good); err == nil {
		t.Fatal("duplicate job name accepted")
	}
	for _, mut := range []func(*JobSpec){
		func(s *JobSpec) { s.Name = "" },
		func(s *JobSpec) { s.Name = "../escape" },
		func(s *JobSpec) { s.Name = ".hidden" },
		func(s *JobSpec) { s.Name = "has space" },
		func(s *JobSpec) { s.Clients = 0 },
		func(s *JobSpec) { s.Rounds = 0 },
		func(s *JobSpec) { s.LR = 0 },
		func(s *JobSpec) { s.SampleGroups = 0 },
		func(s *JobSpec) { s.DropoutProb = 1 },
	} {
		bad := good
		bad.Name = "other"
		mut(&bad)
		if _, err := svc.Submit(bad); err == nil {
			t.Fatalf("invalid spec accepted: %+v", bad)
		}
	}
}

// TestAdmissionVerdicts covers the front door: unknown jobs are rejected
// with ErrUnknownJob, capacity overflow with ErrJobBusy, and an admitted
// subscriber immediately receives the job's current model version.
func TestAdmissionVerdicts(t *testing.T) {
	before := runtime.NumGoroutine()
	nw := fednode.NewMemNetwork()
	ln, err := nw.Listen("cloud")
	if err != nil {
		t.Fatal(err)
	}
	svc := New(Config{StartHeld: true, MaxSubscribersPerJob: 1})
	svc.Serve(ln)
	spec := demoSpecs(3)[0]
	if _, err := svc.Submit(spec); err != nil {
		t.Fatal(err)
	}

	// Unknown job.
	conn, err := nw.Dial("cloud")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Subscribe(conn, "no-such-job"); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("subscribing to an unknown job: got %v, want ErrUnknownJob", err)
	}
	closeQuiet(conn)

	// First subscriber fills the only slot...
	c1, err := nw.Dial("cloud")
	if err != nil {
		t.Fatal(err)
	}
	sub1, err := Subscribe(c1, spec.Name)
	if err != nil {
		t.Fatal(err)
	}
	version, _, final, err := sub1.Next()
	if err != nil {
		t.Fatal(err)
	}
	if version != 0 || final {
		t.Fatalf("held scheduler: first frame is version %d (final=%v), want the initial version 0", version, final)
	}

	// ...so the second hello bounces with busy.
	c2, err := nw.Dial("cloud")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Subscribe(c2, spec.Name); !errors.Is(err, ErrJobBusy) {
		t.Fatalf("subscribing past capacity: got %v, want ErrJobBusy", err)
	}
	closeQuiet(c2)
	closeQuiet(sub1)

	svc.Kill()
	waitGoroutines(t, before)
}

// TestLateJoinerAdoptsCurrentVersion freezes a cloud mid-job (HaltAfterWaves
// leaves the scheduler dead but the front door open) and subscribes fresh:
// the first frame must be the CURRENT version, not a replay from round zero.
// A second part subscribes to an already-completed job and must get the
// final aggregate immediately.
func TestLateJoinerAdoptsCurrentVersion(t *testing.T) {
	before := runtime.NumGoroutine()
	nw := fednode.NewMemNetwork()
	ln, err := nw.Listen("cloud")
	if err != nil {
		t.Fatal(err)
	}
	svc := New(Config{StartHeld: true, HaltAfterWaves: 3})
	svc.Serve(ln)
	spec := demoSpecs(5)[0]
	if _, err := svc.Submit(spec); err != nil {
		t.Fatal(err)
	}
	svc.Start()
	<-svc.Halted()

	conn, err := nw.Dial("cloud")
	if err != nil {
		t.Fatal(err)
	}
	sub, err := Subscribe(conn, spec.Name)
	if err != nil {
		t.Fatal(err)
	}
	version, params, final, err := sub.Next()
	if err != nil {
		t.Fatal(err)
	}
	if version != 3 || final {
		t.Fatalf("late joiner got version %d (final=%v), want the current version 3", version, final)
	}
	if len(params) == 0 {
		t.Fatal("late joiner got an empty model")
	}
	closeQuiet(sub)
	svc.Kill()
	waitGoroutines(t, before)

	// Completed job: the adoption frame doubles as the final aggregate.
	done := New(Config{})
	ln2, err := nw.Listen("cloud2")
	if err != nil {
		t.Fatal(err)
	}
	done.Serve(ln2)
	j, err := done.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := j.Wait()
	if err != nil {
		t.Fatal(err)
	}
	conn2, err := nw.Dial("cloud2")
	if err != nil {
		t.Fatal(err)
	}
	sub2, err := Subscribe(conn2, spec.Name)
	if err != nil {
		t.Fatal(err)
	}
	version, params, final, err = sub2.Next()
	if err != nil {
		t.Fatal(err)
	}
	if !final || version != spec.Rounds {
		t.Fatalf("completed job: got version %d (final=%v), want final version %d", version, final, spec.Rounds)
	}
	if !sameBits(params, res.Params) {
		t.Fatal("completed job: the aggregate sent to a late subscriber differs from the job result")
	}
	closeQuiet(sub2)
	if err := done.Close(); err != nil {
		t.Fatal(err)
	}
	waitGoroutines(t, before)
}

// TestSubscriberStreamEndsWithAggregate follows a full job from version 0 to
// completion over the wire: versions must be strictly increasing (coalescing
// may skip, never rewind), and the closing GlobalAggregate must carry the
// job's final weights bit for bit.
func TestSubscriberStreamEndsWithAggregate(t *testing.T) {
	before := runtime.NumGoroutine()
	nw := fednode.NewMemNetwork()
	ln, err := nw.Listen("cloud")
	if err != nil {
		t.Fatal(err)
	}
	svc := New(Config{StartHeld: true})
	svc.Serve(ln)
	spec := demoSpecs(9)[0]
	spec.Rounds = 6
	j, err := svc.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := nw.Dial("cloud")
	if err != nil {
		t.Fatal(err)
	}
	sub, err := Subscribe(conn, spec.Name)
	if err != nil {
		t.Fatal(err)
	}
	svc.Start()

	last, frames := -1, 0
	var finalParams []float64
	for {
		version, params, final, err := sub.Next()
		if err != nil {
			t.Fatal(err)
		}
		if version <= last && !(final && version == last) {
			t.Fatalf("version stream rewound: %d after %d", version, last)
		}
		last = version
		frames++
		if final {
			finalParams = params
			break
		}
	}
	closeQuiet(sub)
	if last != spec.Rounds {
		t.Fatalf("stream ended at version %d, want %d", last, spec.Rounds)
	}
	if frames > spec.Rounds+2 {
		t.Fatalf("received %d frames for a %d-round job: coalescing is not bounding the stream", frames, spec.Rounds)
	}
	res, err := j.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !sameBits(finalParams, res.Params) {
		t.Fatal("final aggregate over the wire differs from the job result")
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	waitGoroutines(t, before)
}
