// Package felserve turns the one-shot fednode cloud into a long-running,
// multi-tenant federation service: many federation jobs run concurrently on
// one cloud process, each with its own isolated RNG streams and a private
// metric registry; a single scheduler interleaves their global rounds
// fairly (one round per runnable job per wave, waves executed in parallel);
// every job's cross-round state — global model, sampling-stream PCG words,
// SCAFFOLD variates, cost counters — is serialized through the wire codec
// (wire.Checkpoint frames) into a durable per-job checkpoint file, so a
// cloud killed mid-round and restarted resumes every in-flight job with
// final weights bit-identical to an uninterrupted run; and an
// admission-control front door multiplexes subscriber connections over any
// net.Listener, capping subscribers per job and coalescing model-version
// broadcasts into a one-slot latest-wins queue so slow consumers exert
// backpressure on themselves, never on training. Late joiners — including
// subscribers to already-completed jobs — adopt the current model version
// immediately, generalizing fednode's crash-rejoin adoption.
//
// Observability: the service-level registry carries the fel_serve_* schema
// (jobs submitted/recovered/completed, rounds, checkpoints and their bytes,
// subscribers admitted/rejected/active, versions sent); each job's private
// registry carries its own fel_core_* training stream plus
// fel_serve_job_* counters, which is what makes the tenant-isolation proof
// (byte-identical masked snapshots, concurrent vs. serial) checkable.
package felserve

import (
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/metrics"
)

// Config parameterizes a Service.
type Config struct {
	// Dir is the checkpoint directory; "" disables durability (jobs run
	// in-memory only and cannot be recovered).
	Dir string
	// CheckpointEvery writes a job's checkpoint every n completed rounds
	// (<= 0 means every round). The final round always checkpoints before
	// the job is retired, and a job's checkpoint file is removed once the
	// job completes.
	CheckpointEvery int
	// MaxSubscribersPerJob caps admitted subscribers per job (<= 0: 4096).
	MaxSubscribersPerJob int
	// HaltAfterWaves, when positive, stops the scheduler abruptly after
	// that many scheduling waves — no drain, no exit checkpoint — which is
	// how tests and the kill-cloud chaos demo simulate a cloud crash at a
	// deterministic round boundary. 0 means run until Close.
	HaltAfterWaves int
	// StartHeld keeps the scheduler parked until Start is called, so a
	// batch of jobs can be registered before the first wave — which makes
	// multi-tenant wave alignment (and thus kill-round reporting)
	// deterministic.
	StartHeld bool
	// Registry receives the service-level fel_serve_* schema (nil: a
	// private registry).
	Registry *metrics.Registry
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

// Service is a running multi-job federation cloud.
type Service struct {
	cfg Config
	reg *metrics.Registry

	submitted  *metrics.Counter
	recovered  *metrics.Counter
	completed  *metrics.Counter
	failed     *metrics.Counter
	roundsCtr  *metrics.Counter
	ckpts      *metrics.Counter
	ckptBytes  *metrics.Counter
	activeJobs *metrics.Gauge

	subAdmitted *metrics.Counter
	subActive   *metrics.Gauge
	versionsCtr *metrics.Counter

	mu        sync.Mutex
	jobs      map[string]*Job
	order     []*Job // submission order: the fairness and wave ordering
	listeners []net.Listener
	conns     map[net.Conn]struct{}
	stopped   bool

	wake      chan struct{}
	start     chan struct{} // closed by Start (immediately unless StartHeld)
	startOnce sync.Once
	quit      chan struct{} // closed once, by stop
	closing   chan struct{} // same lifetime as quit; selected on by handlers
	schedDone chan struct{}
	connWG    sync.WaitGroup
}

// New starts a service. The scheduler goroutine runs until Close or Kill
// (or the configured HaltAfterWaves crash point).
func New(cfg Config) *Service {
	reg := cfg.Registry
	if reg == nil {
		reg = metrics.New()
	}
	s := &Service{
		cfg:         cfg,
		reg:         reg,
		submitted:   reg.Counter("fel_serve_jobs_submitted_total"),
		recovered:   reg.Counter("fel_serve_jobs_recovered_total"),
		completed:   reg.Counter("fel_serve_jobs_completed_total"),
		failed:      reg.Counter("fel_serve_jobs_failed_total"),
		roundsCtr:   reg.Counter("fel_serve_rounds_total"),
		ckpts:       reg.Counter("fel_serve_checkpoints_total"),
		ckptBytes:   reg.Counter("fel_serve_checkpoint_bytes_total"),
		activeJobs:  reg.Gauge("fel_serve_active_jobs"),
		subAdmitted: reg.Counter("fel_serve_subscribers_admitted_total"),
		subActive:   reg.Gauge("fel_serve_subscribers_active"),
		versionsCtr: reg.Counter("fel_serve_versions_sent_total"),
		jobs:        make(map[string]*Job),
		conns:       make(map[net.Conn]struct{}),
		wake:        make(chan struct{}, 1),
		start:       make(chan struct{}),
		quit:        make(chan struct{}),
		closing:     make(chan struct{}),
		schedDone:   make(chan struct{}),
	}
	if !cfg.StartHeld {
		s.Start()
	}
	go s.scheduler()
	return s
}

// Start releases a StartHeld scheduler. Idempotent; a no-op for services
// that started immediately.
func (s *Service) Start() {
	s.startOnce.Do(func() { close(s.start) })
}

// Registry exposes the service-level metric registry.
func (s *Service) Registry() *metrics.Registry { return s.reg }

func (s *Service) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Submit registers a new job and schedules it. The job name must be unique
// among live and completed jobs of this service instance.
func (s *Service) Submit(spec JobSpec) (*Job, error) {
	j, err := newJob(s, spec, nil)
	if err != nil {
		return nil, err
	}
	if err := s.register(j); err != nil {
		return nil, err
	}
	s.submitted.Inc()
	s.logf("job %s: submitted (%d clients, %d edges, %d rounds)",
		spec.Name, spec.Clients, spec.Edges, spec.Rounds)
	return j, nil
}

// Recover scans the checkpoint directory and resubmits every job found
// there, resumed from its snapshot. Returns the recovered jobs sorted by
// name. A service without a Dir recovers nothing.
func (s *Service) Recover() ([]*Job, error) {
	if s.cfg.Dir == "" {
		return nil, nil
	}
	paths, err := filepath.Glob(filepath.Join(s.cfg.Dir, "*.ckpt"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	jobs := make([]*Job, 0, len(paths))
	for _, path := range paths {
		spec, st, err := LoadCheckpoint(path)
		if err != nil {
			return jobs, fmt.Errorf("felserve: recover %s: %w", path, err)
		}
		j, err := newJob(s, spec, st)
		if err != nil {
			return jobs, err
		}
		if err := s.register(j); err != nil {
			return jobs, err
		}
		s.recovered.Inc()
		s.logf("job %s: recovered at round %d/%d", spec.Name, st.Round, spec.Rounds)
		jobs = append(jobs, j)
	}
	return jobs, nil
}

// Job returns a submitted or recovered job by name (nil when unknown).
func (s *Service) Job(name string) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[name]
}

func (s *Service) register(j *Job) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopped {
		return fmt.Errorf("felserve: service is stopped")
	}
	if _, dup := s.jobs[j.Name()]; dup {
		return fmt.Errorf("felserve: job %q already exists", j.Name())
	}
	s.jobs[j.Name()] = j
	s.order = append(s.order, j)
	s.activeJobs.Add(1)
	select {
	case s.wake <- struct{}{}:
	default:
	}
	return nil
}

// runnable returns the jobs still training, in submission order.
func (s *Service) runnable() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, j := range s.order {
		if !j.Done() {
			out = append(out, j)
		}
	}
	return out
}

// scheduler is the service's only trainer-touching goroutine. It runs in
// waves: each wave grants every runnable job exactly one global round, with
// the rounds of a wave executing concurrently — fair interleaving by
// construction, no tenant can starve another.
func (s *Service) scheduler() {
	defer close(s.schedDone)
	select {
	case <-s.start:
	case <-s.quit:
		return
	}
	waves := 0
	for {
		jobs := s.runnable()
		if len(jobs) == 0 {
			select {
			case <-s.quit:
				return
			case <-s.wake:
				continue
			}
		}
		select {
		case <-s.quit:
			return
		default:
		}
		var wg sync.WaitGroup
		for _, j := range jobs {
			wg.Add(1)
			go func(j *Job) {
				defer wg.Done()
				s.turn(j)
			}(j)
		}
		wg.Wait()
		waves++
		if s.cfg.HaltAfterWaves > 0 && waves >= s.cfg.HaltAfterWaves {
			s.logf("scheduler: halting after wave %d (simulated crash)", waves)
			return
		}
	}
}

// turn advances one job by one global round, publishes the new model
// version, and checkpoints when due. Only the scheduler calls it.
func (s *Service) turn(j *Job) {
	j.tr.Step()
	j.roundsCtr.Inc()
	s.roundsCtr.Inc()
	j.publish()

	finished := j.tr.Done()
	every := s.cfg.CheckpointEvery
	if every <= 0 {
		every = 1
	}
	if s.cfg.Dir != "" && (finished || j.tr.Round()%every == 0) {
		if err := s.checkpointJob(j); err != nil {
			s.logf("job %s: checkpoint failed: %v", j.Name(), err)
			s.failed.Inc()
			s.activeJobs.Add(-1)
			j.fail(err)
			return
		}
	}
	if finished {
		j.finish()
		s.completed.Inc()
		s.activeJobs.Add(-1)
		if s.cfg.Dir != "" {
			// A finished job must not be resurrected by Recover.
			if err := os.Remove(checkpointPath(s.cfg.Dir, j.Name())); err != nil && !os.IsNotExist(err) {
				s.logf("job %s: removing checkpoint: %v", j.Name(), err)
			}
		}
		s.logf("job %s: completed after %d rounds", j.Name(), j.tr.Round())
	}
}

// checkpointJob snapshots j's trainer and writes the job's checkpoint file
// atomically (temp file + rename in the checkpoint directory).
func (s *Service) checkpointJob(j *Job) error {
	st, err := j.tr.ExportState()
	if err != nil {
		return err
	}
	n, err := SaveCheckpoint(s.cfg.Dir, j.Spec, st)
	if err != nil {
		return err
	}
	j.ckptCtr.Inc()
	s.ckpts.Inc()
	s.ckptBytes.Add(int64(n))
	return nil
}

// Halted is closed when the scheduler has exited — after Close or Kill,
// or at the configured HaltAfterWaves crash point. The kill-cloud demo
// waits on it before "restarting" the cloud.
func (s *Service) Halted() <-chan struct{} { return s.schedDone }

// Wait blocks until every currently registered job has finished.
func (s *Service) Wait() {
	s.mu.Lock()
	jobs := append([]*Job(nil), s.order...)
	s.mu.Unlock()
	for _, j := range jobs {
		<-j.done
	}
}

// Close shuts the service down gracefully: the scheduler drains its current
// wave and stops, every unfinished job gets a final checkpoint (when a Dir
// is configured), and all listeners, subscriber connections, and handler
// goroutines are joined. Safe to call more than once.
func (s *Service) Close() error { return s.stop(true) }

// Kill is the crash path: like Close but without the exit checkpoints, so
// the on-disk state is whatever the last due checkpoint wrote — exactly
// what a SIGKILL would leave behind. Jobs still in flight never complete on
// this instance; a new service pointed at the same Dir recovers them.
func (s *Service) Kill() {
	//lint:ignore dropped-error the crash path takes no exit checkpoints, so stop has nothing to fail
	s.stop(false)
}

func (s *Service) stop(graceful bool) error {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		<-s.schedDone
		s.connWG.Wait()
		return nil
	}
	s.stopped = true
	s.mu.Unlock()

	close(s.quit)
	select {
	case s.wake <- struct{}{}:
	default:
	}
	<-s.schedDone

	var firstErr error
	if graceful && s.cfg.Dir != "" {
		for _, j := range s.snapshotOrder() {
			if j.Done() {
				continue
			}
			if err := s.checkpointJob(j); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("felserve: exit checkpoint for %s: %w", j.Name(), err)
			}
		}
	}

	// Unblock every accept loop and subscriber handler, then join them.
	close(s.closing)
	s.mu.Lock()
	for _, ln := range s.listeners {
		//lint:ignore dropped-error shutdown-path close; the listener is being abandoned either way
		ln.Close()
	}
	s.listeners = nil
	for c := range s.conns {
		//lint:ignore dropped-error shutdown-path close; the connection is being abandoned either way
		c.Close()
	}
	s.mu.Unlock()
	s.connWG.Wait()
	return firstErr
}

func (s *Service) snapshotOrder() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Job(nil), s.order...)
}
