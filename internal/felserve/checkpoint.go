package felserve

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/async"
	"repro/internal/core"
	"repro/internal/sampling"
	"repro/internal/wire"
)

// Checkpoint file format: a flat sequence of wire.Checkpoint frames (the
// same versioned, CRC-framed codec the federation protocol speaks), one
// file per job, written atomically via temp-file + rename. Frame kinds are
// carried in Seq; every frame's Round is the snapshot's round boundary.
//
//	Seq 0  spec           From=format version; Ints=[11 spec fields, name
//	                      bytes]; Floats=[LR, MaxCoV, DropoutProb];
//	                      Words=[SystemSeed, Seed]
//	Seq 1  trainer        Words=[sampleHi, sampleLo, costTrainingBits,
//	                      costGroupOpsBits, dropouts, uplinkBytes,
//	                      wallClockBits]; Floats=global params
//	Seq 2  records        Ints=round ids; Floats=[acc, loss, cost, cov]×n
//	Seq 3  participation  Ints=[client id, rounds]×n, ascending id
//	Seq 4  scaffold c     From=1 if the server variate exists, else 0;
//	                      Floats=c (present only for SCAFFOLD jobs)
//	Seq 5  scaffold c_i   From=client id; Floats=c_i (one per client,
//	                      ascending id)
//	Seq 6  async          Ints=[mode, adaptive01]; Words=[baseTicks,
//	                      jitterTicks, stragglerFactor, deadlineTicks,
//	                      stragglerProbBits, alphaBits, bufferFracBits,
//	                      adaptiveBetaBits, adaptiveExploreBits,
//	                      logicalTicks, carryovers, lateDrops] (present only
//	                      when the job configures async or adaptive modes)
//	Seq 7  adaptive       Floats=EWMA norms; Ints=seen flags (present only
//	                      when the snapshot carries adaptive state)
//
// Async jobs additionally append wire.ArrivalLog frames after the
// Checkpoint frames — the cumulative replay log, chunked, Seq numbering
// the chunks — so a resumed run's complete log stays byte-identical to the
// uninterrupted one. Synchronous jobs emit none of the above, which keeps
// their encoding (and the golden file) byte-for-byte unchanged.
//
// EOF terminates the sequence. Decoding is strict: unknown kinds, missing
// mandatory frames, or cross-frame round disagreement are errors.
const (
	ckptFormat uint8 = 1

	ckptSpec          uint32 = 0
	ckptTrainer       uint32 = 1
	ckptRecords       uint32 = 2
	ckptParticipation uint32 = 3
	ckptScaffoldC     uint32 = 4
	ckptScaffoldCI    uint32 = 5
	ckptAsync         uint32 = 6
	ckptAdaptive      uint32 = 7
)

// checkpointPath is dir/<name>.ckpt.
func checkpointPath(dir, name string) string {
	return filepath.Join(dir, name+".ckpt")
}

// EncodeCheckpoint writes the checkpoint frame sequence for (spec, st) to
// w, returning the bytes written. Exposed (capitalized) for the golden-file
// codec test; services use SaveCheckpoint.
func EncodeCheckpoint(w io.Writer, spec JobSpec, st *core.TrainerState) (int, error) {
	round := uint32(st.Round)
	total := 0
	emit := func(m *wire.Message) error {
		m.Type = wire.Checkpoint
		m.Round = round
		n, err := wire.Encode(w, m)
		total += n
		return err
	}

	scaffold01 := int32(0)
	if spec.Scaffold {
		scaffold01 = 1
	}
	nameBytes := []byte(spec.Name)
	specInts := []int32{
		int32(spec.Clients), int32(spec.Edges), int32(spec.Rounds),
		int32(spec.GroupRounds), int32(spec.LocalEpochs), int32(spec.BatchSize),
		int32(spec.SampleGroups), int32(spec.MinGS), int32(spec.MaxParallel),
		int32(spec.EvalEvery), scaffold01,
	}
	for _, b := range nameBytes {
		specInts = append(specInts, int32(b))
	}
	if err := emit(&wire.Message{
		Seq: ckptSpec, From: int32(ckptFormat),
		Ints:   specInts,
		Floats: []float64{spec.LR, spec.MaxCoV, spec.DropoutProb},
		Words:  []uint64{spec.SystemSeed, spec.Seed},
	}); err != nil {
		return total, err
	}

	if err := emit(&wire.Message{
		Seq: ckptTrainer,
		Words: []uint64{
			st.SampleHi, st.SampleLo,
			math.Float64bits(st.CostTraining), math.Float64bits(st.CostGroupOps),
			uint64(st.Dropouts), uint64(st.UplinkBytes),
			math.Float64bits(st.WallClock),
		},
		Floats: st.Params,
	}); err != nil {
		return total, err
	}

	recInts := make([]int32, len(st.Records))
	recFloats := make([]float64, 0, 4*len(st.Records))
	for i, r := range st.Records {
		recInts[i] = int32(r.Round)
		recFloats = append(recFloats, r.Accuracy, r.Loss, r.Cost, r.AvgSelectedCoV)
	}
	if err := emit(&wire.Message{Seq: ckptRecords, Ints: recInts, Floats: recFloats}); err != nil {
		return total, err
	}

	ids := make([]int, 0, len(st.Participation))
	for id := range st.Participation {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	partInts := make([]int32, 0, 2*len(ids))
	for _, id := range ids {
		partInts = append(partInts, int32(id), int32(st.Participation[id]))
	}
	if err := emit(&wire.Message{Seq: ckptParticipation, Ints: partInts}); err != nil {
		return total, err
	}

	if st.Scaffold != nil {
		hasC := int32(0)
		if st.Scaffold.C != nil {
			hasC = 1
		}
		if err := emit(&wire.Message{Seq: ckptScaffoldC, From: hasC, Floats: st.Scaffold.C}); err != nil {
			return total, err
		}
		for i, id := range st.Scaffold.ClientIDs {
			if err := emit(&wire.Message{Seq: ckptScaffoldCI, From: int32(id), Floats: st.Scaffold.CI[i]}); err != nil {
				return total, err
			}
		}
	}

	if spec.Async != (async.Config{}) || spec.Adaptive {
		adaptive01 := int32(0)
		if spec.Adaptive {
			adaptive01 = 1
		}
		d := spec.Async.Delays
		if err := emit(&wire.Message{
			Seq:  ckptAsync,
			Ints: []int32{int32(spec.Async.Mode), adaptive01},
			Words: []uint64{
				uint64(d.BaseTicks), uint64(d.JitterTicks),
				uint64(d.StragglerFactor), uint64(spec.Async.DeadlineTicks),
				math.Float64bits(d.StragglerProb),
				math.Float64bits(spec.Async.Alpha), math.Float64bits(spec.Async.BufferFrac),
				math.Float64bits(spec.AdaptiveBeta), math.Float64bits(spec.AdaptiveExplore),
				uint64(st.LogicalTicks), uint64(st.Carryovers), uint64(st.LateDrops),
			},
		}); err != nil {
			return total, err
		}
		if st.Adaptive != nil {
			seenInts := make([]int32, len(st.Adaptive.Seen))
			for i, s := range st.Adaptive.Seen {
				if s {
					seenInts[i] = 1
				}
			}
			if err := emit(&wire.Message{Seq: ckptAdaptive, Floats: st.Adaptive.Norms, Ints: seenInts}); err != nil {
				return total, err
			}
		}
		// The cumulative arrival log rides as its own frame type so a
		// recovered job's replay stays byte-identical; an async job with
		// zero events still gets one empty frame (presence ≠ absence).
		if spec.Async.Mode != async.Sync {
			for _, lm := range async.EventsToMessages(st.AsyncEvents, round) {
				n, err := wire.Encode(w, lm)
				total += n
				if err != nil {
					return total, err
				}
			}
		}
	}
	return total, nil
}

// DecodeCheckpoint reads a checkpoint frame sequence until EOF and
// reconstructs the job spec and trainer snapshot.
func DecodeCheckpoint(r io.Reader) (JobSpec, *core.TrainerState, error) {
	var spec JobSpec
	st := &core.TrainerState{Participation: map[int]int{}}
	seen := map[uint32]bool{}
	round := -1
	for {
		m, err := wire.Decode(r, 0)
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return spec, nil, err
		}
		if m.Type != wire.Checkpoint && m.Type != wire.ArrivalLog {
			return spec, nil, fmt.Errorf("felserve: checkpoint stream has %s frame", m.Type)
		}
		if round < 0 {
			round = int(m.Round)
			st.Round = round
		} else if int(m.Round) != round {
			return spec, nil, fmt.Errorf("felserve: checkpoint frames disagree on round: %d vs %d", m.Round, round)
		}
		if m.Type == wire.ArrivalLog {
			ev, err := async.EventsFromMessage(m)
			if err != nil {
				return spec, nil, fmt.Errorf("felserve: arrival-log frame: %w", err)
			}
			if st.AsyncEvents == nil {
				st.AsyncEvents = []async.Event{}
			}
			st.AsyncEvents = append(st.AsyncEvents, ev...)
			continue
		}
		switch m.Seq {
		case ckptSpec:
			if uint8(m.From) != ckptFormat {
				return spec, nil, fmt.Errorf("felserve: checkpoint format %d, want %d", m.From, ckptFormat)
			}
			if len(m.Ints) < 11 || len(m.Floats) != 3 || len(m.Words) != 2 {
				return spec, nil, fmt.Errorf("felserve: malformed spec frame (%d ints, %d floats, %d words)",
					len(m.Ints), len(m.Floats), len(m.Words))
			}
			spec.Clients, spec.Edges = int(m.Ints[0]), int(m.Ints[1])
			spec.Rounds, spec.GroupRounds, spec.LocalEpochs = int(m.Ints[2]), int(m.Ints[3]), int(m.Ints[4])
			spec.BatchSize, spec.SampleGroups = int(m.Ints[5]), int(m.Ints[6])
			spec.MinGS, spec.MaxParallel, spec.EvalEvery = int(m.Ints[7]), int(m.Ints[8]), int(m.Ints[9])
			spec.Scaffold = m.Ints[10] != 0
			name := make([]byte, 0, len(m.Ints)-11)
			for _, b := range m.Ints[11:] {
				name = append(name, byte(b))
			}
			spec.Name = string(name)
			spec.LR, spec.MaxCoV, spec.DropoutProb = m.Floats[0], m.Floats[1], m.Floats[2]
			spec.SystemSeed, spec.Seed = m.Words[0], m.Words[1]
		case ckptTrainer:
			if len(m.Words) != 7 {
				return spec, nil, fmt.Errorf("felserve: malformed trainer frame (%d words)", len(m.Words))
			}
			st.SampleHi, st.SampleLo = m.Words[0], m.Words[1]
			st.CostTraining = math.Float64frombits(m.Words[2])
			st.CostGroupOps = math.Float64frombits(m.Words[3])
			st.Dropouts = int(m.Words[4])
			st.UplinkBytes = int64(m.Words[5])
			st.WallClock = math.Float64frombits(m.Words[6])
			st.Params = m.Floats
		case ckptRecords:
			if len(m.Floats) != 4*len(m.Ints) {
				return spec, nil, fmt.Errorf("felserve: malformed records frame (%d rounds, %d floats)",
					len(m.Ints), len(m.Floats))
			}
			st.Records = make([]core.RoundRecord, len(m.Ints))
			for i := range m.Ints {
				st.Records[i] = core.RoundRecord{
					Round:          int(m.Ints[i]),
					Accuracy:       m.Floats[4*i],
					Loss:           m.Floats[4*i+1],
					Cost:           m.Floats[4*i+2],
					AvgSelectedCoV: m.Floats[4*i+3],
				}
			}
		case ckptParticipation:
			if len(m.Ints)%2 != 0 {
				return spec, nil, fmt.Errorf("felserve: malformed participation frame (%d ints)", len(m.Ints))
			}
			for i := 0; i < len(m.Ints); i += 2 {
				st.Participation[int(m.Ints[i])] = int(m.Ints[i+1])
			}
		case ckptScaffoldC:
			st.Scaffold = &core.ScaffoldCheckpoint{}
			if m.From != 0 {
				st.Scaffold.C = m.Floats
				if st.Scaffold.C == nil {
					st.Scaffold.C = []float64{}
				}
			}
		case ckptScaffoldCI:
			if st.Scaffold == nil {
				return spec, nil, fmt.Errorf("felserve: scaffold client frame before server-variate frame")
			}
			st.Scaffold.ClientIDs = append(st.Scaffold.ClientIDs, int(m.From))
			st.Scaffold.CI = append(st.Scaffold.CI, m.Floats)
		case ckptAsync:
			if len(m.Ints) != 2 || len(m.Words) != 12 {
				return spec, nil, fmt.Errorf("felserve: malformed async frame (%d ints, %d words)",
					len(m.Ints), len(m.Words))
			}
			spec.Async = async.Config{
				Mode:          async.Mode(m.Ints[0]),
				Alpha:         math.Float64frombits(m.Words[5]),
				BufferFrac:    math.Float64frombits(m.Words[6]),
				DeadlineTicks: int64(m.Words[3]),
				Delays: async.DelayModel{
					BaseTicks:       int64(m.Words[0]),
					JitterTicks:     int64(m.Words[1]),
					StragglerProb:   math.Float64frombits(m.Words[4]),
					StragglerFactor: int64(m.Words[2]),
				},
			}
			spec.Adaptive = m.Ints[1] != 0
			spec.AdaptiveBeta = math.Float64frombits(m.Words[7])
			spec.AdaptiveExplore = math.Float64frombits(m.Words[8])
			st.LogicalTicks = int64(m.Words[9])
			st.Carryovers = int(m.Words[10])
			st.LateDrops = int(m.Words[11])
		case ckptAdaptive:
			if len(m.Ints) != len(m.Floats) {
				return spec, nil, fmt.Errorf("felserve: malformed adaptive frame (%d norms, %d seen flags)",
					len(m.Floats), len(m.Ints))
			}
			ad := &sampling.AdaptiveState{Norms: m.Floats, Seen: make([]bool, len(m.Ints))}
			if ad.Norms == nil {
				ad.Norms = []float64{}
			}
			for i, v := range m.Ints {
				ad.Seen[i] = v != 0
			}
			st.Adaptive = ad
		default:
			return spec, nil, fmt.Errorf("felserve: unknown checkpoint frame kind %d", m.Seq)
		}
		seen[m.Seq] = true
	}
	if !seen[ckptSpec] || !seen[ckptTrainer] {
		return spec, nil, fmt.Errorf("felserve: checkpoint missing mandatory frames (spec=%v trainer=%v)",
			seen[ckptSpec], seen[ckptTrainer])
	}
	return spec, st, nil
}

// SaveCheckpoint atomically writes the job's checkpoint file into dir:
// encode into a temp file in the same directory, fsync, then rename over
// <name>.ckpt, so a crash mid-write leaves the previous checkpoint intact.
// Returns the encoded byte count.
func SaveCheckpoint(dir string, spec JobSpec, st *core.TrainerState) (int, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, err
	}
	tmp, err := os.CreateTemp(dir, "."+spec.Name+".tmp-*")
	if err != nil {
		return 0, err
	}
	bw := bufio.NewWriter(tmp)
	n, err := EncodeCheckpoint(bw, spec, st)
	if err == nil {
		err = bw.Flush()
	}
	if err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		//lint:ignore dropped-error the write already failed; removing the temp is best-effort cleanup
		os.Remove(tmp.Name())
		return n, err
	}
	if err := os.Rename(tmp.Name(), checkpointPath(dir, spec.Name)); err != nil {
		//lint:ignore dropped-error the rename already failed; removing the temp is best-effort cleanup
		os.Remove(tmp.Name())
		return n, err
	}
	return n, nil
}

// LoadCheckpoint reads a job checkpoint file written by SaveCheckpoint.
func LoadCheckpoint(path string) (JobSpec, *core.TrainerState, error) {
	f, err := os.Open(path)
	if err != nil {
		return JobSpec{}, nil, err
	}
	spec, st, err := DecodeCheckpoint(bufio.NewReader(f))
	if cerr := f.Close(); err == nil && cerr != nil {
		err = cerr
	}
	return spec, st, err
}
