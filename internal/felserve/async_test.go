package felserve

import (
	"bytes"
	"math"
	"runtime"
	"testing"

	"repro/internal/async"
	"repro/internal/core"
)

// asyncJobSpec is the checkpoint-format workout for the async frames: a
// buffered FedBuff job with staleness discounting, straggler delays, and
// the adaptive sampler, so kinds 6 and 7 plus ArrivalLog chunks all appear.
func asyncJobSpec() JobSpec {
	return JobSpec{
		Name: "async-job", Clients: 10, Edges: 2,
		SystemSeed: 21, Seed: 23,
		Rounds: 8, GroupRounds: 2, LocalEpochs: 1,
		BatchSize: 16, LR: 0.05, SampleGroups: 2,
		DropoutProb: 0.2,
		Async: async.Config{
			Mode: async.Buffered, Alpha: 0.5, BufferFrac: 0.5,
			Delays: async.StragglerStorm(),
		},
		Adaptive: true, AdaptiveBeta: 0.3, AdaptiveExplore: 0.1,
	}
}

// TestAsyncCheckpointRoundTrip: the async frame vocabulary survives
// save/load bit for bit — spec knobs, logical-clock totals, adaptive EWMA
// state, and the complete arrival log.
func TestAsyncCheckpointRoundTrip(t *testing.T) {
	spec := asyncJobSpec()
	tr := core.NewTrainer(spec.System(), spec.TrainConfig(nil))
	for tr.Round() < 3 {
		tr.Step()
	}
	st, err := tr.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.AsyncEvents) == 0 {
		t.Fatal("mid-run async snapshot carries no arrival events")
	}
	if st.Adaptive == nil {
		t.Fatal("adaptive snapshot missing")
	}

	dir := t.TempDir()
	if _, err := SaveCheckpoint(dir, spec, st); err != nil {
		t.Fatal(err)
	}
	gotSpec, gotSt, err := LoadCheckpoint(checkpointPath(dir, spec.Name))
	if err != nil {
		t.Fatal(err)
	}
	if gotSpec != spec {
		t.Fatalf("async spec round trip: got %+v, want %+v", gotSpec, spec)
	}
	if gotSt.LogicalTicks != st.LogicalTicks || gotSt.Carryovers != st.Carryovers || gotSt.LateDrops != st.LateDrops {
		t.Fatalf("clock totals corrupted: %d/%d/%d vs %d/%d/%d",
			gotSt.LogicalTicks, gotSt.Carryovers, gotSt.LateDrops,
			st.LogicalTicks, st.Carryovers, st.LateDrops)
	}
	if len(gotSt.AsyncEvents) != len(st.AsyncEvents) {
		t.Fatalf("arrival log length %d, want %d", len(gotSt.AsyncEvents), len(st.AsyncEvents))
	}
	for i := range st.AsyncEvents {
		if gotSt.AsyncEvents[i] != st.AsyncEvents[i] {
			t.Fatalf("arrival event %d changed: %+v vs %+v", i, gotSt.AsyncEvents[i], st.AsyncEvents[i])
		}
	}
	if gotSt.Adaptive == nil {
		t.Fatal("adaptive state lost in round trip")
	}
	if len(gotSt.Adaptive.Norms) != len(st.Adaptive.Norms) {
		t.Fatalf("%d norms, want %d", len(gotSt.Adaptive.Norms), len(st.Adaptive.Norms))
	}
	for i := range st.Adaptive.Norms {
		if math.Float64bits(gotSt.Adaptive.Norms[i]) != math.Float64bits(st.Adaptive.Norms[i]) {
			t.Fatalf("adaptive norm %d differs", i)
		}
		if gotSt.Adaptive.Seen[i] != st.Adaptive.Seen[i] {
			t.Fatalf("adaptive seen flag %d differs", i)
		}
	}

	// The loaded snapshot must actually resume: rebuild the trainer and
	// step one round without error.
	tr2, err := core.NewTrainerResumed(gotSpec.System(), gotSpec.TrainConfig(nil), gotSt)
	if err != nil {
		t.Fatal(err)
	}
	tr2.Step()
}

// asyncDemoSpecs is the two-tenant async workload for the kill-and-resume
// exercise: a buffered job with adaptive sampling and a semi-sync job with
// carryover pressure, both under straggler-storm delays.
func asyncDemoSpecs(seed uint64) []JobSpec {
	return []JobSpec{
		{
			Name: "buffered", Clients: 12, Edges: 2,
			SystemSeed: seed, Seed: seed + 100,
			Rounds: 8, GroupRounds: 2, LocalEpochs: 1,
			BatchSize: 16, LR: 0.05, SampleGroups: 2,
			DropoutProb: 0.2,
			Async: async.Config{
				Mode: async.Buffered, Alpha: 0.5, BufferFrac: 0.5,
				Delays: async.StragglerStorm(),
			},
			Adaptive: true, AdaptiveBeta: 0.3, AdaptiveExplore: 0.1,
		},
		{
			Name: "semisync", Clients: 10, Edges: 2,
			SystemSeed: seed + 1, Seed: seed + 200,
			Rounds: 8, GroupRounds: 2, LocalEpochs: 1,
			BatchSize: 16, LR: 0.05, SampleGroups: 2,
			Async: async.Config{
				Mode: async.SemiSync, Alpha: 0.5, DeadlineTicks: 30,
				Delays: async.StragglerStorm(),
			},
		},
	}
}

// TestAsyncKillRecoverBitIdentical is the satellite replay gate at the
// service layer: crash a cloud mid-buffer (past its last checkpoint),
// recover from disk, and the finished jobs must match an uninterrupted
// reference bit for bit — final weights, logical-clock totals, AND the
// complete arrival log byte for byte, which is only possible if the
// checkpoint's arrival-log and staleness frames restore exactly.
func TestAsyncKillRecoverBitIdentical(t *testing.T) {
	before := runtime.NumGoroutine()
	specs := asyncDemoSpecs(31)

	ref := map[string]*core.Result{}
	refSvc := New(Config{StartHeld: true, Logf: t.Logf})
	for _, spec := range specs {
		if _, err := refSvc.Submit(spec); err != nil {
			t.Fatal(err)
		}
	}
	refSvc.Start()
	refSvc.Wait()
	for _, spec := range specs {
		res, err := refSvc.Job(spec.Name).Wait()
		if err != nil {
			t.Fatal(err)
		}
		if res.ArrivalLog == nil || res.ArrivalLog.Len() == 0 {
			t.Fatalf("job %s: reference run has no arrival log", spec.Name)
		}
		ref[spec.Name] = res
	}
	if err := refSvc.Close(); err != nil {
		t.Fatal(err)
	}

	// Crash past the last checkpoint: disk holds round 2, memory round 3,
	// so recovery recomputes a lost round from the restored buffer state.
	dir := t.TempDir()
	crashed := New(Config{Dir: dir, CheckpointEvery: 2, HaltAfterWaves: 3, StartHeld: true, Logf: t.Logf})
	for _, spec := range specs {
		if _, err := crashed.Submit(spec); err != nil {
			t.Fatal(err)
		}
	}
	crashed.Start()
	<-crashed.Halted()
	crashed.Kill()

	rec := New(Config{Dir: dir, CheckpointEvery: 2, Logf: t.Logf})
	jobs, err := rec.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != len(specs) {
		t.Fatalf("recovered %d jobs, want %d", len(jobs), len(specs))
	}
	for _, j := range jobs {
		if r := j.Round(); r <= 0 || r >= j.Spec.Rounds {
			t.Fatalf("job %s resumed from round %d, want mid-run", j.Name(), r)
		}
	}
	rec.Wait()
	for _, j := range jobs {
		res, err := j.Wait()
		if err != nil {
			t.Fatal(err)
		}
		want := ref[j.Name()]
		if !sameBits(res.Params, want.Params) {
			t.Errorf("job %s: recovered weights differ from the uninterrupted run", j.Name())
		}
		if res.LogicalTicks != want.LogicalTicks || res.Carryovers != want.Carryovers || res.LateDrops != want.LateDrops {
			t.Errorf("job %s: clock totals %d/%d/%d, want %d/%d/%d", j.Name(),
				res.LogicalTicks, res.Carryovers, res.LateDrops,
				want.LogicalTicks, want.Carryovers, want.LateDrops)
		}
		if !bytes.Equal(res.ArrivalLog.Bytes(), want.ArrivalLog.Bytes()) {
			t.Errorf("job %s: recovered arrival log is not byte-identical", j.Name())
		}
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	waitGoroutines(t, before)
}
