package felserve

import (
	"fmt"
	"sync"

	"repro/internal/async"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/data"
	"repro/internal/grouping"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/sampling"
)

// JobSpec is the complete, serializable description of one federation job.
// Every field is a value — no callbacks, no live objects — so the spec can
// ride inside a checkpoint file and a recovered service can rebuild the
// identical System and Config from it alone. The synthetic federation it
// describes is the same family the felnode CLI builds: a FlatConfig
// 4-class/10-feature population partitioned Dirichlet(0.5) across clients,
// trained on an MLP 10→16→4.
type JobSpec struct {
	// Name identifies the job; it is the checkpoint filename stem and the
	// admission-control handle subscribers name in their hello.
	Name string
	// Clients and Edges size the federation.
	Clients, Edges int
	// SystemSeed drives data generation and partitioning; Seed drives the
	// training run (formation, sampling, SGD shuffles).
	SystemSeed, Seed uint64
	// Rounds (T), GroupRounds (K), LocalEpochs (E).
	Rounds, GroupRounds, LocalEpochs int
	// BatchSize for local SGD; LR the learning rate.
	BatchSize int
	LR        float64
	// SampleGroups is S, the groups drawn per global round.
	SampleGroups int
	// MinGS and MaxCoV parameterize CoV-Grouping.
	MinGS  int
	MaxCoV float64
	// Scaffold switches the local updater from plain SGD to SCAFFOLD.
	Scaffold bool
	// DropoutProb simulates unreliable clients (see core.Config).
	DropoutProb float64
	// MaxParallel bounds the trainer's worker pool (0 = one worker per physical CPU).
	MaxParallel int
	// EvalEvery evaluates every n rounds (0/1 = every round).
	EvalEvery int
	// Async selects the aggregation semantics (internal/async): sync,
	// buffered, or semi-sync, plus staleness exponent, buffer fraction,
	// deadline, and the logical-clock delay model. All scalar fields, so
	// the knobs ride in the checkpoint's async frame and a recovered job
	// replays the identical arrival schedule.
	Async async.Config
	// Adaptive enables the EWMA adaptive group sampler; Beta is the gain,
	// Explore the uniform floor (zero Beta means the 0.3 default).
	Adaptive        bool
	AdaptiveBeta    float64
	AdaptiveExplore float64
}

// adaptiveConfig normalizes the spec's adaptive knobs into the sampler
// config (shared by Validate and TrainConfig so they can never disagree).
func (s JobSpec) adaptiveConfig() sampling.AdaptiveConfig {
	beta := s.AdaptiveBeta
	if beta <= 0 {
		beta = 0.3
	}
	return sampling.AdaptiveConfig{Beta: beta, Explore: s.AdaptiveExplore}
}

// Validate rejects specs the trainer would panic on, so Submit can fail
// with an error instead of taking the scheduler down.
func (s JobSpec) Validate() error {
	switch {
	case s.Name == "":
		return fmt.Errorf("felserve: job needs a name")
	case len(s.Name) > 128:
		return fmt.Errorf("felserve: job name %q exceeds 128 bytes", s.Name[:16]+"…")
	case !nameOK(s.Name):
		return fmt.Errorf("felserve: job name %q: want [a-zA-Z0-9._-]+, not starting with '.'", s.Name)
	case s.Clients <= 0 || s.Edges <= 0:
		return fmt.Errorf("felserve: job %q: Clients and Edges must be positive", s.Name)
	case s.Rounds <= 0 || s.GroupRounds <= 0 || s.LocalEpochs <= 0:
		return fmt.Errorf("felserve: job %q: Rounds, GroupRounds, LocalEpochs must be positive", s.Name)
	case s.LR <= 0:
		return fmt.Errorf("felserve: job %q: LR must be positive", s.Name)
	case s.SampleGroups <= 0:
		return fmt.Errorf("felserve: job %q: SampleGroups must be positive", s.Name)
	case s.DropoutProb < 0 || s.DropoutProb >= 1:
		return fmt.Errorf("felserve: job %q: DropoutProb must be in [0,1)", s.Name)
	}
	if err := s.Async.Validate(); err != nil {
		return fmt.Errorf("felserve: job %q: %w", s.Name, err)
	}
	if s.Adaptive {
		if err := s.adaptiveConfig().Validate(); err != nil {
			return fmt.Errorf("felserve: job %q: %w", s.Name, err)
		}
	}
	return nil
}

// nameOK restricts job names to filename- and wire-safe bytes: the name is
// the checkpoint filename stem and rides in JobControl hellos.
func nameOK(name string) bool {
	if name[0] == '.' {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '.' || c == '_' || c == '-':
		default:
			return false
		}
	}
	return true
}

// System builds the job's federation deterministically from the spec.
func (s JobSpec) System() *core.System {
	gen := data.FlatConfig(4, 10, s.SystemSeed)
	gen.Noise = 0.8
	return core.NewSystem(core.SystemConfig{
		Generator: gen,
		Partition: data.PartitionConfig{
			NumClients: s.Clients, Alpha: 0.5,
			MinSamples: 10, MaxSamples: 40, MeanSamples: 25, StdSamples: 8,
			Seed: s.SystemSeed + 1,
		},
		NumEdges: s.Edges,
		TestSize: 400,
		NewModel: func(ms uint64) *nn.Sequential {
			return nn.NewMLP(10, []int{16}, 4, ms)
		},
		ModelSeed: 7,
	})
}

// TrainConfig builds the job's core.Config. Every call returns a fresh
// config (and, for SCAFFOLD, a fresh updater), so resumed and uninterrupted
// runs never share mutable state. reg receives the job's fel_core_* stream.
func (s JobSpec) TrainConfig(reg *metrics.Registry) core.Config {
	minGS, maxCoV := s.MinGS, s.MaxCoV
	if minGS <= 0 {
		minGS = 3
	}
	if maxCoV <= 0 {
		maxCoV = 0.5
	}
	cfg := core.Config{
		GlobalRounds: s.Rounds, GroupRounds: s.GroupRounds, LocalEpochs: s.LocalEpochs,
		BatchSize: s.BatchSize, LR: s.LR, SampleGroups: s.SampleGroups,
		Grouping:    grouping.CoVGrouping{Config: grouping.Config{MinGS: minGS, MaxCoV: maxCoV, MergeLeftover: true}},
		Sampling:    sampling.ESRCoV,
		Weights:     sampling.Biased,
		Seed:        s.Seed,
		CostProfile: cost.CIFARProfile(),
		CostOps:     cost.DefaultOps(),
		DropoutProb: s.DropoutProb,
		MaxParallel: s.MaxParallel,
		EvalEvery:   s.EvalEvery,
		Metrics:     reg,
	}
	if s.Scaffold {
		cfg.Local = &core.ScaffoldUpdater{NumClients: s.Clients}
		cfg.CostOps.Scaffold = true
	}
	cfg.Async = s.Async
	if s.Adaptive {
		ac := s.adaptiveConfig()
		cfg.AdaptiveSampling = &ac
	}
	return cfg
}

// Job is one tenant of the service: a resumable trainer plus its private
// metric registry, model-version publication state, and subscriber set.
type Job struct {
	Spec JobSpec

	svc *Service
	reg *metrics.Registry
	tr  *core.Trainer

	// Per-job fel_serve_job_* stream, isolated from other tenants.
	roundsCtr  *metrics.Counter
	ckptCtr    *metrics.Counter
	versionCtr *metrics.Counter

	mu      sync.Mutex
	subs    map[int]*subscriber
	nextSub int
	// version/params are the latest published model: version counts
	// published rounds, params is an immutable snapshot shared read-only by
	// every subscriber sender.
	version int
	params  []float64

	done   chan struct{} // closed when the job finishes
	result *core.Result
	err    error
}

// newJob builds a running job from its spec, fresh or resumed.
func newJob(svc *Service, spec JobSpec, st *core.TrainerState) (*Job, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	j := &Job{
		Spec: spec,
		svc:  svc,
		reg:  metrics.New(),
		subs: make(map[int]*subscriber),
		done: make(chan struct{}),
	}
	j.roundsCtr = j.reg.Counter("fel_serve_job_rounds_total")
	j.ckptCtr = j.reg.Counter("fel_serve_job_checkpoints_total")
	j.versionCtr = j.reg.Counter("fel_serve_job_versions_total")
	sys := spec.System()
	cfg := spec.TrainConfig(j.reg)
	if st == nil {
		j.tr = core.NewTrainer(sys, cfg)
	} else {
		var err error
		j.tr, err = core.NewTrainerResumed(sys, cfg, st)
		if err != nil {
			return nil, fmt.Errorf("felserve: resume job %q: %w", spec.Name, err)
		}
	}
	j.publish()
	return j, nil
}

// Name returns the job's identity.
func (j *Job) Name() string { return j.Spec.Name }

// Registry exposes the job's private metric registry — the per-tenant
// namespace whose masked snapshot the isolation tests compare.
func (j *Job) Registry() *metrics.Registry { return j.reg }

// Round returns how many global rounds the job has published. The trainer
// itself belongs to the scheduler goroutine; everyone else observes
// progress through the published version.
func (j *Job) Round() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.version
}

// Done reports whether the job has finished.
func (j *Job) Done() bool {
	select {
	case <-j.done:
		return true
	default:
		return false
	}
}

// Wait blocks until the job completes and returns its result. A job
// abandoned by Service.Kill never completes; Wait on it blocks until the
// job is resubmitted to a recovered service — so harness code should Wait
// on the recovered handle, not the killed one.
func (j *Job) Wait() (*core.Result, error) {
	<-j.done
	return j.result, j.err
}

// publish snapshots the trainer's current parameters as the next model
// version and offers it to every subscriber. Non-blocking: a slow
// subscriber just coalesces to the newest version (its queue is the
// one-slot latest pointer), which is the backpressure contract — the
// trainer never waits on a consumer.
func (j *Job) publish() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.version = j.tr.Round()
	j.params = append([]float64(nil), j.tr.Params()...)
	j.versionCtr.Inc()
	for _, sub := range j.subs {
		sub.offer(j.version, j.params, false)
	}
}

// finish seals the job's result and notifies subscribers with the final
// aggregate before their connections close.
func (j *Job) finish() {
	res := j.tr.Finish()
	j.mu.Lock()
	j.result = res
	j.version = j.tr.Round()
	j.params = append([]float64(nil), res.Params...)
	for _, sub := range j.subs {
		sub.offer(j.version, j.params, true)
	}
	j.mu.Unlock()
	close(j.done)
}

// fail seals the job with an error (checkpoint write failure).
func (j *Job) fail(err error) {
	j.mu.Lock()
	j.err = err
	for _, sub := range j.subs {
		sub.offer(j.version, j.params, true)
	}
	j.mu.Unlock()
	close(j.done)
}

// current returns the latest published model version under the job lock.
func (j *Job) current() (int, []float64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.version, j.params
}
