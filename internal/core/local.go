package core

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/nn"
	"repro/internal/stats"
	"repro/internal/tensor"
)

// LocalContext carries the per-client training context into a LocalUpdater.
type LocalContext struct {
	// ClientID identifies the client (stable across rounds).
	ClientID int
	// Anchor is the parameter vector the client started from (the group
	// model x^g_{t,k}); FedProx regularizes toward it.
	Anchor []float64
	// Epochs is E, BatchSize the mini-batch size (<=0 means full batch),
	// LR the learning rate η.
	Epochs    int
	BatchSize int
	LR        float64
	// Rng drives batch shuffling, derived deterministically per
	// (seed, round, group, client).
	Rng *stats.RNG

	// arena, when non-nil, supplies the worker's reusable SGD scratch
	// buffers. The parallel engine sets it; external callers leave it nil
	// and sgdEpochs falls back to a private arena.
	arena *sgdArena
}

// LocalUpdater performs a client's local training (Alg. 1 lines 12–13),
// mutating model in place. Implementations must be safe for concurrent use
// by multiple clients.
type LocalUpdater interface {
	Name() string
	LocalTrain(model *nn.Sequential, x *tensor.Tensor, y []int, ctx LocalContext)
}

// sgdEpochs runs the shared mini-batch SGD loop, invoking adjust (if non-nil)
// after each backward pass so variants can modify gradients before the
// step. Returns the number of optimizer steps taken.
//
// All scratch state — shuffle order, the batch tensor, the tail batch for
// n % bs leftovers, the loss-head probability buffer, the optimizer — comes
// from the context's arena, so the steady-state loop allocates nothing.
//
//lint:hotpath
func sgdEpochs(model *nn.Sequential, x *tensor.Tensor, y []int, ctx LocalContext, adjust func(model *nn.Sequential)) int {
	n := x.Shape[0]
	bs := ctx.BatchSize
	if bs <= 0 || bs > n {
		bs = n
	}
	a := ctx.arena
	if a == nil {
		a = newSGDArena()
	}
	a.opt.LR = ctx.LR
	var lossFn nn.SoftmaxCrossEntropy
	order := a.ensureOrder(n)
	dim := x.Size() / n
	a.full.ensure(bs, x)
	steps := 0
	for e := 0; e < ctx.Epochs; e++ {
		ctx.Rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		for lo := 0; lo < n; lo += bs {
			hi := lo + bs
			if hi > n {
				hi = n
			}
			cur := hi - lo
			buf := &a.full
			if cur != bs {
				buf = &a.tail
				buf.ensure(cur, x)
			}
			xb, yb := buf.x, buf.y
			for bi := 0; bi < cur; bi++ {
				src := order[lo+bi]
				copy(xb.Data[bi*dim:(bi+1)*dim], x.Data[src*dim:(src+1)*dim])
				yb[bi] = y[src]
			}
			logits := model.Forward(xb, true)
			probs := buf.ensureProbs(logits)
			lossFn.ForwardInto(probs, logits, yb)
			lossFn.BackwardInPlace(probs, yb)
			model.Backward(probs)
			if adjust != nil {
				adjust(model)
			}
			a.opt.Step(model)
			steps++
		}
	}
	return steps
}

// SGDUpdater is the plain local SGD of Alg. 1 — used by Group-FEL, FedAvg,
// OUEA, and SHARE.
type SGDUpdater struct{}

// Name returns "SGD".
func (SGDUpdater) Name() string { return "SGD" }

// LocalTrain runs E epochs of mini-batch SGD.
//
//lint:hotpath
func (SGDUpdater) LocalTrain(model *nn.Sequential, x *tensor.Tensor, y []int, ctx LocalContext) {
	sgdEpochs(model, x, y, ctx, nil)
}

// ProxUpdater implements FedProx: local loss is augmented with
// (Mu/2)·‖w − anchor‖², i.e. each gradient gains Mu·(w − anchor).
type ProxUpdater struct {
	Mu float64
}

// Name returns "FedProx".
func (ProxUpdater) Name() string { return "FedProx" }

// LocalTrain runs proximal SGD epochs.
func (p ProxUpdater) LocalTrain(model *nn.Sequential, x *tensor.Tensor, y []int, ctx LocalContext) {
	sgdEpochs(model, x, y, ctx, func(m *nn.Sequential) {
		params := m.Params()
		grads := m.Grads()
		off := 0
		for i, par := range params {
			g := grads[i]
			for j := range par.Data {
				g.Data[j] += p.Mu * (par.Data[j] - ctx.Anchor[off+j])
			}
			off += par.Size()
		}
	})
}

// ScaffoldUpdater implements SCAFFOLD's variance-reduced local update,
// ported to the hierarchical setting: each local step descends
// g − c_i + c, where c_i is the client control variate and c the server
// variate. After local training the client variate is refreshed with
// option II of the SCAFFOLD paper:
//
//	c_i⁺ = c_i − c + (w_start − w_end)/(steps·η)
//
// and the server variate absorbs the average drift of participating
// clients at the end of every global round.
//
// Concurrency and determinism: the server variate is an immutable snapshot
// replaced wholesale by FinishGlobalRound, so concurrent clients read it
// through an RLock without cloning; each client's variate and pending drift
// are owner-written only (group sampling is without replacement, so a client
// trains in at most one goroutine per round). The drift fold at the end of
// the round runs in ascending client-ID order, which keeps the whole scheme
// bit-for-bit reproducible at any parallelism.
type ScaffoldUpdater struct {
	// NumClients scales the server variate update (the 1/N in SCAFFOLD).
	NumClients int

	mu      sync.RWMutex
	clients map[int]*scaffoldState
	c       []float64 // server variate snapshot: replaced, never mutated
	deltaC  []float64 // fold scratch, used only under the write lock
}

// scaffoldState is one client's control variate and its pending drift for
// the current global round. Only the owning client's goroutine writes it.
type scaffoldState struct {
	ci      []float64
	pending []float64
	calls   int
}

// Name returns "SCAFFOLD".
func (*ScaffoldUpdater) Name() string { return "SCAFFOLD" }

// state returns the client's variate state and the current server-variate
// snapshot, allocating zeros on first use. The fast path is a shared RLock
// with no copying — the snapshot discipline makes the references safe to
// read for the rest of the local training pass.
func (s *ScaffoldUpdater) state(clientID, dim int) (*scaffoldState, []float64) {
	s.mu.RLock()
	st := s.clients[clientID]
	c := s.c
	s.mu.RUnlock()
	if st != nil && c != nil {
		return st, c
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.clients == nil {
		s.clients = make(map[int]*scaffoldState)
	}
	if s.c == nil {
		s.c = make([]float64, dim)
		s.deltaC = make([]float64, dim)
	}
	st = s.clients[clientID]
	if st == nil {
		st = &scaffoldState{ci: make([]float64, dim), pending: make([]float64, dim)}
		s.clients[clientID] = st
	}
	return st, s.c
}

// LocalTrain runs control-variate-corrected SGD and refreshes c_i.
func (s *ScaffoldUpdater) LocalTrain(model *nn.Sequential, x *tensor.Tensor, y []int, ctx LocalContext) {
	dim := model.NumParams()
	st, c := s.state(ctx.ClientID, dim)
	ci := st.ci
	start := model.ParamVector()
	steps := sgdEpochs(model, x, y, ctx, func(m *nn.Sequential) {
		grads := m.Grads()
		off := 0
		for _, g := range grads {
			for j := range g.Data {
				g.Data[j] += c[off+j] - ci[off+j]
			}
			off += g.Size()
		}
	})
	if steps == 0 {
		return
	}
	end := model.ParamVector()
	inv := 1 / (float64(steps) * ctx.LR)
	for j := 0; j < dim; j++ {
		newCi := ci[j] - c[j] + (start[j]-end[j])*inv
		st.pending[j] += newCi - ci[j]
		ci[j] = newCi
	}
	st.calls++
}

// FinishGlobalRound folds the accumulated client drift into the server
// variate: c += (participants/N)·mean(Δc_i). Called by Train once per
// global round, after every group has joined. Clients fold in ascending ID
// order and the snapshot is replaced atomically, so the update is identical
// for any worker count.
func (s *ScaffoldUpdater) FinishGlobalRound() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.c == nil {
		return
	}
	ids := make([]int, 0, len(s.clients))
	touched := 0
	for id, st := range s.clients {
		if st.calls > 0 {
			ids = append(ids, id)
			touched += st.calls
		}
	}
	if touched == 0 {
		return
	}
	sort.Ints(ids)
	clear(s.deltaC)
	for _, id := range ids {
		st := s.clients[id]
		tensor.Axpy(1, st.pending, s.deltaC)
		clear(st.pending)
		st.calls = 0
	}
	n := s.NumClients
	if n <= 0 {
		n = touched
	}
	next := make([]float64, len(s.c))
	inv := 1 / float64(n)
	for j := range next {
		next[j] = s.c[j] + s.deltaC[j]*inv
	}
	s.c = next
}

// globalRoundFinisher is implemented by updaters that need a hook at the
// end of every global round (SCAFFOLD's server variate refresh).
type globalRoundFinisher interface {
	FinishGlobalRound()
}

// ScaffoldCheckpoint is a global-round-boundary snapshot of SCAFFOLD's
// variates: the server variate c and each client's c_i, keyed by sorted
// client ID. Pending drift and call counts are deliberately absent — at a
// round boundary FinishGlobalRound has just zeroed them, which is exactly
// what makes the state this small.
type ScaffoldCheckpoint struct {
	C         []float64
	ClientIDs []int
	CI        [][]float64
}

// ExportState snapshots the variates. It must be called at a global-round
// boundary: a client with unfolded drift means the caller is mid-round,
// where the checkpoint would silently lose the pending updates.
func (s *ScaffoldUpdater) ExportState() *ScaffoldCheckpoint {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := &ScaffoldCheckpoint{C: append([]float64(nil), s.c...)}
	st.ClientIDs = make([]int, 0, len(s.clients))
	for id, cs := range s.clients {
		if cs.calls != 0 {
			panic("fel: ScaffoldUpdater.ExportState called mid-round (pending drift not yet folded)")
		}
		st.ClientIDs = append(st.ClientIDs, id)
	}
	sort.Ints(st.ClientIDs)
	st.CI = make([][]float64, len(st.ClientIDs))
	for i, id := range st.ClientIDs {
		st.CI[i] = append([]float64(nil), s.clients[id].ci...)
	}
	return st
}

// RestoreState overwrites the updater's variates with a snapshot taken by
// ExportState, leaving every client at a clean round boundary.
func (s *ScaffoldUpdater) RestoreState(st *ScaffoldCheckpoint) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(st.ClientIDs) != len(st.CI) {
		panic(fmt.Sprintf("fel: scaffold snapshot has %d ids but %d variates", len(st.ClientIDs), len(st.CI)))
	}
	if st.C == nil {
		s.clients, s.c, s.deltaC = nil, nil, nil
		return
	}
	dim := len(st.C)
	s.c = append([]float64(nil), st.C...)
	s.deltaC = make([]float64, dim)
	s.clients = make(map[int]*scaffoldState, len(st.ClientIDs))
	for i, id := range st.ClientIDs {
		if len(st.CI[i]) != dim {
			panic(fmt.Sprintf("fel: scaffold snapshot client %d has dim %d, server variate %d", id, len(st.CI[i]), dim))
		}
		s.clients[id] = &scaffoldState{
			ci:      append([]float64(nil), st.CI[i]...),
			pending: make([]float64, dim),
		}
	}
}
