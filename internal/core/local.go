package core

import (
	"sync"

	"repro/internal/nn"
	"repro/internal/stats"
	"repro/internal/tensor"
)

// LocalContext carries the per-client training context into a LocalUpdater.
type LocalContext struct {
	// ClientID identifies the client (stable across rounds).
	ClientID int
	// Anchor is the parameter vector the client started from (the group
	// model x^g_{t,k}); FedProx regularizes toward it.
	Anchor []float64
	// Epochs is E, BatchSize the mini-batch size (<=0 means full batch),
	// LR the learning rate η.
	Epochs    int
	BatchSize int
	LR        float64
	// Rng drives batch shuffling, derived deterministically per
	// (seed, round, group, client).
	Rng *stats.RNG
}

// LocalUpdater performs a client's local training (Alg. 1 lines 12–13),
// mutating model in place. Implementations must be safe for concurrent use
// by multiple clients.
type LocalUpdater interface {
	Name() string
	LocalTrain(model *nn.Sequential, x *tensor.Tensor, y []int, ctx LocalContext)
}

// sgdEpochs runs the shared mini-batch SGD loop, invoking adjust (if non-nil)
// after each backward pass so variants can modify gradients before the
// step. Returns the number of optimizer steps taken.
func sgdEpochs(model *nn.Sequential, x *tensor.Tensor, y []int, ctx LocalContext, adjust func(model *nn.Sequential)) int {
	n := x.Shape[0]
	bs := ctx.BatchSize
	if bs <= 0 || bs > n {
		bs = n
	}
	opt := nn.NewSGD(ctx.LR)
	var lossFn nn.SoftmaxCrossEntropy
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	dim := x.Size() / n
	bx := tensor.New(append([]int{bs}, x.Shape[1:]...)...)
	by := make([]int, bs)
	steps := 0
	for e := 0; e < ctx.Epochs; e++ {
		ctx.Rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		for lo := 0; lo < n; lo += bs {
			hi := lo + bs
			if hi > n {
				hi = n
			}
			cur := hi - lo
			var xb *tensor.Tensor
			var yb []int
			if cur == bs {
				xb, yb = bx, by
			} else {
				xb = tensor.New(append([]int{cur}, x.Shape[1:]...)...)
				yb = make([]int, cur)
			}
			for bi := 0; bi < cur; bi++ {
				src := order[lo+bi]
				copy(xb.Data[bi*dim:(bi+1)*dim], x.Data[src*dim:(src+1)*dim])
				yb[bi] = y[src]
			}
			logits := model.Forward(xb, true)
			_, probs := lossFn.Forward(logits, yb)
			model.Backward(lossFn.Backward(probs, yb))
			if adjust != nil {
				adjust(model)
			}
			opt.Step(model)
			steps++
		}
	}
	return steps
}

// SGDUpdater is the plain local SGD of Alg. 1 — used by Group-FEL, FedAvg,
// OUEA, and SHARE.
type SGDUpdater struct{}

// Name returns "SGD".
func (SGDUpdater) Name() string { return "SGD" }

// LocalTrain runs E epochs of mini-batch SGD.
func (SGDUpdater) LocalTrain(model *nn.Sequential, x *tensor.Tensor, y []int, ctx LocalContext) {
	sgdEpochs(model, x, y, ctx, nil)
}

// ProxUpdater implements FedProx: local loss is augmented with
// (Mu/2)·‖w − anchor‖², i.e. each gradient gains Mu·(w − anchor).
type ProxUpdater struct {
	Mu float64
}

// Name returns "FedProx".
func (ProxUpdater) Name() string { return "FedProx" }

// LocalTrain runs proximal SGD epochs.
func (p ProxUpdater) LocalTrain(model *nn.Sequential, x *tensor.Tensor, y []int, ctx LocalContext) {
	sgdEpochs(model, x, y, ctx, func(m *nn.Sequential) {
		params := m.Params()
		grads := m.Grads()
		off := 0
		for i, par := range params {
			g := grads[i]
			for j := range par.Data {
				g.Data[j] += p.Mu * (par.Data[j] - ctx.Anchor[off+j])
			}
			off += par.Size()
		}
	})
}

// ScaffoldUpdater implements SCAFFOLD's variance-reduced local update,
// ported to the hierarchical setting: each local step descends
// g − c_i + c, where c_i is the client control variate and c the server
// variate. After local training the client variate is refreshed with
// option II of the SCAFFOLD paper:
//
//	c_i⁺ = c_i − c + (w_start − w_end)/(steps·η)
//
// and the server variate absorbs the average drift of participating
// clients at the end of every global round.
type ScaffoldUpdater struct {
	// NumClients scales the server variate update (the 1/N in SCAFFOLD).
	NumClients int

	mu      sync.Mutex
	ci      map[int][]float64
	c       []float64
	deltaC  []float64
	touched int
}

// Name returns "SCAFFOLD".
func (*ScaffoldUpdater) Name() string { return "SCAFFOLD" }

// variates returns (copies of) the client and server control variates,
// allocating zeros on first use.
func (s *ScaffoldUpdater) variates(clientID, dim int) (ci, c []float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ci == nil {
		s.ci = make(map[int][]float64)
	}
	if s.c == nil {
		s.c = make([]float64, dim)
		s.deltaC = make([]float64, dim)
	}
	if _, ok := s.ci[clientID]; !ok {
		s.ci[clientID] = make([]float64, dim)
	}
	ci = append([]float64(nil), s.ci[clientID]...)
	c = append([]float64(nil), s.c...)
	return ci, c
}

// LocalTrain runs control-variate-corrected SGD and refreshes c_i.
func (s *ScaffoldUpdater) LocalTrain(model *nn.Sequential, x *tensor.Tensor, y []int, ctx LocalContext) {
	dim := model.NumParams()
	ci, c := s.variates(ctx.ClientID, dim)
	start := model.ParamVector()
	steps := sgdEpochs(model, x, y, ctx, func(m *nn.Sequential) {
		grads := m.Grads()
		off := 0
		for _, g := range grads {
			for j := range g.Data {
				g.Data[j] += c[off+j] - ci[off+j]
			}
			off += g.Size()
		}
	})
	if steps == 0 {
		return
	}
	end := model.ParamVector()
	newCi := make([]float64, dim)
	inv := 1 / (float64(steps) * ctx.LR)
	for j := 0; j < dim; j++ {
		newCi[j] = ci[j] - c[j] + (start[j]-end[j])*inv
	}
	s.mu.Lock()
	old := s.ci[ctx.ClientID]
	for j := 0; j < dim; j++ {
		s.deltaC[j] += newCi[j] - old[j]
	}
	s.ci[ctx.ClientID] = newCi
	s.touched++
	s.mu.Unlock()
}

// FinishGlobalRound folds the accumulated client drift into the server
// variate: c += (participants/N)·mean(Δc_i). Called by Train once per
// global round.
func (s *ScaffoldUpdater) FinishGlobalRound() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.touched == 0 || s.c == nil {
		return
	}
	n := s.NumClients
	if n <= 0 {
		n = s.touched
	}
	for j := range s.c {
		s.c[j] += s.deltaC[j] / float64(n)
		s.deltaC[j] = 0
	}
	s.touched = 0
}

// globalRoundFinisher is implemented by updaters that need a hook at the
// end of every global round (SCAFFOLD's server variate refresh).
type globalRoundFinisher interface {
	FinishGlobalRound()
}
