package core

import (
	"sync"

	"repro/internal/tensor"
)

// Deterministic tree reduction for the two aggregation points of Alg. 1: the
// per-group weighted average over client slots (reduceGroup) and the global
// weighted fold over group parameters (aggregateGlobal).
//
// The old reducers ran a serial left fold (Axpy chain) — deterministic, but
// strictly sequential: every partial sum depended on the previous one, so the
// aggregation could never use a second core and the whole weighted pass read
// each operand twice (scale, then add). The tree keeps determinism by fixing
// the *pairing*, not the schedule: level 0 folds adjacent nodes (0,1), (2,3),
// ... with the fused AxpbyInto kernel (one pass, weights applied in the same
// multiply-add order every time), odd tails are weighted in place and carried
// up, and higher levels sum adjacent survivors with AddInto. The pairing is a
// pure function of the live-node count, so every float operation order — and
// therefore every output bit — is identical whether the pairs of a level run
// inline or fanned out across goroutines.
//
// Changing the canonical summation order from left fold to tree changes the
// numerical results versus earlier versions of this package (both are valid
// roundings); within a version, replay and resume stay bit-exact, which is
// what the determinism contract promises.

// treeParMin is the minimum number of folded elements in one tree level
// (pairs × dim) before the level fans out across goroutines; below it the
// spawn overhead outweighs the bandwidth win.
const treeParMin = 1 << 16

// foldWeightedPairs folds node pairs [lo, hi) of tree level 0 in place:
// nodes[2j] = w[2j]·nodes[2j] + w[2j+1]·nodes[2j+1].
//
//lint:hotpath
func foldWeightedPairs(nodes [][]float64, w []float64, lo, hi int) {
	for j := lo; j < hi; j++ {
		tensor.AxpbyInto(w[2*j], nodes[2*j], w[2*j+1], nodes[2*j+1], nodes[2*j])
	}
}

// foldSumPairs folds node pairs [lo, hi) of an upper tree level in place:
// nodes[2j] = nodes[2j] + nodes[2j+1].
//
//lint:hotpath
func foldSumPairs(nodes [][]float64, lo, hi int) {
	for j := lo; j < hi; j++ {
		tensor.AddInto(nodes[2*j], nodes[2*j+1], nodes[2*j])
	}
}

// foldPairs runs one tree level: pairs adjacent nodes, weighted (level 0) or
// plain sums (higher levels). Small levels run inline through the hotpath
// helpers — no closure, no goroutine, zero allocations — so the serial
// training path keeps its zero-alloc steady state. Large levels chunk the
// pairs across up to par goroutines; every pair writes only its own nodes[2j],
// so the fan-out changes scheduling, never operation order.
func foldPairs(nodes [][]float64, w []float64, pairs, dim, par int, weighted bool) {
	if par <= 1 || pairs < 2 || pairs*dim < treeParMin {
		if weighted {
			foldWeightedPairs(nodes, w, 0, pairs)
		} else {
			foldSumPairs(nodes, 0, pairs)
		}
		return
	}
	workers := min(par, pairs)
	chunk := (pairs + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < pairs; lo += chunk {
		hi := min(lo+chunk, pairs)
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			if weighted {
				foldWeightedPairs(nodes, w, lo, hi)
			} else {
				foldSumPairs(nodes, lo, hi)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// treeFold computes Σ w[j]·nodes[j] over j in [0, n) with the fixed
// adjacent-pair tree and returns the root slice (nil when n is 0). The fold
// is destructive: node buffers are overwritten as partial sums, and the root
// aliases nodes[0]'s buffer (except n == 1, where it aliases the sole node,
// scaled in place). The caller may pass any par ≥ 1; results are
// bit-identical for all values.
func treeFold(nodes [][]float64, w []float64, n, par int) []float64 {
	if n == 0 {
		return nil
	}
	if n == 1 {
		tensor.ScaleSlice(w[0], nodes[0])
		return nodes[0]
	}
	dim := len(nodes[0])
	// Level 0 fuses the weighting into the first fold: one pass over each
	// pair instead of a scale pass plus an add pass.
	pairs := n / 2
	foldPairs(nodes, w, pairs, dim, par, true)
	if n%2 == 1 {
		tensor.ScaleSlice(w[n-1], nodes[n-1])
	}
	count := (n + 1) / 2
	for j := 1; j < count; j++ {
		nodes[j] = nodes[2*j]
	}
	// Higher levels pair the weighted survivors; an odd tail node carries up
	// by reference, costing nothing.
	for count > 1 {
		pairs = count / 2
		foldPairs(nodes, nil, pairs, dim, par, false)
		count = (count + 1) / 2
		for j := 1; j < count; j++ {
			nodes[j] = nodes[2*j]
		}
	}
	return nodes[0]
}
