package core

import (
	"repro/internal/nn"
	"repro/internal/stats"
	"repro/internal/tensor"
)

// sgdArena is the reusable scratch of one worker's SGD loop: the shuffle
// order, the mini-batch tensors (including the short tail batch), the
// softmax-probability buffers of the loss head, the optimizer, and a
// reseedable RNG. One arena lives per engine worker, so the steady-state
// inner loop of sgdEpochs performs no allocation at all — every buffer is
// recycled across batches, epochs, clients, and rounds.
type sgdArena struct {
	rng        *stats.RNG
	opt        *nn.SGD
	order      []int
	full, tail sgdBatch
}

// sgdBatch is one mini-batch's worth of reusable buffers: features, labels,
// and the loss head's probability/gradient tensor.
type sgdBatch struct {
	x     *tensor.Tensor
	y     []int
	probs *tensor.Tensor
}

// newSGDArena returns an empty arena; buffers grow on first use.
func newSGDArena() *sgdArena {
	return &sgdArena{rng: stats.NewRNG(0), opt: nn.NewSGD(0)}
}

// ensureOrder returns the identity permutation [0..n), reusing the backing
// array. The contents are reset every call because successive epochs shuffle
// in place and each client must start from the identity.
//
//lint:hotpath
func (a *sgdArena) ensureOrder(n int) []int {
	if cap(a.order) < n {
		a.order = make([]int, n)
	}
	a.order = a.order[:n]
	for i := range a.order {
		a.order[i] = i
	}
	return a.order
}

// ensure sizes the batch buffers for rows samples shaped like src's trailing
// dimensions, reusing prior allocations whenever the shape repeats.
//
//lint:hotpath
func (b *sgdBatch) ensure(rows int, src *tensor.Tensor) {
	if b.x == nil || b.x.Shape[0] != rows || !sameTrailing(b.x.Shape, src.Shape) {
		shape := make([]int, len(src.Shape))
		copy(shape, src.Shape)
		shape[0] = rows
		b.x = tensor.New(shape...)
	}
	if cap(b.y) < rows {
		b.y = make([]int, rows)
	}
	b.y = b.y[:rows]
}

// ensureProbs returns a probability buffer shaped like logits, reused across
// steps with a stable batch shape.
//
//lint:hotpath
func (b *sgdBatch) ensureProbs(logits *tensor.Tensor) *tensor.Tensor {
	if b.probs == nil || !b.probs.SameShape(logits) {
		b.probs = tensor.New(logits.Shape...)
	}
	return b.probs
}

// sameTrailing reports whether two shapes agree in every dimension after the
// leading (batch) one.
//
//lint:hotpath
func sameTrailing(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 1; i < len(a); i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// growFloats returns a zeroed slice of length n, reusing buf's backing array
// when it is large enough.
//
//lint:hotpath
func growFloats(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	buf = buf[:n]
	clear(buf)
	return buf
}
