package core

import (
	"fmt"
	"strconv"
	"sync"

	"repro/internal/async"
	"repro/internal/data"
	"repro/internal/grouping"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/stats"
	"repro/internal/tensor"
)

// engine is the deterministic parallel training core behind Train: a bounded
// pool of workers (one model clone + SGD arena each) fans client training out
// across goroutines while keeping every result bit-for-bit identical to the
// serial schedule at any MaxParallel.
//
// The determinism contract rests on four rules:
//
//  1. Every client's RNG is derived from (seed, round, group, client), never
//     from which worker runs it, and each worker's model is fully overwritten
//     (SetParamVector) before training, so worker identity cannot leak into
//     results.
//  2. Dropout decisions are pre-drawn serially in client order from the
//     group's dropout RNG — the exact draw sequence of the serial loop —
//     before any goroutine starts.
//  3. Each client writes its trained parameters into its own indexed slot;
//     no shared accumulator is touched concurrently.
//  4. The weighted reduction over slots is a fixed-pairing tree fold
//     (treeagg.go): the pairing is a pure function of the surviving client
//     count, so floating-point operation order never depends on scheduling —
//     the tree levels may fan out across goroutines and still produce the
//     same bits as the inline fold.
//
// Workers are created lazily up to max and recycled through a free list, so
// the steady state allocates nothing: models reuse their layer buffers
// (EnableBufferReuse), SGD scratch lives in per-worker arenas, and group
// aggregation buffers are pooled groupSpaces.
type engine struct {
	sys   *System
	cfg   Config
	local LocalUpdater
	comp  *compressorPool
	max   int

	mu      sync.Mutex
	created int
	free    chan *worker

	spaces sync.Pool

	reg        *metrics.Registry
	epochsCtr  *metrics.Counter
	dropsCtr   *metrics.Counter
	edgeLabels map[int]metrics.Label

	// fel_async_* handles, registered only when an async mode or a delay
	// model is configured so synchronous runs publish an unchanged metric
	// surface (async_engine.go guards every use behind the same condition).
	asyncStale      *metrics.Histogram
	asyncDepth      *metrics.Histogram
	asyncFolds      *metrics.Counter
	asyncFlushes    *metrics.Counter
	asyncCarry      *metrics.Counter
	asyncLate       *metrics.Counter
	asyncTicks      *metrics.Counter
	asyncRoundTicks *metrics.Gauge
}

// worker is one pool slot: a private model clone with buffer reuse enabled
// and the SGD scratch arena, plus a delta buffer for the compression path
// and the sample buffer virtual clients materialize into. The batch buffer
// is what bounds a round's data footprint on a virtual system: at most
// max workers × one client batch exist at any instant, independent of the
// population size.
type worker struct {
	model *nn.Sequential
	arena *sgdArena
	delta []float64
	batch data.SampleBuffer
}

// groupSpace holds one group's aggregation state for a global round: the
// evolving group parameters, per-client result slots (views into one flat
// backing array), the tree-reduction node scratch, pre-drawn dropout flags,
// and per-client uplink byte counts. Spaces are pooled on the engine and stay
// checked out until the global aggregation has consumed group.
type groupSpace struct {
	group  []float64
	flat   []float64
	slots  [][]float64
	nodes  [][]float64
	nodeW  []float64
	drop   []bool
	cbytes []int64
	drops  int
	bytes  int64
}

// testUncapWorkers lifts the physical-CPU cap on the worker pool. The test
// binary sets it (engine_test.go init) so the -race pool test and the
// MaxParallel replay sweeps exercise real multi-worker concurrency even on
// single-CPU CI hosts; production runs never do.
var testUncapWorkers bool

// newEngine builds the training engine for one run. MaxParallel <= 0 follows
// the effective processor count; MaxParallel == 1 is the serial reference
// path (no goroutines, one worker, zero synchronization overhead).
func newEngine(sys *System, cfg Config, local LocalUpdater, comp *compressorPool) *engine {
	// Syncing here refreshes the tensor kernels' processor cache at the run
	// boundary, so a caller that changed GOMAXPROCS (benchmarks, replay
	// tests) gets kernels that dispatch against the current value without
	// the hot path ever consulting the runtime.
	max := cfg.MaxParallel
	procs := tensor.SyncProcs()
	if max <= 0 {
		max = procs
	}
	// MaxParallel is a bound, not a worker count: results are bit-identical
	// however many workers actually run, so the pool is free to stay at the
	// physical CPU count. Beyond it, extra workers only multiply resident
	// model clones and thread handoffs on the same cores — the bench grid
	// measured large-scale rounds ~15% slower with 8 workers on one CPU.
	if max > procs && !testUncapWorkers {
		max = procs
	}
	e := &engine{
		sys:        sys,
		cfg:        cfg,
		local:      local,
		comp:       comp,
		max:        max,
		free:       make(chan *worker, max),
		reg:        cfg.Metrics,
		epochsCtr:  cfg.Metrics.Counter("fel_core_local_epochs_total"),
		dropsCtr:   cfg.Metrics.Counter("fel_core_dropouts_total"),
		edgeLabels: make(map[int]metrics.Label),
	}
	e.spaces.New = func() any { return &groupSpace{} }
	if cfg.Async.Mode != async.Sync || cfg.Async.Delays.Enabled() {
		e.asyncStale = cfg.Metrics.Histogram("fel_async_staleness")
		e.asyncDepth = cfg.Metrics.Histogram("fel_async_buffer_depth")
		e.asyncFolds = cfg.Metrics.Counter("fel_async_folds_total")
		e.asyncFlushes = cfg.Metrics.Counter("fel_async_flushes_total")
		e.asyncCarry = cfg.Metrics.Counter("fel_async_carryover_total")
		e.asyncLate = cfg.Metrics.Counter("fel_async_late_total")
		e.asyncTicks = cfg.Metrics.Counter("fel_async_ticks_total")
		e.asyncRoundTicks = cfg.Metrics.Gauge("fel_async_round_ticks")
	}
	return e
}

// acquire hands out a pooled worker, creating one lazily while fewer than
// max exist, and blocking on the free list otherwise.
func (e *engine) acquire() *worker {
	select {
	case w := <-e.free:
		return w
	default:
	}
	e.mu.Lock()
	if e.created < e.max {
		e.created++
		e.mu.Unlock()
		m := e.sys.NewModel(e.sys.ModelSeed)
		m.EnableBufferReuse()
		return &worker{model: m, arena: newSGDArena()}
	}
	e.mu.Unlock()
	return <-e.free
}

func (e *engine) release(w *worker) { e.free <- w }

// edgeLabel caches the metrics label for an edge so the per-group aggregation
// span does not re-render strconv output every group round.
func (e *engine) edgeLabel(edge int) metrics.Label {
	e.mu.Lock()
	l, ok := e.edgeLabels[edge]
	if !ok {
		l = metrics.L("edge", strconv.Itoa(edge))
		e.edgeLabels[edge] = l
	}
	e.mu.Unlock()
	return l
}

// getSpace checks a groupSpace out of the pool; putSpace returns it once the
// caller has consumed sp.group.
func (e *engine) getSpace() *groupSpace {
	return e.spaces.Get().(*groupSpace)
}

func (e *engine) putSpace(sp *groupSpace) { e.spaces.Put(sp) }

// reserve sizes the space for n clients of dim parameters, reusing backing
// arrays across rounds.
func (sp *groupSpace) reserve(n, dim int) {
	sp.group = growFloats(sp.group, dim)
	if cap(sp.flat) < n*dim {
		sp.flat = make([]float64, n*dim)
	}
	sp.flat = sp.flat[:n*dim]
	if cap(sp.slots) < n {
		sp.slots = make([][]float64, n)
	}
	sp.slots = sp.slots[:n]
	for i := range sp.slots {
		sp.slots[i] = sp.flat[i*dim : (i+1)*dim : (i+1)*dim]
	}
	if cap(sp.nodes) < n {
		sp.nodes = make([][]float64, n)
		sp.nodeW = make([]float64, n)
	}
	sp.nodes = sp.nodes[:n]
	sp.nodeW = sp.nodeW[:n]
	if cap(sp.drop) < n {
		sp.drop = make([]bool, n)
		sp.cbytes = make([]int64, n)
	}
	sp.drop = sp.drop[:n]
	sp.cbytes = sp.cbytes[:n]
	sp.drops = 0
	sp.bytes = 0
}

// forEachClient runs fn(0..n-1), inline when the engine is serial and on one
// goroutine per client otherwise (each blocks on a pooled worker, so true
// concurrency stays bounded by max). Panics are re-raised on the caller.
func (e *engine) forEachClient(n int, fn func(i int)) {
	if e.max == 1 || n == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstPanic any
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					mu.Lock()
					if firstPanic == nil {
						firstPanic = r
					}
					mu.Unlock()
				}
			}()
			fn(i)
		}(i)
	}
	wg.Wait()
	if firstPanic != nil {
		panic(fmt.Sprintf("fel: client worker panic: %v", firstPanic))
	}
}

// runGroup executes lines 8–14 of Alg. 1 for one selected group: K group
// rounds, each training every member client for E local epochs from the
// current group model, then weight-averaging by n_i over the clients whose
// updates arrived (n_i/n_g when nothing drops). The returned space holds the
// final group parameters in sp.group plus dropout and uplink accounting; the
// caller returns it to the pool with putSpace once consumed.
func (e *engine) runGroup(g *grouping.Group, globalParams []float64, round int) *groupSpace {
	cfg := &e.cfg
	dim := len(globalParams)
	n := g.Size()
	sp := e.getSpace()
	sp.reserve(n, dim)
	copy(sp.group, globalParams)

	dropRng := stats.NewRNG(cfg.Seed ^ 0xd20b ^
		(uint64(round+1) * 0xff51afd7ed558ccd) ^
		(uint64(g.ID+1) * 0xc4ceb9fe1a85ec53))
	roundBase := cfg.Seed ^
		(uint64(round+1) * 0x9e3779b97f4a7c15) ^
		(uint64(g.ID+1) * 0xc2b2ae3d27d4eb4f)

	for k := 0; k < cfg.GroupRounds; k++ {
		// Rule 2: the dropout draws happen serially in client order — the
		// same Float64 sequence the serial loop consumes.
		for i := range sp.drop {
			sp.drop[i] = cfg.DropoutProb > 0 && dropRng.Float64() < cfg.DropoutProb
		}
		e.forEachClient(n, func(i int) {
			c := g.Clients[i]
			w := e.acquire()
			defer e.release(w)
			w.model.SetParamVector(sp.group)
			x, y := e.sys.clientBatchInto(c, &w.batch)
			w.arena.rng.Reseed(roundBase ^ (uint64(c.ID+1) * 0x165667b19e3779f9))
			ctx := LocalContext{
				ClientID:  c.ID,
				Anchor:    sp.group,
				Epochs:    cfg.LocalEpochs,
				BatchSize: cfg.BatchSize,
				LR:        cfg.LR,
				Rng:       w.arena.rng,
				arena:     w.arena,
			}
			trainSpan := e.reg.Start("fel_core_local_train_seconds")
			e.local.LocalTrain(w.model, x, y, ctx)
			trainSpan.End()
			e.epochsCtr.Add(int64(cfg.LocalEpochs))
			sp.cbytes[i] = 0
			if sp.drop[i] {
				return
			}
			slot := w.model.ParamVectorInto(sp.slots[i])
			if e.comp != nil {
				// The client ships a compressed delta; the edge applies the
				// decoded delta to its copy of the group model.
				if cap(w.delta) < dim {
					w.delta = make([]float64, dim)
				}
				w.delta = w.delta[:dim]
				tensor.SubInto(slot, sp.group, w.delta)
				enc := e.comp.forClient(c.ID).Compress(w.delta)
				sp.cbytes[i] = int64(enc.Bytes())
				tensor.AddInto(sp.group, enc.Decode(), slot)
			} else {
				sp.cbytes[i] = int64(8 * dim)
			}
		})
		// Rules 3–4: reduce the indexed slots with the fixed-pairing tree.
		aggSpan := e.reg.Start("fel_core_group_aggregate_seconds", e.edgeLabel(g.Edge))
		reduceGroup(g, sp, e.max)
		aggSpan.End()
	}
	return sp
}

// reduceGroup folds the per-client parameter slots into sp.group by
// sample-count-weighted average over the clients whose updates arrived,
// accumulating the space's dropout and uplink accounting as it goes. The
// surviving slots, gathered in client order, feed the fixed-pairing tree
// fold (treeagg.go), which overwrites them in place — safe, because every
// slot is fully rewritten by ParamVectorInto before the next group round
// reads it. The pairing depends only on the survivor count, so the result
// is bit-identical at any MaxParallel. When every client dropped (wsum 0)
// the group model carries over unchanged.
func reduceGroup(g *grouping.Group, sp *groupSpace, par int) {
	live := 0
	wsum := 0.0
	for i, c := range g.Clients {
		if sp.drop[i] {
			sp.drops++
			continue
		}
		sp.bytes += sp.cbytes[i]
		w := float64(c.NumSamples())
		wsum += w
		sp.nodes[live] = sp.slots[i]
		sp.nodeW[live] = w
		live++
	}
	if wsum <= 0 {
		return
	}
	root := treeFold(sp.nodes, sp.nodeW, live, par)
	tensor.ScaleInto(1/wsum, root, sp.group)
}

// aggregateGlobal folds the selected groups' parameters into next with the
// unbiased estimator weights (Alg. 1 line 15): next = Σ w_si·group_si, as a
// fixed-pairing tree over selection order so the float sum is replay-stable
// at any parallelism. The groups' sp.group buffers are consumed as tree
// nodes — callers recycle the spaces afterwards, never reading group again.
// nodes is caller-owned scratch of length len(spaces).
func aggregateGlobal(weights []float64, spaces []*groupSpace, next []float64, nodes [][]float64, par int) {
	for si, sp := range spaces {
		nodes[si] = sp.group
	}
	root := treeFold(nodes, weights, len(spaces), par)
	if root != nil {
		copy(next, root)
	}
}
