// Package fel implements the Group-FEL training loop of Algorithm 1: edge
// servers form client groups, the cloud samples groups per global round,
// selected groups run K group rounds of E local epochs, and updates are
// aggregated group-then-globally. Local updates are pluggable (plain SGD,
// FedProx, SCAFFOLD), sampling and aggregation weighting are pluggable
// (Sec. 6), and every run is metered by the Eq. 5 cost accountant.
package core

import (
	"fmt"
	"sync"

	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// System bundles the federated population: the train/test data, the
// partitioned clients, their edge assignment, and the model architecture.
//
// A System is either materialized (Train holds every sample, clients carry
// Indices into it) or virtual (Train is nil, vp synthesizes any client's
// samples on demand from (seed, client ID)). The two are interchangeable
// everywhere in the training loop, and at matched seeds they train
// bit-identically; only their memory profiles differ — O(population ×
// samples) versus O(population histograms + selected clients' samples).
type System struct {
	// Train is the shared sample pool of a materialized system; nil when the
	// system is virtual.
	Train   *data.Dataset
	Test    *data.Dataset
	Clients []*data.Client
	Edges   [][]*data.Client
	Classes int
	// NewModel constructs the architecture with the given init seed. All
	// federated copies start from NewModel(ModelSeed).
	NewModel  func(seed uint64) *nn.Sequential
	ModelSeed uint64

	// vp synthesizes client samples for a virtual system.
	vp *data.VirtualPartition

	// cached per-client batches of a materialized system (built lazily,
	// guarded by mu).
	mu      sync.Mutex
	batches map[int]*clientBatch
}

type clientBatch struct {
	x *tensor.Tensor
	y []int
}

// SystemConfig describes how to build a System.
type SystemConfig struct {
	Generator data.GeneratorConfig
	Partition data.PartitionConfig
	NumEdges  int
	TestSize  int
	NewModel  func(seed uint64) *nn.Sequential
	ModelSeed uint64
}

// NewSystem samples the dataset, partitions it across clients and edges,
// and prepares the model factory.
func NewSystem(cfg SystemConfig) *System {
	if cfg.NumEdges <= 0 {
		panic("fel: NumEdges must be positive")
	}
	if cfg.NewModel == nil {
		panic("fel: NewModel is required")
	}
	gen := data.NewGenerator(cfg.Generator)
	// Train pool sized for the partition with headroom.
	trainSize := cfg.Partition.NumClients * cfg.Partition.MaxSamples
	train := gen.Sample(trainSize, 0)
	test := gen.Sample(cfg.TestSize, 1)
	clients := data.DirichletPartition(train, cfg.Partition)
	return &System{
		Train:     train,
		Test:      test,
		Clients:   clients,
		Edges:     data.SplitAcrossEdges(clients, cfg.NumEdges),
		Classes:   cfg.Generator.Classes,
		NewModel:  cfg.NewModel,
		ModelSeed: cfg.ModelSeed,
	}
}

// NewVirtualSystem builds a System whose client population is virtual:
// only the per-client label histograms are resident (built once here, in
// parallel), and a client's samples are synthesized into per-worker buffers
// when — and only when — the client is selected for a round. cfg.TestSize
// still draws a materialized i.i.d. test set, exactly as NewSystem does.
//
// The partition semantics differ from NewSystem's in one documented way:
// each virtual client draws its label distribution independently
// (no shared per-label sample pool), which is what removes the
// O(NumClients × MaxSamples) dataset and lets populations reach millions.
func NewVirtualSystem(cfg SystemConfig) *System {
	if cfg.NumEdges <= 0 {
		panic("fel: NumEdges must be positive")
	}
	if cfg.NewModel == nil {
		panic("fel: NewModel is required")
	}
	vp := data.NewVirtualPartition(cfg.Generator, cfg.Partition)
	clients := vp.Clients()
	return &System{
		Test:      vp.Generator().Sample(cfg.TestSize, 1),
		Clients:   clients,
		Edges:     data.SplitAcrossEdges(clients, cfg.NumEdges),
		Classes:   cfg.Generator.Classes,
		NewModel:  cfg.NewModel,
		ModelSeed: cfg.ModelSeed,
		vp:        vp,
	}
}

// Virtual reports whether client samples are synthesized on demand rather
// than held in a materialized Train dataset.
func (s *System) Virtual() bool { return s.vp != nil }

// Materialize expands a virtual system into an equivalent materialized one:
// same model factory and test set, and a Train dataset holding exactly the
// samples every virtual client would synthesize (bit-identical features and
// labels, contiguous Indices). Training on the two systems under the same
// Config produces Float64bits-equal models — that equivalence is this
// method's reason to exist, and it is only meant for small populations.
// Calling it on a materialized system returns the receiver.
func (s *System) Materialize() *System {
	if s.vp == nil {
		return s
	}
	train, clients := s.vp.MaterializeAll()
	return &System{
		Train:     train,
		Test:      s.Test,
		Clients:   clients,
		Edges:     data.SplitAcrossEdges(clients, len(s.Edges)),
		Classes:   s.Classes,
		NewModel:  s.NewModel,
		ModelSeed: s.ModelSeed,
	}
}

// SubSystem returns a System restricted to the given clients, sharing the
// train/test datasets (or virtual synthesis recipe) and model factory. Used
// by cluster-based methods (FedCLAR) that train separate models on client
// subsets.
func (s *System) SubSystem(clients []*data.Client, numEdges int) *System {
	return &System{
		Train:     s.Train,
		Test:      s.Test,
		Clients:   clients,
		Edges:     data.SplitAcrossEdges(clients, numEdges),
		Classes:   s.Classes,
		NewModel:  s.NewModel,
		ModelSeed: s.ModelSeed,
		vp:        s.vp,
	}
}

// ClientBatch returns the full batch (features + labels) of one client.
// Safe for concurrent use. On a materialized system the batch is gathered
// once and cached forever; on a virtual system it is synthesized into fresh
// storage on every call — cold paths only. The engine's hot path goes
// through clientBatchInto with a per-worker buffer instead.
func (s *System) ClientBatch(c *data.Client) (*tensor.Tensor, []int) {
	if s.vp != nil {
		return s.vp.Materialize(c.ID)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.batches == nil {
		s.batches = make(map[int]*clientBatch)
	}
	if b, ok := s.batches[c.ID]; ok {
		return b.x, b.y
	}
	x, y := s.Train.Batch(c.Indices)
	s.batches[c.ID] = &clientBatch{x: x, y: y}
	return x, y
}

// clientBatchInto returns the client's batch for training, using buf as the
// backing storage when the system is virtual. The materialized path ignores
// buf and returns the shared cached batch — callers must treat the result
// as read-only in both cases.
func (s *System) clientBatchInto(c *data.Client, buf *data.SampleBuffer) (*tensor.Tensor, []int) {
	if s.vp != nil {
		return s.vp.MaterializeInto(c.ID, buf)
	}
	return s.ClientBatch(c)
}

// Evaluate computes accuracy and mean loss of model on ds, batching to
// bound memory. batch <= 0 defaults to 256.
//
// Batches are scored in parallel across tensor.Procs model clones (GOMAXPROCS
// capped at physical CPUs), each batch writing into its own indexed slot; the
// final reduction runs in batch order, so the result is bit-identical to a
// serial evaluation at any parallelism.
func Evaluate(model *nn.Sequential, ds *data.Dataset, batch int) (acc, loss float64) {
	if batch <= 0 {
		batch = 256
	}
	n := ds.Len()
	if n == 0 {
		return 0, 0
	}
	nb := (n + batch - 1) / batch
	workers := tensor.Procs()
	if workers > nb {
		workers = nb
	}
	correct := make([]int, nb)
	losses := make([]float64, nb)
	var lossFn nn.SoftmaxCrossEntropy
	evalBatch := func(m *nn.Sequential, bi int, idx []int) []int {
		lo := bi * batch
		hi := min(lo+batch, n)
		idx = idx[:0]
		for i := lo; i < hi; i++ {
			idx = append(idx, i)
		}
		x, y := ds.Batch(idx)
		logits := m.Forward(x, false)
		l, _ := lossFn.Forward(logits, y)
		losses[bi] = l * float64(hi-lo)
		c := 0
		for i, p := range nn.Predict(logits) {
			if p == y[i] {
				c++
			}
		}
		correct[bi] = c
		return idx
	}
	if workers <= 1 {
		idx := make([]int, 0, batch)
		for bi := 0; bi < nb; bi++ {
			idx = evalBatch(model, bi, idx)
		}
	} else {
		models := make([]*nn.Sequential, workers)
		models[0] = model
		for w := 1; w < workers; w++ {
			models[w] = model.Clone()
		}
		parallelEach(workers, workers, func(w int) {
			idx := make([]int, 0, batch)
			for bi := w; bi < nb; bi += workers {
				idx = evalBatch(models[w], bi, idx)
			}
		})
	}
	tc := 0
	tl := 0.0
	for bi := 0; bi < nb; bi++ {
		tc += correct[bi]
		tl += losses[bi]
	}
	return float64(tc) / float64(n), tl / float64(n)
}

// parallelEach runs fn(0..n-1) across at most workers goroutines. workers
// <= 0 defaults to tensor.Procs. Panics inside fn are re-raised on the
// caller goroutine so test failures surface normally.
func parallelEach(n, workers int, fn func(i int)) {
	if workers <= 0 {
		workers = tensor.Procs()
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstPanic any
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				func() {
					defer func() {
						if r := recover(); r != nil {
							mu.Lock()
							if firstPanic == nil {
								firstPanic = r
							}
							mu.Unlock()
						}
					}()
					fn(i)
				}()
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	if firstPanic != nil {
		panic(fmt.Sprintf("fel: worker panic: %v", firstPanic))
	}
}
