// Package fel implements the Group-FEL training loop of Algorithm 1: edge
// servers form client groups, the cloud samples groups per global round,
// selected groups run K group rounds of E local epochs, and updates are
// aggregated group-then-globally. Local updates are pluggable (plain SGD,
// FedProx, SCAFFOLD), sampling and aggregation weighting are pluggable
// (Sec. 6), and every run is metered by the Eq. 5 cost accountant.
package core

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// System bundles the federated population: the shared train/test data, the
// partitioned clients, their edge assignment, and the model architecture.
type System struct {
	Train   *data.Dataset
	Test    *data.Dataset
	Clients []*data.Client
	Edges   [][]*data.Client
	Classes int
	// NewModel constructs the architecture with the given init seed. All
	// federated copies start from NewModel(ModelSeed).
	NewModel  func(seed uint64) *nn.Sequential
	ModelSeed uint64

	// cached per-client batches (built lazily, guarded by mu).
	mu      sync.Mutex
	batches map[int]*clientBatch
}

type clientBatch struct {
	x *tensor.Tensor
	y []int
}

// SystemConfig describes how to build a System.
type SystemConfig struct {
	Generator data.GeneratorConfig
	Partition data.PartitionConfig
	NumEdges  int
	TestSize  int
	NewModel  func(seed uint64) *nn.Sequential
	ModelSeed uint64
}

// NewSystem samples the dataset, partitions it across clients and edges,
// and prepares the model factory.
func NewSystem(cfg SystemConfig) *System {
	if cfg.NumEdges <= 0 {
		panic("fel: NumEdges must be positive")
	}
	if cfg.NewModel == nil {
		panic("fel: NewModel is required")
	}
	gen := data.NewGenerator(cfg.Generator)
	// Train pool sized for the partition with headroom.
	trainSize := cfg.Partition.NumClients * cfg.Partition.MaxSamples
	train := gen.Sample(trainSize, 0)
	test := gen.Sample(cfg.TestSize, 1)
	clients := data.DirichletPartition(train, cfg.Partition)
	return &System{
		Train:     train,
		Test:      test,
		Clients:   clients,
		Edges:     data.SplitAcrossEdges(clients, cfg.NumEdges),
		Classes:   cfg.Generator.Classes,
		NewModel:  cfg.NewModel,
		ModelSeed: cfg.ModelSeed,
	}
}

// SubSystem returns a System restricted to the given clients, sharing the
// train/test datasets and model factory. Used by cluster-based methods
// (FedCLAR) that train separate models on client subsets.
func (s *System) SubSystem(clients []*data.Client, numEdges int) *System {
	return &System{
		Train:     s.Train,
		Test:      s.Test,
		Clients:   clients,
		Edges:     data.SplitAcrossEdges(clients, numEdges),
		Classes:   s.Classes,
		NewModel:  s.NewModel,
		ModelSeed: s.ModelSeed,
	}
}

// ClientBatch returns the cached full batch (features + labels) of one
// client. Safe for concurrent use.
func (s *System) ClientBatch(c *data.Client) (*tensor.Tensor, []int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.batches == nil {
		s.batches = make(map[int]*clientBatch)
	}
	if b, ok := s.batches[c.ID]; ok {
		return b.x, b.y
	}
	x, y := s.Train.Batch(c.Indices)
	s.batches[c.ID] = &clientBatch{x: x, y: y}
	return x, y
}

// Evaluate computes accuracy and mean loss of model on ds, batching to
// bound memory. batch <= 0 defaults to 256.
//
// Batches are scored in parallel across GOMAXPROCS model clones, each batch
// writing into its own indexed slot; the final reduction runs in batch order,
// so the result is bit-identical to a serial evaluation at any parallelism.
func Evaluate(model *nn.Sequential, ds *data.Dataset, batch int) (acc, loss float64) {
	if batch <= 0 {
		batch = 256
	}
	n := ds.Len()
	if n == 0 {
		return 0, 0
	}
	nb := (n + batch - 1) / batch
	workers := runtime.GOMAXPROCS(0)
	if workers > nb {
		workers = nb
	}
	correct := make([]int, nb)
	losses := make([]float64, nb)
	var lossFn nn.SoftmaxCrossEntropy
	evalBatch := func(m *nn.Sequential, bi int, idx []int) []int {
		lo := bi * batch
		hi := min(lo+batch, n)
		idx = idx[:0]
		for i := lo; i < hi; i++ {
			idx = append(idx, i)
		}
		x, y := ds.Batch(idx)
		logits := m.Forward(x, false)
		l, _ := lossFn.Forward(logits, y)
		losses[bi] = l * float64(hi-lo)
		c := 0
		for i, p := range nn.Predict(logits) {
			if p == y[i] {
				c++
			}
		}
		correct[bi] = c
		return idx
	}
	if workers <= 1 {
		idx := make([]int, 0, batch)
		for bi := 0; bi < nb; bi++ {
			idx = evalBatch(model, bi, idx)
		}
	} else {
		models := make([]*nn.Sequential, workers)
		models[0] = model
		for w := 1; w < workers; w++ {
			models[w] = model.Clone()
		}
		parallelEach(workers, workers, func(w int) {
			idx := make([]int, 0, batch)
			for bi := w; bi < nb; bi += workers {
				idx = evalBatch(models[w], bi, idx)
			}
		})
	}
	tc := 0
	tl := 0.0
	for bi := 0; bi < nb; bi++ {
		tc += correct[bi]
		tl += losses[bi]
	}
	return float64(tc) / float64(n), tl / float64(n)
}

// parallelEach runs fn(0..n-1) across at most workers goroutines. workers
// <= 0 defaults to GOMAXPROCS. Panics inside fn are re-raised on the caller
// goroutine so test failures surface normally.
func parallelEach(n, workers int, fn func(i int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstPanic any
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				func() {
					defer func() {
						if r := recover(); r != nil {
							mu.Lock()
							if firstPanic == nil {
								firstPanic = r
							}
							mu.Unlock()
						}
					}()
					fn(i)
				}()
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	if firstPanic != nil {
		panic(fmt.Sprintf("fel: worker panic: %v", firstPanic))
	}
}
