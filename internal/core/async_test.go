package core

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/async"
	"repro/internal/compress"
	"repro/internal/cost"
	"repro/internal/data"
	"repro/internal/grouping"
	"repro/internal/nn"
	"repro/internal/sampling"
	"repro/internal/stats"
)

// wholeEdgeGrouping forms exactly one group per edge holding every client —
// the property tests use it to pin the group size precisely.
type wholeEdgeGrouping struct{}

func (wholeEdgeGrouping) Name() string { return "WholeEdge" }

func (wholeEdgeGrouping) Form(clients []*data.Client, classes, edge, firstID int, _ *stats.RNG) []*grouping.Group {
	return []*grouping.Group{grouping.NewGroup(firstID, edge, clients, classes)}
}

// asyncTestSystem is a single-edge population of exactly n clients, sized
// for speed: the whole-edge grouping turns it into one group of n.
func asyncTestSystem(n int, seed uint64) *System {
	gen := data.FlatConfig(4, 10, seed)
	gen.Noise = 0.8
	return NewSystem(SystemConfig{
		Generator: gen,
		Partition: data.PartitionConfig{
			NumClients: n, Alpha: 0.5,
			MinSamples: 8, MaxSamples: 16, MeanSamples: 12, StdSamples: 3,
			Seed: seed + 1,
		},
		NumEdges: 1,
		TestSize: 64,
		NewModel: func(s uint64) *nn.Sequential {
			return nn.NewMLP(10, []int{8}, 4, s)
		},
		ModelSeed: 7,
	})
}

func asyncTestConfig() Config {
	return Config{
		GlobalRounds: 2, GroupRounds: 2, LocalEpochs: 1,
		BatchSize: 8, LR: 0.05, SampleGroups: 1,
		Grouping:    wholeEdgeGrouping{},
		Sampling:    sampling.Random,
		Weights:     sampling.Biased,
		Seed:        42,
		DropoutProb: 0.3,
		CostProfile: cost.CIFARProfile(),
		CostOps:     cost.DefaultOps(),
	}
}

func sameFloatBits(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// TestAsyncAlphaZeroFullBufferEquivalence is the tentpole property: with a
// full buffer and α=0, buffered-async aggregation must reduce to exactly
// the synchronous tree-aggregation result — Float64bits-equal — for every
// group size 1..33 and MaxParallel ∈ {1,2,8}, under a straggler-storm
// delay model that scrambles the arrival permutation. The flush consumes
// the whole membership in canonical client order, so no permutation and no
// worker interleaving may leak into the fold.
func TestAsyncAlphaZeroFullBufferEquivalence(t *testing.T) {
	for n := 1; n <= 33; n++ {
		sys := asyncTestSystem(n, uint64(100+n))

		ref := asyncTestConfig()
		ref.MaxParallel = 1
		sync := Train(sys, ref)

		for _, par := range []int{1, 2, 8} {
			cfg := asyncTestConfig()
			cfg.MaxParallel = par
			cfg.Async = async.Config{
				Mode:       async.Buffered,
				Alpha:      0,
				BufferFrac: 1,
				Delays:     async.StragglerStorm(),
			}
			res := Train(sys, cfg)
			if !sameFloatBits(sync.Params, res.Params) {
				t.Fatalf("n=%d par=%d: async α=0 full-buffer weights diverge from sync", n, par)
			}
			if res.Dropouts != sync.Dropouts {
				t.Fatalf("n=%d par=%d: async dropouts %d, sync %d", n, par, res.Dropouts, sync.Dropouts)
			}
			if res.UplinkBytes != sync.UplinkBytes {
				t.Fatalf("n=%d par=%d: async uplink %d, sync %d", n, par, res.UplinkBytes, sync.UplinkBytes)
			}
			if res.ArrivalLog == nil || res.ArrivalLog.Len() == 0 {
				t.Fatalf("n=%d par=%d: async run recorded no arrival log", n, par)
			}
		}
	}
}

// TestAsyncFullBufferEquivalenceAnyAlpha pins the stronger structural
// fact behind the α=0 gate: at a full buffer every update folds at
// staleness zero, where w(τ)=1 for every α, so the equivalence cannot
// depend on the discount at all.
func TestAsyncFullBufferEquivalenceAnyAlpha(t *testing.T) {
	sys := asyncTestSystem(9, 7)
	ref := asyncTestConfig()
	ref.MaxParallel = 1
	sync := Train(sys, ref)
	for _, alpha := range []float64{0.5, 2} {
		cfg := asyncTestConfig()
		cfg.Async = async.Config{
			Mode: async.Buffered, Alpha: alpha, BufferFrac: 1,
			Delays: async.StragglerStorm(),
		}
		if res := Train(sys, cfg); !sameFloatBits(sync.Params, res.Params) {
			t.Fatalf("α=%v full-buffer weights diverge from sync", alpha)
		}
	}
}

// TestSemiSyncLargeDeadlineMatchesSync: a deadline no update can miss
// degenerates semi-sync to the synchronous schedule — every round folds
// the full membership at staleness zero.
func TestSemiSyncLargeDeadlineMatchesSync(t *testing.T) {
	sys := asyncTestSystem(8, 11)
	ref := asyncTestConfig()
	sync := Train(sys, ref)
	cfg := asyncTestConfig()
	cfg.Async = async.Config{
		Mode: async.SemiSync, Alpha: 0.5, DeadlineTicks: 1 << 20,
		Delays: async.StragglerStorm(),
	}
	res := Train(sys, cfg)
	if !sameFloatBits(sync.Params, res.Params) {
		t.Fatal("semi-sync with an unmissable deadline diverges from sync")
	}
	if res.Carryovers != 0 || res.LateDrops != 0 {
		t.Fatalf("unmissable deadline produced %d carryovers, %d late drops", res.Carryovers, res.LateDrops)
	}
}

// asyncModeConfigs are the non-degenerate configurations the replay and
// resume regressions sweep: a partial buffer with a real staleness
// discount, and a tight semi-sync deadline that forces carryovers.
func asyncModeConfigs() map[string]async.Config {
	return map[string]async.Config{
		"buffered": {
			Mode: async.Buffered, Alpha: 0.5, BufferFrac: 0.5,
			Delays: async.StragglerStorm(),
		},
		"semisync": {
			Mode: async.SemiSync, Alpha: 0.5, DeadlineTicks: 30,
			Delays: async.StragglerStorm(),
		},
	}
}

// TestAsyncReplayIdentical is the replay regression: for each async mode,
// two runs from the same seed — and runs at MaxParallel 1 vs 8 — produce
// byte-identical arrival logs and Float64bits-equal final weights.
func TestAsyncReplayIdentical(t *testing.T) {
	for name, acfg := range asyncModeConfigs() {
		t.Run(name, func(t *testing.T) {
			sys := asyncTestSystem(12, 3)
			var refLog []byte
			var refParams []float64
			for i, par := range []int{1, 1, 8} {
				cfg := asyncTestConfig()
				cfg.GlobalRounds = 3
				cfg.MaxParallel = par
				cfg.Async = acfg
				res := Train(sys, cfg)
				if res.ArrivalLog == nil || res.ArrivalLog.Len() == 0 {
					t.Fatal("no arrival log recorded")
				}
				if i == 0 {
					refLog = res.ArrivalLog.Bytes()
					refParams = res.Params
					continue
				}
				if !bytes.Equal(refLog, res.ArrivalLog.Bytes()) {
					t.Fatalf("run %d (par %d): arrival log diverges:\n%s", i, par, res.ArrivalLog)
				}
				if !sameFloatBits(refParams, res.Params) {
					t.Fatalf("run %d (par %d): final weights diverge", i, par)
				}
			}
		})
	}
}

// TestAsyncTrainerResume checks the mid-run boundary: exporting after 2 of
// 4 rounds and resuming yields the same final weights and the same
// complete arrival log as the uninterrupted run — including the adaptive
// sampler's EWMA state, which must survive the checkpoint for the
// remaining selections to replay.
func TestAsyncTrainerResume(t *testing.T) {
	for name, acfg := range asyncModeConfigs() {
		t.Run(name, func(t *testing.T) {
			cfg := asyncTestConfig()
			cfg.GlobalRounds = 4
			cfg.Async = acfg
			cfg.AdaptiveSampling = &sampling.AdaptiveConfig{Beta: 0.3, Explore: 0.1}

			full := Train(asyncTestSystem(12, 5), cfg)

			sys := asyncTestSystem(12, 5)
			tr := NewTrainer(sys, cfg)
			tr.Step()
			tr.Step()
			st, err := tr.ExportState()
			if err != nil {
				t.Fatal(err)
			}
			tr2, err := NewTrainerResumed(asyncTestSystem(12, 5), cfg, st)
			if err != nil {
				t.Fatal(err)
			}
			for !tr2.Done() {
				tr2.Step()
			}
			res := tr2.Finish()
			if !sameFloatBits(full.Params, res.Params) {
				t.Fatal("resumed weights diverge from uninterrupted run")
			}
			if !bytes.Equal(full.ArrivalLog.Bytes(), res.ArrivalLog.Bytes()) {
				t.Fatalf("resumed arrival log diverges:\nfull:\n%sresumed:\n%s", full.ArrivalLog, res.ArrivalLog)
			}
			if full.Carryovers != res.Carryovers || full.LateDrops != res.LateDrops || full.LogicalTicks != res.LogicalTicks {
				t.Fatalf("resumed counters diverge: carry %d/%d late %d/%d ticks %d/%d",
					full.Carryovers, res.Carryovers, full.LateDrops, res.LateDrops,
					full.LogicalTicks, res.LogicalTicks)
			}
		})
	}
}

// TestAsyncSemiSyncCarriesAndLateDrops forces the carryover machinery: a
// deadline shorter than the base delay means no update ever makes its own
// round, so every fold happens at positive staleness and the final
// deadline strands in-flight updates as late drops.
func TestAsyncSemiSyncCarriesAndLateDrops(t *testing.T) {
	cfg := asyncTestConfig()
	cfg.DropoutProb = 0
	cfg.Async = async.Config{
		Mode: async.SemiSync, Alpha: 0.5, DeadlineTicks: 8,
		// Delays of 10..20 against a K·D = 16 horizon: every update misses
		// its round deadline, and the tail outlives the whole schedule.
		Delays: async.DelayModel{BaseTicks: 10, JitterTicks: 10},
	}
	res := Train(asyncTestSystem(6, 9), cfg)
	if res.Carryovers == 0 {
		t.Fatal("tight deadline produced no carryovers")
	}
	if res.LateDrops == 0 {
		t.Fatal("tight deadline produced no late drops")
	}
	counts := res.ArrivalLog.Counts()
	if counts[async.Carry] != res.Carryovers || counts[async.Late] != res.LateDrops {
		t.Fatalf("log counts %v disagree with result (carry %d, late %d)", counts, res.Carryovers, res.LateDrops)
	}
	// Every group spends exactly K·D ticks per global round, and rounds sum.
	want := int64(res.RoundsRun) * int64(cfg.GroupRounds) * cfg.Async.DeadlineTicks
	if res.LogicalTicks != want {
		t.Fatalf("semi-sync logical ticks %d, want %d", res.LogicalTicks, want)
	}
}

// TestAsyncTicksBeatSyncUnderStragglers is the scheduling win in
// miniature: under the straggler-storm clock the synchronous barrier pays
// the max of every round's draws while buffered chains only pay their own,
// so async completes the same workload in strictly fewer logical ticks.
func TestAsyncTicksBeatSyncUnderStragglers(t *testing.T) {
	sys := asyncTestSystem(12, 13)
	ref := asyncTestConfig()
	ref.GlobalRounds = 3
	ref.Async.Delays = async.StragglerStorm() // sync mode, priced on the clock
	sync := Train(sys, ref)
	if sync.LogicalTicks == 0 {
		t.Fatal("sync run with delays enabled recorded no ticks")
	}
	cfg := asyncTestConfig()
	cfg.GlobalRounds = 3
	cfg.Async = async.Config{
		Mode: async.Buffered, Alpha: 0.5, BufferFrac: 0.5,
		Delays: async.StragglerStorm(),
	}
	res := Train(sys, cfg)
	if res.LogicalTicks >= sync.LogicalTicks {
		t.Fatalf("buffered ticks %d, want < sync %d", res.LogicalTicks, sync.LogicalTicks)
	}
}

// TestAsyncConfigValidation exercises the config guards end to end.
func TestAsyncConfigValidation(t *testing.T) {
	bad := []async.Config{
		{Mode: async.Mode(9)},
		{Mode: async.Buffered, Alpha: -1},
		{Mode: async.Buffered, BufferFrac: 1.5},
		{Mode: async.SemiSync},
		{Mode: async.Buffered, Delays: async.DelayModel{BaseTicks: -1}},
		{Mode: async.Buffered, Delays: async.DelayModel{BaseTicks: 1, StragglerProb: 2}},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d (%+v): Validate accepted a bad config", i, c)
		}
	}
	for i, c := range []async.Config{
		{},
		{Mode: async.Buffered, Alpha: 0.5, BufferFrac: 0.5, Delays: async.StragglerStorm()},
		{Mode: async.SemiSync, DeadlineTicks: 10, Delays: async.SlowLinks()},
	} {
		if err := c.Validate(); err != nil {
			t.Errorf("case %d: Validate rejected a good config: %v", i, err)
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("compressor + async mode did not panic")
			}
		}()
		cfg := asyncTestConfig()
		cfg.Async.Mode = async.Buffered
		// The panic fires in validate before the factory is ever called.
		cfg.NewCompressor = func() compress.Compressor { return nil }
		Train(asyncTestSystem(4, 1), cfg)
	}()
}
