package core

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/async"
	"repro/internal/compress"
	"repro/internal/cost"
	"repro/internal/grouping"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/sampling"
	"repro/internal/stats"
)

// Trainer runs Algorithm 1 one global round at a time. It holds every piece
// of cross-round state the one-shot Train loop kept in locals, which is what
// makes a run pausable: after any Step the trainer sits at a global-round
// boundary, ExportState captures that boundary completely, and
// NewTrainerResumed rebuilds a trainer whose remaining rounds are
// bit-for-bit identical to the uninterrupted run's.
//
// The determinism argument leans on two properties of the engine (PR 4):
// per-(seed, round, group, client) RNG streams are re-derived from the
// round index — stateless across rounds — and all reductions run in fixed
// order. The only RNG state that survives a round boundary is the
// sampling stream (two PCG words) and the parent stream, which is consumed
// exclusively by Split calls whose tags are pure functions of the round
// index, so resume replays them instead of serializing the parent.
type Trainer struct {
	sys   *System
	cfg   Config
	local LocalUpdater

	// rng is the parent stream: consumed only by Split(1) (formation),
	// Split(2) (sampling stream), and Split(100+t) at regroups.
	rng       *stats.RNG
	sampleRng *stats.RNG
	// sampler carries the O(groups) selection scratch across rounds, so a
	// steady-state Step allocates O(selected), not O(groups).
	sampler sampling.Sampler

	groups    []*grouping.Group
	probs     []float64
	selCtrs   []*metrics.Counter
	roundsCtr *metrics.Counter

	totalSamples int
	modelBytes   int

	global       *nn.Sequential
	globalParams []float64
	next         []float64

	acct        *cost.Accountant
	res         *Result
	compressors *compressorPool
	eng         *engine
	spaces      []*groupSpace
	// reports and syncTicks are the async step path's per-selection scratch,
	// aligned with spaces; adaptive is the online p_g re-estimator (nil for
	// static sampling).
	reports   []*asyncGroupReport
	syncTicks []int64
	adaptive  *sampling.Adaptive
	// aggNodes is the global aggregation's tree-node scratch, reused across
	// rounds so the steady-state Step stays allocation-free.
	aggNodes [][]float64

	// lastSelected counts the clients in the most recent round's selected
	// groups — the set O(selected)-memory claims are measured against.
	lastSelected int

	t int
}

// NewTrainer prepares a run: group formation, sampling vector, model
// initialization, cost accountant — everything Train did before its round
// loop, with the identical parent-RNG consumption order.
func NewTrainer(sys *System, cfg Config) *Trainer {
	validate(sys, cfg)
	tr := &Trainer{sys: sys, cfg: cfg}
	tr.local = cfg.Local
	if tr.local == nil {
		tr.local = SGDUpdater{}
	}
	tr.rng = stats.NewRNG(cfg.Seed)

	// Lines 2–3: group formation at every edge; line 4: sampling vector.
	tr.groups = grouping.FormAll(cfg.Grouping, sys.Edges, sys.Classes, tr.rng.Split(1))
	tr.probs = sampling.Probabilities(tr.groups, cfg.Sampling)
	tr.selCtrs = publishSampling(cfg.Metrics, tr.groups, tr.probs)
	tr.roundsCtr = cfg.Metrics.Counter("fel_core_rounds_total")

	for _, c := range sys.Clients {
		tr.totalSamples += c.NumSamples()
	}

	tr.global = sys.NewModel(sys.ModelSeed)
	tr.globalParams = tr.global.ParamVector()
	if cfg.InitParams != nil {
		if len(cfg.InitParams) != len(tr.globalParams) {
			panic(fmt.Sprintf("fel: InitParams length %d, model has %d", len(cfg.InitParams), len(tr.globalParams)))
		}
		copy(tr.globalParams, cfg.InitParams)
	}
	tr.acct = cost.NewAccountant(cfg.CostProfile, cfg.CostOps)
	tr.res = &Result{Participation: make(map[int]int)}
	tr.modelBytes = cfg.ModelBytes
	if tr.modelBytes <= 0 {
		tr.modelBytes = 8 * len(tr.globalParams)
	}
	if cfg.NewCompressor != nil {
		tr.compressors = &compressorPool{factory: cfg.NewCompressor, byClient: make(map[int]compress.Compressor)}
	}
	tr.eng = newEngine(sys, cfg, tr.local, tr.compressors)
	tr.next = make([]float64, len(tr.globalParams))
	tr.sampleRng = tr.rng.Split(2)
	if cfg.Async.Mode != async.Sync {
		tr.res.ArrivalLog = &async.Log{}
	}
	if cfg.AdaptiveSampling != nil {
		tr.adaptive = sampling.NewAdaptive(*cfg.AdaptiveSampling, len(tr.groups))
	}
	return tr
}

// Round returns the index of the next global round Step would run, i.e. the
// number of rounds executed so far.
func (tr *Trainer) Round() int { return tr.t }

// SelectedClients returns the number of clients in the groups the most
// recent Step sampled (0 before the first Step). At scale this — not the
// population — is what a round's working memory tracks; the popscale
// benchmark records it next to the per-round allocation numbers.
func (tr *Trainer) SelectedClients() int { return tr.lastSelected }

// Params returns the live global parameter vector. Callers must treat it as
// read-only; it is the buffer the next Step aggregates into.
func (tr *Trainer) Params() []float64 { return tr.globalParams }

// Done reports whether the run is over: all GlobalRounds executed, or the
// cost budget exhausted (the same check the Train loop made at the top of
// each iteration).
func (tr *Trainer) Done() bool {
	if tr.t >= tr.cfg.GlobalRounds {
		return true
	}
	return tr.cfg.CostBudget > 0 && tr.acct.Total() >= tr.cfg.CostBudget
}

// Step executes one global round (Alg. 1 lines 6–15): optional regrouping,
// group sampling, parallel group training, weighted global aggregation, and
// cost/participation/wall-clock accounting. It must not be called after
// Done returns true. cfg.OnRound, when set, fires before Step returns.
func (tr *Trainer) Step() RoundRecord {
	if tr.Done() {
		panic("fel: Trainer.Step called after Done")
	}
	cfg, sys, res, t := tr.cfg, tr.sys, tr.res, tr.t

	// Optional regrouping (Sec. 6.1): the random first pick in Alg. 2
	// makes each regroup explore a different formation.
	if cfg.RegroupEvery > 0 && t > 0 && t%cfg.RegroupEvery == 0 {
		tr.groups = grouping.FormAll(cfg.Grouping, sys.Edges, sys.Classes, tr.rng.Split(uint64(100+t)))
		tr.probs = sampling.Probabilities(tr.groups, cfg.Sampling)
		tr.selCtrs = publishSampling(cfg.Metrics, tr.groups, tr.probs)
		if tr.adaptive != nil {
			// The EWMAs are keyed by group identity; a new formation starts
			// the estimator over from the fresh CoV prior.
			tr.adaptive.Reset(len(tr.groups))
		}
	}
	groups, probs := tr.groups, tr.probs
	if tr.adaptive != nil {
		// Round 0 (or right after a regroup) this returns the CoV-derived
		// base vector verbatim; afterwards, the EWMA-adapted distribution.
		// Both sampling and the estimator weights below consume the same
		// vector, keeping the global estimator consistent with how groups
		// were actually drawn.
		probs = tr.adaptive.Mix(tr.probs)
	}

	// Line 6: sample S_t.
	s := cfg.SampleGroups
	if s > len(groups) {
		s = len(groups)
	}
	selected := tr.sampler.Sample(tr.sampleRng, probs, s)
	tr.roundsCtr.Inc()
	tr.lastSelected = 0
	for _, gi := range selected {
		tr.selCtrs[gi].Inc()
		tr.lastSelected += groups[gi].Size()
	}

	// Lines 7–14: each selected group trains in parallel. The engine
	// hands back pooled spaces, consumed by the global aggregation below
	// and then recycled.
	tr.spaces = tr.spaces[:0]
	tr.reports = tr.reports[:0]
	tr.syncTicks = tr.syncTicks[:0]
	for range selected {
		tr.spaces = append(tr.spaces, nil)
		tr.reports = append(tr.reports, nil)
		tr.syncTicks = append(tr.syncTicks, 0)
	}
	spaces, reports, syncTicks := tr.spaces, tr.reports, tr.syncTicks
	parallelEach(len(selected), cfg.MaxParallel, func(si int) {
		g := groups[selected[si]]
		switch cfg.Async.Mode {
		case async.Buffered:
			spaces[si], reports[si] = tr.eng.runGroupBuffered(g, tr.globalParams, t)
		case async.SemiSync:
			spaces[si], reports[si] = tr.eng.runGroupSemiSync(g, tr.globalParams, t)
		default:
			spaces[si] = tr.eng.runGroup(g, tr.globalParams, t)
			// Observational: price the synchronous barrier on the same
			// logical clock (identical per-dispatch draws) so tick
			// comparisons against the async modes are apples-to-apples.
			syncTicks[si] = tr.eng.syncGroupTicks(g, t)
		}
	})
	for _, sp := range spaces {
		res.Dropouts += sp.drops
		res.UplinkBytes += sp.bytes
		tr.eng.dropsCtr.Add(int64(sp.drops))
	}
	// A round's logical time is the slowest selected group (the cloud
	// barrier); the per-group event logs merge in selection order, which is
	// deterministic however the groups were scheduled above.
	roundTicks := int64(0)
	for si := range selected {
		ticks := syncTicks[si]
		if rep := reports[si]; rep != nil {
			ticks = rep.ticks
			res.Carryovers += rep.carryovers
			res.LateDrops += rep.lateDrops
			res.ArrivalLog.Append(rep.events...)
		}
		if ticks > roundTicks {
			roundTicks = ticks
		}
	}
	res.LogicalTicks += roundTicks
	if tr.adaptive != nil {
		// Observe before the global fold below: treeFold consumes the
		// sp.group buffers in place.
		for si, gi := range selected {
			tr.adaptive.Observe(gi, updateNorm(spaces[si].group, tr.globalParams))
		}
	}

	// Line 15: global aggregation into the reused double buffer.
	aggSpan := cfg.Metrics.Start("fel_core_global_aggregate_seconds")
	weights := sampling.Weights(groups, selected, probs, tr.totalSamples, cfg.Weights)
	tr.next = growFloats(tr.next, len(tr.globalParams))
	if cap(tr.aggNodes) < len(spaces) {
		tr.aggNodes = make([][]float64, len(spaces))
	}
	aggregateGlobal(weights, spaces, tr.next, tr.aggNodes[:len(spaces)], tr.eng.max)
	// The unbiased estimator targets the full-population average; the
	// weights may not sum to 1 in-sample, which is the point (Eq. 4).
	tr.globalParams, tr.next = tr.next, tr.globalParams
	for _, sp := range spaces {
		tr.eng.putSpace(sp)
	}
	aggSpan.End()

	if gf, ok := tr.local.(globalRoundFinisher); ok {
		gf.FinishGlobalRound()
	}

	// Cost, participation, and wall-clock accounting (Eq. 5).
	sel := make([][]int, len(selected))
	covSum := 0.0
	edgeGroupTimes := map[int][]float64{}
	for si, gi := range selected {
		g := groups[gi]
		counts := make([]int, g.Size())
		computes := make([]float64, g.Size())
		for i, c := range g.Clients {
			counts[i] = c.NumSamples()
			computes[i] = float64(cfg.LocalEpochs)*cfg.CostProfile.Training(c.NumSamples()) +
				cfg.CostProfile.GroupOverhead(g.Size(), cfg.CostOps)
			res.Participation[c.ID]++
		}
		sel[si] = counts
		covSum += g.CoV()
		if cfg.Topology != nil {
			edgeGroupTimes[g.Edge] = append(edgeGroupTimes[g.Edge],
				cfg.Topology.GroupRoundTime(tr.modelBytes, computes))
		}
	}
	tr.acct.GlobalRound(sel, cfg.GroupRounds, cfg.LocalEpochs)
	if cfg.Topology != nil {
		// Iterate edges in sorted order: GlobalRoundTime folds per-edge
		// times into a float sum, and map order would leak into WallClock.
		edges := make([]int, 0, len(edgeGroupTimes))
		for e := range edgeGroupTimes {
			edges = append(edges, e)
		}
		sort.Ints(edges)
		times := make([][]float64, 0, len(edges))
		for _, e := range edges {
			times = append(times, edgeGroupTimes[e])
		}
		res.WallClock += cfg.Topology.GlobalRoundTime(tr.modelBytes, cfg.GroupRounds, times)
	}

	rec := RoundRecord{
		Round:          t,
		Cost:           tr.acct.Total(),
		AvgSelectedCoV: covSum / float64(len(selected)),
	}
	evalNow := cfg.EvalEvery <= 1 || t%cfg.EvalEvery == 0 || t == cfg.GlobalRounds-1
	if evalNow {
		evalSpan := cfg.Metrics.Start("fel_core_eval_seconds")
		tr.global.SetParamVector(tr.globalParams)
		rec.Accuracy, rec.Loss = Evaluate(tr.global, sys.Test, 0)
		evalSpan.End()
	} else {
		rec.Accuracy, rec.Loss = -1, -1
	}
	res.Records = append(res.Records, rec)
	res.RoundsRun = t + 1
	tr.t = t + 1
	if cfg.OnRound != nil {
		cfg.OnRound(rec)
	}
	return rec
}

// updateNorm is ‖g − base‖₂, the observed group update magnitude the
// adaptive sampler treats as utility evidence.
func updateNorm(g, base []float64) float64 {
	s := 0.0
	for i := range g {
		d := g[i] - base[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// Finish runs the final evaluation and seals the Result. The trainer must
// not be stepped afterwards.
func (tr *Trainer) Finish() *Result {
	tr.global.SetParamVector(tr.globalParams)
	res := tr.res
	res.FinalAccuracy, res.FinalLoss = Evaluate(tr.global, tr.sys.Test, 0)
	res.Groups = tr.groups
	res.Probs = tr.probs
	res.TotalCost = tr.acct.Total()
	res.Params = tr.globalParams
	return res
}

// TrainerState is a complete snapshot of a Trainer at a global-round
// boundary. Everything a resumed run needs that cannot be re-derived from
// (System, Config) is here: the global parameters, the sampling stream's
// PCG words, the cost components, the accumulated Result accounting, and —
// when the local updater is SCAFFOLD — the control variates. Group
// formation is deliberately absent: it is replayed from the seed (including
// every regroup before Round), which keeps the snapshot O(model), not
// O(clients × model).
type TrainerState struct {
	// Round is the next global round to run (= rounds already executed).
	Round int
	// Params is the global parameter vector at the boundary.
	Params []float64
	// SampleHi, SampleLo are the sampling stream's PCG state words.
	SampleHi, SampleLo uint64
	// CostTraining and CostGroupOps are the accountant's components.
	CostTraining, CostGroupOps float64
	// Dropouts, UplinkBytes, WallClock mirror the Result accumulators.
	Dropouts    int
	UplinkBytes int64
	WallClock   float64
	// Participation maps client ID to rounds participated.
	Participation map[int]int
	// Records is the per-round history so far.
	Records []RoundRecord
	// Scaffold is non-nil when the run trains with SCAFFOLD.
	Scaffold *ScaffoldCheckpoint
	// AsyncEvents is the cumulative arrival log in async modes (nil for
	// sync runs); LogicalTicks, Carryovers, and LateDrops mirror the
	// Result accumulators. Restoring the log on resume is what makes a
	// resumed run's complete log byte-identical to the uninterrupted one.
	AsyncEvents  []async.Event
	LogicalTicks int64
	Carryovers   int
	LateDrops    int
	// Adaptive is non-nil when the run samples adaptively: the EWMA
	// utilities and seen flags at the boundary.
	Adaptive *sampling.AdaptiveState
}

// ExportState captures the trainer's state at the current round boundary.
// Call it only between Steps (or before the first / after the last). It
// fails for runs with a compressor configured: per-client error-feedback
// residuals live inside the compressor implementations and have no
// serialization surface.
func (tr *Trainer) ExportState() (*TrainerState, error) {
	if tr.cfg.NewCompressor != nil {
		return nil, errors.New("core: cannot checkpoint a run with NewCompressor set (per-client residual state is not serializable)")
	}
	hi, lo := tr.sampleRng.State()
	st := &TrainerState{
		Round:         tr.t,
		Params:        append([]float64(nil), tr.globalParams...),
		SampleHi:      hi,
		SampleLo:      lo,
		CostTraining:  tr.acct.Training(),
		CostGroupOps:  tr.acct.GroupOps(),
		Dropouts:      tr.res.Dropouts,
		UplinkBytes:   tr.res.UplinkBytes,
		WallClock:     tr.res.WallClock,
		Participation: make(map[int]int, len(tr.res.Participation)),
		Records:       append([]RoundRecord(nil), tr.res.Records...),
	}
	for id, n := range tr.res.Participation {
		st.Participation[id] = n
	}
	if sc, ok := tr.local.(*ScaffoldUpdater); ok {
		st.Scaffold = sc.ExportState()
	}
	st.LogicalTicks = tr.res.LogicalTicks
	st.Carryovers = tr.res.Carryovers
	st.LateDrops = tr.res.LateDrops
	if tr.res.ArrivalLog != nil {
		st.AsyncEvents = append([]async.Event(nil), tr.res.ArrivalLog.Events()...)
	}
	if tr.adaptive != nil {
		ast := tr.adaptive.Export()
		st.Adaptive = &ast
	}
	return st, nil
}

// NewTrainerResumed rebuilds a trainer from a snapshot taken by
// ExportState under the same (System, Config). The parent RNG is replayed —
// formation split, sampling split, and every regroup split up to the
// snapshot round — so the stream positions match an uninterrupted run, then
// the sampling stream is overwritten with the serialized PCG words. The
// remaining rounds are bit-identical to the run the snapshot came from.
//
// When the snapshot carries SCAFFOLD state, cfg.Local must be a fresh
// *ScaffoldUpdater for the variates to be restored into.
func NewTrainerResumed(sys *System, cfg Config, st *TrainerState) (*Trainer, error) {
	if cfg.NewCompressor != nil {
		return nil, errors.New("core: cannot resume a run with NewCompressor set")
	}
	tr := NewTrainer(sys, cfg)
	if len(st.Params) != len(tr.globalParams) {
		return nil, fmt.Errorf("core: snapshot has %d params, model has %d", len(st.Params), len(tr.globalParams))
	}
	if st.Round > cfg.GlobalRounds {
		return nil, fmt.Errorf("core: snapshot round %d exceeds GlobalRounds %d", st.Round, cfg.GlobalRounds)
	}

	// Replay the regroups the original run performed before the snapshot,
	// consuming the parent stream exactly as Step would have.
	for r := 1; r < st.Round; r++ {
		if cfg.RegroupEvery > 0 && r%cfg.RegroupEvery == 0 {
			tr.groups = grouping.FormAll(cfg.Grouping, sys.Edges, sys.Classes, tr.rng.Split(uint64(100+r)))
			tr.probs = sampling.Probabilities(tr.groups, cfg.Sampling)
			tr.selCtrs = publishSampling(cfg.Metrics, tr.groups, tr.probs)
		}
	}
	tr.sampleRng.SetState(st.SampleHi, st.SampleLo)

	tr.t = st.Round
	copy(tr.globalParams, st.Params)
	tr.acct.Restore(st.CostTraining, st.CostGroupOps)
	tr.res.Dropouts = st.Dropouts
	tr.res.UplinkBytes = st.UplinkBytes
	tr.res.WallClock = st.WallClock
	tr.res.RoundsRun = st.Round
	tr.res.Records = append([]RoundRecord(nil), st.Records...)
	for id, n := range st.Participation {
		tr.res.Participation[id] = n
	}
	if st.Scaffold != nil {
		sc, ok := tr.local.(*ScaffoldUpdater)
		if !ok {
			return nil, errors.New("core: snapshot carries SCAFFOLD state but cfg.Local is not *ScaffoldUpdater")
		}
		sc.RestoreState(st.Scaffold)
	}
	tr.res.LogicalTicks = st.LogicalTicks
	tr.res.Carryovers = st.Carryovers
	tr.res.LateDrops = st.LateDrops
	if len(st.AsyncEvents) > 0 {
		if tr.res.ArrivalLog == nil {
			return nil, errors.New("core: snapshot carries an arrival log but the config is synchronous")
		}
		tr.res.ArrivalLog.Append(st.AsyncEvents...)
	}
	if st.Adaptive != nil {
		if tr.adaptive == nil {
			return nil, errors.New("core: snapshot carries adaptive-sampling state but cfg.AdaptiveSampling is nil")
		}
		if err := tr.adaptive.Restore(*st.Adaptive); err != nil {
			return nil, err
		}
	}
	return tr, nil
}
