package core

import (
	"math"
	"testing"

	"repro/internal/stats"
)

// refTreeFold is an independent, allocation-happy reference for the fixed
// adjacent-pair tree: level 0 computes w[2j]·x + w[2j+1]·y per pair (same
// expression shape as the fused kernel, so the per-element operation order
// matches bit for bit), an odd tail is scaled and carried, and higher levels
// sum adjacent survivors into fresh buffers.
func refTreeFold(vals [][]float64, w []float64) []float64 {
	if len(vals) == 0 {
		return nil
	}
	dim := len(vals[0])
	cur := make([][]float64, 0, (len(vals)+1)/2)
	for j := 0; j+1 < len(vals); j += 2 {
		node := make([]float64, dim)
		for i := range node {
			node[i] = w[j]*vals[j][i] + w[j+1]*vals[j+1][i]
		}
		cur = append(cur, node)
	}
	if len(vals)%2 == 1 {
		node := make([]float64, dim)
		for i := range node {
			node[i] = w[len(vals)-1] * vals[len(vals)-1][i]
		}
		cur = append(cur, node)
	}
	for len(cur) > 1 {
		nxt := make([][]float64, 0, (len(cur)+1)/2)
		for j := 0; j+1 < len(cur); j += 2 {
			node := make([]float64, dim)
			for i := range node {
				node[i] = cur[j][i] + cur[j+1][i]
			}
			nxt = append(nxt, node)
		}
		if len(cur)%2 == 1 {
			nxt = append(nxt, cur[len(cur)-1])
		}
		cur = nxt
	}
	return cur[0]
}

// TestTreeFoldMatchesReference is the aggregation determinism property test:
// for every group size 1..33 and every parallelism the engine uses in anger,
// the in-place tree fold must be bit-identical to the independent reference —
// i.e. the pairing (and thus every float operation order) is a pure function
// of the node count, never of the schedule. dim is chosen so sizes ≥ 8 cross
// treeParMin and actually exercise the goroutine fan-out at par > 1.
func TestTreeFoldMatchesReference(t *testing.T) {
	const dim = 16384
	rng := stats.NewRNG(99)
	for n := 1; n <= 33; n++ {
		vals := make([][]float64, n)
		w := make([]float64, n)
		for j := range vals {
			vals[j] = make([]float64, dim)
			for i := range vals[j] {
				vals[j][i] = rng.Normal(0, 1)
			}
			w[j] = float64(1 + rng.IntN(40))
		}
		want := refTreeFold(vals, w)

		// The fold is destructive, so each par value gets fresh node copies.
		for _, par := range []int{1, 2, 8} {
			nodes := make([][]float64, n)
			for j := range nodes {
				nodes[j] = append([]float64(nil), vals[j]...)
			}
			got := treeFold(nodes, w, n, par)
			for i := range want {
				if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
					t.Fatalf("n=%d par=%d: element %d = %x, want %x", n, par, i,
						math.Float64bits(got[i]), math.Float64bits(want[i]))
				}
			}
		}

		// Sanity anchor: the tree is a regrouping of the plain weighted sum,
		// so it must agree with the left fold to rounding error.
		naive := make([]float64, 4)
		for j := range vals {
			for i := range naive {
				naive[i] += w[j] * vals[j][i]
			}
		}
		for i := range naive {
			if diff := math.Abs(naive[i] - want[i]); diff > 1e-9*(1+math.Abs(naive[i])) {
				t.Fatalf("n=%d: tree %v vs naive %v at %d", n, want[i], naive[i], i)
			}
		}
	}
}

// TestTreeFoldSerialZeroAlloc pins the serial path's allocation discipline:
// at par 1 the fold must not allocate — it sits inside every group round of
// the zero-alloc training steady state.
func TestTreeFoldSerialZeroAlloc(t *testing.T) {
	const dim, n = 256, 9
	nodes := make([][]float64, n)
	w := make([]float64, n)
	rng := stats.NewRNG(7)
	for j := range nodes {
		nodes[j] = make([]float64, dim)
		for i := range nodes[j] {
			nodes[j][i] = rng.Normal(0, 1)
		}
		w[j] = float64(1 + j)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		treeFold(nodes, w, n, 1)
		//lint:ignore float-eq AllocsPerRun returns an exact integer count
	}); allocs != 0 {
		t.Fatalf("serial treeFold allocated %.1f times per run, want 0", allocs)
	}
}
