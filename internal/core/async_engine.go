package core

import (
	"container/heap"

	"repro/internal/async"
	"repro/internal/grouping"
	"repro/internal/stats"
	"repro/internal/tensor"
)

// This file is the async executor: the buffered (FedBuff-style) and
// semi-synchronous group state machines that replace runGroup's K
// bulk-synchronous rounds when Config.Async selects them. Both run on a
// per-group logical clock whose every delay draw is a pure function of
// (seed, round, group, client, dispatch ordinal) — see async.DispatchSeed —
// and record their arrival order to an async.Log, so a run replays
// bit-identically from its configuration at any MaxParallel.
//
// The determinism rules are the engine's four (engine.go) plus two async
// ones:
//
//  5. Arrival order is decided by (tick, dispatch ordinal) on the event
//     heap — never by goroutine scheduling. Training still fans out over
//     the worker pool, but only within a dispatch batch, between clock
//     events.
//  6. A client is redispatched only by the flush that consumed its
//     previous update, anchored on the post-flush group model. With a
//     full buffer (BufferFrac 1) every flush consumes every client, the
//     dispatch batches equal the synchronous client ordering, every
//     staleness is zero, and the fold is byte-for-byte reduceGroup —
//     which is what the α=0 equivalence property test pins down.

// asyncGroupReport is what one async group execution hands back to the
// trainer alongside the groupSpace: the group's slice of the arrival log
// plus the counters the Result and metrics aggregate.
type asyncGroupReport struct {
	events     []async.Event
	ticks      int64
	carryovers int
	lateDrops  int
	folds      int
	flushes    int
}

// arrivalEvent is one in-flight update on the logical clock's heap.
type arrivalEvent struct {
	tick int64
	seq  int // dispatch ordinal within the group: the deterministic tiebreak
	ci   int // client index within the group
}

// arrivalHeap is a min-heap over (tick, seq).
type arrivalHeap []arrivalEvent

func (h arrivalHeap) Len() int { return len(h) }
func (h arrivalHeap) Less(i, j int) bool {
	if h[i].tick != h[j].tick {
		return h[i].tick < h[j].tick
	}
	return h[i].seq < h[j].seq
}
func (h arrivalHeap) Swap(i, j int)  { h[i], h[j] = h[j], h[i] }
func (h *arrivalHeap) Push(x any)    { *h = append(*h, x.(arrivalEvent)) }
func (h *arrivalHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// asyncGroupRun is the per-group state machine shared by the buffered and
// semi-sync executors.
type asyncGroupRun struct {
	e   *engine
	g   *grouping.Group
	sp  *groupSpace
	rep *asyncGroupReport

	round int
	n     int
	dim   int

	dropRng   *stats.RNG
	roundBase uint64
	delayRng  *stats.RNG

	heap arrivalHeap
	seq  int

	version int // group model version v: increments per nonempty fold

	// Per-client state, indexed by position in g.Clients.
	dispatched []int   // how many times dispatched (the next ordinal k)
	dispVer    []int   // model version at dispatch of the in-flight update
	inflight   []bool  // dispatched, not yet arrived
	arrived    []bool  // arrived (buffered or dropped), awaiting flush
	inBuf      []bool  // arrived with a live update in its slot
	arrivals   int     // arrivals (incl. drops) since the last flush
}

func (e *engine) newAsyncGroupRun(g *grouping.Group, globalParams []float64, round int, rep *asyncGroupReport) *asyncGroupRun {
	cfg := &e.cfg
	n := g.Size()
	dim := len(globalParams)
	sp := e.getSpace()
	sp.reserve(n, dim)
	copy(sp.group, globalParams)
	return &asyncGroupRun{
		e:     e,
		g:     g,
		sp:    sp,
		rep:   rep,
		round: round,
		n:     n,
		dim:   dim,
		// The same derivations runGroup uses (rules 1–2): the async
		// executor consumes the identical dropout and training streams, so
		// a full-buffer run replays the synchronous draws exactly.
		dropRng: stats.NewRNG(cfg.Seed ^ 0xd20b ^
			(uint64(round+1) * 0xff51afd7ed558ccd) ^
			(uint64(g.ID+1) * 0xc4ceb9fe1a85ec53)),
		roundBase: cfg.Seed ^
			(uint64(round+1) * 0x9e3779b97f4a7c15) ^
			(uint64(g.ID+1) * 0xc2b2ae3d27d4eb4f),
		delayRng:   stats.NewRNG(0),
		dispatched: make([]int, n),
		dispVer:    make([]int, n),
		inflight:   make([]bool, n),
		arrived:    make([]bool, n),
		inBuf:      make([]bool, n),
	}
}

// dispatch trains one batch of clients from the current group model and
// schedules their arrivals. batch holds client indices in client order —
// rule 2's serial dropout draws and rule 5's dispatch ordinals both follow
// that order, so the batch composition alone fixes every draw.
func (r *asyncGroupRun) dispatch(batch []int, now int64) {
	if len(batch) == 0 {
		return
	}
	e := r.e
	cfg := &e.cfg
	sp := r.sp
	for _, i := range batch {
		sp.drop[i] = cfg.DropoutProb > 0 && r.dropRng.Float64() < cfg.DropoutProb
	}
	e.forEachClient(len(batch), func(j int) {
		i := batch[j]
		c := r.g.Clients[i]
		w := e.acquire()
		defer e.release(w)
		w.model.SetParamVector(sp.group)
		x, y := e.sys.clientBatchInto(c, &w.batch)
		w.arena.rng.Reseed(r.roundBase ^ (uint64(c.ID+1) * 0x165667b19e3779f9))
		ctx := LocalContext{
			ClientID:  c.ID,
			Anchor:    sp.group,
			Epochs:    cfg.LocalEpochs,
			BatchSize: cfg.BatchSize,
			LR:        cfg.LR,
			Rng:       w.arena.rng,
			arena:     w.arena,
		}
		trainSpan := e.reg.Start("fel_core_local_train_seconds")
		e.local.LocalTrain(w.model, x, y, ctx)
		trainSpan.End()
		e.epochsCtr.Add(int64(cfg.LocalEpochs))
		sp.cbytes[i] = 0
		if sp.drop[i] {
			return
		}
		w.model.ParamVectorInto(sp.slots[i])
		sp.cbytes[i] = int64(8 * r.dim)
	})
	for _, i := range batch {
		c := r.g.Clients[i]
		k := r.dispatched[i]
		r.dispatched[i]++
		r.dispVer[i] = r.version
		r.inflight[i] = true
		r.delayRng.Reseed(async.DispatchSeed(cfg.Seed, r.round, r.g.ID, c.ID, k))
		delay := cfg.Async.Delays.Draw(r.delayRng)
		heap.Push(&r.heap, arrivalEvent{tick: now + delay, seq: r.seq, ci: i})
		r.seq++
	}
}

// arrive consumes one heap event: the update lands in the buffer (or its
// dropout is observed) and waits for the next flush.
func (r *asyncGroupRun) arrive(ev arrivalEvent) {
	i := ev.ci
	sp := r.sp
	r.inflight[i] = false
	r.arrived[i] = true
	r.arrivals++
	c := r.g.Clients[i]
	if sp.drop[i] {
		sp.drops++
		r.rep.events = append(r.rep.events, async.Event{
			Round: r.round, Group: r.g.ID, Client: c.ID,
			Kind: async.Drop, Tick: ev.tick,
		})
		return
	}
	r.inBuf[i] = true
	sp.bytes += sp.cbytes[i]
	// The flush that consumes this arrival is the next one, and v only
	// moves at flushes, so the version lag is already final here.
	stale := r.version - r.dispVer[i]
	r.e.asyncStale.Observe(float64(stale))
	r.rep.events = append(r.rep.events, async.Event{
		Round: r.round, Group: r.g.ID, Client: c.ID,
		Kind: async.Arrive, Tick: ev.tick, Stale: stale,
	})
}

// flush folds the buffered updates into the group model in canonical
// client order, weighted n_i·w(τ), and returns the clients the flush
// consumed (in client order) so the caller can redispatch or free them.
// The version advances only on a nonempty fold; an all-dropped buffer
// carries the model over, exactly like reduceGroup's wsum<=0 branch.
func (r *asyncGroupRun) flush(now int64) []int {
	e := r.e
	sp := r.sp
	alpha := e.cfg.Async.Alpha
	live := 0
	wsum := 0.0
	for i := 0; i < r.n; i++ {
		if !r.inBuf[i] {
			continue
		}
		w := float64(r.g.Clients[i].NumSamples()) *
			async.StalenessWeight(r.version-r.dispVer[i], alpha)
		sp.nodes[live] = sp.slots[i]
		sp.nodeW[live] = w
		wsum += w
		live++
	}
	if wsum > 0 {
		aggSpan := e.reg.Start("fel_core_group_aggregate_seconds", e.edgeLabel(r.g.Edge))
		root := treeFold(sp.nodes, sp.nodeW, live, e.max)
		tensor.ScaleInto(1/wsum, root, sp.group)
		aggSpan.End()
		r.version++
		r.rep.folds += live
		e.asyncFolds.Add(int64(live))
	}
	r.rep.flushes++
	e.asyncFlushes.Inc()
	e.asyncDepth.Observe(float64(live))
	r.rep.events = append(r.rep.events, async.Event{
		Round: r.round, Group: r.g.ID, Client: -1,
		Kind: async.Flush, Tick: now, Stale: live,
	})
	consumed := make([]int, 0, r.arrivals)
	for i := 0; i < r.n; i++ {
		if r.arrived[i] {
			r.arrived[i] = false
			r.inBuf[i] = false
			consumed = append(consumed, i)
		}
	}
	r.arrivals = 0
	return consumed
}

// runGroupBuffered executes one selected group under buffered-async
// semantics: every client is dispatched K times, arrivals fold whenever
// ceil(BufferFrac·n) of them (dropouts included — the loss is observed)
// have landed since the last flush, and the flush redispatches exactly the
// clients it consumed, anchored on the post-flush model. The heap draining
// with a nonempty buffer forces a final partial flush so no update is ever
// abandoned.
func (e *engine) runGroupBuffered(g *grouping.Group, globalParams []float64, round int) (*groupSpace, *asyncGroupReport) {
	rep := &asyncGroupReport{}
	r := e.newAsyncGroupRun(g, globalParams, round, rep)
	threshold := e.cfg.Async.FlushThreshold(r.n)
	K := e.cfg.GroupRounds

	all := make([]int, r.n)
	for i := range all {
		all[i] = i
	}
	r.dispatch(all, 0)

	now := int64(0)
	for r.heap.Len() > 0 {
		ev := heap.Pop(&r.heap).(arrivalEvent)
		now = ev.tick
		r.arrive(ev)
		if r.arrivals < threshold && r.heap.Len() > 0 {
			continue
		}
		consumed := r.flush(now)
		batch := make([]int, 0, len(consumed))
		for _, i := range consumed {
			if r.dispatched[i] < K {
				batch = append(batch, i)
			}
		}
		r.dispatch(batch, now)
	}
	rep.ticks = now
	e.asyncTicks.Add(now)
	e.asyncRoundTicks.Set(float64(now))
	return r.sp, rep
}

// runGroupSemiSync executes one selected group under semi-sync semantics:
// K rounds of DeadlineTicks each. Free clients dispatch at every round
// start; arrivals before the deadline fold at the deadline; an update
// still in flight at a deadline logs a carryover (per deadline missed) and
// folds later at its then-current staleness; updates in flight after the
// final deadline are discarded as late. The group always spends exactly
// K·DeadlineTicks logical ticks.
func (e *engine) runGroupSemiSync(g *grouping.Group, globalParams []float64, round int) (*groupSpace, *asyncGroupReport) {
	rep := &asyncGroupReport{}
	r := e.newAsyncGroupRun(g, globalParams, round, rep)
	K := e.cfg.GroupRounds
	D := e.cfg.Async.DeadlineTicks

	free := make([]bool, r.n)
	for i := range free {
		free[i] = true
	}
	batch := make([]int, 0, r.n)
	for gr := 0; gr < K; gr++ {
		start := int64(gr) * D
		deadline := start + D
		batch = batch[:0]
		for i := 0; i < r.n; i++ {
			if free[i] {
				free[i] = false
				batch = append(batch, i)
			}
		}
		r.dispatch(batch, start)
		for r.heap.Len() > 0 && r.heap[0].tick <= deadline {
			r.arrive(heap.Pop(&r.heap).(arrivalEvent))
		}
		for i := 0; i < r.n; i++ {
			if r.inflight[i] {
				rep.carryovers++
				e.asyncCarry.Inc()
				rep.events = append(rep.events, async.Event{
					Round: r.round, Group: g.ID, Client: g.Clients[i].ID,
					Kind: async.Carry, Tick: deadline, Stale: gr,
				})
			}
		}
		for _, i := range r.flush(deadline) {
			free[i] = true
		}
	}
	for r.heap.Len() > 0 {
		ev := heap.Pop(&r.heap).(arrivalEvent)
		rep.lateDrops++
		e.asyncLate.Inc()
		rep.events = append(rep.events, async.Event{
			Round: r.round, Group: g.ID, Client: g.Clients[ev.ci].ID,
			Kind: async.Late, Tick: ev.tick,
		})
	}
	rep.ticks = int64(K) * D
	e.asyncTicks.Add(rep.ticks)
	e.asyncRoundTicks.Set(float64(rep.ticks))
	return r.sp, rep
}

// syncGroupTicks prices the bulk-synchronous schedule on the same logical
// clock the async modes run on: each of the K group rounds costs the
// maximum of its members' delay draws (the round barrier waits for the
// slowest update), drawn from the identical per-dispatch streams — purely
// observational, the training path never sees these draws.
func (e *engine) syncGroupTicks(g *grouping.Group, round int) int64 {
	cfg := &e.cfg
	if !cfg.Async.Delays.Enabled() {
		return 0
	}
	rng := stats.NewRNG(0)
	total := int64(0)
	for k := 0; k < cfg.GroupRounds; k++ {
		roundMax := int64(0)
		for _, c := range g.Clients {
			rng.Reseed(async.DispatchSeed(cfg.Seed, round, g.ID, c.ID, k))
			if d := cfg.Async.Delays.Draw(rng); d > roundMax {
				roundMax = d
			}
		}
		total += roundMax
	}
	e.asyncTicks.Add(total)
	e.asyncRoundTicks.Set(float64(total))
	return total
}
