package core

import (
	"math"
	"testing"

	"repro/internal/data"
	"repro/internal/nn"
)

// virtualTestConfig builds the SystemConfig shared by the virtual and
// materialized sides of the equivalence tests.
func virtualTestConfig(numClients int, seed uint64) SystemConfig {
	gen := data.FlatConfig(4, 10, seed)
	gen.Noise = 0.8
	return SystemConfig{
		Generator: gen,
		Partition: data.PartitionConfig{
			NumClients: numClients, Alpha: 0.5,
			MinSamples: 10, MaxSamples: 40, MeanSamples: 25, StdSamples: 8,
			Seed: seed + 1,
		},
		NumEdges: 2,
		TestSize: 400,
		NewModel: func(s uint64) *nn.Sequential {
			return nn.NewMLP(10, []int{16}, 4, s)
		},
		ModelSeed: 7,
	}
}

// TestVirtualTrainBitIdenticalToMaterialized is the correctness gate of the
// flyweight refactor: training on a virtual population (samples synthesized
// per selection into worker buffers) must produce Float64bits-identical
// weights to training on its materialized copy (samples gathered from a
// shared dataset), with every stateful feature that could diverge switched
// on — client dropout, periodic regrouping, and SCAFFOLD variates — across
// serial and parallel engines.
func TestVirtualTrainBitIdenticalToMaterialized(t *testing.T) {
	scfg := virtualTestConfig(12, 3)
	for _, par := range []int{1, 4} {
		run := func(sys *System) []float64 {
			cfg := testConfig()
			cfg.GlobalRounds = 4
			cfg.RegroupEvery = 2
			cfg.DropoutProb = 0.25
			cfg.MaxParallel = par
			cfg.Local = &ScaffoldUpdater{NumClients: 12}
			return Train(sys, cfg).Params
		}
		virtual := NewVirtualSystem(scfg)
		if !virtual.Virtual() {
			t.Fatal("NewVirtualSystem built a non-virtual system")
		}
		materialized := virtual.Materialize()
		if materialized.Virtual() || materialized.Train == nil {
			t.Fatal("Materialize did not produce a materialized system")
		}
		v := run(virtual)
		m := run(materialized)
		if len(v) == 0 || len(v) != len(m) {
			t.Fatalf("MaxParallel=%d: parameter counts %d vs %d", par, len(v), len(m))
		}
		for i := range v {
			if math.Float64bits(v[i]) != math.Float64bits(m[i]) {
				t.Fatalf("MaxParallel=%d: param %d differs: %x vs %x (%.17g vs %.17g)",
					par, i, math.Float64bits(v[i]), math.Float64bits(m[i]), v[i], m[i])
			}
		}
	}
}

// TestVirtualSystemShape sanity-checks the flyweight population: no Train
// dataset, histogram-only clients, and ClientBatch synthesizing the same
// batch the materialized copy gathers.
func TestVirtualSystemShape(t *testing.T) {
	sys := NewVirtualSystem(virtualTestConfig(10, 5))
	if sys.Train != nil {
		t.Fatal("virtual system holds a materialized Train dataset")
	}
	if len(sys.Clients) != 10 || len(sys.Edges) != 2 {
		t.Fatalf("population %d clients across %d edges", len(sys.Clients), len(sys.Edges))
	}
	mat := sys.Materialize()
	for _, c := range sys.Clients {
		if c.Indices != nil {
			t.Fatalf("virtual client %d has indices", c.ID)
		}
		x, y := sys.ClientBatch(c)
		mx, my := mat.ClientBatch(mat.Clients[c.ID])
		if len(y) != len(my) || len(y) != c.NumSamples() {
			t.Fatalf("client %d: %d vs %d labels (N=%d)", c.ID, len(y), len(my), c.NumSamples())
		}
		for i := range y {
			if y[i] != my[i] {
				t.Fatalf("client %d label %d differs", c.ID, i)
			}
		}
		for i := range x.Data {
			if math.Float64bits(x.Data[i]) != math.Float64bits(mx.Data[i]) {
				t.Fatalf("client %d feature %d differs", c.ID, i)
			}
		}
	}
}

// TestVirtualTrainerCheckpointResume extends the PR-7 resume guarantee to
// virtual systems: kill a run at a round boundary, rebuild from the
// snapshot, and the remaining rounds are bit-identical.
func TestVirtualTrainerCheckpointResume(t *testing.T) {
	scfg := virtualTestConfig(12, 11)
	cfg := testConfig()
	cfg.GlobalRounds = 6
	cfg.RegroupEvery = 3

	full := NewTrainer(NewVirtualSystem(scfg), cfg)
	for !full.Done() {
		full.Step()
	}
	want := full.Finish().Params

	half := NewTrainer(NewVirtualSystem(scfg), cfg)
	for i := 0; i < 3; i++ {
		half.Step()
	}
	st, err := half.ExportState()
	if err != nil {
		t.Fatalf("ExportState: %v", err)
	}
	resumed, err := NewTrainerResumed(NewVirtualSystem(scfg), cfg, st)
	if err != nil {
		t.Fatalf("NewTrainerResumed: %v", err)
	}
	for !resumed.Done() {
		resumed.Step()
	}
	got := resumed.Finish().Params
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("param %d differs after resume: %.17g vs %.17g", i, got[i], want[i])
		}
	}
}
