package core

import (
	"math"
	"sync/atomic"
	"testing"

	"repro/internal/cost"
	"repro/internal/data"
	"repro/internal/grouping"
	"repro/internal/nn"
	"repro/internal/sampling"
)

// testSystem builds a small, fast federated population.
func testSystem(numClients int, alpha float64, seed uint64) *System {
	gen := data.FlatConfig(4, 10, seed)
	gen.Noise = 0.8
	part := data.PartitionConfig{
		NumClients: numClients, Alpha: alpha,
		MinSamples: 10, MaxSamples: 40, MeanSamples: 25, StdSamples: 8,
		Seed: seed + 1,
	}
	return NewSystem(SystemConfig{
		Generator: gen,
		Partition: part,
		NumEdges:  2,
		TestSize:  400,
		NewModel: func(s uint64) *nn.Sequential {
			return nn.NewMLP(10, []int{16}, 4, s)
		},
		ModelSeed: 7,
	})
}

func testConfig() Config {
	return Config{
		GlobalRounds: 10, GroupRounds: 2, LocalEpochs: 1,
		BatchSize: 16, LR: 0.05, SampleGroups: 3,
		Grouping:    grouping.CoVGrouping{Config: grouping.Config{MinGS: 3, MaxCoV: 0.5, MergeLeftover: true}},
		Sampling:    sampling.ESRCoV,
		Weights:     sampling.Biased,
		Seed:        42,
		CostProfile: cost.CIFARProfile(),
		CostOps:     cost.DefaultOps(),
	}
}

func TestTrainImprovesAccuracy(t *testing.T) {
	sys := testSystem(12, 0.5, 1)
	res := Train(sys, testConfig())
	if res.FinalAccuracy <= 0.4 {
		t.Fatalf("final accuracy %.3f, want > 0.4 (chance = 0.25)", res.FinalAccuracy)
	}
	if len(res.Records) != 10 {
		t.Fatalf("got %d records", len(res.Records))
	}
	first := res.Records[0]
	last := res.Records[len(res.Records)-1]
	if last.Accuracy <= first.Accuracy-0.05 {
		t.Fatalf("accuracy regressed: %.3f -> %.3f", first.Accuracy, last.Accuracy)
	}
}

func TestTrainDeterministic(t *testing.T) {
	sysA := testSystem(10, 0.5, 2)
	sysB := testSystem(10, 0.5, 2)
	cfg := testConfig()
	cfg.GlobalRounds = 4
	a := Train(sysA, cfg)
	b := Train(sysB, cfg)
	//lint:ignore float-eq test asserts exact deterministic output
	if a.FinalAccuracy != b.FinalAccuracy {
		t.Fatalf("non-deterministic accuracy: %v vs %v", a.FinalAccuracy, b.FinalAccuracy)
	}
	for i := range a.Params {
		//lint:ignore float-eq test asserts exact deterministic output
		if a.Params[i] != b.Params[i] {
			t.Fatal("non-deterministic final parameters")
		}
	}
}

func TestTrainCostMonotoneAndCharged(t *testing.T) {
	sys := testSystem(10, 0.5, 3)
	cfg := testConfig()
	cfg.GlobalRounds = 5
	res := Train(sys, cfg)
	prev := 0.0
	for _, r := range res.Records {
		if r.Cost <= prev {
			t.Fatalf("cost not strictly increasing at round %d: %v <= %v", r.Round, r.Cost, prev)
		}
		prev = r.Cost
	}
	//lint:ignore float-eq test asserts exact deterministic output
	if res.TotalCost != prev {
		t.Fatalf("TotalCost %v != last record %v", res.TotalCost, prev)
	}
}

func TestTrainCostBudgetStopsEarly(t *testing.T) {
	sys := testSystem(10, 0.5, 4)
	cfg := testConfig()
	cfg.GlobalRounds = 100
	// Run once to learn the per-round cost, then budget for ~3 rounds.
	probe := cfg
	probe.GlobalRounds = 1
	one := Train(sys, probe)
	cfg.CostBudget = one.TotalCost * 3.5
	res := Train(sys, cfg)
	if res.RoundsRun >= 100 || res.RoundsRun < 3 {
		t.Fatalf("budget run executed %d rounds", res.RoundsRun)
	}
}

func TestTrainEvalEvery(t *testing.T) {
	sys := testSystem(10, 0.5, 5)
	cfg := testConfig()
	cfg.GlobalRounds = 6
	cfg.EvalEvery = 3
	res := Train(sys, cfg)
	for _, r := range res.Records {
		evaluated := r.Accuracy >= 0
		want := r.Round%3 == 0 || r.Round == 5
		if evaluated != want {
			t.Fatalf("round %d evaluated=%v, want %v", r.Round, evaluated, want)
		}
	}
}

func TestTrainWeightSchemes(t *testing.T) {
	for _, scheme := range []sampling.WeightScheme{sampling.Biased, sampling.Unbiased, sampling.Stabilized} {
		sys := testSystem(10, 0.5, 6)
		cfg := testConfig()
		cfg.GlobalRounds = 4
		cfg.Weights = scheme
		// Unbiased with ESRCoV explodes by design; use RCoV for that case.
		if scheme == sampling.Unbiased {
			cfg.Sampling = sampling.RCoV
		}
		res := Train(sys, cfg)
		if math.IsNaN(res.FinalAccuracy) {
			t.Fatalf("%v: NaN accuracy", scheme)
		}
	}
}

func TestTrainFedProx(t *testing.T) {
	sys := testSystem(10, 0.3, 7)
	cfg := testConfig()
	cfg.GlobalRounds = 6
	cfg.Local = ProxUpdater{Mu: 0.1}
	res := Train(sys, cfg)
	if res.FinalAccuracy <= 0.3 {
		t.Fatalf("FedProx accuracy %.3f", res.FinalAccuracy)
	}
}

func TestTrainScaffold(t *testing.T) {
	sys := testSystem(10, 0.3, 8)
	cfg := testConfig()
	cfg.GlobalRounds = 6
	cfg.Local = &ScaffoldUpdater{NumClients: len(sys.Clients)}
	cfg.CostOps = cost.OpSet{SecAgg: true, Backdoor: true, Scaffold: true}
	res := Train(sys, cfg)
	if res.FinalAccuracy <= 0.3 {
		t.Fatalf("SCAFFOLD accuracy %.3f", res.FinalAccuracy)
	}
}

func TestScaffoldCostsMoreThanSGD(t *testing.T) {
	sys := testSystem(10, 0.5, 9)
	cfg := testConfig()
	cfg.GlobalRounds = 3
	plain := Train(sys, cfg)
	cfg.Local = &ScaffoldUpdater{NumClients: len(sys.Clients)}
	cfg.CostOps = cost.OpSet{SecAgg: true, Backdoor: true, Scaffold: true}
	sc := Train(testSystem(10, 0.5, 9), cfg)
	if sc.TotalCost <= plain.TotalCost {
		t.Fatalf("SCAFFOLD cost %v should exceed SGD cost %v", sc.TotalCost, plain.TotalCost)
	}
}

func TestTrainRegroup(t *testing.T) {
	sys := testSystem(12, 0.5, 10)
	cfg := testConfig()
	cfg.GlobalRounds = 6
	cfg.RegroupEvery = 2
	res := Train(sys, cfg)
	if res.RoundsRun != 6 {
		t.Fatalf("regroup run stopped at %d", res.RoundsRun)
	}
	if res.FinalAccuracy <= 0.3 {
		t.Fatalf("regroup accuracy %.3f", res.FinalAccuracy)
	}
}

func TestTrainValidation(t *testing.T) {
	sys := testSystem(8, 0.5, 11)
	good := testConfig()
	cases := []func(*Config){
		func(c *Config) { c.GlobalRounds = 0 },
		func(c *Config) { c.LR = 0 },
		func(c *Config) { c.SampleGroups = 0 },
		func(c *Config) { c.Grouping = nil },
		func(c *Config) { c.CostProfile = cost.Profile{} },
	}
	for i, mutate := range cases {
		cfg := good
		mutate(&cfg)
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			Train(sys, cfg)
		}()
	}
}

func TestEvaluateKnownModel(t *testing.T) {
	// A logistic model with huge weights on a one-feature-per-class dataset
	// classifies perfectly.
	ds := &data.Dataset{
		X:           []float64{1, 0, 0, 1, 1, 0},
		Y:           []int{0, 1, 0},
		SampleShape: []int{2},
		Classes:     2,
	}
	m := nn.NewLogistic(2, 2, 1)
	v := m.ParamVector() // W (2x2) then b (2)
	copy(v, []float64{10, -10, -10, 10, 0, 0})
	m.SetParamVector(v)
	acc, loss := Evaluate(m, ds, 2)
	//lint:ignore float-eq test asserts exact deterministic output
	if acc != 1 {
		t.Fatalf("accuracy %v, want 1", acc)
	}
	if loss > 1e-6 {
		t.Fatalf("loss %v", loss)
	}
}

func TestEvaluateEmptyDataset(t *testing.T) {
	m := nn.NewLogistic(2, 2, 1)
	ds := &data.Dataset{SampleShape: []int{2}, Classes: 2}
	acc, loss := Evaluate(m, ds, 0)
	//lint:ignore float-eq test asserts exact deterministic output
	if acc != 0 || loss != 0 {
		t.Fatal("empty dataset should evaluate to zeros")
	}
}

func TestParallelEachCoversAll(t *testing.T) {
	var count int64
	seen := make([]int32, 100)
	parallelEach(100, 8, func(i int) {
		atomic.AddInt64(&count, 1)
		atomic.AddInt32(&seen[i], 1)
	})
	if count != 100 {
		t.Fatalf("ran %d of 100", count)
	}
	for i, s := range seen {
		if s != 1 {
			t.Fatalf("index %d ran %d times", i, s)
		}
	}
}

func TestParallelEachPropagatesPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic to propagate")
		}
	}()
	parallelEach(10, 4, func(i int) {
		if i == 5 {
			panic("boom")
		}
	})
}

func TestClientBatchCached(t *testing.T) {
	sys := testSystem(6, 0.5, 12)
	c := sys.Clients[0]
	x1, y1 := sys.ClientBatch(c)
	x2, y2 := sys.ClientBatch(c)
	if x1 != x2 {
		t.Fatal("batch not cached")
	}
	if len(y1) != len(y2) || len(y1) != c.NumSamples() {
		t.Fatal("label cache wrong")
	}
}

func TestCoVGroupingOutperformsRandomUnderSkew(t *testing.T) {
	// The headline claim at miniature scale: with skewed data and a fixed
	// cost budget, CoVG+ESRCoV reaches at least the accuracy of RG+Random.
	run := func(alg grouping.Algorithm, m sampling.Method) float64 {
		sys := testSystem(20, 0.15, 13)
		cfg := testConfig()
		cfg.GlobalRounds = 12
		cfg.Grouping = alg
		cfg.Sampling = m
		// Average final accuracy over 2 seeds to damp noise.
		total := 0.0
		for s := uint64(0); s < 2; s++ {
			cfg.Seed = 100 + s
			total += Train(sys, cfg).FinalAccuracy
		}
		return total / 2
	}
	covg := run(grouping.CoVGrouping{Config: grouping.Config{MinGS: 3, MaxCoV: 0.4, MergeLeftover: true}}, sampling.ESRCoV)
	rg := run(grouping.RandomGrouping{Config: grouping.Config{MinGS: 3}}, sampling.Random)
	if covg < rg-0.08 {
		t.Fatalf("Group-FEL %.3f clearly below FedAvg-style %.3f", covg, rg)
	}
}
