package core

import (
	"math"
	"testing"

	"repro/internal/compress"
)

// sameBits fails the test unless a and b are bit-for-bit identical.
func sameBits(t *testing.T, what string, a, b []float64) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: length %d vs %d", what, len(a), len(b))
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			t.Fatalf("%s: element %d differs: %x vs %x (%.17g vs %.17g)",
				what, i, math.Float64bits(a[i]), math.Float64bits(b[i]), a[i], b[i])
		}
	}
}

// TestTrainerStepwiseMatchesTrain pins the refactor contract: driving the
// Trainer by hand is the same computation as Train (which is now a wrapper,
// but this keeps anyone from specializing one path without the other).
func TestTrainerStepwiseMatchesTrain(t *testing.T) {
	cfg := testConfig()
	cfg.GlobalRounds = 4
	want := Train(testSystem(10, 0.5, 2), cfg)

	tr := NewTrainer(testSystem(10, 0.5, 2), cfg)
	steps := 0
	for !tr.Done() {
		rec := tr.Step()
		if rec.Round != steps {
			t.Fatalf("step %d returned round %d", steps, rec.Round)
		}
		steps++
	}
	got := tr.Finish()
	if steps != 4 || tr.Round() != 4 {
		t.Fatalf("ran %d steps, Round()=%d, want 4", steps, tr.Round())
	}
	sameBits(t, "params", want.Params, got.Params)
	//lint:ignore float-eq test asserts exact deterministic output
	if want.TotalCost != got.TotalCost || want.FinalAccuracy != got.FinalAccuracy {
		t.Fatal("stepwise run diverged from Train in cost or accuracy")
	}
}

// TestResumeBitIdentical is the checkpoint/resume contract: exporting the
// trainer's state at an arbitrary round boundary and rebuilding from it
// (fresh System, fresh Config, fresh updater) must finish with final
// weights bit-identical to the uninterrupted run — with every stateful
// feature exercised: dropout, regrouping, SCAFFOLD variates.
func TestResumeBitIdentical(t *testing.T) {
	cases := []struct {
		name string
		mod  func(*Config)
	}{
		{"sgd", func(cfg *Config) {}},
		{"dropout-regroup", func(cfg *Config) {
			cfg.DropoutProb = 0.25
			cfg.RegroupEvery = 2
		}},
		{"scaffold", func(cfg *Config) {
			cfg.Local = &ScaffoldUpdater{NumClients: 12}
			cfg.DropoutProb = 0.2
		}},
		{"scaffold-regroup", func(cfg *Config) {
			cfg.Local = &ScaffoldUpdater{NumClients: 12}
			cfg.RegroupEvery = 3
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			makeCfg := func() Config {
				cfg := testConfig()
				cfg.GlobalRounds = 7
				tc.mod(&cfg)
				return cfg
			}
			full := Train(testSystem(12, 0.5, 3), makeCfg())

			for _, stopAt := range []int{1, 4} {
				tr := NewTrainer(testSystem(12, 0.5, 3), makeCfg())
				for tr.Round() < stopAt {
					tr.Step()
				}
				st, err := tr.ExportState()
				if err != nil {
					t.Fatal(err)
				}
				// The snapshot must be detached: keep stepping the original
				// trainer and it must not disturb the resumed run.
				for !tr.Done() {
					tr.Step()
				}

				resumed, err := NewTrainerResumed(testSystem(12, 0.5, 3), makeCfg(), st)
				if err != nil {
					t.Fatal(err)
				}
				if resumed.Round() != stopAt {
					t.Fatalf("resumed at round %d, want %d", resumed.Round(), stopAt)
				}
				for !resumed.Done() {
					resumed.Step()
				}
				res := resumed.Finish()
				sameBits(t, "final params", full.Params, res.Params)
				//lint:ignore float-eq resume must reproduce the uninterrupted run exactly
				if res.TotalCost != full.TotalCost || res.FinalAccuracy != full.FinalAccuracy {
					t.Fatalf("stop@%d: cost/accuracy diverged: %v/%v vs %v/%v",
						stopAt, res.TotalCost, res.FinalAccuracy, full.TotalCost, full.FinalAccuracy)
				}
				if res.Dropouts != full.Dropouts || res.UplinkBytes != full.UplinkBytes {
					t.Fatalf("stop@%d: dropout/uplink accounting diverged", stopAt)
				}
				if len(res.Records) != len(full.Records) {
					t.Fatalf("stop@%d: %d records, want %d", stopAt, len(res.Records), len(full.Records))
				}
				for i := range full.Records {
					if res.Records[i] != full.Records[i] {
						t.Fatalf("stop@%d: record %d diverged: %+v vs %+v", stopAt, i, res.Records[i], full.Records[i])
					}
				}
				for id, n := range full.Participation {
					if res.Participation[id] != n {
						t.Fatalf("stop@%d: participation[%d] = %d, want %d", stopAt, id, res.Participation[id], n)
					}
				}
			}
		})
	}
}

// TestExportStateRejectsCompressor: error-feedback residuals live inside
// compressor implementations with no serialization surface, so checkpoints
// of compressed runs must be refused loudly rather than resumed wrong.
func TestExportStateRejectsCompressor(t *testing.T) {
	cfg := testConfig()
	cfg.GlobalRounds = 2
	cfg.NewCompressor = func() compress.Compressor { return compress.NewTopK(10) }
	tr := NewTrainer(testSystem(10, 0.5, 2), cfg)
	tr.Step()
	if _, err := tr.ExportState(); err == nil {
		t.Fatal("ExportState accepted a run with a compressor")
	}
	if _, err := NewTrainerResumed(testSystem(10, 0.5, 2), cfg, &TrainerState{}); err == nil {
		t.Fatal("NewTrainerResumed accepted a config with a compressor")
	}
}

// TestResumeRejectsMismatchedSnapshot guards the obvious foot-guns: wrong
// model size and a snapshot claiming more rounds than the config allows.
func TestResumeRejectsMismatchedSnapshot(t *testing.T) {
	cfg := testConfig()
	cfg.GlobalRounds = 3
	tr := NewTrainer(testSystem(10, 0.5, 2), cfg)
	tr.Step()
	st, err := tr.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	bad := *st
	bad.Params = st.Params[:len(st.Params)-1]
	if _, err := NewTrainerResumed(testSystem(10, 0.5, 2), cfg, &bad); err == nil {
		t.Fatal("resume accepted a truncated parameter vector")
	}
	bad = *st
	bad.Round = cfg.GlobalRounds + 1
	if _, err := NewTrainerResumed(testSystem(10, 0.5, 2), cfg, &bad); err == nil {
		t.Fatal("resume accepted a snapshot from beyond GlobalRounds")
	}
	bad = *st
	bad.Scaffold = &ScaffoldCheckpoint{C: make([]float64, len(st.Params))}
	if _, err := NewTrainerResumed(testSystem(10, 0.5, 2), cfg, &bad); err == nil {
		t.Fatal("resume accepted SCAFFOLD state without a *ScaffoldUpdater")
	}
}
