package core

import (
	"math"
	"runtime"
	"testing"
	"time"

	"repro/internal/compress"
)

// The test binary lifts the engine's physical-CPU worker cap so the -race
// pool test and the MaxParallel replay sweeps exercise real multi-worker
// concurrency even when CI runs on a single-CPU host.
func init() { testUncapWorkers = true }

// TestSGDEpochsSteadyStateAllocs locks in the zero-alloc hot path: once a
// worker's arena and the model's reuse buffers are warm, an entire local
// training pass (shuffle, batch fill incl. tail batch, forward, loss,
// backward, SGD step) must not allocate.
func TestSGDEpochsSteadyStateAllocs(t *testing.T) {
	sys := testSystem(6, 0.5, 9)
	model := sys.NewModel(sys.ModelSeed)
	model.EnableBufferReuse()
	arena := newSGDArena()
	c := sys.Clients[0]
	x, y := sys.ClientBatch(c)
	if x.Shape[0]%7 == 0 {
		t.Fatalf("client 0 has %d samples; pick a batch size that forces a tail batch", x.Shape[0])
	}
	ctx := LocalContext{
		ClientID:  c.ID,
		Epochs:    2,
		BatchSize: 7, // deliberately misaligned so the tail-batch path runs
		LR:        0.05,
		Rng:       arena.rng,
		arena:     arena,
	}
	run := func() {
		arena.rng.Reseed(123)
		sgdEpochs(model, x, y, ctx, nil)
	}
	run() // warm the arena and reuse buffers
	if allocs := testing.AllocsPerRun(20, run); allocs > 0 {
		t.Fatalf("sgdEpochs steady state allocates %.1f objects per pass, want 0", allocs)
	}
}

// TestEvaluateParallelMatchesSerial pins Evaluate's chunked fan-out to the
// serial reduction bit for bit.
func TestEvaluateParallelMatchesSerial(t *testing.T) {
	sys := testSystem(8, 0.5, 5)
	model := sys.NewModel(sys.ModelSeed)
	run := func(procs int) (float64, float64) {
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
		// batch 16 forces many batches, so the parallel path really strides.
		return Evaluate(model, sys.Test, 16)
	}
	accSerial, lossSerial := run(1)
	accPar, lossPar := run(8)
	if math.Float64bits(accSerial) != math.Float64bits(accPar) ||
		math.Float64bits(lossSerial) != math.Float64bits(lossPar) {
		t.Fatalf("parallel Evaluate diverged: acc %.17g vs %.17g, loss %.17g vs %.17g",
			accPar, accSerial, lossPar, lossSerial)
	}
}

// TestEngineWorkerPoolRace drives the full engine — worker pool, pooled
// group spaces, compressor pool, SCAFFOLD's shared state — at high
// parallelism so ci.sh's race stage (go test -race ./internal/core) can
// catch any unsynchronized access.
func TestEngineWorkerPoolRace(t *testing.T) {
	old := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(old)
	sys := testSystem(16, 0.5, 11)
	cfg := testConfig()
	cfg.GlobalRounds = 2
	cfg.MaxParallel = 8
	cfg.DropoutProb = 0.2
	cfg.NewCompressor = func() compress.Compressor { return compress.NewTopK(16) }
	cfg.Local = &ScaffoldUpdater{NumClients: 16}
	res := Train(sys, cfg)
	if res.RoundsRun != 2 {
		t.Fatalf("ran %d rounds, want 2", res.RoundsRun)
	}
}

// TestTrainParallelSpeedup checks the engine actually converts cores into
// wall-clock on multi-core hosts. The threshold is deliberately loose
// (scheduling noise, small model); the headline numbers live in
// BenchmarkTrainSmall and results/BENCH_grid.json.
func TestTrainParallelSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	if runtime.GOMAXPROCS(0) < 4 {
		t.Skipf("GOMAXPROCS=%d < 4: no parallel speedup to measure", runtime.GOMAXPROCS(0))
	}
	run := func(maxParallel int) time.Duration {
		sys := testSystem(32, 0.5, 3)
		for _, c := range sys.Clients {
			sys.ClientBatch(c) // warm the batch cache outside the timer
		}
		cfg := testConfig()
		cfg.GlobalRounds = 4
		cfg.SampleGroups = 8
		cfg.MaxParallel = maxParallel
		cfg.EvalEvery = cfg.GlobalRounds // eval only the final round
		start := time.Now()
		Train(sys, cfg)
		return time.Since(start)
	}
	run(1) // warm caches and code paths
	serial := run(1)
	parallel := run(0)
	speedup := float64(serial) / float64(parallel)
	t.Logf("serial %v, parallel %v, speedup %.2fx (GOMAXPROCS=%d)",
		serial, parallel, speedup, runtime.GOMAXPROCS(0))
	if speedup < 1.2 {
		t.Errorf("parallel training speedup %.2fx < 1.2x at GOMAXPROCS=%d", speedup, runtime.GOMAXPROCS(0))
	}
}
