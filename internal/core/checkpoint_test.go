package core

import (
	"path/filepath"
	"testing"

	"repro/internal/compress"
	"repro/internal/sampling"
	"repro/internal/simnet"
)

func TestCheckpointRoundTrip(t *testing.T) {
	sys := testSystem(10, 0.5, 31)
	cfg := testConfig()
	cfg.GlobalRounds = 4
	res := Train(sys, cfg)

	ck := FromResult(res)
	path := filepath.Join(t.TempDir(), "ck.gob")
	if err := ck.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	//lint:ignore float-eq test asserts exact deterministic output
	if got.RoundsDone != 4 || got.TotalCost != res.TotalCost {
		t.Fatalf("metadata mismatch: %+v", got)
	}
	for i := range res.Params {
		//lint:ignore float-eq test asserts exact deterministic output
		if got.Params[i] != res.Params[i] {
			t.Fatal("params corrupted")
		}
	}
	if len(got.Records) != len(res.Records) {
		t.Fatal("records lost")
	}
}

func TestCheckpointResumeContinuesTraining(t *testing.T) {
	sys := testSystem(10, 0.5, 32)
	cfg := testConfig()
	cfg.GlobalRounds = 8

	// Run 4 rounds, checkpoint, resume for the remaining 4.
	half := cfg
	half.GlobalRounds = 4
	first := Train(sys, half)
	ck := FromResult(first)
	resumed := ck.Resume(cfg)
	if resumed.GlobalRounds != 4 {
		t.Fatalf("resume rounds = %d, want 4", resumed.GlobalRounds)
	}
	second := Train(sys, resumed)
	if second.RoundsRun != 4 {
		t.Fatalf("resumed run executed %d rounds", second.RoundsRun)
	}
	// The resumed run continues improving from the checkpoint (not from
	// scratch): its first evaluated accuracy should be at least near the
	// checkpoint's final accuracy.
	if second.Records[0].Accuracy < first.FinalAccuracy-0.1 {
		t.Fatalf("resume lost progress: %.3f vs checkpoint %.3f",
			second.Records[0].Accuracy, first.FinalAccuracy)
	}
}

func TestCheckpointResumeClampsRounds(t *testing.T) {
	ck := Checkpoint{RoundsDone: 10, Params: []float64{1}}
	cfg := Config{GlobalRounds: 6}
	if got := ck.Resume(cfg).GlobalRounds; got != 0 {
		t.Fatalf("over-complete checkpoint should clamp to 0 rounds, got %d", got)
	}
}

func TestLoadCheckpointMissingFile(t *testing.T) {
	if _, err := LoadCheckpoint(filepath.Join(t.TempDir(), "nope.gob")); err == nil {
		t.Fatal("expected error")
	}
}

func TestTrainWithDropout(t *testing.T) {
	sys := testSystem(12, 0.5, 33)
	cfg := testConfig()
	cfg.GlobalRounds = 8
	cfg.DropoutProb = 0.3
	res := Train(sys, cfg)
	if res.Dropouts == 0 {
		t.Fatal("expected some dropouts at p=0.3")
	}
	// Training still converges above chance despite losses.
	if res.FinalAccuracy <= 0.3 {
		t.Fatalf("dropout run accuracy %.3f", res.FinalAccuracy)
	}
	// No dropouts when disabled.
	cfg.DropoutProb = 0
	if got := Train(sys, cfg); got.Dropouts != 0 {
		t.Fatalf("dropouts recorded with p=0: %d", got.Dropouts)
	}
}

func TestTrainWithTotalDropoutStillFinishes(t *testing.T) {
	// p=0.99: almost every update lost; the run must not NaN or hang, and
	// the model should stay near its initialization when nothing arrives.
	sys := testSystem(8, 0.5, 34)
	cfg := testConfig()
	cfg.GlobalRounds = 3
	cfg.DropoutProb = 0.99
	res := Train(sys, cfg)
	if res.RoundsRun != 3 {
		t.Fatalf("run stopped at %d rounds", res.RoundsRun)
	}
	for _, p := range res.Params {
		//lint:ignore float-eq test asserts exact deterministic output
		if p != p { // NaN check
			t.Fatal("NaN parameters after total dropout")
		}
	}
}

func TestDropoutDeterministic(t *testing.T) {
	cfg := testConfig()
	cfg.GlobalRounds = 4
	cfg.DropoutProb = 0.25
	a := Train(testSystem(10, 0.5, 35), cfg)
	b := Train(testSystem(10, 0.5, 35), cfg)
	//lint:ignore float-eq test asserts exact deterministic output
	if a.Dropouts != b.Dropouts || a.FinalAccuracy != b.FinalAccuracy {
		t.Fatal("dropout simulation not deterministic")
	}
}

func TestParticipationTracking(t *testing.T) {
	sys := testSystem(10, 0.5, 40)
	cfg := testConfig()
	cfg.GlobalRounds = 6
	res := Train(sys, cfg)
	if len(res.Participation) == 0 {
		t.Fatal("no participation recorded")
	}
	total := 0
	for id, n := range res.Participation {
		if n <= 0 {
			t.Fatalf("client %d recorded %d participations", id, n)
		}
		total += n
	}
	// Each round trains SampleGroups groups; total client-rounds is at
	// least rounds × min group size.
	if total < cfg.GlobalRounds*cfg.SampleGroups*3 {
		t.Fatalf("implausibly low participation total %d", total)
	}
	if up := res.UniqueParticipants(); up == 0 || up > len(sys.Clients) {
		t.Fatalf("unique participants %d", up)
	}
	fi := res.FairnessIndex(sys)
	if fi <= 0 || fi > 1 {
		t.Fatalf("fairness index %v", fi)
	}
}

func TestFairnessRandomBeatsESRCoV(t *testing.T) {
	// Uniform sampling spreads participation; ESRCoV concentrates it — the
	// fairness trade-off the paper's future work calls out.
	run := func(m sampling.Method) float64 {
		sys := testSystem(16, 0.3, 41)
		cfg := testConfig()
		cfg.GlobalRounds = 12
		cfg.Sampling = m
		return Train(sys, cfg).FairnessIndex(sys)
	}
	random := run(sampling.Random)
	esr := run(sampling.ESRCoV)
	if random < esr {
		t.Fatalf("Random fairness %v should be >= ESRCoV %v", random, esr)
	}
}

func TestWallClockAccounting(t *testing.T) {
	sys := testSystem(10, 0.5, 42)
	cfg := testConfig()
	cfg.GlobalRounds = 4
	topo := simnet.Default()
	cfg.Topology = &topo
	res := Train(sys, cfg)
	if res.WallClock <= 0 {
		t.Fatal("no wall clock recorded with topology set")
	}
	// More rounds take longer.
	cfg.GlobalRounds = 8
	res2 := Train(testSystem(10, 0.5, 42), cfg)
	if res2.WallClock <= res.WallClock {
		t.Fatalf("8 rounds (%v) should take longer than 4 (%v)", res2.WallClock, res.WallClock)
	}
	// Without topology: zero.
	cfg.Topology = nil
	//lint:ignore float-eq test asserts exact deterministic output
	if got := Train(testSystem(10, 0.5, 42), cfg); got.WallClock != 0 {
		t.Fatalf("wall clock %v without topology", got.WallClock)
	}
}

func TestCompressionReducesUplinkBytes(t *testing.T) {
	run := func(factory func() compress.Compressor) *Result {
		sys := testSystem(10, 0.5, 50)
		cfg := testConfig()
		cfg.GlobalRounds = 5
		cfg.NewCompressor = factory
		return Train(sys, cfg)
	}
	dense := run(nil)
	if dense.UplinkBytes == 0 {
		t.Fatal("dense run recorded no uplink bytes")
	}
	topk := run(func() compress.Compressor { return compress.NewTopK(20) })
	if topk.UplinkBytes >= dense.UplinkBytes/5 {
		t.Fatalf("top-20 uplink %d not much smaller than dense %d", topk.UplinkBytes, dense.UplinkBytes)
	}
	// Error feedback keeps learning alive despite heavy sparsification.
	if topk.FinalAccuracy <= 0.3 {
		t.Fatalf("compressed training accuracy %.3f", topk.FinalAccuracy)
	}
	// 8-bit quantization: ~8x smaller, near-dense accuracy.
	q8 := run(func() compress.Compressor { return compress.NewUniform(8, 1) })
	if q8.UplinkBytes >= dense.UplinkBytes/4 {
		t.Fatalf("q8 uplink %d not smaller than dense %d", q8.UplinkBytes, dense.UplinkBytes)
	}
	if q8.FinalAccuracy < dense.FinalAccuracy-0.15 {
		t.Fatalf("q8 accuracy %.3f far below dense %.3f", q8.FinalAccuracy, dense.FinalAccuracy)
	}
}

func TestOnRoundCallback(t *testing.T) {
	sys := testSystem(8, 0.5, 60)
	cfg := testConfig()
	cfg.GlobalRounds = 4
	var rounds []int
	cfg.OnRound = func(r RoundRecord) { rounds = append(rounds, r.Round) }
	Train(sys, cfg)
	if len(rounds) != 4 {
		t.Fatalf("callback fired %d times", len(rounds))
	}
	for i, r := range rounds {
		if r != i {
			t.Fatalf("rounds out of order: %v", rounds)
		}
	}
}
