package core

import (
	"fmt"
	"strconv"
	"sync"

	"repro/internal/async"
	"repro/internal/compress"
	"repro/internal/cost"
	"repro/internal/grouping"
	"repro/internal/metrics"
	"repro/internal/sampling"
	"repro/internal/simnet"
	"repro/internal/stats"
)

// Config parameterizes one Group-FEL training run (Alg. 1 plus the cost
// model and the paper's sampling/weighting options).
type Config struct {
	// GlobalRounds (T), GroupRounds (K), LocalEpochs (E).
	GlobalRounds, GroupRounds, LocalEpochs int
	// BatchSize for local SGD; <= 0 means full-batch.
	BatchSize int
	// LR is the learning rate η.
	LR float64
	// SampleGroups is S = |S_t|, the groups drawn per global round.
	SampleGroups int
	// Grouping forms the groups at every edge (Alg. 1 lines 2–3).
	Grouping grouping.Algorithm
	// Sampling picks the probability scheme (Sec. 6.1).
	Sampling sampling.Method
	// Weights picks the aggregation weighting (Sec. 6.2).
	Weights sampling.WeightScheme
	// Local is the client update rule; nil means plain SGD.
	Local LocalUpdater
	// Seed drives all randomness in the run.
	Seed uint64
	// CostProfile and CostOps configure the Eq. 5 accountant.
	CostProfile cost.Profile
	CostOps     cost.OpSet
	// CostBudget stops training once the accumulated cost exceeds it
	// (0 = no budget, run all GlobalRounds).
	CostBudget float64
	// EvalEvery evaluates on the test set every n rounds (0 or 1 = every
	// round). The final round is always evaluated.
	EvalEvery int
	// RegroupEvery reruns group formation every n global rounds (0 =
	// never), the paper's Sec. 6.1 suggestion for reusing high-CoV data.
	RegroupEvery int
	// MaxParallel bounds worker goroutines (0 = one per physical CPU, via tensor.SyncProcs).
	MaxParallel int
	// InitParams, when non-nil, seeds the global model with these
	// parameters instead of a fresh initialization (used by two-phase
	// methods like FedCLAR).
	InitParams []float64
	// DropoutProb simulates unreliable edge clients: after local training,
	// each client's update is lost with this probability and the group
	// aggregation renormalizes over the survivors (the behaviour the
	// secure-aggregation substrate's dropout recovery enables). Dropped
	// clients still pay their training cost — work done is work paid for.
	DropoutProb float64
	// Topology, when non-nil, adds simulated wall-clock accounting: each
	// global round's time is the slowest selected group's K group rounds
	// (compute from the cost profile plus link transfers) between the
	// cloud hops. Purely observational — it does not change training.
	Topology *simnet.Topology
	// ModelBytes sizes the model payload for wall-clock accounting; 0
	// derives it from the parameter count (8 bytes each).
	ModelBytes int
	// NewCompressor, when non-nil, compresses every client's update delta
	// before group aggregation (one stateful compressor per client, so
	// error-feedback schemes work). The decoded delta is applied to the
	// group model; Result.UplinkBytes records the wire size saved.
	NewCompressor func() compress.Compressor
	// OnRound, when non-nil, is invoked with every round's record as it
	// completes — live progress for CLIs and dashboards.
	OnRound OnRoundFunc
	// Async selects the aggregation semantics (sync, buffered-async, or
	// semi-sync) plus the staleness discount and the logical-clock delay
	// model driving arrival order. The zero value is the paper's
	// bulk-synchronous Alg. 1. With a delay model configured, sync runs
	// also price their rounds on the same clock (Result.LogicalTicks) so
	// the modes compare on identical draws.
	Async async.Config
	// AdaptiveSampling, when non-nil, re-estimates the group selection
	// probabilities online from an EWMA of observed group update norms
	// (Chen & Vikalo-style heterogeneity-guided sampling), falling back to
	// the configured Sampling method's CoV-derived p_g until the first
	// observations land. Aggregation weights follow the adapted
	// probabilities, so the global estimator stays consistent.
	AdaptiveSampling *sampling.AdaptiveConfig
	// Metrics, when non-nil, receives the run's observability stream:
	// phase spans (local train, group/global aggregation, eval), per-group
	// selection counters for auditing the sampling distribution against
	// fel_core_group_prob, and round/dropout totals. All registry methods
	// are nil-safe, so leaving this unset costs nothing.
	Metrics *metrics.Registry
}

// RoundRecord captures the state after one global round.
type RoundRecord struct {
	Round int
	// Accuracy and Loss on the held-out test set (NaN when skipped).
	Accuracy, Loss float64
	// Cost is the cumulative Eq. 5 cost after this round.
	Cost float64
	// AvgSelectedCoV is the mean label CoV of the sampled groups.
	AvgSelectedCoV float64
}

// Result is the outcome of a training run.
type Result struct {
	Records []RoundRecord
	// Groups and Probs are the (final) formation and sampling vector.
	Groups []*grouping.Group
	Probs  []float64
	// FinalAccuracy and FinalLoss are measured after the last round.
	FinalAccuracy, FinalLoss float64
	// TotalCost is the Eq. 5 total.
	TotalCost float64
	// RoundsRun counts executed global rounds (may be fewer than T under a
	// cost budget).
	RoundsRun int
	// Dropouts counts client updates lost to the simulated unreliability.
	Dropouts int
	// Participation maps client ID to the number of global rounds the
	// client trained in (fairness accounting; see FairnessIndex).
	Participation map[int]int
	// WallClock is the simulated wall-clock time of the whole run under
	// the network topology model (0 when no topology configured).
	WallClock float64
	// UplinkBytes totals the client→edge update payload; with a compressor
	// configured it reflects the compressed wire size.
	UplinkBytes int64
	// Params is the final global parameter vector.
	Params []float64
	// LogicalTicks totals the run's time on the async logical clock: per
	// global round, the slowest selected group's ticks. Sync runs
	// accumulate it too when a delay model is configured (each round
	// priced at the barrier: max member delay per group round), so
	// async-vs-sync tick comparisons share the same draws. 0 without a
	// delay model.
	LogicalTicks int64
	// Carryovers counts semi-sync deadline misses (one per update per
	// deadline it overran); LateDrops counts updates discarded after the
	// final deadline of their group's schedule.
	Carryovers, LateDrops int
	// ArrivalLog is the run's replay log in async modes: every arrival,
	// dropout, flush, carryover, and late drop in deterministic order.
	// Nil in sync mode.
	ArrivalLog *async.Log
}

// Train runs Algorithm 1 on the system. Given equal (System, Config) inputs
// the run is bit-for-bit reproducible at any parallelism; the deterministic
// annotation makes the lint engine prove no wall-clock read is reachable.
//
// Train is a thin wrapper over Trainer — the stateful, stepwise form that
// felserve checkpoints and resumes — so the two can never drift apart.
//
//lint:deterministic
func Train(sys *System, cfg Config) *Result {
	tr := NewTrainer(sys, cfg)
	for !tr.Done() {
		tr.Step()
	}
	return tr.Finish()
}

// compressorPool hands out one stateful compressor per client (error
// feedback needs persistent residuals). Safe for concurrent groups.
type compressorPool struct {
	mu       sync.Mutex
	factory  func() compress.Compressor
	byClient map[int]compress.Compressor
}

func (p *compressorPool) forClient(id int) compress.Compressor {
	p.mu.Lock()
	defer p.mu.Unlock()
	c, ok := p.byClient[id]
	if !ok {
		c = p.factory()
		p.byClient[id] = c
	}
	return c
}

// publishSampling exports the current formation's sampling state: one
// probability, CoV, and size gauge per group. Regrouping republishes, so
// the gauges always describe the live formation. The sampling-frequency
// audit (EXPERIMENTS.md) compares fel_core_group_selected_total empirical
// frequencies against these fel_core_group_prob values.
//
// It returns the selection counter handle of every group, aligned with
// groups, so the round loop increments cached counters instead of paying a
// strconv render plus registry lookup per selection.
func publishSampling(reg *metrics.Registry, groups []*grouping.Group, probs []float64) []*metrics.Counter {
	sel := make([]*metrics.Counter, len(groups))
	for i, g := range groups {
		gl := metrics.L("group", strconv.Itoa(g.ID))
		reg.Gauge("fel_core_group_prob", gl).Set(probs[i])
		reg.Gauge("fel_core_group_cov", gl).Set(g.CoV())
		reg.Gauge("fel_core_group_size", gl).Set(float64(g.Size()))
		sel[i] = reg.Counter("fel_core_group_selected_total", gl)
	}
	return sel
}

func validate(sys *System, cfg Config) {
	switch {
	case sys == nil:
		panic("fel: nil system")
	case cfg.GlobalRounds <= 0 || cfg.GroupRounds <= 0 || cfg.LocalEpochs <= 0:
		panic("fel: T, K, E must be positive")
	case cfg.LR <= 0:
		panic("fel: LR must be positive")
	case cfg.SampleGroups <= 0:
		panic("fel: SampleGroups must be positive")
	case cfg.Grouping == nil:
		panic("fel: Grouping algorithm is required")
	case cfg.CostProfile.Name == "":
		panic(fmt.Sprintf("fel: CostProfile is required (got %+v)", cfg.CostProfile))
	}
	if cfg.Topology != nil {
		if err := cfg.Topology.Validate(); err != nil {
			panic(fmt.Sprintf("fel: %v", err))
		}
	}
	if err := cfg.Async.Validate(); err != nil {
		panic(fmt.Sprintf("fel: %v", err))
	}
	if cfg.Async.Mode != async.Sync && cfg.NewCompressor != nil {
		// The buffered fold consumes raw slots; the compressed-delta path
		// rewrites the group model per client, which has no async analogue.
		panic("fel: NewCompressor requires synchronous aggregation")
	}
	if cfg.AdaptiveSampling != nil {
		if err := cfg.AdaptiveSampling.Validate(); err != nil {
			panic(fmt.Sprintf("fel: %v", err))
		}
	}
}

// FairnessIndex returns Jain's fairness index over all clients'
// participation counts (clients that never trained count as zero). The
// paper's future-work section flags participation fairness as the cost of
// prioritized sampling; this makes it measurable.
func (r *Result) FairnessIndex(sys *System) float64 {
	counts := make([]float64, len(sys.Clients))
	for i, c := range sys.Clients {
		counts[i] = float64(r.Participation[c.ID])
	}
	return stats.JainIndex(counts)
}

// UniqueParticipants returns how many distinct clients ever trained.
func (r *Result) UniqueParticipants() int {
	n := 0
	for _, c := range r.Participation {
		if c > 0 {
			n++
		}
	}
	return n
}

// OnRoundFunc receives each round's record as training progresses.
type OnRoundFunc func(RoundRecord)

// RunGroupRounds exposes the inner group-training step (lines 8–14 of
// Alg. 1) for schedulers that orchestrate groups across multiple models
// (e.g. internal/multimodel): it runs cfg.GroupRounds × cfg.LocalEpochs of
// local training for every client of g starting from params and returns
// the aggregated group parameters plus dropout and uplink accounting.
func RunGroupRounds(sys *System, cfg Config, g *grouping.Group, params []float64, round int) (newParams []float64, dropouts int, uplinkBytes int64) {
	local := cfg.Local
	if local == nil {
		local = SGDUpdater{}
	}
	var pool *compressorPool
	if cfg.NewCompressor != nil {
		pool = &compressorPool{factory: cfg.NewCompressor, byClient: make(map[int]compress.Compressor)}
	}
	eng := newEngine(sys, cfg, local, pool)
	sp := eng.runGroup(g, params, round)
	newParams = append([]float64(nil), sp.group...)
	dropouts, uplinkBytes = sp.drops, sp.bytes
	eng.putSpace(sp)
	return newParams, dropouts, uplinkBytes
}
