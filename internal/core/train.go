package core

import (
	"fmt"
	"strconv"
	"sync"

	"repro/internal/compress"
	"repro/internal/cost"
	"repro/internal/grouping"
	"repro/internal/metrics"
	"repro/internal/sampling"
	"repro/internal/simnet"
	"repro/internal/stats"
)

// Config parameterizes one Group-FEL training run (Alg. 1 plus the cost
// model and the paper's sampling/weighting options).
type Config struct {
	// GlobalRounds (T), GroupRounds (K), LocalEpochs (E).
	GlobalRounds, GroupRounds, LocalEpochs int
	// BatchSize for local SGD; <= 0 means full-batch.
	BatchSize int
	// LR is the learning rate η.
	LR float64
	// SampleGroups is S = |S_t|, the groups drawn per global round.
	SampleGroups int
	// Grouping forms the groups at every edge (Alg. 1 lines 2–3).
	Grouping grouping.Algorithm
	// Sampling picks the probability scheme (Sec. 6.1).
	Sampling sampling.Method
	// Weights picks the aggregation weighting (Sec. 6.2).
	Weights sampling.WeightScheme
	// Local is the client update rule; nil means plain SGD.
	Local LocalUpdater
	// Seed drives all randomness in the run.
	Seed uint64
	// CostProfile and CostOps configure the Eq. 5 accountant.
	CostProfile cost.Profile
	CostOps     cost.OpSet
	// CostBudget stops training once the accumulated cost exceeds it
	// (0 = no budget, run all GlobalRounds).
	CostBudget float64
	// EvalEvery evaluates on the test set every n rounds (0 or 1 = every
	// round). The final round is always evaluated.
	EvalEvery int
	// RegroupEvery reruns group formation every n global rounds (0 =
	// never), the paper's Sec. 6.1 suggestion for reusing high-CoV data.
	RegroupEvery int
	// MaxParallel bounds worker goroutines (0 = GOMAXPROCS).
	MaxParallel int
	// InitParams, when non-nil, seeds the global model with these
	// parameters instead of a fresh initialization (used by two-phase
	// methods like FedCLAR).
	InitParams []float64
	// DropoutProb simulates unreliable edge clients: after local training,
	// each client's update is lost with this probability and the group
	// aggregation renormalizes over the survivors (the behaviour the
	// secure-aggregation substrate's dropout recovery enables). Dropped
	// clients still pay their training cost — work done is work paid for.
	DropoutProb float64
	// Topology, when non-nil, adds simulated wall-clock accounting: each
	// global round's time is the slowest selected group's K group rounds
	// (compute from the cost profile plus link transfers) between the
	// cloud hops. Purely observational — it does not change training.
	Topology *simnet.Topology
	// ModelBytes sizes the model payload for wall-clock accounting; 0
	// derives it from the parameter count (8 bytes each).
	ModelBytes int
	// NewCompressor, when non-nil, compresses every client's update delta
	// before group aggregation (one stateful compressor per client, so
	// error-feedback schemes work). The decoded delta is applied to the
	// group model; Result.UplinkBytes records the wire size saved.
	NewCompressor func() compress.Compressor
	// OnRound, when non-nil, is invoked with every round's record as it
	// completes — live progress for CLIs and dashboards.
	OnRound OnRoundFunc
	// Metrics, when non-nil, receives the run's observability stream:
	// phase spans (local train, group/global aggregation, eval), per-group
	// selection counters for auditing the sampling distribution against
	// fel_core_group_prob, and round/dropout totals. All registry methods
	// are nil-safe, so leaving this unset costs nothing.
	Metrics *metrics.Registry
}

// RoundRecord captures the state after one global round.
type RoundRecord struct {
	Round int
	// Accuracy and Loss on the held-out test set (NaN when skipped).
	Accuracy, Loss float64
	// Cost is the cumulative Eq. 5 cost after this round.
	Cost float64
	// AvgSelectedCoV is the mean label CoV of the sampled groups.
	AvgSelectedCoV float64
}

// Result is the outcome of a training run.
type Result struct {
	Records []RoundRecord
	// Groups and Probs are the (final) formation and sampling vector.
	Groups []*grouping.Group
	Probs  []float64
	// FinalAccuracy and FinalLoss are measured after the last round.
	FinalAccuracy, FinalLoss float64
	// TotalCost is the Eq. 5 total.
	TotalCost float64
	// RoundsRun counts executed global rounds (may be fewer than T under a
	// cost budget).
	RoundsRun int
	// Dropouts counts client updates lost to the simulated unreliability.
	Dropouts int
	// Participation maps client ID to the number of global rounds the
	// client trained in (fairness accounting; see FairnessIndex).
	Participation map[int]int
	// WallClock is the simulated wall-clock time of the whole run under
	// the network topology model (0 when no topology configured).
	WallClock float64
	// UplinkBytes totals the client→edge update payload; with a compressor
	// configured it reflects the compressed wire size.
	UplinkBytes int64
	// Params is the final global parameter vector.
	Params []float64
}

// Train runs Algorithm 1 on the system.
func Train(sys *System, cfg Config) *Result {
	validate(sys, cfg)
	rng := stats.NewRNG(cfg.Seed)
	local := cfg.Local
	if local == nil {
		local = SGDUpdater{}
	}

	// Lines 2–3: group formation at every edge; line 4: sampling vector.
	groups := grouping.FormAll(cfg.Grouping, sys.Edges, sys.Classes, rng.Split(1))
	probs := sampling.Probabilities(groups, cfg.Sampling)
	reg := cfg.Metrics
	publishSampling(reg, groups, probs)

	totalSamples := 0
	for _, c := range sys.Clients {
		totalSamples += c.NumSamples()
	}

	global := sys.NewModel(sys.ModelSeed)
	globalParams := global.ParamVector()
	if cfg.InitParams != nil {
		if len(cfg.InitParams) != len(globalParams) {
			panic(fmt.Sprintf("fel: InitParams length %d, model has %d", len(cfg.InitParams), len(globalParams)))
		}
		copy(globalParams, cfg.InitParams)
	}
	acct := cost.NewAccountant(cfg.CostProfile, cfg.CostOps)
	res := &Result{Participation: make(map[int]int)}
	modelBytes := cfg.ModelBytes
	if modelBytes <= 0 {
		modelBytes = 8 * len(globalParams)
	}
	var compressors *compressorPool
	if cfg.NewCompressor != nil {
		compressors = &compressorPool{factory: cfg.NewCompressor, byClient: make(map[int]compress.Compressor)}
	}

	sampleRng := rng.Split(2)
	for t := 0; t < cfg.GlobalRounds; t++ {
		if cfg.CostBudget > 0 && acct.Total() >= cfg.CostBudget {
			break
		}
		// Optional regrouping (Sec. 6.1): the random first pick in Alg. 2
		// makes each regroup explore a different formation.
		if cfg.RegroupEvery > 0 && t > 0 && t%cfg.RegroupEvery == 0 {
			groups = grouping.FormAll(cfg.Grouping, sys.Edges, sys.Classes, rng.Split(uint64(100+t)))
			probs = sampling.Probabilities(groups, cfg.Sampling)
			publishSampling(reg, groups, probs)
		}

		// Line 6: sample S_t.
		s := cfg.SampleGroups
		if s > len(groups) {
			s = len(groups)
		}
		selected := sampling.Sample(sampleRng, probs, s)
		reg.Counter("fel_core_rounds_total").Inc()
		for _, gi := range selected {
			reg.Counter("fel_core_group_selected_total", metrics.L("group", strconv.Itoa(groups[gi].ID))).Inc()
		}

		// Lines 7–14: each selected group trains in parallel.
		groupParams := make([][]float64, len(selected))
		groupDrops := make([]int, len(selected))
		groupBytes := make([]int64, len(selected))
		parallelEach(len(selected), cfg.MaxParallel, func(si int) {
			g := groups[selected[si]]
			groupParams[si], groupDrops[si], groupBytes[si] = runGroup(sys, cfg, local, compressors, g, globalParams, t)
		})
		for si := range selected {
			res.Dropouts += groupDrops[si]
			res.UplinkBytes += groupBytes[si]
			reg.Counter("fel_core_dropouts_total").Add(int64(groupDrops[si]))
		}

		// Line 15: global aggregation.
		aggSpan := reg.Start("fel_core_global_aggregate_seconds")
		weights := sampling.Weights(groups, selected, probs, totalSamples, cfg.Weights)
		next := make([]float64, len(globalParams))
		for si := range selected {
			w := weights[si]
			gp := groupParams[si]
			for j := range next {
				next[j] += w * gp[j]
			}
		}
		// The unbiased estimator targets the full-population average; the
		// weights may not sum to 1 in-sample, which is the point (Eq. 4).
		globalParams = next
		aggSpan.End()

		if gf, ok := local.(globalRoundFinisher); ok {
			gf.FinishGlobalRound()
		}

		// Cost, participation, and wall-clock accounting (Eq. 5).
		sel := make([][]int, len(selected))
		covSum := 0.0
		edgeGroupTimes := map[int][]float64{}
		for si, gi := range selected {
			g := groups[gi]
			counts := make([]int, g.Size())
			computes := make([]float64, g.Size())
			for i, c := range g.Clients {
				counts[i] = c.NumSamples()
				computes[i] = float64(cfg.LocalEpochs)*cfg.CostProfile.Training(c.NumSamples()) +
					cfg.CostProfile.GroupOverhead(g.Size(), cfg.CostOps)
				res.Participation[c.ID]++
			}
			sel[si] = counts
			covSum += g.CoV()
			if cfg.Topology != nil {
				edgeGroupTimes[g.Edge] = append(edgeGroupTimes[g.Edge],
					cfg.Topology.GroupRoundTime(modelBytes, computes))
			}
		}
		acct.GlobalRound(sel, cfg.GroupRounds, cfg.LocalEpochs)
		if cfg.Topology != nil {
			times := make([][]float64, 0, len(edgeGroupTimes))
			for _, ts := range edgeGroupTimes {
				times = append(times, ts)
			}
			res.WallClock += cfg.Topology.GlobalRoundTime(modelBytes, cfg.GroupRounds, times)
		}

		rec := RoundRecord{
			Round:          t,
			Cost:           acct.Total(),
			AvgSelectedCoV: covSum / float64(len(selected)),
		}
		evalNow := cfg.EvalEvery <= 1 || t%cfg.EvalEvery == 0 || t == cfg.GlobalRounds-1
		if evalNow {
			evalSpan := reg.Start("fel_core_eval_seconds")
			global.SetParamVector(globalParams)
			rec.Accuracy, rec.Loss = Evaluate(global, sys.Test, 0)
			evalSpan.End()
		} else {
			rec.Accuracy, rec.Loss = -1, -1
		}
		res.Records = append(res.Records, rec)
		res.RoundsRun = t + 1
		if cfg.OnRound != nil {
			cfg.OnRound(rec)
		}
	}

	global.SetParamVector(globalParams)
	res.FinalAccuracy, res.FinalLoss = Evaluate(global, sys.Test, 0)
	res.Groups = groups
	res.Probs = probs
	res.TotalCost = acct.Total()
	res.Params = globalParams
	return res
}

// compressorPool hands out one stateful compressor per client (error
// feedback needs persistent residuals). Safe for concurrent groups.
type compressorPool struct {
	mu       sync.Mutex
	factory  func() compress.Compressor
	byClient map[int]compress.Compressor
}

func (p *compressorPool) forClient(id int) compress.Compressor {
	p.mu.Lock()
	defer p.mu.Unlock()
	c, ok := p.byClient[id]
	if !ok {
		c = p.factory()
		p.byClient[id] = c
	}
	return c
}

// runGroup executes lines 8–14 for one selected group: K group rounds, each
// training every member client for E local epochs from the current group
// model, then weight-averaging by n_i over the clients whose updates
// arrived (n_i/n_g when nothing drops). Returns the final group parameters,
// the dropout count, and the uplink bytes.
func runGroup(sys *System, cfg Config, local LocalUpdater, compressors *compressorPool, g *grouping.Group, globalParams []float64, round int) ([]float64, int, int64) {
	model := sys.NewModel(sys.ModelSeed)
	groupParams := append([]float64(nil), globalParams...)
	clientParams := make([]float64, len(groupParams))
	drops := 0
	var bytes int64
	dropRng := stats.NewRNG(cfg.Seed ^ 0xd20b ^
		(uint64(round+1) * 0xff51afd7ed558ccd) ^
		(uint64(g.ID+1) * 0xc4ceb9fe1a85ec53))

	reg := cfg.Metrics
	edgeLabel := metrics.L("edge", strconv.Itoa(g.Edge))

	for k := 0; k < cfg.GroupRounds; k++ {
		for j := range clientParams {
			clientParams[j] = 0
		}
		wsum := 0.0
		for _, c := range g.Clients {
			model.SetParamVector(groupParams)
			x, y := sys.ClientBatch(c)
			ctx := LocalContext{
				ClientID:  c.ID,
				Anchor:    groupParams,
				Epochs:    cfg.LocalEpochs,
				BatchSize: cfg.BatchSize,
				LR:        cfg.LR,
				Rng: stats.NewRNG(cfg.Seed ^
					(uint64(round+1) * 0x9e3779b97f4a7c15) ^
					(uint64(g.ID+1) * 0xc2b2ae3d27d4eb4f) ^
					(uint64(c.ID+1) * 0x165667b19e3779f9)),
			}
			trainSpan := reg.Start("fel_core_local_train_seconds")
			local.LocalTrain(model, x, y, ctx)
			trainSpan.End()
			reg.Counter("fel_core_local_epochs_total").Add(int64(cfg.LocalEpochs))
			if cfg.DropoutProb > 0 && dropRng.Float64() < cfg.DropoutProb {
				drops++
				continue
			}
			params := model.ParamVector()
			if compressors != nil {
				// The client ships a compressed delta; the edge applies the
				// decoded delta to its copy of the group model.
				delta := make([]float64, len(params))
				for j := range delta {
					delta[j] = params[j] - groupParams[j]
				}
				enc := compressors.forClient(c.ID).Compress(delta)
				bytes += int64(enc.Bytes())
				dec := enc.Decode()
				for j := range params {
					params[j] = groupParams[j] + dec[j]
				}
			} else {
				bytes += int64(8 * len(params))
			}
			w := float64(c.NumSamples())
			wsum += w
			for j, v := range params {
				clientParams[j] += w * v
			}
		}
		aggSpan := reg.Start("fel_core_group_aggregate_seconds", edgeLabel)
		if wsum > 0 {
			inv := 1 / wsum
			for j := range clientParams {
				groupParams[j] = clientParams[j] * inv
			}
		}
		aggSpan.End()
		// wsum == 0: every client dropped this group round; the group model
		// carries over unchanged.
	}
	return groupParams, drops, bytes
}

// publishSampling exports the current formation's sampling state: one
// probability, CoV, and size gauge per group. Regrouping republishes, so
// the gauges always describe the live formation. The sampling-frequency
// audit (EXPERIMENTS.md) compares fel_core_group_selected_total empirical
// frequencies against these fel_core_group_prob values.
func publishSampling(reg *metrics.Registry, groups []*grouping.Group, probs []float64) {
	for i, g := range groups {
		gl := metrics.L("group", strconv.Itoa(g.ID))
		reg.Gauge("fel_core_group_prob", gl).Set(probs[i])
		reg.Gauge("fel_core_group_cov", gl).Set(g.CoV())
		reg.Gauge("fel_core_group_size", gl).Set(float64(g.Size()))
	}
}

func validate(sys *System, cfg Config) {
	switch {
	case sys == nil:
		panic("fel: nil system")
	case cfg.GlobalRounds <= 0 || cfg.GroupRounds <= 0 || cfg.LocalEpochs <= 0:
		panic("fel: T, K, E must be positive")
	case cfg.LR <= 0:
		panic("fel: LR must be positive")
	case cfg.SampleGroups <= 0:
		panic("fel: SampleGroups must be positive")
	case cfg.Grouping == nil:
		panic("fel: Grouping algorithm is required")
	case cfg.CostProfile.Name == "":
		panic(fmt.Sprintf("fel: CostProfile is required (got %+v)", cfg.CostProfile))
	}
	if cfg.Topology != nil {
		if err := cfg.Topology.Validate(); err != nil {
			panic(fmt.Sprintf("fel: %v", err))
		}
	}
}

// FairnessIndex returns Jain's fairness index over all clients'
// participation counts (clients that never trained count as zero). The
// paper's future-work section flags participation fairness as the cost of
// prioritized sampling; this makes it measurable.
func (r *Result) FairnessIndex(sys *System) float64 {
	counts := make([]float64, len(sys.Clients))
	for i, c := range sys.Clients {
		counts[i] = float64(r.Participation[c.ID])
	}
	return stats.JainIndex(counts)
}

// UniqueParticipants returns how many distinct clients ever trained.
func (r *Result) UniqueParticipants() int {
	n := 0
	for _, c := range r.Participation {
		if c > 0 {
			n++
		}
	}
	return n
}

// OnRoundFunc receives each round's record as training progresses.
type OnRoundFunc func(RoundRecord)

// RunGroupRounds exposes the inner group-training step (lines 8–14 of
// Alg. 1) for schedulers that orchestrate groups across multiple models
// (e.g. internal/multimodel): it runs cfg.GroupRounds × cfg.LocalEpochs of
// local training for every client of g starting from params and returns
// the aggregated group parameters plus dropout and uplink accounting.
func RunGroupRounds(sys *System, cfg Config, g *grouping.Group, params []float64, round int) (newParams []float64, dropouts int, uplinkBytes int64) {
	local := cfg.Local
	if local == nil {
		local = SGDUpdater{}
	}
	var pool *compressorPool
	if cfg.NewCompressor != nil {
		pool = &compressorPool{factory: cfg.NewCompressor, byClient: make(map[int]compress.Compressor)}
	}
	return runGroup(sys, cfg, local, pool, g, params, round)
}
