package core

import (
	"encoding/gob"
	"fmt"
	"os"
)

// Checkpoint is a resumable snapshot of a training run: the global
// parameters after RoundsDone global rounds plus the records so far.
// Resume by passing Params as Config.InitParams and subtracting RoundsDone
// from Config.GlobalRounds.
type Checkpoint struct {
	RoundsDone int
	Params     []float64
	Records    []RoundRecord
	TotalCost  float64
}

// FromResult snapshots a finished (or budget-stopped) run.
func FromResult(res *Result) Checkpoint {
	return Checkpoint{
		RoundsDone: res.RoundsRun,
		Params:     append([]float64(nil), res.Params...),
		Records:    append([]RoundRecord(nil), res.Records...),
		TotalCost:  res.TotalCost,
	}
}

// Save writes the checkpoint to path (gob-encoded).
func (c Checkpoint) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("core: save checkpoint: %w", err)
	}
	if err := gob.NewEncoder(f).Encode(c); err != nil {
		//lint:ignore dropped-error the encode failure is already being reported; close is best-effort cleanup
		f.Close()
		return fmt.Errorf("core: encode checkpoint: %w", err)
	}
	// A failed close can mean the kernel never flushed the snapshot; a
	// checkpoint that may not be on disk is not a checkpoint.
	if err := f.Close(); err != nil {
		return fmt.Errorf("core: close checkpoint: %w", err)
	}
	return nil
}

// LoadCheckpoint reads a checkpoint written by Save.
func LoadCheckpoint(path string) (Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return Checkpoint{}, fmt.Errorf("core: load checkpoint: %w", err)
	}
	//lint:ignore dropped-error read-path close failures cannot corrupt the already-decoded checkpoint
	defer f.Close()
	var c Checkpoint
	if err := gob.NewDecoder(f).Decode(&c); err != nil {
		return Checkpoint{}, fmt.Errorf("core: decode checkpoint: %w", err)
	}
	return c, nil
}

// Resume adjusts cfg to continue from the checkpoint: parameters are
// restored and the remaining round budget is reduced. It returns the
// adjusted config (the original is not modified).
func (c Checkpoint) Resume(cfg Config) Config {
	out := cfg
	out.InitParams = append([]float64(nil), c.Params...)
	out.GlobalRounds = cfg.GlobalRounds - c.RoundsDone
	if out.GlobalRounds < 0 {
		out.GlobalRounds = 0
	}
	return out
}
