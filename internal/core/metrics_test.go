package core

import (
	"math"
	"strconv"
	"strings"
	"testing"

	"repro/internal/metrics"
	"repro/internal/sampling"
)

// TestTrainMetricsSnapshotDeterministic runs the same seeded training twice
// against fresh registries and requires the timing-masked snapshots to be
// byte-identical: counter totals, gauge values, and span counts are part of
// the deterministic-replay contract; only durations may vary.
func TestTrainMetricsSnapshotDeterministic(t *testing.T) {
	snap := func() string {
		sys := testSystem(12, 0.5, 1)
		cfg := testConfig()
		cfg.GlobalRounds = 4
		reg := metrics.New()
		cfg.Metrics = reg
		Train(sys, cfg)
		return metrics.MaskTimings(reg.Snapshot())
	}
	a, b := snap(), snap()
	if a != b {
		t.Fatalf("masked snapshots differ between identical seeded runs:\n--- a ---\n%s\n--- b ---\n%s", a, b)
	}
	for _, want := range []string{
		"fel_core_rounds_total 4",
		"fel_core_group_selected_total",
		"fel_core_group_prob",
		"fel_core_local_train_seconds_count",
		"fel_core_global_aggregate_seconds_count 4",
	} {
		if !strings.Contains(a, want) {
			t.Fatalf("snapshot is missing %q:\n%s", want, a)
		}
	}
}

// TestTrainWithoutMetricsUnchanged pins the nil-registry contract: a run
// with no registry must follow the exact trajectory of an instrumented one.
func TestTrainWithoutMetricsUnchanged(t *testing.T) {
	cfg := testConfig()
	cfg.GlobalRounds = 3
	bare := Train(testSystem(10, 0.5, 2), cfg)
	cfg.Metrics = metrics.New()
	instrumented := Train(testSystem(10, 0.5, 2), cfg)
	//lint:ignore float-eq test asserts exact deterministic output
	if bare.FinalAccuracy != instrumented.FinalAccuracy {
		t.Fatalf("instrumentation changed the trajectory: %v vs %v", bare.FinalAccuracy, instrumented.FinalAccuracy)
	}
	for i := range bare.Params {
		//lint:ignore float-eq test asserts exact deterministic output
		if bare.Params[i] != instrumented.Params[i] {
			t.Fatal("instrumentation changed the final parameters")
		}
	}
}

// TestSamplingFrequencyAudit reproduces the Sec. 6.1 sampling check from
// metrics alone: with SRCoV and S=1 each round draws exactly one group from
// the categorical distribution p, so over a long seeded run the selection
// counters must track the configured probabilities. The run is
// deterministic, so the 5% relative-error bound is exact, not flaky; the
// same audit on a live felnode snapshot is walked through in
// EXPERIMENTS.md.
func TestSamplingFrequencyAudit(t *testing.T) {
	const rounds = 3000
	sys := testSystem(12, 0.5, 1)
	cfg := testConfig()
	cfg.GlobalRounds = rounds
	cfg.SampleGroups = 1
	cfg.Sampling = sampling.SRCoV
	cfg.Seed = 11
	cfg.EvalEvery = rounds + 1
	reg := metrics.New()
	cfg.Metrics = reg
	res := Train(sys, cfg)

	if len(res.Groups) < 2 {
		t.Fatalf("only %d groups formed; the audit needs a real distribution", len(res.Groups))
	}
	var total int64
	for i := range res.Groups {
		total += reg.CounterValue("fel_core_group_selected_total", metrics.L("group", strconv.Itoa(res.Groups[i].ID)))
	}
	if total != rounds {
		t.Fatalf("selection counters total %d, want %d (S=1 over %d rounds)", total, rounds, rounds)
	}
	for i, g := range res.Groups {
		gl := metrics.L("group", strconv.Itoa(g.ID))
		//lint:ignore float-eq test asserts exact deterministic output
		if p := reg.GaugeValue("fel_core_group_prob", gl); p != res.Probs[i] {
			t.Fatalf("group %d prob gauge %v, result says %v", g.ID, p, res.Probs[i])
		}
		emp := float64(reg.CounterValue("fel_core_group_selected_total", gl)) / rounds
		rel := math.Abs(emp-res.Probs[i]) / res.Probs[i]
		if rel > 0.05 {
			t.Fatalf("group %d empirical frequency %.4f vs p_g %.4f: relative error %.3f > 5%%",
				g.ID, emp, res.Probs[i], rel)
		}
	}
}
