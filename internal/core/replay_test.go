package core

import (
	"math"
	"runtime"
	"testing"
)

// TestReplayBitIdenticalAcrossParallelism locks in the determinism contract
// the sampling analysis depends on: the same seed must produce bit-for-bit
// identical final weights whether training runs single-threaded or fanned
// out across workers. tensor.MatMul documents that each output element is a
// sequentially-ordered reduction regardless of GOMAXPROCS, and
// core.parallelEach writes group results into indexed slots; this test is
// what keeps those guarantees from regressing as more parallel code lands.
func TestReplayBitIdenticalAcrossParallelism(t *testing.T) {
	run := func(procs int) []float64 {
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
		sys := testSystem(12, 0.5, 3)
		cfg := testConfig()
		cfg.GlobalRounds = 3
		return Train(sys, cfg).Params
	}

	base := run(1)
	if len(base) == 0 {
		t.Fatal("training produced no parameters")
	}
	for _, procs := range []int{1, 8} {
		again := run(procs)
		if len(again) != len(base) {
			t.Fatalf("GOMAXPROCS=%d: parameter count %d, want %d", procs, len(again), len(base))
		}
		for i := range base {
			if math.Float64bits(again[i]) != math.Float64bits(base[i]) {
				t.Fatalf("GOMAXPROCS=%d: param %d differs: %x vs %x (%.17g vs %.17g)",
					procs, i, math.Float64bits(again[i]), math.Float64bits(base[i]), again[i], base[i])
			}
		}
	}
}
