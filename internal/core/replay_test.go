package core

import (
	"math"
	"runtime"
	"testing"

	"repro/internal/compress"
	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// TestReplayBitIdenticalAcrossParallelism locks in the determinism contract
// the sampling analysis depends on: the same seed must produce bit-for-bit
// identical final weights whether training runs single-threaded or fanned
// out across workers. tensor.MatMul documents that each output element is a
// sequentially-ordered reduction regardless of GOMAXPROCS, and
// core.parallelEach writes group results into indexed slots; this test is
// what keeps those guarantees from regressing as more parallel code lands.
func TestReplayBitIdenticalAcrossParallelism(t *testing.T) {
	run := func(procs int) []float64 {
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
		sys := testSystem(12, 0.5, 3)
		cfg := testConfig()
		cfg.GlobalRounds = 3
		return Train(sys, cfg).Params
	}

	base := run(1)
	if len(base) == 0 {
		t.Fatal("training produced no parameters")
	}
	for _, procs := range []int{1, 8} {
		again := run(procs)
		if len(again) != len(base) {
			t.Fatalf("GOMAXPROCS=%d: parameter count %d, want %d", procs, len(again), len(base))
		}
		for i := range base {
			if math.Float64bits(again[i]) != math.Float64bits(base[i]) {
				t.Fatalf("GOMAXPROCS=%d: param %d differs: %x vs %x (%.17g vs %.17g)",
					procs, i, math.Float64bits(again[i]), math.Float64bits(base[i]), again[i], base[i])
			}
		}
	}
}

// TestReplayBitIdenticalAcrossMaxParallel extends the determinism contract
// to the engine's intra-group client fan-out, with every stateful feature
// that could break it switched on at once: client dropout (shared dropout
// RNG per group), update compression (stateful per-client error feedback),
// and SCAFFOLD (shared server variate + per-client drift folding). The
// final weights must be bit-for-bit identical at any worker-pool size.
func TestReplayBitIdenticalAcrossMaxParallel(t *testing.T) {
	old := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(old)
	run := func(maxParallel int) []float64 {
		sys := testSystem(12, 0.5, 3)
		cfg := testConfig()
		cfg.GlobalRounds = 3
		cfg.MaxParallel = maxParallel
		cfg.DropoutProb = 0.25
		cfg.NewCompressor = func() compress.Compressor { return compress.NewTopK(16) }
		cfg.Local = &ScaffoldUpdater{NumClients: 12}
		return Train(sys, cfg).Params
	}

	base := run(1)
	if len(base) == 0 {
		t.Fatal("training produced no parameters")
	}
	for _, par := range []int{2, 8} {
		again := run(par)
		if len(again) != len(base) {
			t.Fatalf("MaxParallel=%d: parameter count %d, want %d", par, len(again), len(base))
		}
		for i := range base {
			if math.Float64bits(again[i]) != math.Float64bits(base[i]) {
				t.Fatalf("MaxParallel=%d: param %d differs: %x vs %x (%.17g vs %.17g)",
					par, i, math.Float64bits(again[i]), math.Float64bits(base[i]), again[i], base[i])
			}
		}
	}
}

// TestReplayBitIdenticalBlockedKernels runs a model wide enough that the
// cache-blocked GEMM path actually engages (batch 24 × 64 features × 128
// hidden clears blockedMinWork with k, n ≥ 4) and asserts the determinism
// contract across both axes the tensor rewrite added: worker parallelism at
// GOMAXPROCS 8, and blocked-versus-naive kernel choice. All three runs must
// produce bit-identical final weights.
func TestReplayBitIdenticalBlockedKernels(t *testing.T) {
	old := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(old)
	defer tensor.SyncProcs()

	wideSystem := func(seed uint64) *System {
		gen := data.FlatConfig(4, 64, seed)
		gen.Noise = 0.8
		part := data.PartitionConfig{
			NumClients: 10, Alpha: 0.5,
			MinSamples: 24, MaxSamples: 48, MeanSamples: 32, StdSamples: 8,
			Seed: seed + 1,
		}
		return NewSystem(SystemConfig{
			Generator: gen,
			Partition: part,
			NumEdges:  2,
			TestSize:  200,
			NewModel: func(s uint64) *nn.Sequential {
				return nn.NewMLP(64, []int{128}, 4, s)
			},
			ModelSeed: 7,
		})
	}
	run := func(maxParallel int, blocked bool) []float64 {
		tensor.SetBlockedGEMM(blocked)
		defer tensor.SetBlockedGEMM(true)
		sys := wideSystem(3)
		cfg := testConfig()
		cfg.GlobalRounds = 2
		cfg.BatchSize = 24
		cfg.MaxParallel = maxParallel
		return Train(sys, cfg).Params
	}

	base := run(1, true)
	if len(base) == 0 {
		t.Fatal("training produced no parameters")
	}
	variants := []struct {
		name    string
		par     int
		blocked bool
	}{
		{"MaxParallel=8 blocked", 8, true},
		{"MaxParallel=1 naive", 1, false},
	}
	for _, v := range variants {
		again := run(v.par, v.blocked)
		if len(again) != len(base) {
			t.Fatalf("%s: parameter count %d, want %d", v.name, len(again), len(base))
		}
		for i := range base {
			if math.Float64bits(again[i]) != math.Float64bits(base[i]) {
				t.Fatalf("%s: param %d differs: %x vs %x (%.17g vs %.17g)",
					v.name, i, math.Float64bits(again[i]), math.Float64bits(base[i]), again[i], base[i])
			}
		}
	}
}
