package fednode

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Network abstracts how nodes reach each other: real TCP in production,
// in-memory net.Pipe pairs in tests. Every conn a Network hands out is
// already wrapped for byte metering by the callers in this package.
type Network interface {
	// Listen opens a listener on addr. For TCP, addr is a host:port (use
	// "127.0.0.1:0" for an ephemeral port and read it back from
	// Listener.Addr). For the memory network, addr is any unique name.
	Listen(addr string) (net.Listener, error)
	// Dial connects to a listener previously opened on addr.
	Dial(addr string) (net.Conn, error)
}

// TCPNetwork is the production Network: real sockets.
type TCPNetwork struct {
	// DialTimeout bounds one connection attempt (default 3s).
	DialTimeout time.Duration
}

// Listen opens a TCP listener.
func (t TCPNetwork) Listen(addr string) (net.Listener, error) {
	return net.Listen("tcp", addr)
}

// Dial connects over TCP.
func (t TCPNetwork) Dial(addr string) (net.Conn, error) {
	d := t.DialTimeout
	if d <= 0 {
		d = 3 * time.Second
	}
	return net.DialTimeout("tcp", addr, d)
}

// MemNetwork is an in-process Network over synchronous net.Pipe pairs —
// no ports, no kernel buffers, full deadline support. Used by tests.
type MemNetwork struct {
	mu        sync.Mutex
	listeners map[string]*memListener
	autoN     int
}

// NewMemNetwork returns an empty in-memory network.
func NewMemNetwork() *MemNetwork {
	return &MemNetwork{listeners: make(map[string]*memListener)}
}

// Listen registers addr; later Dials of the same addr reach this listener.
// An empty addr auto-assigns a unique name (read it back from Addr), the
// memnet analogue of TCP port 0.
func (m *MemNetwork) Listen(addr string) (net.Listener, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if addr == "" {
		m.autoN++
		addr = fmt.Sprintf("mem-%d", m.autoN)
	}
	if _, dup := m.listeners[addr]; dup {
		return nil, fmt.Errorf("fednode: memnet address %q already in use", addr)
	}
	l := &memListener{addr: addr, backlog: make(chan net.Conn, 64), done: make(chan struct{})}
	m.listeners[addr] = l
	return l, nil
}

// Dial creates a pipe pair, delivering the server end to addr's listener.
func (m *MemNetwork) Dial(addr string) (net.Conn, error) {
	m.mu.Lock()
	l := m.listeners[addr]
	m.mu.Unlock()
	if l == nil {
		return nil, fmt.Errorf("fednode: memnet dial %q: connection refused", addr)
	}
	client, server := net.Pipe()
	select {
	case l.backlog <- server:
		return client, nil
	case <-l.done:
		return nil, fmt.Errorf("fednode: memnet dial %q: listener closed", addr)
	}
}

type memListener struct {
	addr    string
	backlog chan net.Conn
	done    chan struct{}
	closed  sync.Once
}

func (l *memListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.backlog:
		return c, nil
	case <-l.done:
		return nil, fmt.Errorf("fednode: memnet listener %q closed", l.addr)
	}
}

func (l *memListener) Close() error {
	l.closed.Do(func() { close(l.done) })
	return nil
}

func (l *memListener) Addr() net.Addr { return memAddr(l.addr) }

type memAddr string

func (a memAddr) Network() string { return "mem" }
func (a memAddr) String() string  { return string(a) }

// Meter accumulates transport-level byte and frame counts across every
// connection of a job. In a loopback run a single Meter sees all nodes, so
// Written (transport bytes that left a socket) can be cross-checked against
// Accounted (the sum of wire.Message.EncodedSize at every send site): the
// two must agree exactly on a clean run, proving the codec's accounting
// matches what actually moved.
type Meter struct {
	written   atomic.Int64
	read      atomic.Int64
	frames    atomic.Int64
	accounted atomic.Int64
}

// Written returns the total bytes written to metered conns.
func (m *Meter) Written() int64 { return m.written.Load() }

// Read returns the total bytes read from metered conns.
func (m *Meter) Read() int64 { return m.read.Load() }

// Frames returns the number of frames sent through sendFrame.
func (m *Meter) Frames() int64 { return m.frames.Load() }

// Accounted returns the codec-accounted bytes of all frames sent.
func (m *Meter) Accounted() int64 { return m.accounted.Load() }

// meteredConn counts transport bytes through a net.Conn.
type meteredConn struct {
	net.Conn
	m *Meter
}

func (c *meteredConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.m.read.Add(int64(n))
	return n, err
}

func (c *meteredConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.m.written.Add(int64(n))
	return n, err
}

// meter wraps conn so its traffic lands in m.
func meter(conn net.Conn, m *Meter) net.Conn {
	return &meteredConn{Conn: conn, m: m}
}

// dialRetry dials addr with bounded exponential backoff, absorbing the
// startup races of a distributed launch (an edge dialing the cloud before
// its listener is up) and transient refusals. The backoff schedule is fixed
// — no randomized jitter — so runs replay deterministically apart from
// wall-clock time.
func dialRetry(nw Network, addr string, attempts int, backoff time.Duration) (net.Conn, error) {
	var err error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			time.Sleep(backoff)
			if backoff < time.Second {
				backoff *= 2
			}
		}
		var c net.Conn
		c, err = nw.Dial(addr)
		if err == nil {
			return c, nil
		}
	}
	return nil, fmt.Errorf("fednode: dial %s failed after %d attempts: %w", addr, attempts, err)
}

// acceptRetry accepts one connection, retrying transient (timeout-class)
// failures with bounded backoff; any other error is fatal.
func acceptRetry(ln net.Listener, attempts int, backoff time.Duration) (net.Conn, error) {
	var err error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			time.Sleep(backoff)
			if backoff < time.Second {
				backoff *= 2
			}
		}
		var c net.Conn
		c, err = ln.Accept()
		if err == nil {
			return c, nil
		}
		if ne, ok := err.(net.Error); !ok || !ne.Timeout() {
			return nil, err
		}
	}
	return nil, fmt.Errorf("fednode: accept failed after %d attempts: %w", attempts, err)
}

// closeQuiet closes c on a shutdown path where the close error changes
// nothing for the caller.
func closeQuiet(c interface{ Close() error }) {
	//lint:ignore dropped-error shutdown-path close; the connection is being abandoned either way
	c.Close()
}
