package fednode

import (
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/stats"
	"repro/internal/wire"
)

// Network abstracts how nodes reach each other: real TCP in production,
// in-memory net.Pipe pairs in tests. Every conn a Network hands out is
// already wrapped for byte metering by the callers in this package.
type Network interface {
	// Listen opens a listener on addr. For TCP, addr is a host:port (use
	// "127.0.0.1:0" for an ephemeral port and read it back from
	// Listener.Addr). For the memory network, addr is any unique name.
	Listen(addr string) (net.Listener, error)
	// Dial connects to a listener previously opened on addr.
	Dial(addr string) (net.Conn, error)
}

// TagNetwork is the optional transport extension a fault-injection or
// tracing wrapper (internal/faultnet) implements on top of Network: the
// same dial/listen surface, but with stable node identities attached.
// fednode always announces who is listening ("cloud", "edge/<e>") and who
// is dialing ("edge/<e>", "client/<id>") through these methods when the
// transport supports them, so a wrapper can key per-link state off node
// identity instead of goroutine scheduling — the property that makes
// injected fault schedules replayable.
type TagNetwork interface {
	Network
	// ListenAs opens a listener on addr owned by the node named tag.
	ListenAs(tag, addr string) (net.Listener, error)
	// DialFrom dials addr on behalf of the node named fromTag.
	DialFrom(fromTag, addr string) (net.Conn, error)
}

// listenTagged listens with the node tag when the transport understands it.
func listenTagged(nw Network, tag, addr string) (net.Listener, error) {
	if tn, ok := nw.(TagNetwork); ok {
		return tn.ListenAs(tag, addr)
	}
	return nw.Listen(addr)
}

// dialTagged dials with the node tag when the transport understands it.
func dialTagged(nw Network, fromTag, addr string) (net.Conn, error) {
	if tn, ok := nw.(TagNetwork); ok {
		return tn.DialFrom(fromTag, addr)
	}
	return nw.Dial(addr)
}

// TCPNetwork is the production Network: real sockets.
type TCPNetwork struct {
	// DialTimeout bounds one connection attempt (default 3s).
	DialTimeout time.Duration
}

// Listen opens a TCP listener.
func (t TCPNetwork) Listen(addr string) (net.Listener, error) {
	return net.Listen("tcp", addr)
}

// Dial connects over TCP.
func (t TCPNetwork) Dial(addr string) (net.Conn, error) {
	d := t.DialTimeout
	if d <= 0 {
		d = 3 * time.Second
	}
	return net.DialTimeout("tcp", addr, d)
}

// MemNetwork is an in-process Network over synchronous net.Pipe pairs —
// no ports, no kernel buffers, full deadline support. Used by tests.
type MemNetwork struct {
	mu        sync.Mutex
	listeners map[string]*memListener
	autoN     int
}

// NewMemNetwork returns an empty in-memory network.
func NewMemNetwork() *MemNetwork {
	return &MemNetwork{listeners: make(map[string]*memListener)}
}

// Listen registers addr; later Dials of the same addr reach this listener.
// An empty addr auto-assigns a unique name (read it back from Addr), the
// memnet analogue of TCP port 0.
func (m *MemNetwork) Listen(addr string) (net.Listener, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if addr == "" {
		m.autoN++
		addr = fmt.Sprintf("mem-%d", m.autoN)
	}
	if _, dup := m.listeners[addr]; dup {
		return nil, fmt.Errorf("fednode: memnet address %q already in use", addr)
	}
	l := &memListener{addr: addr, backlog: make(chan net.Conn, 64), done: make(chan struct{})}
	m.listeners[addr] = l
	return l, nil
}

// Dial creates a pipe pair, delivering the server end to addr's listener.
func (m *MemNetwork) Dial(addr string) (net.Conn, error) {
	m.mu.Lock()
	l := m.listeners[addr]
	m.mu.Unlock()
	if l == nil {
		return nil, fmt.Errorf("fednode: memnet dial %q: connection refused", addr)
	}
	client, server := net.Pipe()
	select {
	case l.backlog <- server:
		return client, nil
	case <-l.done:
		return nil, fmt.Errorf("fednode: memnet dial %q: listener closed", addr)
	}
}

type memListener struct {
	addr    string
	backlog chan net.Conn
	done    chan struct{}
	closed  sync.Once
}

func (l *memListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.backlog:
		return c, nil
	case <-l.done:
		return nil, fmt.Errorf("fednode: memnet listener %q closed", l.addr)
	}
}

func (l *memListener) Close() error {
	l.closed.Do(func() { close(l.done) })
	return nil
}

func (l *memListener) Addr() net.Addr { return memAddr(l.addr) }

type memAddr string

func (a memAddr) Network() string { return "mem" }
func (a memAddr) String() string  { return string(a) }

// Meter aggregates a job's transport-level observability into a metrics
// registry: per-message-type frame and byte counters (fel_wire_*, indexed
// by wire.Type), raw transport read/write bytes (fel_net_*), connection
// retries, and the protocol layer's dropout/recovery/straggler tallies
// (fel_fednode_*). In a loopback run a single Meter sees all nodes, so
// Written (transport bytes that left a socket) can be cross-checked
// against Accounted (the sum of wire.Message.EncodedSize at every send
// site): the two must agree exactly on a clean run, proving the codec's
// accounting matches what actually moved.
type Meter struct {
	reg *metrics.Registry

	written, read              *metrics.Counter
	dialRetries, acceptRetries *metrics.Counter
	dropouts, recoveries       *metrics.Counter
	stragglers, rejoins        *metrics.Counter
	frames, bytes              [int(wire.GlobalAggregate) + 1]*metrics.Counter
}

// NewMeter wires a meter into reg; nil gets a fresh private registry. The
// counters are registered eagerly, so a snapshot of an idle job already
// shows the full fel_net_/fel_wire_/fel_fednode_ schema at zero.
func NewMeter(reg *metrics.Registry) *Meter {
	if reg == nil {
		reg = metrics.New()
	}
	m := &Meter{
		reg:           reg,
		written:       reg.Counter("fel_net_written_bytes_total"),
		read:          reg.Counter("fel_net_read_bytes_total"),
		dialRetries:   reg.Counter("fel_net_dial_retries_total"),
		acceptRetries: reg.Counter("fel_net_accept_retries_total"),
		dropouts:      reg.Counter("fel_fednode_dropouts_total"),
		recoveries:    reg.Counter("fel_fednode_recoveries_total"),
		stragglers:    reg.Counter("fel_fednode_straggler_timeouts_total"),
		rejoins:       reg.Counter("fel_fednode_rejoins_total"),
	}
	for t := wire.GlobalModel; t <= wire.GlobalAggregate; t++ {
		tl := metrics.L("type", t.String())
		m.frames[t] = reg.Counter("fel_wire_frames_total", tl)
		m.bytes[t] = reg.Counter("fel_wire_bytes_total", tl)
	}
	return m
}

// Registry exposes the meter's backing registry for snapshots, tables,
// and the -metrics HTTP endpoint. Never nil.
func (m *Meter) Registry() *metrics.Registry { return m.reg }

// countFrame records one sent frame of type t carrying n accounted bytes.
func (m *Meter) countFrame(t wire.Type, n int) {
	m.frames[t].Inc()
	m.bytes[t].Add(int64(n))
}

// countDecodeError classifies a failed frame decode into
// fel_wire_decode_errors_total{reason} via wire.ErrorClass. A clean EOF is
// shutdown, not an error, and is not counted; a fault-injection run can pin
// these counters against the number of corruptions it injected.
func (m *Meter) countDecodeError(err error) {
	if class := wire.ErrorClass(err); class != "" && class != "eof" {
		m.reg.Counter("fel_wire_decode_errors_total", metrics.L("reason", class)).Inc()
	}
}

// Written returns the total bytes written to metered conns.
func (m *Meter) Written() int64 { return m.written.Value() }

// Read returns the total bytes read from metered conns.
func (m *Meter) Read() int64 { return m.read.Value() }

// Frames returns the number of frames sent through sendFrame.
func (m *Meter) Frames() int64 {
	var n int64
	for t := wire.GlobalModel; t <= wire.GlobalAggregate; t++ {
		n += m.frames[t].Value()
	}
	return n
}

// Accounted returns the codec-accounted bytes of all frames sent.
func (m *Meter) Accounted() int64 {
	var n int64
	for t := wire.GlobalModel; t <= wire.GlobalAggregate; t++ {
		n += m.bytes[t].Value()
	}
	return n
}

// meteredConn counts transport bytes through a net.Conn.
type meteredConn struct {
	net.Conn
	m *Meter
}

func (c *meteredConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.m.read.Add(int64(n))
	return n, err
}

func (c *meteredConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.m.written.Add(int64(n))
	return n, err
}

// meter wraps conn so its traffic lands in m.
func meter(conn net.Conn, m *Meter) net.Conn {
	return &meteredConn{Conn: conn, m: m}
}

// retryBackoff returns the pause before retry i (1-based): the capped
// exponential schedule, with the top half of each step replaced by a draw
// from rng. Jitter matters under faults: when a partition heals, every
// client of an edge wakes in the same backoff tick, and an unjittered
// schedule stampedes them onto the listener in one burst. The draw comes
// from a per-node seeded RNG, not the global clock, so reconnect schedules
// stay deterministic per node while distinct across nodes. A nil rng keeps
// the fixed schedule.
func retryBackoff(base time.Duration, i int, rng *stats.RNG) time.Duration {
	d := base
	for step := 1; step < i && d < time.Second; step++ {
		d *= 2
	}
	if d > time.Second {
		d = time.Second
	}
	if rng == nil || d < 2 {
		return d
	}
	half := d / 2
	return half + time.Duration(rng.IntN(int(half)))
}

// dialSeed derives a node's backoff-jitter RNG seed from the job seed and
// its tag — deterministic per node, decorrelated across nodes.
func dialSeed(seed uint64, tag string) uint64 {
	h := uint64(14695981039346656037) // FNV-1a offset basis
	for i := 0; i < len(tag); i++ {
		h ^= uint64(tag[i])
		h *= 1099511628211
	}
	return seed ^ h
}

// dialRetry dials addr as fromTag with bounded, jittered exponential
// backoff, absorbing the startup races of a distributed launch (an edge
// dialing the cloud before its listener is up), transient refusals, and
// partition-heal reconnect bursts. Retries land in m's
// fel_net_dial_retries_total (m may be nil).
func dialRetry(nw Network, fromTag, addr string, attempts int, backoff time.Duration, m *Meter, rng *stats.RNG) (net.Conn, error) {
	var err error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			if m != nil {
				m.dialRetries.Inc()
			}
			time.Sleep(retryBackoff(backoff, i, rng))
		}
		var c net.Conn
		c, err = dialTagged(nw, fromTag, addr)
		if err == nil {
			return c, nil
		}
	}
	return nil, fmt.Errorf("fednode: dial %s failed after %d attempts: %w", addr, attempts, err)
}

// acceptRetry accepts one connection, retrying transient (timeout-class)
// failures with bounded backoff; any other error is fatal. Retries land in
// m's fel_net_accept_retries_total (m may be nil).
func acceptRetry(ln net.Listener, attempts int, backoff time.Duration, m *Meter) (net.Conn, error) {
	var err error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			if m != nil {
				m.acceptRetries.Inc()
			}
			time.Sleep(backoff)
			if backoff < time.Second {
				backoff *= 2
			}
		}
		var c net.Conn
		c, err = ln.Accept()
		if err == nil {
			return c, nil
		}
		if ne, ok := err.(net.Error); !ok || !ne.Timeout() {
			return nil, err
		}
	}
	return nil, fmt.Errorf("fednode: accept failed after %d attempts: %w", attempts, err)
}

// DialRetry dials addr on nw as fromTag with bounded, jittered exponential
// backoff — the session-establishment hook the serving layer
// (internal/felserve) and load harnesses reuse so their connection storms
// get the same stampede-free schedule the federation protocol uses.
// Retries land in m's fel_net_dial_retries_total; m and rng may be nil.
func DialRetry(nw Network, fromTag, addr string, attempts int, backoff time.Duration, m *Meter, rng *stats.RNG) (net.Conn, error) {
	return dialRetry(nw, fromTag, addr, attempts, backoff, m, rng)
}

// AcceptRetry accepts one connection from ln, retrying transient
// (timeout-class) failures with bounded backoff; any other error is fatal.
// The exported counterpart of the protocol's accept loop, for serving-layer
// listeners. Retries land in m's fel_net_accept_retries_total; m may be nil.
func AcceptRetry(ln net.Listener, attempts int, backoff time.Duration, m *Meter) (net.Conn, error) {
	return acceptRetry(ln, attempts, backoff, m)
}

// closeQuiet closes c on a shutdown path where the close error changes
// nothing for the caller.
func closeQuiet(c interface{ Close() error }) {
	//lint:ignore dropped-error shutdown-path close; the connection is being abandoned either way
	c.Close()
}
