// Package fednode runs Group-FEL as a real networked service: a cloud
// coordinator, edge servers, and clients exchanging wire-framed bytes over
// net.Conn — TCP sockets in production, in-memory pipes in tests — instead
// of the closed-form link model of internal/simnet. It is the deployment
// shape of the paper's Fig. 1: the cloud forms groups and samples them each
// round, edges drive K secure-aggregation group rounds against their
// connected clients, and the cloud aggregates the returned group models.
//
// Control plane and failure are real here: stragglers are read deadlines,
// a client dropout is a closed connection or a missed deadline, and the
// edge recovers by collecting Shamir shares from the survivors
// (internal/secagg) — the round completes without the lost update. The
// data plane stays deterministic: every process builds the same synthetic
// System from the shared seed, so only model parameters, masked updates,
// and shares cross the wire, and a loopback run reproduces the in-process
// trainer (internal/core.Train) up to secure-aggregation quantization.
//
// The three execution paths — in-process (core.Train), modeled network
// (internal/hfl over simnet), and real sockets (this package) — share the
// same grouping/sampling/secagg substrates; simnet remains the source of
// *modeled* link times, while this package reports measured wall-clock and
// bytes on the wire.
//
// Observability runs through the Meter, a thin façade over an
// internal/metrics registry: per-message-type frame and byte counters
// (fel_wire_*), raw transport bytes and connection retries (fel_net_*),
// dropout/recovery/straggler tallies and per-role phase spans
// (fel_fednode_*), and the secure-aggregation op counters each session
// publishes (fel_secagg_*). Pass a Meter via JobConfig.Meter — or let
// RunJob create a private one — and read Meter.Registry().Snapshot(), or
// serve it live with cmd/felnode's -metrics flag.
package fednode

import (
	"fmt"
	"math"
	"net"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/grouping"
	"repro/internal/sampling"
	"repro/internal/secagg"
	"repro/internal/wire"
)

// ForcedDrop is a fault-injection directive for tests and demos: the client
// with this global id closes its edge connection mid-round — after local
// training, instead of submitting its masked update — during global round
// Round, group round GroupRound. The protocol must recover via secagg
// dropout handling.
type ForcedDrop struct {
	Client, Round, GroupRound int
}

// JobConfig parameterizes one networked Group-FEL job. The algorithmic
// fields mirror core.Config so a loopback run is comparable, seed-for-seed,
// with the in-process trainer.
type JobConfig struct {
	// GlobalRounds (T), GroupRounds (K), LocalEpochs (E) as in Alg. 1.
	GlobalRounds, GroupRounds, LocalEpochs int
	// BatchSize and LR for local SGD.
	BatchSize int
	LR        float64
	// SampleGroups is S, the groups drawn per global round.
	SampleGroups int
	// Grouping forms groups at the cloud (Alg. 1 lines 2–3). Ignored when
	// Groups is set.
	Grouping grouping.Algorithm
	// Sampling and Weights pick the Sec. 6 schemes.
	Sampling sampling.Method
	Weights  sampling.WeightScheme
	// Seed drives formation, sampling, local shuffling, and the secure
	// aggregation sessions — the same derivations as core.Train, so results
	// line up.
	Seed uint64
	// Quantizer for masked updates; zero value uses the default.
	Quantizer secagg.Quantizer
	// ThresholdFrac is the Shamir threshold as a fraction of group size
	// (minimum 2); zero means 2/3.
	ThresholdFrac float64
	// EvalEvery evaluates the global model every n rounds (0 or 1 = every
	// round); the final round is always evaluated.
	EvalEvery int

	// Groups, when non-nil, skips formation and uses these groups verbatim
	// (the caller already ran an Algorithm). Used by the single-round API.
	Groups []*grouping.Group
	// FixedSelection, when non-nil, overrides sampling: round t trains
	// FixedSelection[t] (indices into the group list). Must have
	// GlobalRounds entries.
	FixedSelection [][]int
	// InitParams, when non-nil, seeds the global model instead of a fresh
	// NewModel(ModelSeed) initialization.
	InitParams []float64

	// StragglerTimeout bounds how long an edge waits for one client's
	// masked update (or share reveal) in a group round; a miss becomes a
	// secagg dropout. Default 5s.
	StragglerTimeout time.Duration
	// RoundTimeout bounds how long the cloud waits for an edge's group
	// aggregates each round, and how long registration may take. Default 2m.
	RoundTimeout time.Duration
	// DialAttempts and DialBackoff bound the connection-establishment retry
	// loop (exponential, capped at 1s per step). Defaults: 10 and 25ms.
	DialAttempts int
	DialBackoff  time.Duration
	// MaxFrame bounds accepted frame payloads; 0 uses wire.DefaultMaxFrame.
	MaxFrame int

	// ForceDrop, when non-nil, injects one mid-round client disconnect.
	ForceDrop *ForcedDrop
	// Logf, when non-nil, receives protocol trace lines.
	Logf func(format string, args ...any)
	// Meter, when non-nil, is the shared observability sink for every node
	// this process runs: RunJob threads it through the whole loopback
	// cluster, and Meter.Registry() exposes the counters for snapshots,
	// felbench JSON dumps, and the felnode -metrics HTTP endpoint. Nil
	// means each entry point creates a private meter.
	Meter *Meter
}

// withDefaults fills zero-valued tuning knobs.
func (cfg JobConfig) withDefaults() JobConfig {
	if cfg.Quantizer == (secagg.Quantizer{}) {
		cfg.Quantizer = secagg.DefaultQuantizer()
	}
	if cfg.ThresholdFrac <= 0 {
		cfg.ThresholdFrac = 2.0 / 3
	}
	if cfg.StragglerTimeout <= 0 {
		cfg.StragglerTimeout = 5 * time.Second
	}
	if cfg.RoundTimeout <= 0 {
		cfg.RoundTimeout = 2 * time.Minute
	}
	if cfg.DialAttempts <= 0 {
		cfg.DialAttempts = 10
	}
	if cfg.DialBackoff <= 0 {
		cfg.DialBackoff = 25 * time.Millisecond
	}
	if cfg.MaxFrame <= 0 {
		cfg.MaxFrame = wire.DefaultMaxFrame
	}
	return cfg
}

// validate rejects unusable configs with an error (networked mode fails
// with errors, not panics: a bad config on one node must not take down a
// deployment with a stack trace).
func (cfg JobConfig) validate() error {
	switch {
	case cfg.GlobalRounds <= 0 || cfg.GroupRounds <= 0 || cfg.LocalEpochs <= 0:
		return fmt.Errorf("fednode: T, K, E must be positive")
	case cfg.LR <= 0:
		return fmt.Errorf("fednode: LR must be positive")
	case cfg.Groups == nil && cfg.Grouping == nil:
		return fmt.Errorf("fednode: a Grouping algorithm (or explicit Groups) is required")
	case cfg.FixedSelection == nil && cfg.SampleGroups <= 0:
		return fmt.Errorf("fednode: SampleGroups must be positive")
	case cfg.FixedSelection != nil && len(cfg.FixedSelection) != cfg.GlobalRounds:
		return fmt.Errorf("fednode: FixedSelection has %d rounds, want %d", len(cfg.FixedSelection), cfg.GlobalRounds)
	}
	return nil
}

// threshold returns the Shamir threshold for a group of n clients, the same
// clamp as internal/hfl: ceil(frac·n) in [2, n].
func (cfg JobConfig) threshold(n int) int {
	t := int(math.Ceil(cfg.ThresholdFrac * float64(n)))
	if t < 2 {
		t = 2
	}
	if t > n {
		t = n
	}
	return t
}

// sessionSeed derives the secure-aggregation session seed for (global round
// t, group round k, group gid). Every member and the edge derive the same
// value independently, so no key material crosses the wire.
func sessionSeed(seed uint64, t, k, gid int) uint64 {
	return seed ^
		(uint64(t+1) * 0x9e3779b97f4a7c15) ^
		(uint64(k+1) * 0xc2b2ae3d27d4eb4f) ^
		(uint64(gid+1) * 0xff51afd7ed558ccd)
}

// localSeed derives a client's local-training RNG seed, byte-for-byte the
// derivation of core.runGroup so a clean loopback run follows the exact
// trajectory of the in-process trainer (modulo quantization).
func localSeed(seed uint64, t, gid, cid int) uint64 {
	return seed ^
		(uint64(t+1) * 0x9e3779b97f4a7c15) ^
		(uint64(gid+1) * 0xc2b2ae3d27d4eb4f) ^
		(uint64(cid+1) * 0x165667b19e3779f9)
}

// RoundStat reports one global round as observed at the cloud.
type RoundStat struct {
	Round int
	// Accuracy and Loss on the held-out test set (-1 when skipped).
	Accuracy, Loss float64
	// Selected is the number of groups trained.
	Selected int
	// Dropouts counts client updates lost this round (timeouts and closed
	// connections); Recoveries counts group rounds completed via secagg
	// dropout recovery.
	Dropouts, Recoveries int
	// WireBytes is the transport bytes written by all metered nodes during
	// this round (loopback: the whole cluster; distributed: this process).
	WireBytes int64
}

// Report is the outcome of a networked job.
type Report struct {
	Rounds []RoundStat
	// FinalAccuracy and FinalLoss are measured after the last round.
	FinalAccuracy, FinalLoss float64
	// Params is the final global parameter vector.
	Params []float64
	// RoundsRun counts completed global rounds.
	RoundsRun int
	// Dropouts and Recoveries total the per-round counts.
	Dropouts, Recoveries int
	// WallClock is the measured (not modeled) job duration.
	WallClock time.Duration
	// WireWritten / WireRead are transport-level byte counts over every
	// metered connection; Frames and AccountedBytes are the send-site frame
	// count and the codec-computed byte total. On a clean loopback run
	// WireWritten == AccountedBytes exactly — the cross-check that the wire
	// codec's accounting matches the bytes that actually moved.
	WireWritten, WireRead int64
	Frames                int64
	AccountedBytes        int64
}

// phase is one state of the edge's per-group round state machine.
type phase int

const (
	phaseIdle phase = iota
	phaseBroadcast
	phaseCollect
	phaseReveal
	phaseAggregate
	phaseReport
)

func (p phase) String() string {
	switch p {
	case phaseIdle:
		return "idle"
	case phaseBroadcast:
		return "broadcast"
	case phaseCollect:
		return "collect"
	case phaseReveal:
		return "reveal"
	case phaseAggregate:
		return "aggregate"
	case phaseReport:
		return "report"
	}
	return fmt.Sprintf("phase(%d)", int(p))
}

// groupRun is the per-(round, group) state machine an edge drives: it may
// only advance forward through the phases, and every transition is traced.
type groupRun struct {
	gid, round, k int
	state         phase
	logf          func(format string, args ...any)
}

// to advances the state machine, enforcing forward-only transitions.
func (r *groupRun) to(next phase) error {
	if next < r.state {
		return fmt.Errorf("fednode: group %d round %d.%d: illegal transition %s → %s", r.gid, r.round, r.k, r.state, next)
	}
	r.state = next
	if r.logf != nil {
		r.logf("edge: group %d round %d.%d → %s", r.gid, r.round, r.k, next)
	}
	return nil
}

// sendFrame writes one frame to conn under the write deadline, counting it
// in the meter. A nil deadline disables the timeout.
func sendFrame(conn net.Conn, m *Meter, msg *wire.Message, timeout time.Duration) error {
	if timeout > 0 {
		if err := conn.SetWriteDeadline(time.Now().Add(timeout)); err != nil {
			return fmt.Errorf("fednode: set write deadline: %w", err)
		}
	}
	n, err := wire.Encode(conn, msg)
	if err != nil {
		return fmt.Errorf("fednode: send %s: %w", msg.Type, err)
	}
	if m != nil {
		m.countFrame(msg.Type, n)
	}
	return nil
}

// readFrame reads one frame from conn under the read deadline, classifying
// any decode failure into mt's fel_wire_decode_errors_total (mt may be
// nil). A zero timeout blocks indefinitely.
func readFrame(conn net.Conn, mt *Meter, maxFrame int, timeout time.Duration) (*wire.Message, error) {
	var zero time.Time
	deadline := zero
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
	}
	if err := conn.SetReadDeadline(deadline); err != nil {
		return nil, fmt.Errorf("fednode: set read deadline: %w", err)
	}
	m, err := wire.Decode(conn, maxFrame)
	if err != nil && mt != nil {
		mt.countDecodeError(err)
	}
	return m, err
}

// expectFrame reads one frame and checks its type.
func expectFrame(conn net.Conn, mt *Meter, maxFrame int, timeout time.Duration, want wire.Type) (*wire.Message, error) {
	m, err := readFrame(conn, mt, maxFrame, timeout)
	if err != nil {
		return nil, err
	}
	if m.Type != want {
		return nil, fmt.Errorf("fednode: got %s frame, want %s", m.Type, want)
	}
	return m, nil
}

// lockedConn serializes frame writes to one conn shared by several
// goroutines (an edge's group runners all report to the cloud).
type lockedConn struct {
	mu   sync.Mutex
	conn net.Conn
}

func (l *lockedConn) send(m *Meter, msg *wire.Message, timeout time.Duration) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return sendFrame(l.conn, m, msg, timeout)
}

// clientsByID indexes a system's clients for id lookup.
func clientsByID(sys *core.System) map[int]*clientRef {
	m := make(map[int]*clientRef, len(sys.Clients))
	for _, c := range sys.Clients {
		m[c.ID] = &clientRef{id: c.ID, samples: c.NumSamples()}
	}
	return m
}

type clientRef struct {
	id      int
	samples int
}

// intsToIDs converts a wire id list to ints.
func intsToIDs(xs []int32) []int {
	out := make([]int, len(xs))
	for i, x := range xs {
		out[i] = int(x)
	}
	return out
}

// idsToInts converts ints to a wire id list.
func idsToInts(xs []int) []int32 {
	out := make([]int32, len(xs))
	for i, x := range xs {
		out[i] = int32(x)
	}
	return out
}
