package fednode

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/metrics"
	"repro/internal/secagg"
	"repro/internal/stats"
	"repro/internal/wire"
)

// Client is one federated client process: it registers with its edge,
// receives its group assignment, answers each group-round broadcast with
// local SGD and a masked (or, in a singleton group, plaintext) update, and
// serves share-reveal requests during dropout recovery. Local training uses
// the same seed derivation as core.runGroup, so a clean loopback run
// follows the in-process trainer's trajectory.
type Client struct {
	id    int
	sys   *core.System
	cfg   JobConfig
	meter *Meter
}

// NewClient prepares client id (a global client id from the system). meter
// may be nil (falls back to cfg.Meter, then to a fresh private meter).
func NewClient(id int, sys *core.System, cfg JobConfig, meter *Meter) *Client {
	if meter == nil {
		meter = cfg.Meter
	}
	if meter == nil {
		meter = NewMeter(nil)
	}
	return &Client{id: id, sys: sys, cfg: cfg.withDefaults(), meter: meter}
}

func (c *Client) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// Run dials the edge at edgeAddr and participates until the final global
// model arrives, returning it — or until the injected ForceDrop disconnect,
// returning (nil, nil).
func (c *Client) Run(nw Network, edgeAddr string) ([]float64, error) {
	cfg := c.cfg
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	var me *data.Client
	for _, cl := range c.sys.Clients {
		if cl.ID == c.id {
			me = cl
			break
		}
	}
	if me == nil {
		return nil, fmt.Errorf("fednode: client %d not in system", c.id)
	}

	tag := fmt.Sprintf("client/%d", c.id)
	raw, err := dialRetry(nw, tag, edgeAddr, cfg.DialAttempts, cfg.DialBackoff, c.meter,
		stats.NewRNG(dialSeed(cfg.Seed, tag)))
	if err != nil {
		return nil, err
	}
	conn := meter(raw, c.meter)
	defer closeQuiet(conn)
	hello := &wire.Message{Type: wire.GroupAssign, From: int32(c.id)}
	if err := sendFrame(conn, c.meter, hello, cfg.RoundTimeout); err != nil {
		return nil, fmt.Errorf("fednode: client %d register: %w", c.id, err)
	}

	// Group assignment: group id, this client's index within the group, and
	// the full membership (needed to derive the secagg session locally).
	assign, err := expectFrame(conn, c.meter, cfg.MaxFrame, cfg.RoundTimeout, wire.GroupAssign)
	if err != nil {
		return nil, fmt.Errorf("fednode: client %d assignment: %w", c.id, err)
	}
	gid := int(assign.From)
	myIdx := int(assign.Seq)
	members := intsToIDs(assign.Ints)
	n := len(members)
	if myIdx < 0 || myIdx >= n || members[myIdx] != c.id {
		return nil, fmt.Errorf("fednode: client %d assignment is inconsistent (index %d of %v)", c.id, myIdx, members)
	}
	refs := clientsByID(c.sys)
	ng := 0
	for _, id := range members {
		ref := refs[id]
		if ref == nil {
			return nil, fmt.Errorf("fednode: client %d: unknown group member %d", c.id, id)
		}
		ng += ref.samples
	}
	w := float64(me.NumSamples()) / float64(ng)
	threshold := cfg.threshold(n)
	c.logf("client %d: joined group %d as member %d/%d", c.id, gid, myIdx, n)

	model := c.sys.NewModel(c.sys.ModelSeed)
	var sess *secagg.Session
	sessT, sessK := -1, -1

	for {
		// Between requests the client blocks without a deadline: its edge
		// decides the pace.
		m, err := readFrame(conn, c.meter, cfg.MaxFrame, 0)
		if err != nil {
			return nil, fmt.Errorf("fednode: client %d read: %w", c.id, err)
		}
		switch m.Type {
		case wire.GlobalModel:
			t, k := int(m.Round), int(m.Seq)
			groupParams := m.Floats
			model.SetParamVector(groupParams)
			x, y := c.sys.ClientBatch(me)
			trainSpan := c.meter.Registry().Start("fel_fednode_local_train_seconds", metrics.L("role", "client"))
			core.SGDUpdater{}.LocalTrain(model, x, y, core.LocalContext{
				ClientID: c.id, Anchor: groupParams,
				Epochs: cfg.LocalEpochs, BatchSize: cfg.BatchSize, LR: cfg.LR,
				Rng: stats.NewRNG(localSeed(cfg.Seed, t, gid, c.id)),
			})
			trainSpan.End()
			if d := cfg.ForceDrop; d != nil && d.Client == c.id && d.Round == t && d.GroupRound == k {
				// Fault injection: vanish after training, before submitting —
				// the edge must recover via secagg dropout handling.
				c.logf("client %d: injected disconnect in round %d.%d", c.id, t, k)
				return nil, nil
			}
			params := model.ParamVector()
			reply := &wire.Message{Type: wire.MaskedUpdate, Round: m.Round, Seq: m.Seq, From: int32(c.id)}
			if n == 1 {
				// Singleton group: nothing to hide from itself; ship plaintext
				// (the hfl convention).
				reply.Floats = params
			} else {
				contrib := make([]float64, len(params))
				for j, v := range params {
					contrib[j] = w * v
				}
				sess = secagg.NewSession(n, len(params), threshold, sessionSeed(cfg.Seed, t, k, gid), cfg.Quantizer)
				sessT, sessK = t, k
				reply.Words = sess.MaskedUpdate(myIdx, contrib)
				sess.PublishOps(c.meter.Registry())
			}
			if err := sendFrame(conn, c.meter, reply, cfg.StragglerTimeout); err != nil {
				return nil, fmt.Errorf("fednode: client %d submit round %d.%d: %w", c.id, t, k, err)
			}
		case wire.ShareReveal:
			t, k := int(m.Round), int(m.Seq)
			if sess == nil || sessT != t || sessK != k {
				return nil, fmt.Errorf("fednode: client %d asked to reveal shares for round %d.%d without a session", c.id, t, k)
			}
			shares, err := sess.HeldShares(myIdx, intsToIDs(m.Ints))
			if err != nil {
				return nil, fmt.Errorf("fednode: client %d reveal: %w", c.id, err)
			}
			words := make([]uint64, 0, 2*len(shares))
			for _, sh := range shares {
				words = append(words, sh.X, sh.Y)
			}
			c.meter.Registry().Counter("fel_fednode_shares_revealed_total").Add(int64(len(shares)))
			out := &wire.Message{Type: wire.ShareReveal, Round: m.Round, Seq: m.Seq, From: int32(c.id), Words: words}
			if err := sendFrame(conn, c.meter, out, cfg.StragglerTimeout); err != nil {
				return nil, fmt.Errorf("fednode: client %d reveal reply: %w", c.id, err)
			}
		case wire.GlobalAggregate:
			c.logf("client %d: received final model", c.id)
			return m.Floats, nil
		default:
			return nil, fmt.Errorf("fednode: client %d unexpected %s frame", c.id, m.Type)
		}
	}
}
