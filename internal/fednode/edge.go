package fednode

import (
	"errors"
	"fmt"
	"net"
	"sync"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/secagg"
	"repro/internal/stats"
	"repro/internal/wire"
)

// Edge is one edge server: it registers with the cloud, accepts its
// clients, receives the group assignment, and then drives K secure-
// aggregation group rounds per selected group each global round — the
// broadcast → collect → reveal → aggregate → report state machine — with
// straggler deadlines mapping missed masked updates onto secagg dropout
// recovery.
type Edge struct {
	id    int
	sys   *core.System
	cfg   JobConfig
	meter *Meter
}

// NewEdge prepares edge server id (an index into sys.Edges). meter may be
// nil (falls back to cfg.Meter, then to a fresh private meter).
func NewEdge(id int, sys *core.System, cfg JobConfig, meter *Meter) *Edge {
	if meter == nil {
		meter = cfg.Meter
	}
	if meter == nil {
		meter = NewMeter(nil)
	}
	return &Edge{id: id, sys: sys, cfg: cfg.withDefaults(), meter: meter}
}

func (e *Edge) logf(format string, args ...any) {
	if e.cfg.Logf != nil {
		e.cfg.Logf(format, args...)
	}
}

// edgeGroup is one assigned group's connection-side state.
type edgeGroup struct {
	gid     int
	members []int // global client ids, in group order
	samples []int // per-member sample counts
	ng      int   // total group samples
	conns   []net.Conn
	dead    []bool // true once a member dropped; sticky across rounds
	drops   int    // new deaths observed (reported upstream)
	recov   int    // group rounds completed via dropout recovery
}

// Run serves the job: dial the cloud at cloudAddr, accept this edge's
// clients on ln, then execute rounds until the final model arrives. When
// Run returns, every group-runner and collector goroutine has been joined
// and all connections are closed.
func (e *Edge) Run(nw Network, ln net.Listener, cloudAddr string) error {
	cfg := e.cfg
	if err := cfg.validate(); err != nil {
		return err
	}
	if e.id < 0 || e.id >= len(e.sys.Edges) {
		return fmt.Errorf("fednode: edge id %d out of range [0,%d)", e.id, len(e.sys.Edges))
	}

	tag := fmt.Sprintf("edge/%d", e.id)
	rawCloud, err := dialRetry(nw, tag, cloudAddr, cfg.DialAttempts, cfg.DialBackoff, e.meter,
		stats.NewRNG(dialSeed(cfg.Seed, tag)))
	if err != nil {
		return err
	}
	cloudConn := meter(rawCloud, e.meter)
	defer closeQuiet(cloudConn)
	reg := &wire.Message{Type: wire.GroupAssign, From: int32(e.id)}
	if err := sendFrame(cloudConn, e.meter, reg, cfg.RoundTimeout); err != nil {
		return fmt.Errorf("fednode: edge %d register: %w", e.id, err)
	}

	// Accept and register this edge's clients.
	mine := make(map[int]bool, len(e.sys.Edges[e.id]))
	for _, cl := range e.sys.Edges[e.id] {
		mine[cl.ID] = true
	}
	clientConns := make(map[int]net.Conn, len(mine))
	defer func() {
		for _, conn := range clientConns {
			closeQuiet(conn)
		}
	}()
	for len(clientConns) < len(mine) {
		raw, err := acceptRetry(ln, cfg.DialAttempts, cfg.DialBackoff, e.meter)
		if err != nil {
			return fmt.Errorf("fednode: edge %d accept: %w", e.id, err)
		}
		conn := meter(raw, e.meter)
		hello, err := expectFrame(conn, e.meter, cfg.MaxFrame, cfg.RoundTimeout, wire.GroupAssign)
		if err != nil {
			closeQuiet(conn)
			return fmt.Errorf("fednode: client registration: %w", err)
		}
		cid := int(hello.From)
		if !mine[cid] {
			closeQuiet(conn)
			return fmt.Errorf("fednode: client %d does not belong to edge %d", cid, e.id)
		}
		if _, dup := clientConns[cid]; dup {
			closeQuiet(conn)
			return fmt.Errorf("fednode: duplicate registration for client %d", cid)
		}
		clientConns[cid] = conn
	}
	e.logf("edge %d: %d clients registered", e.id, len(clientConns))

	// Receive the group assignment and forward each member its group view
	// (group id, its index, the full membership).
	refs := clientsByID(e.sys)
	groups := make(map[int]*edgeGroup)
	assigns := make(map[int]*wire.Message, len(mine))
	seats := make(map[int]seat, len(mine))
	for {
		m, err := expectFrame(cloudConn, e.meter, cfg.MaxFrame, cfg.RoundTimeout, wire.GroupAssign)
		if err != nil {
			return fmt.Errorf("fednode: edge %d assignment: %w", e.id, err)
		}
		if m.From < 0 {
			break
		}
		g := &edgeGroup{gid: int(m.From), members: intsToIDs(m.Ints)}
		g.samples = make([]int, len(g.members))
		g.conns = make([]net.Conn, len(g.members))
		g.dead = make([]bool, len(g.members))
		for i, cid := range g.members {
			ref := refs[cid]
			conn := clientConns[cid]
			if ref == nil || conn == nil {
				return fmt.Errorf("fednode: group %d member %d unknown at edge %d", g.gid, cid, e.id)
			}
			g.samples[i] = ref.samples
			g.ng += ref.samples
			g.conns[i] = conn
			seats[cid] = seat{g: g, idx: i}
		}
		groups[g.gid] = g
		for i, cid := range g.members {
			assign := &wire.Message{Type: wire.GroupAssign, From: int32(g.gid), Seq: uint32(i), Ints: m.Ints}
			assigns[cid] = assign
			if err := sendFrame(clientConns[cid], e.meter, assign, cfg.RoundTimeout); err != nil {
				return fmt.Errorf("fednode: forward assignment to client %d: %w", cid, err)
			}
		}
	}
	e.logf("edge %d: %d groups assigned", e.id, len(groups))

	// From here on the listener serves crash-restarted clients: the rejoin
	// loop replays their assignment and queues them for adoption at the next
	// round boundary. Closing ln is what stops the loop, so Run owns the
	// close from this point (closeQuiet is idempotent-safe for both listener
	// kinds).
	rejoinCh := make(chan rejoin, len(mine))
	acceptDone := make(chan struct{})
	go e.rejoinLoop(ln, mine, assigns, rejoinCh, acceptDone)
	defer func() {
		closeQuiet(ln)
		<-acceptDone
		drainRejoins(rejoinCh)
	}()

	cloud := &lockedConn{conn: cloudConn}
	for {
		// Between rounds the edge blocks on the cloud without a deadline:
		// the cloud decides the job's pace.
		m, err := readFrame(cloudConn, e.meter, cfg.MaxFrame, 0)
		if err != nil {
			return fmt.Errorf("fednode: edge %d read from cloud: %w", e.id, err)
		}
		switch m.Type {
		case wire.GlobalModel:
			e.adoptRejoins(rejoinCh, seats, clientConns)
			t := int(m.Round)
			var wg sync.WaitGroup
			var mu sync.Mutex
			var firstErr error
			for _, gidRaw := range m.Ints {
				g := groups[int(gidRaw)]
				if g == nil {
					return fmt.Errorf("fednode: edge %d asked to run unknown group %d", e.id, gidRaw)
				}
				wg.Add(1)
				go func(g *edgeGroup) {
					defer wg.Done()
					if err := e.runGroup(g, t, m.Floats, cloud); err != nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						mu.Unlock()
					}
				}(g)
			}
			wg.Wait()
			if firstErr != nil {
				return firstErr
			}
		case wire.GlobalAggregate:
			// Graceful shutdown: adopt any last rejoins so they receive the
			// final model too, forward it to every live client, ack the
			// cloud, and drain.
			e.adoptRejoins(rejoinCh, seats, clientConns)
			for cid, conn := range clientConns {
				if deadConn(groups, cid) {
					continue
				}
				if err := sendFrame(conn, e.meter, m, cfg.RoundTimeout); err != nil {
					return fmt.Errorf("fednode: forward final model to client %d: %w", cid, err)
				}
			}
			ack := &wire.Message{Type: wire.GlobalAggregate, Round: m.Round, From: int32(e.id)}
			if err := cloud.send(e.meter, ack, cfg.RoundTimeout); err != nil {
				return fmt.Errorf("fednode: edge %d shutdown ack: %w", e.id, err)
			}
			return nil
		default:
			return fmt.Errorf("fednode: edge %d unexpected %s frame from cloud", e.id, m.Type)
		}
	}
}

// seat locates one client's place in its group: the edge adopts a rejoining
// client back into exactly this slot.
type seat struct {
	g   *edgeGroup
	idx int
}

// rejoin is one crash-restarted client that has re-registered and received
// its assignment replay, waiting for adoption at a round boundary.
type rejoin struct {
	cid  int
	conn net.Conn
}

// rejoinLoop serves the edge's listener after initial registration: each
// accepted connection is a crash-restarted client re-registering. The loop
// validates the hello, replays the client's stored group assignment, and
// queues the connection for adoption. A malformed or foreign hello just
// drops the connection — a chaos run must not let one corrupted
// registration kill the edge. The loop exits when ln closes.
func (e *Edge) rejoinLoop(ln net.Listener, mine map[int]bool, assigns map[int]*wire.Message, ch chan<- rejoin, done chan<- struct{}) {
	defer close(done)
	cfg := e.cfg
	for {
		raw, err := ln.Accept()
		if err != nil {
			return
		}
		conn := meter(raw, e.meter)
		hello, err := expectFrame(conn, e.meter, cfg.MaxFrame, cfg.RoundTimeout, wire.GroupAssign)
		if err != nil {
			closeQuiet(conn)
			continue
		}
		cid := int(hello.From)
		assign := assigns[cid]
		if !mine[cid] || assign == nil {
			closeQuiet(conn)
			continue
		}
		if err := sendFrame(conn, e.meter, assign, cfg.RoundTimeout); err != nil {
			closeQuiet(conn)
			continue
		}
		select {
		case ch <- rejoin{cid: cid, conn: conn}:
			e.logf("edge %d: client %d re-registered", e.id, cid)
		default:
			// The adoption queue is full (a client redialing faster than
			// rounds turn over); drop this attempt, it can redial.
			closeQuiet(conn)
		}
	}
}

// adoptRejoins plugs queued crash-restarted clients back into their group
// seats. Called only at round boundaries — between the cloud's frames, with
// no group runner in flight — so seat state is safe to mutate: the seat's
// connection is replaced and its dead flag cleared, making the member a
// full secure-aggregation participant again from the next broadcast on.
func (e *Edge) adoptRejoins(ch <-chan rejoin, seats map[int]seat, clientConns map[int]net.Conn) {
	for {
		select {
		case r := <-ch:
			s, ok := seats[r.cid]
			if !ok {
				closeQuiet(r.conn)
				continue
			}
			if old := s.g.conns[s.idx]; old != nil && old != r.conn {
				closeQuiet(old)
			}
			s.g.conns[s.idx] = r.conn
			s.g.dead[s.idx] = false
			clientConns[r.cid] = r.conn
			e.meter.rejoins.Inc()
			e.logf("edge %d: client %d rejoined group %d", e.id, r.cid, s.g.gid)
		default:
			return
		}
	}
}

// drainRejoins closes rejoin connections that arrived too late to adopt.
// The rejoin loop has already exited when this runs, so the channel has no
// senders left.
func drainRejoins(ch <-chan rejoin) {
	for {
		select {
		case r := <-ch:
			closeQuiet(r.conn)
		default:
			return
		}
	}
}

// deadConn reports whether client cid has been marked dead in any group.
func deadConn(groups map[int]*edgeGroup, cid int) bool {
	for _, g := range groups {
		for i, id := range g.members {
			if id == cid && g.dead[i] {
				return true
			}
		}
	}
	return false
}

// runGroup executes K group rounds for one group in global round t and
// reports the aggregate to the cloud. Each group round walks the
// broadcast → collect → [reveal] → aggregate state machine; clients that
// miss the straggler deadline or whose connection drops become secagg
// dropouts, recovered from the survivors' shares, and stay excluded for the
// rest of the job.
func (e *Edge) runGroup(g *edgeGroup, t int, globalParams []float64, cloud *lockedConn) error {
	cfg := e.cfg
	dim := len(globalParams)
	groupParams := append([]float64(nil), globalParams...)
	n := len(g.members)
	threshold := cfg.threshold(n)
	roundDrops, roundRecov := 0, 0

	for k := 0; k < cfg.GroupRounds; k++ {
		kSpan := e.meter.Registry().Start("fel_fednode_group_round_seconds", metrics.L("role", "edge"))
		run := &groupRun{gid: g.gid, round: t, k: k, logf: cfg.Logf}
		if err := run.to(phaseBroadcast); err != nil {
			return err
		}
		msg := &wire.Message{Type: wire.GlobalModel, Round: uint32(t), Seq: uint32(k), Floats: groupParams}
		for i := range g.members {
			if g.dead[i] {
				continue
			}
			if err := sendFrame(g.conns[i], e.meter, msg, cfg.StragglerTimeout); err != nil {
				// The connection died between rounds; the member becomes a
				// dropout now rather than at collect time.
				e.markDead(g, i, err)
				roundDrops++
			}
		}

		if err := run.to(phaseCollect); err != nil {
			return err
		}
		masked := make([][]uint64, n)
		plain := make([][]float64, n)
		collectErr := make([]error, n)
		var wg sync.WaitGroup
		for i := range g.members {
			if g.dead[i] {
				continue
			}
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				m, err := expectFrame(g.conns[i], e.meter, cfg.MaxFrame, cfg.StragglerTimeout, wire.MaskedUpdate)
				if err != nil {
					collectErr[i] = err
					return
				}
				if len(m.Words) > 0 {
					masked[i] = m.Words
				} else {
					plain[i] = m.Floats
				}
			}(i)
		}
		wg.Wait()
		var dropped []int
		for i := range g.members {
			if g.dead[i] {
				dropped = append(dropped, i)
				continue
			}
			if collectErr[i] != nil {
				e.markDead(g, i, collectErr[i])
				roundDrops++
				dropped = append(dropped, i)
			}
		}

		if n == 1 {
			// Singleton group: secure aggregation needs two parties, so the
			// lone client trains in the clear (nothing to hide from
			// itself). A dropped singleton carries the group model over.
			if len(dropped) == 0 {
				if len(plain[0]) != dim {
					return fmt.Errorf("fednode: group %d singleton update has %d params, want %d", g.gid, len(plain[0]), dim)
				}
				groupParams = plain[0]
			}
			kSpan.End()
			continue
		}

		survivors := n - len(dropped)
		if survivors < threshold {
			return fmt.Errorf("fednode: group %d round %d.%d: %d survivors below threshold %d",
				g.gid, t, k, survivors, threshold)
		}

		sess := secagg.NewSession(n, dim, threshold, sessionSeed(cfg.Seed, t, k, g.gid), cfg.Quantizer)
		if len(dropped) > 0 {
			if err := run.to(phaseReveal); err != nil {
				return err
			}
			if err := e.revealShares(g, sess, t, k, dropped); err != nil {
				return err
			}
			roundRecov++
			e.meter.recoveries.Inc()
		}

		if err := run.to(phaseAggregate); err != nil {
			return err
		}
		sum, err := sess.Aggregate(masked, dropped)
		if err != nil {
			return fmt.Errorf("fednode: group %d round %d.%d aggregate: %w", g.gid, t, k, err)
		}
		sess.PublishOps(e.meter.Registry())
		if len(dropped) > 0 {
			// Dropout renormalization: rescale so the surviving members'
			// n_i/n_g weights sum to one (the hfl convention).
			survivedSamples := 0
			for i, s := range g.samples {
				if !g.dead[i] {
					survivedSamples += s
				}
			}
			if survivedSamples > 0 {
				scale := float64(g.ng) / float64(survivedSamples)
				for j := range sum {
					sum[j] *= scale
				}
			}
		}
		groupParams = sum
		kSpan.End()
	}

	run := &groupRun{gid: g.gid, round: t, k: cfg.GroupRounds, logf: cfg.Logf, state: phaseAggregate}
	if err := run.to(phaseReport); err != nil {
		return err
	}
	g.drops += roundDrops
	g.recov += roundRecov
	out := &wire.Message{
		Type: wire.GroupAggregate, Round: uint32(t), From: int32(g.gid),
		Floats: groupParams, Ints: []int32{int32(roundDrops), int32(roundRecov)},
	}
	return cloud.send(e.meter, out, cfg.RoundTimeout)
}

// markDead retires a member's connection after a drop, tallying the
// dropout — and, when the cause was a deadline rather than a broken
// connection, the straggler timeout — in the meter.
func (e *Edge) markDead(g *edgeGroup, i int, cause error) {
	g.dead[i] = true
	closeQuiet(g.conns[i])
	e.meter.dropouts.Inc()
	var ne net.Error
	if errors.As(cause, &ne) && ne.Timeout() {
		e.meter.stragglers.Inc()
	}
	e.logf("edge %d: client %d dropped from group %d: %v", e.id, g.members[i], g.gid, cause)
}

// revealShares runs the dropout-recovery exchange: every survivor is told
// the dropped indices and returns the Shamir shares it holds for them. The
// returned shares are checked word-for-word against this edge's own session
// view (the sessions are derived from the same seed), so a tampered or
// desynchronized survivor is caught before reconstruction.
func (e *Edge) revealShares(g *edgeGroup, sess *secagg.Session, t, k int, dropped []int) error {
	cfg := e.cfg
	req := &wire.Message{Type: wire.ShareReveal, Round: uint32(t), Seq: uint32(k), Ints: idsToInts(dropped)}
	isDropped := make(map[int]bool, len(dropped))
	for _, d := range dropped {
		isDropped[d] = true
	}
	for i := range g.members {
		if g.dead[i] || isDropped[i] {
			continue
		}
		if err := sendFrame(g.conns[i], e.meter, req, cfg.StragglerTimeout); err != nil {
			return fmt.Errorf("fednode: group %d reveal request to client %d: %w", g.gid, g.members[i], err)
		}
		reply, err := expectFrame(g.conns[i], e.meter, cfg.MaxFrame, cfg.StragglerTimeout, wire.ShareReveal)
		if err != nil {
			return fmt.Errorf("fednode: group %d reveal reply from client %d: %w", g.gid, g.members[i], err)
		}
		want, err := sess.HeldShares(i, dropped)
		if err != nil {
			return fmt.Errorf("fednode: group %d: %w", g.gid, err)
		}
		if len(reply.Words) != 2*len(want) {
			return fmt.Errorf("fednode: group %d client %d revealed %d words, want %d",
				g.gid, g.members[i], len(reply.Words), 2*len(want))
		}
		for s, sh := range want {
			if reply.Words[2*s] != sh.X || reply.Words[2*s+1] != sh.Y {
				return fmt.Errorf("fednode: group %d client %d share %d mismatch", g.gid, g.members[i], s)
			}
		}
	}
	return nil
}
