package fednode

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/stats"
)

func TestRetryBackoffJitterSpreadsNodes(t *testing.T) {
	// After a partition heals, every client of an edge wakes in the same
	// backoff tick. The per-node seeded jitter must spread their first
	// retries across [base/2, base) instead of letting the cohort stampede
	// on one instant.
	const base = 40 * time.Millisecond
	const nodes = 16
	seen := make(map[time.Duration]bool)
	for id := 0; id < nodes; id++ {
		tag := fmt.Sprintf("client/%d", id)
		d := retryBackoff(base, 1, stats.NewRNG(dialSeed(42, tag)))
		if d < base/2 || d >= base {
			t.Fatalf("node %s first retry backoff %v outside [%v, %v)", tag, d, base/2, base)
		}
		seen[d] = true
	}
	if len(seen) < nodes/2 {
		t.Fatalf("%d nodes share only %d distinct backoff values: reconnect stampede within one tick", nodes, len(seen))
	}
}

func TestRetryBackoffDeterministicPerNode(t *testing.T) {
	schedule := func() []time.Duration {
		rng := stats.NewRNG(dialSeed(7, "client/3"))
		var s []time.Duration
		for i := 1; i <= 6; i++ {
			s = append(s, retryBackoff(25*time.Millisecond, i, rng))
		}
		return s
	}
	first, second := schedule(), schedule()
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("retry %d: backoff %v then %v for the same node and seed", i+1, first[i], second[i])
		}
	}
}

func TestRetryBackoffGrowsAndCaps(t *testing.T) {
	if d := retryBackoff(25*time.Millisecond, 12, nil); d != time.Second {
		t.Fatalf("unjittered backoff at attempt 12 = %v, want cap 1s", d)
	}
	rng := stats.NewRNG(1)
	if d := retryBackoff(25*time.Millisecond, 12, rng); d < 500*time.Millisecond || d >= time.Second {
		t.Fatalf("jittered capped backoff = %v, want [500ms, 1s)", d)
	}
	prev := time.Duration(0)
	for i := 1; i <= 5; i++ {
		d := retryBackoff(10*time.Millisecond, i, nil)
		if d <= prev && i > 1 && prev < time.Second {
			t.Fatalf("unjittered schedule not growing: attempt %d gave %v after %v", i, d, prev)
		}
		prev = d
	}
}

func TestConcurrentReconnectsAfterHeal(t *testing.T) {
	// A late listener models a healed partition: every client is already in
	// its retry loop when the edge comes back. All must reconnect, each on
	// its own jittered schedule.
	const clients = 8
	nw := NewMemNetwork()
	m := NewMeter(nil)

	accepted := make(chan net.Conn, clients)
	lnUp := make(chan struct{})
	var serveWG sync.WaitGroup
	serveWG.Add(1)
	go func() {
		defer serveWG.Done()
		time.Sleep(50 * time.Millisecond)
		ln, err := nw.Listen("edge")
		close(lnUp)
		if err != nil {
			return
		}
		for i := 0; i < clients; i++ {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			accepted <- conn
		}
	}()

	var dialWG sync.WaitGroup
	errs := make(chan error, clients)
	for id := 0; id < clients; id++ {
		dialWG.Add(1)
		go func(id int) {
			defer dialWG.Done()
			tag := fmt.Sprintf("client/%d", id)
			conn, err := dialRetry(nw, tag, "edge", 10, 10*time.Millisecond, m,
				stats.NewRNG(dialSeed(99, tag)))
			if err != nil {
				errs <- fmt.Errorf("client %d: %w", id, err)
				return
			}
			closeQuiet(conn)
		}(id)
	}
	dialWG.Wait()
	<-lnUp
	serveWG.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := m.reg.CounterValue("fel_net_dial_retries_total"); got == 0 {
		t.Fatal("no dial retries counted: the listener was late, clients must have retried")
	}
}
