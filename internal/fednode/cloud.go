package fednode

import (
	"fmt"
	"net"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/grouping"
	"repro/internal/metrics"
	"repro/internal/sampling"
	"repro/internal/stats"
	"repro/internal/wire"
)

// Cloud is the coordinator of a networked Group-FEL job: it registers the
// edge servers, forms groups and pushes the assignment, then drives T
// global rounds — global model out, group aggregates back, weighted
// aggregation, evaluation — and finally broadcasts the converged model and
// drains every connection before returning.
type Cloud struct {
	sys   *core.System
	cfg   JobConfig
	meter *Meter
}

// NewCloud prepares a coordinator. meter may be nil (falls back to
// cfg.Meter, then to a fresh private meter).
func NewCloud(sys *core.System, cfg JobConfig, meter *Meter) *Cloud {
	if meter == nil {
		meter = cfg.Meter
	}
	if meter == nil {
		meter = NewMeter(nil)
	}
	return &Cloud{sys: sys, cfg: cfg.withDefaults(), meter: meter}
}

// Meter exposes the byte meter (shared across a loopback cluster).
func (c *Cloud) Meter() *Meter { return c.meter }

// logf traces when a logger is configured.
func (c *Cloud) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// Run serves one complete job on ln and returns the report. It expects
// len(sys.Edges) edge servers to register and blocks until the job drains:
// when Run returns, every protocol goroutine it spawned has been joined and
// every edge connection closed.
func (c *Cloud) Run(ln net.Listener) (*Report, error) {
	cfg := c.cfg
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	numEdges := len(c.sys.Edges)
	if numEdges == 0 {
		return nil, fmt.Errorf("fednode: system has no edges")
	}

	// Registration: every edge dials in and identifies itself.
	conns := make([]net.Conn, numEdges)
	defer func() {
		for _, conn := range conns {
			if conn != nil {
				closeQuiet(conn)
			}
		}
	}()
	for i := 0; i < numEdges; i++ {
		raw, err := acceptRetry(ln, cfg.DialAttempts, cfg.DialBackoff, c.meter)
		if err != nil {
			return nil, fmt.Errorf("fednode: cloud accept: %w", err)
		}
		conn := meter(raw, c.meter)
		reg, err := expectFrame(conn, c.meter, cfg.MaxFrame, cfg.RoundTimeout, wire.GroupAssign)
		if err != nil {
			closeQuiet(conn)
			return nil, fmt.Errorf("fednode: edge registration: %w", err)
		}
		id := int(reg.From)
		if id < 0 || id >= numEdges {
			closeQuiet(conn)
			return nil, fmt.Errorf("fednode: edge id %d out of range [0,%d)", id, numEdges)
		}
		if conns[id] != nil {
			closeQuiet(conn)
			return nil, fmt.Errorf("fednode: duplicate registration for edge %d", id)
		}
		conns[id] = conn
		c.logf("cloud: edge %d registered (%d/%d)", id, i+1, numEdges)
	}

	// Formation and sampling state, mirroring core.Train's RNG usage so a
	// clean loopback run follows the in-process trajectory.
	rng := stats.NewRNG(cfg.Seed)
	groups := cfg.Groups
	if groups == nil {
		groups = grouping.FormAll(cfg.Grouping, c.sys.Edges, c.sys.Classes, rng.Split(1))
	}
	if len(groups) == 0 {
		return nil, fmt.Errorf("fednode: formation produced no groups")
	}
	probs := sampling.Probabilities(groups, cfg.Sampling)
	sampleRng := rng.Split(2)
	byID := make(map[int]int, len(groups))
	for i, g := range groups {
		byID[g.ID] = i
	}

	// Publish the sampling vector under the same fel_core_* schema the
	// in-process trainer uses: the cloud is the Alg. 1 control plane either
	// way, so one audit recipe (empirical selection frequency vs p_g, see
	// EXPERIMENTS.md) reads both kinds of run.
	mreg := c.meter.Registry()
	for i, g := range groups {
		gl := metrics.L("group", strconv.Itoa(g.ID))
		mreg.Gauge("fel_core_group_prob", gl).Set(probs[i])
		mreg.Gauge("fel_core_group_cov", gl).Set(g.CoV())
		mreg.Gauge("fel_core_group_size", gl).Set(float64(g.Size()))
	}

	// Push the assignment: one GroupAssign per group to its edge, then a
	// sentinel (From = -1) closing the stream.
	for e, conn := range conns {
		for _, g := range groups {
			if g.Edge != e {
				continue
			}
			members := make([]int32, g.Size())
			for i, cl := range g.Clients {
				members[i] = int32(cl.ID)
			}
			msg := &wire.Message{Type: wire.GroupAssign, From: int32(g.ID), Ints: members}
			if err := sendFrame(conn, c.meter, msg, cfg.RoundTimeout); err != nil {
				return nil, err
			}
		}
		end := &wire.Message{Type: wire.GroupAssign, From: -1}
		if err := sendFrame(conn, c.meter, end, cfg.RoundTimeout); err != nil {
			return nil, err
		}
	}

	totalSamples := 0
	for _, cl := range c.sys.Clients {
		totalSamples += cl.NumSamples()
	}
	global := c.sys.NewModel(c.sys.ModelSeed)
	globalParams := global.ParamVector()
	if cfg.InitParams != nil {
		if len(cfg.InitParams) != len(globalParams) {
			return nil, fmt.Errorf("fednode: InitParams length %d, model has %d", len(cfg.InitParams), len(globalParams))
		}
		copy(globalParams, cfg.InitParams)
	}

	rep := &Report{}
	start := time.Now()
	bytesMark := c.meter.Written()
	for t := 0; t < cfg.GlobalRounds; t++ {
		roundSpan := c.meter.Registry().Start("fel_fednode_round_seconds", metrics.L("role", "cloud"))
		var selected []int
		if cfg.FixedSelection != nil {
			selected = cfg.FixedSelection[t]
			for _, gi := range selected {
				if gi < 0 || gi >= len(groups) {
					return nil, fmt.Errorf("fednode: fixed selection index %d out of range", gi)
				}
			}
		} else {
			s := cfg.SampleGroups
			if s > len(groups) {
				s = len(groups)
			}
			selected = sampling.Sample(sampleRng, probs, s)
		}
		if len(selected) == 0 {
			return nil, fmt.Errorf("fednode: round %d selected no groups", t)
		}
		mreg.Counter("fel_core_rounds_total").Inc()
		for _, gi := range selected {
			mreg.Counter("fel_core_group_selected_total", metrics.L("group", strconv.Itoa(groups[gi].ID))).Inc()
		}

		// Broadcast the global model with each edge's share of the
		// selection (possibly empty — edges stay in lockstep).
		selByEdge := make([][]int32, numEdges)
		for _, gi := range selected {
			g := groups[gi]
			selByEdge[g.Edge] = append(selByEdge[g.Edge], int32(g.ID))
		}
		for e, conn := range conns {
			msg := &wire.Message{Type: wire.GlobalModel, Round: uint32(t), Floats: globalParams, Ints: selByEdge[e]}
			if err := sendFrame(conn, c.meter, msg, cfg.RoundTimeout); err != nil {
				return nil, fmt.Errorf("fednode: round %d push to edge %d: %w", t, e, err)
			}
		}

		// Collect one GroupAggregate per selected group, concurrently per
		// edge connection, all readers joined before aggregation.
		type aggregate struct {
			gi     int
			params []float64
			drops  int
			recov  int
		}
		var mu sync.Mutex
		aggs := make(map[int]aggregate, len(selected))
		var firstErr error
		var wg sync.WaitGroup
		for e, conn := range conns {
			expect := len(selByEdge[e])
			if expect == 0 {
				continue
			}
			wg.Add(1)
			go func(e int, conn net.Conn, expect int) {
				defer wg.Done()
				for r := 0; r < expect; r++ {
					m, err := expectFrame(conn, c.meter, cfg.MaxFrame, cfg.RoundTimeout, wire.GroupAggregate)
					if err == nil && int(m.Round) != t {
						err = fmt.Errorf("fednode: edge %d aggregate for round %d during round %d", e, m.Round, t)
					}
					var gi int
					if err == nil {
						var ok bool
						gi, ok = byID[int(m.From)]
						if !ok {
							err = fmt.Errorf("fednode: edge %d reported unknown group %d", e, m.From)
						}
					}
					mu.Lock()
					if err != nil {
						if firstErr == nil {
							firstErr = err
						}
						mu.Unlock()
						return
					}
					agg := aggregate{gi: gi, params: m.Floats}
					if len(m.Ints) == 2 {
						agg.drops, agg.recov = int(m.Ints[0]), int(m.Ints[1])
					}
					aggs[gi] = agg
					mu.Unlock()
				}
			}(e, conn, expect)
		}
		wg.Wait()
		if firstErr != nil {
			return nil, firstErr
		}

		// Weighted global aggregation (Alg. 1 line 15 / Eq. 4 / Eq. 35).
		weights := sampling.Weights(groups, selected, probs, totalSamples, cfg.Weights)
		next := make([]float64, len(globalParams))
		stat := RoundStat{Round: t, Selected: len(selected), Accuracy: -1, Loss: -1}
		for si, gi := range selected {
			agg, ok := aggs[gi]
			if !ok {
				return nil, fmt.Errorf("fednode: round %d missing aggregate for group %d", t, groups[gi].ID)
			}
			if len(agg.params) != len(next) {
				return nil, fmt.Errorf("fednode: group %d aggregate has %d params, want %d", groups[gi].ID, len(agg.params), len(next))
			}
			w := weights[si]
			for j, v := range agg.params {
				next[j] += w * v
			}
			stat.Dropouts += agg.drops
			stat.Recoveries += agg.recov
		}
		globalParams = next

		if cfg.EvalEvery <= 1 || t%cfg.EvalEvery == 0 || t == cfg.GlobalRounds-1 {
			global.SetParamVector(globalParams)
			stat.Accuracy, stat.Loss = core.Evaluate(global, c.sys.Test, 0)
		}
		written := c.meter.Written()
		stat.WireBytes = written - bytesMark
		bytesMark = written
		rep.Rounds = append(rep.Rounds, stat)
		rep.RoundsRun = t + 1
		rep.Dropouts += stat.Dropouts
		rep.Recoveries += stat.Recoveries
		roundSpan.End()
		c.logf("cloud: round %d done: acc=%.4f dropouts=%d recoveries=%d bytes=%d",
			t, stat.Accuracy, stat.Dropouts, stat.Recoveries, stat.WireBytes)
	}

	// Graceful shutdown: broadcast the final model, then wait for every
	// edge's ack so all downstream forwards have drained before we close.
	final := &wire.Message{Type: wire.GlobalAggregate, Round: uint32(cfg.GlobalRounds), Floats: globalParams}
	for e, conn := range conns {
		if err := sendFrame(conn, c.meter, final, cfg.RoundTimeout); err != nil {
			return nil, fmt.Errorf("fednode: final broadcast to edge %d: %w", e, err)
		}
	}
	for e, conn := range conns {
		if _, err := expectFrame(conn, c.meter, cfg.MaxFrame, cfg.RoundTimeout, wire.GlobalAggregate); err != nil {
			return nil, fmt.Errorf("fednode: shutdown ack from edge %d: %w", e, err)
		}
	}

	global.SetParamVector(globalParams)
	rep.FinalAccuracy, rep.FinalLoss = core.Evaluate(global, c.sys.Test, 0)
	rep.Params = globalParams
	rep.WallClock = time.Since(start)
	rep.WireWritten = c.meter.Written()
	rep.WireRead = c.meter.Read()
	rep.Frames = c.meter.Frames()
	rep.AccountedBytes = c.meter.Accounted()
	return rep, nil
}
