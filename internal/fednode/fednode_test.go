package fednode

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/data"
	"repro/internal/grouping"
	"repro/internal/nn"
	"repro/internal/sampling"
	"repro/internal/stats"
)

// testSystem builds a small, fast federated population on two edges.
func testSystem(numClients int, seed uint64) *core.System {
	gen := data.FlatConfig(4, 10, seed)
	gen.Noise = 0.8
	return core.NewSystem(core.SystemConfig{
		Generator: gen,
		Partition: data.PartitionConfig{
			NumClients: numClients, Alpha: 0.5,
			MinSamples: 10, MaxSamples: 40, MeanSamples: 25, StdSamples: 8,
			Seed: seed + 1,
		},
		NumEdges: 2,
		TestSize: 300,
		NewModel: func(s uint64) *nn.Sequential {
			return nn.NewMLP(10, []int{16}, 4, s)
		},
		ModelSeed: 7,
	})
}

func testJobConfig() JobConfig {
	return JobConfig{
		GlobalRounds: 3, GroupRounds: 2, LocalEpochs: 1,
		BatchSize: 16, LR: 0.05, SampleGroups: 2,
		Grouping: grouping.CoVGrouping{Config: grouping.Config{MinGS: 3, MaxCoV: 0.5, MergeLeftover: true}},
		Sampling: sampling.ESRCoV,
		Weights:  sampling.Biased,
		Seed:     42,
	}
}

// trainConfig mirrors a JobConfig for the in-process trainer.
func trainConfig(j JobConfig) core.Config {
	return core.Config{
		GlobalRounds: j.GlobalRounds, GroupRounds: j.GroupRounds, LocalEpochs: j.LocalEpochs,
		BatchSize: j.BatchSize, LR: j.LR, SampleGroups: j.SampleGroups,
		Grouping: j.Grouping, Sampling: j.Sampling, Weights: j.Weights,
		Seed:        j.Seed,
		CostProfile: cost.CIFARProfile(), CostOps: cost.DefaultOps(),
	}
}

// TestLoopbackMatchesTrain is the tentpole equivalence check: a full job
// over in-memory connections must reproduce the in-process trainer's
// trajectory, with only secure-aggregation quantization separating the
// final parameter vectors.
func TestLoopbackMatchesTrain(t *testing.T) {
	sys := testSystem(12, 1)
	jcfg := testJobConfig()
	rep, err := RunJob(NewMemNetwork(), sys, jcfg, "")
	if err != nil {
		t.Fatalf("RunJob: %v", err)
	}
	if rep.RoundsRun != jcfg.GlobalRounds {
		t.Fatalf("ran %d rounds, want %d", rep.RoundsRun, jcfg.GlobalRounds)
	}
	if rep.Dropouts != 0 || rep.Recoveries != 0 {
		t.Fatalf("clean run reported %d dropouts / %d recoveries", rep.Dropouts, rep.Recoveries)
	}

	res := core.Train(sys, trainConfig(jcfg))
	if len(rep.Params) != len(res.Params) {
		t.Fatalf("param dims differ: %d vs %d", len(rep.Params), len(res.Params))
	}
	maxDiff := 0.0
	for j := range rep.Params {
		if d := math.Abs(rep.Params[j] - res.Params[j]); d > maxDiff {
			maxDiff = d
		}
	}
	if maxDiff > 1e-3 {
		t.Fatalf("networked params diverge from Train by %v (quantization should stay <= 1e-3)", maxDiff)
	}
	if d := math.Abs(rep.FinalAccuracy - res.FinalAccuracy); d > 0.02 {
		t.Fatalf("accuracy gap %v: networked %.4f vs in-process %.4f", d, rep.FinalAccuracy, res.FinalAccuracy)
	}
}

// TestByteAccountingCrossChecks asserts the codec-side accounting equals the
// transport bytes that actually moved on a clean run: every byte written was
// part of an accounted frame, and every written byte was read.
func TestByteAccountingCrossChecks(t *testing.T) {
	sys := testSystem(10, 3)
	jcfg := testJobConfig()
	jcfg.GlobalRounds = 2
	rep, err := RunJob(NewMemNetwork(), sys, jcfg, "")
	if err != nil {
		t.Fatalf("RunJob: %v", err)
	}
	if rep.WireWritten == 0 || rep.Frames == 0 {
		t.Fatal("meter saw no traffic")
	}
	if rep.WireWritten != rep.AccountedBytes {
		t.Fatalf("transport wrote %d bytes but codec accounted %d", rep.WireWritten, rep.AccountedBytes)
	}
	if rep.WireRead != rep.WireWritten {
		t.Fatalf("read %d bytes of %d written: frames left undrained", rep.WireRead, rep.WireWritten)
	}
	var roundSum int64
	for _, r := range rep.Rounds {
		if r.WireBytes <= 0 {
			t.Fatalf("round %d moved %d bytes", r.Round, r.WireBytes)
		}
		roundSum += r.WireBytes
	}
	if roundSum > rep.WireWritten {
		t.Fatalf("per-round bytes %d exceed total %d", roundSum, rep.WireWritten)
	}
}

// TestMidRoundDisconnectRecovers injects a real client disconnect between
// local training and update submission; the edge must detect the dead
// connection, run the share-reveal recovery, and complete the round — and
// every later round — without the lost client.
func TestMidRoundDisconnectRecovers(t *testing.T) {
	sys := testSystem(12, 5)
	jcfg := testJobConfig()
	jcfg.GlobalRounds = 2
	jcfg.StragglerTimeout = 2 * time.Second

	// Pin formation and selection so the dropped client's group is
	// deterministically in play every round.
	groups := grouping.FormAll(jcfg.Grouping, sys.Edges, sys.Classes, stats.NewRNG(jcfg.Seed).Split(1))
	var target *grouping.Group
	for _, g := range groups {
		if g.Size() >= 3 {
			target = g
			break
		}
	}
	if target == nil {
		t.Fatal("no group with >= 3 clients")
	}
	sel := make([]int, len(groups))
	for i := range groups {
		sel[i] = i
	}
	jcfg.Groups = groups
	jcfg.FixedSelection = [][]int{sel, sel}
	jcfg.ForceDrop = &ForcedDrop{Client: target.Clients[0].ID, Round: 0, GroupRound: 0}

	rep, err := RunJob(NewMemNetwork(), sys, jcfg, "")
	if err != nil {
		t.Fatalf("RunJob with disconnect: %v", err)
	}
	if rep.RoundsRun != 2 {
		t.Fatalf("ran %d rounds, want 2", rep.RoundsRun)
	}
	if rep.Dropouts != 1 {
		t.Fatalf("counted %d dropouts, want exactly 1", rep.Dropouts)
	}
	// The dead client stays dead: every subsequent group round of its group
	// runs dropout recovery, so K rounds in global round 0 after the drop
	// plus K in global round 1.
	wantRecov := 2*jcfg.GroupRounds - 0 // drop happens in round 0.0, before its aggregation
	if rep.Recoveries != wantRecov {
		t.Fatalf("counted %d recoveries, want %d", rep.Recoveries, wantRecov)
	}
	if rep.FinalAccuracy <= 0.3 {
		t.Fatalf("final accuracy %.3f after recovery, want > 0.3", rep.FinalAccuracy)
	}
}

// TestTCPLoopback runs a small job over real sockets on 127.0.0.1.
func TestTCPLoopback(t *testing.T) {
	sys := testSystem(8, 9)
	jcfg := testJobConfig()
	jcfg.GlobalRounds = 2
	rep, err := RunJob(TCPNetwork{}, sys, jcfg, "127.0.0.1:0")
	if err != nil {
		t.Fatalf("RunJob over TCP: %v", err)
	}
	if rep.RoundsRun != 2 {
		t.Fatalf("ran %d rounds, want 2", rep.RoundsRun)
	}
	if rep.WireWritten != rep.AccountedBytes {
		t.Fatalf("transport wrote %d bytes but codec accounted %d", rep.WireWritten, rep.AccountedBytes)
	}
}

// TestRunRoundMatchesHFLShape runs the single-round API over explicit groups.
func TestRunRoundMatchesHFLShape(t *testing.T) {
	sys := testSystem(10, 11)
	jcfg := testJobConfig()
	groups := grouping.FormAll(jcfg.Grouping, sys.Edges, sys.Classes, stats.NewRNG(jcfg.Seed).Split(1))
	if len(groups) == 0 {
		t.Fatal("no groups formed")
	}
	global := sys.NewModel(sys.ModelSeed).ParamVector()
	params, rep, err := RunRound(NewMemNetwork(), sys, groups, []int{0}, global, jcfg, "")
	if err != nil {
		t.Fatalf("RunRound: %v", err)
	}
	if len(params) != len(global) {
		t.Fatalf("round returned %d params, want %d", len(params), len(global))
	}
	if rep.RoundsRun != 1 {
		t.Fatalf("ran %d rounds, want 1", rep.RoundsRun)
	}
	same := true
	for j := range params {
		if math.Abs(params[j]-global[j]) > 1e-12 {
			same = false
			break
		}
	}
	if same {
		t.Fatal("round did not change the global model")
	}
}

// TestGroupRunForwardOnly pins the state machine invariant.
func TestGroupRunForwardOnly(t *testing.T) {
	r := &groupRun{gid: 1, round: 0, k: 0}
	for _, p := range []phase{phaseBroadcast, phaseCollect, phaseAggregate} {
		if err := r.to(p); err != nil {
			t.Fatalf("forward transition to %s: %v", p, err)
		}
	}
	err := r.to(phaseCollect)
	if err == nil {
		t.Fatal("backward transition aggregate → collect was allowed")
	}
	if !strings.Contains(err.Error(), "illegal transition") {
		t.Fatalf("unexpected error text: %v", err)
	}
}

// TestMemNetworkRefusesUnknownAddr pins dial errors and bounded retry.
func TestMemNetworkRefusesUnknownAddr(t *testing.T) {
	nw := NewMemNetwork()
	if _, err := nw.Dial("nowhere"); err == nil {
		t.Fatal("dial of unregistered address succeeded")
	}
	start := time.Now()
	if _, err := dialRetry(nw, "test", "nowhere", 3, time.Millisecond, nil, nil); err == nil {
		t.Fatal("dialRetry of unregistered address succeeded")
	} else if !strings.Contains(err.Error(), "after 3 attempts") {
		t.Fatalf("unexpected retry error: %v", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("bounded retry took too long")
	}
}
