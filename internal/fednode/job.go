package fednode

import (
	"fmt"
	"net"
	"sync"

	"repro/internal/core"
	"repro/internal/grouping"
)

// RunJob runs a complete networked job in this process — the cloud, every
// edge server, and every client, each on its own goroutine, talking through
// nw. listenAddr seeds every listener: "127.0.0.1:0" for TCP (each listener
// gets its own ephemeral port), "" for a MemNetwork (auto-named). All nodes
// share one Meter, so the report's byte accounting covers the whole
// cluster and WireWritten can be cross-checked against AccountedBytes.
// When RunJob returns, every node goroutine has been joined.
func RunJob(nw Network, sys *core.System, cfg JobConfig, listenAddr string) (*Report, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(sys.Edges) == 0 {
		return nil, fmt.Errorf("fednode: system has no edges")
	}
	m := cfg.Meter
	if m == nil {
		m = NewMeter(nil)
	}

	cloudLn, err := listenTagged(nw, "cloud", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("fednode: cloud listen: %w", err)
	}
	defer closeQuiet(cloudLn)
	cloudAddr := cloudLn.Addr().String()

	edgeLns := make([]net.Listener, len(sys.Edges))
	edgeAddrs := make([]string, len(sys.Edges))
	for e := range sys.Edges {
		ln, err := listenTagged(nw, fmt.Sprintf("edge/%d", e), listenAddr)
		if err != nil {
			return nil, fmt.Errorf("fednode: edge %d listen: %w", e, err)
		}
		defer closeQuiet(ln)
		edgeLns[e] = ln
		edgeAddrs[e] = ln.Addr().String()
	}

	// Node errors funnel into a buffered channel sized for every sender; a
	// failing node tears the cluster down through its deferred connection
	// closes, so the others unblock and report too — first error wins.
	numClients := len(sys.Clients)
	errs := make(chan error, len(sys.Edges)+numClients)
	var wg sync.WaitGroup
	for e := range sys.Edges {
		wg.Add(1)
		go func(e int) {
			defer wg.Done()
			if err := NewEdge(e, sys, cfg, m).Run(nw, edgeLns[e], cloudAddr); err != nil {
				errs <- fmt.Errorf("fednode: edge %d: %w", e, err)
			}
		}(e)
	}
	for e, clients := range sys.Edges {
		for _, cl := range clients {
			wg.Add(1)
			go func(id int, addr string) {
				defer wg.Done()
				if _, err := NewClient(id, sys, cfg, m).Run(nw, addr); err != nil {
					errs <- fmt.Errorf("fednode: client %d: %w", id, err)
				}
			}(cl.ID, edgeAddrs[e])
		}
	}

	rep, cloudErr := NewCloud(sys, cfg, m).Run(cloudLn)
	wg.Wait()
	close(errs)
	if cloudErr != nil {
		return nil, cloudErr
	}
	for err := range errs {
		if err != nil {
			return nil, err
		}
	}
	// Re-snapshot the meter now that every node has joined: the cloud fills
	// these as it returns, but on synchronous pipes an edge's final ack
	// Write only returns — and counts itself — after the cloud has already
	// read it, so the cloud-side snapshot can run a frame short.
	rep.WireWritten = m.Written()
	rep.WireRead = m.Read()
	rep.Frames = m.Frames()
	rep.AccountedBytes = m.Accounted()
	return rep, nil
}

// RunRound runs one networked global round over pre-formed groups and an
// explicit selection, returning the new global parameters — the real-socket
// counterpart of hfl.RunGlobalRound.
func RunRound(nw Network, sys *core.System, groups []*grouping.Group, selected []int, globalParams []float64, cfg JobConfig, listenAddr string) ([]float64, *Report, error) {
	cfg.GlobalRounds = 1
	cfg.Groups = groups
	cfg.FixedSelection = [][]int{selected}
	cfg.InitParams = globalParams
	rep, err := RunJob(nw, sys, cfg, listenAddr)
	if err != nil {
		return nil, nil, err
	}
	return rep.Params, rep, nil
}
