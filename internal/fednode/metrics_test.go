package fednode

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/grouping"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/stats"
	"repro/internal/wire"
)

// oneEdgeSystem builds a population whose clients all live on one edge, so
// a single grouping.NewGroup over sys.Edges[0] is a complete assignment.
func oneEdgeSystem(numClients int, seed uint64) *core.System {
	gen := data.FlatConfig(4, 10, seed)
	gen.Noise = 0.8
	return core.NewSystem(core.SystemConfig{
		Generator: gen,
		Partition: data.PartitionConfig{
			NumClients: numClients, Alpha: 0.5,
			MinSamples: 10, MaxSamples: 40, MeanSamples: 25, StdSamples: 8,
			Seed: seed + 1,
		},
		NumEdges: 1,
		TestSize: 100,
		NewModel: func(s uint64) *nn.Sequential {
			return nn.NewMLP(10, []int{8}, 4, s)
		},
		ModelSeed: 7,
	})
}

// TestWireCountersMatchCodec runs a seeded loopback job with an external
// registry and asserts the per-message-type fel_wire_* counters sum to
// exactly the Report's codec-accounted totals — which the existing
// cross-check ties to the transport bytes that actually moved.
func TestWireCountersMatchCodec(t *testing.T) {
	sys := testSystem(10, 3)
	jcfg := testJobConfig()
	jcfg.GlobalRounds = 2
	reg := metrics.New()
	jcfg.Meter = NewMeter(reg)
	rep, err := RunJob(NewMemNetwork(), sys, jcfg, "")
	if err != nil {
		t.Fatalf("RunJob: %v", err)
	}
	if rep.WireWritten != rep.AccountedBytes {
		t.Fatalf("transport wrote %d bytes but codec accounted %d", rep.WireWritten, rep.AccountedBytes)
	}
	var byteSum, frameSum int64
	for typ := wire.GlobalModel; typ <= wire.GlobalAggregate; typ++ {
		tl := metrics.L("type", typ.String())
		byteSum += reg.CounterValue("fel_wire_bytes_total", tl)
		frameSum += reg.CounterValue("fel_wire_frames_total", tl)
	}
	if byteSum != rep.AccountedBytes {
		t.Fatalf("per-type byte counters sum to %d, report accounted %d", byteSum, rep.AccountedBytes)
	}
	if frameSum != rep.Frames {
		t.Fatalf("per-type frame counters sum to %d, report counted %d", frameSum, rep.Frames)
	}
	if byteSum != reg.CounterValue("fel_net_written_bytes_total") {
		t.Fatalf("accounted %d bytes but transport counter saw %d", byteSum, reg.CounterValue("fel_net_written_bytes_total"))
	}
	for _, typ := range []wire.Type{wire.GlobalModel, wire.GroupAssign, wire.MaskedUpdate, wire.GroupAggregate, wire.GlobalAggregate} {
		if reg.CounterValue("fel_wire_frames_total", metrics.L("type", typ.String())) == 0 {
			t.Fatalf("no %s frames counted on a full job", typ)
		}
	}
	if n := reg.CounterValue("fel_wire_frames_total", metrics.L("type", wire.ShareReveal.String())); n != 0 {
		t.Fatalf("clean run counted %d ShareReveal frames", n)
	}
}

// TestSecaggOpsQuadratic pins the O_g(|g|) = O(|g|^2) secure-aggregation
// overhead (Eq. 5 / Fig. 8) through the published metrics: on a clean
// (T=1, K=1) run over a single group of size n, the n client sessions
// expand n mask streams each and the edge session removes n personal
// masks, so fel_secagg_mask_streams_total{gs="n"} must be exactly n^2+n.
func TestSecaggOpsQuadratic(t *testing.T) {
	for _, n := range []int{4, 8} {
		sys := oneEdgeSystem(n, 21)
		jcfg := testJobConfig()
		jcfg.GlobalRounds, jcfg.GroupRounds = 1, 1
		jcfg.Groups = []*grouping.Group{grouping.NewGroup(0, 0, sys.Edges[0], sys.Classes)}
		jcfg.FixedSelection = [][]int{{0}}
		reg := metrics.New()
		jcfg.Meter = NewMeter(reg)
		if _, err := RunJob(NewMemNetwork(), sys, jcfg, ""); err != nil {
			t.Fatalf("RunJob (n=%d): %v", n, err)
		}
		gs := metrics.L("gs", strconv.Itoa(n))
		want := int64(n*n + n)
		if got := reg.CounterValue("fel_secagg_mask_streams_total", gs); got != want {
			t.Fatalf("group size %d expanded %d mask streams, want %d", n, got, want)
		}
		if got := reg.CounterValue("fel_secagg_shares_dealt_total", gs); got == 0 {
			t.Fatalf("group size %d dealt no shares", n)
		}
	}
}

// TestDropoutMetricsMatchReport injects the mid-round disconnect from
// TestMidRoundDisconnectRecovers and asserts the fel_fednode_* counters
// agree with the Report: one dropout, a recovery per remaining group round
// of the wounded group, revealed shares — and no straggler timeouts, since
// a closed pipe is a connection error, not a missed deadline.
func TestDropoutMetricsMatchReport(t *testing.T) {
	sys := testSystem(12, 5)
	jcfg := testJobConfig()
	jcfg.GlobalRounds = 2
	jcfg.StragglerTimeout = 2 * time.Second
	groups := grouping.FormAll(jcfg.Grouping, sys.Edges, sys.Classes, stats.NewRNG(jcfg.Seed).Split(1))
	var target *grouping.Group
	for _, g := range groups {
		if g.Size() >= 3 {
			target = g
			break
		}
	}
	if target == nil {
		t.Fatal("no group with >= 3 clients")
	}
	sel := make([]int, len(groups))
	for i := range groups {
		sel[i] = i
	}
	jcfg.Groups = groups
	jcfg.FixedSelection = [][]int{sel, sel}
	jcfg.ForceDrop = &ForcedDrop{Client: target.Clients[0].ID, Round: 0, GroupRound: 0}
	reg := metrics.New()
	jcfg.Meter = NewMeter(reg)

	rep, err := RunJob(NewMemNetwork(), sys, jcfg, "")
	if err != nil {
		t.Fatalf("RunJob with disconnect: %v", err)
	}
	if got := reg.CounterValue("fel_fednode_dropouts_total"); got != int64(rep.Dropouts) {
		t.Fatalf("dropout counter %d, report %d", got, rep.Dropouts)
	}
	if got := reg.CounterValue("fel_fednode_recoveries_total"); got != int64(rep.Recoveries) {
		t.Fatalf("recovery counter %d, report %d", got, rep.Recoveries)
	}
	if got := reg.CounterValue("fel_fednode_shares_revealed_total"); got == 0 {
		t.Fatal("recovery ran but no shares were counted as revealed")
	}
	if got := reg.CounterValue("fel_wire_frames_total", metrics.L("type", wire.ShareReveal.String())); got == 0 {
		t.Fatal("recovery ran but no ShareReveal frames were counted")
	}
	if got := reg.CounterValue("fel_fednode_straggler_timeouts_total"); got != 0 {
		t.Fatalf("closed-pipe drop counted %d straggler timeouts", got)
	}
}

// TestJobSnapshotDeterministic runs the same seeded loopback job twice on
// fresh registries and requires the timing-masked snapshots to be
// byte-identical — the determinism contract the trace tables and the
// felbench JSON dumps rely on.
func TestJobSnapshotDeterministic(t *testing.T) {
	snap := func() string {
		sys := testSystem(10, 3)
		jcfg := testJobConfig()
		jcfg.GlobalRounds = 2
		reg := metrics.New()
		jcfg.Meter = NewMeter(reg)
		if _, err := RunJob(NewMemNetwork(), sys, jcfg, ""); err != nil {
			t.Fatalf("RunJob: %v", err)
		}
		return metrics.MaskTimings(reg.Snapshot())
	}
	a, b := snap(), snap()
	if a != b {
		t.Fatalf("masked snapshots differ between identical seeded runs:\n--- a ---\n%s\n--- b ---\n%s", a, b)
	}
	for _, want := range []string{"fel_wire_bytes_total", "fel_net_written_bytes_total", "fel_fednode_round_seconds_count", "fel_secagg_mask_streams_total", "fel_core_group_selected_total", "fel_core_group_prob"} {
		if !strings.Contains(a, want) {
			t.Fatalf("snapshot is missing %s:\n%s", want, a)
		}
	}
}
