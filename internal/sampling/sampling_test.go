package sampling

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/data"
	"repro/internal/grouping"
	"repro/internal/stats"
)

// groupWithCounts builds a single-client group with the given histogram.
func groupWithCounts(id int, counts []float64) *grouping.Group {
	n := 0
	for _, c := range counts {
		n += int(c)
	}
	client := &data.Client{ID: id, N: n, Counts: counts}
	return grouping.NewGroup(id, 0, []*data.Client{client}, len(counts))
}

// testGroups returns groups with increasing skew: g0 balanced ... g3 extreme.
func testGroups() []*grouping.Group {
	return []*grouping.Group{
		groupWithCounts(0, []float64{10, 10, 10, 10}),
		groupWithCounts(1, []float64{13, 11, 9, 7}),
		groupWithCounts(2, []float64{20, 10, 6, 4}),
		groupWithCounts(3, []float64{37, 1, 1, 1}),
	}
}

func TestProbabilitiesSumToOne(t *testing.T) {
	groups := testGroups()
	for _, m := range []Method{Random, RCoV, SRCoV, ESRCoV} {
		p := Probabilities(groups, m)
		sum := 0.0
		for _, v := range p {
			if v < 0 {
				t.Fatalf("%v: negative probability %v", m, v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("%v: probabilities sum to %v", m, sum)
		}
	}
}

func TestProbabilitiesOrderFollowsCoV(t *testing.T) {
	groups := testGroups()
	for _, m := range []Method{RCoV, SRCoV, ESRCoV} {
		p := Probabilities(groups, m)
		for i := 0; i < len(p)-1; i++ {
			if p[i] < p[i+1] {
				t.Errorf("%v: p[%d]=%v < p[%d]=%v but group %d has better CoV",
					m, i, p[i], i+1, p[i+1], i)
			}
		}
	}
}

func TestProbabilitiesEmphasisOrdering(t *testing.T) {
	// The stronger the w(), the more mass concentrates on the best group:
	// ESRCoV ≥ SRCoV ≥ RCoV ≥ Random on p[best].
	groups := testGroups()
	pr := Probabilities(groups, Random)[0]
	p1 := Probabilities(groups, RCoV)[0]
	p2 := Probabilities(groups, SRCoV)[0]
	p3 := Probabilities(groups, ESRCoV)[0]
	if !(p3 >= p2 && p2 >= p1 && p1 >= pr) {
		t.Fatalf("emphasis ordering violated: Random %v RCoV %v SRCoV %v ESRCoV %v", pr, p1, p2, p3)
	}
}

func TestESRCoVNoOverflow(t *testing.T) {
	// A perfectly balanced group has CoV 0 → reciprocal capped; must not
	// produce NaN/Inf even alongside terrible groups.
	groups := []*grouping.Group{
		groupWithCounts(0, []float64{10, 10, 10, 10}),
		groupWithCounts(1, []float64{40, 0, 0, 0}),
	}
	p := Probabilities(groups, ESRCoV)
	for _, v := range p {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("overflow in ESRCoV: %v", p)
		}
	}
	if p[0] < 0.999 {
		t.Fatalf("balanced group should dominate ESRCoV: %v", p)
	}
}

func TestRandomUniform(t *testing.T) {
	p := Probabilities(testGroups(), Random)
	for _, v := range p {
		if math.Abs(v-0.25) > 1e-12 {
			t.Fatalf("Random probabilities not uniform: %v", p)
		}
	}
}

func TestSampleDistinctAndComplete(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		p := []float64{0.4, 0.3, 0.2, 0.05, 0.05}
		got := Sample(rng, p, 3)
		if len(got) != 3 {
			return false
		}
		seen := map[int]bool{}
		for _, i := range got {
			if i < 0 || i >= len(p) || seen[i] {
				return false
			}
			seen[i] = true
		}
		return true
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSampleAllReturnsEverything(t *testing.T) {
	rng := stats.NewRNG(1)
	p := []float64{0.25, 0.25, 0.25, 0.25}
	got := Sample(rng, p, 4)
	seen := make([]bool, 4)
	for _, i := range got {
		seen[i] = true
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("index %d missing from full sample", i)
		}
	}
}

func TestSampleRespectsWeights(t *testing.T) {
	rng := stats.NewRNG(2)
	p := []float64{0.9, 0.05, 0.03, 0.02}
	first := 0
	const n = 5000
	for i := 0; i < n; i++ {
		got := Sample(rng, p, 1)
		if got[0] == 0 {
			first++
		}
	}
	if frac := float64(first) / n; frac < 0.85 || frac > 0.95 {
		t.Fatalf("heavy group drawn %.3f of the time, want ~0.9", frac)
	}
}

func TestSampleZeroMassFill(t *testing.T) {
	rng := stats.NewRNG(3)
	p := []float64{1, 0, 0}
	got := Sample(rng, p, 3)
	if len(got) != 3 {
		t.Fatalf("got %v", got)
	}
}

func TestSamplePanics(t *testing.T) {
	rng := stats.NewRNG(1)
	for _, fn := range []func(){
		func() { Sample(rng, []float64{1}, 0) },
		func() { Sample(rng, []float64{1}, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestBiasedWeightsSumToOne(t *testing.T) {
	groups := testGroups()
	p := Probabilities(groups, ESRCoV)
	w := Weights(groups, []int{0, 2}, p, 160, Biased)
	sum := 0.0
	for _, v := range w {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("biased weights sum %v", sum)
	}
	// Proportional to group data counts (both groups have 40 samples here).
	if math.Abs(w[0]-w[1]) > 1e-12 {
		t.Fatalf("equal-size groups should have equal biased weights: %v", w)
	}
}

func TestUnbiasedWeightsExpectation(t *testing.T) {
	// E[Σ_{g∈S_t} 1/(p_g S) · n_g/n · x_g] = Σ_g n_g/n x_g: check the weight
	// identity empirically with scalar "models" x_g = g's index. Groups
	// here all have CoV > 0 so no probability is floor-capped and the
	// estimator variance stays testable.
	groups := []*grouping.Group{
		groupWithCounts(0, []float64{11, 10, 10, 9}),
		groupWithCounts(1, []float64{13, 11, 9, 7}),
		groupWithCounts(2, []float64{20, 10, 6, 4}),
		groupWithCounts(3, []float64{25, 5, 6, 4}),
	}
	p := Probabilities(groups, RCoV)
	n := 0
	for _, g := range groups {
		n += g.NumSamples()
	}
	want := 0.0
	for gi, g := range groups {
		want += float64(g.NumSamples()) / float64(n) * float64(gi)
	}
	rng := stats.NewRNG(11)
	const rounds = 200000
	acc := 0.0
	for r := 0; r < rounds; r++ {
		sel := Sample(rng, p, 1) // without-replacement bias vanishes at S=1
		w := Weights(groups, sel, p, n, Unbiased)
		for i, gi := range sel {
			acc += w[i] * float64(gi)
		}
	}
	got := acc / rounds
	if math.Abs(got-want) > 0.02*math.Abs(want)+0.01 {
		t.Fatalf("unbiased estimator mean %v, want %v", got, want)
	}
}

func TestStabilizedWeightsNormalized(t *testing.T) {
	groups := testGroups()
	p := Probabilities(groups, ESRCoV)
	w := Weights(groups, []int{1, 3}, p, 160, Stabilized)
	sum := 0.0
	for _, v := range w {
		if v < 0 {
			t.Fatalf("negative stabilized weight %v", v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("stabilized weights sum %v", sum)
	}
}

func TestStabilizedDampensExplosion(t *testing.T) {
	// A selected group with tiny p_g explodes the unbiased weight; the
	// stabilized scheme caps the total at 1.
	groups := testGroups()
	p := Probabilities(groups, ESRCoV) // group 3 has ~0 probability
	sel := []int{0, 3}
	unb := Weights(groups, sel, p, 160, Unbiased)
	stab := Weights(groups, sel, p, 160, Stabilized)
	sumU, sumS := 0.0, 0.0
	for i := range sel {
		sumU += unb[i]
		sumS += stab[i]
	}
	if sumU < 10 {
		t.Fatalf("expected unbiased explosion, sum=%v", sumU)
	}
	if math.Abs(sumS-1) > 1e-12 {
		t.Fatalf("stabilized sum %v", sumS)
	}
}

func TestGammaP(t *testing.T) {
	//lint:ignore float-eq test asserts exact deterministic output
	if got := GammaP([]float64{0.5, 0.5}); got != 4 {
		t.Fatalf("GammaP uniform = %v, want 4", got)
	}
	// More uneven p → larger Γ_p (second key observation).
	uneven := GammaP([]float64{0.9, 0.1})
	if uneven <= 4 {
		t.Fatalf("uneven GammaP %v should exceed uniform 4", uneven)
	}
	if !math.IsInf(GammaP([]float64{1, 0}), 1) {
		t.Fatal("zero probability should give infinite GammaP")
	}
}

func TestMethodAndSchemeStrings(t *testing.T) {
	if Random.String() != "Random" || RCoV.String() != "RCoV" ||
		SRCoV.String() != "SRCoV" || ESRCoV.String() != "ESRCoV" {
		t.Fatal("method names wrong")
	}
	if Biased.String() != "Biased" || Unbiased.String() != "Unbiased" || Stabilized.String() != "Stabilized" {
		t.Fatal("scheme names wrong")
	}
}
