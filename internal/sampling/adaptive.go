package sampling

import (
	"fmt"
	"math"
)

// Adaptive is the heterogeneity-guided online re-estimator of the group
// selection probabilities (Chen & Vikalo; Fraboni et al. — PAPERS.md): an
// EWMA of each group's observed update norm replaces the static CoV-derived
// utility as evidence accumulates. Round 0 — before anything is observed —
// returns the paper's base vector exactly, so an adaptive run and a static
// run diverge only once data justifies it. Unseen groups are imputed the
// mean observed norm scaled by their base-probability share, so fresh
// groups are neither starved nor overfed while they wait for their first
// selection.
//
// The estimator is fully deterministic (no internal RNG — the Sampler
// consumes the probabilities it emits) and checkpointable via
// Export/Restore, which is what keeps buffered-async kill-and-resume
// bit-identical under adaptive sampling.
type Adaptive struct {
	cfg   AdaptiveConfig
	norms []float64
	seen  []bool
	mixed []float64
}

// AdaptiveConfig parameterizes the online estimator.
type AdaptiveConfig struct {
	// Beta is the EWMA gain on new observations:
	// u_g ← (1-Beta)·u_g + Beta·‖Δ_g‖. The first observation seeds the
	// average directly.
	Beta float64
	// Explore mixes a uniform floor into the adapted distribution:
	// p = (1-Explore)·normalize(u) + Explore·uniform, keeping every group
	// selectable no matter how small its observed norms.
	Explore float64
}

// Validate rejects gains and floors outside their stable ranges.
func (c AdaptiveConfig) Validate() error {
	switch {
	case c.Beta <= 0 || c.Beta > 1 || math.IsNaN(c.Beta):
		return fmt.Errorf("sampling: adaptive Beta must be in (0,1], got %v", c.Beta)
	case c.Explore < 0 || c.Explore >= 1 || math.IsNaN(c.Explore):
		return fmt.Errorf("sampling: adaptive Explore must be in [0,1), got %v", c.Explore)
	}
	return nil
}

// AdaptiveState is the estimator's checkpointable state: the per-group
// EWMA values and their seen flags, aligned with the group list.
type AdaptiveState struct {
	Norms []float64
	Seen  []bool
}

// NewAdaptive builds an estimator for n groups with no observations yet.
func NewAdaptive(cfg AdaptiveConfig, n int) *Adaptive {
	a := &Adaptive{cfg: cfg}
	a.Reset(n)
	return a
}

// Reset discards all observations and resizes to n groups — regrouping
// invalidates the group identities the EWMAs are keyed by.
func (a *Adaptive) Reset(n int) {
	a.norms = make([]float64, n)
	a.seen = make([]bool, n)
	a.mixed = make([]float64, n)
}

// Observe folds one group's observed update norm into its EWMA. g indexes
// the current formation's group list.
func (a *Adaptive) Observe(g int, norm float64) {
	if g < 0 || g >= len(a.norms) {
		return
	}
	if !a.seen[g] {
		a.norms[g] = norm
		a.seen[g] = true
		return
	}
	a.norms[g] = (1-a.cfg.Beta)*a.norms[g] + a.cfg.Beta*norm
}

// Mix returns the selection probabilities for the next round: the base
// (CoV-derived) vector verbatim until the first observation, then the
// normalized utility estimates with the exploration floor. The returned
// slice is reused across calls; callers must not retain it.
func (a *Adaptive) Mix(base []float64) []float64 {
	n := len(base)
	if n != len(a.norms) {
		// Formation changed without a Reset — refuse to guess.
		panic(fmt.Sprintf("sampling: adaptive sized for %d groups, formation has %d", len(a.norms), n))
	}
	anySeen := false
	seenSum, seenCount := 0.0, 0
	baseSum := 0.0
	for g := 0; g < n; g++ {
		baseSum += base[g]
		if a.seen[g] {
			anySeen = true
			seenSum += a.norms[g]
			seenCount++
		}
	}
	if !anySeen {
		return base
	}
	meanSeen := seenSum / float64(seenCount)
	meanBase := baseSum / float64(n)
	total := 0.0
	for g := 0; g < n; g++ {
		u := a.norms[g]
		if !a.seen[g] {
			// Impute: the mean observed utility, scaled by the group's
			// base-probability share, so the static prior still orders the
			// unexplored groups.
			u = meanSeen * base[g] / meanBase
		}
		a.mixed[g] = u
		total += u
	}
	if total <= 0 || math.IsNaN(total) || math.IsInf(total, 0) {
		return base
	}
	uniform := 1 / float64(n)
	for g := 0; g < n; g++ {
		a.mixed[g] = (1-a.cfg.Explore)*(a.mixed[g]/total) + a.cfg.Explore*uniform
	}
	return a.mixed
}

// Export snapshots the estimator state for a checkpoint.
func (a *Adaptive) Export() AdaptiveState {
	return AdaptiveState{
		Norms: append([]float64(nil), a.norms...),
		Seen:  append([]bool(nil), a.seen...),
	}
}

// Restore replaces the estimator state from a checkpoint.
func (a *Adaptive) Restore(st AdaptiveState) error {
	if len(st.Norms) != len(st.Seen) {
		return fmt.Errorf("sampling: adaptive state shape %d norms / %d seen", len(st.Norms), len(st.Seen))
	}
	a.norms = append([]float64(nil), st.Norms...)
	a.seen = append([]bool(nil), st.Seen...)
	a.mixed = make([]float64, len(st.Norms))
	return nil
}
