package sampling

import (
	"math"
	"testing"
)

func TestAdaptiveRoundZeroFallsBackToBase(t *testing.T) {
	a := NewAdaptive(AdaptiveConfig{Beta: 0.3, Explore: 0.1}, 4)
	base := []float64{0.4, 0.3, 0.2, 0.1}
	got := a.Mix(base)
	for i := range base {
		//lint:ignore float-eq the contract is the base vector verbatim
		if got[i] != base[i] {
			t.Fatalf("round-0 mix[%d] = %v, want base %v exactly", i, got[i], base[i])
		}
	}
}

func TestAdaptiveObserveShiftsMass(t *testing.T) {
	a := NewAdaptive(AdaptiveConfig{Beta: 0.5}, 3)
	base := []float64{1.0 / 3, 1.0 / 3, 1.0 / 3}
	a.Observe(0, 10)
	a.Observe(1, 1)
	a.Observe(2, 1)
	p := a.Mix(base)
	if p[0] <= p[1] || p[0] <= p[2] {
		t.Fatalf("high-norm group not favored: %v", p)
	}
	sum := p[0] + p[1] + p[2]
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("mix does not normalize: sum %v", sum)
	}
	// EWMA: a second, smaller observation pulls the estimate down.
	before := a.Mix(base)[0]
	a.Observe(0, 1)
	if after := a.Mix(base)[0]; after >= before {
		t.Fatalf("EWMA did not decay: %v -> %v", before, after)
	}
}

func TestAdaptiveUnseenImputation(t *testing.T) {
	a := NewAdaptive(AdaptiveConfig{Beta: 0.5}, 3)
	base := []float64{0.6, 0.3, 0.1}
	a.Observe(1, 5)
	p := a.Mix(base)
	// Unseen groups inherit the mean observed norm scaled by their base
	// share, so the prior's ordering between them survives.
	if p[0] <= p[2] {
		t.Fatalf("base ordering of unseen groups lost: %v", p)
	}
	for i, v := range p {
		if v <= 0 {
			t.Fatalf("p[%d] = %v, want > 0", i, v)
		}
	}
}

func TestAdaptiveExploreFloor(t *testing.T) {
	explore := 0.2
	a := NewAdaptive(AdaptiveConfig{Beta: 0.5, Explore: explore}, 4)
	base := []float64{0.25, 0.25, 0.25, 0.25}
	a.Observe(0, 1000)
	a.Observe(1, 0)
	a.Observe(2, 0)
	a.Observe(3, 0)
	p := a.Mix(base)
	floor := explore / 4
	for i, v := range p {
		if v < floor-1e-12 {
			t.Fatalf("p[%d] = %v below exploration floor %v", i, v, floor)
		}
	}
}

func TestAdaptiveAllZeroNormsFallBack(t *testing.T) {
	a := NewAdaptive(AdaptiveConfig{Beta: 0.5}, 2)
	base := []float64{0.7, 0.3}
	a.Observe(0, 0)
	a.Observe(1, 0)
	p := a.Mix(base)
	for i := range base {
		//lint:ignore float-eq degenerate evidence must return base verbatim
		if p[i] != base[i] {
			t.Fatalf("zero-evidence mix %v, want base %v", p, base)
		}
	}
}

func TestAdaptiveExportRestoreRoundTrip(t *testing.T) {
	a := NewAdaptive(AdaptiveConfig{Beta: 0.3, Explore: 0.05}, 3)
	base := []float64{0.5, 0.3, 0.2}
	a.Observe(0, 2)
	a.Observe(2, 7)
	st := a.Export()

	b := NewAdaptive(AdaptiveConfig{Beta: 0.3, Explore: 0.05}, 3)
	if err := b.Restore(st); err != nil {
		t.Fatal(err)
	}
	pa, pb := a.Mix(base), b.Mix(base)
	for i := range pa {
		//lint:ignore float-eq restore must be bit-exact for replay
		if pa[i] != pb[i] {
			t.Fatalf("restored mix diverges at %d: %v vs %v", i, pa[i], pb[i])
		}
	}
	// The snapshot is a copy, not an alias.
	st.Norms[0] = 999
	if pc := a.Mix(base); math.Float64bits(pc[0]) != math.Float64bits(pa[0]) {
		t.Fatal("Export aliased internal state")
	}
	if err := b.Restore(AdaptiveState{Norms: []float64{1}, Seen: []bool{true, false}}); err == nil {
		t.Fatal("mismatched state shape restored without error")
	}
}

func TestAdaptiveResetAndSizeMismatch(t *testing.T) {
	a := NewAdaptive(AdaptiveConfig{Beta: 0.5}, 2)
	a.Observe(0, 3)
	a.Reset(3)
	base := []float64{0.5, 0.3, 0.2}
	p := a.Mix(base)
	for i := range base {
		//lint:ignore float-eq reset discards evidence, base verbatim again
		if p[i] != base[i] {
			t.Fatalf("post-reset mix %v, want base %v", p, base)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("size mismatch did not panic")
		}
	}()
	a.Mix([]float64{0.5, 0.5})
}

func TestAdaptiveConfigValidate(t *testing.T) {
	bad := []AdaptiveConfig{
		{Beta: 0}, {Beta: -0.1}, {Beta: 1.5},
		{Beta: 0.5, Explore: -0.1}, {Beta: 0.5, Explore: 1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d (%+v): accepted", i, c)
		}
	}
	if err := (AdaptiveConfig{Beta: 1, Explore: 0}).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}
