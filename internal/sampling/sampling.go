// Package sampling implements the group sampling half of the paper's core
// contribution (Sec. 6): CoV-prioritized sampling probabilities (Eq. 34 with
// w(x) ∈ {x, x², e^{x²}}), weighted sampling without replacement, and the
// three aggregation weight schemes — biased (Alg. 1 line 15), unbiased with
// the 1/(p_g·S) correction (Eq. 4), and the stabilized normalization that
// reconciles the two (Eq. 35).
package sampling

import (
	"fmt"
	"math"

	"repro/internal/grouping"
	"repro/internal/stats"
)

// Method identifies a sampling probability scheme.
type Method int

// Sampling methods from the paper's Sec. 6.1 (plus uniform Random).
const (
	// Random samples groups uniformly.
	Random Method = iota
	// RCoV weights groups by w(x)=x of the reciprocal CoV.
	RCoV
	// SRCoV weights by w(x)=x² — a stronger CoV emphasis.
	SRCoV
	// ESRCoV weights by w(x)=e^{x²} — near top-k selection of the
	// best-CoV groups; the paper's default for Group-FEL.
	ESRCoV
)

// String returns the method name used in experiment output.
func (m Method) String() string {
	switch m {
	case Random:
		return "Random"
	case RCoV:
		return "RCoV"
	case SRCoV:
		return "SRCoV"
	case ESRCoV:
		return "ESRCoV"
	}
	return fmt.Sprintf("Method(%d)", int(m))
}

// covFloor keeps 1/CoV finite for perfectly balanced groups. The resulting
// cap on the reciprocal (1e3) is far above any realistic separation between
// groups, so the prioritization order is unaffected.
const covFloor = 1e-3

// Probabilities computes the sampling probability vector p over groups
// (Eq. 34): p_g = w(1/CoV(g)) / Σ w(1/CoV(g)). ESRCoV is evaluated in
// log-space so extreme reciprocals cannot overflow. The returned vector
// sums to 1.
//
//lint:deterministic
func Probabilities(groups []*grouping.Group, m Method) []float64 {
	if len(groups) == 0 {
		return nil
	}
	p := make([]float64, len(groups))
	switch m {
	case Random:
		u := 1 / float64(len(groups))
		for i := range p {
			p[i] = u
		}
		return p
	case RCoV, SRCoV:
		sum := 0.0
		for i, g := range groups {
			x := 1 / math.Max(g.CoV(), covFloor)
			if m == SRCoV {
				x *= x
			}
			p[i] = x
			sum += x
		}
		for i := range p {
			p[i] /= sum
		}
		return p
	case ESRCoV:
		// log w = x²; normalize via the max exponent to avoid overflow.
		logw := make([]float64, len(groups))
		maxLog := math.Inf(-1)
		for i, g := range groups {
			x := 1 / math.Max(g.CoV(), covFloor)
			logw[i] = x * x
			if logw[i] > maxLog {
				maxLog = logw[i]
			}
		}
		sum := 0.0
		for i := range p {
			p[i] = math.Exp(logw[i] - maxLog)
			sum += p[i]
		}
		for i := range p {
			p[i] /= sum
		}
		return p
	}
	panic(fmt.Sprintf("sampling: unknown method %d", int(m)))
}

// Sample draws s distinct group indices without replacement, each draw
// proportional to the remaining probability mass. It panics if s exceeds
// the number of groups with positive probability is insufficient; indices
// with zero probability are never drawn unless required to fill s.
//
// Each call allocates O(len(p)) scratch; round loops that sample every
// global round should hold a Sampler instead, whose scratch persists across
// calls.
//
//lint:deterministic
func Sample(rng *stats.RNG, p []float64, s int) []int {
	var sp Sampler
	return sp.Sample(rng, p, s)
}

// Sampler is the reusable-scratch form of Sample. The zero value is ready
// to use; after the first call, subsequent calls over populations of the
// same size allocate nothing, which keeps a training round's memory
// independent of the group count (a million-client population can carry
// hundreds of thousands of groups). Not safe for concurrent use.
type Sampler struct {
	w   []float64
	out []int
}

// Sample is identical to the package-level Sample — same draw sequence from
// rng, same result — but the returned slice aliases the Sampler's scratch
// and is only valid until the next call.
//
//lint:deterministic
func (sp *Sampler) Sample(rng *stats.RNG, p []float64, s int) []int {
	if s <= 0 {
		panic("sampling: sample size must be positive")
	}
	if s > len(p) {
		panic(fmt.Sprintf("sampling: cannot draw %d from %d groups", s, len(p)))
	}
	if cap(sp.w) < len(p) {
		sp.w = make([]float64, len(p))
	}
	w := sp.w[:len(p)]
	copy(w, p)
	if cap(sp.out) < s {
		sp.out = make([]int, 0, s)
	}
	out := sp.out[:0]
	for len(out) < s {
		total := 0.0
		for _, v := range w {
			total += v
		}
		if total <= 0 {
			// All remaining mass is zero: fill uniformly from the unchosen.
			for i := range w {
				//lint:ignore float-eq already-drawn groups are zeroed with an exact 0 sentinel
				if w[i] == 0 && !contains(out, i) {
					w[i] = 1
				}
			}
			continue
		}
		i := rng.Categorical(w)
		out = append(out, i)
		w[i] = 0
	}
	sp.out = out
	return out
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// WeightScheme selects how selected group updates are combined at the cloud.
type WeightScheme int

// Aggregation weight schemes (paper Sec. 3.1 and 6.2).
const (
	// Biased weights each selected group by n_g/n_t over the selected set
	// (Alg. 1 line 15). Prioritized sampling then biases the model toward
	// well-distributed groups — the paper's deliberate default.
	Biased WeightScheme = iota
	// Unbiased applies the 1/(p_g·S) correction of Eq. 4. Numerically
	// unstable when some p_g are tiny.
	Unbiased
	// Stabilized normalizes the unbiased weights to sum to one (Eq. 35),
	// trading exact unbiasedness for stability.
	Stabilized
)

// String returns the scheme name.
func (w WeightScheme) String() string {
	switch w {
	case Biased:
		return "Biased"
	case Unbiased:
		return "Unbiased"
	case Stabilized:
		return "Stabilized"
	}
	return fmt.Sprintf("WeightScheme(%d)", int(w))
}

// Weights computes the per-selected-group aggregation weights.
//   - selected: indices into groups of the sampled set S_t,
//   - p: the sampling probability vector over all groups,
//   - totalSamples: n, the global data count over all groups.
//
// For Biased the weights sum to 1 by construction; for Stabilized they are
// normalized to 1 (Eq. 35); for Unbiased they are returned raw and their sum
// is only 1 in expectation.
//
//lint:deterministic
func Weights(groups []*grouping.Group, selected []int, p []float64, totalSamples int, scheme WeightScheme) []float64 {
	if totalSamples <= 0 {
		panic("sampling: totalSamples must be positive")
	}
	out := make([]float64, len(selected))
	switch scheme {
	case Biased:
		nt := 0
		for _, gi := range selected {
			nt += groups[gi].NumSamples()
		}
		if nt == 0 {
			panic("sampling: selected groups hold no data")
		}
		for i, gi := range selected {
			out[i] = float64(groups[gi].NumSamples()) / float64(nt)
		}
		return out
	case Unbiased, Stabilized:
		s := float64(len(selected))
		n := float64(totalSamples)
		sum := 0.0
		for i, gi := range selected {
			// A selected group can carry vanishing probability (ESRCoV
			// drives the worst groups' mass to ~0, and Sample backfills
			// zero-mass groups when s demands it). Flooring p_g keeps the
			// correction finite; this is exactly the instability Eq. 35's
			// normalization then absorbs.
			pg := math.Max(p[gi], 1e-12)
			out[i] = (1 / (pg * s)) * (float64(groups[gi].NumSamples()) / n)
			sum += out[i]
		}
		if scheme == Stabilized {
			if sum <= 0 {
				panic("sampling: stabilized weight sum is zero")
			}
			for i := range out {
				out[i] /= sum
			}
		}
		return out
	}
	panic(fmt.Sprintf("sampling: unknown scheme %d", int(scheme)))
}

// GammaP returns Γ_p = Σ_g 1/p_g (Eq. 12), the sampling-spread factor in
// the convergence bound. Larger values (more uneven sampling) slow
// convergence of the unbiased aggregation.
func GammaP(p []float64) float64 {
	s := 0.0
	for _, pg := range p {
		if pg <= 0 {
			return math.Inf(1)
		}
		s += 1 / pg
	}
	return s
}
