// Package compress implements the update-compression techniques the paper
// discusses as the communication-side alternative for cost reduction
// (Sec. 2.3, refs [26, 27]): top-k sparsification with error feedback, and
// stochastic uniform quantization (QSGD-style). Both operate on update
// deltas and report their wire size, so experiments can trade accuracy
// against bytes alongside the Eq. 5 compute cost.
package compress

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/stats"
)

// Compressed is an encoded update that knows its wire size.
type Compressed interface {
	// Decode reconstructs a dense vector of the original dimension.
	Decode() []float64
	// Bytes returns the encoded wire size.
	Bytes() int
}

// Compressor encodes update vectors. Implementations may be stateful
// (error feedback); use one instance per client.
type Compressor interface {
	Name() string
	Compress(update []float64) Compressed
}

// ---------------------------------------------------------------- top-k --

// TopK keeps the k largest-magnitude coordinates and accumulates the
// dropped mass into a residual that is added to the next update (error
// feedback), which is what makes aggressive sparsification converge.
type TopK struct {
	// K is the number of coordinates kept per update.
	K        int
	residual []float64
}

// NewTopK returns a top-k compressor keeping k coordinates.
func NewTopK(k int) *TopK {
	if k <= 0 {
		panic("compress: K must be positive")
	}
	return &TopK{K: k}
}

// Name returns "topk".
func (t *TopK) Name() string { return "topk" }

// Sparse is a sparse-encoded update.
type Sparse struct {
	Dim     int
	Indices []int32
	Values  []float64
}

// Decode scatters the kept coordinates into a dense vector.
func (s Sparse) Decode() []float64 {
	out := make([]float64, s.Dim)
	for i, idx := range s.Indices {
		out[idx] = s.Values[i]
	}
	return out
}

// Bytes is 4 bytes per index + 8 per value.
func (s Sparse) Bytes() int { return 4*len(s.Indices) + 8*len(s.Values) }

// Compress applies error feedback then keeps the top-k coordinates.
func (t *TopK) Compress(update []float64) Compressed {
	n := len(update)
	if t.residual == nil {
		t.residual = make([]float64, n)
	}
	if len(t.residual) != n {
		panic(fmt.Sprintf("compress: dimension changed %d -> %d", len(t.residual), n))
	}
	work := make([]float64, n)
	for i, v := range update {
		work[i] = v + t.residual[i]
	}
	k := t.K
	if k > n {
		k = n
	}
	// Select the k largest |work[i]| indices.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		return math.Abs(work[idx[a]]) > math.Abs(work[idx[b]])
	})
	out := Sparse{Dim: n, Indices: make([]int32, k), Values: make([]float64, k)}
	kept := make([]bool, n)
	for i := 0; i < k; i++ {
		j := idx[i]
		out.Indices[i] = int32(j)
		out.Values[i] = work[j]
		kept[j] = true
	}
	for i := range t.residual {
		if kept[i] {
			t.residual[i] = 0
		} else {
			t.residual[i] = work[i]
		}
	}
	return out
}

// ----------------------------------------------------------- quantizer --

// Uniform is a QSGD-style stochastic uniform quantizer: values are scaled
// by the max-norm, mapped to 2^Bits−1 levels with probabilistic rounding
// (unbiased), and shipped as small integers plus one scale.
type Uniform struct {
	// Bits per coordinate (1..16).
	Bits int
	rng  *stats.RNG
}

// NewUniform returns a b-bit stochastic quantizer.
func NewUniform(bits int, seed uint64) *Uniform {
	if bits < 1 || bits > 16 {
		panic("compress: Bits must be in [1, 16]")
	}
	return &Uniform{Bits: bits, rng: stats.NewRNG(seed)}
}

// Name returns "qN" for N bits.
func (u *Uniform) Name() string { return fmt.Sprintf("q%d", u.Bits) }

// Quantized is a uniform-quantized update.
type Quantized struct {
	Dim    int
	Scale  float64
	Bits   int
	Levels []int32 // signed level per coordinate
}

// Decode rescales levels back to floats.
func (q Quantized) Decode() []float64 {
	out := make([]float64, q.Dim)
	lv := int32(1)<<(q.Bits-1) - 1
	if lv == 0 {
		lv = 1
	}
	levels := float64(lv)
	for i, l := range q.Levels {
		out[i] = q.Scale * float64(l) / levels
	}
	return out
}

// Bytes charges ceil(Bits/8) per coordinate plus the 8-byte scale.
func (q Quantized) Bytes() int {
	perCoord := (q.Bits + 7) / 8
	return 8 + perCoord*q.Dim
}

// Compress quantizes with unbiased stochastic rounding.
func (u *Uniform) Compress(update []float64) Compressed {
	n := len(update)
	scale := 0.0
	for _, v := range update {
		if a := math.Abs(v); a > scale {
			scale = a
		}
	}
	out := Quantized{Dim: n, Scale: scale, Bits: u.Bits, Levels: make([]int32, n)}
	//lint:ignore float-eq an all-zero update has exactly zero max magnitude; any nonzero scale quantizes fine
	if scale == 0 {
		return out
	}
	lv := int32(1)<<(u.Bits-1) - 1
	if lv == 0 {
		lv = 1
	}
	levels := float64(lv)
	for i, v := range update {
		x := v / scale * levels // in [-levels, levels]
		lo := math.Floor(x)
		frac := x - lo
		l := lo
		if u.rng.Float64() < frac {
			l = lo + 1
		}
		out.Levels[i] = int32(l)
	}
	return out
}

// Identity passes updates through unchanged (the no-compression baseline
// with an honest byte count).
type Identity struct{}

// Name returns "none".
func (Identity) Name() string { return "none" }

// DenseUpdate wraps an uncompressed vector.
type DenseUpdate []float64

// Decode returns a copy of the vector.
func (d DenseUpdate) Decode() []float64 { return append([]float64(nil), d...) }

// Bytes is 8 per coordinate.
func (d DenseUpdate) Bytes() int { return 8 * len(d) }

// Compress copies the update.
func (Identity) Compress(update []float64) Compressed {
	return DenseUpdate(append([]float64(nil), update...))
}
