package compress

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestTopKKeepsLargest(t *testing.T) {
	c := NewTopK(2)
	out := c.Compress([]float64{0.1, -5, 0.3, 4, -0.2})
	dec := out.Decode()
	//lint:ignore float-eq test asserts exact deterministic output
	if dec[1] != -5 || dec[3] != 4 {
		t.Fatalf("top-2 wrong: %v", dec)
	}
	for _, i := range []int{0, 2, 4} {
		//lint:ignore float-eq test asserts exact deterministic output
		if dec[i] != 0 {
			t.Fatalf("non-top coordinate kept: %v", dec)
		}
	}
}

func TestTopKErrorFeedbackConserves(t *testing.T) {
	// Summed over rounds, error feedback delivers (almost) the full signal:
	// compressing a constant vector repeatedly must transmit every
	// coordinate's cumulative mass.
	c := NewTopK(1)
	update := []float64{1, 0.5, 0.25}
	total := make([]float64, 3)
	const rounds = 60
	for r := 0; r < rounds; r++ {
		dec := c.Compress(update).Decode()
		for i, v := range dec {
			total[i] += v
		}
	}
	for i, v := range update {
		want := v * rounds
		if math.Abs(total[i]-want) > want*0.2+1 {
			t.Fatalf("coordinate %d delivered %v of %v", i, total[i], want)
		}
	}
}

func TestTopKBytesSmaller(t *testing.T) {
	c := NewTopK(10)
	update := make([]float64, 1000)
	for i := range update {
		update[i] = float64(i)
	}
	out := c.Compress(update)
	if out.Bytes() >= (Identity{}).Compress(update).Bytes()/10 {
		t.Fatalf("top-10 of 1000 should be tiny: %d bytes", out.Bytes())
	}
}

func TestTopKDimensionChangePanics(t *testing.T) {
	c := NewTopK(1)
	c.Compress(make([]float64, 4))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Compress(make([]float64, 5))
}

func TestTopKKLargerThanDim(t *testing.T) {
	c := NewTopK(100)
	update := []float64{1, 2, 3}
	dec := c.Compress(update).Decode()
	for i, v := range update {
		//lint:ignore float-eq test asserts exact deterministic output
		if dec[i] != v {
			t.Fatal("k >= dim should be lossless")
		}
	}
}

func TestUniformUnbiased(t *testing.T) {
	// Stochastic rounding: the expected decode equals the input.
	u := NewUniform(4, 1)
	update := []float64{0.7, -0.3, 0.11, -0.99}
	sum := make([]float64, len(update))
	const rounds = 4000
	for r := 0; r < rounds; r++ {
		dec := u.Compress(update).Decode()
		for i, v := range dec {
			sum[i] += v
		}
	}
	for i, v := range update {
		mean := sum[i] / rounds
		if math.Abs(mean-v) > 0.02 {
			t.Fatalf("coordinate %d mean %v, want %v", i, mean, v)
		}
	}
}

func TestUniformHighBitsAccurate(t *testing.T) {
	u := NewUniform(16, 2)
	rng := stats.NewRNG(3)
	update := make([]float64, 100)
	for i := range update {
		update[i] = rng.Normal(0, 1)
	}
	dec := u.Compress(update).Decode()
	for i := range update {
		if math.Abs(dec[i]-update[i]) > 1e-3*math.Abs(update[i])+1e-3 {
			t.Fatalf("16-bit decode too lossy at %d: %v vs %v", i, dec[i], update[i])
		}
	}
}

func TestUniformBytes(t *testing.T) {
	u := NewUniform(8, 4)
	update := make([]float64, 100)
	out := u.Compress(update)
	if out.Bytes() != 8+100 {
		t.Fatalf("8-bit bytes = %d, want 108", out.Bytes())
	}
	if (Identity{}).Compress(update).Bytes() != 800 {
		t.Fatal("dense bytes wrong")
	}
}

func TestUniformZeroVector(t *testing.T) {
	u := NewUniform(8, 5)
	dec := u.Compress(make([]float64, 10)).Decode()
	for _, v := range dec {
		//lint:ignore float-eq test asserts exact deterministic output
		if v != 0 {
			t.Fatal("zero vector must decode to zero")
		}
	}
}

func TestIdentityRoundTrip(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		update := make([]float64, 16)
		for i := range update {
			update[i] = rng.Normal(0, 3)
		}
		dec := (Identity{}).Compress(update).Decode()
		for i := range update {
			//lint:ignore float-eq test asserts exact deterministic output
			if dec[i] != update[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Fatal(err)
	}
}

func TestConstructorsPanic(t *testing.T) {
	for _, fn := range []func(){
		func() { NewTopK(0) },
		func() { NewUniform(0, 1) },
		func() { NewUniform(17, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestNames(t *testing.T) {
	if NewTopK(3).Name() != "topk" || NewUniform(8, 1).Name() != "q8" || (Identity{}).Name() != "none" {
		t.Fatal("names wrong")
	}
}
