// Package theory evaluates the right-hand side of the paper's convergence
// bound (Theorem 1) for concrete system configurations. It does not prove
// anything — it makes the bound's structure executable so experiments can
// report how the γ, Γ, Γ_p and ζ_g factors move as grouping and sampling
// choices change, and tests can check the bound's qualitative predictions
// (larger group heterogeneity or sampling spread ⇒ larger bound).
package theory

import (
	"math"

	"repro/internal/grouping"
	"repro/internal/sampling"
	"repro/internal/stats"
)

// Params collects the problem constants of Theorem 1.
type Params struct {
	// Eta is the local learning rate η.
	Eta float64
	// T, K, E are the global, group, and local round counts.
	T, K, E int
	// L is the smoothness constant (Assumption 2).
	L float64
	// Sigma2 is the local gradient variance bound σ² (Assumption 1).
	Sigma2 float64
	// Zeta2 is the client heterogeneity bound ζ² (Assumption 3).
	Zeta2 float64
	// ZetaG2 is the group heterogeneity bound ζ_g² (Assumption 4).
	ZetaG2 float64
	// F0MinusFStar bounds f(x₀) − E[f(x_T)].
	F0MinusFStar float64
	// S is the number of sampled groups |S_t|.
	S int
	// Gamma is the within-group data dispersion γ (Eq. 11).
	Gamma float64
	// GammaBig is the across-group dispersion Γ (Eq. 12).
	GammaBig float64
	// GammaP is the sampling spread Γ_p ≥ Σ 1/p_g (Eq. 12).
	GammaP float64
	// GroupSize is the (average) group size |g| appearing in Eq. 17.
	GroupSize float64
}

// Lambdas holds the derived constants of Eq. 13–17.
type Lambdas struct {
	Lambda1, Lambda2, Lambda3, Lambda4 float64
	LambdaS, LambdaSigma, LambdaF      float64
}

// Derive computes the λ constants from the parameters per Eq. 13–17.
func Derive(p Params) Lambdas {
	eta, k, e, l := p.Eta, float64(p.K), float64(p.E), p.L
	gs := p.GroupSize
	if gs <= 0 {
		gs = 1
	}
	var out Lambdas
	out.LambdaSigma = 5 * k * eta * eta * e * e *
		(1 + ((1+6*k)*e+9*k)*10*eta*eta*e*l*l + 18*k/(gs*e))
	out.Lambda2 = 3*out.LambdaSigma*p.Gamma*l*l + 5*eta*eta*e*e*l*l
	out.Lambda3 = 2700 * math.Pow(eta, 4) * p.Gamma * k * k * math.Pow(e, 4) * l * l
	out.Lambda4 = 90 * eta * eta * k * k * e * e * l * l
	out.LambdaF = 30 * eta * eta * k * k * (1 + 90*p.Gamma*eta*eta*e*e*l*l)
	out.LambdaS = eta * p.Gamma * p.GammaBig * k * k * (1 + 10*eta*eta*e*e*l*l*p.Sigma2)
	out.Lambda1 = 0.5 - 3*out.LambdaF*eta*p.Gamma*p.GammaBig*k*e*l*l
	return out
}

// Bound evaluates the Theorem 1 right-hand side: the bound on the average
// squared gradient norm over T rounds. It returns +Inf when the step-size
// condition λ₁ > 0 (Eq. 14) fails, i.e. the learning rate is too large for
// the bound to apply.
func Bound(p Params) float64 {
	lam := Derive(p)
	if lam.Lambda1 <= 0 {
		return math.Inf(1)
	}
	t, k, e := float64(p.T), float64(p.K), float64(p.E)
	term1 := p.F0MinusFStar / (lam.Lambda1 * p.Eta * t * k * e)
	term2 := lam.LambdaS * (p.GammaP / float64(p.S)) / (lam.Lambda1 * t * k * e)
	term3 := p.Gamma * p.GammaBig * (lam.Lambda2*p.Sigma2 + lam.Lambda3*p.Zeta2 + lam.Lambda4*p.ZetaG2) /
		(lam.Lambda1 * t)
	return term1 + term2 + term3
}

// StepSizeOK reports whether η satisfies the Eq. 18 condition
// η² ≤ η/(2KE), i.e. η ≤ 1/(2KE).
func StepSizeOK(p Params) bool {
	return p.Eta <= 1/(2*float64(p.K)*float64(p.E))
}

// FromSystem fills the structural factors of Params (γ, Γ, Γ_p, ζ_g proxy)
// from an actual grouping and sampling configuration, leaving the loss
// constants to the caller. The ζ_g² proxy is the data-weighted mean squared
// CoV of the groups — not the true heterogeneity constant (which is not
// computable; Sec. 4.3), but ordered the same way by construction of the
// CoV criterion.
func FromSystem(groups []*grouping.Group, p []float64, base Params) Params {
	out := base
	// γ: average over groups of 1 + CoV²(client sample counts).
	gsum := 0.0
	for _, g := range groups {
		gsum += g.Gamma()
	}
	if len(groups) > 0 {
		out.Gamma = gsum / float64(len(groups))
		sizes := 0
		for _, g := range groups {
			sizes += g.Size()
		}
		out.GroupSize = float64(sizes) / float64(len(groups))
	}
	// Γ: |G|²[1/|G|² + Var(n_g/n)].
	ngs := make([]float64, len(groups))
	total := 0.0
	for i, g := range groups {
		ngs[i] = float64(g.NumSamples())
		total += ngs[i]
	}
	if total > 0 {
		fr := make([]float64, len(ngs))
		for i, v := range ngs {
			fr[i] = v / total
		}
		gg := float64(len(groups))
		out.GammaBig = gg * gg * (1/(gg*gg) + stats.Variance(fr))
	}
	out.GammaP = sampling.GammaP(p)
	// ζ_g² proxy: data-weighted mean squared group CoV.
	if total > 0 {
		z := 0.0
		for _, g := range groups {
			c := g.CoV()
			z += float64(g.NumSamples()) / total * c * c
		}
		out.ZetaG2 = z
	}
	return out
}
