package theory

import (
	"math"
	"testing"

	"repro/internal/data"
	"repro/internal/grouping"
	"repro/internal/sampling"
	"repro/internal/stats"
)

func baseParams() Params {
	return Params{
		Eta: 0.01, T: 100, K: 5, E: 2,
		L: 1, Sigma2: 1, Zeta2: 1, ZetaG2: 0.5,
		F0MinusFStar: 10, S: 12,
		Gamma: 1.2, GammaBig: 1.1, GammaP: 100, GroupSize: 6,
	}
}

func TestBoundFinitePositive(t *testing.T) {
	b := Bound(baseParams())
	if math.IsInf(b, 0) || math.IsNaN(b) || b <= 0 {
		t.Fatalf("bound = %v", b)
	}
}

func TestBoundDecreasesWithT(t *testing.T) {
	p := baseParams()
	short := Bound(p)
	p.T = 1000
	long := Bound(p)
	if long >= short {
		t.Fatalf("more rounds should tighten the bound: T=100 %v vs T=1000 %v", short, long)
	}
}

func TestBoundIncreasesWithGroupHeterogeneity(t *testing.T) {
	// First key observation: larger ζ_g ⇒ slower convergence.
	p := baseParams()
	low := Bound(p)
	p.ZetaG2 = 5
	high := Bound(p)
	if high <= low {
		t.Fatalf("larger zeta_g should loosen the bound: %v vs %v", low, high)
	}
}

func TestBoundIncreasesWithSamplingSpread(t *testing.T) {
	// Second key observation: larger Γ_p ⇒ slower convergence.
	p := baseParams()
	low := Bound(p)
	p.GammaP = 10000
	high := Bound(p)
	if high <= low {
		t.Fatalf("larger GammaP should loosen the bound: %v vs %v", low, high)
	}
}

func TestBoundIncreasesWithGamma(t *testing.T) {
	// Third key observation: larger γ ⇒ slower convergence.
	p := baseParams()
	low := Bound(p)
	p.Gamma = 3
	high := Bound(p)
	if high <= low {
		t.Fatalf("larger gamma should loosen the bound: %v vs %v", low, high)
	}
}

func TestBoundInfiniteWhenLambda1Violated(t *testing.T) {
	p := baseParams()
	p.Eta = 10 // absurd step size breaks Eq. 14
	if !math.IsInf(Bound(p), 1) {
		t.Fatal("bound should be +Inf when lambda1 <= 0")
	}
}

func TestStepSizeOK(t *testing.T) {
	p := baseParams()
	if !StepSizeOK(p) {
		t.Fatal("eta=0.01, K=5, E=2 satisfies eta <= 1/(2KE) = 0.05")
	}
	p.Eta = 0.1
	if StepSizeOK(p) {
		t.Fatal("eta=0.1 violates the condition")
	}
}

func TestDeriveLambdasPositive(t *testing.T) {
	lam := Derive(baseParams())
	for name, v := range map[string]float64{
		"lambda1": lam.Lambda1, "lambda2": lam.Lambda2, "lambda3": lam.Lambda3,
		"lambda4": lam.Lambda4, "lambdaS": lam.LambdaS, "lambdaSigma": lam.LambdaSigma,
		"lambdaF": lam.LambdaF,
	} {
		if v <= 0 || math.IsNaN(v) {
			t.Errorf("%s = %v, want positive", name, v)
		}
	}
}

func TestFromSystem(t *testing.T) {
	g := data.NewGenerator(data.FlatConfig(10, 4, 1))
	ds := g.Sample(4000, 0)
	clients := data.DirichletPartition(ds, data.DefaultPartitionConfig(30, 0.3, 2))
	covg := grouping.CoVGrouping{Config: grouping.Config{MinGS: 5, MaxCoV: 0.5, MergeLeftover: true}}
	groups := covg.Form(clients, ds.Classes, 0, 0, stats.NewRNG(3))
	p := sampling.Probabilities(groups, sampling.RCoV)

	params := FromSystem(groups, p, baseParams())
	if params.Gamma < 1 {
		t.Fatalf("gamma = %v, must be >= 1", params.Gamma)
	}
	if params.GammaBig < 1 {
		t.Fatalf("Gamma = %v, must be >= 1", params.GammaBig)
	}
	if params.GammaP < float64(len(groups)) {
		t.Fatalf("GammaP = %v, must be >= |G|", params.GammaP)
	}
	if params.ZetaG2 < 0 {
		t.Fatalf("ZetaG2 = %v", params.ZetaG2)
	}
	if params.GroupSize < float64(covg.MinGS) {
		t.Fatalf("GroupSize = %v below MinGS", params.GroupSize)
	}
	if !math.IsInf(Bound(params), 0) && Bound(params) <= 0 {
		t.Fatalf("system bound = %v", Bound(params))
	}

	// CoV grouping should give a smaller ζ_g proxy than random grouping.
	rg := grouping.RandomGrouping{Config: grouping.Config{MinGS: 5}}
	rGroups := rg.Form(clients, ds.Classes, 0, 0, stats.NewRNG(3))
	rParams := FromSystem(rGroups, sampling.Probabilities(rGroups, sampling.Random), baseParams())
	if params.ZetaG2 >= rParams.ZetaG2 {
		t.Fatalf("CoVG zeta_g proxy %v should beat RG %v", params.ZetaG2, rParams.ZetaG2)
	}
}

func TestUniformSamplingMinimizesGammaP(t *testing.T) {
	// Γ_p = Σ 1/p_g is minimized by uniform p (Jensen); check against a few
	// skewed vectors of the same dimension.
	uniform := sampling.GammaP([]float64{0.25, 0.25, 0.25, 0.25})
	for _, p := range [][]float64{
		{0.4, 0.3, 0.2, 0.1},
		{0.7, 0.1, 0.1, 0.1},
		{0.97, 0.01, 0.01, 0.01},
	} {
		if sampling.GammaP(p) < uniform {
			t.Fatalf("GammaP(%v) < uniform", p)
		}
	}
}
