package data

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestGeneratorDeterminism(t *testing.T) {
	g1 := NewGenerator(FlatConfig(4, 8, 5))
	g2 := NewGenerator(FlatConfig(4, 8, 5))
	a := g1.Sample(20, 1)
	b := g2.Sample(20, 1)
	for i := range a.X {
		//lint:ignore float-eq test asserts exact deterministic output
		if a.X[i] != b.X[i] {
			t.Fatal("same seed+tag must produce identical data")
		}
	}
	for i := range a.Y {
		if a.Y[i] != b.Y[i] {
			t.Fatal("same seed+tag must produce identical labels")
		}
	}
}

func TestGeneratorTagsIndependent(t *testing.T) {
	g := NewGenerator(FlatConfig(4, 8, 5))
	a := g.Sample(50, 1)
	b := g.Sample(50, 2)
	same := 0
	for i := range a.X {
		//lint:ignore float-eq test asserts exact deterministic output
		if a.X[i] == b.X[i] {
			same++
		}
	}
	if same > len(a.X)/10 {
		t.Fatalf("different tags produced %d/%d equal features", same, len(a.X))
	}
}

func TestGeneratorLabelRange(t *testing.T) {
	g := NewGenerator(SynthCIFARConfig(1))
	ds := g.Sample(500, 0)
	if ds.Classes != 10 || ds.Dim() != 3*8*8 {
		t.Fatalf("unexpected config: classes=%d dim=%d", ds.Classes, ds.Dim())
	}
	hist := make([]int, ds.Classes)
	for _, y := range ds.Y {
		if y < 0 || y >= ds.Classes {
			t.Fatalf("label %d out of range", y)
		}
		hist[y]++
	}
	for c, n := range hist {
		if n == 0 {
			t.Errorf("class %d never sampled in 500 draws", c)
		}
	}
}

func TestGeneratorClassStructure(t *testing.T) {
	// Samples of the same class+mode should be closer to their prototype
	// than to other classes' prototypes on average — i.e. the task is
	// learnable.
	cfg := FlatConfig(3, 16, 9)
	cfg.Noise = 0.5
	cfg.Modes = 1
	g := NewGenerator(cfg)
	ds := g.Sample(300, 0)
	// Compute class means.
	dim := ds.Dim()
	means := make([][]float64, 3)
	counts := make([]int, 3)
	for i := range means {
		means[i] = make([]float64, dim)
	}
	for i, y := range ds.Y {
		counts[y]++
		for j := 0; j < dim; j++ {
			means[y][j] += ds.X[i*dim+j]
		}
	}
	for c := range means {
		for j := range means[c] {
			means[c][j] /= float64(counts[c])
		}
	}
	correct := 0
	for i, y := range ds.Y {
		row := ds.X[i*dim : (i+1)*dim]
		best, bestD := -1, math.Inf(1)
		for c := range means {
			d := stats.L2Distance(row, means[c])
			if d < bestD {
				best, bestD = c, d
			}
		}
		if best == y {
			correct++
		}
	}
	if frac := float64(correct) / float64(len(ds.Y)); frac < 0.9 {
		t.Fatalf("nearest-mean accuracy %.2f on low-noise data; class structure broken", frac)
	}
}

func TestBatchShapesAndContent(t *testing.T) {
	g := NewGenerator(SynthCIFARConfig(2))
	ds := g.Sample(10, 0)
	x, y := ds.Batch([]int{3, 7})
	if x.Shape[0] != 2 || x.Shape[1] != 3 || x.Shape[2] != 8 || x.Shape[3] != 8 {
		t.Fatalf("batch shape %v", x.Shape)
	}
	if y[0] != ds.Y[3] || y[1] != ds.Y[7] {
		t.Fatalf("batch labels %v", y)
	}
	dim := ds.Dim()
	for j := 0; j < dim; j++ {
		//lint:ignore float-eq test asserts exact deterministic output
		if x.Data[j] != ds.X[3*dim+j] {
			t.Fatal("batch features misaligned")
		}
	}
}

func TestBatchPanicsOutOfRange(t *testing.T) {
	g := NewGenerator(FlatConfig(2, 4, 1))
	ds := g.Sample(5, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ds.Batch([]int{5})
}

func TestLabelCounts(t *testing.T) {
	ds := &Dataset{Y: []int{0, 1, 1, 2, 2, 2}, Classes: 3, SampleShape: []int{1}, X: make([]float64, 6)}
	c := ds.LabelCounts([]int{0, 1, 2, 3, 4, 5})
	//lint:ignore float-eq test asserts exact deterministic output
	if c[0] != 1 || c[1] != 2 || c[2] != 3 {
		t.Fatalf("LabelCounts = %v", c)
	}
}

func TestDirichletPartitionInvariants(t *testing.T) {
	g := NewGenerator(FlatConfig(10, 4, 3))
	ds := g.Sample(5000, 0)
	cfg := DefaultPartitionConfig(30, 0.5, 7)
	clients := DirichletPartition(ds, cfg)

	if len(clients) != 30 {
		t.Fatalf("got %d clients", len(clients))
	}
	seen := make(map[int]bool)
	for _, c := range clients {
		if c.NumSamples() < cfg.MinSamples || c.NumSamples() > cfg.MaxSamples {
			t.Errorf("client %d has %d samples outside [%d,%d]", c.ID, c.NumSamples(), cfg.MinSamples, cfg.MaxSamples)
		}
		counts := make([]float64, ds.Classes)
		for _, i := range c.Indices {
			if seen[i] {
				t.Fatalf("sample %d assigned to two clients", i)
			}
			seen[i] = true
			counts[ds.Y[i]]++
		}
		// Counts histogram must agree with actual labels.
		for y := range counts {
			//lint:ignore float-eq test asserts exact deterministic output
			if counts[y] != c.Counts[y] {
				t.Fatalf("client %d counts mismatch at label %d", c.ID, y)
			}
		}
	}
}

func TestDirichletPartitionSkewTracksAlpha(t *testing.T) {
	g := NewGenerator(FlatConfig(10, 4, 3))
	ds := g.Sample(20000, 0)
	avgCoV := func(alpha float64) float64 {
		clients := DirichletPartition(ds, DefaultPartitionConfig(50, alpha, 11))
		s := 0.0
		for _, c := range clients {
			s += stats.CoVOfCounts(c.Counts)
		}
		return s / float64(len(clients))
	}
	skewed := avgCoV(0.05)
	flat := avgCoV(10)
	if skewed <= flat {
		t.Fatalf("alpha=0.05 CoV %v should exceed alpha=10 CoV %v", skewed, flat)
	}
}

func TestDirichletPartitionDeterministic(t *testing.T) {
	g := NewGenerator(FlatConfig(5, 4, 3))
	ds := g.Sample(3000, 0)
	a := DirichletPartition(ds, DefaultPartitionConfig(20, 0.5, 13))
	b := DirichletPartition(ds, DefaultPartitionConfig(20, 0.5, 13))
	for i := range a {
		if len(a[i].Indices) != len(b[i].Indices) {
			t.Fatal("partition not deterministic")
		}
		for j := range a[i].Indices {
			if a[i].Indices[j] != b[i].Indices[j] {
				t.Fatal("partition not deterministic")
			}
		}
	}
}

func TestDirichletPartitionPanicsWhenTooSmall(t *testing.T) {
	g := NewGenerator(FlatConfig(3, 4, 1))
	ds := g.Sample(50, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for undersized dataset")
		}
	}()
	DirichletPartition(ds, DefaultPartitionConfig(10, 0.5, 1))
}

func TestGlobalCounts(t *testing.T) {
	clients := []*Client{
		{Counts: []float64{1, 2}},
		{Counts: []float64{3, 4}},
	}
	g := GlobalCounts(clients, 2)
	//lint:ignore float-eq test asserts exact deterministic output
	if g[0] != 4 || g[1] != 6 {
		t.Fatalf("GlobalCounts = %v", g)
	}
}

func TestSplitAcrossEdges(t *testing.T) {
	clients := make([]*Client, 10)
	for i := range clients {
		clients[i] = &Client{ID: i}
	}
	edges := SplitAcrossEdges(clients, 3)
	total := 0
	for _, e := range edges {
		total += len(e)
	}
	if total != 10 {
		t.Fatalf("edges hold %d clients", total)
	}
	if len(edges[0]) != 4 || len(edges[1]) != 3 || len(edges[2]) != 3 {
		t.Fatalf("unbalanced split: %d %d %d", len(edges[0]), len(edges[1]), len(edges[2]))
	}
}

func TestPartitionCountDistribution(t *testing.T) {
	// Property: all assigned indices are valid and counts sum to sample
	// count for any seed.
	g := NewGenerator(FlatConfig(6, 4, 3))
	ds := g.Sample(4000, 0)
	err := quick.Check(func(seed uint64) bool {
		clients := DirichletPartition(ds, DefaultPartitionConfig(15, 0.3, seed))
		for _, c := range clients {
			sum := 0.0
			for _, n := range c.Counts {
				sum += n
			}
			if int(sum) != c.NumSamples() {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 10})
	if err != nil {
		t.Fatal(err)
	}
}

func TestImagePrototypesSpatiallySmooth(t *testing.T) {
	// Image-shaped tasks must have spatially structured class signal:
	// horizontally adjacent pixels of a prototype correlate far more than
	// random pairs (low-frequency cosine construction). Verify via class
	// means of low-noise samples.
	cfg := SynthCIFARConfig(3)
	cfg.Noise = 0.1
	cfg.Modes = 1
	g := NewGenerator(cfg)
	ds := g.Sample(400, 0)
	dim := ds.Dim()
	c, h, w := 3, 8, 8
	// Mean image of class 0.
	mean := make([]float64, dim)
	n := 0
	for i, y := range ds.Y {
		if y != 0 {
			continue
		}
		n++
		for j := 0; j < dim; j++ {
			mean[j] += ds.X[i*dim+j]
		}
	}
	if n == 0 {
		t.Fatal("class 0 never sampled")
	}
	for j := range mean {
		mean[j] /= float64(n)
	}
	// Average |difference| between horizontal neighbours vs random pairs.
	rng := stats.NewRNG(9)
	adj, rnd := 0.0, 0.0
	cnt := 0
	for ci := 0; ci < c; ci++ {
		for y := 0; y < h; y++ {
			for x := 0; x+1 < w; x++ {
				i := ci*h*w + y*w + x
				adj += math.Abs(mean[i] - mean[i+1])
				rnd += math.Abs(mean[i] - mean[rng.IntN(dim)])
				cnt++
			}
		}
	}
	adj /= float64(cnt)
	rnd /= float64(cnt)
	if adj >= rnd*0.8 {
		t.Fatalf("no spatial smoothness: adjacent diff %v vs random %v", adj, rnd)
	}
}

func TestFlatPrototypesUnstructured(t *testing.T) {
	// Flat tasks keep i.i.d. prototypes: adjacency carries no signal.
	cfg := FlatConfig(3, 64, 4)
	cfg.Noise = 0.1
	cfg.Modes = 1
	g := NewGenerator(cfg)
	ds := g.Sample(300, 0)
	dim := ds.Dim()
	mean := make([]float64, dim)
	n := 0
	for i, y := range ds.Y {
		if y != 0 {
			continue
		}
		n++
		for j := 0; j < dim; j++ {
			mean[j] += ds.X[i*dim+j]
		}
	}
	for j := range mean {
		mean[j] /= float64(n)
	}
	adj := 0.0
	for j := 0; j+1 < dim; j++ {
		adj += math.Abs(mean[j] - mean[j+1])
	}
	adj /= float64(dim - 1)
	// i.i.d. N(0,1) neighbours differ by ~E|X-Y| = 2/sqrt(pi) ≈ 1.13.
	if adj < 0.5 {
		t.Fatalf("flat prototypes look smooth (adj diff %v); structure leaked", adj)
	}
}
