package data

import (
	"math"
	"testing"
)

// virtualTestPartition returns a small virtual population for the
// equivalence tests.
func virtualTestPartition(n int, seed uint64) *VirtualPartition {
	gen := FlatConfig(5, 6, seed)
	part := PartitionConfig{
		NumClients: n, Alpha: 0.4,
		MinSamples: 8, MaxSamples: 30, MeanSamples: 18, StdSamples: 6,
		Seed: seed + 1,
	}
	return NewVirtualPartition(gen, part)
}

// TestDirichletHistogramsMatchPartition pins the exact-replay property:
// given only a dataset's label counts, DirichletHistograms produces the
// same per-client (N, Counts) as DirichletPartition given the dataset.
func TestDirichletHistogramsMatchPartition(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		n := 10 + int(seed%7)
		g := NewGenerator(FlatConfig(6, 4, seed))
		ds := g.Sample(n*60, 0)
		cfg := PartitionConfig{
			NumClients: n, Alpha: 0.2 + 0.1*float64(seed%4),
			MinSamples: 10, MaxSamples: 50, MeanSamples: 30, StdSamples: 12,
			Seed: seed + 17,
		}
		materialized := DirichletPartition(ds, cfg)

		labelCounts := make([]int, ds.Classes)
		for _, y := range ds.Y {
			labelCounts[y]++
		}
		flyweights := DirichletHistograms(labelCounts, cfg)

		if len(flyweights) != len(materialized) {
			t.Fatalf("seed %d: %d flyweights vs %d clients", seed, len(flyweights), len(materialized))
		}
		for i, m := range materialized {
			f := flyweights[i]
			if f.ID != m.ID || f.N != m.N {
				t.Fatalf("seed %d client %d: flyweight (ID=%d N=%d) vs materialized (ID=%d N=%d)",
					seed, i, f.ID, f.N, m.ID, m.N)
			}
			if f.Indices != nil {
				t.Fatalf("seed %d client %d: flyweight has Indices", seed, i)
			}
			for y := range m.Counts {
				//lint:ignore float-eq exact replay must reproduce identical counts
				if f.Counts[y] != m.Counts[y] {
					t.Fatalf("seed %d client %d label %d: flyweight count %v vs materialized %v",
						seed, i, y, f.Counts[y], m.Counts[y])
				}
			}
		}
	}
}

// TestVirtualClientSelfConsistent checks that the flyweight histogram a
// VirtualPartition reports for a client is exactly the histogram of the
// samples it materializes for that client.
func TestVirtualClientSelfConsistent(t *testing.T) {
	vp := virtualTestPartition(20, 3)
	for id := 0; id < vp.NumClients(); id++ {
		c := vp.Client(id)
		x, y := vp.Materialize(id)
		if c.N != len(y) {
			t.Fatalf("client %d: N=%d but materialized %d labels", id, c.N, len(y))
		}
		if c.N < 8 || c.N > 30 {
			t.Fatalf("client %d: N=%d outside configured [8,30]", id, c.N)
		}
		if x.Shape[0] != c.N || x.Shape[1] != 6 {
			t.Fatalf("client %d: batch shape %v, want [%d 6]", id, x.Shape, c.N)
		}
		hist := make([]float64, vp.Classes())
		for _, label := range y {
			hist[label]++
		}
		for cls := range hist {
			//lint:ignore float-eq the histogram is derived from the same label stream
			if hist[cls] != c.Counts[cls] {
				t.Fatalf("client %d class %d: histogram %v vs Counts %v", id, cls, hist[cls], c.Counts[cls])
			}
		}
	}
}

// TestVirtualMaterializeMatchesMaterializeAll pins the bridge the core
// equivalence tests stand on: per-client synthesis into a SampleBuffer is
// bit-identical to the rows MaterializeAll lays out in the pooled dataset.
func TestVirtualMaterializeMatchesMaterializeAll(t *testing.T) {
	vp := virtualTestPartition(15, 9)
	ds, clients := vp.MaterializeAll()
	if len(clients) != 15 {
		t.Fatalf("MaterializeAll returned %d clients", len(clients))
	}
	var buf SampleBuffer
	for _, c := range clients {
		if len(c.Indices) != c.N {
			t.Fatalf("client %d: %d indices, N=%d", c.ID, len(c.Indices), c.N)
		}
		xa, ya := ds.Batch(c.Indices)
		xb, yb := vp.MaterializeInto(c.ID, &buf)
		if len(ya) != len(yb) {
			t.Fatalf("client %d: %d vs %d labels", c.ID, len(ya), len(yb))
		}
		for i := range ya {
			if ya[i] != yb[i] {
				t.Fatalf("client %d sample %d: label %d vs %d", c.ID, i, ya[i], yb[i])
			}
		}
		for i := range xa.Data {
			if math.Float64bits(xa.Data[i]) != math.Float64bits(xb.Data[i]) {
				t.Fatalf("client %d: feature %d differs: %v vs %v", c.ID, i, xa.Data[i], xb.Data[i])
			}
		}
	}
}

// TestVirtualClientsParallelDeterministic: the parallel population build
// returns exactly what per-ID synthesis returns, in position.
func TestVirtualClientsParallelDeterministic(t *testing.T) {
	vp := virtualTestPartition(33, 5)
	clients := vp.Clients()
	for id, got := range clients {
		want := vp.Client(id)
		if got.ID != id || got.N != want.N {
			t.Fatalf("client %d: parallel (ID=%d N=%d) vs serial (N=%d)", id, got.ID, got.N, want.N)
		}
		for y := range want.Counts {
			//lint:ignore float-eq both sides replay the same label stream
			if got.Counts[y] != want.Counts[y] {
				t.Fatalf("client %d label %d: %v vs %v", id, y, got.Counts[y], want.Counts[y])
			}
		}
	}
}

// TestSampleBufferReuse: repeated materialization through one buffer reuses
// its backing storage — the O(selected) memory story depends on per-worker
// buffers absorbing every synthesized batch.
func TestSampleBufferReuse(t *testing.T) {
	vp := virtualTestPartition(10, 7)
	var buf SampleBuffer
	// Warm the buffer with the largest client so later calls never grow it.
	largest := 0
	for id := 0; id < vp.NumClients(); id++ {
		if c := vp.Client(id); c.N > vp.Client(largest).N {
			largest = id
		}
	}
	vp.MaterializeInto(largest, &buf)
	x1, y1 := vp.MaterializeInto(0, &buf)
	p1, py1 := &x1.Data[0], &y1[0]
	x2, y2 := vp.MaterializeInto(1, &buf)
	if &x2.Data[0] != p1 || &y2[0] != py1 {
		t.Fatal("warm SampleBuffer grew new backing storage across clients")
	}
}
