// Package data provides the dataset substrate for the federated experiments:
// synthetic stand-ins for CIFAR-10 and SpeechCommands (the real datasets are
// not available offline; see DESIGN.md), the Dirichlet label-skew
// partitioner the paper uses to control the non-IID degree, and the
// client-side label histograms ("label matrix L") that CoV grouping
// consumes.
//
// Client populations come in two equivalent representations: materialized
// (DirichletPartition slices a pooled Dataset, clients carry sample
// indices) and virtual (VirtualPartition, clients are flyweights carrying
// only histogram + count, samples synthesized deterministically from
// (seed, client ID) on selection). Training over either produces
// bit-identical results; the virtual form scales to millions of clients.
package data

import (
	"fmt"
	"math"

	"repro/internal/stats"
	"repro/internal/tensor"
)

// Dataset is an in-memory labelled dataset. Features are stored row-major:
// sample i occupies X[i*dim : (i+1)*dim] where dim = prod(SampleShape).
type Dataset struct {
	X           []float64
	Y           []int
	SampleShape []int
	Classes     int
}

// Dim returns the flattened feature dimension of one sample.
func (d *Dataset) Dim() int {
	n := 1
	for _, s := range d.SampleShape {
		n *= s
	}
	return n
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.Y) }

// Batch gathers the samples at the given indices into a tensor shaped
// [len(idx), SampleShape...] plus the aligned label slice.
func (d *Dataset) Batch(idx []int) (*tensor.Tensor, []int) {
	dim := d.Dim()
	shape := append([]int{len(idx)}, d.SampleShape...)
	x := tensor.New(shape...)
	y := make([]int, len(idx))
	for bi, i := range idx {
		if i < 0 || i >= d.Len() {
			panic(fmt.Sprintf("data: index %d out of range [0,%d)", i, d.Len()))
		}
		copy(x.Data[bi*dim:(bi+1)*dim], d.X[i*dim:(i+1)*dim])
		y[bi] = d.Y[i]
	}
	return x, y
}

// LabelCounts returns the label histogram of the samples at idx.
func (d *Dataset) LabelCounts(idx []int) []float64 {
	counts := make([]float64, d.Classes)
	for _, i := range idx {
		counts[d.Y[i]]++
	}
	return counts
}

// GeneratorConfig parameterizes a synthetic classification task.
type GeneratorConfig struct {
	// Classes is the number of labels.
	Classes int
	// SampleShape is the per-sample tensor shape, e.g. [3, 8, 8] for an
	// image-like task or [64] for a flat-feature task.
	SampleShape []int
	// Modes is the number of Gaussian prototypes per class; >1 makes the
	// class regions multi-modal (non-linearly separable).
	Modes int
	// Noise is the within-mode Gaussian noise sigma. Larger values cap the
	// achievable accuracy, mimicking the paper's 55–65 % CIFAR band.
	Noise float64
	// Seed fixes the prototypes and all sampling.
	Seed uint64
}

// Generator produces samples from a fixed mixture-of-Gaussians class
// structure. The same generator (same seed) yields the same class geometry,
// so train and test sets drawn from it are identically distributed.
type Generator struct {
	cfg    GeneratorConfig
	dim    int
	protos [][]float64 // [class*Modes + mode][dim]
}

// NewGenerator creates a generator with Seed-determined class prototypes.
func NewGenerator(cfg GeneratorConfig) *Generator {
	if cfg.Classes <= 0 || cfg.Modes <= 0 {
		panic("data: Classes and Modes must be positive")
	}
	dim := 1
	for _, s := range cfg.SampleShape {
		dim *= s
	}
	g := &Generator{cfg: cfg, dim: dim}
	rng := stats.NewRNG(cfg.Seed)
	g.protos = make([][]float64, cfg.Classes*cfg.Modes)
	for i := range g.protos {
		g.protos[i] = g.makeProto(rng)
	}
	return g
}

// makeProto draws one class prototype. Flat tasks use i.i.d. Gaussian
// coordinates. Image-shaped tasks ([C, H, W]) use sums of random
// low-frequency cosine modes per channel so the class signal is spatially
// smooth — local convolution features followed by global pooling can then
// discriminate classes, as with natural images. (I.i.d. per-pixel
// prototypes carry no spatial structure and global pooling would average
// the signal away.)
func (g *Generator) makeProto(rng *stats.RNG) []float64 {
	p := make([]float64, g.dim)
	shape := g.cfg.SampleShape
	if len(shape) != 3 {
		for j := range p {
			p[j] = rng.Normal(0, 1)
		}
		return p
	}
	c, h, w := shape[0], shape[1], shape[2]
	const modes = 3
	for ci := 0; ci < c; ci++ {
		base := ci * h * w
		// Per-channel DC offset plus low-frequency cosine modes.
		dc := rng.Normal(0, 1)
		for m := 0; m < modes; m++ {
			fy := float64(rng.IntN(3)) // spatial frequencies 0..2
			fx := float64(rng.IntN(3))
			phy := rng.Float64() * 2 * math.Pi
			phx := rng.Float64() * 2 * math.Pi
			amp := rng.Normal(0, 1)
			for y := 0; y < h; y++ {
				for x := 0; x < w; x++ {
					v := amp *
						math.Cos(2*math.Pi*fy*float64(y)/float64(h)+phy) *
						math.Cos(2*math.Pi*fx*float64(x)/float64(w)+phx)
					p[base+y*w+x] += v
				}
			}
		}
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				p[base+y*w+x] += dc
			}
		}
	}
	// Normalize the prototype to unit per-coordinate variance so Noise has
	// a consistent meaning across task shapes.
	mean, ss := 0.0, 0.0
	for _, v := range p {
		mean += v
	}
	mean /= float64(len(p))
	for _, v := range p {
		d := v - mean
		ss += d * d
	}
	std := math.Sqrt(ss / float64(len(p)))
	if std > 0 {
		for j := range p {
			p[j] = (p[j] - mean) / std
		}
	}
	return p
}

// Config returns the generator's configuration.
func (g *Generator) Config() GeneratorConfig { return g.cfg }

// Sample draws n labelled samples with uniformly random labels, using a
// stream derived from the generator seed and tag (so distinct tags give
// independent datasets with the same class geometry).
func (g *Generator) Sample(n int, tag uint64) *Dataset {
	rng := stats.NewRNG(g.cfg.Seed ^ 0xabcdef).Split(tag)
	ds := &Dataset{
		X:           make([]float64, n*g.dim),
		Y:           make([]int, n),
		SampleShape: append([]int(nil), g.cfg.SampleShape...),
		Classes:     g.cfg.Classes,
	}
	for i := 0; i < n; i++ {
		cls := rng.IntN(g.cfg.Classes)
		mode := rng.IntN(g.cfg.Modes)
		proto := g.protos[cls*g.cfg.Modes+mode]
		row := ds.X[i*g.dim : (i+1)*g.dim]
		for j := range row {
			row[j] = proto[j] + rng.Normal(0, g.cfg.Noise)
		}
		ds.Y[i] = cls
	}
	return ds
}

// SynthCIFARConfig is the CIFAR-10 stand-in: 10 classes of 3×8×8
// image-like samples with enough noise that a small model saturates around
// the paper's reported accuracy band.
func SynthCIFARConfig(seed uint64) GeneratorConfig {
	return GeneratorConfig{
		Classes:     10,
		SampleShape: []int{3, 8, 8},
		Modes:       2,
		Noise:       1.8,
		Seed:        seed,
	}
}

// SynthSpeechConfig is the SpeechCommands stand-in: 35 classes of 1×12×12
// spectrogram-like samples; many classes plus high noise reproduce the
// unstable-convergence regime of the paper's Fig. 11.
func SynthSpeechConfig(seed uint64) GeneratorConfig {
	return GeneratorConfig{
		Classes:     35,
		SampleShape: []int{1, 12, 12},
		Modes:       1,
		Noise:       2.4,
		Seed:        seed,
	}
}

// FlatConfig is a flat-feature task for fast tests and MLP-based
// experiments.
func FlatConfig(classes, dim int, seed uint64) GeneratorConfig {
	return GeneratorConfig{
		Classes:     classes,
		SampleShape: []int{dim},
		Modes:       2,
		Noise:       1.6,
		Seed:        seed,
	}
}
