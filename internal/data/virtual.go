package data

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/stats"
	"repro/internal/tensor"
)

// This file implements the virtual (flyweight) client population: a
// million-client federation whose resident state is only the per-client
// label histograms. Features are never stored — they are synthesized
// deterministically from (seed, client ID) at the moment a client is
// selected for training, into a caller-owned SampleBuffer, so a global
// round's working set is O(selected clients) instead of O(population).
//
// Two independent RNG streams exist per client:
//
//   - the label stream, seeded from the partition seed and the client ID,
//     drives the sample count (clipped normal) and the per-sample labels
//     (Dirichlet(alpha) categorical draws). Client(id) consumes only this
//     stream, so histograms cost ~N categorical draws and two small slices.
//   - the feature stream, seeded from the generator seed and the client ID,
//     drives the mode choice and Gaussian noise of every synthesized sample,
//     reusing the Generator's class prototypes.
//
// Because both streams are pure functions of (seed, id), materializing a
// client twice — or materializing the whole population into a Dataset with
// MaterializeAll — yields bit-identical features and labels. That is the
// equivalence the core training tests pin down: training on a virtual
// population and on its materialized copy produces Float64bits-equal models.

// Salt constants separating the virtual per-client streams. The multipliers
// are the usual odd 64-bit mixing constants used by the engine's per-client
// reseeding.
const (
	virtualLabelSalt   = 0x9e3779b97f4a7c15
	virtualFeatureSalt = 0x94d049bb133111eb
	virtualIDMix       = 0xbf58476d1ce4e5b9
)

// VirtualPartition is a client population that exists only as a recipe:
// a Generator configuration (class geometry) plus a PartitionConfig
// (population size, per-client count distribution, label skew alpha).
// Unlike DirichletPartition it draws each client's label distribution
// independently — there is no shared sample pool to exhaust — which is what
// makes every client a pure function of its ID and lets populations scale
// to millions.
type VirtualPartition struct {
	gen *Generator
	cfg PartitionConfig
}

// NewVirtualPartition builds the recipe. The generator's prototypes are the
// only O(classes × dim) state allocated; no samples and no clients are.
func NewVirtualPartition(gen GeneratorConfig, cfg PartitionConfig) *VirtualPartition {
	if cfg.NumClients <= 0 {
		panic("data: NumClients must be positive")
	}
	if cfg.MinSamples <= 0 || cfg.MaxSamples < cfg.MinSamples {
		panic("data: invalid sample count bounds")
	}
	return &VirtualPartition{gen: NewGenerator(gen), cfg: cfg}
}

// NumClients returns the population size.
func (vp *VirtualPartition) NumClients() int { return vp.cfg.NumClients }

// Classes returns the label count of the underlying task.
func (vp *VirtualPartition) Classes() int { return vp.gen.cfg.Classes }

// Dim returns the flattened per-sample feature dimension.
func (vp *VirtualPartition) Dim() int { return vp.gen.dim }

// Generator exposes the underlying sample generator (e.g. to draw an i.i.d.
// test set with the same class geometry).
func (vp *VirtualPartition) Generator() *Generator { return vp.gen }

// labelSeed and featureSeed derive the two per-client stream seeds.
func (vp *VirtualPartition) labelSeed(id int) uint64 {
	return vp.cfg.Seed ^ virtualLabelSalt ^ (uint64(id+1) * virtualIDMix)
}

func (vp *VirtualPartition) featureSeed(id int) uint64 {
	return vp.gen.cfg.Seed ^ virtualFeatureSalt ^ (uint64(id+1) * virtualIDMix)
}

// sampleCount draws the client's clipped-normal sample count from rng; the
// clipping mirrors DirichletPartition (without its shared-pool starvation
// guard, which a virtual population does not need).
func (vp *VirtualPartition) sampleCount(rng *stats.RNG) int {
	want := int(rng.Normal(vp.cfg.MeanSamples, vp.cfg.StdSamples))
	if want < vp.cfg.MinSamples {
		want = vp.cfg.MinSamples
	}
	if want > vp.cfg.MaxSamples {
		want = vp.cfg.MaxSamples
	}
	return want
}

// labels replays the client's label stream, appending its N labels in draw
// order to dst and returning the extended slice. rng must be freshly seeded
// with labelSeed(id).
func (vp *VirtualPartition) labels(rng *stats.RNG, dst []int) []int {
	want := vp.sampleCount(rng)
	p := rng.Dirichlet(vp.cfg.Alpha, vp.gen.cfg.Classes)
	for i := 0; i < want; i++ {
		dst = append(dst, rng.Categorical(p))
	}
	return dst
}

// Client synthesizes the flyweight for one client: its ID, sample count N,
// and label histogram Counts. Indices stays nil — there is no backing
// dataset. Cost is O(N × classes) time and O(classes) memory; no features
// are generated. Safe for concurrent use with any other VirtualPartition
// method.
func (vp *VirtualPartition) Client(id int) *Client {
	if id < 0 || id >= vp.cfg.NumClients {
		panic(fmt.Sprintf("data: client id %d out of range [0,%d)", id, vp.cfg.NumClients))
	}
	rng := stats.NewRNG(vp.labelSeed(id))
	want := vp.sampleCount(rng)
	p := rng.Dirichlet(vp.cfg.Alpha, vp.gen.cfg.Classes)
	c := &Client{ID: id, N: want, Counts: make([]float64, vp.gen.cfg.Classes)}
	for i := 0; i < want; i++ {
		c.Counts[rng.Categorical(p)]++
	}
	return c
}

// Clients synthesizes the whole population's flyweights, fanning the
// per-client work across GOMAXPROCS goroutines. The result is deterministic
// (each client is a pure function of its ID) and position i holds client i.
func (vp *VirtualPartition) Clients() []*Client {
	clients := make([]*Client, vp.cfg.NumClients)
	parallelIndexed(vp.cfg.NumClients, func(id int) {
		clients[id] = vp.Client(id)
	})
	return clients
}

// SampleBuffer is the caller-owned scratch a virtual client materializes
// into. Reusing one buffer across clients (as each engine worker does)
// makes the steady-state cost of materialization O(largest client), not
// O(sum of clients). The zero value is ready to use.
type SampleBuffer struct {
	x        []float64
	y        []int
	labelRng *stats.RNG
	featRng  *stats.RNG
}

// MaterializeInto synthesizes client id's full batch — features shaped
// [N, SampleShape...] plus the aligned label slice — into buf, growing its
// backing storage only when the client is larger than any seen before. The
// returned tensor and slice alias buf and are valid until the next
// MaterializeInto call on the same buffer.
//
// The output is bit-identical to the rows MaterializeAll writes for the
// same client, in the same order.
func (vp *VirtualPartition) MaterializeInto(id int, buf *SampleBuffer) (*tensor.Tensor, []int) {
	if id < 0 || id >= vp.cfg.NumClients {
		panic(fmt.Sprintf("data: client id %d out of range [0,%d)", id, vp.cfg.NumClients))
	}
	if buf.labelRng == nil {
		buf.labelRng = stats.NewRNG(0)
		buf.featRng = stats.NewRNG(0)
	}
	buf.labelRng.Reseed(vp.labelSeed(id))
	buf.y = vp.labels(buf.labelRng, buf.y[:0])
	n := len(buf.y)

	dim := vp.gen.dim
	if cap(buf.x) < n*dim {
		buf.x = make([]float64, n*dim)
	}
	buf.x = buf.x[:n*dim]
	buf.featRng.Reseed(vp.featureSeed(id))
	vp.synthRows(buf.featRng, buf.y, buf.x)

	shape := append([]int{n}, vp.gen.cfg.SampleShape...)
	return tensor.FromSlice(buf.x, shape...), buf.y
}

// synthRows fills x (len(y)×dim, row-major) with one synthesized sample per
// label in y, consuming the feature stream exactly as Generator.Sample does
// per sample: a mode draw then per-coordinate Gaussian noise.
func (vp *VirtualPartition) synthRows(rng *stats.RNG, y []int, x []float64) {
	g := vp.gen
	for i, cls := range y {
		mode := rng.IntN(g.cfg.Modes)
		proto := g.protos[cls*g.cfg.Modes+mode]
		row := x[i*g.dim : (i+1)*g.dim]
		for j := range row {
			row[j] = proto[j] + rng.Normal(0, g.cfg.Noise)
		}
	}
}

// Materialize synthesizes client id's batch into freshly allocated storage.
// It is the convenience form of MaterializeInto for cold paths; hot paths
// should hold a SampleBuffer.
func (vp *VirtualPartition) Materialize(id int) (*tensor.Tensor, []int) {
	var buf SampleBuffer
	x, y := vp.MaterializeInto(id, &buf)
	return x, append([]int(nil), y...)
}

// MaterializeAll expands the entire virtual population into a conventional
// (Dataset, clients) pair: client i's samples occupy a contiguous index
// range, Indices is populated, and Dataset.Batch(c.Indices) returns exactly
// what MaterializeInto(c.ID, …) synthesizes. This is the bridge the
// equivalence tests use; at million-client scale it is deliberately the
// thing you never call.
func (vp *VirtualPartition) MaterializeAll() (*Dataset, []*Client) {
	clients := vp.Clients()
	total := 0
	for _, c := range clients {
		total += c.N
	}
	ds := &Dataset{
		X:           make([]float64, total*vp.gen.dim),
		Y:           make([]int, 0, total),
		SampleShape: append([]int(nil), vp.gen.cfg.SampleShape...),
		Classes:     vp.gen.cfg.Classes,
	}
	rng := stats.NewRNG(0)
	off := 0
	for _, c := range clients {
		rng.Reseed(vp.labelSeed(c.ID))
		ds.Y = vp.labels(rng, ds.Y)
		rng.Reseed(vp.featureSeed(c.ID))
		rows := ds.X[off*vp.gen.dim : (off+c.N)*vp.gen.dim]
		vp.synthRows(rng, ds.Y[off:off+c.N], rows)
		c.Indices = make([]int, c.N)
		for i := range c.Indices {
			c.Indices[i] = off + i
		}
		off += c.N
	}
	return ds, clients
}

// parallelIndexed runs fn(0..n-1) across GOMAXPROCS goroutines in fixed
// index blocks. Used for population-wide synthesis where every call writes
// only its own index; determinism holds because block boundaries are pure
// functions of n and fn is a pure function of i.
func parallelIndexed(n int, fn func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	block := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*block, min((w+1)*block, n)
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				fn(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}
