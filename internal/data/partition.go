package data

import (
	"fmt"

	"repro/internal/stats"
)

// Client is one federated participant. Grouping and sampling never see
// features, models, or gradients — only the sample count N and the label
// histogram Counts ("row of the label matrix L") — matching the paper's
// privacy posture (Sec. 5.1).
//
// Client is a flyweight: the histogram fields are mandatory, the Indices
// slice is not. Materialized populations (DirichletPartition) fill Indices
// with positions into a shared Dataset; virtual populations
// (VirtualPartition, DirichletHistograms) leave Indices nil and synthesize
// samples on demand from (seed, ID), so a million-client population costs
// only its histograms.
type Client struct {
	ID int
	// N is the client's total sample count n_i. It always equals the sum of
	// Counts, and equals len(Indices) when the client is materialized.
	N int
	// Indices locates the client's samples in a shared Dataset. Nil for
	// virtual clients.
	Indices []int
	// Counts is the per-label sample histogram, length = number of classes.
	Counts []float64
}

// NumSamples returns the client's data entry count n_i.
//
//lint:hotpath
func (c *Client) NumSamples() int { return c.N }

// PartitionConfig controls the non-IID partition of a dataset.
type PartitionConfig struct {
	// NumClients is the number of participants.
	NumClients int
	// Alpha is the Dirichlet concentration of each client's label
	// distribution; smaller means more skewed (paper Sec. 7.2).
	Alpha float64
	// MinSamples and MaxSamples clip the per-client sample count.
	MinSamples, MaxSamples int
	// MeanSamples and StdSamples parameterize the normal distribution of
	// per-client counts (the paper uses 20–200, normally distributed).
	MeanSamples, StdSamples float64
	// Seed fixes the partition.
	Seed uint64
}

// DefaultPartitionConfig mirrors the paper's CIFAR-10 setup scaled by
// numClients: counts normal around the 20–200 band.
func DefaultPartitionConfig(numClients int, alpha float64, seed uint64) PartitionConfig {
	return PartitionConfig{
		NumClients:  numClients,
		Alpha:       alpha,
		MinSamples:  20,
		MaxSamples:  200,
		MeanSamples: 110,
		StdSamples:  45,
		Seed:        seed,
	}
}

// DirichletPartition splits ds across cfg.NumClients clients. Each client
// gets a sample count drawn from the configured normal distribution and a
// label distribution drawn from Dirichlet(alpha). Samples are assigned
// without replacement from per-label pools; when a client's preferred label
// pool is exhausted the remaining probability mass is renormalized over
// non-empty labels, so the partition always succeeds as long as the dataset
// has at least NumClients×MinSamples samples.
func DirichletPartition(ds *Dataset, cfg PartitionConfig) []*Client {
	if cfg.NumClients <= 0 {
		panic("data: NumClients must be positive")
	}
	if cfg.MinSamples <= 0 || cfg.MaxSamples < cfg.MinSamples {
		panic("data: invalid sample count bounds")
	}
	if ds.Len() < cfg.NumClients*cfg.MinSamples {
		panic(fmt.Sprintf("data: dataset of %d samples cannot give %d clients at least %d each",
			ds.Len(), cfg.NumClients, cfg.MinSamples))
	}
	rng := stats.NewRNG(cfg.Seed)

	// Per-label index pools, pre-shuffled.
	pools := make([][]int, ds.Classes)
	for i, y := range ds.Y {
		pools[y] = append(pools[y], i)
	}
	for _, p := range pools {
		rng.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	}
	remaining := ds.Len()

	clients := make([]*Client, cfg.NumClients)
	for ci := 0; ci < cfg.NumClients; ci++ {
		want := int(rng.Normal(cfg.MeanSamples, cfg.StdSamples))
		if want < cfg.MinSamples {
			want = cfg.MinSamples
		}
		if want > cfg.MaxSamples {
			want = cfg.MaxSamples
		}
		// Never starve later clients below MinSamples.
		clientsLeft := cfg.NumClients - ci - 1
		if maxTake := remaining - clientsLeft*cfg.MinSamples; want > maxTake {
			want = maxTake
		}
		p := rng.Dirichlet(cfg.Alpha, ds.Classes)
		c := &Client{ID: ci, Counts: make([]float64, ds.Classes)}
		for len(c.Indices) < want {
			// Zero out exhausted labels and renormalize by drawing from the
			// masked categorical.
			masked := make([]float64, ds.Classes)
			any := false
			for y := range masked {
				if len(pools[y]) > 0 {
					masked[y] = p[y]
					if p[y] > 0 {
						any = true
					}
				}
			}
			if !any {
				// Preferred labels all exhausted; fall back to uniform over
				// whatever is left.
				for y := range masked {
					if len(pools[y]) > 0 {
						masked[y] = 1
						any = true
					}
				}
			}
			if !any {
				panic("data: sample pools exhausted mid-partition")
			}
			y := rng.Categorical(masked)
			pool := pools[y]
			c.Indices = append(c.Indices, pool[len(pool)-1])
			pools[y] = pool[:len(pool)-1]
			c.Counts[y]++
			remaining--
		}
		c.N = len(c.Indices)
		clients[ci] = c
	}
	return clients
}

// DirichletHistograms replays DirichletPartition's exact draw sequence over
// a dataset described only by its per-label sample counts, producing
// flyweight clients (N and Counts, no Indices) whose histograms are
// bit-identical to the ones DirichletPartition would assign given a dataset
// with the same label counts and the same cfg. It never materializes a
// sample: the per-label pools are tracked as scalars, and the pool shuffles
// are replayed with no-op swaps so the RNG stream stays aligned with the
// materializing path. labelCounts[y] is the number of samples with label y;
// its length is the class count.
//
// Memory is O(NumClients × classes) regardless of the sample total, which
// is what lets grouping and sampling run over populations far larger than
// any dataset that could be held in memory.
func DirichletHistograms(labelCounts []int, cfg PartitionConfig) []*Client {
	if cfg.NumClients <= 0 {
		panic("data: NumClients must be positive")
	}
	if cfg.MinSamples <= 0 || cfg.MaxSamples < cfg.MinSamples {
		panic("data: invalid sample count bounds")
	}
	classes := len(labelCounts)
	total := 0
	for _, n := range labelCounts {
		total += n
	}
	if total < cfg.NumClients*cfg.MinSamples {
		panic(fmt.Sprintf("data: dataset of %d samples cannot give %d clients at least %d each",
			total, cfg.NumClients, cfg.MinSamples))
	}
	rng := stats.NewRNG(cfg.Seed)

	// Pool sizes only; replay the pool shuffles to keep the stream aligned.
	pools := make([]int, classes)
	copy(pools, labelCounts)
	for _, n := range pools {
		rng.Shuffle(n, func(i, j int) {})
	}
	remaining := total

	clients := make([]*Client, cfg.NumClients)
	for ci := 0; ci < cfg.NumClients; ci++ {
		want := int(rng.Normal(cfg.MeanSamples, cfg.StdSamples))
		if want < cfg.MinSamples {
			want = cfg.MinSamples
		}
		if want > cfg.MaxSamples {
			want = cfg.MaxSamples
		}
		clientsLeft := cfg.NumClients - ci - 1
		if maxTake := remaining - clientsLeft*cfg.MinSamples; want > maxTake {
			want = maxTake
		}
		p := rng.Dirichlet(cfg.Alpha, classes)
		c := &Client{ID: ci, Counts: make([]float64, classes)}
		for c.N < want {
			masked := make([]float64, classes)
			any := false
			for y := range masked {
				if pools[y] > 0 {
					masked[y] = p[y]
					if p[y] > 0 {
						any = true
					}
				}
			}
			if !any {
				for y := range masked {
					if pools[y] > 0 {
						masked[y] = 1
						any = true
					}
				}
			}
			if !any {
				panic("data: sample pools exhausted mid-partition")
			}
			y := rng.Categorical(masked)
			pools[y]--
			c.Counts[y]++
			c.N++
			remaining--
		}
		clients[ci] = c
	}
	return clients
}

// GlobalCounts sums the label histograms of all clients.
func GlobalCounts(clients []*Client, classes int) []float64 {
	total := make([]float64, classes)
	for _, c := range clients {
		for y, n := range c.Counts {
			total[y] += n
		}
	}
	return total
}

// SplitAcrossEdges deals clients round-robin onto numEdges edge servers,
// mirroring the paper's "3 edge servers × 100 clients" topology.
func SplitAcrossEdges(clients []*Client, numEdges int) [][]*Client {
	if numEdges <= 0 {
		panic("data: numEdges must be positive")
	}
	out := make([][]*Client, numEdges)
	for i, c := range clients {
		out[i%numEdges] = append(out[i%numEdges], c)
	}
	return out
}
