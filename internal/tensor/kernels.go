package tensor

import "fmt"

// Fused slice kernels for the aggregation and optimizer hot paths. They
// operate on raw []float64 so the federated core can run its weighted
// parameter folds (group aggregation, global aggregation, delta round-trips)
// without wrapping every buffer in a Tensor. All kernels are element-wise —
// four-way unrolling changes instruction scheduling but never the per-element
// floating-point operation order, so results stay bit-for-bit deterministic.

// Axpy computes dst += k·x (the BLAS axpy). Slices must have equal length.
//
//lint:hotpath
func Axpy(k float64, x, dst []float64) {
	checkLen("Axpy", len(x), len(dst))
	i := 0
	for ; i+4 <= len(dst); i += 4 {
		dst[i] += k * x[i]
		dst[i+1] += k * x[i+1]
		dst[i+2] += k * x[i+2]
		dst[i+3] += k * x[i+3]
	}
	for ; i < len(dst); i++ {
		dst[i] += k * x[i]
	}
}

// ScaleInto computes dst = k·x, overwriting dst.
//
//lint:hotpath
func ScaleInto(k float64, x, dst []float64) {
	checkLen("ScaleInto", len(x), len(dst))
	i := 0
	for ; i+4 <= len(dst); i += 4 {
		dst[i] = k * x[i]
		dst[i+1] = k * x[i+1]
		dst[i+2] = k * x[i+2]
		dst[i+3] = k * x[i+3]
	}
	for ; i < len(dst); i++ {
		dst[i] = k * x[i]
	}
}

// SubInto computes dst = a − b, the delta a client ships before compression.
//
//lint:hotpath
func SubInto(a, b, dst []float64) {
	checkLen("SubInto", len(a), len(dst))
	checkLen("SubInto", len(b), len(dst))
	i := 0
	for ; i+4 <= len(dst); i += 4 {
		dst[i] = a[i] - b[i]
		dst[i+1] = a[i+1] - b[i+1]
		dst[i+2] = a[i+2] - b[i+2]
		dst[i+3] = a[i+3] - b[i+3]
	}
	for ; i < len(dst); i++ {
		dst[i] = a[i] - b[i]
	}
}

// AddInto computes dst = a + b, the edge-side decode of a shipped delta.
//
//lint:hotpath
func AddInto(a, b, dst []float64) {
	checkLen("AddInto", len(a), len(dst))
	checkLen("AddInto", len(b), len(dst))
	i := 0
	for ; i+4 <= len(dst); i += 4 {
		dst[i] = a[i] + b[i]
		dst[i+1] = a[i+1] + b[i+1]
		dst[i+2] = a[i+2] + b[i+2]
		dst[i+3] = a[i+3] + b[i+3]
	}
	for ; i < len(dst); i++ {
		dst[i] = a[i] + b[i]
	}
}

// AxpbyInto computes dst = a·x + b·y in one fused pass — the leaf kernel of
// the aggregation tree reduction, folding two weighted client updates without
// an intermediate scaled copy. dst may alias x or y. Per element the
// operation order is fixed (a·x, then b·y, then one add), so results are
// deterministic regardless of call site.
//
//lint:hotpath
func AxpbyInto(a float64, x []float64, b float64, y, dst []float64) {
	checkLen("AxpbyInto", len(x), len(dst))
	checkLen("AxpbyInto", len(y), len(dst))
	i := 0
	for ; i+4 <= len(dst); i += 4 {
		dst[i] = a*x[i] + b*y[i]
		dst[i+1] = a*x[i+1] + b*y[i+1]
		dst[i+2] = a*x[i+2] + b*y[i+2]
		dst[i+3] = a*x[i+3] + b*y[i+3]
	}
	for ; i < len(dst); i++ {
		dst[i] = a*x[i] + b*y[i]
	}
}

// ScaleSlice computes x *= k in place.
//
//lint:hotpath
func ScaleSlice(k float64, x []float64) {
	i := 0
	for ; i+4 <= len(x); i += 4 {
		x[i] *= k
		x[i+1] *= k
		x[i+2] *= k
		x[i+3] *= k
	}
	for ; i < len(x); i++ {
		x[i] *= k
	}
}

//lint:hotpath
func checkLen(op string, n, want int) {
	if n != want {
		panic(fmt.Sprintf("tensor: %s length mismatch %d vs %d", op, n, want))
	}
}
