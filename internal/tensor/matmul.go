package tensor

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// parallelThreshold is the approximate number of multiply-adds below which a
// matmul runs single-threaded; goroutine fan-out costs more than it saves on
// tiny matrices.
const parallelThreshold = 1 << 16

// procs caches the effective worker count for the kernel dispatch.
// runtime.GOMAXPROCS(0) takes the scheduler lock on every call, which is
// real contention when many workers dispatch matmuls concurrently — and pure
// waste on the MaxParallel=1 serial path, which used to consult the runtime
// once per matmul. The cache is refreshed lazily on first use and by
// SyncProcs.
var procs atomic.Int32

// SyncProcs re-reads the effective worker count — min(GOMAXPROCS, NumCPU) —
// into the dispatch cache and returns it. GOMAXPROCS above the physical core
// count is pure oversubscription for compute-bound kernels: the goroutine
// fan-out adds handoffs without adding compute, and the bench grid measured
// a medium-scale training round at 0.60× the serial baseline with
// GOMAXPROCS=8 on one core before this cap. Call sites that change
// GOMAXPROCS and then expect the kernels to notice (the training engine at
// setup, benchmarks, replay tests) call this once at the boundary; the hot
// path itself only ever loads the atomic. A stale cache can only mis-pick
// the serial/parallel path, never change results — every path is
// bit-identical.
func SyncProcs() int {
	n := runtime.GOMAXPROCS(0)
	if c := runtime.NumCPU(); c < n {
		n = c
	}
	procs.Store(int32(n))
	return n
}

// Procs returns the cached effective worker count, syncing on first use.
// Other packages size their compute fan-out (parallel evaluation, engine
// defaults) from this so the whole process shares one oversubscription
// policy.
func Procs() int { return cachedProcs() }

// cachedProcs returns the cached effective worker count, syncing on first
// use.
func cachedProcs() int {
	p := procs.Load()
	if p == 0 {
		return SyncProcs()
	}
	return int(p)
}

// serialRows reports whether a rows×(work) matmul should run inline. Callers
// dispatch to the named row kernels directly in that case, so the hot path
// of small matrices never materializes a closure — a per-call heap
// allocation that would otherwise defeat the training loop's zero-alloc
// steady state. The cheap size checks run first; the parallelism probe is a
// cached atomic load, so no path touches the runtime.
func serialRows(rows, work int) bool {
	return work < parallelThreshold || rows <= 1 || cachedProcs() <= 1
}

// MatMul computes dst = a × b for 2-D tensors a (m×k) and b (k×n), writing
// into dst (m×n). dst must not alias a or b. Large dense problems run on the
// cache-blocked tiled kernels (see blocked.go), fanned out across 2-D tiles;
// small or very sparse ones stay on the zero-skipping row kernels. Each
// output element is a sequentially-ordered reduction over p = 0..k-1 on
// every path, so results are bit-for-bit identical regardless of kernel
// choice or parallelism.
func MatMul(dst, a, b *Tensor) {
	m, k := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dims %d vs %d", k, k2))
	}
	if dst.Shape[0] != m || dst.Shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMul dst %v, want [%d %d]", dst.Shape, m, n))
	}
	if useBlocked(m, k, n, a.Data, blockedSparseCutoff) {
		blockedMatMul(dst.Data, a.Data, b.Data, m, k, n)
		return
	}
	if serialRows(m, m*n*k) {
		matmulRows(dst.Data, a.Data, b.Data, 0, m, k, n)
		return
	}
	parallelRows(m, func(lo, hi int) {
		matmulRows(dst.Data, a.Data, b.Data, lo, hi, k, n)
	})
}

// matmulRows computes rows [lo, hi) of dst = a×b with an ikj loop order that
// streams b row-wise for cache friendliness.
func matmulRows(dst, a, b []float64, lo, hi, k, n int) {
	for i := lo; i < hi; i++ {
		drow := dst[i*n : (i+1)*n]
		for x := range drow {
			drow[x] = 0
		}
		arow := a[i*k : (i+1)*k]
		for p, av := range arow {
			//lint:ignore float-eq sparsity fast path: skipping exact zeros changes no bits of the result
			if av == 0 {
				continue
			}
			brow := b[p*n : (p+1)*n]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// MatMulAT computes dst = aᵀ × b for a (k×m) and b (k×n), producing m×n.
// Used for weight gradients: dW = Xᵀ·dY.
func MatMulAT(dst, a, b *Tensor) {
	k, m := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulAT inner dims %d vs %d", k, k2))
	}
	if dst.Shape[0] != m || dst.Shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulAT dst %v, want [%d %d]", dst.Shape, m, n))
	}
	if useBlocked(m, k, n, a.Data, blockedSparseCutoff) {
		blockedMatMulAT(dst.Data, a.Data, b.Data, m, k, n)
		return
	}
	if serialRows(m, m*n*k) {
		matmulATRows(dst.Data, a.Data, b.Data, 0, m, k, m, n)
		return
	}
	parallelRows(m, func(lo, hi int) {
		matmulATRows(dst.Data, a.Data, b.Data, lo, hi, k, m, n)
	})
}

// matmulATRows computes rows [lo, hi) of dst = aᵀ×b.
func matmulATRows(dst, a, b []float64, lo, hi, k, m, n int) {
	for i := lo; i < hi; i++ {
		drow := dst[i*n : (i+1)*n]
		for x := range drow {
			drow[x] = 0
		}
		for p := 0; p < k; p++ {
			av := a[p*m+i]
			//lint:ignore float-eq sparsity fast path: skipping exact zeros changes no bits of the result
			if av == 0 {
				continue
			}
			brow := b[p*n : (p+1)*n]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// MatMulBT computes dst = a × bᵀ for a (m×k) and b (n×k), producing m×n.
// Used for input gradients: dX = dY·Wᵀ.
func MatMulBT(dst, a, b *Tensor) {
	m, k := a.Shape[0], a.Shape[1]
	n, k2 := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulBT inner dims %d vs %d", k, k2))
	}
	if dst.Shape[0] != m || dst.Shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulBT dst %v, want [%d %d]", dst.Shape, m, n))
	}
	if useBlocked(m, k, n, a.Data, sparseCutoffNever) {
		blockedMatMulBT(dst.Data, a.Data, b.Data, m, k, n)
		return
	}
	if serialRows(m, m*n*k) {
		matmulBTRows(dst.Data, a.Data, b.Data, 0, m, k, n)
		return
	}
	parallelRows(m, func(lo, hi int) {
		matmulBTRows(dst.Data, a.Data, b.Data, lo, hi, k, n)
	})
}

// matmulBTRows computes rows [lo, hi) of dst = a×bᵀ. The zero skip mirrors
// matmulRows/matmulATRows: arow's zero pattern is fixed across the whole j
// loop, so the branch is predictable after the first column, and ReLU-sparse
// gradients (the dX = dY·Wᵀ call site) skip about half the multiply-adds.
func matmulBTRows(dst, a, b []float64, lo, hi, k, n int) {
	for i := lo; i < hi; i++ {
		arow := a[i*k : (i+1)*k]
		drow := dst[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := b[j*k : (j+1)*k]
			s := 0.0
			for p, av := range arow {
				//lint:ignore float-eq sparsity fast path: skipping exact zeros changes no bits of the result
				if av == 0 {
					continue
				}
				s += av * brow[p]
			}
			drow[j] = s
		}
	}
}

// parallelRows partitions [0, rows) across the cached GOMAXPROCS workers.
// Callers have already decided against the inline path via serialRows. It
// remains the fan-out for mid-sized problems when blocking is disabled; the
// blocked path uses 2-D tile dispatch instead (see blockedLoop).
func parallelRows(rows int, fn func(lo, hi int)) {
	workers := cachedProcs()
	if workers > rows {
		workers = rows
	}
	var wg sync.WaitGroup
	chunk := (rows + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= rows {
			break
		}
		hi := lo + chunk
		if hi > rows {
			hi = rows
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
