package tensor

import (
	"fmt"
	"math"
	"runtime"
	"testing"

	"repro/internal/stats"
)

// gemmShapes covers tile interiors, exact tile boundaries, one-past
// boundaries, and ragged tails for the gemmMC=64 / gemmNC=128 / gemmKC=128
// blocking. Golden bit-equality across these shapes pins the determinism
// contract: blocked and naive kernels must agree on every Float64bits.
var gemmShapes = [][3]int{
	{1, 4, 4}, {3, 7, 5}, {4, 128, 128}, {5, 129, 130},
	{63, 127, 127}, {64, 128, 128}, {65, 129, 129}, {70, 130, 90},
	{128, 64, 256}, {96, 257, 31}, {33, 300, 17}, {127, 16, 255},
}

// sparsify zeroes out roughly frac of x's entries, deterministically.
func sparsify(rng *stats.RNG, x []float64, frac float64) {
	for i := range x {
		if rng.Float64() < frac {
			x[i] = 0
		}
	}
}

// bitsEqual reports the first index where got and want differ in bits, or -1.
func bitsDiffer(got, want []float64) int {
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			return i
		}
	}
	return -1
}

// TestBlockedMatMulGoldenBits pins blockedMatMul to the naive row kernel,
// bit for bit, across tile-boundary shapes and sparsity levels (the sparse
// cases prove the zero-skip in the row kernels and the no-skip blocked
// kernels still agree exactly).
func TestBlockedMatMulGoldenBits(t *testing.T) {
	for _, sh := range gemmShapes {
		m, k, n := sh[0], sh[1], sh[2]
		for _, frac := range []float64{0, 0.5, 0.95} {
			rng := stats.NewRNG(uint64(m*1000000 + k*1000 + n))
			a := randomTensor(rng, m, k)
			b := randomTensor(rng, k, n)
			sparsify(rng, a.Data, frac)
			want := New(m, n)
			matmulRows(want.Data, a.Data, b.Data, 0, m, k, n)
			got := New(m, n)
			blockedMatMul(got.Data, a.Data, b.Data, m, k, n)
			if i := bitsDiffer(got.Data, want.Data); i >= 0 {
				t.Fatalf("MatMul %dx%dx%d frac=%.2f: bit mismatch at %d: %x vs %x",
					m, k, n, frac, i, math.Float64bits(got.Data[i]), math.Float64bits(want.Data[i]))
			}
		}
	}
}

// TestBlockedMatMulATGoldenBits pins blockedMatMulAT to matmulATRows.
func TestBlockedMatMulATGoldenBits(t *testing.T) {
	for _, sh := range gemmShapes {
		m, k, n := sh[0], sh[1], sh[2]
		for _, frac := range []float64{0, 0.5, 0.95} {
			rng := stats.NewRNG(uint64(m*999999 + k*997 + n))
			a := randomTensor(rng, k, m) // transposed operand layout
			b := randomTensor(rng, k, n)
			sparsify(rng, a.Data, frac)
			want := New(m, n)
			matmulATRows(want.Data, a.Data, b.Data, 0, m, k, m, n)
			got := New(m, n)
			blockedMatMulAT(got.Data, a.Data, b.Data, m, k, n)
			if i := bitsDiffer(got.Data, want.Data); i >= 0 {
				t.Fatalf("MatMulAT %dx%dx%d frac=%.2f: bit mismatch at %d", m, k, n, frac, i)
			}
		}
	}
}

// TestBlockedMatMulBTGoldenBits pins blockedMatMulBT to matmulBTRows —
// including the sparse cases, which additionally prove the new zero-skip in
// matmulBTRows changes no bits versus the skip-free blocked accumulation.
func TestBlockedMatMulBTGoldenBits(t *testing.T) {
	for _, sh := range gemmShapes {
		m, k, n := sh[0], sh[1], sh[2]
		for _, frac := range []float64{0, 0.5, 0.95} {
			rng := stats.NewRNG(uint64(m*31337 + k*271 + n))
			a := randomTensor(rng, m, k)
			b := randomTensor(rng, n, k) // transposed operand layout
			sparsify(rng, a.Data, frac)
			want := New(m, n)
			matmulBTRows(want.Data, a.Data, b.Data, 0, m, k, n)
			got := New(m, n)
			blockedMatMulBT(got.Data, a.Data, b.Data, m, k, n)
			if i := bitsDiffer(got.Data, want.Data); i >= 0 {
				t.Fatalf("MatMulBT %dx%dx%d frac=%.2f: bit mismatch at %d", m, k, n, frac, i)
			}
		}
	}
}

// TestBlockedParallelBitIdentical drives the goroutine tile grid (forced
// GOMAXPROCS=4) and checks it produces the same bits as the inline serial
// tile loop. The problem is large enough to cross parallelThreshold.
func TestBlockedParallelBitIdentical(t *testing.T) {
	old := runtime.GOMAXPROCS(0)
	defer func() { runtime.GOMAXPROCS(old); SyncProcs() }()

	rng := stats.NewRNG(11)
	m, k, n := 130, 140, 150
	a := randomTensor(rng, m, k)
	b := randomTensor(rng, k, n)
	at := randomTensor(rng, k, m)
	bt := randomTensor(rng, n, k)

	runtime.GOMAXPROCS(1)
	SyncProcs()
	serial, serialAT, serialBT := New(m, n), New(m, n), New(m, n)
	blockedMatMul(serial.Data, a.Data, b.Data, m, k, n)
	blockedMatMulAT(serialAT.Data, at.Data, b.Data, m, k, n)
	blockedMatMulBT(serialBT.Data, a.Data, bt.Data, m, k, n)

	runtime.GOMAXPROCS(4)
	SyncProcs()
	par, parAT, parBT := New(m, n), New(m, n), New(m, n)
	blockedMatMul(par.Data, a.Data, b.Data, m, k, n)
	blockedMatMulAT(parAT.Data, at.Data, b.Data, m, k, n)
	blockedMatMulBT(parBT.Data, a.Data, bt.Data, m, k, n)

	if i := bitsDiffer(par.Data, serial.Data); i >= 0 {
		t.Fatalf("MatMul parallel tiles diverge from serial at %d", i)
	}
	if i := bitsDiffer(parAT.Data, serialAT.Data); i >= 0 {
		t.Fatalf("MatMulAT parallel tiles diverge from serial at %d", i)
	}
	if i := bitsDiffer(parBT.Data, serialBT.Data); i >= 0 {
		t.Fatalf("MatMulBT parallel tiles diverge from serial at %d", i)
	}
}

// TestBlockedToggleBitIdentical checks the public dispatchers produce
// identical bits with blocking on and off — the property the bench grid's
// bit_identical column asserts end to end.
func TestBlockedToggleBitIdentical(t *testing.T) {
	defer SetBlockedGEMM(true)
	rng := stats.NewRNG(17)
	m, k, n := 96, 128, 144
	a := randomTensor(rng, m, k)
	b := randomTensor(rng, k, n)

	SetBlockedGEMM(true)
	if !BlockedGEMM() {
		t.Fatal("BlockedGEMM() false after SetBlockedGEMM(true)")
	}
	on := New(m, n)
	MatMul(on, a, b)

	SetBlockedGEMM(false)
	if BlockedGEMM() {
		t.Fatal("BlockedGEMM() true after SetBlockedGEMM(false)")
	}
	off := New(m, n)
	MatMul(off, a, b)

	if i := bitsDiffer(on.Data, off.Data); i >= 0 {
		t.Fatalf("blocked and naive dispatch diverge at %d", i)
	}
}

// TestSparseDispatchFallsBack checks the per-kernel sparsity routing: a
// ReLU-grade (~50% zero) left operand sends MatMul/MatMulAT back to the
// zero-skipping row kernels, while MatMulBT — whose cutoff is
// sparseCutoffNever — stays blocked at any sparsity.
func TestSparseDispatchFallsBack(t *testing.T) {
	rng := stats.NewRNG(23)
	m, k, n := 64, 128, 128
	a := randomTensor(rng, m, k)
	sparsify(rng, a.Data, 0.5)
	if useBlocked(m, k, n, a.Data, blockedSparseCutoff) {
		t.Fatal("useBlocked should decline a 50%-zero left operand for MatMul/MatMulAT")
	}
	if !useBlocked(m, k, n, a.Data, sparseCutoffNever) {
		t.Fatal("useBlocked should keep MatMulBT blocked regardless of sparsity")
	}
	dense := randomTensor(rng, m, k)
	if !useBlocked(m, k, n, dense.Data, blockedSparseCutoff) {
		t.Fatal("useBlocked should accept a dense operand of this size")
	}
}

// TestBlockedSteadyStateAllocs checks the pooled packing buffers hold: after
// warmup, a serial blocked matmul performs no per-call heap allocation
// beyond the single dispatch closure.
func TestBlockedSteadyStateAllocs(t *testing.T) {
	rng := stats.NewRNG(29)
	m, k, n := 64, 128, 128
	a := randomTensor(rng, m, k)
	b := randomTensor(rng, k, n)
	dst := New(m, n)
	blockedMatMul(dst.Data, a.Data, b.Data, m, k, n) // warm the pack pool
	allocs := testing.AllocsPerRun(10, func() {
		blockedMatMul(dst.Data, a.Data, b.Data, m, k, n)
	})
	if allocs > 1 {
		t.Fatalf("steady-state blocked MatMul allocates %.0f times per call, want ≤ 1", allocs)
	}
}

// benchShapes are the sizes the committed baseline in BENCHMARKS.md refers
// to: "small" sits below blockedMinWork (dispatch stays naive), "large"
// matches the big-model layer shapes the bench grid trains.
var benchShapes = []struct {
	name    string
	m, k, n int
}{
	{"small_16x24x32", 16, 24, 32},
	{"medium_48x96x192", 48, 96, 192},
	{"large_64x256x256", 64, 256, 256},
}

func benchKernels(b *testing.B, run func(dst, a, bb *Tensor)) {
	for _, sh := range benchShapes {
		for _, mode := range []string{"naive", "blocked"} {
			b.Run(fmt.Sprintf("%s/%s", sh.name, mode), func(b *testing.B) {
				defer SetBlockedGEMM(true)
				SetBlockedGEMM(mode == "blocked")
				rng := stats.NewRNG(7)
				a := randomTensor(rng, sh.m, sh.k)
				bb := randomTensor(rng, sh.k, sh.n)
				dst := New(sh.m, sh.n)
				b.SetBytes(int64(8 * sh.m * sh.k * sh.n))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					run(dst, a, bb)
				}
			})
		}
	}
}

func BenchmarkMatMul(b *testing.B) {
	benchKernels(b, func(dst, a, bb *Tensor) { MatMul(dst, a, bb) })
}

func BenchmarkMatMulAT(b *testing.B) {
	for _, sh := range benchShapes {
		for _, mode := range []string{"naive", "blocked"} {
			b.Run(fmt.Sprintf("%s/%s", sh.name, mode), func(b *testing.B) {
				defer SetBlockedGEMM(true)
				SetBlockedGEMM(mode == "blocked")
				rng := stats.NewRNG(7)
				a := randomTensor(rng, sh.k, sh.m)
				bb := randomTensor(rng, sh.k, sh.n)
				dst := New(sh.m, sh.n)
				b.SetBytes(int64(8 * sh.m * sh.k * sh.n))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					MatMulAT(dst, a, bb)
				}
			})
		}
	}
}

func BenchmarkMatMulBT(b *testing.B) {
	for _, sh := range benchShapes {
		for _, mode := range []string{"naive", "blocked"} {
			b.Run(fmt.Sprintf("%s/%s", sh.name, mode), func(b *testing.B) {
				defer SetBlockedGEMM(true)
				SetBlockedGEMM(mode == "blocked")
				rng := stats.NewRNG(7)
				a := randomTensor(rng, sh.m, sh.k)
				bb := randomTensor(rng, sh.n, sh.k)
				dst := New(sh.m, sh.n)
				b.SetBytes(int64(8 * sh.m * sh.k * sh.n))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					MatMulBT(dst, a, bb)
				}
			})
		}
	}
}

// BenchmarkMatMulSparse measures the zero-skip question per kernel: row
// kernels (skip) vs blocked kernels (no skip, must not be dispatched here —
// call directly) at 0/50/90% left-operand sparsity. The committed conclusion
// lives in BENCHMARKS.md next to blockedSparseCutoff.
func BenchmarkMatMulSparse(b *testing.B) {
	const m, k, n = 64, 128, 128
	for _, frac := range []float64{0, 0.5, 0.9} {
		for _, mode := range []string{"rows_skip", "blocked_noskip"} {
			b.Run(fmt.Sprintf("zeros_%.0f%%/%s", frac*100, mode), func(b *testing.B) {
				rng := stats.NewRNG(13)
				a := randomTensor(rng, m, k)
				bb := randomTensor(rng, k, n)
				sparsify(rng, a.Data, frac)
				dst := New(m, n)
				b.SetBytes(int64(8 * m * k * n))
				b.ResetTimer()
				if mode == "rows_skip" {
					for i := 0; i < b.N; i++ {
						matmulRows(dst.Data, a.Data, bb.Data, 0, m, k, n)
					}
				} else {
					for i := 0; i < b.N; i++ {
						blockedMatMul(dst.Data, a.Data, bb.Data, m, k, n)
					}
				}
			})
		}
	}
}

// BenchmarkMatMulBTSparse is the same census for the a×bᵀ kernel, whose
// zero-skip is new in this change.
func BenchmarkMatMulBTSparse(b *testing.B) {
	const m, k, n = 64, 128, 128
	for _, frac := range []float64{0, 0.5, 0.9} {
		for _, mode := range []string{"rows_skip", "blocked_noskip"} {
			b.Run(fmt.Sprintf("zeros_%.0f%%/%s", frac*100, mode), func(b *testing.B) {
				rng := stats.NewRNG(13)
				a := randomTensor(rng, m, k)
				bb := randomTensor(rng, n, k)
				sparsify(rng, a.Data, frac)
				dst := New(m, n)
				b.SetBytes(int64(8 * m * k * n))
				b.ResetTimer()
				if mode == "rows_skip" {
					for i := 0; i < b.N; i++ {
						matmulBTRows(dst.Data, a.Data, bb.Data, 0, m, k, n)
					}
				} else {
					for i := 0; i < b.N; i++ {
						blockedMatMulBT(dst.Data, a.Data, bb.Data, m, k, n)
					}
				}
			})
		}
	}
}
