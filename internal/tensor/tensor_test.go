package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestNewAndSize(t *testing.T) {
	x := New(3, 4)
	if x.Size() != 12 || x.Rank() != 2 || x.Dim(0) != 3 || x.Dim(1) != 4 {
		t.Fatalf("unexpected metadata: %+v", x)
	}
	for _, v := range x.Data {
		//lint:ignore float-eq test asserts exact deterministic output
		if v != 0 {
			t.Fatal("New must zero-initialize")
		}
	}
}

func TestNewPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive dim")
		}
	}()
	New(3, 0)
}

func TestFromSliceAndReshape(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	//lint:ignore float-eq test asserts exact deterministic output
	if x.At(1, 2) != 6 {
		t.Fatalf("At(1,2) = %v", x.At(1, 2))
	}
	y := x.Reshape(3, 2)
	//lint:ignore float-eq test asserts exact deterministic output
	if y.At(2, 1) != 6 {
		t.Fatalf("reshaped At(2,1) = %v", y.At(2, 1))
	}
	// Views share data.
	y.Set(0, 0, 99)
	//lint:ignore float-eq test asserts exact deterministic output
	if x.Data[0] != 99 {
		t.Fatal("Reshape must share backing data")
	}
}

func TestFromSlicePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromSlice([]float64{1, 2, 3}, 2, 2)
}

func TestCloneIndependence(t *testing.T) {
	x := FromSlice([]float64{1, 2}, 2)
	y := x.Clone()
	y.Data[0] = 42
	//lint:ignore float-eq test asserts exact deterministic output
	if x.Data[0] != 1 {
		t.Fatal("Clone must copy data")
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3}, 3)
	b := FromSlice([]float64{4, 5, 6}, 3)
	a.Add(b)
	want := []float64{5, 7, 9}
	for i := range want {
		//lint:ignore float-eq test asserts exact deterministic output
		if a.Data[i] != want[i] {
			t.Fatalf("Add got %v", a.Data)
		}
	}
	a.Sub(b)
	for i, w := range []float64{1, 2, 3} {
		//lint:ignore float-eq test asserts exact deterministic output
		if a.Data[i] != w {
			t.Fatalf("Sub got %v", a.Data)
		}
	}
	a.Scale(2)
	for i, w := range []float64{2, 4, 6} {
		//lint:ignore float-eq test asserts exact deterministic output
		if a.Data[i] != w {
			t.Fatalf("Scale got %v", a.Data)
		}
	}
	a.AddScaled(0.5, b)
	for i, w := range []float64{4, 6.5, 9} {
		//lint:ignore float-eq test asserts exact deterministic output
		if a.Data[i] != w {
			t.Fatalf("AddScaled got %v", a.Data)
		}
	}
	a.Hadamard(b)
	for i, w := range []float64{16, 32.5, 54} {
		//lint:ignore float-eq test asserts exact deterministic output
		if a.Data[i] != w {
			t.Fatalf("Hadamard got %v", a.Data)
		}
	}
}

func TestDotNormMaxAbs(t *testing.T) {
	a := FromSlice([]float64{3, -4}, 2)
	b := FromSlice([]float64{1, 1}, 2)
	//lint:ignore float-eq test asserts exact deterministic output
	if got := a.Dot(b); got != -1 {
		t.Errorf("Dot = %v", got)
	}
	if got := a.Norm(); math.Abs(got-5) > 1e-12 {
		t.Errorf("Norm = %v", got)
	}
	//lint:ignore float-eq test asserts exact deterministic output
	if got := a.MaxAbs(); got != 4 {
		t.Errorf("MaxAbs = %v", got)
	}
}

func TestShapeMismatchPanics(t *testing.T) {
	a := New(2)
	b := New(3)
	for i, fn := range []func(){
		func() { a.Add(b) }, func() { a.Sub(b) },
		func() { a.AddScaled(1, b) }, func() { a.Hadamard(b) },
		func() { a.Dot(b) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("op %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

// naiveMatMul is the reference implementation used to validate the
// parallel/blocked versions.
func naiveMatMul(a, b *Tensor) *Tensor {
	m, k, n := a.Shape[0], a.Shape[1], b.Shape[1]
	out := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for p := 0; p < k; p++ {
				s += a.At(i, p) * b.At(p, j)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

func randomTensor(rng *stats.RNG, shape ...int) *Tensor {
	x := New(shape...)
	x.RandNormal(rng, 1)
	return x
}

func tensorsClose(a, b *Tensor, tol float64) bool {
	if !a.SameShape(b) {
		return false
	}
	for i := range a.Data {
		if math.Abs(a.Data[i]-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

func TestMatMulMatchesNaive(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		m, k, n := 1+rng.IntN(20), 1+rng.IntN(20), 1+rng.IntN(20)
		a := randomTensor(rng, m, k)
		b := randomTensor(rng, k, n)
		dst := New(m, n)
		MatMul(dst, a, b)
		return tensorsClose(dst, naiveMatMul(a, b), 1e-10)
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMatMulLargeParallelPath(t *testing.T) {
	// Big enough to cross parallelThreshold and exercise goroutine fan-out.
	rng := stats.NewRNG(3)
	a := randomTensor(rng, 64, 48)
	b := randomTensor(rng, 48, 56)
	dst := New(64, 56)
	MatMul(dst, a, b)
	if !tensorsClose(dst, naiveMatMul(a, b), 1e-9) {
		t.Fatal("parallel MatMul diverges from naive result")
	}
}

func TestMatMulATMatchesNaive(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		k, m, n := 1+rng.IntN(15), 1+rng.IntN(15), 1+rng.IntN(15)
		a := randomTensor(rng, k, m) // will be transposed
		b := randomTensor(rng, k, n)
		dst := New(m, n)
		MatMulAT(dst, a, b)
		// Reference: transpose a manually.
		at := New(m, k)
		for i := 0; i < k; i++ {
			for j := 0; j < m; j++ {
				at.Set(j, i, a.At(i, j))
			}
		}
		return tensorsClose(dst, naiveMatMul(at, b), 1e-10)
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMatMulBTMatchesNaive(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		m, k, n := 1+rng.IntN(15), 1+rng.IntN(15), 1+rng.IntN(15)
		a := randomTensor(rng, m, k)
		b := randomTensor(rng, n, k) // will be transposed
		dst := New(m, n)
		MatMulBT(dst, a, b)
		bt := New(k, n)
		for i := 0; i < n; i++ {
			for j := 0; j < k; j++ {
				bt.Set(j, i, b.At(i, j))
			}
		}
		return tensorsClose(dst, naiveMatMul(a, bt), 1e-10)
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMatMulDimensionPanics(t *testing.T) {
	a := New(2, 3)
	b := New(4, 5) // inner mismatch
	dst := New(2, 5)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on inner-dim mismatch")
		}
	}()
	MatMul(dst, a, b)
}

func TestMatMulDeterministicAcrossRuns(t *testing.T) {
	rng1 := stats.NewRNG(77)
	rng2 := stats.NewRNG(77)
	a1 := randomTensor(rng1, 40, 40)
	b1 := randomTensor(rng1, 40, 40)
	a2 := randomTensor(rng2, 40, 40)
	b2 := randomTensor(rng2, 40, 40)
	d1, d2 := New(40, 40), New(40, 40)
	MatMul(d1, a1, b1)
	MatMul(d2, a2, b2)
	for i := range d1.Data {
		//lint:ignore float-eq test asserts exact deterministic output
		if d1.Data[i] != d2.Data[i] {
			t.Fatal("MatMul is not bit-deterministic")
		}
	}
}
