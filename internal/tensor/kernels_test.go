package tensor

import (
	"math"
	"testing"

	"repro/internal/stats"
)

// refVec returns a deterministic pseudo-random vector of length n.
func refVec(n int, seed uint64) []float64 {
	rng := stats.NewRNG(seed)
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.Normal(0, 1)
	}
	return out
}

// TestKernelsMatchNaive checks every fused kernel against the obvious
// one-element-at-a-time loop, bit for bit, across lengths that exercise both
// the unrolled body and the scalar tail.
func TestKernelsMatchNaive(t *testing.T) {
	for _, n := range []int{0, 1, 3, 4, 7, 8, 63, 64, 65, 1000} {
		a := refVec(n, 1)
		b := refVec(n, 2)
		k := 0.37

		want := make([]float64, n)
		copy(want, b)
		for i := range want {
			want[i] += k * a[i]
		}
		got := make([]float64, n)
		copy(got, b)
		Axpy(k, a, got)
		mustEqualBits(t, "Axpy", n, got, want)

		for i := range want {
			want[i] = k * a[i]
		}
		ScaleInto(k, a, got)
		mustEqualBits(t, "ScaleInto", n, got, want)

		for i := range want {
			want[i] = a[i] - b[i]
		}
		SubInto(a, b, got)
		mustEqualBits(t, "SubInto", n, got, want)

		for i := range want {
			want[i] = a[i] + b[i]
		}
		AddInto(a, b, got)
		mustEqualBits(t, "AddInto", n, got, want)

		copy(got, a)
		copy(want, a)
		for i := range want {
			want[i] *= k
		}
		ScaleSlice(k, got)
		mustEqualBits(t, "ScaleSlice", n, got, want)

		const k2 = 0.63
		for i := range want {
			want[i] = k*a[i] + k2*b[i]
		}
		AxpbyInto(k, a, k2, b, got)
		mustEqualBits(t, "AxpbyInto", n, got, want)

		// Aliased dst: the tree reduction folds in place, dst == x.
		copy(got, a)
		AxpbyInto(k, got, k2, b, got)
		mustEqualBits(t, "AxpbyInto aliased", n, got, want)
	}
}

func mustEqualBits(t *testing.T, op string, n int, got, want []float64) {
	t.Helper()
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s n=%d: element %d = %x, want %x", op, n, i, math.Float64bits(got[i]), math.Float64bits(want[i]))
		}
	}
}

// TestKernelsLengthMismatchPanics locks in the shape discipline.
func TestKernelsLengthMismatchPanics(t *testing.T) {
	cases := []func(){
		func() { Axpy(1, make([]float64, 3), make([]float64, 4)) },
		func() { ScaleInto(1, make([]float64, 3), make([]float64, 4)) },
		func() { SubInto(make([]float64, 4), make([]float64, 3), make([]float64, 4)) },
		func() { AddInto(make([]float64, 3), make([]float64, 4), make([]float64, 4)) },
		func() { AxpbyInto(1, make([]float64, 3), 1, make([]float64, 4), make([]float64, 4)) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

// TestKernelsZeroAlloc asserts the kernels never allocate — they sit inside
// the per-client aggregation loop.
func TestKernelsZeroAlloc(t *testing.T) {
	a := refVec(4096, 3)
	dst := refVec(4096, 4)
	if n := testing.AllocsPerRun(100, func() {
		Axpy(0.5, a, dst)
		ScaleInto(0.5, a, dst)
		AddInto(a, a, dst)
		SubInto(a, a, dst)
		ScaleSlice(0.999, dst)
		AxpbyInto(0.5, a, 0.5, a, dst)
		//lint:ignore float-eq test asserts exact deterministic output
	}); n != 0 {
		t.Fatalf("kernels allocated %.1f times per run, want 0", n)
	}
}

func BenchmarkAxpy(b *testing.B) {
	x := refVec(1<<14, 5)
	dst := refVec(1<<14, 6)
	b.SetBytes(8 << 14)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Axpy(0.5, x, dst)
	}
}

func BenchmarkScaleInto(b *testing.B) {
	x := refVec(1<<14, 7)
	dst := make([]float64, 1<<14)
	b.SetBytes(8 << 14)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ScaleInto(0.5, x, dst)
	}
}

func BenchmarkAddInto(b *testing.B) {
	x := refVec(1<<14, 8)
	y := refVec(1<<14, 9)
	dst := make([]float64, 1<<14)
	b.SetBytes(8 << 14)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AddInto(x, y, dst)
	}
}
