// Package tensor implements the dense numeric arrays underlying the neural
// network substrate: shape-checked element-wise arithmetic, parallel blocked
// matrix multiplication, and the reshaping helpers used by the convolution
// layers.
//
// Tensors are row-major float64 arrays. The package favours explicit,
// allocation-conscious APIs (dst-style in-place variants) because federated
// simulation multiplies every cost by clients × rounds.
package tensor

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// Tensor is a dense row-major array of float64 with an explicit shape.
type Tensor struct {
	Shape []int
	Data  []float64
}

// New allocates a zero tensor with the given shape.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{Shape: s, Data: make([]float64, n)}
}

// FromSlice wraps data in a tensor of the given shape. The slice is used
// directly (not copied); its length must match the shape volume.
func FromSlice(data []float64, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v", len(data), shape))
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{Shape: s, Data: data}
}

// Size returns the total number of elements.
//
//lint:hotpath
func (t *Tensor) Size() int { return len(t.Data) }

// Dim returns the i-th dimension.
func (t *Tensor) Dim(i int) int { return t.Shape[i] }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.Shape) }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	out := New(t.Shape...)
	copy(out.Data, t.Data)
	return out
}

// Reshape returns a view of the same data with a new shape. The volume must
// match. The returned tensor shares Data with the receiver.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(t.Data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (%d elems) to %v", t.Shape, len(t.Data), shape))
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{Shape: s, Data: t.Data}
}

// SameShape reports whether two tensors have identical shapes.
//
//lint:hotpath
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.Shape) != len(o.Shape) {
		return false
	}
	for i := range t.Shape {
		if t.Shape[i] != o.Shape[i] {
			return false
		}
	}
	return true
}

// At returns the element at the given multi-index (2-D convenience).
func (t *Tensor) At(i, j int) float64 {
	return t.Data[i*t.Shape[1]+j]
}

// Set writes the element at the given 2-D index.
func (t *Tensor) Set(i, j int, v float64) {
	t.Data[i*t.Shape[1]+j] = v
}

// Zero sets every element to 0.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float64) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// RandNormal fills the tensor with N(0, sigma^2) samples from rng.
func (t *Tensor) RandNormal(rng *stats.RNG, sigma float64) {
	for i := range t.Data {
		t.Data[i] = rng.Normal(0, sigma)
	}
}

// Add accumulates o into t element-wise. Shapes must match.
func (t *Tensor) Add(o *Tensor) {
	t.mustMatch(o, "Add")
	for i, v := range o.Data {
		t.Data[i] += v
	}
}

// Sub subtracts o from t element-wise.
func (t *Tensor) Sub(o *Tensor) {
	t.mustMatch(o, "Sub")
	for i, v := range o.Data {
		t.Data[i] -= v
	}
}

// Scale multiplies every element by k.
//
//lint:hotpath
func (t *Tensor) Scale(k float64) {
	ScaleSlice(k, t.Data)
}

// AddScaled accumulates k*o into t: t += k*o.
//
//lint:hotpath
func (t *Tensor) AddScaled(k float64, o *Tensor) {
	t.mustMatch(o, "AddScaled")
	Axpy(k, o.Data, t.Data)
}

// Hadamard multiplies t element-wise by o.
func (t *Tensor) Hadamard(o *Tensor) {
	t.mustMatch(o, "Hadamard")
	for i, v := range o.Data {
		t.Data[i] *= v
	}
}

// Dot returns the inner product of the flattened tensors.
func (t *Tensor) Dot(o *Tensor) float64 {
	t.mustMatch(o, "Dot")
	s := 0.0
	for i, v := range o.Data {
		s += t.Data[i] * v
	}
	return s
}

// Norm returns the Euclidean norm of the flattened tensor.
func (t *Tensor) Norm() float64 {
	s := 0.0
	for _, v := range t.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// MaxAbs returns the largest absolute element, or 0 for an empty tensor.
func (t *Tensor) MaxAbs() float64 {
	m := 0.0
	for _, v := range t.Data {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

//lint:hotpath
func (t *Tensor) mustMatch(o *Tensor, op string) {
	if len(t.Data) != len(o.Data) {
		panic(fmt.Sprintf("tensor: %s size mismatch %v vs %v", op, t.Shape, o.Shape))
	}
}
