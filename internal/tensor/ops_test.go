package tensor

import (
	"math"
	"testing"

	"repro/internal/stats"
)

func TestTranspose(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	y := x.Transpose()
	if y.Shape[0] != 3 || y.Shape[1] != 2 {
		t.Fatalf("shape %v", y.Shape)
	}
	//lint:ignore float-eq test asserts exact deterministic output
	if y.At(0, 0) != 1 || y.At(2, 1) != 6 || y.At(1, 0) != 2 {
		t.Fatalf("values %v", y.Data)
	}
	// Double transpose is identity.
	z := y.Transpose()
	for i := range x.Data {
		//lint:ignore float-eq test asserts exact deterministic output
		if z.Data[i] != x.Data[i] {
			t.Fatal("double transpose != identity")
		}
	}
}

func TestTransposePanicsOnRank(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2, 2, 2).Transpose()
}

func TestSumMean(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	//lint:ignore float-eq test asserts exact deterministic output
	if x.Sum() != 10 || x.Mean() != 2.5 {
		t.Fatalf("Sum=%v Mean=%v", x.Sum(), x.Mean())
	}
	empty := &Tensor{Shape: []int{0}}
	//lint:ignore float-eq test asserts exact deterministic output
	if empty.Mean() != 0 {
		t.Fatal("empty mean")
	}
}

func TestRowsView(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 3, 2)
	v := x.RowsView(1, 3)
	//lint:ignore float-eq test asserts exact deterministic output
	if v.Shape[0] != 2 || v.At(0, 0) != 3 {
		t.Fatalf("view %v %v", v.Shape, v.Data)
	}
	v.Set(0, 0, 99)
	//lint:ignore float-eq test asserts exact deterministic output
	if x.At(1, 0) != 99 {
		t.Fatal("view must share data")
	}
	for _, fn := range []func(){
		func() { x.RowsView(-1, 2) },
		func() { x.RowsView(0, 4) },
		func() { x.RowsView(2, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestColRowSums(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	cs := x.ColSums()
	//lint:ignore float-eq test asserts exact deterministic output
	if cs[0] != 5 || cs[1] != 7 || cs[2] != 9 {
		t.Fatalf("ColSums %v", cs)
	}
	rs := x.RowSums()
	//lint:ignore float-eq test asserts exact deterministic output
	if rs[0] != 6 || rs[1] != 15 {
		t.Fatalf("RowSums %v", rs)
	}
}

func TestApply(t *testing.T) {
	x := FromSlice([]float64{1, 4, 9}, 3)
	x.Apply(math.Sqrt)
	//lint:ignore float-eq test asserts exact deterministic output
	if x.Data[0] != 1 || x.Data[1] != 2 || x.Data[2] != 3 {
		t.Fatalf("Apply %v", x.Data)
	}
}

func TestStack(t *testing.T) {
	a := FromSlice([]float64{1, 2}, 1, 2)
	b := FromSlice([]float64{3, 4, 5, 6}, 2, 2)
	s := Stack(a, b)
	if s.Shape[0] != 3 || s.Shape[1] != 2 {
		t.Fatalf("shape %v", s.Shape)
	}
	want := []float64{1, 2, 3, 4, 5, 6}
	for i, w := range want {
		//lint:ignore float-eq test asserts exact deterministic output
		if s.Data[i] != w {
			t.Fatalf("Stack %v", s.Data)
		}
	}
	for _, fn := range []func(){
		func() { Stack() },
		func() { Stack(a, FromSlice([]float64{1, 2, 3}, 1, 3)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func BenchmarkMatMul64(b *testing.B)  { benchMatMul(b, 64) }
func BenchmarkMatMul128(b *testing.B) { benchMatMul(b, 128) }
func BenchmarkMatMul256(b *testing.B) { benchMatMul(b, 256) }

func benchMatMul(b *testing.B, n int) {
	rng := stats.NewRNG(1)
	a := randomTensor(rng, n, n)
	c := randomTensor(rng, n, n)
	dst := New(n, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(dst, a, c)
	}
	b.SetBytes(int64(8 * n * n))
}

func BenchmarkMatMulAT128(b *testing.B) {
	rng := stats.NewRNG(2)
	a := randomTensor(rng, 128, 128)
	c := randomTensor(rng, 128, 128)
	dst := New(128, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulAT(dst, a, c)
	}
}

func BenchmarkMatMulBT128(b *testing.B) {
	rng := stats.NewRNG(3)
	a := randomTensor(rng, 128, 128)
	c := randomTensor(rng, 128, 128)
	dst := New(128, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulBT(dst, a, c)
	}
}
