package tensor

import "fmt"

// Transpose returns a new tensor holding the transpose of a 2-D tensor.
func (t *Tensor) Transpose() *Tensor {
	if t.Rank() != 2 {
		panic(fmt.Sprintf("tensor: Transpose needs rank 2, got %v", t.Shape))
	}
	r, c := t.Shape[0], t.Shape[1]
	out := New(c, r)
	for i := 0; i < r; i++ {
		row := t.Data[i*c : (i+1)*c]
		for j, v := range row {
			out.Data[j*r+i] = v
		}
	}
	return out
}

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float64 {
	s := 0.0
	for _, v := range t.Data {
		s += v
	}
	return s
}

// Mean returns the mean of all elements (0 for an empty tensor).
func (t *Tensor) Mean() float64 {
	if len(t.Data) == 0 {
		return 0
	}
	return t.Sum() / float64(len(t.Data))
}

// RowsView returns a view of rows [lo, hi) of a 2-D tensor, sharing data.
func (t *Tensor) RowsView(lo, hi int) *Tensor {
	if t.Rank() != 2 {
		panic(fmt.Sprintf("tensor: RowsView needs rank 2, got %v", t.Shape))
	}
	if lo < 0 || hi > t.Shape[0] || lo > hi {
		panic(fmt.Sprintf("tensor: RowsView [%d,%d) out of %d rows", lo, hi, t.Shape[0]))
	}
	c := t.Shape[1]
	return &Tensor{Shape: []int{hi - lo, c}, Data: t.Data[lo*c : hi*c]}
}

// ColSums returns the per-column sums of a 2-D tensor.
func (t *Tensor) ColSums() []float64 {
	if t.Rank() != 2 {
		panic(fmt.Sprintf("tensor: ColSums needs rank 2, got %v", t.Shape))
	}
	r, c := t.Shape[0], t.Shape[1]
	out := make([]float64, c)
	for i := 0; i < r; i++ {
		row := t.Data[i*c : (i+1)*c]
		for j, v := range row {
			out[j] += v
		}
	}
	return out
}

// RowSums returns the per-row sums of a 2-D tensor.
func (t *Tensor) RowSums() []float64 {
	if t.Rank() != 2 {
		panic(fmt.Sprintf("tensor: RowSums needs rank 2, got %v", t.Shape))
	}
	r, c := t.Shape[0], t.Shape[1]
	out := make([]float64, r)
	for i := 0; i < r; i++ {
		s := 0.0
		for _, v := range t.Data[i*c : (i+1)*c] {
			s += v
		}
		out[i] = s
	}
	return out
}

// Apply replaces every element with fn(element).
func (t *Tensor) Apply(fn func(float64) float64) {
	for i, v := range t.Data {
		t.Data[i] = fn(v)
	}
}

// Stack concatenates 2-D tensors with equal column counts along rows.
func Stack(parts ...*Tensor) *Tensor {
	if len(parts) == 0 {
		panic("tensor: Stack of nothing")
	}
	cols := parts[0].Shape[1]
	rows := 0
	for _, p := range parts {
		if p.Rank() != 2 || p.Shape[1] != cols {
			panic(fmt.Sprintf("tensor: Stack shape mismatch %v", p.Shape))
		}
		rows += p.Shape[0]
	}
	out := New(rows, cols)
	off := 0
	for _, p := range parts {
		copy(out.Data[off:], p.Data)
		off += len(p.Data)
	}
	return out
}
