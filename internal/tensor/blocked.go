package tensor

import (
	"sync"
	"sync/atomic"
)

// Cache-blocked tiled GEMM backing MatMul/MatMulAT/MatMulBT on large dense
// problems.
//
// Layout: the m×n output is cut into gemmMC×gemmNC macro tiles; each tile is
// one dispatch unit (an inline loop when serial, a work-pulling goroutine
// grid when parallel — replacing the old row-chunk fan-out), and inside a
// tile the shared dimension is walked in ascending gemmKC panels. For MatMul
// and MatMulAT the current B panel — and for MatMulAT the transposed A tile —
// is packed contiguously into a pooled per-worker buffer so the 4-row
// micro-kernel streams both operands linearly; MatMulBT needs no packing
// because both operand rows are already contiguous along the shared
// dimension.
//
// Determinism: every output element is still one reduction over p = 0..k-1
// in strictly ascending order. Panels are visited in ascending p and the
// partial sum is spilled to dst between panels; a float64 store/load
// round-trip is exact, so the blocked kernels are bit-for-bit identical to
// the naive row kernels — pinned by the golden Float64bits tests in
// blocked_test.go.

const (
	// gemmMC×gemmNC is the macro-tile shape, one dispatch unit: 64×128
	// output elements (64 KiB) plus a packed 128×128 B panel (128 KiB)
	// stay L2-resident on any plausible core.
	gemmMC = 64
	gemmNC = 128
	// gemmKC is the panel depth along the shared dimension: accumulators
	// run this long between dst spills, and one B panel holds
	// gemmKC×gemmNC packed values.
	gemmKC = 256
	// blockedMinWork is the m·n·k multiply-add count below which tile
	// setup and packing cost more than the cache locality they buy and
	// the naive row kernels win (measured; see BENCHMARKS.md).
	blockedMinWork = 1 << 15
	// gemmPadStride pads the packed panel's row stride away from powers of
	// two: a 128-value (1 KiB) stride maps successive packed rows onto the
	// same handful of L1 sets and the transpose thrashes; one extra cache
	// line of slack spreads them across all sets.
	gemmPadStride = 8
	// blockedSparseCutoff is the sampled exact-zero fraction of the left
	// operand above which MatMul and MatMulAT dispatch prefers the
	// zero-skipping row kernels. The blocked micro-kernel cannot skip
	// zeros — the 4-row unroll shares each b load across rows — and the
	// measured crossover sits between 0% zeros (blocked wins ~1.3×) and
	// 50% zeros (skipping wins ~2.2×), so the cutoff lands below the
	// ~50% sparsity of steady-state ReLU activations, the dominant
	// sparse left operand in training (see BENCHMARKS.md).
	blockedSparseCutoff = 0.3
	// sparseCutoffNever disables the sparsity fallback. MatMulBT uses it:
	// its naive kernel walks whole a-rows per output element, so skipping
	// scattered zeros never recoups the blocked kernel's locality — blocked
	// BT wins even at 90% measured zeros (see BENCHMARKS.md).
	sparseCutoffNever = 2.0
	// zeroFracSamples caps the sparsity census cost per dispatch.
	zeroFracSamples = 512
)

// blockedOff inverts the sense of the toggle so its zero value means
// "blocked GEMM enabled" — no package init needed.
var blockedOff atomic.Bool

// SetBlockedGEMM enables or disables the blocked kernels at runtime. The
// bench grid uses it to time the naive baseline; results are bit-identical
// either way, so this is purely a performance switch.
func SetBlockedGEMM(on bool) { blockedOff.Store(!on) }

// BlockedGEMM reports whether the blocked kernels are enabled.
func BlockedGEMM() bool { return !blockedOff.Load() }

// useBlocked decides naive-vs-blocked for one matmul call. The choice never
// affects results (both paths are bit-identical), only speed: small problems
// stay on the inline row kernels, and left operands sparser than the
// kernel's cutoff keep the zero-skip fast path. Each kernel passes its own
// cutoff — sparseCutoffNever skips the census entirely.
func useBlocked(m, k, n int, a []float64, sparseCutoff float64) bool {
	if blockedOff.Load() || m*n*k < blockedMinWork || k < 4 || n < 4 {
		return false
	}
	if sparseCutoff >= sparseCutoffNever {
		return true
	}
	return leftZeroFrac(a) < sparseCutoff
}

// leftZeroFrac estimates the exact-zero fraction of the left operand from at
// most zeroFracSamples evenly strided probes — O(1) relative to the O(m·n·k)
// matmul it steers. Deterministic: same data, same stride, same answer.
//
//lint:hotpath
func leftZeroFrac(a []float64) float64 {
	step := len(a) / zeroFracSamples
	if step == 0 {
		step = 1
	}
	zeros, total := 0, 0
	for i := 0; i < len(a); i += step {
		//lint:ignore float-eq sparsity census only picks a kernel; both kernels produce identical bits
		if a[i] == 0 {
			zeros++
		}
		total++
	}
	return float64(zeros) / float64(total)
}

// packBuf is a per-worker packing scratch, pooled so steady-state training
// reuses the same buffers instead of allocating per matmul.
type packBuf struct {
	b []float64 // packed B panel (gemmKC × ≤gemmNC)
	a []float64 // packed transposed A tile for MatMulAT (gemmMC × gemmKC)
}

var packPool = sync.Pool{New: func() any { return new(packBuf) }}

// growB returns the packed-B scratch with room for need values.
//
//lint:hotpath
func (pb *packBuf) growB(need int) []float64 {
	if cap(pb.b) < need {
		pb.b = make([]float64, need)
	}
	return pb.b[:need]
}

// growA returns the packed-A scratch with room for need values.
//
//lint:hotpath
func (pb *packBuf) growA(need int) []float64 {
	if cap(pb.a) < need {
		pb.a = make([]float64, need)
	}
	return pb.a[:need]
}

// blockedLoop runs fn for every macro tile t in [0, ti·tj), either inline or
// across cachedProcs() work-pulling goroutines. Tiles write disjoint dst
// regions and each carries its own fixed reduction order, so schedule —
// serial, parallel, any interleaving — cannot change a single bit.
func blockedLoop(ti, tj, work int, fn func(t int, pb *packBuf)) {
	tiles := ti * tj
	workers := cachedProcs()
	if workers > tiles {
		workers = tiles
	}
	if workers <= 1 || work < parallelThreshold {
		pb := packPool.Get().(*packBuf)
		for t := 0; t < tiles; t++ {
			fn(t, pb)
		}
		packPool.Put(pb)
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			pb := packPool.Get().(*packBuf)
			for {
				t := int(next.Add(1)) - 1
				if t >= tiles {
					break
				}
				fn(t, pb)
			}
			packPool.Put(pb)
		}()
	}
	wg.Wait()
}

// tileBounds converts a flat tile index into its output-row and output-col
// ranges.
//
//lint:hotpath
func tileBounds(t, tj, m, n int) (i0, i1, j0, j1 int) {
	i0 = (t / tj) * gemmMC
	i1 = min(i0+gemmMC, m)
	j0 = (t % tj) * gemmNC
	j1 = min(j0+gemmNC, n)
	return
}

// blockedMatMul computes dst = a×b (a m×k, b k×n) with the tiled kernels.
func blockedMatMul(dst, a, b []float64, m, k, n int) {
	tj := (n + gemmNC - 1) / gemmNC
	blockedLoop((m+gemmMC-1)/gemmMC, tj, m*n*k, func(t int, pb *packBuf) {
		i0, i1, j0, j1 := tileBounds(t, tj, m, n)
		matmulTile(dst, a, b, k, n, i0, i1, j0, j1, pb)
	})
}

// matmulTile computes the dst[i0:i1, j0:j1] tile of dst = a×b. The B panel
// is packed transposed so the micro-kernel runs in dot form: the reduction
// lives in registers across the whole panel instead of read-modify-writing
// dst once per p (8 dst memory ops per 4 madds in update form, 5 loads and
// no stores in dot form).
//
//lint:hotpath
func matmulTile(dst, a, b []float64, k, n, i0, i1, j0, j1 int, pb *packBuf) {
	jw := j1 - j0
	for i := i0; i < i1; i++ {
		clear(dst[i*n+j0 : i*n+j1])
	}
	bt := pb.growB((gemmKC + gemmPadStride) * jw)
	for p0 := 0; p0 < k; p0 += gemmKC {
		p1 := min(p0+gemmKC, k)
		kw := p1 - p0
		ks := kw + gemmPadStride
		packPanelBT(bt, b, p0, p1, j0, j1, n)
		i := i0
		for ; i+4 <= i1; i += 4 {
			microDotQuad(
				dst[i*n+j0:i*n+j1], dst[(i+1)*n+j0:(i+1)*n+j1],
				dst[(i+2)*n+j0:(i+2)*n+j1], dst[(i+3)*n+j0:(i+3)*n+j1],
				a[i*k+p0:i*k+p1], a[(i+1)*k+p0:(i+1)*k+p1],
				a[(i+2)*k+p0:(i+2)*k+p1], a[(i+3)*k+p0:(i+3)*k+p1],
				bt, jw, kw, ks)
		}
		for ; i < i1; i++ {
			microDotRow(dst[i*n+j0:i*n+j1], a[i*k+p0:i*k+p1], bt, jw, kw, ks)
		}
	}
}

// blockedMatMulAT computes dst = aᵀ×b (a k×m, b k×n) with the tiled kernels.
// The A tile is repacked transposed so the micro-kernel reads it with unit
// stride instead of stride-m column walks.
func blockedMatMulAT(dst, a, b []float64, m, k, n int) {
	tj := (n + gemmNC - 1) / gemmNC
	blockedLoop((m+gemmMC-1)/gemmMC, tj, m*n*k, func(t int, pb *packBuf) {
		i0, i1, j0, j1 := tileBounds(t, tj, m, n)
		matmulATTile(dst, a, b, m, k, n, i0, i1, j0, j1, pb)
	})
}

// matmulATTile computes the dst[i0:i1, j0:j1] tile of dst = aᵀ×b.
//
//lint:hotpath
func matmulATTile(dst, a, b []float64, m, k, n, i0, i1, j0, j1 int, pb *packBuf) {
	jw := j1 - j0
	for i := i0; i < i1; i++ {
		clear(dst[i*n+j0 : i*n+j1])
	}
	bt := pb.growB((gemmKC + gemmPadStride) * jw)
	ap := pb.growA((gemmKC + gemmPadStride) * gemmMC)
	for p0 := 0; p0 < k; p0 += gemmKC {
		p1 := min(p0+gemmKC, k)
		kw := p1 - p0
		ks := kw + gemmPadStride
		packPanelBT(bt, b, p0, p1, j0, j1, n)
		packTileAT(ap, a, m, i0, i1, p0, p1)
		i := i0
		for ; i+4 <= i1; i += 4 {
			o := (i - i0) * ks
			microDotQuad(
				dst[i*n+j0:i*n+j1], dst[(i+1)*n+j0:(i+1)*n+j1],
				dst[(i+2)*n+j0:(i+2)*n+j1], dst[(i+3)*n+j0:(i+3)*n+j1],
				ap[o:o+kw], ap[o+ks:o+ks+kw], ap[o+2*ks:o+2*ks+kw], ap[o+3*ks:o+3*ks+kw],
				bt, jw, kw, ks)
		}
		for ; i < i1; i++ {
			o := (i - i0) * ks
			microDotRow(dst[i*n+j0:i*n+j1], ap[o:o+kw], bt, jw, kw, ks)
		}
	}
}

// blockedMatMulBT computes dst = a×bᵀ (a m×k, b n×k) with the tiled kernels.
// No packing: both operand rows are already contiguous along k, and the
// 4-row dot micro-kernel's independent accumulator chains supply the
// instruction-level parallelism a single dot product lacks.
func blockedMatMulBT(dst, a, b []float64, m, k, n int) {
	tj := (n + gemmNC - 1) / gemmNC
	blockedLoop((m+gemmMC-1)/gemmMC, tj, m*n*k, func(t int, pb *packBuf) {
		i0, i1, j0, j1 := tileBounds(t, tj, m, n)
		matmulBTTile(dst, a, b, k, n, i0, i1, j0, j1)
	})
}

// matmulBTTile computes the dst[i0:i1, j0:j1] tile of dst = a×bᵀ. No
// packing: row j of b already is column j of bᵀ laid out contiguously along
// k, so it feeds microDotQuad directly with row stride k.
//
//lint:hotpath
func matmulBTTile(dst, a, b []float64, k, n, i0, i1, j0, j1 int) {
	jw := j1 - j0
	for i := i0; i < i1; i++ {
		clear(dst[i*n+j0 : i*n+j1])
	}
	for p0 := 0; p0 < k; p0 += gemmKC {
		p1 := min(p0+gemmKC, k)
		kw := p1 - p0
		bt := b[j0*k+p0:]
		i := i0
		for ; i+4 <= i1; i += 4 {
			microDotQuad(
				dst[i*n+j0:i*n+j1], dst[(i+1)*n+j0:(i+1)*n+j1],
				dst[(i+2)*n+j0:(i+2)*n+j1], dst[(i+3)*n+j0:(i+3)*n+j1],
				a[i*k+p0:i*k+p1], a[(i+1)*k+p0:(i+1)*k+p1],
				a[(i+2)*k+p0:(i+2)*k+p1], a[(i+3)*k+p0:(i+3)*k+p1],
				bt, jw, kw, k)
		}
		for ; i < i1; i++ {
			microDotRow(dst[i*n+j0:i*n+j1], a[i*k+p0:i*k+p1], bt, jw, kw, k)
		}
	}
}

// packPanelBT transposes b[p0:p1, j0:j1] into bt so column j of the panel is
// contiguous: bt[(j-j0)·kw + (p-p0)] = b[p·n + j]. Reads stream b row-wise;
// writes revisit the same jw cache lines each p step, so the transpose stays
// L1-resident. Cost is one touch per packed value, amortized over the
// (i1-i0) micro-kernel rows that reuse the panel.
//
//lint:hotpath
func packPanelBT(bt, b []float64, p0, p1, j0, j1, n int) {
	ks := p1 - p0 + gemmPadStride
	for p := p0; p < p1; p++ {
		brow := b[p*n+j0 : p*n+j1]
		for j, bv := range brow {
			bt[j*ks+(p-p0)] = bv
		}
	}
}

// packTileAT copies aᵀ[i0:i1, p0:p1] (i.e. a[p0:p1, i0:i1] transposed) into
// ap row-contiguously, turning the stride-m column reads of matmulATRows into
// one strided pass amortized over the whole panel.
//
//lint:hotpath
func packTileAT(ap, a []float64, m, i0, i1, p0, p1 int) {
	kw := p1 - p0
	ks := kw + gemmPadStride
	for p := p0; p < p1; p++ {
		arow := a[p*m+i0 : p*m+i1]
		for i, av := range arow {
			ap[i*ks+(p-p0)] = av
		}
	}
}

// microDotQuad accumulates one k-panel into four output rows (d0..d3, each
// of length jw) in 4×2 register-blocked dot form: columns are consumed in
// pairs, so the inner loop keeps 8 independent accumulator chains live
// (hiding FP add latency) while loading 6 values per 8 multiply-adds — a is
// reused across the column pair, b across the four rows. bt holds the panel
// columns: column j starts at bt[j·ks] and spans kw values (packed panels
// pass a padded ks to dodge L1 set aliasing; MatMulBT passes b itself with
// ks = k).
//
// Determinism: accumulator s_rc reduces column c over p strictly ascending;
// the partial sum round-trips through dst between panels, which is exact —
// per-element order is identical to the naive kernel's.
//
//lint:hotpath
func microDotQuad(d0, d1, d2, d3, a0, a1, a2, a3, bt []float64, jw, kw, ks int) {
	j := 0
	for ; j+2 <= jw; j += 2 {
		c0 := bt[j*ks : j*ks+kw]
		// Re-slice every operand to len(c0) so the compiler proves the
		// range index is in bounds for all of them and drops the five
		// per-iteration bounds checks from the inner loop.
		c1 := bt[(j+1)*ks : (j+1)*ks+kw][:len(c0)]
		x0, x1, x2, x3 := a0[:len(c0)], a1[:len(c0)], a2[:len(c0)], a3[:len(c0)]
		s00, s01 := d0[j], d0[j+1]
		s10, s11 := d1[j], d1[j+1]
		s20, s21 := d2[j], d2[j+1]
		s30, s31 := d3[j], d3[j+1]
		for p, bv0 := range c0 {
			bv1 := c1[p]
			av0, av1, av2, av3 := x0[p], x1[p], x2[p], x3[p]
			s00 += av0 * bv0
			s01 += av0 * bv1
			s10 += av1 * bv0
			s11 += av1 * bv1
			s20 += av2 * bv0
			s21 += av2 * bv1
			s30 += av3 * bv0
			s31 += av3 * bv1
		}
		d0[j], d0[j+1] = s00, s01
		d1[j], d1[j+1] = s10, s11
		d2[j], d2[j+1] = s20, s21
		d3[j], d3[j+1] = s30, s31
	}
	if j < jw {
		c0 := bt[j*ks : j*ks+kw]
		s0, s1, s2, s3 := d0[j], d1[j], d2[j], d3[j]
		for p, bv := range c0 {
			s0 += a0[p] * bv
			s1 += a1[p] * bv
			s2 += a2[p] * bv
			s3 += a3[p] * bv
		}
		d0[j], d1[j], d2[j], d3[j] = s0, s1, s2, s3
	}
}

// microDotRow is the row-tail kernel: one output row, columns in pairs.
//
//lint:hotpath
func microDotRow(d0, a0, bt []float64, jw, kw, ks int) {
	j := 0
	for ; j+2 <= jw; j += 2 {
		c0 := bt[j*ks : j*ks+kw]
		c1 := bt[(j+1)*ks : (j+1)*ks+kw][:len(c0)]
		x0 := a0[:len(c0)]
		s0, s1 := d0[j], d0[j+1]
		for p, bv0 := range c0 {
			av := x0[p]
			s0 += av * bv0
			s1 += av * c1[p]
		}
		d0[j], d0[j+1] = s0, s1
	}
	if j < jw {
		c0 := bt[j*ks : j*ks+kw]
		s0 := d0[j]
		for p, bv := range c0 {
			s0 += a0[p] * bv
		}
		d0[j] = s0
	}
}
