// Package multimodel implements the multi-model HFL scenario of Wei et al.
// (IEEE NAS'22), the participant-selection problem the paper cites as
// reference [23]: several federated models share the same client/edge
// fleet, and each global round every group can serve at most one model.
// The scheduler decides which groups train which model.
//
// Three schedulers are provided: Random (uniform split), RoundRobin (fixed
// rotation), and NeedyFirst — the CoV-aware policy in the spirit of the
// paper's prioritized sampling: the model with the lowest current accuracy
// picks first, and every model prefers low-CoV groups.
package multimodel

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/grouping"
	"repro/internal/sampling"
	"repro/internal/stats"
)

// Scheduler assigns groups to models each round.
type Scheduler int

// The scheduling policies.
const (
	// Random splits the sampled groups uniformly at random.
	Random Scheduler = iota
	// RoundRobin rotates group blocks across models.
	RoundRobin
	// NeedyFirst lets the currently-worst model pick its groups first,
	// each pick CoV-prioritized.
	NeedyFirst
)

// String names the scheduler.
func (s Scheduler) String() string {
	switch s {
	case Random:
		return "Random"
	case RoundRobin:
		return "RoundRobin"
	case NeedyFirst:
		return "NeedyFirst"
	}
	return fmt.Sprintf("Scheduler(%d)", int(s))
}

// Config parameterizes a multi-model run.
type Config struct {
	// Models is the number of concurrent models (all built by the
	// system's NewModel with distinct seeds).
	Models int
	// GroupsPerModel is S for each model per round.
	GroupsPerModel int
	// Scheduler picks the assignment policy.
	Scheduler Scheduler
	// Train carries the shared per-group training knobs (T/K/E, LR, ...).
	// Grouping must be set; Sampling steers NeedyFirst's preference.
	Train core.Config
}

// ModelState tracks one model through the run.
type ModelState struct {
	Name     string
	Params   []float64
	Accuracy float64
	Rounds   []float64 // accuracy after each global round
}

// Result is the outcome of a multi-model run.
type Result struct {
	Models []*ModelState
	// MeanAccuracy is the final average over models.
	MeanAccuracy float64
	// Assignments[m] counts groups served to model m in total.
	Assignments []int
}

// Train runs T global rounds of multi-model HFL on the system.
func Train(sys *core.System, cfg Config) *Result {
	if cfg.Models < 1 {
		panic("multimodel: need at least one model")
	}
	if cfg.GroupsPerModel < 1 {
		panic("multimodel: GroupsPerModel must be positive")
	}
	if cfg.Train.Grouping == nil {
		panic("multimodel: Train.Grouping is required")
	}
	rng := stats.NewRNG(cfg.Train.Seed ^ 0x3417130de1)
	groups := grouping.FormAll(cfg.Train.Grouping, sys.Edges, sys.Classes, rng.Split(1))
	probs := sampling.Probabilities(groups, cfg.Train.Sampling)

	states := make([]*ModelState, cfg.Models)
	model := sys.NewModel(sys.ModelSeed)
	for m := range states {
		mm := sys.NewModel(sys.ModelSeed + uint64(m))
		states[m] = &ModelState{Name: fmt.Sprintf("model-%d", m), Params: mm.ParamVector()}
	}
	res := &Result{Models: states, Assignments: make([]int, cfg.Models)}

	for t := 0; t < cfg.Train.GlobalRounds; t++ {
		assignment := assign(cfg, states, groups, probs, rng.Split(uint64(10+t)))
		for m, picked := range assignment {
			if len(picked) == 0 {
				continue
			}
			res.Assignments[m] += len(picked)
			// Weighted (biased) aggregation over this model's groups.
			next := make([]float64, len(states[m].Params))
			nt := 0
			for _, gi := range picked {
				nt += groups[gi].NumSamples()
			}
			for _, gi := range picked {
				gp, _, _ := core.RunGroupRounds(sys, cfg.Train, groups[gi], states[m].Params, t)
				w := float64(groups[gi].NumSamples()) / float64(nt)
				for j, v := range gp {
					next[j] += w * v
				}
			}
			states[m].Params = next
		}
		for _, st := range states {
			model.SetParamVector(st.Params)
			st.Accuracy, _ = core.Evaluate(model, sys.Test, 0)
			st.Rounds = append(st.Rounds, st.Accuracy)
		}
	}
	sum := 0.0
	for _, st := range states {
		sum += st.Accuracy
	}
	res.MeanAccuracy = sum / float64(len(states))
	return res
}

// assign distributes up to Models×GroupsPerModel distinct groups.
func assign(cfg Config, states []*ModelState, groups []*grouping.Group, probs []float64, rng *stats.RNG) [][]int {
	total := cfg.Models * cfg.GroupsPerModel
	if total > len(groups) {
		total = len(groups)
	}
	out := make([][]int, cfg.Models)
	switch cfg.Scheduler {
	case Random:
		perm := rng.Perm(len(groups))[:total]
		for i, gi := range perm {
			m := i % cfg.Models
			out[m] = append(out[m], gi)
		}
	case RoundRobin:
		// Deterministic rotation: model m takes the block starting at
		// (round-varying) offset — rng.IntN supplies the per-round shift so
		// every model sees every group region over time.
		shift := rng.IntN(len(groups))
		for i := 0; i < total; i++ {
			gi := (shift + i) % len(groups)
			out[i%cfg.Models] = append(out[i%cfg.Models], gi)
		}
	case NeedyFirst:
		// Models ordered by ascending accuracy; each picks its S groups by
		// CoV-prioritized sampling from the remaining pool.
		order := make([]int, cfg.Models)
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(a, b int) bool {
			return states[order[a]].Accuracy < states[order[b]].Accuracy
		})
		remaining := append([]float64(nil), probs...)
		for _, m := range order {
			for k := 0; k < cfg.GroupsPerModel; k++ {
				if exhausted(remaining) {
					break
				}
				gi := sampling.Sample(rng, remaining, 1)[0]
				remaining[gi] = 0
				out[m] = append(out[m], gi)
			}
		}
	default:
		panic(fmt.Sprintf("multimodel: unknown scheduler %d", int(cfg.Scheduler)))
	}
	return out
}

func exhausted(p []float64) bool {
	for _, v := range p {
		if v > 0 {
			return false
		}
	}
	return true
}
