package multimodel

import (
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/data"
	"repro/internal/grouping"
	"repro/internal/nn"
	"repro/internal/sampling"
	"repro/internal/stats"
)

func newRNG(seed uint64) *stats.RNG { return stats.NewRNG(seed) }

func testSystem(seed uint64) *core.System {
	gen := data.FlatConfig(4, 8, seed)
	gen.Noise = 0.8
	return core.NewSystem(core.SystemConfig{
		Generator: gen,
		Partition: data.PartitionConfig{
			NumClients: 18, Alpha: 0.4,
			MinSamples: 8, MaxSamples: 24, MeanSamples: 15, StdSamples: 5,
			Seed: seed + 1,
		},
		NumEdges:  2,
		TestSize:  300,
		NewModel:  func(s uint64) *nn.Sequential { return nn.NewMLP(8, []int{10}, 4, s) },
		ModelSeed: 7,
	})
}

func testConfig(sched Scheduler) Config {
	return Config{
		Models: 2, GroupsPerModel: 2, Scheduler: sched,
		Train: core.Config{
			GlobalRounds: 8, GroupRounds: 2, LocalEpochs: 1,
			BatchSize: 8, LR: 0.05, SampleGroups: 2,
			Grouping: grouping.CoVGrouping{Config: grouping.Config{
				MinGS: 3, MaxCoV: 0.6, MergeLeftover: true}},
			Sampling:    sampling.ESRCoV,
			Seed:        5,
			CostProfile: cost.CIFARProfile(),
		},
	}
}

func TestMultiModelAllSchedulersLearn(t *testing.T) {
	for _, sched := range []Scheduler{Random, RoundRobin, NeedyFirst} {
		res := Train(testSystem(1), testConfig(sched))
		if len(res.Models) != 2 {
			t.Fatalf("%v: got %d models", sched, len(res.Models))
		}
		if res.MeanAccuracy <= 0.3 {
			t.Errorf("%v: mean accuracy %.3f (chance 0.25)", sched, res.MeanAccuracy)
		}
		for m, st := range res.Models {
			if len(st.Rounds) != 8 {
				t.Fatalf("%v: model %d recorded %d rounds", sched, m, len(st.Rounds))
			}
			if res.Assignments[m] == 0 {
				t.Errorf("%v: model %d never trained", sched, m)
			}
		}
	}
}

func TestMultiModelGroupsNeverShared(t *testing.T) {
	// Within one round, a group serves at most one model: verify via the
	// assign helper directly.
	sys := testSystem(2)
	cfg := testConfig(NeedyFirst)
	groups := grouping.FormAll(cfg.Train.Grouping, sys.Edges, sys.Classes, newRNG(1))
	probs := sampling.Probabilities(groups, cfg.Train.Sampling)
	states := []*ModelState{{Accuracy: 0.2}, {Accuracy: 0.5}}
	for _, sched := range []Scheduler{Random, RoundRobin, NeedyFirst} {
		cfg.Scheduler = sched
		got := assign(cfg, states, groups, probs, newRNG(7))
		seen := map[int]bool{}
		for _, picks := range got {
			for _, gi := range picks {
				if seen[gi] {
					t.Fatalf("%v: group %d assigned twice", sched, gi)
				}
				seen[gi] = true
			}
		}
	}
}

func TestNeedyFirstPrioritizesWorstModel(t *testing.T) {
	sys := testSystem(3)
	cfg := testConfig(NeedyFirst)
	groups := grouping.FormAll(cfg.Train.Grouping, sys.Edges, sys.Classes, newRNG(2))
	probs := sampling.Probabilities(groups, cfg.Train.Sampling)
	// Model 1 is far behind; with GroupsPerModel covering most of the pool
	// it must receive the higher-probability (better-CoV) groups.
	states := []*ModelState{{Accuracy: 0.9}, {Accuracy: 0.1}}
	got := assign(cfg, states, groups, probs, newRNG(3))
	if len(got[1]) == 0 {
		t.Fatal("needy model got nothing")
	}
	// The needy model's first pick should be the top-probability group
	// (ESRCoV is near-deterministic top-1).
	best := 0
	for i, p := range probs {
		if p > probs[best] {
			best = i
		}
	}
	if got[1][0] != best {
		t.Fatalf("needy model's first pick %d, want top group %d", got[1][0], best)
	}
}

func TestMultiModelPanics(t *testing.T) {
	sys := testSystem(4)
	for i, mutate := range []func(*Config){
		func(c *Config) { c.Models = 0 },
		func(c *Config) { c.GroupsPerModel = 0 },
		func(c *Config) { c.Train.Grouping = nil },
		func(c *Config) { c.Scheduler = Scheduler(99) },
	} {
		cfg := testConfig(Random)
		mutate(&cfg)
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			Train(sys, cfg)
		}()
	}
}

func TestSchedulerStrings(t *testing.T) {
	if Random.String() != "Random" || RoundRobin.String() != "RoundRobin" || NeedyFirst.String() != "NeedyFirst" {
		t.Fatal("scheduler names wrong")
	}
}
