package stats

import (
	"math"
	"testing"
)

func TestApproxEqual(t *testing.T) {
	cases := []struct {
		a, b, tol float64
		want      bool
	}{
		{1, 1, 1e-9, true},
		{1, 1 + 1e-12, 1e-9, true},
		{1, 1 + 1e-6, 1e-9, false},
		{0, 1e-12, 1e-9, true},
		{0, 1e-6, 1e-9, false},
		// Relative mode: large magnitudes tolerate proportionally more.
		{1e12, 1e12 + 1, 1e-9, true},
		{1e12, 1e12 * (1 + 1e-6), 1e-9, false},
		{-3.5, -3.5, 1e-9, true},
		{-3.5, 3.5, 1e-9, false},
		{math.Inf(1), math.Inf(1), 1e-9, true},
		{math.Inf(1), math.Inf(-1), 1e-9, false},
		{math.Inf(1), 1e300, 1e-9, false},
		{math.NaN(), math.NaN(), 1e-9, false},
		{math.NaN(), 0, 1e-9, false},
	}
	for _, c := range cases {
		if got := ApproxEqual(c.a, c.b, c.tol); got != c.want {
			t.Errorf("ApproxEqual(%g, %g, %g) = %v, want %v", c.a, c.b, c.tol, got, c.want)
		}
	}
}

func TestNearZero(t *testing.T) {
	if !NearZero(0, 1e-9) || !NearZero(-1e-12, 1e-9) {
		t.Error("exact and tiny values should be near zero")
	}
	if NearZero(1e-3, 1e-9) || NearZero(math.Inf(1), 1e-9) {
		t.Error("large values should not be near zero")
	}
	if NearZero(math.NaN(), 1e-9) {
		t.Error("NaN is not near zero")
	}
}
