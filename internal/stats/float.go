package stats

import "math"

// DefaultTol is the tolerance the repository uses for "are these two
// float64 metrics the same" questions (losses, accuracies, probabilities)
// when the caller has no sharper bound in mind.
const DefaultTol = 1e-9

// ApproxEqual reports whether a and b are equal within tol, using an
// absolute comparison near zero and a relative one elsewhere, so it behaves
// sensibly for both probabilities (≈1e-2) and accumulated losses (≈1e3).
// NaN is never approximately equal to anything, and equal infinities match.
// This is the helper the float-eq lint rule points at: accumulated metrics
// differ in the last ulp across algebraically equivalent reductions, so
// exact ==/!= on them is almost always a bug.
func ApproxEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return a == b //lint:ignore float-eq infinities of the same sign compare exactly
	}
	diff := math.Abs(a - b)
	if diff <= tol {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= tol*scale
}

// NearZero reports whether x lies within tol of zero. It is the epsilon
// form of "did this weight/mass/residual vanish" checks; exact `x == 0`
// comparisons stay reserved for sentinel semantics and need a
// //lint:ignore float-eq annotation.
func NearZero(x, tol float64) bool {
	return math.Abs(x) <= tol
}
