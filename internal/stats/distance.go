package stats

import "math"

// Normalize returns counts scaled to sum to 1. An all-zero histogram maps to
// the uniform distribution, which is the natural neutral element for the
// divergence-based grouping baselines.
func Normalize(counts []float64) []float64 {
	out := make([]float64, len(counts))
	total := 0.0
	for _, c := range counts {
		total += c
	}
	if total <= 0 {
		if len(counts) == 0 {
			return out
		}
		u := 1 / float64(len(counts))
		for i := range out {
			out[i] = u
		}
		return out
	}
	for i, c := range counts {
		out[i] = c / total
	}
	return out
}

// KLDivergence returns D_KL(p || q) in nats for probability vectors p and q.
// Zero entries of q are smoothed with eps so the divergence stays finite,
// matching how SHARE's KLD grouping must behave on sparse client histograms.
func KLDivergence(p, q []float64) float64 {
	if len(p) != len(q) {
		panic("stats: KLDivergence length mismatch")
	}
	const eps = 1e-12
	d := 0.0
	for i := range p {
		if p[i] <= 0 {
			continue
		}
		qq := q[i]
		if qq < eps {
			qq = eps
		}
		d += p[i] * math.Log(p[i]/qq)
	}
	if d < 0 {
		// Tiny negative values can appear from smoothing; clamp.
		return 0
	}
	return d
}

// JSDivergence returns the Jensen–Shannon divergence, a bounded symmetric
// variant of KL used by the FedCLAR-style client clustering.
func JSDivergence(p, q []float64) float64 {
	if len(p) != len(q) {
		panic("stats: JSDivergence length mismatch")
	}
	m := make([]float64, len(p))
	for i := range p {
		m[i] = 0.5 * (p[i] + q[i])
	}
	return 0.5*KLDivergence(p, m) + 0.5*KLDivergence(q, m)
}

// L1Distance returns the total-variation-style L1 distance between vectors.
func L1Distance(p, q []float64) float64 {
	if len(p) != len(q) {
		panic("stats: L1Distance length mismatch")
	}
	d := 0.0
	for i := range p {
		d += math.Abs(p[i] - q[i])
	}
	return d
}

// L2Distance returns the Euclidean distance between vectors.
func L2Distance(p, q []float64) float64 {
	if len(p) != len(q) {
		panic("stats: L2Distance length mismatch")
	}
	d := 0.0
	for i := range p {
		diff := p[i] - q[i]
		d += diff * diff
	}
	return math.Sqrt(d)
}

// CosineSimilarity returns the cosine of the angle between vectors a and b.
// If either vector is zero the similarity is defined as 0, which is what the
// backdoor detector wants for degenerate updates.
func CosineSimilarity(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("stats: CosineSimilarity length mismatch")
	}
	dot, na, nb := 0.0, 0.0, 0.0
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	//lint:ignore float-eq a sum of squares is exactly zero iff the vector is all zeros
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}
