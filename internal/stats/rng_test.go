package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewRNGDeterministic(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed RNGs diverged at draw %d", i)
		}
	}
}

func TestNewRNGDifferentSeeds(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different-seed RNGs agree on %d/64 draws", same)
	}
}

func TestSplitDeterministic(t *testing.T) {
	a := NewRNG(7).Split(3)
	b := NewRNG(7).Split(3)
	for i := 0; i < 50; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("split streams diverged at draw %d", i)
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := NewRNG(9)
	c1 := parent.Split(1)
	c2 := parent.Split(2)
	same := 0
	for i := 0; i < 64; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("sibling split streams agree on %d/64 draws", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(11)
	for i := 0; i < 1000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestGammaMean(t *testing.T) {
	r := NewRNG(5)
	for _, shape := range []float64{0.3, 1.0, 2.5, 10.0} {
		const n = 20000
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += r.Gamma(shape)
		}
		mean := sum / n
		// Gamma(shape, 1) has mean = shape.
		if math.Abs(mean-shape) > 0.1*shape+0.05 {
			t.Errorf("Gamma(%v) sample mean %v, want ~%v", shape, mean, shape)
		}
	}
}

func TestGammaPanicsOnNonPositiveShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for shape <= 0")
		}
	}()
	NewRNG(1).Gamma(0)
}

func TestDirichletSumsToOne(t *testing.T) {
	r := NewRNG(13)
	err := quick.Check(func(seed uint64) bool {
		rr := NewRNG(seed)
		for _, alpha := range []float64{0.01, 0.1, 1, 10} {
			p := rr.Dirichlet(alpha, 10)
			sum := 0.0
			for _, v := range p {
				if v < 0 {
					return false
				}
				sum += v
			}
			if math.Abs(sum-1) > 1e-9 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50, Rand: nil})
	if err != nil {
		t.Fatal(err)
	}
	_ = r
}

func TestDirichletSkewIncreasesWithSmallAlpha(t *testing.T) {
	r := NewRNG(17)
	maxOf := func(alpha float64) float64 {
		// Average max component over many draws; skewed draws have a
		// dominant component close to 1.
		total := 0.0
		const n = 500
		for i := 0; i < n; i++ {
			p := r.Dirichlet(alpha, 10)
			_, hi := MinMax(p)
			total += hi
		}
		return total / n
	}
	skewed := maxOf(0.05)
	flat := maxOf(10)
	if skewed <= flat {
		t.Fatalf("Dirichlet skew ordering violated: alpha=0.05 max %v <= alpha=10 max %v", skewed, flat)
	}
	if skewed < 0.7 {
		t.Errorf("alpha=0.05 should be nearly one-hot, avg max = %v", skewed)
	}
}

func TestCategoricalRespectsWeights(t *testing.T) {
	r := NewRNG(19)
	w := []float64{1, 0, 3}
	counts := make([]int, 3)
	const n = 30000
	for i := 0; i < n; i++ {
		counts[r.Categorical(w)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight category drawn %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if ratio < 2.6 || ratio > 3.4 {
		t.Fatalf("category ratio %v, want ~3", ratio)
	}
}

func TestCategoricalPanics(t *testing.T) {
	r := NewRNG(1)
	for _, w := range [][]float64{{0, 0}, {-1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for weights %v", w)
				}
			}()
			r.Categorical(w)
		}()
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(23)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestReseedMatchesFreshRNG(t *testing.T) {
	r := NewRNG(99)
	// Consume some state, then reseed; the stream must match a fresh RNG's.
	for i := 0; i < 50; i++ {
		r.Float64()
		r.NormFloat64()
	}
	r.Reseed(1234)
	fresh := NewRNG(1234)
	for i := 0; i < 100; i++ {
		if a, b := r.Uint64(), fresh.Uint64(); a != b {
			t.Fatalf("draw %d: reseeded %d, fresh %d", i, a, b)
		}
	}
	//lint:ignore float-eq test asserts exact deterministic output
	if a, b := r.NormFloat64(), fresh.NormFloat64(); a != b {
		t.Fatalf("normal draw diverged: %v vs %v", a, b)
	}
}

func TestReseedDoesNotAllocate(t *testing.T) {
	r := NewRNG(7)
	//lint:ignore float-eq test asserts exact deterministic output
	if n := testing.AllocsPerRun(100, func() { r.Reseed(42) }); n != 0 {
		t.Fatalf("Reseed allocated %.1f times per run, want 0", n)
	}
}

func TestStateRoundTripResumesStream(t *testing.T) {
	r := NewRNG(424242)
	// Burn an arbitrary prefix so the state is mid-stream, not the seed.
	for i := 0; i < 137; i++ {
		r.Uint64()
	}
	hi, lo := r.State()
	want := make([]uint64, 32)
	for i := range want {
		want[i] = r.Uint64()
	}
	// Restore into a generator with a completely different history.
	other := NewRNG(7)
	other.Float64()
	other.SetState(hi, lo)
	for i, w := range want {
		if g := other.Uint64(); g != w {
			t.Fatalf("draw %d after SetState: got %d, want %d", i, g, w)
		}
	}
}

func TestStateIsIdempotentRead(t *testing.T) {
	r := NewRNG(5)
	h1, l1 := r.State()
	h2, l2 := r.State()
	if h1 != h2 || l1 != l2 {
		t.Fatal("State() mutated the generator")
	}
	if a, b := NewRNG(5).Uint64(), r.Uint64(); a != b {
		t.Fatal("reading State() disturbed the stream")
	}
}
