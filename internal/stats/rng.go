// Package stats provides the statistical primitives that Group-FEL is built
// on: deterministic seeded random number generation, Dirichlet and
// categorical sampling, descriptive statistics (mean, variance, coefficient
// of variation), and distribution distances (KL divergence and friends).
//
// Everything in this package is deterministic given a seed, which is what
// makes the experiment harness reproducible.
package stats

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand/v2"
)

// RNG is a deterministic pseudo-random number generator used throughout the
// simulator. It wraps math/rand/v2's PCG so that every component (partitioner,
// grouping, sampling, trainer) can own an independent, seedable stream.
type RNG struct {
	src *rand.Rand
	pcg *rand.PCG
}

// NewRNG returns a generator seeded with seed. Two RNGs created with the same
// seed produce identical streams.
func NewRNG(seed uint64) *RNG {
	pcg := rand.NewPCG(seed, seed^0x9e3779b97f4a7c15)
	return &RNG{src: rand.New(pcg), pcg: pcg}
}

// Reseed resets the generator in place to the stream NewRNG(seed) would
// produce, without allocating. The training hot loop derives one stream per
// (seed, round, group, client) tuple; reseeding a per-worker RNG replaces a
// fresh NewRNG allocation on every client visit.
func (r *RNG) Reseed(seed uint64) {
	r.pcg.Seed(seed, seed^0x9e3779b97f4a7c15)
}

// State returns the generator's full internal state as two 64-bit words.
// Together with SetState it makes an RNG checkpointable: math/rand/v2's
// PCG carries exactly 128 bits of state and its Rand wrapper caches
// nothing, so (hi, lo) is sufficient to resume the stream mid-sequence.
func (r *RNG) State() (hi, lo uint64) {
	b, err := r.pcg.MarshalBinary()
	if err != nil || len(b) != 20 || string(b[:4]) != "pcg:" {
		panic(fmt.Sprintf("stats: unexpected PCG marshal format (%d bytes, %v)", len(b), err))
	}
	return binary.BigEndian.Uint64(b[4:12]), binary.BigEndian.Uint64(b[12:20])
}

// SetState restores the generator to a state previously captured with
// State. The next draw after SetState equals the draw the captured
// generator would have produced.
func (r *RNG) SetState(hi, lo uint64) {
	b := make([]byte, 20)
	copy(b, "pcg:")
	binary.BigEndian.PutUint64(b[4:12], hi)
	binary.BigEndian.PutUint64(b[12:20], lo)
	if err := r.pcg.UnmarshalBinary(b); err != nil {
		panic(fmt.Sprintf("stats: PCG unmarshal: %v", err))
	}
}

// Split derives a new independent generator from this one, keyed by tag.
// Splitting is deterministic: the same parent seed and tag always yield the
// same child stream, regardless of how much the parent has been consumed
// after the split.
func (r *RNG) Split(tag uint64) *RNG {
	// Derive from a draw so distinct parents with equal tags diverge.
	s := r.src.Uint64()
	pcg := rand.NewPCG(s, tag^0xbf58476d1ce4e5b9)
	return &RNG{src: rand.New(pcg), pcg: pcg}
}

// Float64 returns a uniform sample in [0, 1).
func (r *RNG) Float64() float64 { return r.src.Float64() }

// IntN returns a uniform sample in [0, n). It panics if n <= 0.
func (r *RNG) IntN(n int) int { return r.src.IntN(n) }

// Uint64 returns a uniform 64-bit sample.
func (r *RNG) Uint64() uint64 { return r.src.Uint64() }

// NormFloat64 returns a standard normal sample.
func (r *RNG) NormFloat64() float64 { return r.src.NormFloat64() }

// Normal returns a sample from N(mu, sigma^2).
func (r *RNG) Normal(mu, sigma float64) float64 {
	return mu + sigma*r.src.NormFloat64()
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int { return r.src.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements using swap.
//
//lint:hotpath
func (r *RNG) Shuffle(n int, swap func(i, j int)) { r.src.Shuffle(n, swap) }

// Gamma samples from a Gamma(shape, 1) distribution using the
// Marsaglia–Tsang method. shape must be positive.
func (r *RNG) Gamma(shape float64) float64 {
	if shape <= 0 {
		panic("stats: Gamma shape must be positive")
	}
	if shape < 1 {
		// Boost: Gamma(a) = Gamma(a+1) * U^{1/a}.
		u := r.Float64()
		//lint:ignore float-eq resample exact zeros so math.Pow(u, 1/shape) stays finite
		for u == 0 {
			u = r.Float64()
		}
		return r.Gamma(shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1.0 / math.Sqrt(9*d)
	for {
		x := r.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// Dirichlet samples a probability vector from Dirichlet(alpha, ..., alpha)
// of the given dimension. Smaller alpha yields more skewed vectors, which is
// how the paper controls the non-IID degree of client label distributions.
func (r *RNG) Dirichlet(alpha float64, dim int) []float64 {
	if dim <= 0 {
		panic("stats: Dirichlet dimension must be positive")
	}
	out := make([]float64, dim)
	sum := 0.0
	for i := range out {
		g := r.Gamma(alpha)
		out[i] = g
		sum += g
	}
	//lint:ignore float-eq gamma draws underflow to exactly zero; any positive mass normalizes fine
	if sum == 0 {
		// Extremely small alpha can underflow every component; fall back to
		// a one-hot vector, which is the limiting distribution.
		out[r.IntN(dim)] = 1
		return out
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// Categorical draws an index in [0, len(p)) with probability proportional to
// p[i]. Weights must be non-negative and not all zero.
func (r *RNG) Categorical(p []float64) int {
	total := 0.0
	for _, w := range p {
		if w < 0 || math.IsNaN(w) {
			panic("stats: Categorical weights must be non-negative")
		}
		total += w
	}
	if total <= 0 {
		panic("stats: Categorical weights sum to zero")
	}
	u := r.Float64() * total
	acc := 0.0
	for i, w := range p {
		acc += w
		if u < acc {
			return i
		}
	}
	return len(p) - 1
}
