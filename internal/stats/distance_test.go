package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNormalize(t *testing.T) {
	p := Normalize([]float64{1, 3})
	if !approxEq(p[0], 0.25, 1e-12) || !approxEq(p[1], 0.75, 1e-12) {
		t.Errorf("Normalize = %v", p)
	}
	u := Normalize([]float64{0, 0, 0, 0})
	for _, v := range u {
		if !approxEq(v, 0.25, 1e-12) {
			t.Errorf("zero histogram should normalize to uniform, got %v", u)
		}
	}
}

func TestKLDivergenceProperties(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		r := NewRNG(seed)
		p := r.Dirichlet(1, 8)
		q := r.Dirichlet(1, 8)
		// Non-negativity and identity of indiscernibles.
		if KLDivergence(p, q) < 0 {
			return false
		}
		if KLDivergence(p, p) > 1e-9 {
			return false
		}
		return true
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}

func TestKLDivergenceKnownValue(t *testing.T) {
	p := []float64{0.5, 0.5}
	q := []float64{0.25, 0.75}
	want := 0.5*math.Log(2) + 0.5*math.Log(2.0/3.0)
	if got := KLDivergence(p, q); !approxEq(got, want, 1e-12) {
		t.Errorf("KL = %v, want %v", got, want)
	}
}

func TestKLDivergenceZeroSmoothing(t *testing.T) {
	p := []float64{1, 0}
	q := []float64{0, 1}
	d := KLDivergence(p, q)
	if math.IsInf(d, 1) || math.IsNaN(d) {
		t.Fatalf("smoothed KL should be finite, got %v", d)
	}
	if d <= 0 {
		t.Fatalf("disjoint supports should have large KL, got %v", d)
	}
}

func TestJSDivergenceSymmetricAndBounded(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		r := NewRNG(seed)
		p := r.Dirichlet(0.5, 6)
		q := r.Dirichlet(0.5, 6)
		a, b := JSDivergence(p, q), JSDivergence(q, p)
		if !approxEq(a, b, 1e-9) {
			return false
		}
		// JS is bounded by ln 2.
		return a >= 0 && a <= math.Log(2)+1e-9
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}

func TestL1L2Distances(t *testing.T) {
	p := []float64{1, 2, 3}
	q := []float64{2, 2, 1}
	if got := L1Distance(p, q); !approxEq(got, 3, 1e-12) {
		t.Errorf("L1 = %v, want 3", got)
	}
	if got := L2Distance(p, q); !approxEq(got, math.Sqrt(5), 1e-12) {
		t.Errorf("L2 = %v, want sqrt(5)", got)
	}
}

func TestCosineSimilarity(t *testing.T) {
	if got := CosineSimilarity([]float64{1, 0}, []float64{1, 0}); !approxEq(got, 1, 1e-12) {
		t.Errorf("parallel cosine = %v, want 1", got)
	}
	if got := CosineSimilarity([]float64{1, 0}, []float64{0, 1}); !approxEq(got, 0, 1e-12) {
		t.Errorf("orthogonal cosine = %v, want 0", got)
	}
	if got := CosineSimilarity([]float64{1, 1}, []float64{-1, -1}); !approxEq(got, -1, 1e-12) {
		t.Errorf("antiparallel cosine = %v, want -1", got)
	}
	//lint:ignore float-eq test asserts exact deterministic output
	if got := CosineSimilarity([]float64{0, 0}, []float64{1, 1}); got != 0 {
		t.Errorf("zero-vector cosine = %v, want 0", got)
	}
}

func TestDistanceLengthMismatchPanics(t *testing.T) {
	fns := []func(){
		func() { KLDivergence([]float64{1}, []float64{0.5, 0.5}) },
		func() { JSDivergence([]float64{1}, []float64{0.5, 0.5}) },
		func() { L1Distance([]float64{1}, []float64{1, 2}) },
		func() { L2Distance([]float64{1}, []float64{1, 2}) },
		func() { CosineSimilarity([]float64{1}, []float64{1, 2}) },
	}
	for i, fn := range fns {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("fn %d: expected panic on length mismatch", i)
				}
			}()
			fn()
		}()
	}
}
