package stats

import (
	"math"
	"testing"
)

// FuzzCoVOfCounts ensures the grouping criterion never panics or returns
// NaN/negative values on arbitrary histograms.
func FuzzCoVOfCounts(f *testing.F) {
	f.Add(1.0, 2.0, 3.0)
	f.Add(0.0, 0.0, 0.0)
	f.Add(1e308, 1e-308, 0.0)
	f.Fuzz(func(t *testing.T, a, b, c float64) {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsNaN(c) ||
			a < 0 || b < 0 || c < 0 {
			return // histogram counts are non-negative by contract
		}
		got := CoVOfCounts([]float64{a, b, c})
		if math.IsNaN(got) || got < 0 {
			t.Fatalf("CoVOfCounts(%v,%v,%v) = %v", a, b, c, got)
		}
	})
}

// FuzzKLDivergence ensures non-negativity for arbitrary normalized pairs.
func FuzzKLDivergence(f *testing.F) {
	f.Add(1.0, 2.0, 3.0, 1.0)
	f.Add(0.0, 1.0, 1.0, 0.0)
	f.Fuzz(func(t *testing.T, a, b, c, d float64) {
		vals := []float64{a, b, c, d}
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				return
			}
		}
		p := Normalize([]float64{a, b})
		q := Normalize([]float64{c, d})
		if got := KLDivergence(p, q); math.IsNaN(got) || got < 0 {
			t.Fatalf("KL(%v||%v) = %v", p, q, got)
		}
	})
}
