package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func approxEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVarianceBasics(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); !approxEq(got, 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := Variance(xs); !approxEq(got, 4, 1e-12) {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); !approxEq(got, 2, 1e-12) {
		t.Errorf("StdDev = %v, want 2", got)
	}
}

func TestMeanEmpty(t *testing.T) {
	//lint:ignore float-eq test asserts exact deterministic output
	if Mean(nil) != 0 || Variance(nil) != 0 {
		t.Fatal("empty slice statistics should be 0")
	}
}

func TestCoVScaleInvariance(t *testing.T) {
	// CoV must be invariant to positive scaling — the property that makes it
	// a better grouping criterion than the raw variance (paper Sec. 5.1).
	err := quick.Check(func(seed uint64) bool {
		r := NewRNG(seed)
		xs := make([]float64, 10)
		for i := range xs {
			xs[i] = 1 + 10*r.Float64()
		}
		scaled := make([]float64, len(xs))
		k := 1 + 99*r.Float64()
		for i := range xs {
			scaled[i] = k * xs[i]
		}
		return approxEq(CoV(xs), CoV(scaled), 1e-9)
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCoVDegenerate(t *testing.T) {
	//lint:ignore float-eq test asserts exact deterministic output
	if got := CoV([]float64{0, 0, 0}); got != 0 {
		t.Errorf("CoV of all-zero = %v, want 0", got)
	}
	if got := CoV([]float64{-1, 1}); !math.IsInf(got, 1) {
		t.Errorf("CoV with zero mean = %v, want +Inf", got)
	}
}

func TestCoVOfCountsBalanced(t *testing.T) {
	//lint:ignore float-eq test asserts exact deterministic output
	if got := CoVOfCounts([]float64{5, 5, 5, 5}); got != 0 {
		t.Errorf("balanced histogram CoV = %v, want 0", got)
	}
}

func TestCoVOfCountsSkewOrdering(t *testing.T) {
	balanced := CoVOfCounts([]float64{10, 10, 10, 10})
	mild := CoVOfCounts([]float64{14, 10, 10, 6})
	severe := CoVOfCounts([]float64{37, 1, 1, 1})
	if !(balanced < mild && mild < severe) {
		t.Fatalf("CoV ordering violated: %v %v %v", balanced, mild, severe)
	}
}

func TestCoVOfCountsScaleInvariance(t *testing.T) {
	a := CoVOfCounts([]float64{1, 2, 3, 4})
	b := CoVOfCounts([]float64{10, 20, 30, 40})
	if !approxEq(a, b, 1e-12) {
		t.Fatalf("CoVOfCounts not scale invariant: %v vs %v", a, b)
	}
}

func TestVarianceOfCountsScaleSensitive(t *testing.T) {
	// The paper's motivating example: a small skewed group can have a
	// smaller *variance* than a large balanced-ish one, even though its CoV
	// is worse. Variance prefers the wrong group.
	small := []float64{4, 0, 0, 0}     // tiny but fully skewed
	large := []float64{60, 40, 50, 50} // big, mildly skewed
	if VarianceOfCounts(small) >= VarianceOfCounts(large) {
		t.Fatalf("expected variance to (wrongly) prefer the skewed small group")
	}
	if CoVOfCounts(small) <= CoVOfCounts(large) {
		t.Fatalf("expected CoV to (rightly) prefer the large balanced group")
	}
}

func TestCoVOfCountsEmptyAndZero(t *testing.T) {
	if !math.IsInf(CoVOfCounts(nil), 1) {
		t.Error("empty histogram should have +Inf CoV")
	}
	if !math.IsInf(CoVOfCounts([]float64{0, 0}), 1) {
		t.Error("zero histogram should have +Inf CoV")
	}
}

func TestGammaFactor(t *testing.T) {
	// Equal sample counts: gamma = 1 (its minimum).
	if got := GammaFactor([]float64{10, 10, 10}); !approxEq(got, 1, 1e-12) {
		t.Errorf("gamma of equal counts = %v, want 1", got)
	}
	// gamma = 1 + CoV^2 of the counts (paper Sec. 4.3).
	counts := []float64{5, 10, 30, 15}
	cov := CoV(counts)
	if got := GammaFactor(counts); !approxEq(got, 1+cov*cov, 1e-9) {
		t.Errorf("gamma = %v, want 1+CoV^2 = %v", got, 1+cov*cov)
	}
	if !math.IsInf(GammaFactor(nil), 1) {
		t.Error("gamma of empty group should be +Inf")
	}
}

func TestWeightedMean(t *testing.T) {
	got := WeightedMean([]float64{1, 3}, []float64{1, 3})
	if !approxEq(got, 2.5, 1e-12) {
		t.Errorf("WeightedMean = %v, want 2.5", got)
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 7, 2})
	//lint:ignore float-eq test asserts exact deterministic output
	if lo != -1 || hi != 7 {
		t.Errorf("MinMax = (%v, %v), want (-1, 7)", lo, hi)
	}
}

func TestJainIndex(t *testing.T) {
	if got := JainIndex([]float64{5, 5, 5, 5}); !approxEq(got, 1, 1e-12) {
		t.Errorf("equal allocation index = %v, want 1", got)
	}
	if got := JainIndex([]float64{1, 0, 0, 0}); !approxEq(got, 0.25, 1e-12) {
		t.Errorf("monopoly index = %v, want 1/n", got)
	}
	mid := JainIndex([]float64{3, 1, 1, 1})
	if mid <= 0.25 || mid >= 1 {
		t.Errorf("skewed allocation index = %v", mid)
	}
	//lint:ignore float-eq test asserts exact deterministic output
	if JainIndex(nil) != 0 {
		t.Error("empty allocation")
	}
	//lint:ignore float-eq test asserts exact deterministic output
	if JainIndex([]float64{0, 0}) != 1 {
		t.Error("all-zero allocation should be trivially fair")
	}
}
