package stats

import "math"

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 for fewer than one
// element.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// CoV returns the coefficient of variation sigma/mu of xs. If the mean is
// zero the CoV is undefined; we return +Inf for a non-degenerate slice and 0
// for an all-zero slice, which keeps grouping comparisons well ordered.
func CoV(xs []float64) float64 {
	m := Mean(xs)
	sd := StdDev(xs)
	//lint:ignore float-eq the mean of nonnegative counts is exactly zero iff every count is zero
	if m == 0 {
		//lint:ignore float-eq a zero-mean slice has exactly zero stddev iff it is all zeros
		if sd == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return sd / m
}

// CoVOfCounts computes the grouping criterion of the paper (Eq. 27): the
// coefficient of variation of a label-count histogram. counts[j] is the
// number of samples with label j held by the group; a perfectly balanced
// group has CoV 0 and more skew yields larger values. An empty group (total
// count zero) returns +Inf so that it never looks attractive to the greedy
// grouping algorithm.
func CoVOfCounts(counts []float64) float64 {
	if len(counts) == 0 {
		return math.Inf(1)
	}
	total := 0.0
	for _, c := range counts {
		total += c
	}
	if total <= 0 {
		return math.Inf(1)
	}
	m := float64(len(counts))
	mu := total / m
	ss := 0.0
	for _, c := range counts {
		d := c - mu
		ss += d * d
	}
	sigma := math.Sqrt(ss / m)
	return sigma / mu
}

// VarianceOfCounts returns the population variance of a label-count
// histogram. The paper (Sec. 5.1) argues this is a poor grouping criterion
// because it is sensitive to the total count scale; it is implemented here to
// support that ablation.
func VarianceOfCounts(counts []float64) float64 {
	if len(counts) == 0 {
		return math.Inf(1)
	}
	return Variance(counts)
}

// GammaFactor computes the paper's gamma (Eq. 11) for the per-client sample
// counts of one group: gamma = |g|^2 [ 1/|g|^2 + Var(n_i/n_g) ], which the
// paper shows equals 1 + CoV^2 of the client sample counts. Smaller is
// better for convergence.
func GammaFactor(clientCounts []float64) float64 {
	n := len(clientCounts)
	if n == 0 {
		return math.Inf(1)
	}
	total := 0.0
	for _, c := range clientCounts {
		total += c
	}
	if total <= 0 {
		return math.Inf(1)
	}
	fracs := make([]float64, n)
	for i, c := range clientCounts {
		fracs[i] = c / total
	}
	g := float64(n)
	return g * g * (1/(g*g) + Variance(fracs))
}

// WeightedMean returns sum(w_i*x_i)/sum(w_i). It panics if the weight sum is
// not positive or lengths differ.
func WeightedMean(xs, ws []float64) float64 {
	if len(xs) != len(ws) {
		panic("stats: WeightedMean length mismatch")
	}
	num, den := 0.0, 0.0
	for i := range xs {
		num += ws[i] * xs[i]
		den += ws[i]
	}
	if den <= 0 {
		panic("stats: WeightedMean weight sum must be positive")
	}
	return num / den
}

// MinMax returns the smallest and largest element of xs. It panics on an
// empty slice.
func MinMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		panic("stats: MinMax of empty slice")
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// JainIndex returns Jain's fairness index (Σx)²/(n·Σx²) of a non-negative
// allocation: 1 when perfectly equal, approaching 1/n when one participant
// takes everything. Used to measure client participation fairness — the
// trade-off the paper's future-work section flags for prioritized group
// sampling.
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum, ss := 0.0, 0.0
	for _, x := range xs {
		sum += x
		ss += x * x
	}
	//lint:ignore float-eq a sum of squares is exactly zero iff every term is zero
	if ss == 0 {
		return 1 // nobody participated: trivially equal
	}
	return sum * sum / (float64(len(xs)) * ss)
}
