package simnet

import (
	"math"
	"testing"
)

func approx(t *testing.T, got, want float64, what string) {
	t.Helper()
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("%s = %g, want %g", what, got, want)
	}
}

func TestDynamicLinkValidate(t *testing.T) {
	base := Link{Latency: 0.01, Bandwidth: 1e6}
	cases := []struct {
		name string
		d    DynamicLink
		ok   bool
	}{
		{"no windows", DynamicLink{Base: base}, true},
		{"sorted windows", DynamicLink{Base: base, Windows: []Window{
			{Start: 1, End: 2, Latency: 0.1, Bandwidth: 1e5},
			{Start: 2, End: 3, Bandwidth: 0},
		}}, true},
		{"bad base", DynamicLink{Base: Link{Bandwidth: -1}}, false},
		{"empty interval", DynamicLink{Base: base, Windows: []Window{{Start: 2, End: 2, Bandwidth: 1}}}, false},
		{"inverted interval", DynamicLink{Base: base, Windows: []Window{{Start: 3, End: 2, Bandwidth: 1}}}, false},
		{"negative latency", DynamicLink{Base: base, Windows: []Window{{Start: 1, End: 2, Latency: -1, Bandwidth: 1}}}, false},
		{"overlap", DynamicLink{Base: base, Windows: []Window{
			{Start: 1, End: 3, Bandwidth: 1},
			{Start: 2, End: 4, Bandwidth: 1},
		}}, false},
	}
	for _, tc := range cases {
		if err := tc.d.Validate(); (err == nil) != tc.ok {
			t.Fatalf("%s: Validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

func TestDynamicLinkMatchesBaseOutsideWindows(t *testing.T) {
	d := DynamicLink{
		Base:    Link{Latency: 0.01, Bandwidth: 1e6},
		Windows: []Window{{Start: 5, End: 6, Latency: 0.5, Bandwidth: 1e3}},
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	want := d.Base.TransferTime(2000)
	approx(t, d.TransferTimeAt(0, 2000), want, "before the window")
	approx(t, d.TransferTimeAt(6, 2000), want, "at the window's end (half-open)")
	approx(t, d.TransferTimeAt(100, 2000), want, "long after")
}

func TestDynamicLinkDegradedWindow(t *testing.T) {
	d := DynamicLink{
		Base:    Link{Latency: 0.01, Bandwidth: 1e6},
		Windows: []Window{{Start: 5, End: 6, Latency: 0.5, Bandwidth: 1e3}},
	}
	want := Link{Latency: 0.5, Bandwidth: 1e3}.TransferTime(2000)
	approx(t, d.TransferTimeAt(5, 2000), want, "at window start")
	approx(t, d.TransferTimeAt(5.9, 2000), want, "inside window")
}

func TestDynamicLinkOutageDefersDeparture(t *testing.T) {
	d := DynamicLink{
		Base:    Link{Latency: 0.01, Bandwidth: 1e6},
		Windows: []Window{{Start: 2, End: 3.5, Bandwidth: 0}},
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// Requested mid-outage: wait for the heal, then transfer at base speed.
	want := (3.5 - 2.5) + d.Base.TransferTime(1000)
	approx(t, d.TransferTimeAt(2.5, 1000), want, "transfer requested mid-outage")
}

func TestDynamicLinkChainedOutages(t *testing.T) {
	d := DynamicLink{
		Base: Link{Latency: 0.01, Bandwidth: 1e6},
		Windows: []Window{
			{Start: 1, End: 2, Bandwidth: 0},
			{Start: 2, End: 3, Bandwidth: 0},
			{Start: 3, End: 4, Latency: 0.2, Bandwidth: 1e6},
		},
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// Departure at 1.5 rides out both outages and leaves into the degraded
	// window that starts exactly at the heal.
	want := (3 - 1.5) + Link{Latency: 0.2, Bandwidth: 1e6}.TransferTime(1000)
	approx(t, d.TransferTimeAt(1.5, 1000), want, "chained outages then degraded window")
}

// TestSendViaDeliversAtDynamicTime wires a dynamic link into the event
// queue: delivery timestamps must equal the departure time plus
// TransferTimeAt, outage deferral included, and Simulator.Send's static
// behavior must be unchanged for other traffic.
func TestSendViaDeliversAtDynamicTime(t *testing.T) {
	s := New()
	var deliveries []float64
	s.AddNode("edge", func(_ *Simulator, at float64, _ Message) {
		deliveries = append(deliveries, at)
	})
	d := DynamicLink{
		Base:    Link{Latency: 0.1, Bandwidth: 1e3},
		Windows: []Window{{Start: 1, End: 2, Bandwidth: 0}},
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	msg := Message{From: "client", To: "edge", Kind: "update", Bytes: 500}
	SendVia(s, 0, msg, d)   // before the outage: plain base transfer
	SendVia(s, 1.5, msg, d) // mid-outage: deferred to the heal at t=2
	s.Send(0.05, msg, d.Base)
	end := s.Run()

	if len(deliveries) != 3 {
		t.Fatalf("delivered %d messages, want 3", len(deliveries))
	}
	approx(t, deliveries[0], 0+d.Base.TransferTime(500), "dynamic send before outage")
	approx(t, deliveries[1], 0.05+d.Base.TransferTime(500), "static Send unchanged")
	approx(t, deliveries[2], 1.5+(2-1.5)+d.Base.TransferTime(500), "dynamic send deferred by outage")
	approx(t, end, deliveries[2], "final simulated time")
	if s.Delivered != 3 {
		t.Fatalf("Delivered = %d, want 3", s.Delivered)
	}
}
