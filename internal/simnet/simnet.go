// Package simnet is a small discrete-event simulator of the cloud–edge–
// client network underlying Group-FEL. It models links with latency and
// bandwidth, delivers messages between named nodes in timestamp order, and
// provides closed-form round-time helpers used by the experiment harness to
// report wall-clock-style communication costs alongside the Eq. 5 compute
// cost model.
package simnet

import (
	"container/heap"
	"fmt"
	"math"
)

// Link models a network link with fixed latency (seconds) and bandwidth
// (bytes per second).
type Link struct {
	Latency   float64
	Bandwidth float64
}

// Validate rejects unusable link parameters: bandwidth must be positive and
// latency non-negative. Callers should validate once at setup (see
// Topology.Validate) rather than discover a bad link mid-simulation.
func (l Link) Validate() error {
	if l.Bandwidth <= 0 {
		return fmt.Errorf("simnet: link bandwidth must be positive (got %g)", l.Bandwidth)
	}
	if l.Latency < 0 {
		return fmt.Errorf("simnet: link latency must be non-negative (got %g)", l.Latency)
	}
	return nil
}

// TransferTime returns the time to move the given payload across the link.
// The link is assumed validated; an unusable link (non-positive bandwidth)
// yields +Inf rather than a panic, so a missed Validate surfaces as an
// absurd wall-clock figure instead of taking the process down.
func (l Link) TransferTime(bytes int) float64 {
	if l.Bandwidth <= 0 {
		return math.Inf(1)
	}
	return l.Latency + float64(bytes)/l.Bandwidth
}

// Topology is the two-tier link structure of the paper's Fig. 1: clients
// reach their edge server over a fast local link; edges reach the cloud
// over a slower wide-area link.
type Topology struct {
	ClientEdge Link
	EdgeCloud  Link
}

// Validate rejects a topology with unusable links; run it once when a round
// or training run is configured.
func (t Topology) Validate() error {
	if err := t.ClientEdge.Validate(); err != nil {
		return fmt.Errorf("simnet: client–edge link: %w", err)
	}
	if err := t.EdgeCloud.Validate(); err != nil {
		return fmt.Errorf("simnet: edge–cloud link: %w", err)
	}
	return nil
}

// Default returns a topology with edge-computing-typical numbers: ~5 ms /
// 25 MB/s client–edge, ~40 ms / 5 MB/s edge–cloud.
func Default() Topology {
	return Topology{
		ClientEdge: Link{Latency: 0.005, Bandwidth: 25e6},
		EdgeCloud:  Link{Latency: 0.040, Bandwidth: 5e6},
	}
}

// GroupRoundTime returns the wall-clock time of one group round: the group
// model is broadcast to all clients (parallel downloads), every client
// computes (the slowest gates the round), and uploads return to the edge.
func (t Topology) GroupRoundTime(modelBytes int, clientCompute []float64) float64 {
	if len(clientCompute) == 0 {
		return 0
	}
	down := t.ClientEdge.TransferTime(modelBytes)
	up := t.ClientEdge.TransferTime(modelBytes)
	maxCompute := 0.0
	for _, c := range clientCompute {
		if c > maxCompute {
			maxCompute = c
		}
	}
	return down + maxCompute + up
}

// GlobalRoundTime returns the wall-clock time of one global round: the
// cloud pushes the model to the participating edges, each runs K group
// rounds for its selected groups (groups on one edge run concurrently, so
// the slowest gates the edge), and group models return to the cloud.
// groupTimes[e] lists the single-group-round times of the selected groups
// on edge e.
func (t Topology) GlobalRoundTime(modelBytes, groupRounds int, groupTimes [][]float64) float64 {
	down := t.EdgeCloud.TransferTime(modelBytes)
	up := t.EdgeCloud.TransferTime(modelBytes)
	slowestEdge := 0.0
	for _, times := range groupTimes {
		edgeTime := 0.0
		for _, gt := range times {
			if gt > edgeTime {
				edgeTime = gt
			}
		}
		edgeTime *= float64(groupRounds)
		if edgeTime > slowestEdge {
			slowestEdge = edgeTime
		}
	}
	return down + slowestEdge + up
}

// Message is a payload in flight between two nodes.
type Message struct {
	From, To string
	Kind     string
	Bytes    int
	Payload  any
}

// Handler processes a message delivered to a node at simulated time `at`.
type Handler func(s *Simulator, at float64, msg Message)

type event struct {
	at  float64
	seq int // FIFO tiebreak for determinism
	msg Message
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	//lint:ignore float-eq exact timestamp ties must fall through to the FIFO seq for determinism
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// Simulator delivers messages between registered nodes in timestamp order.
type Simulator struct {
	now      float64
	seq      int
	queue    eventHeap
	handlers map[string]Handler
	// Delivered counts total messages delivered, for tests and accounting.
	Delivered int
}

// New creates an empty simulator at time 0.
func New() *Simulator {
	return &Simulator{handlers: make(map[string]Handler)}
}

// AddNode registers a named node with its message handler.
func (s *Simulator) AddNode(name string, h Handler) {
	if _, dup := s.handlers[name]; dup {
		panic(fmt.Sprintf("simnet: duplicate node %q", name))
	}
	s.handlers[name] = h
}

// Now returns the current simulated time.
func (s *Simulator) Now() float64 { return s.now }

// Send schedules msg for delivery over link, departing at time `at` (which
// must not precede the current time).
func (s *Simulator) Send(at float64, msg Message, link Link) {
	if at < s.now {
		panic(fmt.Sprintf("simnet: send at %v before now %v", at, s.now))
	}
	if _, ok := s.handlers[msg.To]; !ok {
		panic(fmt.Sprintf("simnet: unknown destination %q", msg.To))
	}
	heap.Push(&s.queue, event{at: at + link.TransferTime(msg.Bytes), seq: s.seq, msg: msg})
	s.seq++
}

// Run delivers events until the queue drains, returning the final time.
func (s *Simulator) Run() float64 {
	for s.queue.Len() > 0 {
		e := heap.Pop(&s.queue).(event)
		s.now = e.at
		s.Delivered++
		s.handlers[e.msg.To](s, e.at, e.msg)
	}
	return s.now
}
