package simnet

import (
	"math"
	"strings"
	"testing"
)

func TestTransferTime(t *testing.T) {
	l := Link{Latency: 0.01, Bandwidth: 1e6}
	if got := l.TransferTime(1e6); math.Abs(got-1.01) > 1e-12 {
		t.Fatalf("TransferTime = %v, want 1.01", got)
	}
	//lint:ignore float-eq test asserts exact deterministic output
	if got := l.TransferTime(0); got != 0.01 {
		t.Fatalf("zero-byte transfer = %v, want latency", got)
	}
}

func TestLinkValidate(t *testing.T) {
	if err := (Link{Latency: 0, Bandwidth: 0}).Validate(); err == nil {
		t.Fatal("zero bandwidth passed validation")
	}
	if err := (Link{Latency: -1, Bandwidth: 1e6}).Validate(); err == nil {
		t.Fatal("negative latency passed validation")
	}
	if err := (Link{Latency: 0.01, Bandwidth: 1e6}).Validate(); err != nil {
		t.Fatalf("valid link rejected: %v", err)
	}
}

func TestTopologyValidate(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("default topology rejected: %v", err)
	}
	bad := Default()
	bad.EdgeCloud.Bandwidth = 0
	err := bad.Validate()
	if err == nil {
		t.Fatal("bad edge–cloud link passed validation")
	}
	if !strings.Contains(err.Error(), "edge–cloud") {
		t.Fatalf("error does not name the offending link: %v", err)
	}
}

func TestTransferTimeOnUnvalidatedLinkIsInf(t *testing.T) {
	// A link that skipped Validate must not take the process down; the
	// unusable bandwidth surfaces as an infinite transfer time instead.
	if got := (Link{Latency: 0, Bandwidth: 0}).TransferTime(1); !math.IsInf(got, 1) {
		t.Fatalf("TransferTime on zero bandwidth = %v, want +Inf", got)
	}
}

func TestGroupRoundTime(t *testing.T) {
	topo := Default()
	compute := []float64{1, 3, 2}
	got := topo.GroupRoundTime(1000, compute)
	want := 2*topo.ClientEdge.TransferTime(1000) + 3 // slowest client gates
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("GroupRoundTime = %v, want %v", got, want)
	}
	//lint:ignore float-eq test asserts exact deterministic output
	if topo.GroupRoundTime(1000, nil) != 0 {
		t.Fatal("empty group should take no time")
	}
}

func TestGlobalRoundTime(t *testing.T) {
	topo := Default()
	// Two edges: edge 0 has groups taking 2 and 5 per group round, edge 1
	// has one group taking 4. K=3 group rounds.
	got := topo.GlobalRoundTime(1000, 3, [][]float64{{2, 5}, {4}})
	want := 2*topo.EdgeCloud.TransferTime(1000) + 3*5
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("GlobalRoundTime = %v, want %v", got, want)
	}
}

func TestSimulatorDeliversInOrder(t *testing.T) {
	s := New()
	var order []string
	s.AddNode("sink", func(_ *Simulator, at float64, msg Message) {
		order = append(order, msg.Kind)
	})
	fast := Link{Latency: 0.001, Bandwidth: 1e9}
	slow := Link{Latency: 1, Bandwidth: 1e9}
	s.AddNode("src", func(_ *Simulator, _ float64, _ Message) {})
	s.Send(0, Message{From: "src", To: "sink", Kind: "slow"}, slow)
	s.Send(0, Message{From: "src", To: "sink", Kind: "fast"}, fast)
	end := s.Run()
	if len(order) != 2 || order[0] != "fast" || order[1] != "slow" {
		t.Fatalf("delivery order %v", order)
	}
	if math.Abs(end-1) > 1e-9 {
		t.Fatalf("final time %v, want ~1", end)
	}
	if s.Delivered != 2 {
		t.Fatalf("Delivered = %d", s.Delivered)
	}
}

func TestSimulatorFIFOTiebreak(t *testing.T) {
	s := New()
	var order []string
	s.AddNode("sink", func(_ *Simulator, _ float64, msg Message) {
		order = append(order, msg.Kind)
	})
	link := Link{Latency: 0.5, Bandwidth: 1e9}
	for _, k := range []string{"a", "b", "c"} {
		s.Send(0, Message{To: "sink", Kind: k}, link)
	}
	s.Run()
	if order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Fatalf("tiebreak order %v", order)
	}
}

func TestSimulatorCascade(t *testing.T) {
	// cloud -> edge -> 3 clients -> edge -> cloud: the full HFL message
	// flow of Fig. 1, with the final ack arriving after all uploads.
	topo := Default()
	s := New()
	uploads := 0
	done := false
	s.AddNode("cloud", func(sim *Simulator, at float64, msg Message) {
		if msg.Kind == "group-update" {
			done = true
		}
	})
	s.AddNode("edge", func(sim *Simulator, at float64, msg Message) {
		switch msg.Kind {
		case "global-model":
			for i := 0; i < 3; i++ {
				sim.Send(at, Message{From: "edge", To: client(i), Kind: "group-model", Bytes: msg.Bytes}, topo.ClientEdge)
			}
		case "local-update":
			uploads++
			if uploads == 3 {
				sim.Send(at, Message{From: "edge", To: "cloud", Kind: "group-update", Bytes: msg.Bytes}, topo.EdgeCloud)
			}
		}
	})
	for i := 0; i < 3; i++ {
		s.AddNode(client(i), func(sim *Simulator, at float64, msg Message) {
			sim.Send(at, Message{From: msg.To, To: "edge", Kind: "local-update", Bytes: msg.Bytes}, topo.ClientEdge)
		})
	}
	s.Send(0, Message{From: "cloud", To: "edge", Kind: "global-model", Bytes: 100000}, topo.EdgeCloud)
	end := s.Run()
	if !done {
		t.Fatal("cascade never completed")
	}
	want := 2*topo.EdgeCloud.TransferTime(100000) + 2*topo.ClientEdge.TransferTime(100000)
	if math.Abs(end-want) > 1e-9 {
		t.Fatalf("cascade time %v, want %v", end, want)
	}
}

func client(i int) string {
	return string(rune('A' + i))
}

func TestSimulatorPanics(t *testing.T) {
	s := New()
	s.AddNode("n", func(*Simulator, float64, Message) {})
	for _, fn := range []func(){
		func() { s.AddNode("n", func(*Simulator, float64, Message) {}) },
		func() { s.Send(0, Message{To: "missing"}, Link{Latency: 0, Bandwidth: 1}) },
		func() { s.Send(-1, Message{To: "n"}, Link{Latency: 0, Bandwidth: 1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}
