package simnet

import (
	"fmt"
	"math"
	"sort"
)

// Window is one timed deviation of a link from its base parameters, over
// the half-open simulated-time interval [Start, End). During the window the
// link runs with the window's Latency and Bandwidth instead of the base
// values. Bandwidth 0 marks an outage: nothing can depart until the window
// ends — the modeled-time analog of a faultnet partition with a heal time.
type Window struct {
	Start, End float64
	Latency    float64
	Bandwidth  float64
}

// outage reports whether the window blocks the link entirely.
func (w Window) outage() bool { return w.Bandwidth <= 0 }

// DynamicLink is a link whose parameters change over simulated time:
// a base Link plus a sorted list of non-overlapping deviation windows.
// The zero list makes it behave exactly like its base, so existing static
// callers (internal/hfl's round-time model) are unaffected.
type DynamicLink struct {
	Base    Link
	Windows []Window
}

// Validate rejects unusable dynamic links: the base must validate, every
// window must be a proper interval with sane parameters, and windows must
// be sorted and non-overlapping (so the state at any instant is unique).
func (d DynamicLink) Validate() error {
	if err := d.Base.Validate(); err != nil {
		return err
	}
	for i, w := range d.Windows {
		if !(w.Start < w.End) {
			return fmt.Errorf("simnet: window %d is not a proper interval [%g, %g)", i, w.Start, w.End)
		}
		if w.Latency < 0 || w.Bandwidth < 0 {
			return fmt.Errorf("simnet: window %d has negative parameters", i)
		}
		if i > 0 && w.Start < d.Windows[i-1].End {
			return fmt.Errorf("simnet: window %d overlaps window %d (start %g < previous end %g)",
				i, i-1, w.Start, d.Windows[i-1].End)
		}
	}
	return nil
}

// At returns the effective link at simulated time t. When t falls inside an
// outage window, ok is false and healAt is when the outage lifts; the
// returned Link is then the base (what the link becomes once healed,
// barring a follow-on window).
func (d DynamicLink) At(t float64) (link Link, ok bool, healAt float64) {
	// Windows are sorted by Start; find the last window starting at or
	// before t.
	i := sort.Search(len(d.Windows), func(i int) bool { return d.Windows[i].Start > t })
	if i > 0 {
		w := d.Windows[i-1]
		if t < w.End {
			if w.outage() {
				return d.Base, false, w.End
			}
			return Link{Latency: w.Latency, Bandwidth: w.Bandwidth}, true, 0
		}
	}
	return d.Base, true, 0
}

// TransferTimeAt returns the time to move the payload when the transfer is
// requested at simulated time t: any outage in force defers departure to
// its heal time (chained outages accumulate), and the transfer then runs at
// the link state in force at the actual departure. A window that opens or
// closes mid-transfer does not reshape a transfer already in flight — the
// same granularity at which faultnet injects per-frame delays.
func (d DynamicLink) TransferTimeAt(t float64, bytes int) float64 {
	depart := t
	for {
		link, ok, healAt := d.At(depart)
		if ok {
			return (depart - t) + link.TransferTime(bytes)
		}
		if math.IsInf(healAt, 1) {
			return math.Inf(1)
		}
		depart = healAt
	}
}

// SendVia schedules msg on s departing at time `at` across a dynamic link,
// honoring the link state (and any outage deferral) at departure.
// Simulator.Send is untouched: static-topology callers keep their exact
// behavior, and SendVia composes with it by folding the computed total into
// a pure-latency link.
func SendVia(s *Simulator, at float64, msg Message, d DynamicLink) {
	total := d.TransferTimeAt(at, msg.Bytes)
	s.Send(at, msg, Link{Latency: total, Bandwidth: math.Inf(1)})
}
