package experiments

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/data"
	"repro/internal/grouping"
	"repro/internal/nn"
	"repro/internal/sampling"
	"repro/internal/stats"
)

// PopScale describes one row of the population-scaling benchmark grid: a
// virtual (flyweight) population whose per-round memory must stay
// O(selected clients) regardless of population size, and whose CoV-Grouping
// formation time is the headline Alg. 2-at-scale number.
type PopScale struct {
	// ID names the row in BENCH_scale.json and on the felbench CLI
	// (e.g. "1m").
	ID string
	// Clients is the population size; Edges the number of edge servers.
	// The grid keeps Clients/Edges fixed at 1250 so formation cost per
	// edge is constant and total formation scales linearly with Edges.
	Clients, Edges int
	// Rounds is how many timed global rounds to run (after one untimed
	// warm-up round that also performs the only evaluation).
	Rounds int
}

// PopScales returns the benchmark grid. All rows share the paper-scale
// per-client sample distribution (20–200 samples, mean 110) and a fixed
// selection size, so only the population grows — that is what makes the
// per-round allocation column comparable across rows.
func PopScales() []PopScale {
	return []PopScale{
		{ID: "10k", Clients: 10_000, Edges: 8, Rounds: 5},
		{ID: "100k", Clients: 100_000, Edges: 80, Rounds: 5},
		{ID: "1m", Clients: 1_000_000, Edges: 800, Rounds: 3},
	}
}

// PopScaleByIDs resolves comma-style id lists ("all" or subsets like
// {"10k","1m"}) against the grid. Unknown ids return an error naming the
// valid set.
func PopScaleByIDs(ids []string) ([]PopScale, error) {
	grid := PopScales()
	if len(ids) == 1 && ids[0] == "all" {
		return grid, nil
	}
	var out []PopScale
	for _, id := range ids {
		found := false
		for _, s := range grid {
			if s.ID == id {
				out = append(out, s)
				found = true
				break
			}
		}
		if !found {
			valid := make([]string, len(grid))
			for i, s := range grid {
				valid[i] = s.ID
			}
			return nil, fmt.Errorf("unknown scale %q (valid: %v, or \"all\")", id, valid)
		}
	}
	return out, nil
}

// PopScaleRow is one measured row of results/BENCH_scale.json.
type PopScaleRow struct {
	ID      string `json:"id"`
	Clients int    `json:"clients"`
	Edges   int    `json:"edges"`
	Groups  int    `json:"groups"`
	// SelectedGroups is S, fixed across rows; SelectedClientsAvg is the
	// mean number of clients those groups contain per round — the set the
	// round's working memory is allowed to scale with.
	SelectedGroups     int     `json:"selected_groups"`
	SelectedClientsAvg float64 `json:"selected_clients_avg"`
	// BuildSeconds synthesizes every client's label histogram from
	// (seed, id); PopulationHeapBytes is the resident cost of holding the
	// resulting flyweights (histograms only — no samples exist anywhere).
	BuildSeconds        float64 `json:"build_seconds"`
	PopulationHeapBytes uint64  `json:"population_heap_bytes"`
	// GroupingSeconds runs CoV-Grouping (Alg. 2) over every edge;
	// GroupingClientsPerSec is Clients/GroupingSeconds.
	GroupingSeconds       float64 `json:"grouping_seconds"`
	GroupingClientsPerSec float64 `json:"grouping_clients_per_sec"`
	// Per-round steady-state costs, averaged over Rounds timed rounds
	// after a warm-up round. RoundAllocBytes is the O(selected) witness:
	// it tracks the selected set, not the population.
	Rounds          int     `json:"rounds"`
	RoundSecondsAvg float64 `json:"round_seconds_avg"`
	RoundAllocsAvg  float64 `json:"round_allocs_avg"`
	RoundAllocBytes float64 `json:"round_alloc_bytes_avg"`
}

// PopScaleResult is the full BENCH_scale.json payload.
type PopScaleResult struct {
	Seed         uint64        `json:"seed"`
	GoMaxProcs   int           `json:"gomaxprocs"`
	SampleGroups int           `json:"sample_groups"`
	Rows         []PopScaleRow `json:"rows"`
}

// popScaleSystem builds the virtual population for one grid row: 10-class
// flat features (dim 32), paper-band sample counts, and a small MLP — the
// model is deliberately modest because the benchmark measures the
// federation machinery, not the math kernels.
func popScaleSystem(s PopScale, seed uint64) *core.System {
	gen := data.FlatConfig(10, 32, seed)
	gen.Noise = 1.2
	return core.NewVirtualSystem(core.SystemConfig{
		Generator: gen,
		Partition: data.PartitionConfig{
			NumClients: s.Clients, Alpha: 0.5,
			MinSamples: 20, MaxSamples: 200, MeanSamples: 110, StdSamples: 45,
			Seed: seed + 101,
		},
		NumEdges:  s.Edges,
		TestSize:  512,
		NewModel:  func(ms uint64) *nn.Sequential { return nn.NewMLP(32, []int{32}, 10, ms) },
		ModelSeed: 7,
	})
}

// popScaleConfig is the training config shared by every row: S is fixed so
// the selected set — and therefore the round's working memory — is the
// same at 10k and at 1M clients.
func popScaleConfig(s PopScale, seed uint64) core.Config {
	return core.Config{
		// +2: one untimed warm-up round (which absorbs the t=0
		// evaluation) plus headroom so the final-round evaluation never
		// lands inside the timed window.
		GlobalRounds: s.Rounds + 2,
		GroupRounds:  1, LocalEpochs: 1, BatchSize: 32, LR: 0.05,
		SampleGroups: 8,
		Grouping:     grouping.CoVGrouping{Config: grouping.Config{MinGS: 5, MaxCoV: 0.5, MergeLeftover: true}},
		Sampling:     sampling.ESRCoV,
		Weights:      sampling.Biased,
		Seed:         seed,
		CostProfile:  CIFAR.Profile(),
		CostOps:      cost.DefaultOps(),
		EvalEvery:    s.Rounds + 5,
	}
}

// PopScaleBench measures one grid row. The sequence is: build the flyweight
// population (timed, heap delta recorded), run Alg. 2 formation once
// standalone (timed — this is the grouping-at-scale number), then construct
// a trainer and step it through one warm-up round plus s.Rounds timed
// rounds with evaluation suppressed, reading allocation deltas around the
// timed window.
func PopScaleBench(s PopScale, seed uint64) PopScaleRow {
	row := PopScaleRow{ID: s.ID, Clients: s.Clients, Edges: s.Edges, Rounds: s.Rounds}

	// Two GC cycles around each read: sync.Pool contents (the GEMM packing
	// buffers, worker sample arenas) drain through a victim cache over two
	// collections, so a single GC can leave megabytes of pool memory in the
	// before reading that the after reading has freed — underflowing the
	// delta when earlier tests in the process warmed the pools.
	var before, after runtime.MemStats
	runtime.GC()
	runtime.GC()
	runtime.ReadMemStats(&before)
	t0 := time.Now()
	sys := popScaleSystem(s, seed)
	row.BuildSeconds = time.Since(t0).Seconds()
	runtime.GC()
	runtime.GC()
	runtime.ReadMemStats(&after)
	row.PopulationHeapBytes = after.HeapAlloc - before.HeapAlloc

	cfg := popScaleConfig(s, seed)
	row.SelectedGroups = cfg.SampleGroups

	// Standalone formation, isolated so the headline number contains
	// nothing but Alg. 2 over every edge. Split(1) of the run seed is the
	// same stream NewTrainer hands its own formation call.
	t1 := time.Now()
	groups := grouping.FormAll(cfg.Grouping, sys.Edges, sys.Classes, stats.NewRNG(cfg.Seed).Split(1))
	row.GroupingSeconds = time.Since(t1).Seconds()
	row.GroupingClientsPerSec = float64(s.Clients) / row.GroupingSeconds
	row.Groups = len(groups)

	tr := core.NewTrainer(sys, cfg)
	tr.Step() // warm-up: absorbs the t=0 evaluation and steady-states the pools

	runtime.ReadMemStats(&before)
	t2 := time.Now()
	selected := 0
	for r := 0; r < s.Rounds; r++ {
		tr.Step()
		selected += tr.SelectedClients()
	}
	row.RoundSecondsAvg = time.Since(t2).Seconds() / float64(s.Rounds)
	runtime.ReadMemStats(&after)
	row.RoundAllocsAvg = float64(after.Mallocs-before.Mallocs) / float64(s.Rounds)
	row.RoundAllocBytes = float64(after.TotalAlloc-before.TotalAlloc) / float64(s.Rounds)
	row.SelectedClientsAvg = float64(selected) / float64(s.Rounds)
	return row
}

// PopScaleGrid runs the rows and assembles the BENCH_scale.json payload.
// log, when non-nil, receives a progress line per row.
func PopScaleGrid(scales []PopScale, seed uint64, log func(string)) PopScaleResult {
	res := PopScaleResult{
		Seed: seed, GoMaxProcs: runtime.GOMAXPROCS(0),
		SampleGroups: popScaleConfig(PopScale{Rounds: 1}, seed).SampleGroups,
	}
	for _, s := range scales {
		row := PopScaleBench(s, seed)
		res.Rows = append(res.Rows, row)
		if log != nil {
			log(fmt.Sprintf(
				"popscale %s: %d clients/%d edges → %d groups; build %.2fs, grouping %.2fs (%.0f clients/s), round %.3fs / %.1f MB allocs",
				row.ID, row.Clients, row.Edges, row.Groups,
				row.BuildSeconds, row.GroupingSeconds, row.GroupingClientsPerSec,
				row.RoundSecondsAvg, row.RoundAllocBytes/(1<<20)))
		}
	}
	return res
}
