package experiments

import (
	"fmt"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/grouping"
	"repro/internal/sampling"
	"repro/internal/trace"
)

// Comparison holds the per-method results of one baseline sweep, shared by
// Figs. 9 and 10 (one training run, two axes).
type Comparison struct {
	Task    Task
	Results map[baselines.Name]*core.Result
	Order   []baselines.Name
}

// RunComparison trains every baseline on the given task, mirroring the
// setup of Sec. 7.3: all methods hierarchical, uniform group sampling for
// the baselines, tuned to similar group sizes.
func RunComparison(task Task, sc Scale, alpha float64, seed uint64) *Comparison {
	opts := baselines.DefaultOptions(sc.Clients, sc.TargetGS)
	opts.MinGS = sc.MinGS
	// No MaxCoV constraint for Group-FEL in the comparisons: Table 1 shows
	// that under strong skew the loosest MaxCoV wins (smallest groups,
	// lowest overhead, sampling skips the skewed ones).
	opts.MaxCoV = 0
	// OUEA and SHARE aggregate one group per edge server (uncapped sizes);
	// see baselines.Options.EdgeAggregatorSize.
	opts.EdgeAggregatorSize = (sc.Clients + sc.Edges - 1) / sc.Edges
	if task == SC {
		// Fig. 11 setup: the larger minimum group size applies to *every*
		// method ("We set MinGS = 15 for all"), no MaxCoV constraint.
		opts.MinGS = sc.MinGS * 3
		opts.TargetGS = opts.MinGS
		opts.MaxCoV = 0
	}
	out := &Comparison{Task: task, Results: map[baselines.Name]*core.Result{}, Order: baselines.All()}
	for _, m := range out.Order {
		sys := sc.NewSystem(task, alpha, seed)
		out.Results[m] = baselines.Run(m, sys, sc.BaseConfig(task, seed), opts)
	}
	return out
}

func (c *Comparison) figure(id, title string, axis xAxis) *trace.Figure {
	xl := "global round"
	if axis == byCost {
		xl = "cost"
	}
	f := &trace.Figure{ID: id, Title: title, XLabel: xl, YLabel: "accuracy"}
	for _, m := range c.Order {
		s := f.AddSeries(string(m))
		addAccuracyVs(s, c.Results[m], axis)
	}
	return f
}

// comparisonAlpha is the Dirichlet skew of the Figs. 9–10 comparison — a
// skewed-but-not-extreme setting in the band Table 1 sweeps.
const comparisonAlpha = 0.05

// Fig9 regenerates Fig. 9: accuracy vs global round, all methods, CIFAR.
func Fig9(sc Scale, seed uint64) *trace.Figure {
	return RunComparison(CIFAR, sc, comparisonAlpha, seed).figure("fig9", "Accuracy vs round — CIFAR", byRound)
}

// Fig10 regenerates Fig. 10: accuracy vs cost, all methods, CIFAR.
func Fig10(sc Scale, seed uint64) *trace.Figure {
	return RunComparison(CIFAR, sc, comparisonAlpha, seed).figure("fig10", "Accuracy vs cost — CIFAR", byCost)
}

// Fig9And10 runs the comparison once and returns both views.
func Fig9And10(sc Scale, seed uint64) (*trace.Figure, *trace.Figure) {
	c := RunComparison(CIFAR, sc, comparisonAlpha, seed)
	return c.figure("fig9", "Accuracy vs round — CIFAR", byRound),
		c.figure("fig10", "Accuracy vs cost — CIFAR", byCost)
}

// Fig11 regenerates Fig. 11: accuracy vs cost on the SpeechCommands
// stand-in at extreme skew (α = 0.01, larger MinGS, no MaxCoV).
func Fig11(sc Scale, seed uint64) *trace.Figure {
	return RunComparison(SC, sc, 0.01, seed).figure("fig11", "Accuracy vs cost — SC (alpha=0.01)", byCost)
}

// Fig12 regenerates Fig. 12: the grouping × sampling ablation — CoVG+RS,
// RG+CoVS, CoVG+CoVS, KLDG+RS, KLDG+CoVS on CIFAR.
func Fig12(sc Scale, seed uint64) *trace.Figure {
	f := &trace.Figure{ID: "fig12", Title: "Grouping x sampling ablation", XLabel: "cost", YLabel: "accuracy"}
	covg := func() grouping.Algorithm {
		// Same uncapped-MaxCoV formation as the Figs. 9–10 comparison.
		return grouping.CoVGrouping{Config: grouping.Config{MinGS: sc.MinGS, MergeLeftover: true}}
	}
	rg := func() grouping.Algorithm {
		return grouping.RandomGrouping{Config: grouping.Config{MinGS: sc.TargetGS}, TargetGS: sc.TargetGS}
	}
	kldg := func() grouping.Algorithm {
		return grouping.KLDGrouping{Config: grouping.Config{MinGS: sc.TargetGS, MergeLeftover: true}, TargetGS: sc.TargetGS}
	}
	combos := []struct {
		name string
		alg  grouping.Algorithm
		m    sampling.Method
	}{
		{"CoVG+RS", covg(), sampling.Random},
		{"RG+CoVS", rg(), sampling.ESRCoV},
		{"CoVG+CoVS", covg(), sampling.ESRCoV},
		{"KLDG+RS", kldg(), sampling.Random},
		{"KLDG+CoVS", kldg(), sampling.ESRCoV},
	}
	for _, c := range combos {
		sys := sc.NewSystem(CIFAR, 0.05, seed)
		cfg := sc.BaseConfig(CIFAR, seed)
		cfg.Grouping = c.alg
		cfg.Sampling = c.m
		cfg.Weights = sampling.Biased
		res := core.Train(sys, cfg)
		s := f.AddSeries(c.name)
		addAccuracyVs(s, res, byCost)
	}
	return f
}

// Table1 regenerates Table 1: Group-FEL's group size range/average, average
// group CoV, and final accuracy across α ∈ {0.1, 0.5, 1.0} ×
// MaxCoV ∈ {0.1, 0.5, 1.0} under a fixed cost budget.
func Table1(sc Scale, seed uint64) *trace.Table {
	t := &trace.Table{
		ID:    "table1",
		Title: "Group-FEL performance by alpha and MaxCoV",
		Header: []string{
			"alpha", "MaxCoV", "GS [min,max]", "GS avg", "avg CoV", "accuracy",
		},
	}
	for _, alpha := range []float64{0.1, 0.5, 1.0} {
		for _, maxCoV := range []float64{0.1, 0.5, 1.0} {
			sys := sc.NewSystem(CIFAR, alpha, seed)
			cfg := sc.BaseConfig(CIFAR, seed)
			cfg.Grouping = grouping.CoVGrouping{Config: grouping.Config{
				MinGS: sc.MinGS, MaxCoV: maxCoV, MergeLeftover: true}}
			cfg.Sampling = sampling.ESRCoV
			cfg.Weights = sampling.Biased
			res := core.Train(sys, cfg)

			minGS, maxGS, sumGS, sumCoV := 1<<30, 0, 0, 0.0
			for _, g := range res.Groups {
				if g.Size() < minGS {
					minGS = g.Size()
				}
				if g.Size() > maxGS {
					maxGS = g.Size()
				}
				sumGS += g.Size()
				sumCoV += g.CoV()
			}
			n := float64(len(res.Groups))
			t.AddRow(
				fmt.Sprintf("%.1f", alpha),
				fmt.Sprintf("%.1f", maxCoV),
				fmt.Sprintf("[%d, %d]", minGS, maxGS),
				fmt.Sprintf("%.2f", float64(sumGS)/n),
				fmt.Sprintf("%.2f", sumCoV/n),
				fmt.Sprintf("%.2f%%", res.FinalAccuracy*100),
			)
		}
	}
	return t
}
