package experiments

import (
	"strings"
	"testing"
)

// TestPopScaleByIDs covers the CLI-facing grid resolution: "all", subsets,
// order preservation, and the unknown-id error naming the valid set.
func TestPopScaleByIDs(t *testing.T) {
	all, err := PopScaleByIDs([]string{"all"})
	if err != nil || len(all) != len(PopScales()) {
		t.Fatalf("all: %d rows, err %v", len(all), err)
	}
	sub, err := PopScaleByIDs([]string{"1m", "10k"})
	if err != nil || len(sub) != 2 || sub[0].ID != "1m" || sub[1].ID != "10k" {
		t.Fatalf("subset: %+v, err %v", sub, err)
	}
	if _, err := PopScaleByIDs([]string{"10k", "9000k"}); err == nil ||
		!strings.Contains(err.Error(), "9000k") || !strings.Contains(err.Error(), "1m") {
		t.Fatalf("unknown id error should name the bad id and the valid set, got %v", err)
	}
}

// TestPopScaleOSelectedMemory is the scale-smoke gate: a 4× larger
// population with the same selection size must not allocate 4× more per
// round. Steady-state round allocations track the selected set (fixed S,
// similar group sizes), so the big population is allowed modest growth —
// worker-buffer regrowth, larger group index slices — but nothing
// resembling proportional scaling. Population heap, by contrast, must
// grow with the population: that is where the flyweights live.
func TestPopScaleOSelectedMemory(t *testing.T) {
	small := PopScale{ID: "t20k", Clients: 20_000, Edges: 16, Rounds: 3}
	big := PopScale{ID: "t80k", Clients: 80_000, Edges: 64, Rounds: 3}
	rs := PopScaleBench(small, 1)
	rb := PopScaleBench(big, 1)

	for _, r := range []PopScaleRow{rs, rb} {
		if r.Groups < r.Clients/10 || r.GroupingSeconds <= 0 || r.BuildSeconds <= 0 {
			t.Fatalf("%s: implausible row %+v", r.ID, r)
		}
		if r.SelectedClientsAvg <= 0 || r.SelectedClientsAvg > float64(r.SelectedGroups)*50 {
			t.Fatalf("%s: selected clients avg %.1f out of range", r.ID, r.SelectedClientsAvg)
		}
	}
	// O(selected): per-round allocation may wobble (buffer regrowth, GC
	// bookkeeping) but must stay far below the 4× population ratio.
	slack := 8.0 * (1 << 20)
	if rb.RoundAllocBytes > 2*rs.RoundAllocBytes+slack {
		t.Fatalf("round alloc bytes scaled with population: %.0f at 80k vs %.0f at 20k",
			rb.RoundAllocBytes, rs.RoundAllocBytes)
	}
	if rb.RoundAllocsAvg > 2*rs.RoundAllocsAvg+4096 {
		t.Fatalf("round alloc count scaled with population: %.0f at 80k vs %.0f at 20k",
			rb.RoundAllocsAvg, rs.RoundAllocsAvg)
	}
	// The flyweight store itself is O(population): 4× clients should cost
	// at least ~2× heap (loose: GC timing makes exact ratios unstable).
	if rb.PopulationHeapBytes < 2*rs.PopulationHeapBytes {
		t.Fatalf("population heap did not grow with population: %d at 80k vs %d at 20k",
			rb.PopulationHeapBytes, rs.PopulationHeapBytes)
	}
}
