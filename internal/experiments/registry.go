package experiments

import (
	"fmt"
	"sort"
)

// Artifact is either a figure or a table, unified for the CLI.
type Artifact struct {
	// CSV is the machine-readable rendering.
	CSV string
	// Pretty is the human-readable rendering (summary or markdown).
	Pretty string
}

// Runner regenerates one paper artifact at the given scale and seed.
type Runner func(sc Scale, seed uint64) Artifact

// Registry maps experiment IDs (fig2a … table1, plus ablations) to runners.
func Registry() map[string]Runner {
	return map[string]Runner{
		"fig2a": func(sc Scale, seed uint64) Artifact { return figArtifact(Fig2a()) },
		"fig2b": func(sc Scale, seed uint64) Artifact { return figArtifact(Fig2b(sc, seed)) },
		"fig5":  func(sc Scale, seed uint64) Artifact { return figArtifact(Fig5(sc, seed)) },
		"fig6":  func(sc Scale, seed uint64) Artifact { return figArtifact(Fig6(sc, seed)) },
		"fig7":  func(sc Scale, seed uint64) Artifact { return figArtifact(Fig7(sc, seed)) },
		"fig8":  func(sc Scale, seed uint64) Artifact { return figArtifact(Fig8()) },
		"fig9":  func(sc Scale, seed uint64) Artifact { return figArtifact(Fig9(sc, seed)) },
		"fig10": func(sc Scale, seed uint64) Artifact { return figArtifact(Fig10(sc, seed)) },
		"fig11": func(sc Scale, seed uint64) Artifact { return figArtifact(Fig11(sc, seed)) },
		"fig12": func(sc Scale, seed uint64) Artifact { return figArtifact(Fig12(sc, seed)) },
		"table1": func(sc Scale, seed uint64) Artifact {
			t := Table1(sc, seed)
			return Artifact{CSV: t.CSV(), Pretty: t.Markdown()}
		},
		"abl-variance":    func(sc Scale, seed uint64) Artifact { return figArtifact(AblationVariance(sc, seed)) },
		"abl-aggregation": func(sc Scale, seed uint64) Artifact { return figArtifact(AblationAggregation(sc, seed)) },
		"abl-regroup":     func(sc Scale, seed uint64) Artifact { return figArtifact(AblationRegroup(sc, seed)) },
		"abl-gamma":       func(sc Scale, seed uint64) Artifact { return figArtifact(AblationGamma(sc, seed)) },
		"theory":          func(sc Scale, seed uint64) Artifact { return figArtifact(TheoryFigure(sc, seed)) },
		"dropout":         func(sc Scale, seed uint64) Artifact { return figArtifact(DropoutRobustness(sc, seed)) },
		"costbreak": func(sc Scale, seed uint64) Artifact {
			t := CostBreakdown(sc, seed)
			return Artifact{CSV: t.CSV(), Pretty: t.Markdown()}
		},
		"fairness": func(sc Scale, seed uint64) Artifact {
			t := FairnessTable(sc, seed)
			return Artifact{CSV: t.CSV(), Pretty: t.Markdown()}
		},
		"compression": func(sc Scale, seed uint64) Artifact {
			t := CompressionTable(sc, seed)
			return Artifact{CSV: t.CSV(), Pretty: t.Markdown()}
		},
		"multimodel": func(sc Scale, seed uint64) Artifact {
			t := MultiModelTable(sc, seed)
			return Artifact{CSV: t.CSV(), Pretty: t.Markdown()}
		},
	}
}

// IDs returns the registered experiment IDs in sorted order.
func IDs() []string {
	reg := Registry()
	out := make([]string, 0, len(reg))
	for id := range reg {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// ScaleByName resolves "small"/"medium"/"paper".
func ScaleByName(name string) (Scale, error) {
	switch name {
	case "small":
		return Small(), nil
	case "medium":
		return Medium(), nil
	case "paper":
		return Paper(), nil
	}
	return Scale{}, fmt.Errorf("experiments: unknown scale %q (want small, medium, or paper)", name)
}

type csvSummarizer interface {
	CSV() string
	Summary() string
	Sparklines() string
}

func figArtifact(f csvSummarizer) Artifact {
	return Artifact{CSV: f.CSV(), Pretty: f.Summary() + "\n" + f.Sparklines()}
}
