package experiments

import (
	"repro/internal/core"
	"repro/internal/grouping"
	"repro/internal/sampling"
	"repro/internal/trace"
)

// AblationVariance compares the paper's CoV criterion against the raw
// variance criterion it argues is scale-susceptible (Sec. 5.1): identical
// pipeline, only the greedy score differs.
func AblationVariance(sc Scale, seed uint64) *trace.Figure {
	f := &trace.Figure{ID: "abl-variance", Title: "CoV vs variance grouping criterion", XLabel: "cost", YLabel: "accuracy"}
	algs := []struct {
		name string
		alg  grouping.Algorithm
	}{
		{"CoVG", grouping.CoVGrouping{Config: grouping.Config{MinGS: sc.MinGS, MaxCoV: sc.MaxCoV, MergeLeftover: true}}},
		{"VarG", grouping.VarianceGrouping{Config: grouping.Config{MinGS: sc.MinGS, MergeLeftover: true}}},
	}
	for _, a := range algs {
		sys := sc.NewSystem(CIFAR, 0.05, seed)
		cfg := sc.BaseConfig(CIFAR, seed)
		cfg.Grouping = a.alg
		cfg.Sampling = sampling.ESRCoV
		res := core.Train(sys, cfg)
		addAccuracyVs(f.AddSeries(a.name), res, byCost)
	}
	return f
}

// AblationAggregation compares the three aggregation weight schemes of
// Sec. 6.2 under prioritized (RCoV) sampling: biased, raw unbiased (Eq. 4),
// and stabilized (Eq. 35).
func AblationAggregation(sc Scale, seed uint64) *trace.Figure {
	f := &trace.Figure{ID: "abl-aggregation", Title: "Aggregation weight schemes", XLabel: "global round", YLabel: "accuracy"}
	for _, w := range []sampling.WeightScheme{sampling.Biased, sampling.Unbiased, sampling.Stabilized} {
		sys := sc.NewSystem(CIFAR, 0.3, seed)
		cfg := sc.BaseConfig(CIFAR, seed)
		cfg.Grouping = grouping.CoVGrouping{Config: grouping.Config{MinGS: sc.MinGS, MaxCoV: sc.MaxCoV, MergeLeftover: true}}
		cfg.Sampling = sampling.RCoV
		cfg.Weights = w
		res := core.Train(sys, cfg)
		addAccuracyVs(f.AddSeries(w.String()), res, byRound)
	}
	return f
}

// AblationRegroup compares never regrouping against periodic regrouping
// (Sec. 6.1's suggestion for reusing the data stranded in high-CoV groups;
// enabled by the random first pick in Alg. 2).
func AblationRegroup(sc Scale, seed uint64) *trace.Figure {
	f := &trace.Figure{ID: "abl-regroup", Title: "Periodic regrouping", XLabel: "cost", YLabel: "accuracy"}
	for _, every := range []int{0, 5} {
		sys := sc.NewSystem(CIFAR, 0.05, seed)
		cfg := sc.BaseConfig(CIFAR, seed)
		cfg.Grouping = grouping.CoVGrouping{Config: grouping.Config{MinGS: sc.MinGS, MaxCoV: sc.MaxCoV, MergeLeftover: true}}
		cfg.Sampling = sampling.ESRCoV
		cfg.RegroupEvery = every
		res := core.Train(sys, cfg)
		name := "static groups"
		if every > 0 {
			name = "regroup every 5"
		}
		addAccuracyVs(f.AddSeries(name), res, byCost)
	}
	return f
}

// AblationGamma compares plain CoVG against the γ-aware variant the paper
// leaves as future work (Sec. 8): the greedy score also balances per-client
// sample counts to shrink γ = 1 + CoV²(n_i).
func AblationGamma(sc Scale, seed uint64) *trace.Figure {
	f := &trace.Figure{ID: "abl-gamma", Title: "Gamma-aware group formation", XLabel: "cost", YLabel: "accuracy"}
	for _, gw := range []float64{0, 0.5} {
		sys := sc.NewSystem(CIFAR, 0.05, seed)
		cfg := sc.BaseConfig(CIFAR, seed)
		cfg.Grouping = grouping.CoVGrouping{
			Config:      grouping.Config{MinGS: sc.MinGS, MaxCoV: sc.MaxCoV, MergeLeftover: true},
			GammaWeight: gw,
		}
		cfg.Sampling = sampling.ESRCoV
		res := core.Train(sys, cfg)
		name := "CoV only"
		if gw > 0 {
			name = "CoV + gamma"
		}
		addAccuracyVs(f.AddSeries(name), res, byCost)
	}
	return f
}
