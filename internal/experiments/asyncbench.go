package experiments

import (
	"fmt"
	"math"

	"repro/internal/async"
	"repro/internal/core"
	"repro/internal/grouping"
	"repro/internal/sampling"
)

// AsyncPoint is one round of an async-vs-sync cell's accuracy curve.
type AsyncPoint struct {
	Round    int
	Accuracy float64
}

// AsyncCell is one aggregation mode measured under the straggler storm.
type AsyncCell struct {
	// Name identifies the cell; Mode is the aggregation semantics.
	Name string
	Mode string
	// Knobs of the cell.
	Adaptive      bool
	Alpha         float64
	BufferFrac    float64
	DeadlineTicks int64
	// Outcomes.
	FinalAccuracy float64
	FinalLoss     float64
	LogicalTicks  int64
	Carryovers    int
	LateDrops     int
	Dropouts      int
	ArrivalEvents int
	Curve         []AsyncPoint
}

// AsyncBenchResult is the -exp async-vs-sync artifact (BENCH_async.json):
// the same federation trained under synchronous, buffered, and semi-sync
// aggregation with identical straggler-storm delay draws, plus the gates
// the CI smoke stage enforces.
type AsyncBenchResult struct {
	Scale  string
	Seed   uint64
	Delays async.DelayModel
	Cells  []AsyncCell
	// Alpha0BitIdentical: buffered with α=0 and a full buffer reproduces
	// the synchronous weights bit for bit — the structural-equivalence
	// contract the property tests pin, re-proven on the bench workload.
	Alpha0BitIdentical bool
	// BufferedFewerTicks / SemiSyncFewerTicks: the async modes finish in
	// strictly fewer logical ticks than the synchronous barrier.
	BufferedFewerTicks bool
	SemiSyncFewerTicks bool
	// EqualOrBetterAccuracy: the best async cell's final accuracy is at
	// least the synchronous cell's.
	EqualOrBetterAccuracy bool
	// Pass is the conjunction of every gate.
	Pass bool
}

// asyncBenchConfig is the shared job for every cell: same formation,
// sampling, seeds, and dropout; only cfg.Async (and the adaptive sampler)
// varies between cells.
func asyncBenchConfig(sc Scale, seed uint64, mode async.Config, adaptive bool) core.Config {
	cfg := sc.BaseConfig(CIFAR, seed)
	cfg.Grouping = grouping.CoVGrouping{Config: grouping.Config{
		MinGS: sc.MinGS, MaxCoV: sc.MaxCoV, MergeLeftover: true}}
	cfg.Sampling = sampling.ESRCoV
	cfg.Weights = sampling.Biased
	cfg.Async = mode
	if adaptive {
		cfg.AdaptiveSampling = &sampling.AdaptiveConfig{Beta: 0.3, Explore: 0.1}
	}
	return cfg
}

// asyncCell runs one mode and records its outcomes.
func asyncCell(sc Scale, seed uint64, name string, mode async.Config, adaptive bool, logf func(string)) (AsyncCell, *core.Result) {
	sys := sc.NewSystem(CIFAR, 0.05, seed)
	res := core.Train(sys, asyncBenchConfig(sc, seed, mode, adaptive))
	cell := AsyncCell{
		Name: name, Mode: mode.Mode.String(), Adaptive: adaptive,
		Alpha: mode.Alpha, BufferFrac: mode.BufferFrac, DeadlineTicks: mode.DeadlineTicks,
		FinalAccuracy: res.FinalAccuracy, FinalLoss: res.FinalLoss,
		LogicalTicks: res.LogicalTicks,
		Carryovers:   res.Carryovers, LateDrops: res.LateDrops,
		Dropouts: res.Dropouts,
	}
	if res.ArrivalLog != nil {
		cell.ArrivalEvents = res.ArrivalLog.Len()
	}
	for _, r := range res.Records {
		cell.Curve = append(cell.Curve, AsyncPoint{Round: r.Round, Accuracy: r.Accuracy})
	}
	logf("cell " + name + ": " + cellSummary(cell))
	return cell, res
}

func cellSummary(c AsyncCell) string {
	return fmt.Sprintf("mode=%s adaptive=%v acc=%.4f ticks=%d carry=%d late=%d events=%d",
		c.Mode, c.Adaptive, c.FinalAccuracy, c.LogicalTicks, c.Carryovers, c.LateDrops, c.ArrivalEvents)
}

// AsyncVsSync runs the async-vs-sync grid under the straggler-storm delay
// model: a synchronous reference (its barrier priced on the same logical
// clock), buffered FedBuff cells with and without adaptive sampling, a
// semi-sync cell, and the α=0 full-buffer equivalence probe.
func AsyncVsSync(sc Scale, seed uint64, logf func(string)) *AsyncBenchResult {
	if logf == nil {
		logf = func(string) {}
	}
	storm := async.StragglerStorm()
	deadline := int64(60)

	syncCell, syncRes := asyncCell(sc, seed, "sync",
		async.Config{Delays: storm}, false, logf)
	bufCell, _ := asyncCell(sc, seed, "buffered",
		async.Config{Mode: async.Buffered, Alpha: 0.5, BufferFrac: 0.5, Delays: storm}, false, logf)
	adaCell, _ := asyncCell(sc, seed, "buffered-adaptive",
		async.Config{Mode: async.Buffered, Alpha: 0.5, BufferFrac: 0.5, Delays: storm}, true, logf)
	semiCell, _ := asyncCell(sc, seed, "semisync",
		async.Config{Mode: async.SemiSync, Alpha: 0.5, DeadlineTicks: deadline, Delays: storm}, false, logf)
	probeCell, probeRes := asyncCell(sc, seed, "buffered-alpha0-full",
		async.Config{Mode: async.Buffered, Alpha: 0, BufferFrac: 1, Delays: storm}, false, logf)

	res := &AsyncBenchResult{
		Scale: sc.Name, Seed: seed, Delays: storm,
		Cells: []AsyncCell{syncCell, bufCell, adaCell, semiCell, probeCell},
	}
	res.Alpha0BitIdentical = len(probeRes.Params) == len(syncRes.Params)
	for i := range syncRes.Params {
		if math.Float64bits(probeRes.Params[i]) != math.Float64bits(syncRes.Params[i]) {
			res.Alpha0BitIdentical = false
			break
		}
	}
	res.BufferedFewerTicks = bufCell.LogicalTicks < syncCell.LogicalTicks
	res.SemiSyncFewerTicks = semiCell.LogicalTicks < syncCell.LogicalTicks
	best := bufCell.FinalAccuracy
	if adaCell.FinalAccuracy > best {
		best = adaCell.FinalAccuracy
	}
	if semiCell.FinalAccuracy > best {
		best = semiCell.FinalAccuracy
	}
	res.EqualOrBetterAccuracy = best >= syncCell.FinalAccuracy
	res.Pass = res.Alpha0BitIdentical && res.BufferedFewerTicks &&
		res.SemiSyncFewerTicks && res.EqualOrBetterAccuracy
	return res
}
