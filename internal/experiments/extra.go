package experiments

import (
	"fmt"

	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/grouping"
	"repro/internal/multimodel"
	"repro/internal/sampling"
	"repro/internal/stats"
	"repro/internal/theory"
	"repro/internal/trace"
)

// TheoryFigure evaluates the Theorem 1 bound against the round count for
// the group structures produced by RG and CoVG on the same population —
// the executable form of the paper's claim that lower group heterogeneity
// (ζ_g) tightens the convergence bound.
func TheoryFigure(sc Scale, seed uint64) *trace.Figure {
	f := &trace.Figure{ID: "theory", Title: "Theorem 1 bound by grouping", XLabel: "global rounds T", YLabel: "bound on avg grad norm^2"}
	clients := syntheticClients(sc.Clients, 10, 0.2, seed)
	base := theory.Params{
		Eta: 0.01, K: sc.GroupRounds, E: sc.LocalEpochs,
		L: 1, Sigma2: 1, Zeta2: 1, F0MinusFStar: 10, S: sc.SampleGroups,
	}
	algs := []struct {
		name string
		alg  grouping.Algorithm
		m    sampling.Method
	}{
		{"RG+Random", grouping.RandomGrouping{Config: grouping.Config{MinGS: sc.TargetGS}, TargetGS: sc.TargetGS}, sampling.Random},
		{"CoVG+Random", grouping.CoVGrouping{Config: grouping.Config{MinGS: sc.MinGS, MaxCoV: sc.MaxCoV, MergeLeftover: true}}, sampling.Random},
	}
	for _, a := range algs {
		groups := a.alg.Form(clients, 10, 0, 0, stats.NewRNG(seed))
		p := sampling.Probabilities(groups, a.m)
		params := theory.FromSystem(groups, p, base)
		s := f.AddSeries(a.name)
		for _, T := range []int{50, 100, 200, 400, 800} {
			params.T = T
			s.Add(float64(T), theory.Bound(params))
		}
	}
	return f
}

// CostBreakdown tabulates how total spend splits between training and
// group operations as the group size grows — the quantitative version of
// the paper's Fig. 2 motivation that overheads dominate for large groups.
func CostBreakdown(sc Scale, seed uint64) *trace.Table {
	t := &trace.Table{
		ID:     "costbreak",
		Title:  "Cost breakdown by group size (one global round, CIFAR profile)",
		Header: []string{"group size", "training", "group ops", "group-op share"},
	}
	profile := cost.CIFARProfile()
	clients := syntheticClients(sc.Clients, 10, 0.3, seed)
	for _, gs := range []int{5, 10, 20, 40} {
		if gs > len(clients) {
			break
		}
		acct := cost.NewAccountant(profile, cost.DefaultOps())
		samples := make([]int, gs)
		for i := 0; i < gs; i++ {
			samples[i] = clients[i].NumSamples()
		}
		acct.GroupRound(gs, samples, sc.LocalEpochs)
		share := acct.GroupOps() / acct.Total()
		t.AddRow(
			fmt.Sprintf("%d", gs),
			fmt.Sprintf("%.1f", acct.Training()),
			fmt.Sprintf("%.1f", acct.GroupOps()),
			fmt.Sprintf("%.0f%%", share*100),
		)
	}
	return t
}

// DropoutRobustness sweeps the client dropout probability and reports
// Group-FEL's final accuracy — the robustness property the secure
// aggregation substrate's dropout recovery buys.
func DropoutRobustness(sc Scale, seed uint64) *trace.Figure {
	f := &trace.Figure{ID: "dropout", Title: "Robustness to client dropout", XLabel: "dropout probability", YLabel: "final accuracy"}
	s := f.AddSeries("Group-FEL")
	d := f.AddSeries("dropped updates")
	for _, p := range []float64{0, 0.1, 0.2, 0.4} {
		sys := sc.NewSystem(CIFAR, 0.3, seed)
		cfg := sc.BaseConfig(CIFAR, seed)
		cfg.Grouping = grouping.CoVGrouping{Config: grouping.Config{MinGS: sc.MinGS, MaxCoV: sc.MaxCoV, MergeLeftover: true}}
		cfg.Sampling = sampling.ESRCoV
		cfg.DropoutProb = p
		res := core.Train(sys, cfg)
		s.Add(p, res.FinalAccuracy)
		d.Add(p, float64(res.Dropouts))
	}
	return f
}

// FairnessTable measures the participation-fairness cost of prioritized
// sampling (the paper's future-work concern): for each sampling method it
// reports Jain's index over client participation counts, the fraction of
// clients that ever trained, and the final accuracy. Periodic regrouping
// (Sec. 6.1) is included as the paper's suggested mitigation.
func FairnessTable(sc Scale, seed uint64) *trace.Table {
	t := &trace.Table{
		ID:     "fairness",
		Title:  "Participation fairness by sampling method",
		Header: []string{"method", "Jain index", "clients trained", "accuracy"},
	}
	type variant struct {
		name    string
		m       sampling.Method
		regroup int
	}
	for _, v := range []variant{
		{"Random", sampling.Random, 0},
		{"RCoV", sampling.RCoV, 0},
		{"ESRCoV", sampling.ESRCoV, 0},
		{"ESRCoV+regroup", sampling.ESRCoV, 5},
	} {
		sys := sc.NewSystem(CIFAR, 0.2, seed)
		cfg := sc.BaseConfig(CIFAR, seed)
		cfg.Grouping = grouping.CoVGrouping{Config: grouping.Config{MinGS: sc.MinGS, MaxCoV: sc.MaxCoV, MergeLeftover: true}}
		cfg.Sampling = v.m
		cfg.RegroupEvery = v.regroup
		res := core.Train(sys, cfg)
		t.AddRow(
			v.name,
			fmt.Sprintf("%.3f", res.FairnessIndex(sys)),
			fmt.Sprintf("%d/%d", res.UniqueParticipants(), len(sys.Clients)),
			fmt.Sprintf("%.2f%%", res.FinalAccuracy*100),
		)
	}
	return t
}

// CompressionTable evaluates the update-compression techniques the paper's
// Sec. 2.3 cites as the communication-side cost lever: accuracy and total
// uplink bytes for dense updates, top-k sparsification with error
// feedback, and 8-bit stochastic quantization, all under Group-FEL.
func CompressionTable(sc Scale, seed uint64) *trace.Table {
	t := &trace.Table{
		ID:     "compression",
		Title:  "Update compression: accuracy vs uplink traffic",
		Header: []string{"scheme", "uplink MB", "vs dense", "accuracy"},
	}
	type variant struct {
		name    string
		factory func() compress.Compressor
	}
	run := func(v variant) *core.Result {
		sys := sc.NewSystem(CIFAR, 0.2, seed)
		cfg := sc.BaseConfig(CIFAR, seed)
		cfg.Grouping = grouping.CoVGrouping{Config: grouping.Config{MinGS: sc.MinGS, MergeLeftover: true}}
		cfg.Sampling = sampling.ESRCoV
		cfg.NewCompressor = v.factory
		return core.Train(sys, cfg)
	}
	variants := []variant{
		{"dense", nil},
		{"q8", func() compress.Compressor { return compress.NewUniform(8, seed) }},
		{"top-10%", nil}, // factory filled below (needs model size)
	}
	// Size top-k to ~10% of the model.
	probe := sc.NewSystem(CIFAR, 0.2, seed)
	k := probe.NewModel(probe.ModelSeed).NumParams() / 10
	if k < 1 {
		k = 1
	}
	variants[2].factory = func() compress.Compressor { return compress.NewTopK(k) }

	var denseBytes int64
	for i, v := range variants {
		res := run(v)
		if i == 0 {
			denseBytes = res.UplinkBytes
		}
		ratio := 1.0
		if denseBytes > 0 {
			ratio = float64(res.UplinkBytes) / float64(denseBytes)
		}
		t.AddRow(
			v.name,
			fmt.Sprintf("%.1f", float64(res.UplinkBytes)/1e6),
			fmt.Sprintf("%.0f%%", ratio*100),
			fmt.Sprintf("%.2f%%", res.FinalAccuracy*100),
		)
	}
	return t
}

// MultiModelTable compares group-to-model schedulers in the multi-model
// HFL scenario the paper cites as reference [23] (Wei et al.): several
// models share the edge fleet and each group serves one model per round.
func MultiModelTable(sc Scale, seed uint64) *trace.Table {
	t := &trace.Table{
		ID:     "multimodel",
		Title:  "Multi-model HFL: scheduler comparison (2 models)",
		Header: []string{"scheduler", "mean accuracy", "model accuracies", "assignments"},
	}
	for _, sched := range []multimodel.Scheduler{multimodel.Random, multimodel.RoundRobin, multimodel.NeedyFirst} {
		sys := sc.NewSystem(CIFAR, 0.2, seed)
		base := sc.BaseConfig(CIFAR, seed)
		base.Grouping = grouping.CoVGrouping{Config: grouping.Config{MinGS: sc.MinGS, MergeLeftover: true}}
		base.Sampling = sampling.ESRCoV
		res := multimodel.Train(sys, multimodel.Config{
			Models: 2, GroupsPerModel: sc.SampleGroups / 2,
			Scheduler: sched, Train: base,
		})
		accs := ""
		asg := ""
		for m, st := range res.Models {
			if m > 0 {
				accs += " / "
				asg += " / "
			}
			accs += fmt.Sprintf("%.2f%%", st.Accuracy*100)
			asg += fmt.Sprintf("%d", res.Assignments[m])
		}
		t.AddRow(sched.String(), fmt.Sprintf("%.2f%%", res.MeanAccuracy*100), accs, asg)
	}
	return t
}
