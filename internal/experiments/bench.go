package experiments

import (
	"math"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/grouping"
	"repro/internal/sampling"
)

// CoreBenchResult is the training-engine benchmark written by
// `felbench -bench` as BENCH_core.json: one serial and one parallel run of
// the same Small-scale Group-FEL job, measured end to end.
type CoreBenchResult struct {
	// Scale and Seed identify the workload; GoMaxProcs records the
	// parallelism available when the numbers were taken.
	Scale      string `json:"scale"`
	Seed       uint64 `json:"seed"`
	GoMaxProcs int    `json:"gomaxprocs"`
	// MaxParallel is the resolved worker count of the parallel schedule
	// (MaxParallel=0 resolves to GOMAXPROCS), so BENCH_core.json entries
	// taken on different machines stay comparable.
	MaxParallel int `json:"max_parallel"`
	Rounds      int `json:"rounds"`
	// SerialNsPerRound is a MaxParallel=1 run (the reference schedule);
	// ParallelNsPerRound uses MaxParallel=0 (GOMAXPROCS workers).
	SerialNsPerRound   float64 `json:"serial_ns_per_round"`
	ParallelNsPerRound float64 `json:"parallel_ns_per_round"`
	// Speedup is serial/parallel wall clock; ~1.0 on a single-CPU host.
	Speedup float64 `json:"speedup"`
	// SerialAllocsPerRound / ParallelAllocsPerRound count heap allocations
	// per global round (runtime mallocs delta / rounds) — the zero-alloc
	// hot-path work shows up here.
	SerialAllocsPerRound   float64 `json:"serial_allocs_per_round"`
	ParallelAllocsPerRound float64 `json:"parallel_allocs_per_round"`
	// BitIdentical confirms the determinism contract held: both runs
	// produced bit-for-bit equal final parameters.
	BitIdentical bool `json:"bit_identical"`
}

// CoreBench times the training engine serial vs parallel on the given scale
// and verifies both schedules produce bit-identical parameters.
func CoreBench(sc Scale, seed uint64) CoreBenchResult {
	run := func(maxParallel int) ([]float64, float64, float64) {
		scRun := sc
		scRun.MaxParallel = maxParallel
		sys := scRun.NewSystem(CIFAR, 0.2, seed)
		cfg := scRun.BaseConfig(CIFAR, seed)
		cfg.Grouping = grouping.CoVGrouping{Config: grouping.Config{MinGS: sc.MinGS, MaxCoV: sc.MaxCoV, MergeLeftover: true}}
		cfg.Sampling = sampling.ESRCoV
		cfg.Weights = sampling.Biased
		// Warm the per-client batch cache so timing covers training, not
		// dataset slicing.
		for _, c := range sys.Clients {
			sys.ClientBatch(c)
		}
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		start := time.Now()
		res := core.Train(sys, cfg)
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		rounds := float64(res.RoundsRun)
		return res.Params,
			float64(elapsed.Nanoseconds()) / rounds,
			float64(after.Mallocs-before.Mallocs) / rounds
	}

	serialParams, serialNs, serialAllocs := run(1)
	parallelParams, parallelNs, parallelAllocs := run(0)
	identical := len(serialParams) == len(parallelParams)
	if identical {
		for i := range serialParams {
			if math.Float64bits(serialParams[i]) != math.Float64bits(parallelParams[i]) {
				identical = false
				break
			}
		}
	}
	return CoreBenchResult{
		Scale:                  sc.Name,
		Seed:                   seed,
		GoMaxProcs:             runtime.GOMAXPROCS(0),
		MaxParallel:            runtime.GOMAXPROCS(0),
		Rounds:                 sc.GlobalRounds,
		SerialNsPerRound:       serialNs,
		ParallelNsPerRound:     parallelNs,
		Speedup:                serialNs / parallelNs,
		SerialAllocsPerRound:   serialAllocs,
		ParallelAllocsPerRound: parallelAllocs,
		BitIdentical:           identical,
	}
}
