package experiments

import (
	"fmt"
	"math"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/data"
	"repro/internal/grouping"
	"repro/internal/nn"
	"repro/internal/sampling"
	"repro/internal/tensor"
)

// This file is the engine benchmark grid behind `felbench -bench`: every
// combination of GOMAXPROCS × workload scale × MaxParallel, each cell
// measured end to end through core.Train and checked bit-for-bit against the
// per-scale serial baseline. The baseline is the *naive* serial engine —
// MaxParallel=1, GOMAXPROCS=1, blocked GEMM disabled — so a cell's
// speedup_vs_serial captures everything the performance work buys: the
// cache-blocked kernels, the fused tree aggregation, and (on multi-core
// hosts) the worker fan-out. bit_identical=true in every cell is the
// determinism contract holding across all of it.

// BenchScale sizes one workload row of the grid. Unlike the experiment
// Scales (Small/Medium/Paper), these are sized for kernel behaviour: small
// stays under every parallel/blocked dispatch threshold (the zero-alloc
// serial fast path), medium and large push the per-layer GEMMs well past
// blockedMinWork so the blocked kernels dominate the round time.
type BenchScale struct {
	Name     string
	Features int
	Hidden   []int
	Classes  int
	Clients  int
	Edges    int
	// Rounds is GlobalRounds per measured run; the grid reports ns/round.
	Rounds       int
	GroupRounds  int
	LocalEpochs  int
	SampleGroups int
	BatchSize    int
	MinGS        int
	// Per-client sample-count distribution. Minimums sit above BatchSize so
	// every client runs at least one full-sized batch through the kernels.
	MinSamples, MaxSamples  int
	MeanSamples, StdSamples float64
	TestSize                int
}

// BenchScales returns the grid's workload axis.
func BenchScales() []BenchScale {
	return []BenchScale{
		{
			// Below every dispatch threshold: 16×24×32 GEMMs run on the
			// serial row kernels whatever the knobs say. This row documents
			// that small problems neither gain nor regress.
			Name: "small", Features: 24, Hidden: []int{32}, Classes: 10,
			Clients: 24, Edges: 2,
			Rounds: 6, GroupRounds: 2, LocalEpochs: 1, SampleGroups: 3,
			BatchSize: 16, MinGS: 3,
			MinSamples: 16, MaxSamples: 40, MeanSamples: 25, StdSamples: 8,
			TestSize: 64,
		},
		{
			// 64×256×256 forward GEMMs: past blockedMinWork, B's working set
			// (512 KB) spills L1/L2 on the naive path.
			Name: "medium", Features: 256, Hidden: []int{256}, Classes: 10,
			Clients: 16, Edges: 2,
			Rounds: 3, GroupRounds: 2, LocalEpochs: 1, SampleGroups: 2,
			BatchSize: 64, MinGS: 3,
			MinSamples: 64, MaxSamples: 160, MeanSamples: 110, StdSamples: 30,
			TestSize: 64,
		},
		{
			// 96×512×512 GEMMs through two hidden layers: B is 2 MB per
			// layer, far past cache on the naive streaming path — the regime
			// the packed panels were built for.
			Name: "large", Features: 512, Hidden: []int{512, 512}, Classes: 10,
			Clients: 10, Edges: 2,
			Rounds: 2, GroupRounds: 1, LocalEpochs: 1, SampleGroups: 1,
			BatchSize: 96, MinGS: 3,
			MinSamples: 96, MaxSamples: 200, MeanSamples: 130, StdSamples: 30,
			TestSize: 64,
		},
	}
}

// BenchScalesByNames resolves comma-style name lists ("all" or subsets like
// {"medium","large"}) against the grid axis. Unknown names return an error
// listing the valid set.
func BenchScalesByNames(names []string) ([]BenchScale, error) {
	axis := BenchScales()
	if len(names) == 1 && names[0] == "all" {
		return axis, nil
	}
	var out []BenchScale
	for _, name := range names {
		found := false
		for _, s := range axis {
			if s.Name == name {
				out = append(out, s)
				found = true
				break
			}
		}
		if !found {
			valid := make([]string, len(axis))
			for i, s := range axis {
				valid[i] = s.Name
			}
			return nil, fmt.Errorf("unknown bench scale %q (valid: %v, or \"all\")", name, valid)
		}
	}
	return out, nil
}

// GridBaseline is one scale's reference measurement: the naive serial
// engine (MaxParallel=1, GOMAXPROCS=1, blocked GEMM off).
type GridBaseline struct {
	Scale          string  `json:"scale"`
	NsPerRound     float64 `json:"ns_per_round"`
	AllocsPerRound float64 `json:"allocs_per_round"`
}

// GridCell is one measured grid cell.
type GridCell struct {
	Scale          string  `json:"scale"`
	GoMaxProcs     int     `json:"gomaxprocs"`
	MaxParallel    int     `json:"max_parallel"`
	NsPerRound     float64 `json:"ns_per_round"`
	AllocsPerRound float64 `json:"allocs_per_round"`
	// SpeedupVsSerial is the scale's naive-serial baseline ns/round divided
	// by this cell's ns/round.
	SpeedupVsSerial float64 `json:"speedup_vs_serial"`
	// BitIdentical reports whether this cell's final parameters matched the
	// baseline's bit for bit — the grid's determinism check.
	BitIdentical bool `json:"bit_identical"`
}

// GridResult is the full grid written as BENCH_grid.json.
type GridResult struct {
	Seed uint64 `json:"seed"`
	// HostProcs is runtime.NumCPU at measurement time. GOMAXPROCS values
	// above it add scheduler pressure, not compute — read speedups on such
	// hosts as kernel gains, not parallel gains.
	HostProcs int `json:"host_procs"`
	// Repeats is how many times each cell ran; ns/round and allocs/round
	// are the minima, which is the stable statistic on noisy shared hosts.
	Repeats      int            `json:"repeats"`
	ProcsAxis    []int          `json:"procs_axis"`
	ParallelAxis []int          `json:"parallel_axis"`
	Baselines    []GridBaseline `json:"baselines"`
	Cells        []GridCell     `json:"cells"`
}

// benchSystem builds the MLP population for one grid scale.
func (bs BenchScale) benchSystem(seed uint64) *core.System {
	gen := data.FlatConfig(bs.Classes, bs.Features, seed)
	gen.Noise = 1.2
	return core.NewSystem(core.SystemConfig{
		Generator: gen,
		Partition: data.PartitionConfig{
			NumClients: bs.Clients, Alpha: 0.3,
			MinSamples: bs.MinSamples, MaxSamples: bs.MaxSamples,
			MeanSamples: bs.MeanSamples, StdSamples: bs.StdSamples,
			Seed: seed + 101,
		},
		NumEdges: bs.Edges,
		TestSize: bs.TestSize,
		NewModel: func(ms uint64) *nn.Sequential {
			return nn.NewMLP(bs.Features, bs.Hidden, bs.Classes, ms)
		},
		ModelSeed: 7,
	})
}

// benchConfig builds the core.Config for one grid scale.
func (bs BenchScale) benchConfig(seed uint64, maxParallel int) core.Config {
	return core.Config{
		GlobalRounds: bs.Rounds,
		GroupRounds:  bs.GroupRounds,
		LocalEpochs:  bs.LocalEpochs,
		BatchSize:    bs.BatchSize,
		LR:           0.05,
		SampleGroups: bs.SampleGroups,
		Grouping:     grouping.CoVGrouping{Config: grouping.Config{MinGS: bs.MinGS, MaxCoV: 0.5, MergeLeftover: true}},
		Sampling:     sampling.ESRCoV,
		Weights:      sampling.Biased,
		Seed:         seed,
		CostProfile:  CIFAR.Profile(),
		CostOps:      cost.DefaultOps(),
		EvalEvery:    bs.Rounds, // time training, not evaluation
		MaxParallel:  maxParallel,
	}
}

// runCell executes one (scale, GOMAXPROCS, MaxParallel, kernel) point
// `repeats` times and returns the final parameters plus min ns/round and
// min allocs/round. Every run rebuilds the system from the seed, so cells
// are independent; bit-equality across cells is checked by the caller.
func runCell(bs BenchScale, procs, maxParallel int, blocked bool, repeats int, seed uint64) (params []float64, nsPerRound, allocsPerRound float64) {
	oldProcs := runtime.GOMAXPROCS(procs)
	defer func() {
		runtime.GOMAXPROCS(oldProcs)
		tensor.SyncProcs()
	}()
	tensor.SetBlockedGEMM(blocked)
	defer tensor.SetBlockedGEMM(true)

	nsPerRound = math.Inf(1)
	allocsPerRound = math.Inf(1)
	for r := 0; r < repeats; r++ {
		sys := bs.benchSystem(seed)
		cfg := bs.benchConfig(seed, maxParallel)
		// Warm the per-client batch cache so timing covers training, not
		// dataset slicing.
		for _, c := range sys.Clients {
			sys.ClientBatch(c)
		}
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		start := time.Now()
		res := core.Train(sys, cfg)
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		rounds := float64(res.RoundsRun)
		nsPerRound = min(nsPerRound, float64(elapsed.Nanoseconds())/rounds)
		allocsPerRound = min(allocsPerRound, float64(after.Mallocs-before.Mallocs)/rounds)
		params = res.Params
	}
	return params, nsPerRound, allocsPerRound
}

// sameBits reports bit-for-bit equality of two parameter vectors.
func sameBits(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// BenchGrid measures every (scale × GOMAXPROCS × MaxParallel) cell against
// each scale's naive-serial baseline. progress, when non-nil, receives one
// line per measurement as it lands.
func BenchGrid(scales []BenchScale, procsAxis, parAxis []int, repeats int, seed uint64, progress func(string)) GridResult {
	if repeats < 1 {
		repeats = 1
	}
	say := func(format string, args ...any) {
		if progress != nil {
			progress(fmt.Sprintf(format, args...))
		}
	}
	res := GridResult{
		Seed:         seed,
		HostProcs:    runtime.NumCPU(),
		Repeats:      repeats,
		ProcsAxis:    procsAxis,
		ParallelAxis: parAxis,
	}
	for _, bs := range scales {
		baseParams, baseNs, baseAllocs := runCell(bs, 1, 1, false, repeats, seed)
		res.Baselines = append(res.Baselines, GridBaseline{
			Scale: bs.Name, NsPerRound: baseNs, AllocsPerRound: baseAllocs,
		})
		say("%-7s baseline (naive serial): %.2f ms/round, %.0f allocs/round",
			bs.Name, baseNs/1e6, baseAllocs)
		for _, procs := range procsAxis {
			for _, par := range parAxis {
				params, ns, allocs := runCell(bs, procs, par, true, repeats, seed)
				cell := GridCell{
					Scale:           bs.Name,
					GoMaxProcs:      procs,
					MaxParallel:     par,
					NsPerRound:      ns,
					AllocsPerRound:  allocs,
					SpeedupVsSerial: baseNs / ns,
					BitIdentical:    sameBits(params, baseParams),
				}
				res.Cells = append(res.Cells, cell)
				say("%-7s procs=%d par=%d: %.2f ms/round, %.0f allocs/round, speedup %.2fx, bit_identical=%v",
					bs.Name, procs, par, ns/1e6, allocs, cell.SpeedupVsSerial, cell.BitIdentical)
			}
		}
	}
	return res
}
