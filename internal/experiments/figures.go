package experiments

import (
	"fmt"
	"time"

	"repro/internal/backdoor"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/data"
	"repro/internal/grouping"
	"repro/internal/sampling"
	"repro/internal/secagg"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Fig2a regenerates Fig. 2(a): per-client group overheads vs group size and
// training cost vs data count, 0–50, from the CIFAR cost profile.
func Fig2a() *trace.Figure {
	p := cost.CIFARProfile()
	f := &trace.Figure{ID: "fig2a", Title: "Group overheads", XLabel: "data/group size", YLabel: "time (s)"}
	tr := f.AddSeries("Training")
	sa := f.AddSeries("Secure Aggregation")
	bd := f.AddSeries("Backdoor Detection")
	for x := 0; x <= 50; x += 5 {
		tr.Add(float64(x), p.Training(x))
		sa.Add(float64(x), p.SecAgg(x))
		bd.Add(float64(x), p.Backdoor(x))
	}
	return f
}

// Fig2b regenerates Fig. 2(b): accuracy over cost for fixed group sizes
// GS ∈ {5, 10, 15, 20} under random grouping and uniform sampling — the
// motivating observation that shrinking groups alone does not cut total
// cost, because smaller random groups are more skewed.
func Fig2b(sc Scale, seed uint64) *trace.Figure {
	f := &trace.Figure{ID: "fig2b", Title: "Accuracy over cost by group size", XLabel: "cost", YLabel: "accuracy"}
	for _, gs := range []int{5, 10, 15, 20} {
		sys := sc.NewSystem(CIFAR, 0.02, seed)
		cfg := sc.BaseConfig(CIFAR, seed)
		cfg.Grouping = grouping.RandomGrouping{Config: grouping.Config{MinGS: gs}, TargetGS: gs}
		cfg.Sampling = sampling.Random
		cfg.Weights = sampling.Biased
		res := core.Train(sys, cfg)
		s := f.AddSeries(fmt.Sprintf("GS=%d", gs))
		addAccuracyVs(s, res, byCost)
	}
	return f
}

// Fig5 regenerates Fig. 5: wall-clock running time of the four grouping
// algorithms as the client count grows.
func Fig5(sc Scale, seed uint64) *trace.Figure {
	f := &trace.Figure{ID: "fig5", Title: "Grouping running time", XLabel: "number of clients", YLabel: "time (s)"}
	sizes := []int{200, 400, 600, 800, 1000}
	if sc.Name == "small" {
		sizes = []int{50, 100, 150, 200}
	}
	algs := []grouping.Algorithm{
		grouping.RandomGrouping{Config: grouping.Config{MinGS: sc.TargetGS}, TargetGS: sc.TargetGS},
		grouping.CDGrouping{Config: grouping.Config{MinGS: sc.TargetGS}, TargetGS: sc.TargetGS},
		grouping.KLDGrouping{Config: grouping.Config{MinGS: sc.TargetGS, MergeLeftover: true}, TargetGS: sc.TargetGS},
		grouping.CoVGrouping{Config: grouping.Config{MinGS: sc.TargetGS, MaxCoV: sc.MaxCoV, MergeLeftover: true}},
	}
	series := make([]*trace.Series, len(algs))
	for i, a := range algs {
		series[i] = f.AddSeries(a.Name())
	}
	for _, n := range sizes {
		clients := syntheticClients(n, 10, 0.3, seed)
		for i, a := range algs {
			start := time.Now()
			a.Form(clients, 10, 0, 0, stats.NewRNG(seed+uint64(i)))
			series[i].Add(float64(n), time.Since(start).Seconds())
		}
	}
	return f
}

// Fig6 regenerates Fig. 6: average group CoV (x) versus average per-client
// group overhead (y, normalized to the largest configuration) as the target
// group size sweeps — showing CoVG gives the best CoV at equal overhead.
func Fig6(sc Scale, seed uint64) *trace.Figure {
	f := &trace.Figure{ID: "fig6", Title: "CoV vs group overhead", XLabel: "avg CoV", YLabel: "avg group overhead (normalized)"}
	profile := cost.CIFARProfile()
	ops := cost.DefaultOps()
	sizes := []int{5, 8, 12, 16, 20}
	maxOverhead := profile.GroupOverhead(sizes[len(sizes)-1], ops)
	clients := syntheticClients(sc.Clients*3, 10, 0.2, seed)
	build := func(gs int) []grouping.Algorithm {
		return []grouping.Algorithm{
			grouping.RandomGrouping{Config: grouping.Config{MinGS: gs}, TargetGS: gs},
			grouping.CDGrouping{Config: grouping.Config{MinGS: gs}, TargetGS: gs},
			grouping.KLDGrouping{Config: grouping.Config{MinGS: gs, MergeLeftover: true}, TargetGS: gs},
			grouping.CoVGrouping{Config: grouping.Config{MinGS: gs, MergeLeftover: true}},
		}
	}
	names := []string{"RG", "CDG", "KLDG", "CoVG"}
	series := make(map[string]*trace.Series, len(names))
	for _, n := range names {
		series[n] = f.AddSeries(n)
	}
	for _, gs := range sizes {
		for i, a := range build(gs) {
			groups := a.Form(clients, 10, 0, 0, stats.NewRNG(seed+uint64(gs)))
			covSum, ovSum := 0.0, 0.0
			for _, g := range groups {
				covSum += g.CoV()
				ovSum += profile.GroupOverhead(g.Size(), ops)
			}
			n := float64(len(groups))
			series[names[i]].Add(covSum/n, ovSum/n/maxOverhead)
		}
	}
	return f
}

// Fig7 regenerates Fig. 7: accuracy over cost for the four sampling methods
// (Random, RCoV, SRCoV, ESRCoV) with CoVG formation held fixed.
func Fig7(sc Scale, seed uint64) *trace.Figure {
	f := &trace.Figure{ID: "fig7", Title: "Sampling methods", XLabel: "cost", YLabel: "accuracy"}
	for _, m := range []sampling.Method{sampling.Random, sampling.RCoV, sampling.SRCoV, sampling.ESRCoV} {
		sys := sc.NewSystem(CIFAR, comparisonAlpha, seed)
		cfg := sc.BaseConfig(CIFAR, seed)
		// No MaxCoV cap: group quality must vary for the sampling methods
		// to differ (the paper selects "based on their CoV values" from a
		// population of mixed-quality groups).
		cfg.Grouping = grouping.CoVGrouping{Config: grouping.Config{MinGS: sc.MinGS, MergeLeftover: true}}
		cfg.Sampling = m
		cfg.Weights = sampling.Biased
		res := core.Train(sys, cfg)
		s := f.AddSeries(m.String())
		addAccuracyVs(s, res, byCost)
	}
	return f
}

// Fig8 regenerates Fig. 8: the calibrated overhead model curves for both
// tasks, plus *measured* operation counts from the executable secure
// aggregation and backdoor detection substrates (scaled to overlay),
// confirming the quadratic shape the cost model assumes.
func Fig8() *trace.Figure {
	f := &trace.Figure{ID: "fig8", Title: "Overhead measurement", XLabel: "data/client number", YLabel: "time (s)"}
	for _, task := range []Task{CIFAR, SC} {
		p := task.Profile()
		tr := f.AddSeries(task.String() + " Training")
		sa := f.AddSeries(task.String() + " SecAgg")
		sc := f.AddSeries(task.String() + " SCAFFOLD SecAgg")
		bd := f.AddSeries(task.String() + " Backdoor Detection")
		for x := 2; x <= 50; x += 4 {
			tr.Add(float64(x), p.Training(x))
			sa.Add(float64(x), p.SecAgg(x))
			sc.Add(float64(x), p.ScaffoldSecAgg(x))
			bd.Add(float64(x), p.Backdoor(x))
		}
	}
	// Measured: run real sessions at a few sizes and scale ops → seconds so
	// the shape comparison is direct (anchor at size 20).
	p := cost.CIFARProfile()
	meas := f.AddSeries("SecAgg (measured ops, scaled)")
	anchorOps := secaggOps(20)
	k := p.SecAgg(20) / float64(anchorOps)
	for _, n := range []int{4, 10, 20, 30, 40} {
		meas.Add(float64(n), float64(secaggOps(n))*k)
	}
	bmeas := f.AddSeries("Backdoor (measured ops, scaled)")
	anchorPairs := backdoorOps(20, 64)
	kb := p.Backdoor(20) / float64(anchorPairs)
	for _, n := range []int{4, 10, 20, 30, 40} {
		bmeas.Add(float64(n), float64(backdoorOps(n, 64))*kb)
	}
	return f
}

// secaggOps runs one full secure aggregation of n clients and returns the
// PRG mask expansions performed.
func secaggOps(n int) int {
	q := secagg.DefaultQuantizer()
	s := secagg.NewSession(n, 16, n/2+1, 1, q)
	masked := make([][]uint64, n)
	for i := 0; i < n; i++ {
		masked[i] = s.MaskedUpdate(i, make([]float64, 16))
	}
	if _, err := s.Aggregate(masked, nil); err != nil {
		panic(fmt.Sprintf("experiments: secagg aggregation in ops count: %v", err))
	}
	return s.Ops().MaskStreams
}

// backdoorOps runs the detector over n synthetic updates and returns the
// pairwise similarity evaluations.
func backdoorOps(n, dim int) int {
	rng := stats.NewRNG(uint64(n))
	updates := make([][]float64, n)
	for i := range updates {
		updates[i] = make([]float64, dim)
		for d := range updates[i] {
			updates[i][d] = rng.Normal(0, 1)
		}
	}
	return backdoor.Detect(updates, backdoor.DefaultConfig()).PairwiseOps
}

// syntheticClients builds a Dirichlet-partitioned population without a full
// System (no model/test set), for formation-only experiments.
func syntheticClients(n, classes int, alpha float64, seed uint64) []*data.Client {
	gen := data.NewGenerator(data.FlatConfig(classes, 4, seed))
	ds := gen.Sample(n*60, 0)
	return data.DirichletPartition(ds, data.PartitionConfig{
		NumClients: n, Alpha: alpha,
		MinSamples: 10, MaxSamples: 50, MeanSamples: 30, StdSamples: 10,
		Seed: seed + 13,
	})
}

type xAxis int

const (
	byRound xAxis = iota
	byCost
)

// addAccuracyVs appends a run's evaluated records to a series with the
// chosen x-axis.
func addAccuracyVs(s *trace.Series, res *core.Result, axis xAxis) {
	for _, r := range res.Records {
		if r.Accuracy < 0 {
			continue // evaluation skipped this round
		}
		switch axis {
		case byRound:
			s.Add(float64(r.Round), r.Accuracy)
		case byCost:
			s.Add(r.Cost, r.Accuracy)
		}
	}
}
