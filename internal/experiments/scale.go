// Package experiments regenerates every table and figure of the paper's
// evaluation (Sec. 7). Each runner returns a trace.Figure or trace.Table
// whose series mirror the paper's plot. Runners accept a Scale so the same
// code drives quick CI-sized runs (Small), demonstration runs (Medium), and
// paper-sized runs (Paper); EXPERIMENTS.md records the expected shapes.
package experiments

import (
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/data"
	"repro/internal/metrics"
	"repro/internal/nn"
)

// Task selects the workload family.
type Task int

// The paper's two tasks.
const (
	// CIFAR is the CIFAR-10 stand-in (10 classes; Figs. 9, 10, 12,
	// Table 1).
	CIFAR Task = iota
	// SC is the SpeechCommands stand-in (35 classes; Fig. 11).
	SC
)

// String names the task.
func (t Task) String() string {
	if t == SC {
		return "SC"
	}
	return "CIFAR"
}

// Profile returns the task's cost profile.
func (t Task) Profile() cost.Profile {
	if t == SC {
		return cost.SCProfile()
	}
	return cost.CIFARProfile()
}

// Scale bundles every size knob of an experiment.
type Scale struct {
	Name         string
	Clients      int
	Edges        int
	GlobalRounds int
	GroupRounds  int // K
	LocalEpochs  int // E
	SampleGroups int // S
	TestSize     int
	BatchSize    int
	LR           float64
	MinGS        int
	TargetGS     int
	MaxCoV       float64
	// ConvModels switches from flat-feature MLPs (fast) to the paper's
	// image-like convolutional models.
	ConvModels bool
	// CostBudget stops budgeted runs (0 = run all rounds).
	CostBudget float64
	// Per-client sample count distribution.
	MinSamples, MaxSamples  int
	MeanSamples, StdSamples float64
	// EvalEvery thins test-set evaluations.
	EvalEvery int
	// MaxParallel bounds the training engine's worker pool (0 = one worker per CPU,
	// 1 = serial reference path). Results are bit-identical at any value.
	MaxParallel int
	// Metrics, when non-nil, instruments every run at this scale; felbench
	// wires one per experiment and dumps its JSON next to the CSV.
	Metrics *metrics.Registry
}

// Small is the CI-sized scale: everything completes in seconds.
func Small() Scale {
	return Scale{
		Name: "small", Clients: 40, Edges: 2,
		GlobalRounds: 15, GroupRounds: 2, LocalEpochs: 1, SampleGroups: 4,
		TestSize: 400, BatchSize: 16, LR: 0.05,
		MinGS: 4, TargetGS: 5, MaxCoV: 0.5,
		MinSamples: 10, MaxSamples: 40, MeanSamples: 25, StdSamples: 8,
		EvalEvery: 1,
	}
}

// Medium is a demonstration scale: minutes, clearer separations.
func Medium() Scale {
	return Scale{
		Name: "medium", Clients: 120, Edges: 3,
		GlobalRounds: 60, GroupRounds: 5, LocalEpochs: 2, SampleGroups: 8,
		TestSize: 1000, BatchSize: 16, LR: 0.1,
		MinGS: 5, TargetGS: 6, MaxCoV: 0.5,
		MinSamples: 15, MaxSamples: 80, MeanSamples: 45, StdSamples: 18,
		EvalEvery: 2,
	}
}

// Paper mirrors the paper's setup: 300 clients, 3 edges, K=5, E=2,
// MinGS=5, S=12, budget 10⁶, convolutional models. Hours of compute.
func Paper() Scale {
	return Scale{
		Name: "paper", Clients: 300, Edges: 3,
		GlobalRounds: 200, GroupRounds: 5, LocalEpochs: 2, SampleGroups: 12,
		TestSize: 2000, BatchSize: 32, LR: 0.05,
		MinGS: 5, TargetGS: 6, MaxCoV: 0.5,
		ConvModels: true, CostBudget: 1e6,
		MinSamples: 20, MaxSamples: 200, MeanSamples: 110, StdSamples: 45,
		EvalEvery: 5,
	}
}

// NewSystem builds the federated population for a task at this scale.
func (s Scale) NewSystem(task Task, alpha float64, seed uint64) *core.System {
	var gen data.GeneratorConfig
	var newModel func(uint64) *nn.Sequential
	switch task {
	case CIFAR:
		if s.ConvModels {
			gen = data.SynthCIFARConfig(seed)
			newModel = func(ms uint64) *nn.Sequential { return nn.NewResNetLite(3, 8, 8, 10, ms) }
		} else {
			gen = data.FlatConfig(10, 24, seed)
			// Hard enough that accuracy is still climbing after the scale's
			// round budget — the regime where grouping and sampling matter.
			gen.Noise = 1.9
			newModel = func(ms uint64) *nn.Sequential { return nn.NewMLP(24, []int{32}, 10, ms) }
		}
	case SC:
		if s.ConvModels {
			gen = data.SynthSpeechConfig(seed)
			newModel = func(ms uint64) *nn.Sequential { return nn.NewCNN5(1, 12, 12, 35, ms) }
		} else {
			gen = data.FlatConfig(35, 32, seed)
			gen.Noise = 1.5
			newModel = func(ms uint64) *nn.Sequential { return nn.NewMLP(32, []int{48}, 35, ms) }
		}
	default:
		panic("experiments: unknown task")
	}
	return core.NewSystem(core.SystemConfig{
		Generator: gen,
		Partition: data.PartitionConfig{
			NumClients: s.Clients, Alpha: alpha,
			MinSamples: s.MinSamples, MaxSamples: s.MaxSamples,
			MeanSamples: s.MeanSamples, StdSamples: s.StdSamples,
			Seed: seed + 101,
		},
		NumEdges:  s.Edges,
		TestSize:  s.TestSize,
		NewModel:  newModel,
		ModelSeed: 7,
	})
}

// BaseConfig returns the core.Config shared by all methods at this scale.
func (s Scale) BaseConfig(task Task, seed uint64) core.Config {
	return core.Config{
		GlobalRounds: s.GlobalRounds,
		GroupRounds:  s.GroupRounds,
		LocalEpochs:  s.LocalEpochs,
		BatchSize:    s.BatchSize,
		LR:           s.LR,
		SampleGroups: s.SampleGroups,
		Seed:         seed,
		CostProfile:  task.Profile(),
		CostOps:      cost.DefaultOps(),
		CostBudget:   s.CostBudget,
		EvalEvery:    s.EvalEvery,
		MaxParallel:  s.MaxParallel,
		Metrics:      s.Metrics,
	}
}
