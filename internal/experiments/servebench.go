package experiments

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"repro/internal/fednode"
	"repro/internal/felserve"
)

// ServeBenchResult is the serving-layer load benchmark written by
// `felbench -load` as BENCH_serve.json: one felserve cloud training Jobs
// concurrent federation jobs while Subscribers loopback clients per job
// follow the model-version stream to the final aggregate.
type ServeBenchResult struct {
	Jobs              int    `json:"jobs"`
	SubscribersPerJob int    `json:"subscribers_per_job"`
	RoundsPerJob      int    `json:"rounds_per_job"`
	Clients           int    `json:"clients_per_job"`
	Seed              uint64 `json:"seed"`
	GoMaxProcs        int    `json:"gomaxprocs"`
	// TotalRounds is the fel_serve_rounds_total the cloud executed;
	// RoundsPerSec the end-to-end round throughput (all jobs combined).
	TotalRounds  int64   `json:"total_rounds"`
	WallSeconds  float64 `json:"wall_seconds"`
	RoundsPerSec float64 `json:"rounds_per_sec"`
	// VersionsSent counts model-version frames delivered to subscribers —
	// with coalescing this is bounded by subscribers × (rounds + 2), and a
	// slow fleet legitimately sees fewer.
	VersionsSent int64 `json:"versions_sent"`
	Admitted     int64 `json:"subscribers_admitted"`
	// FinalsCorrect confirms every subscriber's closing aggregate matched
	// its job's final weights bit for bit.
	FinalsCorrect bool `json:"finals_correct"`
	// LeakedGoroutines is how many goroutines remained above the pre-run
	// count after shutdown and settling; the contract is 0.
	LeakedGoroutines int `json:"leaked_goroutines"`
}

// ServeBench drives the felserve load harness: jobs concurrent federation
// jobs on one in-process cloud, subscribers loopback connections per job
// following the version stream. It returns the measured throughput and the
// goroutine balance after a full shutdown.
func ServeBench(jobs, subscribers, rounds, clients int, seed uint64) (ServeBenchResult, error) {
	res := ServeBenchResult{
		Jobs: jobs, SubscribersPerJob: subscribers, RoundsPerJob: rounds,
		Clients: clients, Seed: seed, GoMaxProcs: runtime.GOMAXPROCS(0),
		FinalsCorrect: true,
	}
	before := runtime.NumGoroutine()

	nw := fednode.NewMemNetwork()
	ln, err := nw.Listen("cloud")
	if err != nil {
		return res, err
	}
	svc := felserve.New(felserve.Config{StartHeld: true})
	svc.Serve(ln)
	specs := make([]felserve.JobSpec, jobs)
	for i := range specs {
		specs[i] = felserve.JobSpec{
			Name:    fmt.Sprintf("load-%d", i),
			Clients: clients, Edges: 2,
			SystemSeed: seed + uint64(i), Seed: seed + 100*uint64(i+1),
			Rounds: rounds, GroupRounds: 2, LocalEpochs: 1,
			BatchSize: 16, LR: 0.05, SampleGroups: 2,
			Scaffold: i%2 == 1,
		}
		if _, err := svc.Submit(specs[i]); err != nil {
			return res, err
		}
	}

	type finalFrame struct {
		job    string
		params []float64
		err    error
	}
	var wg sync.WaitGroup
	finals := make(chan finalFrame, jobs*subscribers)
	follow := func(job string) {
		defer wg.Done()
		// A thousand subscribers dialing at once is exactly the stampede
		// the protocol's jittered retry schedule exists for.
		conn, err := fednode.DialRetry(nw, "subscriber", "cloud", 5, 5*time.Millisecond, nil, nil)
		if err != nil {
			finals <- finalFrame{job: job, err: err}
			return
		}
		defer func() {
			//lint:ignore dropped-error the stream already ended; nothing depends on this close
			conn.Close()
		}()
		sub, err := felserve.Subscribe(conn, job)
		if err != nil {
			finals <- finalFrame{job: job, err: err}
			return
		}
		for {
			_, params, final, err := sub.Next()
			if err != nil {
				finals <- finalFrame{job: job, err: err}
				return
			}
			if final {
				finals <- finalFrame{job: job, params: params}
				return
			}
		}
	}
	for _, spec := range specs {
		for i := 0; i < subscribers; i++ {
			wg.Add(1)
			go follow(spec.Name)
		}
	}

	start := time.Now()
	svc.Start()
	svc.Wait()
	res.WallSeconds = time.Since(start).Seconds()
	wg.Wait()
	close(finals)

	want := map[string][]float64{}
	for _, spec := range specs {
		r, err := svc.Job(spec.Name).Wait()
		if err != nil {
			return res, err
		}
		want[spec.Name] = r.Params
	}
	got := 0
	for f := range finals {
		if f.err != nil {
			return res, fmt.Errorf("subscriber of %s: %w", f.job, f.err)
		}
		got++
		w := want[f.job]
		ok := len(f.params) == len(w)
		for i := 0; ok && i < len(w); i++ {
			ok = math.Float64bits(f.params[i]) == math.Float64bits(w[i])
		}
		if !ok {
			res.FinalsCorrect = false
		}
	}
	if got != jobs*subscribers {
		return res, fmt.Errorf("felbench: %d subscribers finished, want %d", got, jobs*subscribers)
	}

	reg := svc.Registry()
	res.TotalRounds = reg.Counter("fel_serve_rounds_total").Value()
	res.VersionsSent = reg.Counter("fel_serve_versions_sent_total").Value()
	res.Admitted = reg.Counter("fel_serve_subscribers_admitted_total").Value()
	res.RoundsPerSec = float64(res.TotalRounds) / res.WallSeconds
	if err := svc.Close(); err != nil {
		return res, err
	}

	// Let handler teardown settle before judging the goroutine balance.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(25 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		res.LeakedGoroutines = n - before
	}
	return res, nil
}
