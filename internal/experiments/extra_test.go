package experiments

import (
	"fmt"
	"strconv"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/grouping"
	"repro/internal/sampling"
)

func TestTheoryFigureCoVGTighter(t *testing.T) {
	f := TheoryFigure(Small(), testSeed)
	rg, covg := f.Get("RG+Random"), f.Get("CoVG+Random")
	if rg == nil || covg == nil {
		t.Fatal("missing series")
	}
	// At every T the CoVG structure yields a bound no worse than RG's
	// (lower ζ_g proxy, similar γ/Γ).
	for i := 0; i < covg.Len(); i++ {
		if covg.Y[i] > rg.Y[i]*1.05 {
			t.Fatalf("T=%v: CoVG bound %v worse than RG %v", covg.X[i], covg.Y[i], rg.Y[i])
		}
	}
	// The bound shrinks with T for both.
	for _, s := range f.Series {
		for i := 1; i < s.Len(); i++ {
			if s.Y[i] >= s.Y[i-1] {
				t.Fatalf("%s bound not decreasing in T", s.Name)
			}
		}
	}
}

func TestCostBreakdownShareGrows(t *testing.T) {
	tb := CostBreakdown(Small(), testSeed)
	if len(tb.Rows) < 3 {
		t.Fatalf("only %d rows", len(tb.Rows))
	}
	prev := -1.0
	for _, row := range tb.Rows {
		share, err := strconv.ParseFloat(strings.TrimSuffix(row[3], "%"), 64)
		if err != nil {
			t.Fatal(err)
		}
		if share <= prev {
			t.Fatalf("group-op share not increasing with group size: %v after %v", share, prev)
		}
		prev = share
	}
}

func TestDropoutRobustnessShape(t *testing.T) {
	sc := Small()
	sc.GlobalRounds = 8
	f := DropoutRobustness(sc, testSeed)
	acc := f.Get("Group-FEL")
	drops := f.Get("dropped updates")
	if acc == nil || drops == nil {
		t.Fatal("missing series")
	}
	// No dropouts at p=0; dropouts increase with p.
	//lint:ignore float-eq test asserts exact deterministic output
	if drops.Y[0] != 0 {
		t.Fatalf("dropouts at p=0: %v", drops.Y[0])
	}
	if drops.FinalY() <= drops.Y[1] {
		t.Fatalf("dropout count not increasing: %v", drops.Y)
	}
	// Accuracy at moderate dropout stays above chance (robustness).
	for i := range acc.Y {
		if acc.Y[i] < 0.15 {
			t.Fatalf("accuracy collapsed at p=%v: %v", acc.X[i], acc.Y[i])
		}
	}
}

func TestExtraExperimentsRegistered(t *testing.T) {
	reg := Registry()
	for _, id := range []string{"theory", "costbreak", "dropout"} {
		if _, ok := reg[id]; !ok {
			t.Errorf("registry missing %s", id)
		}
	}
}

func TestFairnessTableShape(t *testing.T) {
	sc := Small()
	sc.GlobalRounds = 10
	tb := FairnessTable(sc, testSeed)
	if len(tb.Rows) != 4 {
		t.Fatalf("want 4 rows, got %d", len(tb.Rows))
	}
	parse := func(s string) float64 {
		var v float64
		if _, err := fmt.Sscan(s, &v); err != nil {
			t.Fatal(err)
		}
		return v
	}
	random := parse(tb.Rows[0][1])
	esr := parse(tb.Rows[2][1])
	esrRegroup := parse(tb.Rows[3][1])
	if random < esr {
		t.Fatalf("Random Jain %v should be >= ESRCoV %v", random, esr)
	}
	// Regrouping mitigates the concentration (allows equality: small runs
	// can tie).
	if esrRegroup < esr-0.05 {
		t.Fatalf("regrouping made fairness clearly worse: %v vs %v", esrRegroup, esr)
	}
}

func TestCompressionTableShape(t *testing.T) {
	sc := Small()
	sc.GlobalRounds = 6
	tb := CompressionTable(sc, testSeed)
	if len(tb.Rows) != 3 {
		t.Fatalf("want 3 rows, got %d", len(tb.Rows))
	}
	// Dense is 100%; q8 and top-10% are clearly smaller.
	if tb.Rows[0][2] != "100%" {
		t.Fatalf("dense ratio %s", tb.Rows[0][2])
	}
	for _, row := range tb.Rows[1:] {
		var pct float64
		if _, err := fmt.Sscanf(row[2], "%f%%", &pct); err != nil {
			t.Fatal(err)
		}
		if pct >= 60 {
			t.Fatalf("%s not compressive: %s of dense", row[0], row[2])
		}
	}
}

func TestConvModelScalePath(t *testing.T) {
	// The Paper scale's convolutional branch, shrunk to one round: builds
	// the ResNet/CNN systems and runs a round end to end.
	if testing.Short() {
		t.Skip("conv models are slow")
	}
	sc := Paper()
	sc.Clients, sc.Edges = 12, 2
	sc.GlobalRounds, sc.GroupRounds, sc.LocalEpochs = 1, 1, 1
	sc.SampleGroups, sc.TestSize = 2, 100
	sc.MinSamples, sc.MaxSamples, sc.MeanSamples, sc.StdSamples = 8, 20, 12, 4
	sc.CostBudget = 0
	for _, task := range []Task{CIFAR, SC} {
		sys := sc.NewSystem(task, 0.5, testSeed)
		cfg := sc.BaseConfig(task, testSeed)
		cfg.Grouping = grouping.CoVGrouping{Config: grouping.Config{MinGS: 3, MergeLeftover: true}}
		cfg.Sampling = sampling.ESRCoV
		res := core.Train(sys, cfg)
		if res.RoundsRun != 1 || len(res.Params) == 0 {
			t.Fatalf("%v conv path failed: %+v", task, res.RoundsRun)
		}
	}
}

func TestMultiModelTableShape(t *testing.T) {
	sc := Small()
	sc.GlobalRounds = 6
	tb := MultiModelTable(sc, testSeed)
	if len(tb.Rows) != 3 {
		t.Fatalf("want 3 schedulers, got %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		var pct float64
		if _, err := fmt.Sscanf(row[1], "%f%%", &pct); err != nil {
			t.Fatal(err)
		}
		if pct <= 15 { // chance = 10 classes → 10%
			t.Errorf("%s mean accuracy %s too low", row[0], row[1])
		}
	}
}
