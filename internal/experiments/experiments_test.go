package experiments

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/baselines"
	"repro/internal/trace"
)

const testSeed = 2024

func TestFig2aShapes(t *testing.T) {
	f := Fig2a()
	sa := f.Get("Secure Aggregation")
	tr := f.Get("Training")
	if sa == nil || tr == nil {
		t.Fatal("missing series")
	}
	// SecAgg quadratic: beyond the crossover it exceeds linear training.
	if sa.FinalY() <= tr.FinalY()*0.8 {
		t.Fatalf("at size 50 SecAgg (%v) should rival training (%v)", sa.FinalY(), tr.FinalY())
	}
	// Monotone increasing curves.
	for _, s := range f.Series {
		for i := 1; i < s.Len(); i++ {
			if s.Y[i] < s.Y[i-1] {
				t.Fatalf("%s not monotone", s.Name)
			}
		}
	}
}

func TestFig2bRuns(t *testing.T) {
	sc := Small()
	sc.GlobalRounds = 6
	f := Fig2b(sc, testSeed)
	if len(f.Series) != 4 {
		t.Fatalf("want 4 group-size series, got %d", len(f.Series))
	}
	// Larger groups accumulate cost faster per round.
	gs5, gs20 := f.Get("GS=5"), f.Get("GS=20")
	if gs5.X[gs5.Len()-1] >= gs20.X[gs20.Len()-1] {
		t.Fatalf("GS=20 total cost (%v) should exceed GS=5 (%v)", gs20.X[gs20.Len()-1], gs5.X[gs5.Len()-1])
	}
}

func TestFig5RuntimeOrdering(t *testing.T) {
	f := Fig5(Small(), testSeed)
	rg, cov, kld := f.Get("RG"), f.Get("CoVG"), f.Get("KLDG")
	if rg == nil || cov == nil || kld == nil {
		t.Fatal("missing series")
	}
	// At the largest size: RG fastest, KLDG slowest (paper Fig. 5).
	last := rg.Len() - 1
	if !(rg.Y[last] <= cov.Y[last] && cov.Y[last] <= kld.Y[last]) {
		t.Fatalf("runtime ordering violated: RG %v, CoVG %v, KLDG %v", rg.Y[last], cov.Y[last], kld.Y[last])
	}
	// KLDG should be clearly slower than CoVG, not marginally.
	if kld.Y[last] < 2*cov.Y[last] {
		t.Fatalf("KLDG (%v) should be well above CoVG (%v)", kld.Y[last], cov.Y[last])
	}
}

func TestFig6CoVGBest(t *testing.T) {
	f := Fig6(Small(), testSeed)
	cov, rg := f.Get("CoVG"), f.Get("RG")
	if cov == nil || rg == nil {
		t.Fatal("missing series")
	}
	// CoVG's average CoV (x values) should be below RG's at every sweep
	// point (same group-size sweep, better distribution).
	for i := 0; i < cov.Len() && i < rg.Len(); i++ {
		if cov.X[i] > rg.X[i] {
			t.Fatalf("sweep %d: CoVG CoV %v worse than RG %v", i, cov.X[i], rg.X[i])
		}
	}
}

func TestFig7SamplingOrdering(t *testing.T) {
	sc := Small()
	sc.GlobalRounds = 12
	f := Fig7(sc, testSeed)
	if len(f.Series) != 4 {
		t.Fatalf("want 4 sampling series, got %d", len(f.Series))
	}
	// ESRCoV should be at least competitive with Random at the shared cost
	// horizon (paper: strictly better; at CI scale we assert no regression).
	esr, rnd := f.Get("ESRCoV"), f.Get("Random")
	horizon := minFinalX(f)
	if esr.YAtX(horizon) < rnd.YAtX(horizon)-0.08 {
		t.Fatalf("ESRCoV %.3f clearly below Random %.3f at cost %.0f",
			esr.YAtX(horizon), rnd.YAtX(horizon), horizon)
	}
}

func TestFig8MeasuredMatchesModelShape(t *testing.T) {
	f := Fig8()
	meas := f.Get("SecAgg (measured ops, scaled)")
	model := f.Get("CIFAR SecAgg")
	if meas == nil || model == nil {
		t.Fatal("missing series")
	}
	// Measured ops, scaled to anchor at n=20, should track the quadratic
	// model within 40% at n=40.
	at40meas := meas.YAtX(40)
	at40model := model.YAtX(40)
	if at40meas < at40model*0.6 || at40meas > at40model*1.4 {
		t.Fatalf("measured %.2f vs model %.2f at n=40: shapes diverge", at40meas, at40model)
	}
	// SCAFFOLD SecAgg dominates plain SecAgg everywhere.
	sc, sa := f.Get("CIFAR SCAFFOLD SecAgg"), f.Get("CIFAR SecAgg")
	for i := 0; i < sc.Len(); i++ {
		if sc.Y[i] <= sa.Y[i] {
			t.Fatalf("SCAFFOLD SecAgg not dominating at point %d", i)
		}
	}
}

func TestComparisonFig9Fig10(t *testing.T) {
	sc := Small()
	sc.GlobalRounds = 12
	f9, f10 := Fig9And10(sc, testSeed)
	if len(f9.Series) != 7 || len(f10.Series) != 7 {
		t.Fatalf("want 7 methods, got %d / %d", len(f9.Series), len(f10.Series))
	}
	gf := f10.Get(string(baselines.GroupFEL))
	// Group-FEL must be within noise of the best baseline at the shared
	// cost horizon, and clearly above the worst (paper: strictly best).
	horizon := minFinalX(f10)
	best, worst := -1.0, 2.0
	for _, s := range f10.Series {
		if s == gf {
			continue
		}
		y := s.YAtX(horizon)
		if y > best {
			best = y
		}
		if y < worst {
			worst = y
		}
	}
	got := gf.YAtX(horizon)
	if got < best-0.1 {
		t.Fatalf("Group-FEL %.3f clearly below best baseline %.3f at cost %.0f", got, best, horizon)
	}
	// SCAFFOLD pays double SecAgg: its cost per round must exceed FedAvg's.
	scf, fa := f10.Get(string(baselines.Scaffold)), f10.Get(string(baselines.FedAvg))
	if scf.X[0] <= fa.X[0] {
		t.Fatalf("SCAFFOLD first-round cost %v should exceed FedAvg %v", scf.X[0], fa.X[0])
	}
}

func TestFig11Runs(t *testing.T) {
	sc := Small()
	sc.GlobalRounds = 8
	f := Fig11(sc, testSeed)
	if len(f.Series) != 7 {
		t.Fatalf("want 7 methods, got %d", len(f.Series))
	}
	for _, s := range f.Series {
		if s.Len() == 0 {
			t.Fatalf("series %s empty", s.Name)
		}
	}
}

func TestFig12ComboOrdering(t *testing.T) {
	sc := Small()
	sc.GlobalRounds = 12
	f := Fig12(sc, testSeed)
	if len(f.Series) != 5 {
		t.Fatalf("want 5 combos, got %d", len(f.Series))
	}
	both := f.Get("CoVG+CoVS")
	horizon := minFinalX(f)
	// The combined method should not lose clearly to any single-component
	// combo (paper: it wins).
	for _, s := range f.Series {
		if s == both {
			continue
		}
		if both.YAtX(horizon) < s.YAtX(horizon)-0.12 {
			t.Fatalf("CoVG+CoVS %.3f clearly below %s %.3f", both.YAtX(horizon), s.Name, s.YAtX(horizon))
		}
	}
}

func TestTable1Shapes(t *testing.T) {
	sc := Small()
	sc.GlobalRounds = 8
	tb := Table1(sc, testSeed)
	if len(tb.Rows) != 9 {
		t.Fatalf("want 9 rows (3 alpha x 3 MaxCoV), got %d", len(tb.Rows))
	}
	// Parse avg GS and avg CoV columns; per alpha block, MaxCoV=1.0 must
	// not produce larger groups than MaxCoV=0.1.
	var gs [9]float64
	var cov [9]float64
	for i, row := range tb.Rows {
		if _, err := sscan(row[3], &gs[i]); err != nil {
			t.Fatal(err)
		}
		if _, err := sscan(row[4], &cov[i]); err != nil {
			t.Fatal(err)
		}
	}
	for block := 0; block < 3; block++ {
		strict, loose := block*3, block*3+2 // MaxCoV 0.1 vs 1.0
		if gs[loose] > gs[strict]+1e-9 {
			t.Errorf("block %d: loose MaxCoV gave larger groups (%.2f > %.2f)", block, gs[loose], gs[strict])
		}
		if cov[loose]+1e-9 < cov[strict] {
			t.Errorf("block %d: loose MaxCoV gave smaller CoV (%.2f < %.2f)", block, cov[loose], cov[strict])
		}
	}
}

func TestAblationsRun(t *testing.T) {
	sc := Small()
	sc.GlobalRounds = 6
	for name, fn := range map[string]func(Scale, uint64) *trace.Figure{
		"variance":    AblationVariance,
		"aggregation": AblationAggregation,
		"regroup":     AblationRegroup,
		"gamma":       AblationGamma,
	} {
		f := fn(sc, testSeed)
		if len(f.Series) < 2 {
			t.Errorf("%s: want >= 2 series", name)
		}
		for _, s := range f.Series {
			if s.Len() == 0 {
				t.Errorf("%s: series %s empty", name, s.Name)
			}
		}
	}
}

func TestRegistryComplete(t *testing.T) {
	reg := Registry()
	for _, id := range []string{"fig2a", "fig2b", "fig5", "fig6", "fig7", "fig8",
		"fig9", "fig10", "fig11", "fig12", "table1",
		"abl-variance", "abl-aggregation", "abl-regroup", "abl-gamma"} {
		if _, ok := reg[id]; !ok {
			t.Errorf("registry missing %s", id)
		}
	}
	ids := IDs()
	if len(ids) != len(reg) {
		t.Fatal("IDs incomplete")
	}
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Fatal("IDs not sorted")
		}
	}
}

func TestRegistryRunnersProduceOutput(t *testing.T) {
	// Smoke-run the cheap runners through the registry interface.
	sc := Small()
	sc.GlobalRounds = 3
	reg := Registry()
	for _, id := range []string{"fig2a", "fig8"} {
		a := reg[id](sc, testSeed)
		if !strings.Contains(a.CSV, id) || a.Pretty == "" {
			t.Errorf("%s: bad artifact", id)
		}
	}
}

func TestScaleByName(t *testing.T) {
	for _, name := range []string{"small", "medium", "paper"} {
		sc, err := ScaleByName(name)
		if err != nil || sc.Name != name {
			t.Errorf("ScaleByName(%s) = %+v, %v", name, sc.Name, err)
		}
	}
	if _, err := ScaleByName("bogus"); err == nil {
		t.Error("expected error for unknown scale")
	}
}

func TestTaskMetadata(t *testing.T) {
	if CIFAR.String() != "CIFAR" || SC.String() != "SC" {
		t.Fatal("task names wrong")
	}
	if CIFAR.Profile().Name != "CIFAR" || SC.Profile().Name != "SC" {
		t.Fatal("task profiles wrong")
	}
}

// minFinalX returns the smallest final x across series — the shared cost
// horizon for fair at-cost comparisons.
func minFinalX(f *trace.Figure) float64 {
	m := -1.0
	for _, s := range f.Series {
		if s.Len() == 0 {
			continue
		}
		x := s.X[s.Len()-1]
		if m < 0 || x < m {
			m = x
		}
	}
	return m
}

// sscan parses a float from a string.
func sscan(s string, out *float64) (int, error) {
	return fmt.Sscan(s, out)
}
