// Package faultnet is a deterministic fault-injection layer for the
// networked federation stack: it wraps any transport (real TCP or
// internal/fednode's in-memory pipes) and applies a seeded, scripted fault
// Plan at wire-frame boundaries — per-link delay and straggler injection,
// frame corruption and truncation, connection resets, and link partitions
// with heal times.
//
// Links are identified by the node tags internal/fednode supplies through
// its TagNetwork hooks ("cloud", "edge/<e>", "client/<id>"), never by
// goroutine scheduling, and every probabilistic draw comes from a per-link
// stats.RNG derived from the plan seed. Two runs of the same plan and seed
// therefore inject the same faults at the same frame indices and render
// byte-identical event logs (Log) — failure becomes a replayable input, the
// same way a training seed is.
//
// The injector distinguishes time-shaping faults (delay, partition) from
// destructive ones (corrupt, truncate, reset): a plan built only from the
// former must leave the training trajectory bit-identical to a fault-free
// run, which the scenario suite (faultnet/scenarios) asserts.
package faultnet

import (
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/stats"
	"repro/internal/wire"
)

// Transport is the dial/listen surface faultnet wraps — structurally
// identical to internal/fednode's Network, so fednode's TCPNetwork and
// MemNetwork both satisfy it without faultnet importing fednode.
type Transport interface {
	Listen(addr string) (net.Listener, error)
	Dial(addr string) (net.Conn, error)
}

// Network wraps a Transport and injects the plan's faults into every
// connection dialed through it. It implements both halves of fednode's
// transport surface: the plain Network methods and the TagNetwork methods
// (DialFrom, ListenAs) that give faults their link identity. Faults are
// applied on the dialing end of each connection, in both directions —
// frames the dialer writes and frames it reads — so wrapping dials covers
// every link of the cloud–edge–client tree.
type Network struct {
	inner Transport
	plan  *Plan
	log   *Log
	reg   *metrics.Registry

	mu           sync.Mutex
	listenerTags map[string]string    // addr → listener tag
	dirs         map[string]*dirState // "from→to" → per-direction fault state
	partitions   map[string]time.Time // normalized link pair → heal deadline
	anonDials    int
}

// Wrap builds a fault-injecting view of inner executing plan. reg (which
// may be nil) receives fel_faultnet_injected_total{action} counters as
// faults fire. The plan must already be validated.
func Wrap(inner Transport, plan *Plan, reg *metrics.Registry) *Network {
	return &Network{
		inner:        inner,
		plan:         plan,
		log:          &Log{},
		reg:          reg,
		listenerTags: make(map[string]string),
		dirs:         make(map[string]*dirState),
		partitions:   make(map[string]time.Time),
	}
}

// Log exposes the injected-fault event log.
func (n *Network) Log() *Log { return n.log }

// ListenAs opens a listener on addr and remembers its tag, so later dials
// of the same address resolve their link identity.
func (n *Network) ListenAs(tag, addr string) (net.Listener, error) {
	ln, err := n.inner.Listen(addr)
	if err != nil {
		return nil, err
	}
	n.mu.Lock()
	n.listenerTags[ln.Addr().String()] = tag
	n.mu.Unlock()
	return ln, nil
}

// Listen opens an untagged listener; its tag defaults to its address.
func (n *Network) Listen(addr string) (net.Listener, error) {
	ln, err := n.inner.Listen(addr)
	if err != nil {
		return nil, err
	}
	resolved := ln.Addr().String()
	n.mu.Lock()
	if _, ok := n.listenerTags[resolved]; !ok {
		n.listenerTags[resolved] = resolved
	}
	n.mu.Unlock()
	return ln, nil
}

// DialFrom dials addr on behalf of the node tagged fromTag and wraps the
// connection for fault injection on the "fromTag→listenerTag" link. A dial
// across an actively partitioned link is refused (the caller's bounded
// retry/backoff loop absorbs it, exactly like a real SYN black-hole).
func (n *Network) DialFrom(fromTag, addr string) (net.Conn, error) {
	toTag := n.tagFor(addr)
	if until := n.healDeadline(fromTag, toTag); time.Now().Before(until) {
		return nil, fmt.Errorf("faultnet: dial %s from %s: link partitioned", addr, fromTag)
	}
	conn, err := n.inner.Dial(addr)
	if err != nil {
		return nil, err
	}
	return &faultConn{
		Conn: conn,
		nw:   n,
		out:  n.dir(fromTag, toTag),
		in:   n.dir(toTag, fromTag),
	}, nil
}

// Dial dials with an anonymous per-call tag; prefer DialFrom.
func (n *Network) Dial(addr string) (net.Conn, error) {
	n.mu.Lock()
	n.anonDials++
	tag := fmt.Sprintf("anon/%d", n.anonDials)
	n.mu.Unlock()
	return n.DialFrom(tag, addr)
}

// tagFor resolves a listener address to its tag (the address itself when
// the listener was opened untagged).
func (n *Network) tagFor(addr string) string {
	n.mu.Lock()
	defer n.mu.Unlock()
	if tag, ok := n.listenerTags[addr]; ok {
		return tag
	}
	return addr
}

// dir returns (creating on first use) the fault state of one link
// direction. The state — RNG stream, frame counter, per-rule fire counts —
// survives reconnects, so a crash-restarted client continues the same
// deterministic fault sequence.
func (n *Network) dir(from, to string) *dirState {
	link := from + "→" + to
	n.mu.Lock()
	defer n.mu.Unlock()
	ds := n.dirs[link]
	if ds == nil {
		ds = &dirState{
			net:   n,
			from:  from,
			to:    to,
			link:  link,
			rng:   stats.NewRNG(n.plan.Seed ^ fnv64(link)),
			fired: make([]int, len(n.plan.Rules)),
		}
		n.dirs[link] = ds
	}
	return ds
}

// partition blocks both directions between a and b until now+heal.
func (n *Network) partition(a, b string, heal time.Duration) {
	key := pairKey(a, b)
	deadline := time.Now().Add(heal)
	n.mu.Lock()
	if deadline.After(n.partitions[key]) {
		n.partitions[key] = deadline
	}
	n.mu.Unlock()
}

// healDeadline returns when the a↔b partition heals (zero when none holds).
func (n *Network) healDeadline(a, b string) time.Time {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.partitions[pairKey(a, b)]
}

// pairKey normalizes an unordered link pair.
func pairKey(a, b string) string {
	if b < a {
		a, b = b, a
	}
	return a + "|" + b
}

// record publishes one injected fault to the log and the metrics registry.
func (n *Network) record(e Event) {
	n.log.add(e)
	n.reg.Counter("fel_faultnet_injected_total", metrics.L("action", string(e.Action))).Inc()
}

// fnv64 hashes a link name into an RNG seed offset (FNV-1a).
func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// dirState is the persistent fault state of one link direction.
type dirState struct {
	net      *Network
	from, to string
	link     string
	mu       sync.Mutex
	rng      *stats.RNG
	frames   int64
	fired    []int
}

// decision is the outcome of matching one frame against the plan: the
// faults to apply, pre-drawn under the direction lock so the RNG stream
// stays per-link sequential.
type decision struct {
	sleep    time.Duration
	corrupt  []int  // payload bit positions to flip
	terminal Action // ActionTruncate or ActionReset ("" = none)
	cut      int    // truncate: frame bytes to keep
	events   []Event
}

// decide consumes one frame slot on the direction and returns the faults
// the plan injects into it. All randomness is drawn here, under the lock.
func (ds *dirState) decide(fi frameInfo, frameLen int) decision {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	frame := ds.frames
	ds.frames++

	var d decision
	for i := range ds.net.plan.Rules {
		r := &ds.net.plan.Rules[i]
		if d.terminal != "" {
			break
		}
		if !r.matches(ds.from, ds.to, fi.typ, fi.round, fi.seq) {
			continue
		}
		if r.Count > 0 && ds.fired[i] >= r.Count {
			continue
		}
		if r.Prob < 1 && ds.rng.Float64() >= r.Prob {
			continue
		}
		ds.fired[i]++
		ev := Event{
			Link: ds.link, Frame: frame, Action: r.Action,
			Type: fi.typ.String(), Round: fi.round, Seq: fi.seq,
		}
		switch r.Action {
		case ActionDelay:
			ms := r.DelayMs
			if r.JitterMs > 0 {
				ms += ds.rng.IntN(r.JitterMs + 1)
			}
			d.sleep += time.Duration(ms) * time.Millisecond
			ev.Detail = fmt.Sprintf("delay=%dms", ms)
		case ActionCorrupt:
			payloadBits := (frameLen - wire.HeaderSize) * 8
			if payloadBits <= 0 {
				continue
			}
			for f := 0; f < r.Flips; f++ {
				d.corrupt = append(d.corrupt, ds.rng.IntN(payloadBits))
			}
			ev.Detail = fmt.Sprintf("flips=%d", r.Flips)
		case ActionTruncate:
			lo := wire.HeaderSize
			if frameLen <= lo+1 {
				lo = 1
			}
			d.cut = lo + ds.rng.IntN(frameLen-lo)
			d.terminal = ActionTruncate
			ev.Detail = fmt.Sprintf("cut=%d/%d", d.cut, frameLen)
		case ActionReset:
			d.terminal = ActionReset
			ev.Detail = "conn closed"
		case ActionPartition:
			heal := time.Duration(r.HealMs) * time.Millisecond
			ds.net.partition(ds.from, ds.to, heal)
			ev.Detail = fmt.Sprintf("heal=%dms", r.HealMs)
		}
		d.events = append(d.events, ev)
	}
	return d
}
